(* Baseline diff: `compare.exe BASELINE.json CURRENT.json`.

   Prints one verdict line per metric and exits non-zero when any gated
   metric regressed beyond its recorded tolerance.  scripts/bench_compare
   wraps this for the CI gate. *)

module B = Repro_metrics.Baseline

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: compare.exe BASELINE.json CURRENT.json";
    exit 2
  end;
  let read path =
    try B.read ~path with
    | Sys_error e ->
      prerr_endline e;
      exit 2
    | Failure e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2
  in
  let baseline = read Sys.argv.(1) in
  let current = read Sys.argv.(2) in
  let verdicts = B.compare_docs ~baseline ~current in
  List.iter (fun v -> Format.printf "%a@." B.pp_verdict v) verdicts;
  let gated = List.filter (fun v -> v.B.v_gated) verdicts in
  let failed = List.filter (fun v -> not v.B.v_ok) verdicts in
  if failed = [] then begin
    Format.printf "bench_compare: ok (%d gated / %d metrics)@."
      (List.length gated) (List.length verdicts);
    exit 0
  end
  else begin
    Format.printf "bench_compare: %d metric(s) regressed beyond tolerance@."
      (List.length failed);
    exit 1
  end
