(* Benchmark harness.

   Two parts:

   1. A Bechamel micro-suite — one [Test.make] per table/figure whose
      cost structure rests on a measurable primitive: the §3.2
      microbenchmark (classic batch verification vs aggregate
      verification), Fig. 2/3 (batch assembly: Merkle trees over the
      proposal), §5.1's engineering devices (tree-search invalid shares,
      sorted-range deduplication vs hash-map deduplication) and the
      Fig. 11b per-operation application costs.

   2. The figure harness — re-runs every simulated experiment of the
      evaluation (Figs. 7-11, §3.2, §6.2 silk) and prints the series the
      paper plots.  Scale with CHOPCHOP_BENCH_SCALE=full (default quick).

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe micro      (bechamel suite only)
              dune exec bench/main.exe figures    (simulation harness only)
              dune exec bench/main.exe trace      (traced-run smoke check)
              dune exec bench/main.exe chaos      (fault-injection scenarios)
              dune exec bench/main.exe json       (machine-readable baseline)

   With CHOPCHOP_TRACE=1 a traced quick run and its per-phase latency
   breakdown are appended to the default output. *)

open Bechamel
module Crypto = Repro_crypto

(* --- corpus ----------------------------------------------------------- *)

let batch_n = 4096
(* Scaled-down batch for the timed loops (65,536 would make each bechamel
   sample seconds long); per-item costs are what matters and both sides
   scale linearly in batch size. *)

let schnorr_entries =
  lazy
    (List.init batch_n (fun i ->
         let sk, pk = Crypto.Schnorr.keygen_deterministic ~seed:("b" ^ string_of_int i) in
         let msg = Printf.sprintf "payload-%d" i in
         (pk, msg, Crypto.Schnorr.sign sk msg)))

let multisig_keys =
  lazy
    (List.init batch_n (fun i ->
         Crypto.Multisig.keygen_deterministic ~seed:("mb" ^ string_of_int i)))

let multisig_shares =
  lazy
    (let keys = Lazy.force multisig_keys in
     List.map (fun (sk, _) -> Crypto.Multisig.sign sk "reduction|root") keys)

let merkle_leaves =
  lazy (Array.init batch_n (fun i -> Printf.sprintf "%d|7|payload-%d" i i))

(* §3.2, classic side: authenticating a batch = batch-verifying one
   individual signature per message. *)
let bench_classic_auth =
  Test.make ~name:"s3.2 classic batch auth (4096 sigs, batched)"
    (Staged.stage (fun () ->
         assert (Crypto.Schnorr.batch_verify (Lazy.force schnorr_entries))))

(* §3.2, distilled side: aggregating one public key per message plus one
   constant-time aggregate verification. *)
let bench_distilled_auth =
  Test.make ~name:"s3.2 distilled batch auth (4096 pk agg + 1 verify)"
    (Staged.stage (fun () ->
         let keys = Lazy.force multisig_keys in
         let shares = Lazy.force multisig_shares in
         let pk = Crypto.Multisig.aggregate_public_keys (List.map snd keys) in
         let agg = Crypto.Multisig.aggregate_signatures shares in
         assert (Crypto.Multisig.verify pk "reduction|root" agg)))

(* Fig. 2/3: the broker's batch-assembly cost — a Merkle tree over the
   proposal plus one inclusion proof per client. *)
let bench_merkle_batch =
  Test.make ~name:"fig3 proposal tree (4096 leaves + 4096 proofs)"
    (Staged.stage (fun () ->
         let t = Crypto.Merkle.build (Lazy.force merkle_leaves) in
         for i = 0 to batch_n - 1 do
           ignore (Crypto.Merkle.prove t i)
         done))

(* §5.1: logarithmic isolation of invalid multi-signature shares. *)
let tree_search_entries =
  lazy
    (let keys = Lazy.force multisig_keys in
     List.mapi
       (fun i (sk, pk) ->
         ( pk,
           if i = 1234 then Crypto.Multisig.forge_garbage ()
           else Crypto.Multisig.sign sk "x" ))
       keys)

let bench_tree_search =
  Test.make ~name:"s5.1 tree-search 1 bad share in 4096"
    (Staged.stage (fun () ->
         assert (Crypto.Multisig.find_invalid (Lazy.force tree_search_entries) "x" = [ 1234 ])))

let bench_linear_search =
  Test.make ~name:"s5.1 ablation: linear scan for the bad share"
    (Staged.stage (fun () ->
         let bad = ref (-1) in
         List.iteri
           (fun i (pk, s) -> if not (Crypto.Multisig.verify pk "x" s) then bad := i)
           (Lazy.force tree_search_entries);
         assert (!bad = 1234)))

(* §5.2: identifier-sorted dense deduplication vs a per-message hash map. *)
let bench_sorted_dedup =
  Test.make ~name:"s5.2 sorted-range dedup check (dense range)"
    (Staged.stage (fun () ->
         let last_seq = 3 and last_tag = 3 in
         ignore (Sys.opaque_identity (4 > last_seq && 5 <> last_tag))))

let bench_hashmap_dedup =
  let tbl = Hashtbl.create 100_000 in
  Test.make ~name:"s5.2 ablation: hash-map dedup (65,536 lookups)"
    (Staged.stage (fun () ->
         for i = 0 to 65_535 do
           match Hashtbl.find_opt tbl i with
           | Some s when s >= 4 -> ()
           | _ -> Hashtbl.replace tbl i 4
         done))

(* Fig. 11b: per-operation cost of the three real applications. *)
let bench_app name apply =
  Test.make ~name:(Printf.sprintf "fig11b %s (10k ops)" name) (Staged.stage apply)

let bench_payments =
  let t = Repro_apps.Payments.create () in
  let tag = ref 0 in
  bench_app "payments" (fun () ->
      incr tag;
      ignore
        (Repro_apps.Payments.apply_delivery t
           (Repro_chopchop.Proto.Bulk { first_id = 0; count = 10_000; tag = !tag; msg_bytes = 8 })))

let bench_auction =
  let t = Repro_apps.Auction.create () in
  let tag = ref 0 in
  bench_app "auction" (fun () ->
      incr tag;
      ignore
        (Repro_apps.Auction.apply_delivery t
           (Repro_chopchop.Proto.Bulk { first_id = 0; count = 10_000; tag = !tag; msg_bytes = 8 })))

let bench_pixelwar =
  let t = Repro_apps.Pixelwar.create () in
  let tag = ref 0 in
  bench_app "pixelwar" (fun () ->
      incr tag;
      ignore
        (Repro_apps.Pixelwar.apply_delivery t
           (Repro_chopchop.Proto.Bulk { first_id = 0; count = 10_000; tag = !tag; msg_bytes = 8 })))

(* DESIGN.md "ablation-repr": server-side verification cost of the Dense
   (range + prefix-sum aggregate) representation vs the equivalent
   Explicit batch — same semantics (tested), very different constant. *)
let repr_dir = lazy (Repro_chopchop.Directory.create ~dense_count:8192 ())

let repr_dense =
  lazy
    (Repro_chopchop.Batch.forge_dense (Lazy.force repr_dir) ~broker:0 ~number:0
       ~first_id:0 ~count:4096 ~msg_bytes:8 ~tag:1 ~straggler_count:0)

let repr_explicit =
  lazy
    (let module B = Repro_chopchop.Batch in
     let module T = Repro_chopchop.Types in
     let d =
       match (Lazy.force repr_dense).B.entries with
       | B.Dense d -> d
       | B.Explicit _ -> assert false
     in
     let entries =
       Array.init 4096 (fun i ->
           { B.e_id = i; e_msg = B.dense_message d i })
     in
     let skeleton =
       B.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq:1 ~stragglers:[||]
         ~agg_sig:None
     in
     let root = B.reduction_root skeleton in
     let agg =
       Crypto.Multisig.aggregate_signatures
         (List.init 4096 (fun i ->
              Crypto.Multisig.sign
                (Repro_chopchop.Directory.dense_keypair i).T.ms_sk
                (T.reduction_statement ~root)))
     in
     B.make_explicit ~broker:0 ~number:0 ~entries ~agg_seq:1 ~stragglers:[||]
       ~agg_sig:(Some agg))

let bench_verify_dense =
  Test.make ~name:"ablation-repr: verify Dense batch (4096, prefix sums)"
    (Staged.stage (fun () ->
         assert (Repro_chopchop.Batch.verify (Lazy.force repr_dir) (Lazy.force repr_dense))))

let bench_verify_explicit =
  Test.make ~name:"ablation-repr: verify Explicit batch (4096)"
    (Staged.stage (fun () ->
         assert
           (Repro_chopchop.Batch.verify (Lazy.force repr_dir) (Lazy.force repr_explicit))))

(* Substrate primitives, for the record. *)
let bench_sha256 =
  let buf = String.make 4096 'x' in
  Test.make ~name:"substrate sha256 (4 KB)"
    (Staged.stage (fun () -> ignore (Crypto.Sha256.digest buf)))

let bench_field_mul =
  let a = Crypto.Field61.of_int 123456789123 and b = Crypto.Field61.of_int 998877665544 in
  Test.make ~name:"substrate field61 mul"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Crypto.Field61.mul a b))))

let micro_tests =
  [ bench_classic_auth; bench_distilled_auth; bench_merkle_batch;
    bench_tree_search; bench_linear_search; bench_sorted_dedup;
    bench_hashmap_dedup; bench_verify_dense; bench_verify_explicit;
    bench_payments; bench_auction; bench_pixelwar;
    bench_sha256; bench_field_mul ]

let run_bechamel () =
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  print_endline
    "=== Bechamel micro-suite (one Test.make per cost-bearing table/figure) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-52s %14.1f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-52s (no estimate)\n%!" name)
        results)
    micro_tests

(* Traced quick run: the smoke check behind `bench trace` and
   CHOPCHOP_TRACE=1.  Asserts the sink is non-empty, that every layer of
   the stack emitted events, and that the breakdown decomposed messages. *)
let run_trace_smoke () =
  let module Trace = Repro_trace.Trace in
  let module R = Repro_experiments.Chopchop_run in
  let module LB = Repro_experiments.Latency_breakdown in
  print_endline "\n=== Traced run (quick scale) ===";
  let params =
    { R.default with
      n_servers = 4; underlay = Repro_chopchop.Deployment.Pbft;
      rate = 100_000.; batch_count = 4096; n_load_brokers = 1;
      measure_clients = 4; duration = 10.; warmup = 4.; cooldown = 2.;
      dense_clients = 1_000_000 }
  in
  let result, breakdown, sink = LB.capture ~params () in
  assert (Trace.Sink.length sink > 0);
  let cats =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if List.mem e.ev_cat acc then acc else e.ev_cat :: acc)
      [] (Trace.Sink.events sink)
  in
  List.iter
    (fun cat ->
      if not (List.mem cat cats) then
        failwith (Printf.sprintf "trace smoke: no %S events captured" cat))
    [ "client"; "broker"; "server"; "stob" ];
  if LB.complete breakdown = 0 then
    failwith "trace smoke: no message fully decomposed";
  Format.printf "%a@.@." R.pp_result result;
  Format.printf "%a@." LB.pp breakdown;
  Printf.printf "trace smoke ok: %d events, cats: %s\n%!"
    (Trace.Sink.length sink)
    (String.concat " " (List.sort compare cats))

(* `bench json`: the machine-readable baseline behind the CI regression
   gate.  Runs the standard quick-scale configs under a memory trace sink,
   derives the paper's efficiency metrics, and writes a
   [Repro_metrics.Baseline] doc.  The sim is deterministic, so every gated
   metric reproduces exactly; the tolerances are slack for intentional,
   bounded behaviour changes. *)
let run_bench_json () =
  let module B = Repro_metrics.Baseline in
  let module Cell = Repro_experiments.Cell in
  (* Store on: WAL appends are fire-and-forget on a separate simulated
     device, so the protocol metrics are unchanged and the run also
     yields the gated WAL-overhead ratio.  [Cell.default] is exactly the
     quick-scale bench config; `chopchop sweep` runs the same cells, so
     a sweep cell at this config is bit-identical to this baseline. *)
  let configs =
    [ ("quick-pbft", { Cell.default with Cell.underlay = "pbft" });
      ("quick-hotstuff", { Cell.default with Cell.underlay = "hotstuff" }) ]
  in
  let bench_config (name, cell) =
    let t0 = Sys.time () in
    (* The profiler is write-only (no events, no RNG reads), so attaching
       it here does not move any gated metric — proved by test_prof. *)
    let out = Cell.run ~profile:true cell in
    let wall = Sys.time () -. t0 in
    let metric m =
      match List.assoc_opt m out.Cell.metrics with
      | Some v -> v
      | None -> failwith ("bench json: cell metric missing: " ^ m)
    in
    let gated tol direction m =
      { B.value = metric m; tolerance = Some tol; direction }
    in
    let info value = { B.value; tolerance = None; direction = B.Lower_better } in
    (* Simulator-efficiency metrics.  events_per_delivery is deterministic
       (engine events per delivered message) and gated: event-count bloat
       is a real scheduling regression.  minor_words_per_event is also
       reproducible for a fixed binary but tracks the compiler/allocator,
       not protocol behaviour — informational. *)
    let events_per_delivery =
      float_of_int out.Cell.sim_events /. Float.max 1. (metric "delivered_messages")
    in
    let minor_words_per_event =
      match out.Cell.prof with
      | Some p when p.Repro_prof.Prof.p_events > 0 ->
        p.Repro_prof.Prof.p_minor_words /. float_of_int p.Repro_prof.Prof.p_events
      | _ -> 0.
    in
    ( name,
      [ ("throughput_ops", gated 0.05 B.Higher_better "throughput_ops");
        ("latency_p50_s", gated 0.10 B.Lower_better "latency_p50_s");
        ("latency_p99_s", gated 0.15 B.Lower_better "latency_p99_s");
        ( "sig_verifies_per_decision",
          gated 0.10 B.Lower_better "sig_verifies_per_decision" );
        ( "wire_bytes_per_payload_byte",
          gated 0.10 B.Lower_better "wire_bytes_per_payload_byte" );
        ( "wal_bytes_per_payload_byte",
          gated 0.10 B.Lower_better "wal_bytes_per_payload_byte" );
        ( "broker_cpu_busy_s_per_payload_byte",
          gated 0.10 B.Lower_better "broker_cpu_busy_s_per_payload_byte" );
        ( "events_per_delivery",
          { B.value = events_per_delivery; tolerance = Some 0.05;
            direction = B.Lower_better } );
        ("minor_words_per_event", info minor_words_per_event);
        ("wall_time_s", info wall);
        (* Sim-speed self-benchmark: how fast the simulator itself runs on
           this machine.  Machine-dependent, hence ungated. *)
        ( "sim_events_per_wall_s",
          info (float_of_int out.Cell.sim_events /. Float.max wall 1e-9) );
        ("sim_s_per_wall_s", info (out.Cell.sim_seconds /. Float.max wall 1e-9))
      ] )
  in
  (* Reconfiguration under load (quick scale): gates the dynamic-membership
     extension.  Throughput before/after the ordered join+leave must track
     the offered load, and the join bring-up time (state transfer under
     sustained load) must stay bounded.  The reconfig-window throughput and
     probe latency are informational: they wobble with where the epoch
     changes land relative to the snapshot marks. *)
  let reconfig_config () =
    let module R = Repro_experiments.Reconfig_load in
    let t0 = Sys.time () in
    let r = R.metrics ~scale:Repro_experiments.Figures.Quick in
    let wall = Sys.time () -. t0 in
    let gated tol direction value = { B.value; tolerance = Some tol; direction } in
    let info value = { B.value; tolerance = None; direction = B.Lower_better } in
    ( "quick-reconfig",
      [ ("tput_before_msg_s", gated 0.05 B.Higher_better r.R.tput_before);
        ("tput_after_msg_s", gated 0.05 B.Higher_better r.R.tput_after);
        ("join_recovery_s", gated 0.25 B.Lower_better r.R.join_recovery_s);
        ("tput_reconfig_msg_s", info r.R.tput_reconfig);
        ("client_latency_mean_s", info r.R.client_latency_mean);
        ("final_epoch", gated 0.0 B.Higher_better (float_of_int r.R.final_epoch));
        ("wall_time_s", info wall) ] )
  in
  (* Broker scale-out (lib/fleet, quick scale): gates the multi-broker
     extension.  The metric is the 4-broker fleet's delivered throughput
     over the analytic single-broker NIC ceiling — the "add brokers past
     the network limit of one" claim in one number.  The tolerance is
     wide (10%) because the numerator sits at a saturation point: batch
     boundaries landing on the measurement window edges move it by a few
     percent across intentional pipeline changes. *)
  let scaleout_config () =
    let module S = Repro_experiments.Broker_scaleout in
    let t0 = Sys.time () in
    let speedup = S.speedup_4x () in
    let wall = Sys.time () -. t0 in
    ( "quick-scaleout",
      [ ( "scaleout_speedup_4x",
          { B.value = speedup; tolerance = Some 0.10;
            direction = B.Higher_better } );
        ("wall_time_s", { B.value = wall; tolerance = None;
                          direction = B.Lower_better }) ] )
  in
  (* Engine self-benchmark (lib/sim hot loop): calendar queue + event pool
     vs the legacy heap on a pure queue-churn workload.  Dispatch-order
     equality and pool effectiveness are deterministic and gated at
     tolerance 0; CPU seconds and the speedup are machine-dependent and
     informational (the CLI path `chopchop run engine-speed` hard-asserts
     the 2x separately). *)
  let engine_speed_config () =
    let module E = Repro_experiments.Engine_speed in
    let t0 = Sys.time () in
    let r = E.measure ~scale:Repro_experiments.Figures.Quick in
    let wall = Sys.time () -. t0 in
    let pin direction value =
      { B.value; tolerance = Some 0.0; direction }
    in
    let info value = { B.value; tolerance = None; direction = B.Lower_better } in
    ( "quick-engine-speed",
      [ ( "order_match",
          pin B.Higher_better (if r.E.order_match then 1.0 else 0.0) );
        ("events", pin B.Higher_better (float_of_int r.E.events));
        ("allocs_per_event", pin B.Lower_better r.E.allocs_per_event);
        ( "pool_reuse_ratio",
          pin B.Higher_better
            (float_of_int r.E.pool_reused
            /. Float.max 1. (float_of_int r.E.pool_fresh)) );
        ("heap_cpu_s", info r.E.heap_cpu_s);
        ("calendar_cpu_s", info r.E.cal_cpu_s);
        ("speedup_vs_heap", info r.E.speedup);
        ( "events_per_cpu_s",
          info (float_of_int r.E.events /. Float.max 1e-9 r.E.cal_cpu_s) );
        ("wall_time_s", info wall) ] )
  in
  print_endline "=== Bench baseline (quick-scale, deterministic) ===";
  let doc =
    { B.version = 1;
      readme =
        [ "BENCH_chopchop.json -- machine-readable bench baseline.";
          "Schema: {_readme, version, configs: {<config>: {<metric>:";
          "  {value, tolerance, direction}}}}.  direction is";
          "  higher_better or lower_better; tolerance is a relative";
          "  fraction of the baseline value, or null.";
          "Tolerance policy: tolerance null = informational only";
          "  (wall_time_s is machine-dependent); otherwise CI fails when";
          "  the new value is worse than baseline by more than the";
          "  fraction (worse = lower for higher_better, higher for";
          "  lower_better; improvements never fail).  The sim is";
          "  seeded and deterministic, so gated drift is a real code";
          "  behaviour change: regenerate with `dune exec bench/main.exe";
          "  -- json` and commit the new file alongside the change that";
          "  explains it.";
          "Gated vs informational split for the simulator-efficiency";
          "  metrics: events_per_delivery (engine events per delivered";
          "  message) is deterministic for a fixed seed and GATED --";
          "  event-count bloat is a real scheduling regression.";
          "  minor_words_per_event (lib/prof GC probe) reproduces for a";
          "  fixed binary but tracks the OCaml compiler/allocator, not";
          "  protocol behaviour, so it stays informational.";
          "quick-scaleout gates the lib/fleet multi-broker extension:";
          "  scaleout_speedup_4x = 4-broker delivered throughput over the";
          "  analytic single-broker NIC ceiling (higher_better, tol 10%:";
          "  the numerator sits at a saturation point, so batch edges on";
          "  the measurement window move it a few percent across";
          "  intentional pipeline changes; a drop below tolerance means";
          "  the fleet no longer scales past one broker's NIC).";
          "quick-engine-speed gates the lib/sim hot loop: order_match,";
          "  events, allocs_per_event and pool_reuse_ratio are";
          "  deterministic (tolerance 0) -- the calendar queue must";
          "  dispatch bit-identically to the legacy heap and keep pooling";
          "  effective.  CPU seconds / speedup are machine noise, info";
          "  only; `chopchop run engine-speed` hard-asserts the 2x.";
          "Compared by scripts/bench_compare (bench/compare.ml), which";
          "  scripts/ci.sh runs against a fresh `bench json` run." ];
      configs =
        List.map bench_config configs
        @ [ reconfig_config (); scaleout_config (); engine_speed_config () ] }
  in
  let out =
    match Sys.getenv_opt "CHOPCHOP_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_chopchop.json"
  in
  B.write ~path:out doc;
  List.iter
    (fun (cfg, metrics) ->
      Printf.printf "  %s\n" cfg;
      List.iter
        (fun (m, { B.value; tolerance; direction }) ->
          Printf.printf "    %-28s %14.6g  %s%s\n" m value
            (match direction with
             | B.Higher_better -> "higher-better"
             | B.Lower_better -> "lower-better")
            (match tolerance with
             | Some t -> Printf.sprintf ", tol %g%%" (100. *. t)
             | None -> ", info only"))
        metrics)
    doc.B.configs;
  Printf.printf "baseline -> %s\n%!" out

let () =
  let scale =
    match Sys.getenv_opt "CHOPCHOP_BENCH_SCALE" with
    | Some "full" -> Repro_experiments.Figures.Full
    | _ -> Repro_experiments.Figures.Quick
  in
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "micro" || what = "all" then run_bechamel ();
  if what = "figures" || what = "all" then begin
    Printf.printf
      "\n=== Figure harness (scale: %s; set CHOPCHOP_BENCH_SCALE=full for the 64-server setup) ===\n%!"
      (match scale with Repro_experiments.Figures.Full -> "full" | _ -> "quick");
    Repro_experiments.Figures.run_all Format.std_formatter scale;
    Repro_experiments.Future.print Format.std_formatter scale
  end;
  if what = "trace" || Sys.getenv_opt "CHOPCHOP_TRACE" = Some "1" then
    run_trace_smoke ();
  if what = "json" then run_bench_json ();
  if what = "chaos" then begin
    let module C = Repro_chaos.Chaos in
    let chaos_scale =
      match scale with
      | Repro_experiments.Figures.Full -> C.Full
      | _ -> C.Quick
    in
    Printf.printf "\n=== Chaos scenarios (scale: %s) ===\n%!"
      (C.scale_to_string chaos_scale);
    let verdicts = C.run_all ~seed:42L ~scale:chaos_scale in
    List.iter (fun v -> Format.printf "%a@." C.pp_verdict v) verdicts;
    let failed = List.filter (fun v -> not v.C.v_pass) verdicts in
    if failed <> [] then
      failwith
        (Printf.sprintf "chaos: %d scenario(s) failed" (List.length failed));
    Printf.printf "chaos ok: %d/%d scenarios passed\n%!" (List.length verdicts)
      (List.length verdicts)
  end
