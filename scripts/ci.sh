#!/bin/sh
# CI entry point: full build, the complete test suite, and a
# trace-enabled bench smoke run (quick scale) that asserts a non-empty
# trace with every pipeline layer present and a telescoping latency
# breakdown.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== chaos fault-injection smoke =="
dune exec bin/main.exe -- chaos --scenario kitchen-sink --scale quick

echo "== recovery smoke: crash -> cold restart -> catch-up =="
# Acceptance scenario for the durable store: a crashed server cold
# restarts from its WAL/checkpoint, state-transfers the rest from live
# peers, and ends with the same app digest as a never-crashed replica
# while collection advanced past the crash window.
dune exec bin/main.exe -- chaos --scenario crash-cold-restart --scale quick
dune exec bin/main.exe -- store

echo "== trace-enabled bench smoke =="
CHOPCHOP_BENCH_SCALE=quick dune exec bench/main.exe -- trace

echo "== broker multi-core scalability smoke =="
# Sweeps 1/4/16/32 worker lanes on one overloaded broker; the experiment
# itself fails if throughput is not monotone in lanes or does not
# saturate at the NIC bound.
dune exec bin/main.exe -- run broker-cores --scale quick

echo "== bench baseline regression gate =="
# Regenerate the machine-readable baseline and diff it against the
# committed one; the sim is deterministic, so any gated drift is a real
# code-behaviour change (regenerate + commit BENCH_chopchop.json when
# intentional).
tmp_bench="$(mktemp)"
trap 'rm -f "$tmp_bench"' EXIT
CHOPCHOP_BENCH_OUT="$tmp_bench" dune exec bench/main.exe -- json
scripts/bench_compare BENCH_chopchop.json "$tmp_bench"

echo "ci ok"
