#!/bin/sh
# CI entry point: full build, the complete test suite, and a
# trace-enabled bench smoke run (quick scale) that asserts a non-empty
# trace with every pipeline layer present and a telescoping latency
# breakdown.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== chaos fault-injection smoke =="
dune exec bin/main.exe -- chaos --scenario kitchen-sink --scale quick

echo "== recovery smoke: crash -> cold restart -> catch-up =="
# Acceptance scenario for the durable store: a crashed server cold
# restarts from its WAL/checkpoint, state-transfers the rest from live
# peers, and ends with the same app digest as a never-crashed replica
# while collection advanced past the crash window.
dune exec bin/main.exe -- chaos --scenario crash-cold-restart --scale quick
dune exec bin/main.exe -- store

echo "== trace-enabled bench smoke =="
CHOPCHOP_BENCH_SCALE=quick dune exec bench/main.exe -- trace

echo "== reconfiguration smoke: ordered membership under adversarial load =="
# Kitchen-sink reconfiguration: join + leave + rolling restarts with a
# flash crowd and spam clients in flight; every surviving replica must
# land on the same epoch and app digest.  The experiment then measures
# the throughput cost of an ordered join + leave under sustained load.
dune exec bin/main.exe -- chaos --scenario reconfig-kitchen-sink --scale quick
dune exec bin/main.exe -- run reconfig-load --scale quick

echo "== broker multi-core scalability smoke =="
# Sweeps 1/4/16/32 worker lanes on one overloaded broker; the experiment
# itself fails if throughput is not monotone in lanes or does not
# saturate at the NIC bound.
dune exec bin/main.exe -- run broker-cores --scale quick

echo "== broker fleet scale-out smoke =="
# lib/fleet: 1/2/4/8 hash-partitioned brokers under per-point saturation;
# the experiment itself fails if delivered throughput is not monotone in
# fleet size, if 2 brokers do not clear the single-broker NIC bound, or
# if 4 brokers land below 2.5x it.
dune exec bin/main.exe -- run broker-scaleout --scale quick

echo "== fleet chaos smoke: broker crash failover + hot shard =="
# fleet-broker-crash: the hottest home broker crashes mid-run; clients
# walk their failover rotation, the signup shard hands off to the same
# successor, and every broadcast still completes.  fleet-hot-shard: a
# greedy flood aimed at one partition is shed by the servers' per-broker
# fair-admission budget without starving the sibling brokers.
dune exec bin/main.exe -- chaos --scenario fleet-broker-crash --scale quick
dune exec bin/main.exe -- chaos --scenario fleet-hot-shard --scale quick

echo "== sweep orchestrator smoke =="
# Tiny manifest, run serially: the aggregated results file must exist
# and parse with every cell present (--figures re-reads it through the
# same parser), and a second invocation must resume (skip all completed
# cells) rather than re-run.
sweep_out="$(mktemp -d)"
dune exec bin/main.exe -- sweep --manifest examples/sweep-ci.json \
  --out "$sweep_out" --serial
ls "$sweep_out"/results-*.json >/dev/null \
  || { echo "sweep smoke: no results file"; exit 1; }
dune exec bin/main.exe -- sweep --manifest examples/sweep-ci.json \
  --out "$sweep_out" --figures | grep -q "cells, 0 missing" \
  || { echo "sweep smoke: results file invalid or incomplete"; exit 1; }
dune exec bin/main.exe -- sweep --manifest examples/sweep-ci.json \
  --out "$sweep_out" --serial | grep -q "0 completed, 4 resumed" \
  || { echo "sweep smoke: resume did not engage"; exit 1; }
rm -rf "$sweep_out"

echo "== engine hot-loop smoke: calendar queue vs legacy heap =="
# The engine self-benchmark runs the same deterministic queue-churn
# workload under both event-queue implementations; the experiment itself
# fails if the calendar's dispatch order diverges from the heap's, if
# the event pool is ineffective, or if the calendar loop does not clear
# 2x the heap's events per CPU second at quick scale.
dune exec bin/main.exe -- run engine-speed --scale quick

echo "== profiler / doctor smoke =="
# The engine self-profiler is a pure observer: two same-seed `chopchop
# profile` runs must produce byte-identical deterministic JSON (--no-wall
# strips the machine-dependent half), and the health doctor must produce
# a non-empty structured diagnosis on a deliberately stalled scenario
# (an unhealed full partition).
prof_dir="$(mktemp -d)"
dune exec bin/main.exe -- profile --no-wall -o "$prof_dir/p1.json" >/dev/null
dune exec bin/main.exe -- profile --no-wall -o "$prof_dir/p2.json" >/dev/null
cmp "$prof_dir/p1.json" "$prof_dir/p2.json" \
  || { echo "profile smoke: deterministic profile JSON differs between runs"; exit 1; }
dune exec bin/main.exe -- doctor --scenario stall-partition \
  -o "$prof_dir/diag.json" >"$prof_dir/doctor.out"
grep -q "Doctor diagnosis" "$prof_dir/doctor.out" \
  || { echo "doctor smoke: no diagnosis on stalled scenario"; exit 1; }
grep -q '"phase"' "$prof_dir/diag.json" \
  || { echo "doctor smoke: diagnosis JSON empty or missing phase"; exit 1; }
rm -rf "$prof_dir"

echo "== bench baseline regression gate =="
# Regenerate the machine-readable baseline and diff it against the
# committed one; the sim is deterministic, so any gated drift is a real
# code-behaviour change (regenerate + commit BENCH_chopchop.json when
# intentional).
tmp_bench="$(mktemp)"
trap 'rm -f "$tmp_bench"' EXIT
CHOPCHOP_BENCH_OUT="$tmp_bench" dune exec bench/main.exe -- json
scripts/bench_compare BENCH_chopchop.json "$tmp_bench"

echo "ci ok"
