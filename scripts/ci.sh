#!/bin/sh
# CI entry point: full build, the complete test suite, and a
# trace-enabled bench smoke run (quick scale) that asserts a non-empty
# trace with every pipeline layer present and a telescoping latency
# breakdown.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== chaos fault-injection smoke =="
dune exec bin/main.exe -- chaos --scenario kitchen-sink --scale quick

echo "== trace-enabled bench smoke =="
CHOPCHOP_BENCH_SCALE=quick dune exec bench/main.exe -- trace

echo "ci ok"
