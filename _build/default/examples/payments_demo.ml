(* Payments on Chop Chop (§2.1, §6.8).

   Eight clients run a payment system where the *sender* field costs
   nothing on the wire: Chop Chop authenticates every message, so the
   delivered client id IS the authenticated sender.  An 8-byte message
   carries recipient and amount — the exact encoding of the paper's cost
   analysis.  The demo checks conservation of money across every server's
   replica.

   Run with:  dune exec examples/payments_demo.exe *)

open Repro_chopchop

let n_clients = 8

let () =
  let cfg =
    { Deployment.default_config with n_servers = 4; underlay = Deployment.Pbft }
  in
  let d = Deployment.create cfg in

  (* One replica of the app per server, fed by its delivery stream. *)
  let apps = Array.map (fun _ -> Repro_apps.Payments.create ()) (Deployment.servers d) in
  Deployment.server_deliver_hook d (fun server delivery ->
      ignore (Repro_apps.Payments.apply_delivery apps.(server) delivery));

  let clients = List.init n_clients (fun _ -> Deployment.add_client d ()) in
  List.iter Client.signup clients;
  Deployment.run d ~until:5.0;

  let supply0 = Repro_apps.Payments.total_supply apps.(0) in

  (* Every client pays the next one a random-ish amount, twice. *)
  List.iteri
    (fun i c ->
      match Client.id c with
      | None -> ()
      | Some id ->
        let recipient = (id + 1) mod n_clients in
        Client.broadcast c
          (Repro_apps.Payments.encode_op ~recipient ~amount:(100 + (i * 7)));
        Client.broadcast c (Repro_apps.Payments.encode_op ~recipient ~amount:50))
    clients;
  Deployment.run d ~until:40.0;

  Array.iteri
    (fun i app ->
      Format.printf "server %d: %d payments applied, %d rejected, supply %s@."
        i
        (Repro_apps.Payments.ops_applied app)
        (Repro_apps.Payments.rejected app)
        (if Repro_apps.Payments.total_supply app = supply0 then "conserved"
         else "VIOLATED"))
    apps;
  List.iteri
    (fun i c ->
      match Client.id c with
      | Some id ->
        Format.printf "client %d (id %d) balance at server 0: %d@." i id
          (Repro_apps.Payments.balance apps.(0) id)
      | None -> ())
    clients
