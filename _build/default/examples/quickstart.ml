(* Quickstart: a minimal Chop Chop system, end to end.

   Builds a 4-server deployment with a PBFT-style underlying Atomic
   Broadcast and two brokers, signs three clients up through the Rank
   directory, broadcasts a few messages and watches every server deliver
   the same sequence — ordered, authenticated, deduplicated.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_chopchop

let () =
  (* 1. A deployment: 4 geo-distributed servers (f = 1), 2 brokers. *)
  let cfg = { Deployment.default_config with underlay = Deployment.Pbft } in
  let d = Deployment.create cfg in

  (* 2. Observe what server 0 delivers to the application. *)
  let log = ref [] in
  Deployment.server_deliver_hook d (fun server delivery ->
      if server = 0 then
        match delivery with
        | Proto.Ops ops -> Array.iter (fun op -> log := op :: !log) ops
        | Proto.Bulk _ -> ());

  (* 3. Three clients sign up (their public keys travel through the
        underlying Atomic Broadcast; every server assigns the same id). *)
  let clients =
    List.init 3 (fun i ->
        Deployment.add_client d
          ~on_delivered:(fun msg ~latency ->
            Format.printf "client %d: %S delivered in %.2f s@." i msg latency)
          ())
  in
  List.iter Client.signup clients;
  Deployment.run d ~until:5.0;
  List.iteri
    (fun i c ->
      match Client.id c with
      | Some id -> Format.printf "client %d signed up as id %d@." i id
      | None -> Format.printf "client %d: sign-up pending?!@." i)
    clients;

  (* 4. Broadcast. Messages from one client are totally ordered across
        all servers; duplicates are dropped by sequence number. *)
  List.iteri
    (fun i c ->
      Client.broadcast c (Printf.sprintf "hello-%d" i);
      Client.broadcast c (Printf.sprintf "world-%d" i))
    clients;
  Deployment.run d ~until:30.0;

  (* 5. All servers delivered the same thing. *)
  let delivered = List.rev !log in
  Format.printf "@.server 0 delivered %d messages:@." (List.length delivered);
  List.iter (fun (id, msg) -> Format.printf "  id %d: %S@." id msg) delivered;
  let counts =
    Array.map Server.delivered_messages (Deployment.servers d)
  in
  Format.printf "deliveries per server: %s@."
    (String.concat ", " (Array.to_list (Array.map string_of_int counts)))
