(* The Auction house on Chop Chop (§6.8).

   Clients bid on a contended token and the owner takes the best offer.
   Atomic Broadcast's total order is what makes "highest bid" well-defined
   across replicas; Chop Chop's authentication is what binds a bid to the
   bidder's account without any signature inside the app.

   Run with:  dune exec examples/auction_demo.exe *)

open Repro_chopchop
module A = Repro_apps.Auction

let () =
  let cfg =
    { Deployment.default_config with n_servers = 4; underlay = Deployment.Pbft }
  in
  let d = Deployment.create cfg in
  let apps = Array.map (fun _ -> A.create ~tokens:4 ()) (Deployment.servers d) in
  Deployment.server_deliver_hook d (fun server delivery ->
      ignore (A.apply_delivery apps.(server) delivery));

  let clients = List.init 5 (fun _ -> Deployment.add_client d ()) in
  List.iter Client.signup clients;
  Deployment.run d ~until:5.0;
  let ids = List.filter_map Client.id clients in
  (match ids with
   | owner_id :: bidders ->
     let token = owner_id mod 4 in
     Format.printf "token %d starts owned by account %d@." token
       (A.owner apps.(0) token);
     (* Everyone else bids increasing amounts on the owner's token. *)
     List.iteri
       (fun i bidder ->
         let c = List.nth clients (i + 1) in
         ignore bidder;
         Client.broadcast c (A.encode_op (A.Bid { token; amount = 100 * (i + 1) })))
       bidders;
     Deployment.run d ~until:20.0;
     (match A.highest_bid apps.(0) token with
      | Some (acct, amount) ->
        Format.printf "highest bid: %d by account %d@." amount acct
      | None -> Format.printf "no standing bid?!@.");
     (* The owner takes the offer. *)
     Client.broadcast (List.hd clients) (A.encode_op (A.Take { token }));
     Deployment.run d ~until:40.0;
     Array.iteri
       (fun i app ->
         Format.printf "server %d: token %d owner %d, ops %d (rejected %d), funds %s@."
           i token (A.owner app token) (A.ops_applied app) (A.rejected app)
           (if A.total_funds app = A.total_funds apps.(0) then "agree" else "DISAGREE"))
       apps
   | [] -> ())
