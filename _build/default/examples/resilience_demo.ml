(* Resilience demo: Byzantine brokers and clients, crashing servers.

   Chop Chop's safety does not rest on brokers (§4.1 "brokers need no
   trust"): this demo runs a client population through a healthy system
   while (a) a client submits garbage multi-signature shares — it still
   completes, as a straggler, authenticated by its fallback signature;
   (b) a client never answers inclusion proofs — same; and (c) a server
   crashes mid-run — throughput continues with f = 1 of 4 down.

   Run with:  dune exec examples/resilience_demo.exe *)

open Repro_chopchop

let () =
  let cfg = { Deployment.default_config with underlay = Deployment.Pbft } in
  let d = Deployment.create cfg in
  let delivered = ref 0 in
  Deployment.server_deliver_hook d (fun server delivery ->
      if server = 1 then delivered := !delivered + Proto.delivery_count delivery);

  let mk label =
    Deployment.add_client d
      ~on_delivered:(fun msg ~latency ->
        Format.printf "%-14s %S delivered in %.2f s@." label msg latency)
      ()
  in
  let honest = mk "honest:" in
  let bad_share = mk "bad-share:" in
  let mute = mk "mute:" in
  List.iter Client.signup [ honest; bad_share; mute ];
  Deployment.run d ~until:5.0;

  Client.misbehave_bad_share bad_share;
  Client.misbehave_mute_reduction mute;

  Client.broadcast honest "h1";
  Client.broadcast bad_share "b1";
  Client.broadcast mute "m1";

  (* Crash a server (not the PBFT view-0 leader, to keep the demo brisk;
     the protocol survives leader crashes too, via view change). *)
  Repro_sim.Engine.schedule (Deployment.engine d) ~delay:6.0 (fun () ->
      Format.printf "-- crashing server 3 --@.";
      Deployment.crash_server d 3);

  Client.broadcast honest "h2";
  Deployment.run d ~until:60.0;
  Format.printf "@.server 1 delivered %d messages (expected 4)@." !delivered;
  Format.printf "every correct server delivered: %s@."
    (String.concat ", "
       (List.filteri (fun i _ -> i < 3) (Array.to_list (Deployment.servers d))
       |> List.map (fun s -> string_of_int (Server.delivered_messages s))))
