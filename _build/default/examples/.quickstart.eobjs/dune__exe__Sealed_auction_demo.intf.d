examples/sealed_auction_demo.mli:
