examples/resilience_demo.ml: Array Client Deployment Format List Proto Repro_chopchop Repro_sim Server String
