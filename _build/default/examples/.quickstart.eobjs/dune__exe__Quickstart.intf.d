examples/quickstart.mli:
