examples/quickstart.ml: Array Client Deployment Format List Printf Proto Repro_chopchop Server String
