examples/pixelwar_demo.ml: Array Client Deployment Format List Repro_apps Repro_chopchop
