examples/pixelwar_demo.mli:
