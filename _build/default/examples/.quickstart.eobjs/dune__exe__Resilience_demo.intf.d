examples/resilience_demo.mli:
