examples/payments_demo.mli:
