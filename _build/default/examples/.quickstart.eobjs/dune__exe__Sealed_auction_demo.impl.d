examples/sealed_auction_demo.ml: Array Client Deployment Format Proto Repro_apps Repro_chopchop
