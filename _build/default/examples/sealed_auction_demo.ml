(* Front-running protection on Chop Chop (§4.4.3).

   A Byzantine broker sees bids before they are ordered and could outbid
   them (front-running).  The encrypt-order-reveal pattern closes this:
   clients broadcast a hash commitment first, and reveal the bid only
   after the commitment's position in the total order is fixed.  The
   Sealed executor then applies bids in *seal* order — whoever committed
   first wins ties, and nobody (broker included) learns a bid before its
   place in line is settled.

   Run with:  dune exec examples/sealed_auction_demo.exe *)

open Repro_chopchop
module A = Repro_apps.Auction
module S = Repro_apps.Sealed

let () =
  let cfg = { Deployment.default_config with underlay = Deployment.Pbft } in
  let d = Deployment.create cfg in
  (* One auction replica per server, fed through a Sealed executor. *)
  let replicas =
    Array.map
      (fun _ ->
        let auction = A.create ~tokens:2 () in
        let sealed =
          S.create ~apply:(fun id msg -> ignore (A.apply_op auction id msg)) ()
        in
        (auction, sealed))
      (Deployment.servers d)
  in
  Deployment.server_deliver_hook d (fun srv delivery ->
      let auction, sealed = replicas.(srv) in
      match delivery with
      | Proto.Ops ops ->
        Array.iter
          (fun (id, msg) ->
            if S.is_frame msg then S.on_deliver sealed id msg
            else ignore (A.apply_op auction id msg))
          ops
      | Proto.Bulk _ -> ());

  let alice = Deployment.add_client d () in
  let bob = Deployment.add_client d () in
  Client.signup alice;
  Client.signup bob;
  Deployment.run d ~until:5.0;

  (* Both bid on token 0 under seal; Bob's bid is higher, but Alice's
     seal lands first. *)
  let alice_bid = A.encode_op (A.Bid { token = 0; amount = 300 }) in
  let bob_bid = A.encode_op (A.Bid { token = 0; amount = 500 }) in
  Client.broadcast alice (S.seal ~payload:alice_bid ~salt:"alice-salt");
  Client.broadcast bob (S.seal ~payload:bob_bid ~salt:"bob-salt");
  Deployment.run d ~until:20.0;
  Format.printf "both seals ordered; no replica knows any bid amount yet:@.";
  Array.iteri
    (fun i (auction, sealed) ->
      Format.printf "  server %d: executed=%d pending=%d highest-bid=%s@." i
        (S.executed sealed) (S.pending sealed)
        (match A.highest_bid auction 0 with
         | Some _ -> "LEAKED?!"
         | None -> "unknown"))
    replicas;

  (* Reveals: delivery order of reveals does not matter, execution
     follows seal order. *)
  Client.broadcast bob (S.reveal ~payload:bob_bid ~salt:"bob-salt");
  Client.broadcast alice (S.reveal ~payload:alice_bid ~salt:"alice-salt");
  Deployment.run d ~until:60.0;
  Array.iteri
    (fun i (auction, sealed) ->
      match A.highest_bid auction 0 with
      | Some (acct, amount) ->
        Format.printf "server %d: executed=%d, highest bid %d by account %d@." i
          (S.executed sealed) amount acct
      | None -> Format.printf "server %d: no bid?!@." i)
    replicas
