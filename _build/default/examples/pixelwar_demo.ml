(* Pixel war on Chop Chop (§6.8).

   Clients paint pixels on a shared 2,048x2,048 board; delivery order
   settles conflicts.  The demo paints a contended pixel from two clients
   and verifies every server ends with the same colour — whichever the
   Atomic Broadcast ordered last.

   Run with:  dune exec examples/pixelwar_demo.exe *)

open Repro_chopchop
module P = Repro_apps.Pixelwar

let () =
  let cfg =
    { Deployment.default_config with n_servers = 4; underlay = Deployment.Hotstuff }
  in
  let d = Deployment.create cfg in
  let apps = Array.map (fun _ -> P.create ()) (Deployment.servers d) in
  Deployment.server_deliver_hook d (fun server delivery ->
      ignore (P.apply_delivery apps.(server) delivery));

  let alice = Deployment.add_client d () in
  let bob = Deployment.add_client d () in
  Client.signup alice;
  Client.signup bob;
  Deployment.run d ~until:5.0;

  (* Both fight over (100, 200); they also each paint a private pixel. *)
  Client.broadcast alice (P.encode_op ~x:100 ~y:200 ~rgb:0xFF0000);
  Client.broadcast bob (P.encode_op ~x:100 ~y:200 ~rgb:0x0000FF);
  Client.broadcast alice (P.encode_op ~x:1 ~y:1 ~rgb:0x00FF00);
  Client.broadcast bob (P.encode_op ~x:2 ~y:2 ~rgb:0xFFFF00);
  Deployment.run d ~until:40.0;

  Array.iteri
    (fun i app ->
      Format.printf "server %d: (100,200)=#%06x (1,1)=#%06x (2,2)=#%06x painted=%d@."
        i (P.pixel app ~x:100 ~y:200) (P.pixel app ~x:1 ~y:1)
        (P.pixel app ~x:2 ~y:2) (P.painted app))
    apps;
  let colours =
    Array.map (fun app -> P.pixel app ~x:100 ~y:200) apps |> Array.to_list
    |> List.sort_uniq compare
  in
  Format.printf "contended pixel agrees across servers: %b@."
    (List.length colours = 1)
