(** Merkle trees over byte-string leaves (the zebra stand-in, §4.2).

    Chop Chop brokers commit to a batch by the Merkle root of its payload
    vector and hand each client an O(log b) inclusion proof instead of the
    whole batch.  Leaf and internal hashes are domain-separated so a leaf
    cannot be confused with an internal node. *)

type t
(** An immutable tree built over a fixed leaf vector. *)

type root = string
(** 32-byte commitment. *)

type proof
(** Inclusion proof: the sibling path from a leaf to the root. *)

val build : string array -> t
(** Build a tree over the given leaves.  The array must be non-empty.
    Odd nodes are promoted unchanged to the next level. *)

val root : t -> root
val leaf_count : t -> int

val prove : t -> int -> proof
(** [prove t i] is the inclusion proof for leaf [i].
    @raise Invalid_argument if [i] is out of range. *)

val verify : root -> leaf:string -> proof -> bool
(** [verify root ~leaf proof] checks that [leaf] is committed under [root]
    at the position recorded in [proof]. *)

val proof_index : proof -> int
(** Position of the proven leaf in the committed vector. *)

val proof_length : proof -> int
(** Number of siblings in the path, i.e. ⌈log2 leaf_count⌉ for full
    levels. *)

val proof_size_bytes : proof -> int
(** Wire size of the proof: 32 B per sibling plus an 8 B index — the
    figure used by the network model when a broker sends inclusion
    proofs to clients. *)

val root_equal : root -> root -> bool
val pp_root : Format.formatter -> root -> unit
