type root = string

(* levels.(0) is the leaf-hash level; the last level is the singleton root.
   Odd nodes are promoted unchanged, so level l has ceil(n / 2^l) nodes. *)
type t = { levels : string array array }

type proof = { index : int; path : (bool * string) list }
(* Each path element is (sibling_is_left, sibling_hash), leaf to root. *)

let hash_leaf leaf = Sha256.digest_list [ "\x00"; leaf ]
let hash_node l r = Sha256.digest_list [ "\x01"; l; r ]

let build leaves =
  if Array.length leaves = 0 then invalid_arg "Merkle.build: empty leaf vector";
  let rec up acc level =
    let n = Array.length level in
    if n = 1 then List.rev (level :: acc)
    else begin
      let parent = Array.make ((n + 1) / 2) "" in
      for i = 0 to (n / 2) - 1 do
        parent.(i) <- hash_node level.(2 * i) level.((2 * i) + 1)
      done;
      if n land 1 = 1 then parent.((n - 1) / 2) <- level.(n - 1);
      up (level :: acc) parent
    end
  in
  let leaf_level = Array.map hash_leaf leaves in
  { levels = Array.of_list (up [] leaf_level) }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let leaf_count t = Array.length t.levels.(0)

let prove t index =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.prove: index out of range";
  let path = ref [] in
  let i = ref index in
  for l = 0 to Array.length t.levels - 2 do
    let level = t.levels.(l) in
    let n = Array.length level in
    let sib = if !i land 1 = 1 then !i - 1 else !i + 1 in
    (* A promoted odd node has no sibling at this level. *)
    if sib < n then path := ((!i land 1 = 1), level.(sib)) :: !path;
    i := !i / 2
  done;
  { index; path = List.rev !path }

let verify root_hash ~leaf { index = _; path } =
  let h =
    List.fold_left
      (fun h (sibling_is_left, sib) ->
        if sibling_is_left then hash_node sib h else hash_node h sib)
      (hash_leaf leaf) path
  in
  String.equal h root_hash

let proof_index p = p.index
let proof_length p = List.length p.path
let proof_size_bytes p = (32 * List.length p.path) + 8

let root_equal = String.equal
let pp_root fmt r = Format.pp_print_string fmt (Sha256.to_hex r)
