(** Arithmetic in the prime field Z_p with p = 2^61 - 1 (a Mersenne prime).

    Elements are represented as native [int] values in the canonical range
    [0, p-1].  The Mersenne structure lets every operation stay within the
    63-bit native integer without an external bignum dependency, which is
    the reason this field underlies the simulation-grade signature schemes
    (see {!Schnorr} and {!Multisig}).

    All functions expect canonical inputs and produce canonical outputs;
    [of_int] canonicalises arbitrary integers. *)

type t = private int

val p : int
(** The modulus, [2^61 - 1]. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] reduces [n] modulo [p] (correct for any native [int],
    including negative values). *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Full 61x61-bit modular multiplication via 31/30-bit limb splitting. *)

val mul_slow : t -> t -> t
(** Reference implementation of {!mul} by double-and-add; used by the
    property tests to cross-check the limb arithmetic. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0], square-and-multiply. *)

val inv : t -> t
(** Multiplicative inverse by Fermat's little theorem.
    @raise Division_by_zero on [zero]. *)

val div : t -> t -> t

val of_bytes : string -> t
(** Folds an arbitrary byte string (e.g. a SHA-256 digest) into a field
    element.  Uniform up to the negligible bias of reducing 64 bits mod p. *)

val random : (unit -> int64) -> t
(** [random next64] draws a uniformly distributed element using the given
    64-bit generator (rejection sampling on the top bits). *)

val pp : Format.formatter -> t -> unit
