type secret_key = Field61.t
type public_key = Field61.t
type signature = Field61.t

let generator = Field61.of_int 11

let scale x = Field61.mul generator x

let public_key_of_secret sk = scale sk

let keygen next64 =
  let sk = Field61.random next64 in
  (sk, scale sk)

let keygen_deterministic ~seed =
  let sk = Field61.of_bytes (Sha256.digest ("ms-keygen|" ^ seed)) in
  (sk, scale sk)

let hash_to_field msg = Field61.of_bytes (Sha256.digest ("ms-h2f|" ^ msg))

let sign sk msg = Field61.mul sk (hash_to_field msg)

let aggregate_signatures sigs = List.fold_left Field61.add Field61.zero sigs

let aggregate_public_keys pks = List.fold_left Field61.add Field61.zero pks

(* Shares are x_i * H(m); the aggregate is (Σ x_i) * H(m).  Scaling it by G
   must equal H(m) * Σ pk_i since pk_i = x_i * G. *)
let verify agg_pk msg agg_sig =
  Field61.equal (scale agg_sig) (Field61.mul (hash_to_field msg) agg_pk)

let verify_multi pks msg agg_sig = verify (aggregate_public_keys pks) msg agg_sig

let signature_equal = Field61.equal
let pp_signature = Field61.pp

let find_invalid entries msg =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let bad = ref [] in
  (* Verify the aggregate over [lo, hi); recurse into halves on failure.
     A singleton failing range pinpoints an invalid share. *)
  let rec search lo hi =
    if lo < hi then begin
      let pks = ref Field61.zero and sigs = ref Field61.zero in
      for i = lo to hi - 1 do
        let pk, s = arr.(i) in
        pks := Field61.add !pks pk;
        sigs := Field61.add !sigs s
      done;
      if not (verify !pks msg !sigs) then
        if hi - lo = 1 then bad := lo :: !bad
        else begin
          let mid = lo + ((hi - lo) / 2) in
          search lo mid;
          search mid hi
        end
    end
  in
  search 0 n;
  List.rev !bad

let forge_garbage () = Field61.of_int 1

let aggregate_secret_keys sks = List.fold_left Field61.add Field61.zero sks

let diff_secret_keys a b = Field61.sub a b
