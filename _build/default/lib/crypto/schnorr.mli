(** Simulation-grade Schnorr signatures — the repository's Ed25519 stand-in.

    The scheme is key-prefixed Schnorr with a Fiat–Shamir challenge over
    SHA-256, instantiated in the additive group of {!Field61} (see DESIGN.md
    §1): the algebra, API and batch-verification structure are exactly
    those of Ed25519, but the group is 61-bit and linear, so the scheme is
    {b not} secure against an adversary willing to divide field elements.
    Experiments charge CPU time for these operations from the calibrated
    cost model ({!Repro_sim.Cost}), never from wall-clock time of this code.

    Wire sizes reported by {!Repro_chopchop.Wire} use the paper's Ed25519
    constants (32 B public keys, 64 B signatures) regardless of the
    in-memory representation here. *)

type secret_key
type public_key = Field61.t
type signature = { r : Field61.t; s : Field61.t }

val generator : Field61.t

val keygen : (unit -> int64) -> secret_key * public_key
(** Derive a fresh key pair from the given 64-bit randomness source. *)

val keygen_deterministic : seed:string -> secret_key * public_key
(** Key pair derived deterministically from a seed string; used to give
    millions of simulated clients stable identities without storing them. *)

val public_key_of_secret : secret_key -> public_key

val sign : secret_key -> string -> signature
(** Deterministic signing (nonce derived from the secret key and message,
    as in Ed25519). *)

val verify : public_key -> string -> signature -> bool

val batch_verify : (public_key * string * signature) list -> bool
(** Random-linear-combination batch verification: a single aggregate check
    accepts iff (with overwhelming probability) every individual signature
    verifies.  Mirrors [ed25519-dalek]'s [verify_batch], which the paper's
    brokers rely on (§5.1). *)

val pp_public_key : Format.formatter -> public_key -> unit
val pp_signature : Format.formatter -> signature -> unit

val signature_equal : signature -> signature -> bool

val forge_garbage : unit -> signature
(** An arbitrary signature that verifies under no honest key/message pair
    (up to hash collisions); used by fault-injection tests. *)
