(** Simulation-grade aggregatable multi-signatures — the BLS12-381 stand-in.

    Exactly the API shape Chop Chop needs from BLS (§3 of the paper):

    - signers independently produce shares on the {e same} message;
    - any third party (the broker) aggregates shares and public keys
      non-interactively, by a single group operation per element;
    - an aggregate signature verifies in constant time against the
      aggregate public key;
    - partial aggregates can themselves be aggregated (the broker's
      tree-search for invalid shares in §5.1 relies on this).

    The instantiation is linear over {!Field61}: sk [x], pk [x·G], share on
    [m] is [x·H(m)].  Aggregation is field addition, so the homomorphism
    the protocol depends on holds by construction.  Like {!Schnorr}, this
    is a functional model, not production cryptography (see DESIGN.md §1);
    experiment CPU costs come from the calibrated model, and wire sizes use
    the paper's BLS constants (96/192 B signatures). *)

type secret_key
type public_key = Field61.t

type signature
(** A multi-signature share or an aggregate of shares — the type does not
    distinguish them, mirroring BLS. *)

val keygen : (unit -> int64) -> secret_key * public_key
val keygen_deterministic : seed:string -> secret_key * public_key
val public_key_of_secret : secret_key -> public_key

val sign : secret_key -> string -> signature
(** Produce this signer's share on [msg]. *)

val aggregate_signatures : signature list -> signature
(** Sum of shares; associative, so partial aggregates compose. *)

val aggregate_public_keys : public_key list -> public_key

val verify : public_key -> string -> signature -> bool
(** [verify agg_pk msg agg_sig] — constant-time check of an aggregate
    (or a single share, which is a singleton aggregate). *)

val verify_multi : public_key list -> string -> signature -> bool
(** Convenience: aggregate the keys then {!verify}.  Linear in the number
    of keys, constant in everything else — the cost profile the paper's
    servers exploit (§3.2). *)

val signature_equal : signature -> signature -> bool
val pp_signature : Format.formatter -> signature -> unit

val aggregate_secret_keys : secret_key list -> secret_key
(** Simulation-only helper: the sum of secret scalars signs exactly like
    the aggregate of the individual shares would.  Workload generators use
    it (together with {!diff_secret_keys} and prefix sums) to materialise
    in O(1) the aggregate signature that a dense range of simulated
    clients would have produced — the stand-in for the paper's 13 TB of
    pre-generated batches. *)

val diff_secret_keys : secret_key -> secret_key -> secret_key
(** [diff_secret_keys a b] = the scalar difference a − b (prefix-sum
    range queries). *)

val find_invalid : (public_key * signature) list -> string -> int list
(** Tree-search identification of invalid shares among matching
    multi-signatures on the same message (§5.1 "Tree-search invalid
    multi-signatures"): verifies the aggregate of the whole range, recurses
    into halves only when a range fails, and returns the indices of bad
    shares.  Verification count is O(b log n) for b bad shares. *)

val forge_garbage : unit -> signature
