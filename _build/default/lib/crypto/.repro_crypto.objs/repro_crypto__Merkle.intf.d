lib/crypto/merkle.mli: Format
