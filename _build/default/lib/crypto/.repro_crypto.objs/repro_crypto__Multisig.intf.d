lib/crypto/multisig.mli: Field61 Format
