lib/crypto/field61.ml: Char Format Int Int64 String
