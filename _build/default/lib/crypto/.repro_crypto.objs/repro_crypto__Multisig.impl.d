lib/crypto/multisig.ml: Array Field61 List Sha256
