lib/crypto/merkle.ml: Array Format List Sha256 String
