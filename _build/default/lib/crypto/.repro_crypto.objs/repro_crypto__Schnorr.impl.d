lib/crypto/schnorr.ml: Field61 Format List Sha256
