lib/crypto/schnorr.mli: Field61 Format
