type t = int

let p = (1 lsl 61) - 1

let zero = 0
let one = 1
let two = 2

(* Reduce a value in [0, 2^62) to canonical form using the Mersenne
   identity 2^61 = 1 (mod p): fold the top bit(s) back into the bottom. *)
let fold62 x =
  let x = (x land p) + (x lsr 61) in
  if x >= p then x - p else x

let of_int n =
  let r = n mod p in
  if r < 0 then r + p else r

let to_int x = x

let equal = Int.equal
let compare = Int.compare

let add a b = fold62 (a + b)

let sub a b = if a >= b then a - b else a - b + p

let neg a = if a = 0 then 0 else p - a

(* a, b < 2^61.  Split a = ah*2^31 + al and b = bh*2^31 + bl with
   ah, bh < 2^30 and al, bl < 2^31.  Then
     a*b = ah*bh*2^62 + (ah*bl + al*bh)*2^31 + al*bl
   and modulo p: 2^62 = 2 and, writing mid = ah*bl + al*bh = mh*2^30 + ml
   (mh < 2^32, ml < 2^30), mid*2^31 = mh*2^61 + ml*2^31 = mh + ml*2^31.
   Every partial product fits a 63-bit native int. *)
let mul a b =
  let ah = a lsr 31 and al = a land 0x7FFF_FFFF in
  let bh = b lsr 31 and bl = b land 0x7FFF_FFFF in
  let hi = fold62 (2 * ah * bh) in
  let mid = (ah * bl) + (al * bh) in
  let mh = mid lsr 30 and ml = mid land 0x3FFF_FFFF in
  let mid' = fold62 (mh + (ml lsl 31)) in
  let lo = fold62 (al * bl) in
  add (add hi mid') lo

let mul_slow a b =
  let rec go acc a b = if b = 0 then acc else go (if b land 1 = 1 then add acc a else acc) (add a a) (b lsr 1) in
  go 0 a b

let pow b e =
  if e < 0 then invalid_arg "Field61.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go 1 b e

let inv a =
  if a = 0 then raise Division_by_zero;
  pow a (p - 2)

let div a b = mul a (inv b)

let of_bytes s =
  (* Fold 8-byte little-endian words of the input into the accumulator with
     a multiplicative mix so that every byte influences the result. *)
  let n = String.length s in
  let acc = ref 0 in
  let word = ref 0 in
  for i = 0 to n - 1 do
    word := !word lor ((Char.code s.[i]) lsl (8 * (i mod 7)));
    if i mod 7 = 6 || i = n - 1 then begin
      acc := add (mul !acc 1_099_511_628_211) (of_int !word);
      word := 0
    end
  done;
  (* Avoid mapping short inputs to zero, which would be an annoying
     degenerate group element downstream. *)
  if !acc = 0 then one else !acc

let random next64 =
  let rec draw () =
    let x = Int64.to_int (next64 ()) land ((1 lsl 61) - 1) in
    if x >= p then draw () else x
  in
  draw ()

let pp fmt x = Format.fprintf fmt "%d" x
