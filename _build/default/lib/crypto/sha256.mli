(** SHA-256 (FIPS 180-4), implemented from scratch on native ints.

    Digests are returned as 32-byte binary strings.  This module is the
    repository's only hash function: Merkle trees, Fiat–Shamir challenges
    and batch commitments all go through it (the paper uses blake3; any
    collision-resistant hash preserves behaviour). *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** Produce the 32-byte digest.  The context must not be reused. *)

val digest : string -> string
(** One-shot [digest s = finalize (feed (init ()) s)]. *)

val digest_list : string list -> string
(** Digest of the concatenation, without building the concatenation. *)

val hmac : key:string -> string -> string
(** HMAC-SHA-256 (RFC 2104). *)

val to_hex : string -> string
(** Lowercase hex rendering of a binary digest. *)
