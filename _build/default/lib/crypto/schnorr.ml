type secret_key = Field61.t
type public_key = Field61.t
type signature = { r : Field61.t; s : Field61.t }

(* Any nonzero element generates the additive group Z_p (p prime); a fixed
   odd constant keeps transcripts readable. *)
let generator = Field61.of_int 7

let scale x = Field61.mul generator x

let public_key_of_secret sk = scale sk

let keygen next64 =
  let sk = Field61.random next64 in
  (sk, scale sk)

let keygen_deterministic ~seed =
  let sk = Field61.of_bytes (Sha256.digest ("keygen|" ^ seed)) in
  (sk, scale sk)

let challenge ~r ~pk msg =
  let enc x = string_of_int (Field61.to_int x) in
  Field61.of_bytes (Sha256.digest_list [ "chal|"; enc r; "|"; enc pk; "|"; msg ])

let sign sk msg =
  (* Deterministic nonce, Ed25519-style: k = H(sk || m). *)
  let k =
    Field61.of_bytes
      (Sha256.digest_list [ "nonce|"; string_of_int (Field61.to_int sk); "|"; msg ])
  in
  let r = scale k in
  let e = challenge ~r ~pk:(scale sk) msg in
  let s = Field61.add k (Field61.mul e sk) in
  { r; s }

(* Verification equation: s*G = R + e*pk  (additive Schnorr). *)
let verify pk msg { r; s } =
  let e = challenge ~r ~pk msg in
  Field61.equal (scale s) (Field61.add r (Field61.mul e pk))

let batch_verify entries =
  match entries with
  | [] -> true
  | entries ->
    (* Random coefficients derived from the whole batch transcript make the
       linear combination non-malleable across entries. *)
    let transcript =
      Sha256.digest_list
        (List.concat_map
           (fun (pk, msg, { r; s }) ->
             [ string_of_int (Field61.to_int pk); msg;
               string_of_int (Field61.to_int r);
               string_of_int (Field61.to_int s) ])
           entries)
    in
    let lhs = ref Field61.zero and rhs = ref Field61.zero in
    List.iteri
      (fun i (pk, msg, { r; s }) ->
        let z = Field61.of_bytes (Sha256.digest (transcript ^ string_of_int i)) in
        let e = challenge ~r ~pk msg in
        lhs := Field61.add !lhs (Field61.mul z s);
        rhs := Field61.add !rhs (Field61.add (Field61.mul z r) (Field61.mul (Field61.mul z e) pk)))
      entries;
    Field61.equal (scale !lhs) !rhs

let pp_public_key = Field61.pp
let pp_signature fmt { r; s } = Format.fprintf fmt "(%a,%a)" Field61.pp r Field61.pp s

let signature_equal a b = Field61.equal a.r b.r && Field61.equal a.s b.s

let forge_garbage () = { r = Field61.of_int 1; s = Field61.of_int 1 }
