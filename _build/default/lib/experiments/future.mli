(** §8 future-work extensions, made measurable.

    The paper closes with two avenues: sharding ("running multiple,
    independent, coordinated instances of Chop Chop") and offloading more
    work — such as public-key aggregation — to the brokers.  This module
    implements the measurable parts:

    - {!sharding}: run k genuinely independent Chop Chop instances and
      report the aggregate throughput (the coordination layer is the open
      research question; independence is what bounds the gain);
    - {!pk_offload}: the §3.2-anchored capacity model with the per-key
      aggregation term moved off the witnessing servers, i.e. the
      throughput ceiling if brokers aggregated public keys and servers
      only verified (the paper's second suggestion — requires a way for
      servers to hold brokers accountable for wrong aggregates, hence
      "model" rather than protocol here). *)

type shard_result = {
  shards : int;
  per_shard : float; (* op/s of one instance *)
  aggregate : float;
}

val sharding : scale:Figures.scale -> shards:int list -> shard_result list

type offload_result = {
  servers : int;
  baseline_capacity : float; (* op/s, aggregation on servers *)
  offloaded_capacity : float; (* op/s, aggregation on brokers *)
}

val pk_offload : servers:int list -> offload_result list

val print : Format.formatter -> Figures.scale -> unit
