(** Narwhal-Bullshark experiment runner (§6.1).

    Spawns [n] server groups over the geo network and injects synthetic
    client transactions at the offered rate, optionally with the paper's
    message-authenticating modification ([authenticate = true] =
    Narwhal-Bullshark-sig) and extra workers per group (Fig. 10b). *)

type params = {
  n_servers : int;
  rate : float; (* offered op/s, split across groups *)
  msg_bytes : int;
  authenticate : bool;
  workers_per_group : int;
  duration : float;
  warmup : float;
  cooldown : float;
  seed : int64;
}

val default : authenticate:bool -> params

type result = {
  offered : float;
  throughput : float;
  latency_mean : float;
  latency_std : float;
  network_rate_bps : float; (* mean group NIC ingress over the window *)
}

val run : params -> result
