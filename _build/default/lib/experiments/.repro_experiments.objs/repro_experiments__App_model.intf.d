lib/experiments/app_model.mli:
