lib/experiments/narwhal_run.ml: Array Repro_mempool Repro_sim
