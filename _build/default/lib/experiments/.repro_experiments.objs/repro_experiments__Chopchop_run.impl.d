lib/experiments/chopchop_run.ml: Array Float Format Fun List Option Repro_chopchop Repro_sim Repro_workload String
