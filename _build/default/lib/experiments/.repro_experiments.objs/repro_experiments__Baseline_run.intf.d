lib/experiments/baseline_run.mli:
