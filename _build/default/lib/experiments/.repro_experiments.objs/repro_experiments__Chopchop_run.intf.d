lib/experiments/chopchop_run.mli: Format Repro_chopchop
