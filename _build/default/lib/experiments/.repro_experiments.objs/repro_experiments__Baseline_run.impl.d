lib/experiments/baseline_run.ml: Array Repro_sim Repro_stob
