lib/experiments/app_model.ml: Float List Repro_apps Repro_chopchop Sys
