lib/experiments/figures.ml: App_model Baseline_run Chopchop_run Float Format Hashtbl Int64 List Narwhal_run Printf Repro_chopchop Repro_crypto Repro_silk Repro_sim Sys
