lib/experiments/future.ml: Chopchop_run Figures Format Int64 List Repro_chopchop Repro_sim
