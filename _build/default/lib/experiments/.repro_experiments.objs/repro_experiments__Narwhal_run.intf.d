lib/experiments/narwhal_run.mli:
