lib/experiments/figures.mli: Format
