lib/experiments/future.mli: Figures Format
