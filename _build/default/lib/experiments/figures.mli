(** Regeneration of every table and figure of the paper's evaluation.

    Each [figN] function runs the corresponding experiment(s) and prints
    the series the paper plots, side by side with the paper's reported
    values where the paper gives them.  {!run_all} regenerates everything
    (EXPERIMENTS.md records a captured run).

    [Quick] shrinks systems and windows for development and CI; [Full] is
    the paper-scale configuration (64 servers, 14 regions, 65,536-message
    batches). *)

type scale = Quick | Full

val fig1 : Format.formatter -> scale -> unit
(** Context table: Internet-scale service rates vs Atomic Broadcast. *)

val fig3 : Format.formatter -> scale -> unit
(** Batch layout arithmetic: classic vs fully distilled sizes (Figs. 2–3,
    §2.1, §3.2 communication complexity). *)

val micro : Format.formatter -> scale -> unit
(** §3.2 microbenchmark: classic vs distilled batch authentication rate,
    from the calibrated cost model and from this repository's real
    (simulation-grade) cryptography. *)

val fig7 : Format.formatter -> scale -> unit
(** Throughput–latency for Chop Chop (×2 underlays), Narwhal-Bullshark
    (±sig), BFT-SMaRt and HotStuff. *)

val fig8a : Format.formatter -> scale -> unit
(** Distillation benefit: 0% vs 100% distilled, vs the sig baseline. *)

val fig8b : Format.formatter -> scale -> unit
(** Message sizes 8–512 B. *)

val fig9 : Format.formatter -> scale -> unit
(** Line rate: input vs network vs output rates. *)

val fig10a : Format.formatter -> scale -> unit
(** Server scaling: 8/16/32/64 servers. *)

val fig10b : Format.formatter -> scale -> unit
(** Matched total resources (128 machines). *)

val fig11a : Format.formatter -> scale -> unit
(** Server crashes at t = 30 s: none / one / a third. *)

val fig11b : Format.formatter -> scale -> unit
(** Application use cases: Auction, Payments, Pixel war. *)

val silk_table : Format.formatter -> scale -> unit
(** §6.2: scp vs silk deployment time for 13 TB. *)

val ablation_timeout : Format.formatter -> scale -> unit
(** Design-choice ablation: the broker's reduce timeout (latency vs
    distillation completeness trade-off, §6.3). *)

val ablation_margin : Format.formatter -> scale -> unit
(** Design-choice ablation: witness margin f+1+m (§6.2). *)

val ablation_loss : Format.formatter -> scale -> unit
(** Adverse network conditions: client↔broker packet loss vs distillation
    completeness, latency and the reliable-UDP retransmission counters
    (§5.1, §6 "adverse network conditions"). *)

val run_all : Format.formatter -> scale -> unit

val cc_max_throughput : scale -> float
(** Chop Chop's measured saturation throughput (memoised; shared by the
    figures that need a "maximum" reference). *)
