(** Application throughput model (Fig. 11b, §6.8).

    The paper reports the {e maximal stable throughput} with the
    application as the bottleneck: Payments and Pixel war run in parallel
    across a server's physical cores, the Auction is single-threaded.

    Per-operation application cost is {e measured live} on this
    repository's real OCaml implementations ({!calibrate} runs the actual
    state machines), then a fixed per-message delivery-dispatch overhead
    (channel hop, allocation, accounting — the part of the paper's app
    path our state machines do not include) is added; capacity is
    [cores / (dispatch + measured)], and the reported throughput is capped
    by Chop Chop's own maximum. *)

type calibration = {
  app : string;
  measured_op_ns : float; (* live-measured per-op cost of our app *)
  cores : int; (* 1 for the single-threaded Auction, 16 otherwise *)
  capacity : float; (* op/s the app can absorb *)
}

val dispatch_overhead_s : float
(** Per-message delivery overhead, single-core seconds (0.45 µs; fitted
    once against §6.8 and documented in DESIGN.md). *)

val calibrate : unit -> calibration list
(** Runs each application on synthetic bulk deliveries and times it with
    the process clock. *)

val fig11b : chopchop_max:float -> (string * float) list
(** [(app, throughput)] rows: min(app capacity, Chop Chop's measured
    maximum). *)
