(** Standalone BFT-SMaRt- and HotStuff-style baselines (§6.1, §6.3).

    No mempool, no distillation: every client operation carries an 80 B
    header (8 B id, 8 B sequence number, 64 B signature) that the servers
    verify, and the ordering protocol itself moves the payload in batches
    of 400.  BFT-SMaRt runs consensus instances sequentially
    ([max_outstanding = 1]), which caps its WAN throughput near
    batch-size/RTT; HotStuff pipelines across its 3-chain. *)

type proto = Bftsmart | Hotstuff_base

type params = {
  proto : proto;
  n_servers : int;
  rate : float; (* offered op/s *)
  msg_bytes : int;
  duration : float;
  warmup : float;
  cooldown : float;
  seed : int64;
}

val default : proto -> params

type result = {
  offered : float;
  throughput : float;
  latency_mean : float;
  latency_std : float;
}

val run : params -> result
