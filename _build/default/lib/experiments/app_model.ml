module Proto = Repro_chopchop.Proto

type calibration = {
  app : string;
  measured_op_ns : float;
  cores : int;
  capacity : float;
}

let dispatch_overhead_s = 0.45e-6

let time_ops f ops =
  (* Warm, then measure with the process clock; enough iterations that
     clock resolution is irrelevant. *)
  ignore (f ());
  let t0 = Sys.time () in
  ignore (f ());
  let dt = Sys.time () -. t0 in
  dt /. float_of_int ops

let calibration_of ~app ~cores per_op_s =
  let total = dispatch_overhead_s +. per_op_s in
  { app; measured_op_ns = per_op_s *. 1e9; cores;
    capacity = float_of_int cores /. total }

let ops = 2_000_000

let calibrate () =
  let bulk tag = Proto.Bulk { first_id = 0; count = ops; tag; msg_bytes = 8 } in
  let payments =
    let t = Repro_apps.Payments.create () in
    time_ops (fun () -> Repro_apps.Payments.apply_delivery t (bulk 1)) ops
  in
  let auction =
    let t = Repro_apps.Auction.create () in
    time_ops (fun () -> Repro_apps.Auction.apply_delivery t (bulk 2)) ops
  in
  let pixelwar =
    let t = Repro_apps.Pixelwar.create () in
    time_ops (fun () -> Repro_apps.Pixelwar.apply_delivery t (bulk 3)) ops
  in
  [ calibration_of ~app:"Auction" ~cores:1 auction;
    calibration_of ~app:"Payments" ~cores:16 payments;
    calibration_of ~app:"Pixel war" ~cores:16 pixelwar ]

let fig11b ~chopchop_max =
  List.map
    (fun c -> (c.app, Float.min c.capacity chopchop_max))
    (calibrate ())
