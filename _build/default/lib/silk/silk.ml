type params = {
  total_bytes : float;
  destinations : int;
  chunk_bytes : float;
  link_bps : float;
  rtt : float;
  tcp_window_bytes : float;
  streams_per_peer : int;
  replication : int;
}

(* 13 TB over 320 machines; batches and public-key files are shared by the
   machines that play the same role, so each unique byte has ~10 copies. *)
let default_params =
  { total_bytes = 13e12; destinations = 320; chunk_bytes = 64e6;
    link_bps = 12.5e9; rtt = 0.150; tcp_window_bytes = 8e6;
    streams_per_peer = 32; replication = 10 }

let stream_bps p = Float.min (p.link_bps /. 8.) (p.tcp_window_bytes /. p.rtt) *. 8.
(* expressed in bits/s: window/RTT in bytes/s, capped by the link *)

let scp_hours p =
  (* One window-limited stream at a time, from a single source, until
     every destination's files are pushed. *)
  p.total_bytes *. 8. /. stream_bps p /. 3600.

(* Fluid swarm simulation: groups of [replication] destinations share the
   same content; the source seeds unique bytes round-robin, peers
   re-serve what they hold.  Capacities are tracked per step. *)
let silk_seconds p =
  let groups = max 1 (p.destinations / p.replication) in
  let unique = p.total_bytes /. float_of_int p.replication in
  let v_g = unique /. float_of_int groups in
  let members = float_of_int p.replication in
  let link_bytes = p.link_bps /. 8. in
  (* Aggregated streams lift the per-connection window cap up to the NIC. *)
  let per_peer_bw =
    Float.min link_bytes
      (float_of_int p.streams_per_peer *. p.tcp_window_bytes /. p.rtt)
  in
  let seeded = Array.make groups 0. in (* unique bytes present in group *)
  let received = Array.make groups 0. in (* total bytes across members *)
  let dt = 1.0 in
  let t = ref 0. in
  let finished () =
    let ok = ref true in
    for g = 0 to groups - 1 do
      if received.(g) < (members *. v_g) -. 1. then ok := false
    done;
    !ok
  in
  while (not (finished ())) && !t < 1e7 do
    (* Source upload capacity split over groups still missing unique data. *)
    let needy = ref 0 in
    for g = 0 to groups - 1 do
      if seeded.(g) < v_g then incr needy
    done;
    if !needy > 0 then begin
      let share = Float.min per_peer_bw link_bytes *. dt /. float_of_int !needy in
      for g = 0 to groups - 1 do
        if seeded.(g) < v_g then begin
          let add = Float.min share (v_g -. seeded.(g)) in
          seeded.(g) <- seeded.(g) +. add;
          received.(g) <- received.(g) +. add
        end
      done
    end;
    (* Intra-group replication: members holding data re-serve it.  The
       number of effective uploaders grows with group progress. *)
    for g = 0 to groups - 1 do
      let target = members *. v_g in
      if received.(g) < target && seeded.(g) > 0. then begin
        let holders = Float.max 1. (received.(g) /. v_g) in
        let uploaders = Float.min holders members in
        let up = uploaders *. per_peer_bw *. dt in
        let down = (members -. (received.(g) /. v_g)) *. per_peer_bw *. dt in
        (* Cannot replicate content the group does not yet hold. *)
        let available = (seeded.(g) *. members) -. received.(g) in
        let add = Float.max 0. (Float.min available (Float.min up down)) in
        received.(g) <- Float.min target (received.(g) +. add)
      end
    done;
    t := !t +. dt
  done;
  !t

let silk_minutes p = silk_seconds p /. 60.

let speedup p = scp_hours p *. 60. /. silk_minutes p
