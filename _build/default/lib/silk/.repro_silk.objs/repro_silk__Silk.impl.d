lib/silk/silk.ml: Array Float
