lib/silk/silk.mli:
