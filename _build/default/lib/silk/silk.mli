(** silk — one-to-many peer-to-peer file distribution (§6.2 "Challenges").

    The paper's evaluation needed 13 TB of synthetic workload installed on
    up to 320 machines per setup; plain [scp] from one machine would take
    68 hours, silk's peer-to-peer transfer over aggregated TCP connections
    takes ~30 minutes.  This module reproduces that experiment with a
    chunk-level swarm simulator:

    - a single WAN TCP stream is window-limited: its throughput is
      [min(link, window / RTT)] — the reason scp crawls on
      high-latency paths;
    - silk opens [streams_per_peer] parallel connections per transfer and,
      crucially, lets every machine that holds a chunk re-serve it, so
      aggregate upload capacity grows with the number of completed peers
      (BitTorrent-style epidemic dissemination).

    The simulation advances in fixed scheduling rounds, moving chunk
    ownership between peers under per-node upload/download capacity
    constraints. *)

type params = {
  total_bytes : float; (* payload to replicate on every destination *)
  destinations : int;
  chunk_bytes : float;
  link_bps : float; (* NIC speed of every machine *)
  rtt : float; (* mean WAN round-trip *)
  tcp_window_bytes : float; (* per-connection in-flight cap *)
  streams_per_peer : int; (* aggregated connections (silk) *)
  replication : int;
      (* destinations sharing identical content (key directories, batch
         pools): the sharing that makes peer-to-peer re-serving pay off *)
}

val default_params : params
(** The paper's deployment: 13 TB replicated to 320 machines over
    ~12.5 Gb/s NICs and a 150 ms mean RTT. *)

val stream_bps : params -> float
(** Throughput of one TCP stream under the window/RTT cap. *)

val scp_hours : params -> float
(** Sequential single-stream distribution from one source, in hours. *)

val silk_minutes : params -> float
(** Simulated swarm completion time (all destinations hold all chunks),
    in minutes. *)

val speedup : params -> float
