(** Load brokers (§6.2).

    "Load brokers are unique to Chop Chop.  [...] submitting batches of
    pre-generated messages directly to the servers.  Free from
    interactions with clients and expensive cryptography, a load broker
    puts on the servers a load equivalent to that of tens of brokers
    working at full capacity."

    A load broker registers a broker node at an OVH region and injects
    pre-forged dense batches ({!Repro_chopchop.Batch.forge_dense}) at a
    configured rate, cycling over a set of distinct identity ranges with a
    rising round tag — the stand-in for the paper's 13 TB of pre-generated
    batch files.  The witness round, STOB submission and completion
    tracking reuse the real broker pipeline unchanged
    ({!Repro_chopchop.Broker.submit_prebuilt}).

    When matching total resources (Fig. 10b) each load broker's [rate] is
    capped at ~1 batch/s — a real broker's design-target distillation
    throughput (§5.1), bounded by its 1 s collection window — so load
    brokers are not unfairly cheap. *)

type t

type config = {
  rate : float; (* batches per second *)
  batch_count : int; (* messages per batch (65,536) *)
  msg_bytes : int;
  distill_fraction : float; (* 1.0 = fully distilled; 0.0 = classic batch *)
  ranges : int; (* distinct dense id ranges to cycle over *)
  first_id : int; (* base of this load broker's id space *)
}

val default_config : first_id:int -> config
(** 1 batch/s of 65,536 fully distilled 8-byte messages over 16 ranges. *)

val create :
  deployment:Repro_chopchop.Deployment.t ->
  region:Repro_sim.Region.t ->
  config:config ->
  unit ->
  t
(** Registers the broker node; call {!start} to begin injecting. *)

val start : t -> ?until:float -> ?phase:float -> unit -> unit
(** [phase] delays the first injection — staggering many load brokers so
    their batches do not arrive in synchronised bursts. *)

val submitted : t -> int
(** Batches injected so far. *)

val completed : t -> int
val completed_messages : t -> int

val latencies : t -> Repro_sim.Stats.Summary.t
(** Submission-to-completion latency of completed batches.  Note this
    excludes the distillation window a real client additionally waits
    (collection + reduction, ~2 s at the paper's timeouts): end-to-end
    client latency is measured on real measurement clients instead. *)

val broker_id : t -> int
