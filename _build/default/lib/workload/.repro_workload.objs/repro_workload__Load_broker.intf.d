lib/workload/load_broker.mli: Repro_chopchop Repro_sim
