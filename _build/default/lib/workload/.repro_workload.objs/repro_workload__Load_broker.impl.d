lib/workload/load_broker.ml: Array Repro_chopchop Repro_sim
