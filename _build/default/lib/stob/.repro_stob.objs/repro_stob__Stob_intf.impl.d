lib/stob/stob_intf.ml: Repro_sim
