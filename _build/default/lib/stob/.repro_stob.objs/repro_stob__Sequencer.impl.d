lib/stob/sequencer.ml: Hashtbl
