lib/stob/pbft.mli: Repro_sim
