lib/stob/sequencer.mli: Repro_sim
