lib/stob/hotstuff.ml: Hashtbl Int List Option Repro_sim Set Stob_intf
