lib/stob/hotstuff.mli: Repro_sim
