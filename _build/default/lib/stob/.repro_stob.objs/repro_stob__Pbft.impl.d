lib/stob/pbft.ml: Hashtbl Int List Option Repro_sim Set Stob_intf
