(** Per-node CPU accounting.

    A node's CPU is a FIFO work queue with a given capacity relative to the
    reference machine (1.0 = one c6i.8xlarge).  Submitting a job charges
    its cost (in reference-machine seconds, see {!Cost}) on the virtual
    clock; the completion callback fires when the queue drains to it.
    Utilization statistics feed the resource-efficiency experiment
    (Fig. 10b reports ~5% server CPU for Chop Chop at matched resources). *)

type t

val create : Engine.t -> ?capacity:float -> unit -> t
(** [capacity] scales job durations: a 0.5-capacity machine takes twice the
    reference time.  Default 1.0. *)

val submit : t -> cost:float -> (unit -> unit) -> unit
(** Enqueue a job costing [cost] reference-machine seconds; the callback
    runs at completion time. *)

val charge : t -> cost:float -> unit
(** Fire-and-forget work with no completion action (accounted the same). *)

val busy_until : t -> float
(** Virtual time at which the current backlog drains. *)

val backlog : t -> float
(** Seconds of queued work not yet executed. *)

val busy_seconds : t -> float
(** Total work executed or queued since creation (for utilization:
    divide by elapsed time). *)

val utilization : t -> since:float -> float
(** Fraction of wall time spent busy since the given virtual time.
    Values are clamped to [0, 1]. *)
