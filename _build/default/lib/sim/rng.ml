type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.to_int (next64 t) land max_int in
  mask mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_int (next64 t) land ((1 lsl 53) - 1) in
  bound *. (float_of_int x /. float_of_int (1 lsl 53))

let bool t = Int64.logand (next64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
