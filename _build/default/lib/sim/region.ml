type t =
  | Cape_town
  | Sao_paulo
  | Bahrain
  | Canada
  | Frankfurt
  | N_virginia
  | N_california
  | Stockholm
  | Ohio
  | Milan
  | Oregon
  | Ireland
  | London
  | Paris
  | Tokyo
  | Sydney
  | Ovh_gravelines
  | Ovh_beauharnois

let all =
  [ Cape_town; Sao_paulo; Bahrain; Canada; Frankfurt; N_virginia; N_california;
    Stockholm; Ohio; Milan; Oregon; Ireland; London; Paris; Tokyo; Sydney;
    Ovh_gravelines; Ovh_beauharnois ]

(* Order matters: §6.2 distributes size-8 systems across the first 8
   regions of this list. *)
let aws_server_regions =
  [ Cape_town; Sao_paulo; Bahrain; Canada; Frankfurt; N_virginia; N_california;
    Stockholm; Ohio; Milan; Oregon; Ireland; London; Paris ]

let server_regions_for n =
  if n <= 0 then invalid_arg "Region.server_regions_for";
  let base = Array.of_list aws_server_regions in
  let k = min n (Array.length base) in
  List.init n (fun i -> base.(i mod k))

let broker_regions = [ Cape_town; Sao_paulo; Tokyo; Sydney; Frankfurt; N_virginia ]

let client_regions = aws_server_regions @ [ Tokyo; Sydney ]

let load_broker_regions = [ Ovh_gravelines; Ovh_beauharnois ]

let coords = function
  | Cape_town -> (-33.9, 18.4)
  | Sao_paulo -> (-23.5, -46.6)
  | Bahrain -> (26.0, 50.5)
  | Canada -> (45.5, -73.6)
  | Frankfurt -> (50.1, 8.7)
  | N_virginia -> (38.9, -77.0)
  | N_california -> (37.4, -122.0)
  | Stockholm -> (59.3, 18.1)
  | Ohio -> (40.0, -83.0)
  | Milan -> (45.5, 9.2)
  | Oregon -> (45.8, -119.7)
  | Ireland -> (53.3, -6.3)
  | London -> (51.5, -0.1)
  | Paris -> (48.9, 2.4)
  | Tokyo -> (35.7, 139.7)
  | Sydney -> (-33.9, 151.2)
  | Ovh_gravelines -> (51.0, 2.1)
  | Ovh_beauharnois -> (45.3, -73.9)

let earth_radius_km = 6371.

let haversine_km a b =
  let lat1, lon1 = coords a and lat2, lon2 = coords b in
  let rad d = d *. Float.pi /. 180. in
  let dlat = rad (lat2 -. lat1) and dlon = rad (lon2 -. lon1) in
  let h =
    (sin (dlat /. 2.) ** 2.)
    +. (cos (rad lat1) *. cos (rad lat2) *. (sin (dlon /. 2.) ** 2.))
  in
  2. *. earth_radius_km *. asin (sqrt h)

(* Speed of light in fibre ~200,000 km/s; real paths are ~40% longer than
   great circles; 0.5 ms covers local hops and processing. *)
let fibre_km_per_s = 200_000.
let route_inflation = 1.4
let local_hop_s = 0.0005

let latency a b =
  if a == b then local_hop_s
  else local_hop_s +. (route_inflation *. haversine_km a b /. fibre_km_per_s)

let name = function
  | Cape_town -> "af-south-1 (Cape Town)"
  | Sao_paulo -> "sa-east-1 (Sao Paulo)"
  | Bahrain -> "me-south-1 (Bahrain)"
  | Canada -> "ca-central-1 (Canada)"
  | Frankfurt -> "eu-central-1 (Frankfurt)"
  | N_virginia -> "us-east-1 (N. Virginia)"
  | N_california -> "us-west-1 (N. California)"
  | Stockholm -> "eu-north-1 (Stockholm)"
  | Ohio -> "us-east-2 (Ohio)"
  | Milan -> "eu-south-1 (Milan)"
  | Oregon -> "us-west-2 (Oregon)"
  | Ireland -> "eu-west-1 (Ireland)"
  | London -> "eu-west-2 (London)"
  | Paris -> "eu-west-3 (Paris)"
  | Tokyo -> "ap-northeast-1 (Tokyo)"
  | Sydney -> "ap-southeast-2 (Sydney)"
  | Ovh_gravelines -> "OVH (Gravelines)"
  | Ovh_beauharnois -> "OVH (Beauharnois)"

let pp fmt r = Format.pp_print_string fmt (name r)
let equal a b = a == b
