(** Reliable-UDP transport (§5.1 "Reliable UDP").

    The paper's broker cannot hold hundreds of thousands of TCP
    connections, so client↔broker traffic runs over UDP with an in-house,
    ACK-based retransmission layer that also smooths the outgoing packet
    rate.  This module reproduces that layer over the network model's
    lossy channel ({!Net.send_lossy}):

    - the {e sender} assigns sequence numbers, keeps a bounded in-flight
      window (rate smoothing: excess messages queue), retransmits on an
      RTO timer until acknowledged;
    - the {e receiver} acknowledges every data packet and suppresses
      duplicate deliveries.

    Delivery is at-most-once per sequence number and unordered — exactly
    what the Chop Chop state machines tolerate (submissions, reductions
    and inclusions are all idempotent or deduplicated one level up). *)

type 'a packet =
  | Data of { seq : int; payload : 'a; bytes : int }
  | Ack of { seq : int }

val packet_bytes : 'a packet -> int
(** Wire size: payload bytes + 12 B of UDP/rudp header for data, 20 B for
    an ACK. *)

val ack_wire : int
(** Wire size of a bare ACK (20 B). *)

type 'a sender

val sender :
  engine:Engine.t ->
  transmit:('a packet -> unit) ->
  ?rto:float ->
  ?window:int ->
  ?max_retries:int ->
  unit ->
  'a sender
(** [transmit] injects a packet into the (lossy) channel.  Defaults:
    [rto = 0.4] s, [window = 64] in-flight messages, [max_retries = 25]
    (a message is dropped — and reported — after that; the higher-level
    protocol's own broker-rotation timeouts take over). *)

val send : 'a sender -> bytes:int -> 'a -> unit
(** Queue a message for reliable delivery. *)

val sender_on_ack : 'a sender -> int -> unit
(** Feed an ACK received from the peer. *)

val in_flight : 'a sender -> int
val queued : 'a sender -> int
val retransmissions : 'a sender -> int
(** Total retransmitted data packets (diagnostics / loss experiments). *)

val give_up_count : 'a sender -> int

type 'a receiver

val receiver : deliver:('a -> unit) -> send_ack:(int -> unit) -> unit -> 'a receiver

val receiver_on_data : 'a receiver -> 'a packet -> unit
(** Acknowledge and deliver (first copy only). *)

val duplicates : 'a receiver -> int
