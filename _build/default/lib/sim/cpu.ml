type t = {
  engine : Engine.t;
  capacity : float;
  mutable next_free : float;
  mutable total_busy : float;
}

let create engine ?(capacity = 1.0) () =
  if capacity <= 0. then invalid_arg "Cpu.create: capacity must be positive";
  { engine; capacity; next_free = 0.; total_busy = 0. }

let submit t ~cost k =
  if cost < 0. then invalid_arg "Cpu.submit: negative cost";
  let duration = cost /. t.capacity in
  let start = Float.max (Engine.now t.engine) t.next_free in
  let finish = start +. duration in
  t.next_free <- finish;
  t.total_busy <- t.total_busy +. duration;
  Engine.schedule_at t.engine ~time:finish k

let charge t ~cost = submit t ~cost (fun () -> ())

let busy_until t = t.next_free

let backlog t = Float.max 0. (t.next_free -. Engine.now t.engine)

let busy_seconds t = t.total_busy

let utilization t ~since =
  let elapsed = Engine.now t.engine -. since in
  if elapsed <= 0. then 0.
  else Float.min 1. (t.total_busy /. elapsed)
