lib/sim/rudp.ml: Engine Hashtbl Queue
