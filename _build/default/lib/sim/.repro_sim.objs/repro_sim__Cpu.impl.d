lib/sim/cpu.ml: Engine Float
