lib/sim/region.mli: Format
