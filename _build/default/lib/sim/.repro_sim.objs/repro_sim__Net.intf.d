lib/sim/net.mli: Engine Region
