lib/sim/rng.mli:
