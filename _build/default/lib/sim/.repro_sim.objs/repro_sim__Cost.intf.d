lib/sim/cost.mli:
