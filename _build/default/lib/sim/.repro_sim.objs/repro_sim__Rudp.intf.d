lib/sim/rudp.mli: Engine
