lib/sim/region.ml: Array Float Format List
