lib/sim/cost.ml:
