lib/sim/net.ml: Engine Float Hashtbl List Printf Region Rng
