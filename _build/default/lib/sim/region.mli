(** Geographic model of the paper's cross-cloud deployment (§6.2, Fig. 6).

    The 14 AWS regions hosting servers, the broker/client extras (Tokyo,
    Sydney) and the OVH sites hosting load brokers.  One-way latency
    between two regions is derived from great-circle distance at the speed
    of light in fibre with a routing-inflation factor, plus a fixed local
    hop — the standard first-order model for WAN latency. *)

type t =
  | Cape_town
  | Sao_paulo
  | Bahrain
  | Canada
  | Frankfurt
  | N_virginia
  | N_california
  | Stockholm
  | Ohio
  | Milan
  | Oregon
  | Ireland
  | London
  | Paris
  | Tokyo
  | Sydney
  | Ovh_gravelines
  | Ovh_beauharnois

val all : t list

val aws_server_regions : t list
(** The 14 regions across which servers are balanced (§6.2). *)

val server_regions_for : int -> t list
(** [server_regions_for n] assigns [n] servers round-robin; for n = 8 the
    paper uses the first 8 regions of the list — "the most adversarial
    setup with the highest pairwise latency". *)

val broker_regions : t list
(** One broker per continent (§6.2). *)

val client_regions : t list
(** One measurement client in each of the 14 server regions plus Tokyo and
    Sydney. *)

val load_broker_regions : t list
(** OVH sites. *)

val latency : t -> t -> float
(** One-way network latency in seconds. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
