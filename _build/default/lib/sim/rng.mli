(** Deterministic pseudo-random generator (splitmix64).

    Every experiment draws randomness exclusively from one of these,
    seeded explicitly, so simulation runs are bit-for-bit reproducible. *)

type t

val create : int64 -> t
(** Seeded generator. *)

val split : t -> t
(** Derive an independent generator stream (for per-node RNGs). *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] inclusive range. *)

val float : t -> float -> float
(** [float t bound] in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample (Poisson inter-arrival times). *)

val shuffle : t -> 'a array -> unit
val pick : t -> 'a array -> 'a
