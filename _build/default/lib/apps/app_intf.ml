(** Common shape of the §6.8 applications.

    Chop Chop delivers messages already ordered, authenticated and
    deduplicated, so an application is nothing but a deterministic state
    machine over (client id, message) pairs — the paper's three demo apps
    total ~300 lines of logic.  [apply_delivery] consumes either explicit
    operations or a dense bulk range (whose operations are regenerated
    deterministically, as the paper's are "generated at random"). *)

module type S = sig
  type t

  val name : string

  val apply_op : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> bool
  (** Apply one operation; [false] if it was rejected by application logic
      (e.g. insufficient balance) — rejected is still "processed". *)

  val apply_delivery : t -> Repro_chopchop.Proto.delivery -> int
  (** Apply everything in a delivery; returns operations processed. *)

  val ops_applied : t -> int
end

(* Cheap deterministic mixing for bulk-op generation. *)
let mix a b =
  let x = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE3D in
  (x lxor (x lsr 16)) land max_int
