lib/apps/app_intf.ml: Repro_chopchop
