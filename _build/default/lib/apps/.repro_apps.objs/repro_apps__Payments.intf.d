lib/apps/payments.mli: Repro_chopchop
