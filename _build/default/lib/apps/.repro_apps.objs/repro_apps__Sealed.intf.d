lib/apps/sealed.mli: Repro_chopchop
