lib/apps/sealed.ml: Char Hashtbl List Printf Repro_chopchop Repro_crypto String
