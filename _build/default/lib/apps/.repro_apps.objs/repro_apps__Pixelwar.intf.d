lib/apps/pixelwar.mli: Repro_chopchop
