lib/apps/payments.ml: App_intf Array Bytes Int32 Repro_chopchop String
