lib/apps/auction.mli: Repro_chopchop
