(** Narwhal mempool with Bullshark ordering — the baseline system (§6.1).

    Primary–worker server groups: workers accumulate client transactions
    into ~500 KB batches, disseminate them to the other groups' workers,
    and report certified digests to their primary.  Primaries grow a
    round-based DAG: each round's header carries fresh batch digests and
    2f+1 parent certificates; 2f+1 votes certify a header.  Bullshark
    commits the even-round anchor once the DAG advances past it and
    delivers its causal history in deterministic order.

    The [authenticate] flag selects the Narwhal-Bullshark-sig variant: the
    receiving worker of every group batch-verifies an Ed25519 signature
    per message (the paper's "state-of-the-art" authentication), which is
    precisely what drops throughput by an order of magnitude (Fig. 8a).

    Transactions are injected in bulk ({!inject}) by the workload
    generator, mirroring how the paper's load clients feed workers; batch
    contents are synthetic, costs (bytes, CPU) are charged for real. *)

type t
(** One server group (primary + collocated worker, as deployed in §6.2). *)

type msg

type config = {
  n : int; (* number of groups; f = (n-1)/3 *)
  batch_bytes : int; (* 500 KB default *)
  batch_window : float; (* flush timeout *)
  msg_bytes : int; (* application message size *)
  header_bytes : int; (* per-message header: 80 B when authenticating *)
  authenticate : bool;
  workers_per_group : int; (* extra workers scale a group's capacity *)
}

val default_config : n:int -> msg_bytes:int -> authenticate:bool -> config

val create :
  engine:Repro_sim.Engine.t ->
  cpu:Repro_sim.Cpu.t ->
  config:config ->
  self:int ->
  send:(dst:int -> bytes:int -> msg -> unit) ->
  on_deliver:(count:int -> inject_time:float -> unit) ->
  unit ->
  t

val inject : t -> count:int -> unit
(** Hand [count] fresh client transactions to this group's worker. *)

val receive : t -> src:int -> msg -> unit
val crash : t -> unit

val delivered : t -> int
(** Transactions delivered by this group's primary. *)
