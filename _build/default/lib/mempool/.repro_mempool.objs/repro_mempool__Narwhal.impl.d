lib/mempool/narwhal.ml: Hashtbl Int List Option Repro_sim Set
