lib/mempool/narwhal.mli: Repro_sim
