(** Server-signed quorum certificates.

    Three kinds of statements circulate in Chop Chop, all multi-signed by
    servers and aggregated by brokers into f+1 quorum certificates:

    - {e witness} statements (#10–#11): a batch is well-formed and
      retrievable;
    - {e completion} statements (#16–#17): a batch was delivered as the
      [counter]-th one, with the given per-client exceptions;
    - {e legitimacy} is carried by completion certificates (§4.2): a
      certificate with delivery counter [n] proves every sequence number
      [< n] legitimate, bounding how far a Byzantine client can push the
      aggregate sequence number. *)

type quorum_cert = {
  signers : int list; (* distinct server indices *)
  agg : Repro_crypto.Multisig.signature;
}

val witness_statement : root:string -> broker:int -> number:int -> string

val completion_statement : root:string -> counter:int -> exc_hash:string -> string

val exceptions_hash : (Types.client_id * Types.sequence_number) list -> string

val sign_shard :
  Repro_crypto.Multisig.secret_key -> string -> Repro_crypto.Multisig.signature

val assemble : (int * Repro_crypto.Multisig.signature) list -> quorum_cert
(** Aggregate shards into a certificate (signer list is deduplicated and
    sorted). *)

val verify :
  statement:string ->
  server_ms_pk:(int -> Repro_crypto.Multisig.public_key) ->
  quorum:int ->
  quorum_cert ->
  bool
(** At least [quorum] distinct signers and a valid aggregate. *)

type delivery_cert = {
  root : string;
  counter : int; (* global batch-delivery counter when signed *)
  exceptions : (Types.client_id * Types.sequence_number) list;
  qc : quorum_cert;
}
(** Completion certificate (#18): proves delivery of the batch committed
    to by [root]; doubles as the legitimacy proof [l_counter]. *)

val verify_delivery :
  server_ms_pk:(int -> Repro_crypto.Multisig.public_key) ->
  quorum:int ->
  delivery_cert ->
  bool

val legitimizes : delivery_cert option -> Types.sequence_number -> bool
(** [legitimizes evidence k]: [k = 0] needs no evidence; otherwise the
    certificate's counter must reach [k].  (§4.2 induction: the largest
    sequence number submitted to the (n+1)-th batch is n, so a
    certificate for n batches delivered legitimises k <= n — a strictly
    smaller bound would deadlock a lone client at its second message.) *)
