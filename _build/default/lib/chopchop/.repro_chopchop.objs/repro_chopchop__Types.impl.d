lib/chopchop/types.ml: Printf Repro_crypto
