lib/chopchop/batch.ml: Array Directory Int List Printf Repro_crypto Repro_sim String Types Wire
