lib/chopchop/directory.ml: Array Hashtbl List Repro_crypto Types
