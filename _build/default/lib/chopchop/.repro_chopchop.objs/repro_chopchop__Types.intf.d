lib/chopchop/types.mli: Repro_crypto
