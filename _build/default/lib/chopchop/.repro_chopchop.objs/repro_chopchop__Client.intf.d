lib/chopchop/client.mli: Proto Repro_crypto Repro_sim Types
