lib/chopchop/broker.mli: Batch Certs Directory Proto Repro_crypto Repro_sim Stob_item Types
