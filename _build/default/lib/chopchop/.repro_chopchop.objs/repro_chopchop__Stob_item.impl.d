lib/chopchop/stob_item.ml: Certs Types Wire
