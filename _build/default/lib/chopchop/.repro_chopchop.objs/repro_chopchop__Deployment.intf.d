lib/chopchop/deployment.mli: Broker Client Proto Repro_sim Server Types
