lib/chopchop/directory.mli: Repro_crypto Types
