lib/chopchop/server.ml: Array Batch Certs Directory Hashtbl List Option Proto Repro_crypto Repro_sim Stob_item Types Wire
