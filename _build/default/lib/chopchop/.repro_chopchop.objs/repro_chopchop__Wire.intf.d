lib/chopchop/wire.mli:
