lib/chopchop/certs.ml: Int List Printf Repro_crypto Types
