lib/chopchop/wire.ml:
