lib/chopchop/client.ml: Batch Certs List Proto Queue Repro_crypto Repro_sim String Types Wire
