lib/chopchop/stob_item.mli: Certs Types
