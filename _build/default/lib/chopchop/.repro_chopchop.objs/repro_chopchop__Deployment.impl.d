lib/chopchop/deployment.ml: Array Broker Client Directory Float Fun Hashtbl List Option Printf Proto Repro_crypto Repro_sim Repro_stob Server Stob_item Types
