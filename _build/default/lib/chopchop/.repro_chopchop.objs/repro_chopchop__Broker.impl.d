lib/chopchop/broker.ml: Array Batch Certs Directory Hashtbl Int List Option Proto Queue Repro_crypto Repro_sim Stob_item String Types Wire
