lib/chopchop/certs.mli: Repro_crypto Types
