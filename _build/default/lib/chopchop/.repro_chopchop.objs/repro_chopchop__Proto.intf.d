lib/chopchop/proto.mli: Batch Certs Repro_crypto Types
