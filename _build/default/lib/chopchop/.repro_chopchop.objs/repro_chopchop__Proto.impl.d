lib/chopchop/proto.ml: Array Batch Certs Repro_crypto Types
