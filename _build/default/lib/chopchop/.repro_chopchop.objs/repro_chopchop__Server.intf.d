lib/chopchop/server.mli: Directory Proto Repro_crypto Repro_sim Stob_item
