lib/chopchop/batch.mli: Directory Repro_crypto Types
