type t =
  | Batch_ref of {
      broker : int;
      number : int;
      root : string;
      witness : Certs.quorum_cert;
    }
  | Signup of { card : Types.keycard; reply_broker : int; nonce : int }

let wire_bytes = function
  | Batch_ref _ -> Wire.stob_submission_bytes
  | Signup _ -> Wire.header_bytes + (2 * Wire.pk_bytes) + 8
