module Multisig = Repro_crypto.Multisig
module Sha256 = Repro_crypto.Sha256

type quorum_cert = { signers : int list; agg : Multisig.signature }

let witness_statement ~root ~broker ~number =
  Printf.sprintf "witness|%s|%d|%d" (Sha256.to_hex root) broker number

let completion_statement ~root ~counter ~exc_hash =
  Printf.sprintf "completion|%s|%d|%s" (Sha256.to_hex root) counter (Sha256.to_hex exc_hash)

let exceptions_hash exceptions =
  Sha256.digest_list
    (List.map (fun (id, seq) -> Printf.sprintf "%d:%d;" id seq) exceptions)

let sign_shard sk statement = Multisig.sign sk statement

let assemble shards =
  let shards = List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b) shards in
  { signers = List.map fst shards;
    agg = Multisig.aggregate_signatures (List.map snd shards) }

let verify ~statement ~server_ms_pk ~quorum qc =
  let distinct = List.sort_uniq Int.compare qc.signers in
  List.length distinct = List.length qc.signers
  && List.length distinct >= quorum
  && Multisig.verify_multi (List.map server_ms_pk qc.signers) statement qc.agg

type delivery_cert = {
  root : string;
  counter : int;
  exceptions : (Types.client_id * Types.sequence_number) list;
  qc : quorum_cert;
}

let verify_delivery ~server_ms_pk ~quorum dc =
  let statement =
    completion_statement ~root:dc.root ~counter:dc.counter
      ~exc_hash:(exceptions_hash dc.exceptions)
  in
  verify ~statement ~server_ms_pk ~quorum dc.qc

let legitimizes evidence k =
  k = 0 || (match evidence with Some dc -> dc.counter >= k | None -> false)
