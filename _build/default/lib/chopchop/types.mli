(** Shared vocabulary of the Chop Chop layer. *)

type client_id = int
(** Dense identifier assigned by the {!Directory} (Rank): the client's
    position in the sign-up order. *)

type sequence_number = int

type message = string
(** Application payload (8 B in most of the evaluation). *)

type keycard = {
  sig_pk : Repro_crypto.Schnorr.public_key;   (* classic authentication *)
  ms_pk : Repro_crypto.Multisig.public_key;   (* distillation *)
}
(** A client's public identity, as stored in the directory. *)

type keypair = {
  sig_sk : Repro_crypto.Schnorr.secret_key;
  ms_sk : Repro_crypto.Multisig.secret_key;
  card : keycard;
}

val keypair_of_seed : string -> keypair
(** Deterministic identity; simulated clients derive theirs from their
    index so 257 M of them need no storage. *)

val dense_seed : int -> string
(** Canonical seed for the [i]-th pre-generated (load) client. *)

val message_statement : id:client_id -> seq:sequence_number -> message -> string
(** Statement a client signs with its individual (Schnorr) key: binds the
    id, the sequence number and the message (the [t_i] of §4.2). *)

val reduction_statement : root:string -> string
(** Statement multi-signed during reduction (#5): the proposal root. *)
