type client_id = int
type sequence_number = int
type message = string

type keycard = {
  sig_pk : Repro_crypto.Schnorr.public_key;
  ms_pk : Repro_crypto.Multisig.public_key;
}

type keypair = {
  sig_sk : Repro_crypto.Schnorr.secret_key;
  ms_sk : Repro_crypto.Multisig.secret_key;
  card : keycard;
}

let keypair_of_seed seed =
  let sig_sk, sig_pk = Repro_crypto.Schnorr.keygen_deterministic ~seed in
  let ms_sk, ms_pk = Repro_crypto.Multisig.keygen_deterministic ~seed in
  { sig_sk; ms_sk; card = { sig_pk; ms_pk } }

let dense_seed i = "dense-client-" ^ string_of_int i

let message_statement ~id ~seq msg =
  Printf.sprintf "message|%d|%d|%s" id seq msg

let reduction_statement ~root = "reduction|" ^ root
