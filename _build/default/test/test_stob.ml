(* Tests for the STOB substrate: the Sequencer oracle, the PBFT-style
   protocol and chained HotStuff all satisfy the STOB properties
   (agreement, total order, no duplication, validity) in benign runs and
   under crash faults, including leader crashes and view changes. *)

open Repro_sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Build an n-server cluster of the given protocol over the geo network;
   returns per-server delivery logs and handles. *)
let cluster (type m) ~n ~seed
    ~(create :
       engine:Engine.t ->
       self:int ->
       n:int ->
       send:(dst:int -> bytes:int -> m -> unit) ->
       deliver:(string -> unit) ->
       payload_bytes:(string -> int) ->
       unit ->
       (string -> unit) * (src:int -> m -> unit) * (unit -> unit)) () =
  let engine = Engine.create ~seed () in
  let net = Net.create engine () in
  let regions = Array.of_list (Region.server_regions_for n) in
  let delivered = Array.make n [] in
  let handles = Array.make n None in
  for i = 0 to n - 1 do
    Net.add_node net ~id:i ~region:regions.(i)
      ~handler:(fun ~src m ->
        match handles.(i) with
        | Some (_, recv, _) -> recv ~src m
        | None -> ())
      ()
  done;
  for i = 0 to n - 1 do
    let send ~dst ~bytes m = Net.send net ~src:i ~dst ~bytes m in
    let deliver p = delivered.(i) <- p :: delivered.(i) in
    handles.(i) <- Some (create ~engine ~self:i ~n ~send ~deliver ~payload_bytes:String.length ())
  done;
  let get i = match handles.(i) with Some h -> h | None -> assert false in
  (engine, delivered, get)

let pbft_create ~engine ~self ~n ~send ~deliver ~payload_bytes () =
  let t = Repro_stob.Pbft.create ~engine ~self ~n ~send ~deliver ~payload_bytes () in
  (Repro_stob.Pbft.broadcast t, (fun ~src m -> Repro_stob.Pbft.receive t ~src m),
   fun () -> Repro_stob.Pbft.crash t)

let hs_create ~engine ~self ~n ~send ~deliver ~payload_bytes () =
  let t = Repro_stob.Hotstuff.create ~engine ~self ~n ~send ~deliver ~payload_bytes () in
  (Repro_stob.Hotstuff.broadcast t, (fun ~src m -> Repro_stob.Hotstuff.receive t ~src m),
   fun () -> Repro_stob.Hotstuff.crash t)

let seq_create ~engine ~self ~n ~send ~deliver ~payload_bytes () =
  let t = Repro_stob.Sequencer.create ~engine ~self ~n ~send ~deliver ~payload_bytes () in
  (Repro_stob.Sequencer.broadcast t, (fun ~src m -> Repro_stob.Sequencer.receive t ~src m),
   fun () -> Repro_stob.Sequencer.crash t)

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go xs ys
  in
  if List.length a <= List.length b then go a b else go b a

let no_dup l = List.length (List.sort_uniq compare l) = List.length l

(* Generic scenario: [payloads] broadcast from rotating servers starting
   at t=0.1s, optional crash set at [crash_at]. *)
let scenario ~create ~n ~seed ?(crash = []) ?(crash_at = 1.0) ~payloads ~horizon () =
  let engine, delivered, get = cluster ~n ~seed ~create () in
  List.iteri
    (fun k p ->
      Engine.schedule engine ~delay:(0.1 +. (0.02 *. float_of_int k)) (fun () ->
          let b, _, _ = get (k mod n) in
          b p))
    payloads;
  List.iter
    (fun i ->
      Engine.schedule engine ~delay:crash_at (fun () ->
          let _, _, c = get i in
          c ()))
    crash;
  Engine.run ~until:horizon engine;
  let correct = List.filter (fun i -> not (List.mem i crash)) (List.init n Fun.id) in
  (List.map (fun i -> List.rev delivered.(i)) correct, correct)

let payloads k = List.init k (fun i -> "p" ^ string_of_int i)

let check_properties ?(expect_all = true) (logs, _) total =
  (match logs with
   | first :: rest ->
     List.iter (fun l -> checkb "agreement (prefix)" true (is_prefix first l)) rest;
     List.iter (fun l -> checkb "no duplication" true (no_dup l)) logs;
     if expect_all then
       List.iter (fun l -> checki "validity: all delivered" total (List.length l)) logs
   | [] -> Alcotest.fail "no correct servers")

let test_benign create () =
  let r = scenario ~create ~n:4 ~seed:1L ~payloads:(payloads 30) ~horizon:60. () in
  check_properties r 30

let test_crash_follower create () =
  let r =
    scenario ~create ~n:4 ~seed:2L ~crash:[ 2 ] ~crash_at:0.3 ~payloads:(payloads 30)
      ~horizon:90. ()
  in
  (* Payloads broadcast by the crashed server before it received them may
     be lost (it crashed); everything submitted by correct servers must
     survive.  Payload k is submitted by server (k mod 4): server 2's are
     exempt if it crashed before submitting. *)
  let logs, _ = r in
  (match logs with
   | first :: rest ->
     List.iter (fun l -> checkb "agreement" true (is_prefix first l)) rest;
     List.iter (fun l -> checkb "no dup" true (no_dup l)) logs;
     let from_correct =
       List.filter (fun p -> int_of_string (String.sub p 1 (String.length p - 1)) mod 4 <> 2)
         (payloads 30)
     in
     List.iter
       (fun p -> checkb ("delivered " ^ p) true (List.mem p first))
       from_correct
   | [] -> Alcotest.fail "no logs")

let test_crash_leader create () =
  (* Server 0 leads view 0 in both protocols' first views. *)
  let r =
    scenario ~create ~n:4 ~seed:3L ~crash:[ 0 ] ~crash_at:0.5 ~payloads:(payloads 20)
      ~horizon:120. ()
  in
  let logs, _ = r in
  (match logs with
   | first :: rest ->
     List.iter (fun l -> checkb "agreement" true (is_prefix first l)) rest;
     List.iter (fun l -> checkb "no dup" true (no_dup l)) logs;
     let from_correct =
       List.filter (fun p -> int_of_string (String.sub p 1 (String.length p - 1)) mod 4 <> 0)
         (payloads 20)
     in
     List.iter (fun p -> checkb ("delivered " ^ p) true (List.mem p first)) from_correct
   | [] -> Alcotest.fail "no logs")

let test_crash_f create () =
  (* n = 7, f = 2: crash two servers, all correct-submitted payloads land. *)
  let r =
    scenario ~create ~n:7 ~seed:4L ~crash:[ 5; 6 ] ~crash_at:0.4 ~payloads:(payloads 28)
      ~horizon:120. ()
  in
  let logs, _ = r in
  match logs with
  | first :: rest ->
    List.iter (fun l -> checkb "agreement" true (is_prefix first l)) rest;
    let from_correct =
      List.filter
        (fun p ->
          let k = int_of_string (String.sub p 1 (String.length p - 1)) in
          k mod 7 < 5)
        (payloads 28)
    in
    List.iter (fun p -> checkb ("delivered " ^ p) true (List.mem p first)) from_correct
  | [] -> Alcotest.fail "no logs"

let test_seven_servers create () =
  let r = scenario ~create ~n:7 ~seed:5L ~payloads:(payloads 40) ~horizon:90. () in
  check_properties r 40

let qcheck_random_schedule create name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8
       ~name
       QCheck.(pair (int_bound 1000) (int_range 5 40))
       (fun (seed, k) ->
         let r =
           scenario ~create ~n:4 ~seed:(Int64.of_int (seed + 1)) ~payloads:(payloads k)
             ~horizon:120. ()
         in
         let logs, _ = r in
         match logs with
         | first :: rest ->
           List.for_all (fun l -> is_prefix first l) rest
           && List.for_all no_dup logs
           && List.for_all (fun l -> List.length l = k) logs
         | [] -> false))

let proto_suite ?(leader_crash = true) name create =
  ( name,
    [ Alcotest.test_case "benign: agreement+nodup+validity" `Quick (test_benign create);
      Alcotest.test_case "crash follower" `Quick (test_crash_follower create) ]
    @ (if leader_crash then
         (* The Sequencer oracle is not fault-tolerant to node 0 by design. *)
         [ Alcotest.test_case "crash leader (view change)" `Quick (test_crash_leader create);
           Alcotest.test_case "crash f of 7" `Quick (test_crash_f create) ]
       else [])
    @ [ Alcotest.test_case "seven servers" `Quick (test_seven_servers create);
        qcheck_random_schedule create (name ^ ": random schedules hold properties") ] )

let test_pbft_sequential_mode () =
  (* max_outstanding = 1 (BFT-SMaRt mode) still delivers everything, just
     more slowly. *)
  let create ~engine ~self ~n ~send ~deliver ~payload_bytes () =
    let t =
      Repro_stob.Pbft.create ~engine ~self ~n ~send ~deliver ~payload_bytes
        ~max_outstanding:1 ~batch_max:4 ()
    in
    (Repro_stob.Pbft.broadcast t, (fun ~src m -> Repro_stob.Pbft.receive t ~src m),
     fun () -> Repro_stob.Pbft.crash t)
  in
  let r = scenario ~create ~n:4 ~seed:6L ~payloads:(payloads 25) ~horizon:120. () in
  check_properties r 25

let () =
  Alcotest.run "stob"
    [ proto_suite ~leader_crash:false "sequencer" seq_create;
      proto_suite "pbft" pbft_create;
      proto_suite "hotstuff" hs_create;
      ("pbft-modes",
       [ Alcotest.test_case "sequential instances" `Quick test_pbft_sequential_mode ]) ]
