(* Full-stack integration tests: Chop Chop over each underlying Atomic
   Broadcast, applications replicated across servers under load, crash
   faults mid-stream, and the experiment runner end to end. *)

module D = Repro_chopchop.Deployment
module Server = Repro_chopchop.Server
module Client = Repro_chopchop.Client
module Broker = Repro_chopchop.Broker
module Batch = Repro_chopchop.Batch
module Proto = Repro_chopchop.Proto
module LB = Repro_workload.Load_broker

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Chop Chop on each underlay: real clients + load broker together. *)
let run_underlay underlay () =
  let d =
    D.create
      { D.default_config with underlay; n_servers = 4; dense_clients = 100_000 }
  in
  let lb =
    LB.create ~deployment:d ~region:Repro_sim.Region.Ovh_gravelines
      ~config:{ rate = 2.0; batch_count = 256; msg_bytes = 8;
                distill_fraction = 1.0; ranges = 2; first_id = 0 }
      ()
  in
  let completions = ref 0 in
  let clients =
    List.init 3 (fun _ ->
        D.add_client d ~on_delivered:(fun _ ~latency:_ -> incr completions) ())
  in
  List.iter Client.signup clients;
  D.run d ~until:6.0;
  LB.start lb ~until:10. ();
  List.iter (fun c -> Client.broadcast c "mixed-traffic") clients;
  D.run d ~until:80.0;
  checki "clients completed" 3 !completions;
  checki "load completed" (LB.submitted lb) (LB.completed lb);
  let counts = Array.map Server.delivered_messages (D.servers d) in
  Array.iter (fun c -> checki "servers agree on message count" counts.(0) c) counts;
  checkb "load actually flowed" true (counts.(0) > 256)

(* Payments replicated across all servers under dense + explicit load. *)
let test_payments_replicated () =
  let d =
    D.create { D.default_config with underlay = D.Pbft; dense_clients = 100_000 }
  in
  let apps = Array.map (fun _ -> Repro_apps.Payments.create ()) (D.servers d) in
  D.server_deliver_hook d (fun srv del ->
      ignore (Repro_apps.Payments.apply_delivery apps.(srv) del));
  let lb =
    LB.create ~deployment:d ~region:Repro_sim.Region.Ovh_beauharnois
      ~config:{ rate = 2.0; batch_count = 128; msg_bytes = 8;
                distill_fraction = 1.0; ranges = 2; first_id = 0 }
      ()
  in
  let c = D.add_client d () in
  Client.signup c;
  D.run d ~until:5.0;
  LB.start lb ~until:8. ();
  Client.broadcast c (Repro_apps.Payments.encode_op ~recipient:3 ~amount:17);
  D.run d ~until:60.0;
  let supply = Repro_apps.Payments.total_supply apps.(0) in
  Array.iteri
    (fun i app ->
      checki (Printf.sprintf "server %d ops" i)
        (Repro_apps.Payments.ops_applied apps.(0))
        (Repro_apps.Payments.ops_applied app);
      checki (Printf.sprintf "server %d supply" i) supply
        (Repro_apps.Payments.total_supply app))
    apps;
  checkb "the explicit payment applied" true
    (Repro_apps.Payments.ops_applied apps.(0) > 128)

(* Crash f servers mid-load: delivery continues on survivors. *)
let test_crash_under_load () =
  let d =
    D.create { D.default_config with underlay = D.Pbft; dense_clients = 100_000 }
  in
  let lb =
    LB.create ~deployment:d ~region:Repro_sim.Region.Ovh_gravelines
      ~config:{ rate = 2.0; batch_count = 128; msg_bytes = 8;
                distill_fraction = 1.0; ranges = 2; first_id = 0 }
      ()
  in
  LB.start lb ~until:20. ();
  Repro_sim.Engine.schedule (D.engine d) ~delay:8.0 (fun () -> D.crash_server d 2);
  D.run d ~until:80.0;
  let before_crash = 8.0 *. 2.0 *. 128. in
  checkb
    (Printf.sprintf "survivors delivered past the crash point (%d)"
       (Server.delivered_messages (D.servers d).(0)))
    true
    (float_of_int (Server.delivered_messages (D.servers d).(0)) > before_crash);
  checkb "most load completed" true
    (LB.completed lb > LB.submitted lb * 8 / 10)

(* The experiment runner produces coherent metrics at a tiny scale. *)
let test_runner_coherent () =
  let open Repro_experiments in
  let p =
    { Chopchop_run.default with
      n_servers = 4; rate = 100_000.; batch_count = 4096;
      duration = 10.; warmup = 4.; cooldown = 2.; measure_clients = 2;
      dense_clients = 1_000_000 }
  in
  let r = Chopchop_run.run p in
  checkb
    (Printf.sprintf "throughput near offered (%.0f)" r.Chopchop_run.throughput)
    true
    (r.Chopchop_run.throughput > 60_000. && r.Chopchop_run.throughput < 120_000.);
  checkb "latency positive and bounded" true
    (r.Chopchop_run.latency_mean > 0.1 && r.Chopchop_run.latency_mean < 10.);
  checkb "network rate >= input rate (overhead exists)" true
    (r.Chopchop_run.network_rate_bps >= r.Chopchop_run.input_rate_bps *. 0.9);
  checkb "goodput tracks input at this load" true
    (r.Chopchop_run.goodput_bps > r.Chopchop_run.input_rate_bps *. 0.6)

let test_baseline_runner () =
  let open Repro_experiments in
  let r =
    Baseline_run.run
      { (Baseline_run.default Baseline_run.Bftsmart) with
        n_servers = 4; rate = 500.; duration = 20.; warmup = 5.; cooldown = 3. }
  in
  checkb
    (Printf.sprintf "bft-smart-style delivers offered 500 (%.0f)" r.Baseline_run.throughput)
    true
    (r.Baseline_run.throughput > 350. && r.Baseline_run.throughput < 600.);
  checkb "latency sub-5s" true (r.Baseline_run.latency_mean < 5.)

let test_app_calibration () =
  let open Repro_experiments in
  let cal = App_model.calibrate () in
  checki "three apps" 3 (List.length cal);
  List.iter
    (fun c ->
      checkb (c.App_model.app ^ " measured cost positive") true
        (c.App_model.measured_op_ns > 0.);
      checkb (c.App_model.app ^ " capacity positive") true (c.App_model.capacity > 0.))
    cal;
  let find n = List.find (fun c -> c.App_model.app = n) cal in
  checkb "auction (1 core) slower than payments (16 cores)" true
    ((find "Auction").App_model.capacity < (find "Payments").App_model.capacity)

(* Packet loss on the client<->broker path: reliable UDP recovers, and
   stragglers (missed reduction windows) still get through via their
   fallback signatures (§5.1, §4.2). *)
let test_lossy_network () =
  let d =
    D.create { D.default_config with underlay = D.Pbft; net_loss = 0.25 }
  in
  let clients =
    List.init 4 (fun _ -> D.add_client d ())
  in
  List.iter Client.signup clients;
  D.run d ~until:20.0;
  List.iteri
    (fun i c ->
      for k = 0 to 1 do
        Client.broadcast c (Printf.sprintf "lossy-%d-%d" i k)
      done)
    clients;
  D.run d ~until:150.0;
  let completed = List.fold_left (fun a c -> a + Client.completed c) 0 clients in
  checki "all broadcasts completed despite 25% loss" 8 completed;
  checki "all delivered exactly once" 8
    (Server.delivered_messages (D.servers d).(0));
  let retrans, _, _ = D.rudp_stats d in
  checkb "the transport actually retransmitted" true (retrans > 0)

let test_future_pk_offload_model () =
  let open Repro_experiments in
  List.iter
    (fun r ->
      checkb "offload raises the capacity ceiling" true
        (r.Future.offloaded_capacity > r.Future.baseline_capacity))
    (Future.pk_offload ~servers:[ 8; 64 ])

let () =
  Alcotest.run "integration"
    [ ("underlays",
       [ Alcotest.test_case "chopchop over sequencer" `Quick (run_underlay D.Sequencer);
         Alcotest.test_case "chopchop over pbft" `Quick (run_underlay D.Pbft);
         Alcotest.test_case "chopchop over hotstuff" `Slow (run_underlay D.Hotstuff) ]);
      ("apps",
       [ Alcotest.test_case "payments replicated" `Quick test_payments_replicated ]);
      ("faults",
       [ Alcotest.test_case "crash under load" `Quick test_crash_under_load;
         Alcotest.test_case "lossy network" `Quick test_lossy_network ]);
      ("runners",
       [ Alcotest.test_case "chopchop runner coherent" `Slow test_runner_coherent;
         Alcotest.test_case "baseline runner" `Slow test_baseline_runner;
         Alcotest.test_case "app calibration" `Quick test_app_calibration;
         Alcotest.test_case "pk-offload capacity model" `Quick test_future_pk_offload_model ]) ]
