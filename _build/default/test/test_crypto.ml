(* Tests for the cryptographic substrate: SHA-256 against FIPS vectors,
   field arithmetic laws, Schnorr and multi-signature behaviour, Merkle
   inclusion proofs. *)

open Repro_crypto

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rng = Repro_sim.Rng.create 7L
let next64 () = Repro_sim.Rng.next64 rng

let field_gen = QCheck.map (fun i -> Field61.of_int i) QCheck.int

(* --- SHA-256 ---------------------------------------------------------- *)

let sha_vectors =
  [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno" ^
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" ) ]

let test_sha_vectors () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string input expected (Sha256.to_hex (Sha256.digest input)))
    sha_vectors

let test_sha_million_a () =
  check Alcotest.string "10^6 x 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.digest (String.make 1_000_000 'a')))

let test_sha_incremental () =
  (* Feeding in arbitrary splits must match the one-shot digest. *)
  let s = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let expected = Sha256.digest s in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let rec go i =
        if i < String.length s then begin
          let len = min chunk (String.length s - i) in
          Sha256.feed ctx (String.sub s i len);
          go (i + len)
        end
      in
      go 0;
      checkb (Printf.sprintf "chunk %d" chunk) true (Sha256.finalize ctx = expected))
    [ 1; 3; 63; 64; 65; 1000 ]

let test_sha_digest_list () =
  checkb "digest_list = digest of concat" true
    (Sha256.digest_list [ "foo"; "bar"; "baz" ] = Sha256.digest "foobarbaz")

let test_hmac_rfc4231 () =
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.to_hex (Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  check Alcotest.string "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.to_hex
       (Sha256.hmac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

(* --- Field61 ------------------------------------------------------------ *)

let test_field_basics () =
  checkb "p is 2^61-1" true (Field61.p = (1 lsl 61) - 1);
  checkb "canonical of_int" true (Field61.to_int (Field61.of_int Field61.p) = 0);
  checkb "negative of_int" true
    (Field61.equal (Field61.of_int (-1)) (Field61.of_int (Field61.p - 1)))

let suite_field =
  [ qtest "mul matches double-and-add reference"
      QCheck.(pair field_gen field_gen)
      (fun (a, b) -> Field61.equal (Field61.mul a b) (Field61.mul_slow a b));
    qtest "addition commutes" QCheck.(pair field_gen field_gen)
      (fun (a, b) -> Field61.equal (Field61.add a b) (Field61.add b a));
    qtest "multiplication commutes" QCheck.(pair field_gen field_gen)
      (fun (a, b) -> Field61.equal (Field61.mul a b) (Field61.mul b a));
    qtest "distributivity" QCheck.(triple field_gen field_gen field_gen)
      (fun (a, b, c) ->
        Field61.equal
          (Field61.mul a (Field61.add b c))
          (Field61.add (Field61.mul a b) (Field61.mul a c)));
    qtest "sub inverts add" QCheck.(pair field_gen field_gen)
      (fun (a, b) -> Field61.equal (Field61.sub (Field61.add a b) b) a);
    qtest "inverse law" field_gen (fun a ->
        QCheck.assume (not (Field61.equal a Field61.zero));
        Field61.equal (Field61.mul a (Field61.inv a)) Field61.one);
    qtest ~count:50 "pow matches repeated mul" QCheck.(pair field_gen (int_bound 200))
      (fun (a, e) ->
        let rec naive acc i = if i = 0 then acc else naive (Field61.mul acc a) (i - 1) in
        Field61.equal (Field61.pow a e) (naive Field61.one e));
    qtest ~count:50 "fermat little theorem" field_gen (fun a ->
        QCheck.assume (not (Field61.equal a Field61.zero));
        Field61.equal (Field61.pow a (Field61.p - 1)) Field61.one) ]

let test_field_random_range () =
  for _ = 1 to 1000 do
    let x = Field61.to_int (Field61.random next64) in
    assert (x >= 0 && x < Field61.p)
  done

(* --- Schnorr --------------------------------------------------------------- *)

let test_schnorr_roundtrip () =
  let sk, pk = Schnorr.keygen next64 in
  let s = Schnorr.sign sk "the message" in
  checkb "verifies" true (Schnorr.verify pk "the message" s);
  checkb "wrong message fails" false (Schnorr.verify pk "the messagE" s);
  let _, pk2 = Schnorr.keygen next64 in
  checkb "wrong key fails" false (Schnorr.verify pk2 "the message" s);
  checkb "garbage fails" false (Schnorr.verify pk "the message" (Schnorr.forge_garbage ()))

let test_schnorr_deterministic () =
  let sk, pk = Schnorr.keygen_deterministic ~seed:"alice" in
  let _, pk' = Schnorr.keygen_deterministic ~seed:"alice" in
  checkb "same seed same key" true
    (Field61.equal (Schnorr.public_key_of_secret sk) pk && Field61.equal pk pk');
  let _, pk2 = Schnorr.keygen_deterministic ~seed:"bob" in
  checkb "different seed different key" false (Field61.equal pk pk2);
  checkb "deterministic signatures" true
    (Schnorr.signature_equal (Schnorr.sign sk "m") (Schnorr.sign sk "m"))

let suite_schnorr_props =
  [ qtest ~count:100 "sign/verify for arbitrary messages" QCheck.string (fun m ->
        let sk, pk = Schnorr.keygen_deterministic ~seed:"prop" in
        Schnorr.verify pk m (Schnorr.sign sk m));
    qtest ~count:100 "batch verification accepts honest batches"
      QCheck.(list_of_size (Gen.int_range 1 20) small_string)
      (fun msgs ->
        let entries =
          List.mapi
            (fun i m ->
              let sk, pk = Schnorr.keygen_deterministic ~seed:(string_of_int i) in
              (pk, m, Schnorr.sign sk m))
            msgs
        in
        Schnorr.batch_verify entries);
    qtest ~count:100 "batch verification rejects any corrupted entry"
      QCheck.(pair (int_bound 9) (list_of_size (Gen.return 10) small_string))
      (fun (bad, msgs) ->
        let entries =
          List.mapi
            (fun i m ->
              let sk, pk = Schnorr.keygen_deterministic ~seed:(string_of_int i) in
              let s = Schnorr.sign sk m in
              if i = bad then (pk, m, Schnorr.forge_garbage ()) else (pk, m, s))
            msgs
        in
        not (Schnorr.batch_verify entries)) ]

let test_batch_verify_empty () = checkb "empty batch ok" true (Schnorr.batch_verify [])

(* --- Multisig ----------------------------------------------------------------- *)

let keys n = List.init n (fun i -> Multisig.keygen_deterministic ~seed:("ms" ^ string_of_int i))

let test_multisig_single () =
  let sk, pk = Multisig.keygen next64 in
  let s = Multisig.sign sk "root" in
  checkb "single share verifies" true (Multisig.verify pk "root" s);
  checkb "wrong message fails" false (Multisig.verify pk "toor" s)

let test_multisig_aggregate () =
  let ks = keys 8 in
  let shares = List.map (fun (sk, _) -> Multisig.sign sk "root") ks in
  let agg = Multisig.aggregate_signatures shares in
  let pks = List.map snd ks in
  checkb "aggregate verifies" true (Multisig.verify_multi pks "root" agg);
  checkb "subset of keys fails" false
    (Multisig.verify_multi (List.tl pks) "root" agg);
  checkb "superset of keys fails" false
    (Multisig.verify_multi (snd (Multisig.keygen next64) :: pks) "root" agg)

let test_multisig_partial_aggregation () =
  (* Aggregation is associative: combining partial aggregates works
     (the broker's tree-search relies on this). *)
  let ks = keys 6 in
  let shares = List.map (fun (sk, _) -> Multisig.sign sk "r") ks in
  let left = Multisig.aggregate_signatures (List.filteri (fun i _ -> i < 3) shares) in
  let right = Multisig.aggregate_signatures (List.filteri (fun i _ -> i >= 3) shares) in
  let agg = Multisig.aggregate_signatures [ left; right ] in
  checkb "partial aggregates compose" true
    (Multisig.verify_multi (List.map snd ks) "r" agg)

let test_multisig_secret_aggregation () =
  (* The workload generator's shortcut: the sum of secrets signs like the
     aggregate of the shares. *)
  let ks = keys 5 in
  let agg_sk = Multisig.aggregate_secret_keys (List.map fst ks) in
  let direct = Multisig.sign agg_sk "root" in
  let agg =
    Multisig.aggregate_signatures (List.map (fun (sk, _) -> Multisig.sign sk "root") ks)
  in
  checkb "sum-of-secrets = aggregate-of-shares" true (Multisig.signature_equal direct agg)

let test_multisig_diff_secrets () =
  let ks = keys 4 in
  let all = Multisig.aggregate_secret_keys (List.map fst ks) in
  let head = Multisig.aggregate_secret_keys [ List.hd (List.map fst ks) ] in
  let tail_sk = Multisig.diff_secret_keys all head in
  let agg_tail =
    Multisig.aggregate_signatures
      (List.map (fun (sk, _) -> Multisig.sign sk "z") (List.tl ks))
  in
  checkb "diff of secrets signs like the tail" true
    (Multisig.signature_equal (Multisig.sign tail_sk "z") agg_tail)

let test_find_invalid () =
  let ks = keys 16 in
  let entries =
    List.mapi
      (fun i (sk, pk) ->
        let s = if i = 3 || i = 11 then Multisig.forge_garbage () else Multisig.sign sk "m" in
        (pk, s))
      ks
  in
  Alcotest.(check (list int)) "finds exactly the bad shares" [ 3; 11 ]
    (Multisig.find_invalid entries "m");
  let all_good = List.map (fun (sk, pk) -> (pk, Multisig.sign sk "m")) ks in
  Alcotest.(check (list int)) "no false positives" [] (Multisig.find_invalid all_good "m")

let suite_multisig_props =
  [ qtest ~count:60 "find_invalid locates arbitrary corruption patterns"
      QCheck.(list_of_size (Gen.int_range 1 24) bool)
      (fun pattern ->
        let entries =
          List.mapi
            (fun i bad ->
              let sk, pk = Multisig.keygen_deterministic ~seed:("fi" ^ string_of_int i) in
              (pk, if bad then Multisig.forge_garbage () else Multisig.sign sk "x"))
            pattern
        in
        let found = Multisig.find_invalid entries "x" in
        let expected =
          List.mapi (fun i bad -> (i, bad)) pattern
          |> List.filter_map (fun (i, bad) -> if bad then Some i else None)
        in
        found = expected) ]

(* --- Merkle ----------------------------------------------------------------- *)

let test_merkle_roundtrip () =
  List.iter
    (fun n ->
      let leaves = Array.init n (fun i -> "leaf" ^ string_of_int i) in
      let t = Merkle.build leaves in
      Alcotest.(check int) "leaf_count" n (Merkle.leaf_count t);
      for i = 0 to n - 1 do
        let proof = Merkle.prove t i in
        checkb
          (Printf.sprintf "n=%d i=%d verifies" n i)
          true
          (Merkle.verify (Merkle.root t) ~leaf:leaves.(i) proof);
        Alcotest.(check int) "proof index" i (Merkle.proof_index proof)
      done)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 33; 100 ]

let test_merkle_rejects () =
  let leaves = Array.init 10 (fun i -> "L" ^ string_of_int i) in
  let t = Merkle.build leaves in
  let proof = Merkle.prove t 4 in
  checkb "wrong leaf fails" false (Merkle.verify (Merkle.root t) ~leaf:"L5" proof);
  let t2 = Merkle.build (Array.map (fun l -> l ^ "!") leaves) in
  checkb "wrong root fails" false (Merkle.verify (Merkle.root t2) ~leaf:"L4" proof)

let test_merkle_empty () =
  Alcotest.check_raises "empty vector rejected"
    (Invalid_argument "Merkle.build: empty leaf vector") (fun () ->
      ignore (Merkle.build [||]))

let test_merkle_out_of_range () =
  let t = Merkle.build [| "a"; "b" |] in
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Merkle.prove: index out of range") (fun () ->
      ignore (Merkle.prove t 2))

let test_merkle_distinct_roots () =
  (* Domain separation: a two-leaf tree's root differs from the leaf hash
     of the concatenation. *)
  let t1 = Merkle.build [| "ab" |] in
  let t2 = Merkle.build [| "a"; "b" |] in
  checkb "no leaf/node confusion" false
    (Merkle.root_equal (Merkle.root t1) (Merkle.root t2))

let test_merkle_proof_size () =
  let t = Merkle.build (Array.init 65536 string_of_int) in
  let proof = Merkle.prove t 12345 in
  Alcotest.(check int) "depth 16 for 65,536 leaves" 16 (Merkle.proof_length proof);
  Alcotest.(check int) "wire size" ((16 * 32) + 8) (Merkle.proof_size_bytes proof)

let suite_merkle_props =
  [ qtest ~count:100 "random trees: every proof verifies, flipped leaf changes root"
      QCheck.(list_of_size (Gen.int_range 2 40) small_string)
      (fun leaves ->
        let arr = Array.of_list leaves in
        let t = Merkle.build arr in
        let ok = ref true in
        Array.iteri
          (fun i leaf ->
            if not (Merkle.verify (Merkle.root t) ~leaf (Merkle.prove t i)) then ok := false)
          arr;
        let arr2 = Array.copy arr in
        arr2.(0) <- arr2.(0) ^ "~";
        !ok && not (Merkle.root_equal (Merkle.root t) (Merkle.root (Merkle.build arr2)))) ]

let () =
  Alcotest.run "crypto"
    [ ("sha256",
       [ Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
         Alcotest.test_case "million a" `Slow test_sha_million_a;
         Alcotest.test_case "incremental feeding" `Quick test_sha_incremental;
         Alcotest.test_case "digest_list" `Quick test_sha_digest_list;
         Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231 ]);
      ("field61",
       Alcotest.test_case "basics" `Quick test_field_basics
       :: Alcotest.test_case "random range" `Quick test_field_random_range
       :: suite_field);
      ("schnorr",
       Alcotest.test_case "roundtrip" `Quick test_schnorr_roundtrip
       :: Alcotest.test_case "deterministic" `Quick test_schnorr_deterministic
       :: Alcotest.test_case "empty batch" `Quick test_batch_verify_empty
       :: suite_schnorr_props);
      ("multisig",
       Alcotest.test_case "single" `Quick test_multisig_single
       :: Alcotest.test_case "aggregate" `Quick test_multisig_aggregate
       :: Alcotest.test_case "partial aggregation" `Quick test_multisig_partial_aggregation
       :: Alcotest.test_case "secret aggregation" `Quick test_multisig_secret_aggregation
       :: Alcotest.test_case "diff secrets" `Quick test_multisig_diff_secrets
       :: Alcotest.test_case "find_invalid" `Quick test_find_invalid
       :: suite_multisig_props);
      ("merkle",
       Alcotest.test_case "roundtrip all sizes" `Quick test_merkle_roundtrip
       :: Alcotest.test_case "rejects" `Quick test_merkle_rejects
       :: Alcotest.test_case "empty" `Quick test_merkle_empty
       :: Alcotest.test_case "out of range" `Quick test_merkle_out_of_range
       :: Alcotest.test_case "domain separation" `Quick test_merkle_distinct_roots
       :: Alcotest.test_case "proof size" `Quick test_merkle_proof_size
       :: suite_merkle_props) ]
