test/test_mempool.ml: Alcotest Array Cpu Engine List Net Printf Region Repro_mempool Repro_sim String
