test/test_crypto.ml: Alcotest Array Char Field61 Gen List Merkle Multisig Printf QCheck QCheck_alcotest Repro_crypto Repro_sim Schnorr Sha256 String
