test/test_stob.ml: Alcotest Array Engine Fun Int64 List Net QCheck QCheck_alcotest Region Repro_sim Repro_stob String
