test/test_workload.ml: Alcotest Array List Printf Repro_chopchop Repro_sim Repro_workload
