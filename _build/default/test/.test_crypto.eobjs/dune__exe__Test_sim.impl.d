test/test_sim.ml: Alcotest Array Cpu Engine Fun Gen List Net QCheck QCheck_alcotest Region Repro_sim Rng Rudp Stats
