test/test_apps.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Repro_apps Repro_chopchop String
