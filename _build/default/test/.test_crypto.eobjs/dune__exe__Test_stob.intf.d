test/test_stob.mli:
