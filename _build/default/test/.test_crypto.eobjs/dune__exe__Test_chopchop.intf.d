test/test_chopchop.mli:
