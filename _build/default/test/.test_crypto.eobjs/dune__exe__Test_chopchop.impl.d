test/test_chopchop.ml: Alcotest Array Batch Broker Certs Client Deployment Directory Gen List Printf Proto QCheck QCheck_alcotest Repro_chopchop Repro_crypto Repro_sim Server Stob_item Types Wire
