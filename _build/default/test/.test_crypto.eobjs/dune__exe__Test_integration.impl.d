test/test_integration.ml: Alcotest App_model Array Baseline_run Chopchop_run Future List Printf Repro_apps Repro_chopchop Repro_experiments Repro_sim Repro_workload
