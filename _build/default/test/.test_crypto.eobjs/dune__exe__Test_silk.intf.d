test/test_silk.mli:
