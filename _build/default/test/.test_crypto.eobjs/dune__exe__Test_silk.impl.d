test/test_silk.ml: Alcotest Printf Repro_silk
