(* Tests for the three applications: encode/decode roundtrips,
   state-machine semantics, determinism across replicas, conservation
   invariants (property-tested), and bulk-delivery equivalence. *)

module Proto = Repro_chopchop.Proto
module P = Repro_apps.Payments
module A = Repro_apps.Auction
module X = Repro_apps.Pixelwar

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Payments ----------------------------------------------------------- *)

let test_payments_encode () =
  (match P.decode_op (P.encode_op ~recipient:12345 ~amount:678) with
   | Some (r, a) ->
     checki "recipient" 12345 r;
     checki "amount" 678 a
   | None -> Alcotest.fail "decode failed");
  checkb "short message rejected" true (P.decode_op "xx" = None);
  checkb "zero amount rejected" true (P.decode_op (P.encode_op ~recipient:1 ~amount:0) = None);
  checki "8-byte wire" 8 (String.length (P.encode_op ~recipient:1 ~amount:1))

let test_payments_transfer () =
  let t = P.create ~accounts:16 ~initial_balance:100 () in
  checkb "valid transfer applies" true (P.apply_op t 0 (P.encode_op ~recipient:1 ~amount:60));
  checki "sender debited" 40 (P.balance t 0);
  checki "recipient credited" 160 (P.balance t 1);
  checkb "overdraft rejected" false (P.apply_op t 0 (P.encode_op ~recipient:1 ~amount:60));
  checki "rejected counted" 1 (P.rejected t);
  checkb "self-payment rejected" false (P.apply_op t 2 (P.encode_op ~recipient:2 ~amount:1))

let test_payments_conservation_bulk () =
  let t = P.create ~accounts:64 () in
  let supply = P.total_supply t in
  ignore (P.apply_delivery t (Proto.Bulk { first_id = 0; count = 10_000; tag = 3; msg_bytes = 8 }));
  checki "supply conserved under bulk load" supply (P.total_supply t);
  checki "ops counted" 10_000 (P.ops_applied t)

let suite_payments_props =
  [ qtest "conservation under arbitrary op sequences"
      QCheck.(list_of_size (Gen.int_range 1 200) (triple (int_bound 63) (int_bound 63) (int_range 1 500)))
      (fun ops ->
        let t = P.create ~accounts:64 ~initial_balance:1000 () in
        let supply = P.total_supply t in
        List.iter
          (fun (sender, recipient, amount) ->
            ignore (P.apply_op t sender (P.encode_op ~recipient ~amount)))
          ops;
        P.total_supply t = supply);
    qtest "balances never negative"
      QCheck.(list_of_size (Gen.int_range 1 100) (triple (int_bound 15) (int_bound 15) (int_range 1 2000)))
      (fun ops ->
        let t = P.create ~accounts:16 ~initial_balance:1000 () in
        List.iter
          (fun (s, r, a) -> ignore (P.apply_op t s (P.encode_op ~recipient:r ~amount:a)))
          ops;
        let ok = ref true in
        for i = 0 to 15 do
          if P.balance t i < 0 then ok := false
        done;
        !ok) ]

let test_payments_determinism () =
  (* Two replicas fed the same deliveries agree. *)
  let t1 = P.create () and t2 = P.create () in
  let bulk = Proto.Bulk { first_id = 5; count = 5000; tag = 9; msg_bytes = 8 } in
  ignore (P.apply_delivery t1 bulk);
  ignore (P.apply_delivery t2 bulk);
  for i = 0 to 100 do
    checki "balance agrees" (P.balance t1 i) (P.balance t2 i)
  done

(* --- Auction ------------------------------------------------------------- *)

let test_auction_encode () =
  (match A.decode_op (A.encode_op (A.Bid { token = 77; amount = 500 })) with
   | Some (A.Bid { token; amount }) ->
     checki "token" 77 token;
     checki "amount" 500 amount
   | _ -> Alcotest.fail "bid decode");
  (match A.decode_op (A.encode_op (A.Take { token = 3 })) with
   | Some (A.Take { token }) -> checki "take token" 3 token
   | _ -> Alcotest.fail "take decode")

let test_auction_flow () =
  let t = A.create ~tokens:4 ~accounts:16 ~initial_balance:1000 () in
  checki "token 1 owned by account 1" 1 (A.owner t 1);
  (* Account 2 bids 100 on token 1. *)
  checkb "bid ok" true (A.apply_op t 2 (A.encode_op (A.Bid { token = 1; amount = 100 })));
  checki "bid locked" 100 (A.locked t 2);
  checki "balance reduced" 900 (A.balance t 2);
  (* Account 3 outbids: 2 gets refunded. *)
  checkb "outbid ok" true (A.apply_op t 3 (A.encode_op (A.Bid { token = 1; amount = 150 })));
  checki "loser refunded" 1000 (A.balance t 2);
  checki "loser unlocked" 0 (A.locked t 2);
  (* Lower bid rejected. *)
  checkb "lower bid rejected" false (A.apply_op t 4 (A.encode_op (A.Bid { token = 1; amount = 120 })));
  (* Owner takes: money moves, token moves. *)
  checkb "take ok" true (A.apply_op t 1 (A.encode_op (A.Take { token = 1 })));
  checki "new owner" 3 (A.owner t 1);
  checki "seller paid" 1150 (A.balance t 1);
  checki "buyer spent" 850 (A.balance t 3);
  checkb "no standing bid" true (A.highest_bid t 1 = None)

let test_auction_guards () =
  let t = A.create ~tokens:4 ~accounts:16 ~initial_balance:100 () in
  checkb "owner cannot bid on own token" false
    (A.apply_op t 1 (A.encode_op (A.Bid { token = 1; amount = 10 })));
  checkb "cannot bid beyond balance" false
    (A.apply_op t 2 (A.encode_op (A.Bid { token = 1; amount = 500 })));
  checkb "cannot take without a bid" false (A.apply_op t 1 (A.encode_op (A.Take { token = 1 })));
  checkb "non-owner cannot take" false
    (let _ = A.apply_op t 2 (A.encode_op (A.Bid { token = 1; amount = 10 })) in
     A.apply_op t 3 (A.encode_op (A.Take { token = 1 })))

let suite_auction_props =
  [ qtest ~count:100 "funds conserved under arbitrary auction activity"
      QCheck.(list_of_size (Gen.int_range 1 300)
                (triple (int_bound 31) (int_bound 7) (int_range 0 400)))
      (fun ops ->
        let t = A.create ~tokens:8 ~accounts:32 ~initial_balance:1000 () in
        let funds = A.total_funds t in
        List.iter
          (fun (actor, token, amount) ->
            let op = if amount = 0 then A.Take { token } else A.Bid { token; amount } in
            ignore (A.apply_op t actor (A.encode_op op)))
          ops;
        A.total_funds t = funds);
    qtest ~count:100 "highest bid only increases until taken"
      QCheck.(list_of_size (Gen.int_range 1 100) (pair (int_bound 31) (int_range 1 400)))
      (fun bids ->
        let t = A.create ~tokens:1 ~accounts:32 ~initial_balance:10_000 () in
        let last = ref 0 in
        let ok = ref true in
        List.iter
          (fun (actor, amount) ->
            ignore (A.apply_op t actor (A.encode_op (A.Bid { token = 0; amount })));
            match A.highest_bid t 0 with
            | Some (_, b) ->
              if b < !last then ok := false;
              last := b
            | None -> ())
          bids;
        !ok) ]

(* --- Pixelwar ------------------------------------------------------------- *)

let test_pixelwar_paint () =
  let t = X.create () in
  checki "unpainted" (-1) (X.pixel t ~x:5 ~y:5);
  checkb "paint applies" true (X.apply_op t 0 (X.encode_op ~x:5 ~y:5 ~rgb:0xABCDEF));
  checki "colour stored" 0xABCDEF (X.pixel t ~x:5 ~y:5);
  checkb "overwrite wins" true (X.apply_op t 1 (X.encode_op ~x:5 ~y:5 ~rgb:0x111111));
  checki "last writer wins" 0x111111 (X.pixel t ~x:5 ~y:5);
  checki "painted counts distinct pixels" 1 (X.painted t)

let test_pixelwar_encode_bounds () =
  let t = X.create ~width:2048 ~height:2048 () in
  (match X.decode_op t (X.encode_op ~x:2047 ~y:2047 ~rgb:0xFFFFFF) with
   | Some (x, y, rgb) ->
     checki "x" 2047 x;
     checki "y" 2047 y;
     checki "rgb" 0xFFFFFF rgb
   | None -> Alcotest.fail "decode failed");
  checkb "short message rejected" true (X.decode_op t "zz" = None)

let suite_pixelwar_props =
  [ qtest "encode/decode roundtrip"
      QCheck.(triple (int_bound 2047) (int_bound 2047) (int_bound 0xFFFFFF))
      (fun (x, y, rgb) ->
        let t = X.create () in
        X.decode_op t (X.encode_op ~x ~y ~rgb) = Some (x, y, rgb));
    qtest "painted counter bounded by ops"
      QCheck.(list_of_size (Gen.int_range 1 50) (pair (int_bound 63) (int_bound 63)))
      (fun pixels ->
        let t = X.create ~width:64 ~height:64 () in
        List.iter (fun (x, y) -> ignore (X.apply_op t 0 (X.encode_op ~x ~y ~rgb:1))) pixels;
        X.painted t <= List.length pixels
        && X.painted t = List.length (List.sort_uniq compare pixels)) ]

let test_pixelwar_bulk_deterministic () =
  let t1 = X.create () and t2 = X.create () in
  let bulk = Proto.Bulk { first_id = 0; count = 5000; tag = 2; msg_bytes = 8 } in
  ignore (X.apply_delivery t1 bulk);
  ignore (X.apply_delivery t2 bulk);
  checki "same painted count" (X.painted t1) (X.painted t2);
  for i = 0 to 50 do
    checki "same pixels" (X.pixel t1 ~x:i ~y:i) (X.pixel t2 ~x:i ~y:i)
  done

(* --- Sealed (encrypt-order-reveal, §4.4.3) -------------------------------- *)

module S = Repro_apps.Sealed

let mk_sealed ?ttl () =
  let log = ref [] in
  let t = S.create ~apply:(fun id msg -> log := (id, msg) :: !log) ?ttl () in
  (t, log)

let test_sealed_roundtrip () =
  let t, log = mk_sealed () in
  let s = S.seal ~payload:"BUY 100" ~salt:"s1" in
  checkb "frames recognised" true (S.is_frame s);
  checkb "plain ops are not frames" false (S.is_frame "BUY 100");
  S.on_deliver t 7 s;
  checki "not executed before reveal" 0 (S.executed t);
  checki "pending" 1 (S.pending t);
  S.on_deliver t 7 (S.reveal ~payload:"BUY 100" ~salt:"s1");
  checki "executed after reveal" 1 (S.executed t);
  checkb "applied payload" true (!log = [ (7, "BUY 100") ])

let test_sealed_order_is_seal_order () =
  (* Reveals arrive in the opposite order; execution follows seal order. *)
  let t, log = mk_sealed () in
  S.on_deliver t 1 (S.seal ~payload:"first" ~salt:"a");
  S.on_deliver t 2 (S.seal ~payload:"second" ~salt:"b");
  S.on_deliver t 2 (S.reveal ~payload:"second" ~salt:"b");
  checki "second waits for first" 0 (S.executed t);
  S.on_deliver t 1 (S.reveal ~payload:"first" ~salt:"a");
  checki "both executed" 2 (S.executed t);
  Alcotest.(check (list (pair int string))) "in seal order"
    [ (1, "first"); (2, "second") ] (List.rev !log)

let test_sealed_commitment_binds () =
  (* A reveal with different content than sealed is ignored. *)
  let t, _ = mk_sealed () in
  S.on_deliver t 3 (S.seal ~payload:"real-op" ~salt:"x");
  S.on_deliver t 3 (S.reveal ~payload:"forged-op" ~salt:"x");
  checki "forged reveal ignored" 0 (S.executed t);
  (* Nor can another client steal the reveal. *)
  S.on_deliver t 4 (S.reveal ~payload:"real-op" ~salt:"x");
  checki "cross-client reveal ignored" 0 (S.executed t);
  S.on_deliver t 3 (S.reveal ~payload:"real-op" ~salt:"x");
  checki "true reveal executes" 1 (S.executed t)

let test_sealed_expiry () =
  let t, _ = mk_sealed ~ttl:3 () in
  S.on_deliver t 1 (S.seal ~payload:"never-revealed" ~salt:"z");
  S.on_deliver t 2 (S.seal ~payload:"op2" ~salt:"w");
  S.on_deliver t 2 (S.reveal ~payload:"op2" ~salt:"w");
  checki "blocked behind the head seal" 0 (S.executed t);
  (* Deliveries pass; the head seal expires and op2 unblocks. *)
  for i = 0 to 3 do
    S.on_deliver t 9 (Printf.sprintf "noise%d" i)
  done;
  checki "expired head voided" 1 (S.voided t);
  checki "op2 executed" 1 (S.executed t)

let test_sealed_reveal_without_seal () =
  let t, _ = mk_sealed () in
  S.on_deliver t 5 (S.reveal ~payload:"orphan" ~salt:"q");
  checki "orphan reveal dropped" 0 (S.executed t)

let suite_sealed_props =
  [ qtest ~count:100 "commitment never leaks payload equality"
      QCheck.(pair small_string small_string)
      (fun (a, b) ->
        (* Distinct payloads (or salts) give distinct seal frames. *)
        QCheck.assume (a <> b);
        S.seal ~payload:a ~salt:"s" <> S.seal ~payload:b ~salt:"s"
        && S.seal ~payload:a ~salt:"s" <> S.seal ~payload:a ~salt:"t");
    qtest ~count:100 "executed = longest fully-revealed seal prefix, in order"
      QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_bound 5) bool))
      (fun plan ->
        let t, log = mk_sealed ~ttl:1_000 () in
        List.iteri
          (fun i (client, _) ->
            S.on_deliver t client
              (S.seal ~payload:(string_of_int i) ~salt:(string_of_int i)))
          plan;
        (* Reveal the chosen subset in reverse delivery order. *)
        let indexed = List.mapi (fun i (c, r) -> (i, c, r)) plan in
        List.iter
          (fun (i, client, revealed) ->
            if revealed then
              S.on_deliver t client
                (S.reveal ~payload:(string_of_int i) ~salt:(string_of_int i)))
          (List.rev indexed);
        let rec prefix = function
          | (_, true) :: rest -> 1 + prefix rest
          | _ -> 0
        in
        let expect = prefix plan in
        S.executed t = expect
        && List.rev !log
           = List.filteri (fun i _ -> i < expect)
               (List.map (fun (i, c, _) -> (c, string_of_int i)) indexed)) ]

let () =
  Alcotest.run "apps"
    [ ("payments",
       Alcotest.test_case "encode/decode" `Quick test_payments_encode
       :: Alcotest.test_case "transfer semantics" `Quick test_payments_transfer
       :: Alcotest.test_case "bulk conservation" `Quick test_payments_conservation_bulk
       :: Alcotest.test_case "replica determinism" `Quick test_payments_determinism
       :: suite_payments_props);
      ("auction",
       Alcotest.test_case "encode/decode" `Quick test_auction_encode
       :: Alcotest.test_case "bid/outbid/take flow" `Quick test_auction_flow
       :: Alcotest.test_case "guards" `Quick test_auction_guards
       :: suite_auction_props);
      ("pixelwar",
       Alcotest.test_case "paint" `Quick test_pixelwar_paint
       :: Alcotest.test_case "encode bounds" `Quick test_pixelwar_encode_bounds
       :: Alcotest.test_case "bulk deterministic" `Quick test_pixelwar_bulk_deterministic
       :: suite_pixelwar_props);
      ("sealed",
       [ Alcotest.test_case "roundtrip" `Quick test_sealed_roundtrip;
         Alcotest.test_case "seal order execution" `Quick test_sealed_order_is_seal_order;
         Alcotest.test_case "commitment binds" `Quick test_sealed_commitment_binds;
         Alcotest.test_case "expiry unblocks" `Quick test_sealed_expiry;
         Alcotest.test_case "orphan reveal" `Quick test_sealed_reveal_without_seal;
         List.hd suite_sealed_props ]) ]
