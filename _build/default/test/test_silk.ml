(* Tests for the silk deployment-tool model (§6.2). *)

module S = Repro_silk.Silk

let checkb = Alcotest.check Alcotest.bool

let test_stream_throughput () =
  let p = S.default_params in
  (* 8 MB window over 150 ms RTT = ~53 MB/s = ~0.43 Gb/s. *)
  let gbps = S.stream_bps p /. 1e9 in
  checkb (Printf.sprintf "single stream ~0.43 Gb/s (got %.2f)" gbps) true
    (gbps > 0.3 && gbps < 0.6)

let test_scp_matches_paper () =
  let h = S.scp_hours S.default_params in
  checkb (Printf.sprintf "scp ~68 h (got %.1f)" h) true (h > 55. && h < 80.)

let test_silk_matches_paper () =
  let m = S.silk_minutes S.default_params in
  checkb (Printf.sprintf "silk ~30 min (got %.1f)" m) true (m > 5. && m < 60.)

let test_speedup () =
  checkb "silk is at least 60x faster than scp" true (S.speedup S.default_params > 60.)

let test_window_sensitivity () =
  (* A larger TCP window speeds up scp (the window is its whole problem)
     but barely moves silk (already NIC-bound). *)
  let p = S.default_params in
  let big = { p with S.tcp_window_bytes = 64e6 } in
  checkb "bigger window helps scp" true (S.scp_hours big < S.scp_hours p /. 4.);
  checkb "silk roughly unchanged" true
    (S.silk_minutes big < S.silk_minutes p *. 2.)

let test_more_replication_faster () =
  let p = S.default_params in
  let more = { p with S.replication = 40 } in
  checkb "more sharing -> faster silk" true (S.silk_minutes more < S.silk_minutes p)

let () =
  Alcotest.run "silk"
    [ ("silk",
       [ Alcotest.test_case "stream throughput" `Quick test_stream_throughput;
         Alcotest.test_case "scp ~68h" `Quick test_scp_matches_paper;
         Alcotest.test_case "silk ~30min" `Quick test_silk_matches_paper;
         Alcotest.test_case "speedup" `Quick test_speedup;
         Alcotest.test_case "window sensitivity" `Quick test_window_sensitivity;
         Alcotest.test_case "replication helps" `Quick test_more_replication_faster ]) ]
