(* chopchop — experiment CLI.

   `chopchop list` shows every experiment id; `chopchop run fig7 --scale
   quick` regenerates one figure; `chopchop all --scale full` regenerates
   the entire evaluation (EXPERIMENTS.md records a captured run);
   `chopchop trace -o t.json` runs a traced deployment and dumps a
   Chrome-loadable trace plus the per-phase latency breakdown. *)

open Cmdliner
module F = Repro_experiments.Figures
module R = Repro_experiments.Chopchop_run
module LB = Repro_experiments.Latency_breakdown
module CP = Repro_experiments.Causal_path
module M = Repro_metrics.Metrics

(* Satellite: truncated traces must not silently skew what we export. *)
let warn_drops sink =
  let d = Repro_trace.Trace.Sink.dropped sink in
  if d > 0 then
    Format.eprintf
      "warning: trace sink dropped %d events (ring full) — histograms and \
       causal paths may be incomplete@."
      d

let experiments : (string * string * (Format.formatter -> F.scale -> unit)) list =
  [ ("fig1", "context: Internet-scale service rates", F.fig1);
    ("fig3", "batch layout arithmetic (Figs. 2-3)", F.fig3);
    ("micro", "§3.2 distillation microbenchmark", F.micro);
    ("silk", "§6.2 silk vs scp deployment", F.silk_table);
    ("fig7", "throughput-latency, all systems", F.fig7);
    ("fig8a", "distillation benefit", F.fig8a);
    ("fig8b", "message sizes 8-512 B", F.fig8b);
    ("fig9", "line rate (input/network/output)", F.fig9);
    ("fig10a", "number of servers", F.fig10a);
    ("fig10b", "matched total resources", F.fig10b);
    ("fig11a", "server crash failures", F.fig11a);
    ("fig11b", "application use cases", F.fig11b);
    ("ablation-timeout", "reduce-timeout sweep", F.ablation_timeout);
    ("ablation-margin", "witness-margin sweep", F.ablation_margin);
    ("ablation-loss", "client/broker packet-loss sweep", F.ablation_loss);
    ("engine-speed", "sim hot loop: calendar queue + event pool vs heap",
     Repro_experiments.Engine_speed.print);
    ("broker-cores", "broker worker lanes until the NIC binds",
     Repro_experiments.Broker_cores.print);
    ("broker-scaleout", "fleet size until the network is the limit",
     Repro_experiments.Broker_scaleout.print);
    ("reconfig-load", "ordered join + leave under sustained load",
     Repro_experiments.Reconfig_load.print);
    ("future", "§8 extensions: sharding + pk-aggregation offload",
     fun fmt scale -> Repro_experiments.Future.print fmt scale) ]

let scale_arg =
  let parse = function
    | "quick" -> Ok F.Quick
    | "full" -> Ok F.Full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|full)" s))
  in
  let print fmt s =
    Format.pp_print_string fmt (match s with F.Quick -> "quick" | F.Full -> "full")
  in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg F.Quick
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: $(b,quick) (16 servers, short windows) or \
              $(b,full) (the paper's 64-server setup).")

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see $(b,chopchop list)).")
  in
  let run id scale =
    match List.find_opt (fun (name, _, _) -> name = id) experiments with
    | Some (_, _, f) ->
      f Format.std_formatter scale;
      Ok ()
    | None ->
      Error
        (Printf.sprintf "unknown experiment %S; available: %s" id
           (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))
  in
  let term =
    Term.(
      const (fun id scale ->
          match run id scale with
          | Ok () -> `Ok ()
          | Error e -> `Error (false, e))
      $ id_arg $ scale_term)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment") (Term.ret term)

let all_cmd =
  let term = Term.(const (fun scale -> F.run_all Format.std_formatter scale) $ scale_term) in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure") term

let trace_params = function
  | F.Quick ->
    { R.default with
      n_servers = 4; underlay = Repro_chopchop.Deployment.Pbft;
      rate = 100_000.; batch_count = 4096; n_load_brokers = 1;
      measure_clients = 4; duration = 10.; warmup = 4.; cooldown = 2.;
      dense_clients = 1_000_000 }
  | F.Full ->
    { R.default with
      n_servers = 16; rate = 1_000_000.; batch_count = 16_384;
      duration = 12.; warmup = 4.; cooldown = 3.;
      dense_clients = 10_000_000 }

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "chopchop-trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace_event JSON here (load it in \
                chrome://tracing or ui.perfetto.dev).")
  in
  let follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"ID"
          ~doc:"Follow one message: print its causal hop tree \
                (client → broker reduction → witness → order → deliver) \
                with per-hop latencies.  $(docv) is a correlation key \
                from the candidate list, or $(b,auto) for the first \
                fully-reconstructable one.")
  in
  let run scale out follow =
    let result, breakdown, sink = LB.capture ~params:(trace_params scale) () in
    warn_drops sink;
    let events = Repro_trace.Trace.Sink.events sink in
    match follow with
    | Some spec ->
      let path =
        if spec = "auto" then CP.first events
        else
          match int_of_string_opt spec with
          | Some key -> CP.follow events ~key
          | None -> None
      in
      (match path with
       | Some p ->
         Format.printf "%a" CP.pp p;
         `Ok ()
       | None ->
         `Error
           ( false,
             Printf.sprintf
               "cannot follow %S: not a delivered message key (try \
                `chopchop trace` to list candidates, or --follow auto)"
               spec ))
    | None ->
      Format.printf "%a@.@." R.pp_result result;
      Format.printf "%a@." LB.pp breakdown;
      (match Repro_trace.Chrome.to_file sink out with
       | () ->
         Format.printf "trace: %d events (%d dropped) -> %s@."
           (Repro_trace.Trace.Sink.length sink)
           (Repro_trace.Trace.Sink.dropped sink)
           out;
         let cands = CP.candidates events in
         let show = List.filteri (fun i _ -> i < 8) cands in
         if show <> [] then
           Format.printf "follow a message with --follow <id>: %s%s@."
             (String.concat ", " (List.map (Printf.sprintf "%#x") show))
             (if List.length cands > List.length show then ", ..." else "");
         `Ok ()
       | exception Sys_error e -> `Error (false, e))
  in
  let term = Term.(ret (const run $ scale_term $ out_arg $ follow_arg)) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a traced deployment: Chrome trace + latency breakdown + \
             causal message paths")
    term

let metrics_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the snapshot and all time series as JSONL here.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the aligned time series as CSV here.")
  in
  let period_arg =
    Arg.(
      value
      & opt float 0.5
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Sampling period (sim time).")
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let run scale out csv period =
    let m = M.create ~period () in
    let sink = Repro_trace.Trace.Sink.memory () in
    let params = { (trace_params scale) with R.trace = sink; metrics = Some m } in
    let result = R.run params in
    warn_drops sink;
    Format.printf "%a@.@." R.pp_result result;
    Format.printf "metrics (%d samples @@ %gs)@." (M.ticks m) period;
    Format.printf "%a" M.pp_table m;
    (try
       Option.iter (fun path ->
           write_file path (M.to_jsonl m);
           Format.printf "metrics jsonl -> %s@." path)
         out;
       Option.iter (fun path ->
           write_file path (M.series_csv m);
           Format.printf "series csv -> %s@." path)
         csv;
       `Ok ()
     with Sys_error e -> `Error (false, e))
  in
  let term = Term.(ret (const run $ scale_term $ out_arg $ csv_arg $ period_arg)) in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a metrics-instrumented deployment: end-of-run table, \
             JSONL/CSV export")
    term

let chaos_cmd =
  let module C = Repro_chaos.Chaos in
  let scenario_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Scenario name, or $(b,all) (see $(b,--list)).")
  in
  let chaos_scale_arg =
    let parse s =
      match C.scale_of_string s with
      | Some sc -> Ok sc
      | None -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|full)" s))
    in
    let print fmt s = Format.pp_print_string fmt (C.scale_to_string s) in
    Arg.(
      value
      & opt (conv (parse, print)) C.Quick
      & info [ "s"; "scale" ] ~docv:"SCALE"
          ~doc:"Scenario scale: $(b,quick) (4 servers) or $(b,full) (7).")
  in
  let seed_arg =
    Arg.(
      value
      & opt int64 42L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Simulation seed; identical seeds give bit-identical \
                verdicts and traces.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenario names and exit.")
  in
  let run scenario scale seed list =
    if list then begin
      List.iter
        (fun s -> Printf.printf "  %-20s %s\n" s.C.sc_name s.C.sc_summary)
        C.scenarios;
      `Ok ()
    end
    else
      let verdicts =
        if scenario = "all" then Some (C.run_all ~seed ~scale)
        else
          match C.find scenario with
          | Some s -> Some [ s.C.sc_run ~seed ~scale () ]
          | None -> None
      in
      match verdicts with
      | None ->
        `Error
          ( false,
            Printf.sprintf "unknown scenario %S; available: %s, all" scenario
              (String.concat ", "
                 (List.map (fun s -> s.C.sc_name) C.scenarios)) )
      | Some vs ->
        List.iter (fun v -> Format.printf "%a@." C.pp_verdict v) vs;
        let failed = List.filter (fun v -> not v.C.v_pass) vs in
        if failed = [] then begin
          Format.printf "chaos: %d/%d scenarios passed@." (List.length vs)
            (List.length vs);
          `Ok ()
        end
        else
          `Error
            ( false,
              Printf.sprintf "chaos: %d scenario(s) FAILED: %s"
                (List.length failed)
                (String.concat ", "
                   (List.map (fun v -> v.C.v_name) failed)) )
  in
  let term =
    Term.(ret (const run $ scenario_arg $ chaos_scale_arg $ seed_arg $ list_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run fault-injection scenarios with invariant checking")
    term

let store_cmd =
  let module D = Repro_chopchop.Deployment in
  let module Server = Repro_chopchop.Server in
  let module Client = Repro_chopchop.Client in
  let module Engine = Repro_sim.Engine in
  let module Payments = Repro_apps.Payments in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  let servers_arg =
    Arg.(
      value & opt int 4
      & info [ "servers" ] ~docv:"N" ~doc:"Number of servers.")
  in
  let ckpt_arg =
    Arg.(
      value & opt int 4
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Take a checkpoint every $(docv) delivered batches.")
  in
  let crash_arg =
    Arg.(
      value & opt float 15.
      & info [ "crash" ] ~docv:"T"
          ~doc:"Crash the last server at $(docv) simulated seconds.")
  in
  let restart_arg =
    Arg.(
      value & opt float 35.
      & info [ "restart" ] ~docv:"T"
          ~doc:"Cold-restart it from disk at $(docv) simulated seconds.")
  in
  let run seed n_servers checkpoint_every t_crash t_restart =
    let duration = Float.max 90. (t_restart +. 30.) in
    let cfg =
      { D.default_config with
        n_servers; n_brokers = 2; underlay = D.Sequencer; seed;
        store_enabled = true; checkpoint_every }
    in
    let d = D.create cfg in
    let apps = Array.init n_servers (fun _ -> Payments.create ()) in
    D.server_deliver_hook d (fun server dl ->
        ignore (Payments.apply_delivery apps.(server) dl));
    Array.iteri
      (fun i app ->
        D.set_server_app d i
          ~snapshot:(fun () -> Payments.snapshot app)
          ~restore:(fun s -> Payments.restore app s))
      apps;
    let clients = Array.init 8 (fun _ -> D.add_client d ()) in
    Array.iter Client.signup clients;
    let engine = D.engine d in
    Array.iteri
      (fun i c ->
        for j = 0 to 2 do
          Engine.schedule_at engine
            ~time:(20. *. float_of_int j)
            (fun () ->
              Client.broadcast c
                (Payments.encode_op ~recipient:(i + j) ~amount:1))
        done)
      clients;
    let victim = n_servers - 1 in
    Engine.schedule_at engine ~time:t_crash (fun () -> D.crash_server d victim);
    Engine.schedule_at engine ~time:t_restart (fun () -> D.restart_server d victim);
    D.run d ~until:duration;
    Format.printf
      "durable store (seed %Ld, %d servers, checkpoint every %d batches)@."
      seed n_servers checkpoint_every;
    Format.printf
      "crash server %d at %gs, cold restart from disk at %gs, run %gs@.@."
      victim t_crash t_restart duration;
    Format.printf "  server  delivered  wal-bytes  wal-recs  ckpts  snapshot-B  disk-written@.";
    Array.iteri
      (fun i sv ->
        Format.printf "  %6d  %9d  %9d  %8d  %5d  %10d  %12d@." i
          (Server.delivered_messages sv)
          (D.server_wal_bytes d i) (D.server_wal_records d i)
          (D.server_checkpoints d i) (D.server_snapshot_bytes d i)
          (D.server_disk_bytes_written d i))
      (D.servers d);
    let sv = (D.servers d).(victim) in
    Format.printf
      "@.recovery: %d restart(s), %d sync round(s), %d record(s) transferred, \
       catching up: %b@."
      (Server.restarts sv) (Server.sync_rounds sv) (Server.catch_up_records sv)
      (Server.catching_up sv);
    Format.printf "collection: %d batch(es) collected on server 0@."
      (Server.collected_batches (D.servers d).(0));
    let reference = Payments.digest apps.(0) in
    let agree =
      Array.for_all (fun app -> Payments.digest app = reference) apps
    in
    Format.printf "app digests: %s@."
      (if agree then "MATCH (all servers identical)" else "MISMATCH");
    if agree && not (Server.catching_up sv) then `Ok ()
    else `Error (false, "store demo failed: digests diverge or victim not live")
  in
  let term =
    Term.(
      ret (const run $ seed_arg $ servers_arg $ ckpt_arg $ crash_arg $ restart_arg))
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:"Durable-store demo: crash a server, cold-restart it from its \
             WAL/checkpoint, state-transfer the rest, report disk + recovery \
             stats")
    term

let sweep_cmd =
  let module S = Repro_sweep.Sweep in
  let manifest_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "manifest" ] ~docv:"FILE"
          ~doc:"Sweep manifest JSON (see EXPERIMENTS.md for the format; \
                $(b,examples/sweep-quick.json) is a starting point).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "sweep-out"
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Output directory: per-cell JSON goes under \
                $(docv)/cells-<manifest-hash>/, the aggregate under \
                $(docv)/results-<manifest-hash>.json.")
  in
  let workers_arg =
    Arg.(
      value
      & opt int 4
      & info [ "j"; "workers" ] ~docv:"N"
          ~doc:"Parallel forked workers (the sim is deterministic per \
                cell, so cells are embarrassingly parallel).")
  in
  let serial_arg =
    Arg.(
      value & flag
      & info [ "serial" ]
          ~doc:"Run cells one by one in-process (no fork, no timeout \
                enforcement).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 900.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-cell wall-clock timeout (parallel mode only).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"Expand the manifest, print cells, and exit.")
  in
  let figures_arg =
    Arg.(
      value & flag
      & info [ "figures" ]
          ~doc:"Skip running: aggregate whatever cell outputs exist and \
                render the figure tables.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Attach the engine self-profiler to run cells and embed its \
                deterministic counters as a $(b,profile) field in each cell \
                output (wall-time stays in the timings sidecar).")
  in
  let outcome_word = function
    | S.Pool.Completed -> "ok"
    | S.Pool.Skipped -> "skip"
    | S.Pool.Failed _ -> "FAIL"
    | S.Pool.Timed_out -> "TIMEOUT"
  in
  let run manifest out workers serial timeout list figures profile =
    match S.Manifest.load ~path:manifest with
    | Error e -> `Error (false, e)
    | Ok m ->
      let total = List.length m.S.Manifest.cells in
      Format.printf "sweep %s: %d cells, manifest hash %s@."
        m.S.Manifest.name total m.S.Manifest.hash;
      if list then begin
        List.iter
          (fun (c : S.Manifest.cell) ->
            Printf.printf "  %s  %s\n" c.S.Manifest.hash c.S.Manifest.label)
          m.S.Manifest.cells;
        `Ok ()
      end
      else if figures then begin
        let path = S.Aggregate.write ~out_dir:out m in
        let doc = Repro_metrics.Json.of_file ~path in
        S.Figures.render Format.std_formatter doc;
        Format.printf "results -> %s@." path;
        `Ok ()
      end
      else begin
        let reports =
          S.Pool.run ~workers ~timeout ~serial ~profile ~out_dir:out m
            ~on_report:(fun ~done_count ~total r ->
              Printf.printf "[%d/%d] %-7s %s  %s (%.1fs)\n%!" done_count total
                (outcome_word r.S.Pool.r_outcome)
                r.S.Pool.r_cell.S.Manifest.hash
                r.S.Pool.r_cell.S.Manifest.label r.S.Pool.r_wall;
              match r.S.Pool.r_outcome with
              | S.Pool.Failed msg -> Printf.printf "        %s\n%!" msg
              | _ -> ())
        in
        let path = S.Aggregate.write ~out_dir:out m in
        let doc = Repro_metrics.Json.of_file ~path in
        S.Figures.render Format.std_formatter doc;
        let count p = List.length (List.filter p reports) in
        let completed =
          count (fun r -> r.S.Pool.r_outcome = S.Pool.Completed)
        in
        let skipped = count (fun r -> r.S.Pool.r_outcome = S.Pool.Skipped) in
        let bad =
          List.filter
            (fun r ->
              match r.S.Pool.r_outcome with
              | S.Pool.Failed _ | S.Pool.Timed_out -> true
              | _ -> false)
            reports
        in
        Format.printf "sweep: %d completed, %d resumed (skipped), %d failed@."
          completed skipped (List.length bad);
        Format.printf "results -> %s@." path;
        if bad = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d cell(s) failed: %s" (List.length bad)
                (String.concat ", "
                   (List.map
                      (fun r -> r.S.Pool.r_cell.S.Manifest.hash)
                      bad)) )
      end
  in
  let term =
    Term.(
      ret
        (const run $ manifest_arg $ out_arg $ workers_arg $ serial_arg
        $ timeout_arg $ list_arg $ figures_arg $ profile_arg))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a manifest-driven parameter sweep across parallel workers \
             and regenerate the figure grid")
    term

let profile_cmd =
  let module Cell = Repro_experiments.Cell in
  let module Prof = Repro_prof.Prof in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Simulation seed; the deterministic half of the report is \
                bit-identical for identical seeds.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the profile report as JSON here.")
  in
  let no_wall_arg =
    Arg.(
      value & flag
      & info [ "no-wall" ]
          ~doc:"Omit the machine-dependent wall-time half from the JSON \
                report — what remains is byte-identical across same-seed \
                runs (CI compares two runs with $(b,cmp)).")
  in
  let cell_of_scale = function
    | F.Quick -> Cell.default
    | F.Full ->
      { Cell.default with
        Cell.servers = 16; rate = 1_000_000.; batch = 16_384; duration = 12.;
        warmup = 4.; cooldown = 3.; dense_clients = 10_000_000 }
  in
  let run scale seed out no_wall =
    let c = { (cell_of_scale scale) with Cell.seed } in
    let o = Cell.run ~profile:true c in
    match o.Cell.prof with
    | None -> `Error (false, "profiler produced no report")
    | Some r ->
      Format.printf "%a@." Prof.pp_markdown r;
      Format.printf
        "run: %d engine events over %.0f simulated seconds \
         (throughput %.0f op/s)@."
        o.Cell.sim_events o.Cell.sim_seconds
        (Option.value ~default:0. (List.assoc_opt "throughput_ops" o.Cell.metrics));
      (try
         Option.iter
           (fun path ->
             Repro_metrics.Json.to_file ~path
               (Prof.to_json ~wall:(not no_wall) r);
             Format.printf "profile json -> %s@." path)
           out;
         `Ok ()
       with Sys_error e -> `Error (false, e))
  in
  let term =
    Term.(ret (const run $ scale_term $ seed_arg $ out_arg $ no_wall_arg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Self-profile the simulator: per-component handler wall-time, \
             GC pressure, queue depth/dwell — without perturbing the run")
    term

let doctor_cmd =
  let module C = Repro_chaos.Chaos in
  let module Doctor = Repro_prof.Doctor in
  let scenario_arg =
    Arg.(
      value
      & opt string "stall-partition"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Chaos scenario to diagnose (any $(b,chopchop chaos) \
                scenario, plus diagnostic-only ones like \
                $(b,stall-partition); see $(b,--list)).")
  in
  let chaos_scale_arg =
    let parse s =
      match C.scale_of_string s with
      | Some sc -> Ok sc
      | None -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|full)" s))
    in
    let print fmt s = Format.pp_print_string fmt (C.scale_to_string s) in
    Arg.(
      value
      & opt (conv (parse, print)) C.Quick
      & info [ "s"; "scale" ] ~docv:"SCALE"
          ~doc:"Scenario scale: $(b,quick) (4 servers) or $(b,full) (7).")
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")
  in
  let kill_at_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "kill-at" ] ~docv:"T"
          ~doc:"Stop the simulation at $(docv) simulated seconds — a \
                post-mortem on a run killed before delivery completes.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the diagnosis as JSON here.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List diagnosable scenario names (chaos + diagnostic-only) \
                and exit.")
  in
  let run scenario scale seed kill_at out list =
    if list then begin
      List.iter
        (fun s -> Printf.printf "  %-20s %s\n" s.C.sc_name s.C.sc_summary)
        (C.scenarios @ C.diagnostics);
      `Ok ()
    end
    else
      match C.find_any scenario with
      | None ->
        `Error
          ( false,
            Printf.sprintf "unknown scenario %S; available: %s" scenario
              (String.concat ", "
                 (List.map
                    (fun s -> s.C.sc_name)
                    (C.scenarios @ C.diagnostics))) )
      | Some sc ->
        let v = sc.C.sc_run ?until:kill_at ~seed ~scale () in
        Format.printf "%a@." C.pp_verdict v;
        (match v.C.v_diagnosis with
         | None ->
           if v.C.v_pass then begin
             Format.printf
               "doctor: run healthy — %d/%d delivered, nothing to diagnose@."
               v.C.v_completed v.C.v_expected;
             `Ok ()
           end
           else `Error (false, "doctor: run failed but produced no diagnosis")
         | Some d ->
           (try
              Option.iter
                (fun path ->
                  Repro_metrics.Json.to_file ~path (Doctor.to_json d);
                  Format.printf "diagnosis json -> %s@." path)
                out;
              `Ok ()
            with Sys_error e -> `Error (false, e)))
  in
  let term =
    Term.(
      ret
        (const run $ scenario_arg $ chaos_scale_arg $ seed_arg $ kill_at_arg
        $ out_arg $ list_arg))
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Post-mortem a stalled or killed run: the delivery watchdog's \
             structured diagnosis (partition, quorum, deepest backlog)")
    term

let list_cmd =
  let term =
    Term.(
      const (fun () ->
          List.iter
            (fun (name, doc, _) -> Printf.printf "  %-18s %s\n" name doc)
            experiments)
      $ const ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") term

let () =
  let doc = "Chop Chop (OSDI '24) reproduction — experiment driver" in
  let info = Cmd.info "chopchop" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; trace_cmd; metrics_cmd; chaos_cmd;
            store_cmd; sweep_cmd; profile_cmd; doctor_cmd ]))
