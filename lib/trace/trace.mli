(** Deterministic observability: spans, counters and histograms keyed to
    {e simulated} time.

    The simulation engine replaces wall clocks with a virtual clock, so a
    trace taken with the same seed is bit-identical across runs — every
    latency claim in the experiment harness can be decomposed into
    per-phase events and re-derived exactly.  The subsystem is
    dependency-free and allocation-conscious: with the default null sink,
    instrumentation sites reduce to one load and one branch
    ({!enabled}), and counters are plain integer cells.

    Producers emit {!event}s into a per-run {!Sink.t} (a no-op, a growable
    buffer, or a fixed ring); consumers pair begin/end events into
    {!Span.t}s, fold durations into {!Hist} histograms, or export the raw
    stream as Chrome [trace_event] JSON via {!Chrome}. *)

type attr =
  | A_int of int
  | A_float of float
  | A_str of string
  | A_bool of bool

type phase =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant *)
  | C of float  (** counter sample *)

type event = {
  ev_time : float;  (** simulated seconds *)
  ev_actor : int;  (** emitting node / component instance *)
  ev_cat : string;  (** subsystem category, e.g. ["broker"] *)
  ev_name : string;  (** event name within the category *)
  ev_id : int;  (** correlation id (batch root hash, slot, …) *)
  ev_phase : phase;
  ev_attrs : (string * attr) list;
}

module Counter : sig
  type t

  val make : unit -> t
  (** A free-standing counter; {!Sink.counter} registers named ones. *)

  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
end

module Hist : sig
  (** Fixed 64-bucket log₂ histogram: adding a sample touches one array
      cell and four scalar fields — no allocation, any range.  Bucket [i]
      holds values in [[2^(i-31), 2^(i-30))] seconds, so sub-nanosecond
      to ~100-year durations are representable; exact count/sum/min/max
      ride along for error-free means. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** Exact (tracked outside the buckets); 0 when empty. *)

  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.99]: the midpoint of the bucket holding that rank,
      clamped to the observed range (bucket resolution: a factor of 2). *)

  val bucket_of : float -> int
  (** Bucket index for a value; non-positive values map to bucket 0. *)

  val bucket_lo : int -> float
  val bucket_hi : int -> float
  (** Closed-open bucket bounds: value [v] is in bucket [i] iff
      [bucket_lo i <= v < bucket_hi i] (within the clamped range). *)

  val buckets : t -> int array
end

module Sink : sig
  type t

  val null : unit -> t
  (** Disabled sink: {!emit} is a no-op, {!enabled} is [false].  The
      default everywhere — tracing costs one branch per site. *)

  val memory : unit -> t
  (** Unbounded growable buffer (doubling array, no per-event boxing
      beyond the event itself). *)

  val ring : capacity:int -> t
  (** Fixed-capacity ring: once full, each emit overwrites the oldest
      event and bumps {!dropped}. *)

  val enabled : t -> bool
  val emit : t -> event -> unit
  val events : t -> event list
  (** Stored events, oldest first. *)

  val length : t -> int
  val dropped : t -> int
  val clear : t -> unit

  val counter : t -> cat:string -> name:string -> Counter.t
  (** The named counter, created on first use.  Counters accumulate even
      on a null sink (an integer add); they are read via {!counters}. *)

  val counters : t -> (string * string * int) list
  (** All registered counters as [(cat, name, value)], sorted. *)
end

val enabled : Sink.t -> bool
(** Guard for instrumentation sites: skip attribute construction when the
    sink is disabled. *)

val span_begin :
  ?attrs:(string * attr) list ->
  Sink.t -> now:float -> actor:int -> cat:string -> name:string -> id:int -> unit

val span_end :
  ?attrs:(string * attr) list ->
  Sink.t -> now:float -> actor:int -> cat:string -> name:string -> id:int -> unit

val instant :
  ?attrs:(string * attr) list ->
  Sink.t -> now:float -> actor:int -> cat:string -> name:string -> id:int -> unit

val count : Sink.t -> now:float -> actor:int -> cat:string -> name:string -> float -> unit

val key : string -> int
(** Stable non-negative correlation id for a string key (batch roots). *)

module Ctx : sig
  (** Dapper-style causal trace context carried inside wire messages: the
      correlation id of the root operation (for a broadcast, the
      client-message key) plus a hop counter bumped at each forwarding
      component.  Compact by construction — {!wire_bytes} charges 5 bytes
      (4-byte root id + 1-byte hop) to any message that carries one. *)

  type t = { root : int; hop : int }

  val make : root:int -> t
  (** A fresh context at hop 0, rooted at the given correlation id. *)

  val child : t -> t
  (** The same root, one hop further down the path. *)

  val root : t -> int
  val hop : t -> int

  val wire_bytes : int
end

val attr_int : (string * attr) list -> string -> int option
val attr_float : (string * attr) list -> string -> float option

module Span : sig
  type t = {
    sp_cat : string;
    sp_name : string;
    sp_actor : int;
    sp_id : int;
    sp_begin : float;
    sp_end : float;
    sp_attrs : (string * attr) list;
  }

  val duration : t -> float

  val pair : event list -> t list
  (** Match [B]/[E] events by [(cat, name, actor, id)] (LIFO for nested
      re-entries of the same key), in event order.  Unmatched begins and
      ends are dropped; begin attributes are concatenated with end
      attributes. *)
end
