type attr =
  | A_int of int
  | A_float of float
  | A_str of string
  | A_bool of bool

type phase = B | E | I | C of float

type event = {
  ev_time : float;
  ev_actor : int;
  ev_cat : string;
  ev_name : string;
  ev_id : int;
  ev_phase : phase;
  ev_attrs : (string * attr) list;
}

let dummy_event =
  { ev_time = 0.; ev_actor = 0; ev_cat = ""; ev_name = ""; ev_id = 0;
    ev_phase = I; ev_attrs = [] }

module Counter = struct
  type t = { mutable value : int }

  let make () = { value = 0 }
  let add t n = t.value <- t.value + n
  let incr t = t.value <- t.value + 1
  let value t = t.value
end

module Hist = struct
  let n_buckets = 64
  let bias = 31

  type t = {
    counts : int array;
    mutable n : int;
    mutable total : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () =
    { counts = Array.make n_buckets 0; n = 0; total = 0.;
      lo = infinity; hi = neg_infinity }

  let bucket_of v =
    if not (v > 0.) then 0
    else begin
      (* v = m * 2^e with m in [0.5, 1), so v lies in [2^(e-1), 2^e). *)
      let _, e = Float.frexp v in
      let b = e - 1 + bias in
      if b < 0 then 0 else if b >= n_buckets then n_buckets - 1 else b
    end

  let bucket_lo i = Float.ldexp 1.0 (i - bias)
  let bucket_hi i = Float.ldexp 1.0 (i - bias + 1)

  let add t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
  let min t = if t.n = 0 then 0. else t.lo
  let max t = if t.n = 0 then 0. else t.hi
  let buckets t = Array.copy t.counts

  let percentile t q =
    if t.n = 0 then 0.
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
      let acc = ref 0 in
      let result = ref t.hi in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             (* Arithmetic midpoint of the bucket, clamped to the observed
                range so single-valued data reports exactly. *)
             let mid = Float.ldexp 1.5 (i - bias) in
             result := Float.min t.hi (Float.max t.lo mid);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
end

module Sink = struct
  type t = {
    on : bool;
    capacity : int; (* 0: growable, unbounded *)
    mutable buf : event array;
    mutable len : int;
    mutable head : int; (* ring: index of the oldest stored event *)
    mutable dropped : int;
    counters : (string * string, Counter.t) Hashtbl.t;
  }

  let null () =
    { on = false; capacity = 0; buf = [||]; len = 0; head = 0; dropped = 0;
      counters = Hashtbl.create 8 }

  let memory () =
    { on = true; capacity = 0; buf = Array.make 1024 dummy_event;
      len = 0; head = 0; dropped = 0; counters = Hashtbl.create 16 }

  let ring ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Sink.ring: capacity must be positive";
    { on = true; capacity; buf = Array.make capacity dummy_event;
      len = 0; head = 0; dropped = 0; counters = Hashtbl.create 16 }

  let enabled t = t.on
  let length t = t.len
  let dropped t = t.dropped

  let emit t e =
    if t.on then
      if t.capacity = 0 then begin
        if t.len = Array.length t.buf then begin
          let bigger = Array.make (Stdlib.max 1024 (2 * t.len)) dummy_event in
          Array.blit t.buf 0 bigger 0 t.len;
          t.buf <- bigger
        end;
        t.buf.(t.len) <- e;
        t.len <- t.len + 1
      end
      else if t.len < t.capacity then begin
        t.buf.((t.head + t.len) mod t.capacity) <- e;
        t.len <- t.len + 1
      end
      else begin
        t.buf.(t.head) <- e;
        t.head <- (t.head + 1) mod t.capacity;
        t.dropped <- t.dropped + 1
      end

  let events t =
    let cap = Stdlib.max 1 (Array.length t.buf) in
    List.init t.len (fun i -> t.buf.((t.head + i) mod cap))

  let clear t =
    t.len <- 0;
    t.head <- 0;
    t.dropped <- 0

  let counter t ~cat ~name =
    match Hashtbl.find_opt t.counters (cat, name) with
    | Some c -> c
    | None ->
      let c = Counter.make () in
      Hashtbl.add t.counters (cat, name) c;
      c

  let counters t =
    Hashtbl.fold (fun (cat, name) c acc -> (cat, name, Counter.value c) :: acc)
      t.counters []
    |> List.sort compare
end

let enabled = Sink.enabled

let span_begin ?(attrs = []) sink ~now ~actor ~cat ~name ~id =
  if Sink.enabled sink then
    Sink.emit sink
      { ev_time = now; ev_actor = actor; ev_cat = cat; ev_name = name;
        ev_id = id; ev_phase = B; ev_attrs = attrs }

let span_end ?(attrs = []) sink ~now ~actor ~cat ~name ~id =
  if Sink.enabled sink then
    Sink.emit sink
      { ev_time = now; ev_actor = actor; ev_cat = cat; ev_name = name;
        ev_id = id; ev_phase = E; ev_attrs = attrs }

let instant ?(attrs = []) sink ~now ~actor ~cat ~name ~id =
  if Sink.enabled sink then
    Sink.emit sink
      { ev_time = now; ev_actor = actor; ev_cat = cat; ev_name = name;
        ev_id = id; ev_phase = I; ev_attrs = attrs }

let count sink ~now ~actor ~cat ~name v =
  if Sink.enabled sink then
    Sink.emit sink
      { ev_time = now; ev_actor = actor; ev_cat = cat; ev_name = name;
        ev_id = 0; ev_phase = C v; ev_attrs = [] }

let key s = Hashtbl.hash s land 0x3FFFFFFF

module Ctx = struct
  type t = { root : int; hop : int }

  let make ~root = { root; hop = 0 }
  let child t = { t with hop = t.hop + 1 }
  let root t = t.root
  let hop t = t.hop
  let wire_bytes = 5
end

let attr_int attrs name =
  match List.assoc_opt name attrs with
  | Some (A_int i) -> Some i
  | Some (A_float f) -> Some (int_of_float f)
  | _ -> None

let attr_float attrs name =
  match List.assoc_opt name attrs with
  | Some (A_float f) -> Some f
  | Some (A_int i) -> Some (float_of_int i)
  | _ -> None

module Span = struct
  type t = {
    sp_cat : string;
    sp_name : string;
    sp_actor : int;
    sp_id : int;
    sp_begin : float;
    sp_end : float;
    sp_attrs : (string * attr) list;
  }

  let duration s = s.sp_end -. s.sp_begin

  let pair events =
    let open_spans : (string * string * int * int, event list) Hashtbl.t =
      Hashtbl.create 64
    in
    let out = ref [] in
    List.iter
      (fun e ->
        let k = (e.ev_cat, e.ev_name, e.ev_actor, e.ev_id) in
        match e.ev_phase with
        | B ->
          let stack = Option.value (Hashtbl.find_opt open_spans k) ~default:[] in
          Hashtbl.replace open_spans k (e :: stack)
        | E ->
          (match Hashtbl.find_opt open_spans k with
           | Some (b :: rest) ->
             if rest = [] then Hashtbl.remove open_spans k
             else Hashtbl.replace open_spans k rest;
             out :=
               { sp_cat = e.ev_cat; sp_name = e.ev_name; sp_actor = e.ev_actor;
                 sp_id = e.ev_id; sp_begin = b.ev_time; sp_end = e.ev_time;
                 sp_attrs = b.ev_attrs @ e.ev_attrs }
               :: !out
           | Some [] | None -> () (* unmatched end: dropped *))
        | I | C _ -> ())
      events;
    List.rev !out
end
