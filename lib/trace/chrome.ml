(* Chrome trace_event exporter (the JSON-array format understood by
   chrome://tracing and https://ui.perfetto.dev).  Paired spans become
   complete ("X") events — B/E pairs would require proper nesting per
   (pid, tid), which interleaved batch lifecycles on one broker do not
   have — instants stay instants, counter samples become "C" events, and
   the final value of every registered counter is appended as one last
   "C" sample. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then
    let s = Printf.sprintf "%.17g" f in
    (* "%.17g" never yields a bare leading dot; inf/nan are guarded. *)
    s
  else "0"

let micros t = json_float (t *. 1e6)

let attr_value = function
  | Trace.A_int i -> string_of_int i
  | Trace.A_float f -> json_float f
  | Trace.A_str s -> Printf.sprintf "\"%s\"" (escape s)
  | Trace.A_bool b -> if b then "true" else "false"

let args_json ~id attrs =
  let fields =
    Printf.sprintf "\"id\":%d" id
    :: List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (attr_value v))
         attrs
  in
  "{" ^ String.concat "," fields ^ "}"

let span_json (s : Trace.Span.t) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":%s}"
    (escape s.sp_name) (escape s.sp_cat) (micros s.sp_begin)
    (micros (Trace.Span.duration s))
    s.sp_actor
    (args_json ~id:s.sp_id s.sp_attrs)

let event_json (e : Trace.event) =
  match e.ev_phase with
  | Trace.I ->
    Some
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":%s}"
         (escape e.ev_name) (escape e.ev_cat) (micros e.ev_time) e.ev_actor
         (args_json ~id:e.ev_id e.ev_attrs))
  | Trace.C v ->
    Some
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"%s\":%s}}"
         (escape e.ev_name) (escape e.ev_cat) (micros e.ev_time) e.ev_actor
         (escape e.ev_name) (json_float v))
  | Trace.B | Trace.E -> None (* exported as paired "X" events *)

let raw_json (e : Trace.event) =
  let ph =
    match e.ev_phase with
    | Trace.B -> "B"
    | Trace.E -> "E"
    | Trace.I -> "i"
    | Trace.C _ -> "C"
  in
  let extra =
    match e.ev_phase with
    | Trace.C v -> Printf.sprintf ",\"value\":%s" (json_float v)
    | _ -> ""
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":1,\"tid\":%d%s,\"args\":%s}"
    (escape e.ev_name) (escape e.ev_cat) ph (micros e.ev_time) e.ev_actor extra
    (args_json ~id:e.ev_id e.ev_attrs)

let to_buffer buf sink =
  let events = Trace.Sink.events sink in
  let spans = Trace.Span.pair events in
  let last_time =
    List.fold_left (fun acc (e : Trace.event) -> Float.max acc e.ev_time) 0. events
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iter (fun s -> emit (span_json s)) spans;
  List.iter (fun e -> match event_json e with Some s -> emit s | None -> ()) events;
  List.iter
    (fun (cat, name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":0,\"args\":{\"%s\":%d}}"
           (escape name) (escape cat) (micros last_time) (escape name) v))
    (Trace.Sink.counters sink);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}"

let to_string sink =
  let buf = Buffer.create 65536 in
  to_buffer buf sink;
  Buffer.contents buf

let jsonl sink =
  let buf = Buffer.create 65536 in
  List.iter
    (fun e ->
      Buffer.add_string buf (raw_json e);
      Buffer.add_char buf '\n')
    (Trace.Sink.events sink);
  Buffer.contents buf

let to_file sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf sink;
      Buffer.output_buffer oc buf)
