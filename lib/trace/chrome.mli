(** Chrome [trace_event] / JSONL export of a trace sink.

    {!to_string} produces the JSON-object format loadable in
    chrome://tracing and Perfetto: paired spans as complete ["X"] events
    (duration bars per actor), instants as ["i"], counter samples and
    final counter values as ["C"]; timestamps are simulated microseconds.
    {!jsonl} dumps the raw event stream one JSON object per line for
    ad-hoc processing. *)

val to_string : Trace.Sink.t -> string
val to_buffer : Buffer.t -> Trace.Sink.t -> unit
val to_file : Trace.Sink.t -> string -> unit
val jsonl : Trace.Sink.t -> string
