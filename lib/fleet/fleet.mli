(** Broker-fleet partitioning policy: deterministic assignment of clients
    to home brokers with ordered failover, the substrate of multi-broker
    scale-out.

    Every decision is a pure function of (seed, client key, roster), so
    clients, servers and observers agree on the partitioning without
    coordination.  The deployment owns one instance; components query it. *)

type mode =
  | Hash  (** seeded hash of the client key, uniform across the fleet *)
  | Region_affinity
      (** nearest broker by {!Repro_sim.Region.latency}, hash-spread
          within the nearest equidistant group *)

type t

val create : ?mode:mode -> ?seed:int64 -> unit -> t
(** Empty fleet; brokers join through {!register} (default mode [Hash],
    seed 42). *)

val mode : t -> mode
val size : t -> int

val register : t -> region:Repro_sim.Region.t -> int
(** Add a broker to the roster; returns its fleet id (= deployment broker
    id when registered in installation order). *)

val alive : t -> int -> bool
val mark_down : t -> int -> unit
val mark_up : t -> int -> unit

val mix : t -> int -> int
(** The seeded SplitMix64 avalanche of a client key (non-negative).
    Exposed so tests can assert assignment = mix mod fleet size. *)

val assignment : t -> key:int -> ?region:Repro_sim.Region.t -> unit -> int list
(** Home broker first, then the ordered failover walk; a permutation of
    the whole roster.  [region] only matters in {!Region_affinity} mode. *)

val home : t -> key:int -> ?region:Repro_sim.Region.t -> unit -> int
(** Head of {!assignment}.  @raise Invalid_argument on an empty fleet. *)

val first_alive : t -> key:int -> ?region:Repro_sim.Region.t -> unit -> int
(** First alive broker of the failover list — where crash failover
    reroutes this key's traffic and shard.  Falls back to the home broker
    when every broker is down. *)

val note_client : t -> int -> unit
(** Record one client homed on broker [b] (partition-load accounting). *)

val move_client : t -> from_:int -> to_:int -> unit

val loads : t -> int array
(** Clients homed per broker. *)

val hottest : t -> (int * int) option
(** [(broker, clients)] of the most loaded partition (None when empty). *)
