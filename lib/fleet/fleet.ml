(* Broker-fleet partitioning: which broker serves which client.

   A deployment with N brokers splits its client population into N
   partitions.  The policy is a pure function of (seed, client key,
   broker roster), so every node of the simulation — clients picking a
   home broker, servers assigning shard ownership to a signed-up
   identity, the doctor naming the hottest partition — computes the
   same answer without any coordination messages.

   Two modes:

   - [Hash]: the home broker is a seeded integer mix of the client key
     modulo the fleet size; the failover list is the rotation starting
     at the home.  Uniform by construction, oblivious to geography.

   - [Region_affinity]: brokers are ranked by one-way latency from the
     client's region (reusing {!Repro_sim.Region.latency}); the home is
     drawn by hash among the nearest equidistant group so a popular
     region still spreads over its co-located brokers, and the failover
     list walks outward by latency.

   Liveness bookkeeping ([mark_down]/[mark_up]) mirrors what a real
   client observes through timeouts; [first_alive] is the rendezvous
   point of crash failover: the client's retry rotation and the
   server-side shard handoff both land on the same successor. *)

module Region = Repro_sim.Region

type mode = Hash | Region_affinity

type broker = {
  fb_region : Region.t;
  mutable fb_alive : bool;
  mutable fb_clients : int; (* clients currently homed on this broker *)
}

type t = {
  mode : mode;
  seed : int64;
  mutable brokers : broker array;
}

let create ?(mode = Hash) ?(seed = 42L) () = { mode; seed; brokers = [||] }

let mode t = t.mode
let size t = Array.length t.brokers

let register t ~region =
  let id = Array.length t.brokers in
  t.brokers <-
    Array.append t.brokers
      [| { fb_region = region; fb_alive = true; fb_clients = 0 } |];
  id

let alive t i = t.brokers.(i).fb_alive
let mark_down t i = t.brokers.(i).fb_alive <- false
let mark_up t i = t.brokers.(i).fb_alive <- true

(* SplitMix64 finalizer over (seed, key): the same avalanche every
   component of the simulation can recompute locally.  The result is
   truncated to a non-negative OCaml int. *)
let mix t key =
  let open Int64 in
  let z = add t.seed (mul (of_int (key + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* Drop the top two bits: OCaml's native int is 63-bit, so [to_int] of
     anything >= 2^62 would wrap negative. *)
  to_int (shift_right_logical z 2)

(* Home broker plus ordered failover list.  [region] matters only in
   [Region_affinity] mode; without it the policy degrades to [Hash]. *)
let assignment t ~key ?region () =
  let n = Array.length t.brokers in
  if n = 0 then []
  else
    match (t.mode, region) with
    | Hash, _ | Region_affinity, None ->
      let home = mix t key mod n in
      List.init n (fun i -> (home + i) mod n)
    | Region_affinity, Some r ->
      let ranked =
        List.sort
          (fun a b ->
            let la = Region.latency r t.brokers.(a).fb_region
            and lb = Region.latency r t.brokers.(b).fb_region in
            if Float.equal la lb then Int.compare a b else Float.compare la lb)
          (List.init n Fun.id)
      in
      (* Spread within the nearest equidistant group by hash, so one
         popular region does not funnel onto a single broker. *)
      let nearest = Region.latency r t.brokers.(List.hd ranked).fb_region in
      let group =
        List.length
          (List.filter
             (fun i -> Float.equal (Region.latency r t.brokers.(i).fb_region) nearest)
             ranked)
      in
      let pick = mix t key mod group in
      let arr = Array.of_list ranked in
      let homed = Array.make n 0 in
      (* Rotate the nearest group so the hashed pick leads; keep the
         latency-ordered tail as the failover walk. *)
      for i = 0 to n - 1 do
        homed.(i) <-
          (if i < group then arr.((pick + i) mod group) else arr.(i))
      done;
      Array.to_list homed

let home t ~key ?region () =
  match assignment t ~key ?region () with b :: _ -> b | [] -> invalid_arg "Fleet.home: empty fleet"

(* The broker a [key]-client should be talking to right now: the first
   alive entry of its failover list (its home when everything is up).
   Falls back to the home broker when the whole fleet is down. *)
let first_alive t ~key ?region () =
  let order = assignment t ~key ?region () in
  match List.find_opt (fun b -> t.brokers.(b).fb_alive) order with
  | Some b -> b
  | None -> home t ~key ?region ()

(* --- partition-load accounting (doctor / rebalance probes) ------------- *)

let note_client t b = t.brokers.(b).fb_clients <- t.brokers.(b).fb_clients + 1

let move_client t ~from_ ~to_ =
  t.brokers.(from_).fb_clients <- t.brokers.(from_).fb_clients - 1;
  t.brokers.(to_).fb_clients <- t.brokers.(to_).fb_clients + 1

let loads t = Array.map (fun b -> b.fb_clients) t.brokers

let hottest t =
  let best = ref (-1) and load = ref min_int in
  Array.iteri
    (fun i b -> if b.fb_clients > !load then begin best := i; load := b.fb_clients end)
    t.brokers;
  if !best < 0 then None else Some (!best, !load)
