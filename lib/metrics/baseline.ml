type direction =
  | Higher_better
  | Lower_better

type metric = {
  value : float;
  tolerance : float option;
  direction : direction;
}

type config = (string * metric) list

type doc = {
  version : int;
  readme : string list;
  configs : (string * config) list;
}

let direction_string = function
  | Higher_better -> "higher_better"
  | Lower_better -> "lower_better"

let direction_of_string = function
  | "higher_better" -> Higher_better
  | "lower_better" -> Lower_better
  | s -> failwith ("Baseline: unknown direction " ^ s)

let metric_json m =
  Json.Obj
    [ ("value", Json.Num m.value);
      ("tolerance", match m.tolerance with None -> Json.Null | Some r -> Json.Num r);
      ("direction", Json.Str (direction_string m.direction)) ]

let doc_json doc =
  Json.Obj
    [ ("_readme", Json.List (List.map (fun l -> Json.Str l) doc.readme));
      ("version", Json.Num (float_of_int doc.version));
      ("configs",
       Json.Obj
         (List.map
            (fun (cname, metrics) ->
              (cname, Json.Obj (List.map (fun (m, v) -> (m, metric_json v)) metrics)))
            doc.configs)) ]

let to_json doc = Json.to_string_pretty (doc_json doc)

let get what = function
  | Some v -> v
  | None -> failwith ("Baseline: missing or malformed " ^ what)

let metric_of_json j =
  let value = get "value" Json.(Option.bind (member "value" j) to_float) in
  let tolerance =
    match Json.member "tolerance" j with
    | None | Some Json.Null -> None
    | Some v -> Some (get "tolerance" (Json.to_float v))
  in
  let direction =
    direction_of_string
      (get "direction" Json.(Option.bind (member "direction" j) to_str))
  in
  { value; tolerance; direction }

let of_parsed j =
  let readme =
    match Json.member "_readme" j with
    | Some (Json.List xs) -> List.filter_map Json.to_str xs
    | _ -> []
  in
  let version = get "version" Json.(Option.bind (member "version" j) to_int) in
  let configs =
    match Json.member "configs" j with
    | Some (Json.Obj cs) ->
      List.map
        (fun (cname, cj) ->
          match cj with
          | Json.Obj ms -> (cname, List.map (fun (m, mj) -> (m, metric_of_json mj)) ms)
          | _ -> failwith ("Baseline: config " ^ cname ^ " is not an object"))
        cs
    | _ -> failwith "Baseline: missing configs object"
  in
  { version; readme; configs }

let of_json s = of_parsed (Json.parse s)

let write ~path doc = Json.to_file ~path (doc_json doc)

let read ~path = of_parsed (Json.of_file ~path)

type verdict = {
  v_config : string;
  v_metric : string;
  v_base : float;
  v_cur : float;
  v_delta_pct : float;
  v_gated : bool;
  v_ok : bool;
  v_note : string;
}

let judge ~base ~cur =
  match base.tolerance with
  | None -> (false, true, "informational")
  | Some tol ->
    let ok =
      if base.value = 0. then
        match base.direction with
        | Lower_better -> cur.value <= tol
        | Higher_better -> cur.value >= 0.
      else
        match base.direction with
        | Higher_better -> cur.value >= base.value *. (1. -. tol)
        | Lower_better -> cur.value <= base.value *. (1. +. tol)
    in
    let note =
      Printf.sprintf "tol %.0f%% %s" (100. *. tol)
        (match base.direction with
         | Higher_better -> "(higher better)"
         | Lower_better -> "(lower better)")
    in
    (true, ok, note)

let compare_docs ~baseline ~current =
  let out = ref [] in
  List.iter
    (fun (cname, bmetrics) ->
      let cmetrics = Option.value (List.assoc_opt cname current.configs) ~default:[] in
      List.iter
        (fun (mname, bm) ->
          let v =
            match List.assoc_opt mname cmetrics with
            | None ->
              { v_config = cname; v_metric = mname; v_base = bm.value; v_cur = nan;
                v_delta_pct = 0.; v_gated = bm.tolerance <> None;
                v_ok = bm.tolerance = None; v_note = "missing from current run" }
            | Some cm ->
              let gated, ok, note = judge ~base:bm ~cur:cm in
              let delta =
                if bm.value = 0. then 0.
                else (cm.value -. bm.value) /. bm.value *. 100.
              in
              { v_config = cname; v_metric = mname; v_base = bm.value;
                v_cur = cm.value; v_delta_pct = delta; v_gated = gated;
                v_ok = ok; v_note = note }
          in
          out := v :: !out)
        bmetrics;
      (* Metrics the baseline does not know about yet: informational. *)
      List.iter
        (fun (mname, cm) ->
          if List.assoc_opt mname bmetrics = None then
            out :=
              { v_config = cname; v_metric = mname; v_base = nan; v_cur = cm.value;
                v_delta_pct = 0.; v_gated = false; v_ok = true;
                v_note = "new metric (not in baseline)" }
              :: !out)
        cmetrics)
    baseline.configs;
  List.iter
    (fun (cname, _) ->
      if List.assoc_opt cname baseline.configs = None then
        out :=
          { v_config = cname; v_metric = "*"; v_base = nan; v_cur = nan;
            v_delta_pct = 0.; v_gated = false; v_ok = true;
            v_note = "new config (not in baseline)" }
          :: !out)
    current.configs;
  List.rev !out

let all_ok vs = List.for_all (fun v -> v.v_ok) vs

let pp_verdict ppf v =
  let status =
    if not v.v_gated then "  info"
    else if v.v_ok then "    ok"
    else "REGRESS"
  in
  Format.fprintf ppf "%s  %-12s %-28s base %-14.6g cur %-14.6g %+7.2f%%  %s" status
    v.v_config v.v_metric v.v_base v.v_cur v.v_delta_pct v.v_note
