module Trace = Repro_trace.Trace

type labels = (string * string) list

let canon (labels : labels) : labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let label_string name (labels : labels) =
  match labels with
  | [] -> name
  | _ ->
    let canon = List.sort compare labels in
    let fields = List.map (fun (k, v) -> k ^ "=" ^ v) canon in
    name ^ "{" ^ String.concat "," fields ^ "}"

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0. }
  let set t x = t.v <- x
  let add t x = t.v <- t.v +. x
  let value t = t.v
end

type probe_kind =
  | P_gauge
  | P_rate of { mutable prev_t : float; mutable prev_v : float }

type probe = {
  pr_name : string;
  pr_labels : labels;
  pr_f : unit -> float;
  pr_kind : probe_kind;
  pr_gauge : Gauge.t;
  mutable pr_points : (float * float) list; (* newest first *)
}

type t = {
  period : float;
  counters : (string * labels, Trace.Counter.t) Hashtbl.t;
  gauges : (string * labels, Gauge.t) Hashtbl.t;
  hists : (string * labels, Trace.Hist.t) Hashtbl.t;
  mutable probes : probe list; (* newest first *)
  mutable tick_times : float list; (* newest first *)
  mutable n_ticks : int;
  mutable mirror : (Trace.Sink.t * int) option;
}

let create ?(period = 0.5) () =
  if not (period > 0.) then invalid_arg "Metrics.create: period must be positive";
  { period;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    probes = [];
    tick_times = [];
    n_ticks = 0;
    mirror = None }

let period t = t.period

let intern tbl make ~labels name =
  let key = (name, canon labels) in
  match Hashtbl.find_opt tbl key with
  | Some x -> x
  | None ->
    let x = make () in
    Hashtbl.add tbl key x;
    x

let counter t ?(labels = []) name = intern t.counters Trace.Counter.make ~labels name
let gauge t ?(labels = []) name = intern t.gauges Gauge.make ~labels name
let histogram t ?(labels = []) name = intern t.hists Trace.Hist.create ~labels name

let add_probe t ~labels name f kind =
  let labels = canon labels in
  let pr =
    { pr_name = name; pr_labels = labels; pr_f = f; pr_kind = kind;
      pr_gauge = gauge t ~labels name; pr_points = [] }
  in
  t.probes <- pr :: t.probes

let probe t ?(labels = []) name f = add_probe t ~labels name f P_gauge

let rate_probe t ?(labels = []) name f =
  add_probe t ~labels name f (P_rate { prev_t = 0.; prev_v = f () })

let mirror t ~sink ~actor = t.mirror <- Some (sink, actor)

let sample t ~now =
  t.tick_times <- now :: t.tick_times;
  t.n_ticks <- t.n_ticks + 1;
  List.iter
    (fun pr ->
      let raw = pr.pr_f () in
      let v =
        match pr.pr_kind with
        | P_gauge -> raw
        | P_rate r ->
          let dt = now -. r.prev_t in
          let rate = if dt > 0. then (raw -. r.prev_v) /. dt else 0. in
          r.prev_t <- now;
          r.prev_v <- raw;
          rate
      in
      Gauge.set pr.pr_gauge v;
      pr.pr_points <- (now, v) :: pr.pr_points;
      match t.mirror with
      | Some (sink, actor) ->
        Trace.count sink ~now ~actor ~cat:"metrics"
          ~name:(label_string pr.pr_name pr.pr_labels) v
      | None -> ())
    (List.rev t.probes)

let ticks t = t.n_ticks
let tick_times t = Array.of_list (List.rev t.tick_times)

type value =
  | V_counter of int
  | V_gauge of float
  | V_hist of {
      h_count : int;
      h_sum : float;
      h_mean : float;
      h_min : float;
      h_max : float;
      h_p50 : float;
      h_p90 : float;
      h_p99 : float;
    }

type entry = { m_name : string; m_labels : labels; m_value : value }

let hist_value h =
  V_hist
    { h_count = Trace.Hist.count h;
      h_sum = Trace.Hist.sum h;
      h_mean = Trace.Hist.mean h;
      h_min = Trace.Hist.min h;
      h_max = Trace.Hist.max h;
      h_p50 = Trace.Hist.percentile h 0.50;
      h_p90 = Trace.Hist.percentile h 0.90;
      h_p99 = Trace.Hist.percentile h 0.99 }

let snapshot t =
  let entries = ref [] in
  Hashtbl.iter
    (fun (name, labels) c ->
      entries :=
        { m_name = name; m_labels = labels; m_value = V_counter (Trace.Counter.value c) }
        :: !entries)
    t.counters;
  Hashtbl.iter
    (fun (name, labels) g ->
      entries :=
        { m_name = name; m_labels = labels; m_value = V_gauge (Gauge.value g) }
        :: !entries)
    t.gauges;
  Hashtbl.iter
    (fun (name, labels) h ->
      entries := { m_name = name; m_labels = labels; m_value = hist_value h } :: !entries)
    t.hists;
  List.sort compare !entries

type series = {
  s_name : string;
  s_labels : labels;
  s_points : (float * float) array;
}

let series t =
  List.rev_map
    (fun pr ->
      { s_name = pr.pr_name; s_labels = pr.pr_labels;
        s_points = Array.of_list (List.rev pr.pr_points) })
    t.probes

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let kind_of = function
  | V_counter _ -> "counter"
  | V_gauge _ -> "gauge"
  | V_hist _ -> "hist"

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let entry_json e =
  let base =
    [ ("kind", Json.Str (kind_of e.m_value));
      ("name", Json.Str e.m_name);
      ("labels", labels_json e.m_labels) ]
  in
  let rest =
    match e.m_value with
    | V_counter n -> [ ("value", Json.Num (float_of_int n)) ]
    | V_gauge v -> [ ("value", Json.Num v) ]
    | V_hist h ->
      [ ("count", Json.Num (float_of_int h.h_count));
        ("sum", Json.Num h.h_sum);
        ("mean", Json.Num h.h_mean);
        ("min", Json.Num h.h_min);
        ("max", Json.Num h.h_max);
        ("p50", Json.Num h.h_p50);
        ("p90", Json.Num h.h_p90);
        ("p99", Json.Num h.h_p99) ]
  in
  Json.Obj (base @ rest)

let series_json s =
  Json.Obj
    [ ("kind", Json.Str "series");
      ("name", Json.Str s.s_name);
      ("labels", labels_json s.s_labels);
      ("points",
       Json.List
         (Array.to_list s.s_points
          |> List.map (fun (ts, v) -> Json.List [ Json.Num ts; Json.Num v ]))) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_json e));
      Buffer.add_char buf '\n')
    (snapshot t);
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (series_json s));
      Buffer.add_char buf '\n')
    (series t);
  Buffer.contents buf

let csv_cell v =
  (* Full precision, but integers stay readable. *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let series_csv t =
  let all = series t in
  let times = tick_times t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (label_string s.s_name s.s_labels))
    all;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i ts ->
      Buffer.add_string buf (csv_cell ts);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          if i < Array.length s.s_points then
            Buffer.add_string buf (csv_cell (snd s.s_points.(i))))
        all;
      Buffer.add_char buf '\n')
    times;
  Buffer.contents buf

let pp_table ppf t =
  let snap = snapshot t in
  let counters = List.filter (fun e -> match e.m_value with V_counter _ -> true | _ -> false) snap in
  let gauges = List.filter (fun e -> match e.m_value with V_gauge _ -> true | _ -> false) snap in
  let hists = List.filter (fun e -> match e.m_value with V_hist _ -> true | _ -> false) snap in
  let name e = label_string e.m_name e.m_labels in
  let width =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length (name e))) 24 snap
  in
  if counters <> [] then begin
    Format.fprintf ppf "  counters@.";
    List.iter
      (fun e ->
        match e.m_value with
        | V_counter n -> Format.fprintf ppf "    %-*s %d@." width (name e) n
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "  gauges (last sample)@.";
    List.iter
      (fun e ->
        match e.m_value with
        | V_gauge v -> Format.fprintf ppf "    %-*s %.6g@." width (name e) v
        | _ -> ())
      gauges
  end;
  if hists <> [] then begin
    Format.fprintf ppf "  histograms%-*s count      mean       p50       p90       p99       max@."
      (Stdlib.max 0 (width - 8)) "";
    List.iter
      (fun e ->
        match e.m_value with
        | V_hist h ->
          Format.fprintf ppf "    %-*s %-10d %-10.4g %-9.4g %-9.4g %-9.4g %-9.4g@."
            width (name e) h.h_count h.h_mean h.h_p50 h.h_p90 h.h_p99 h.h_max
        | _ -> ())
      hists
  end;
  let all_series = series t in
  if all_series <> [] then begin
    Format.fprintf ppf "  series (%d ticks, period %gs)%-*s min        mean       max@."
      t.n_ticks t.period (Stdlib.max 0 (width - 25)) "";
    List.iter
      (fun s ->
        let n = Array.length s.s_points in
        if n = 0 then
          Format.fprintf ppf "    %-*s (empty)@." width (label_string s.s_name s.s_labels)
        else begin
          let lo = ref infinity and hi = ref neg_infinity and sum = ref 0. in
          Array.iter
            (fun (_, v) ->
              if v < !lo then lo := v;
              if v > !hi then hi := v;
              sum := !sum +. v)
            s.s_points;
          Format.fprintf ppf "    %-*s %-10.4g %-10.4g %-10.4g@." width
            (label_string s.s_name s.s_labels)
            !lo (!sum /. float_of_int n) !hi
        end)
      all_series
  end
