(** Machine-readable bench baseline ([BENCH_*.json]): a set of named
    configurations, each a set of named metrics with a recorded value, an
    optional relative tolerance and a regression direction.  The sim is
    deterministic, so every gated metric reproduces exactly on any
    machine running the same code — any drift beyond tolerance is a real
    code-behaviour change, which is what the CI gate is for.

    Tolerance policy: [tolerance = Some r] gates the metric — the run
    fails if the new value is {e worse} than the baseline by more than a
    fraction [r] of the baseline ([new < base*(1-r)] for
    [Higher_better], [new > base*(1+r)] for [Lower_better]; a zero
    baseline gates on [new <= r] for [Lower_better]).  [tolerance =
    None] records the metric for information only (e.g. wall-clock time,
    which is machine-dependent).  Improvements never fail. *)

type direction =
  | Higher_better
  | Lower_better

type metric = {
  value : float;
  tolerance : float option;
  direction : direction;
}

type config = (string * metric) list
(** Metric name → metric, in file order. *)

type doc = {
  version : int;
  readme : string list;  (** ["_readme"]: schema/policy doc lines. *)
  configs : (string * config) list;
}

val to_json : doc -> string
(** Pretty-printed, stable field order — suitable for committing. *)

val of_json : string -> doc
(** @raise Failure on malformed input. *)

val write : path:string -> doc -> unit
val read : path:string -> doc

(** {2 Comparison} *)

type verdict = {
  v_config : string;
  v_metric : string;
  v_base : float;
  v_cur : float;
  v_delta_pct : float;  (** [(cur - base) / base * 100]; 0 when base = 0. *)
  v_gated : bool;
  v_ok : bool;  (** Ungated verdicts are always [ok]. *)
  v_note : string;
}

val compare_docs : baseline:doc -> current:doc -> verdict list
(** One verdict per baseline metric (a config or metric missing from
    [current] yields a failing gated verdict); metrics present only in
    [current] yield informational passes. *)

val all_ok : verdict list -> bool
val pp_verdict : Format.formatter -> verdict -> unit
