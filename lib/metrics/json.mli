(** Minimal JSON tree: enough to write the metrics exports and the
    [BENCH_*.json] baseline, and to parse them back for comparison — no
    external dependency, no streaming.

    The printer is deterministic (object fields print in the order given)
    and the parser accepts anything the printer emits plus ordinary
    whitespace, so [parse (to_string v)] round-trips. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_string_pretty : t -> string
(** 2-space indented, for files meant to be read and diffed by humans. *)

val parse : string -> t
(** @raise Failure on malformed input (with a character offset). *)

val to_file : path:string -> t -> unit
(** [to_string_pretty] to a file, atomically (write + rename) — the one
    serializer behind [BENCH_*.json], sweep cell outputs and aggregated
    sweep results.
    @raise Sys_error on I/O failure. *)

val of_file : path:string -> t
(** @raise Sys_error on I/O failure, [Failure] on malformed content. *)

val escape : string -> string
(** JSON string escaping of the content (no surrounding quotes). *)

(** {2 Accessors} — all return [None] on a type or key mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
