(** Deterministic time-series metrics, layered above {!Repro_trace.Trace}.

    A registry holds named, labelled instruments — integer counters
    (reusing [Trace.Counter]), settable float gauges, and log₂ histograms
    (reusing [Trace.Hist]) — plus {e probes}: callbacks sampled on every
    {!sample} tick to build time series that are {e aligned} by
    construction (every series has exactly one point per tick, at the
    same tick times).

    Nothing here reads a clock.  The caller drives {!sample} — in the
    simulator, from [Engine.every] — so with a fixed seed the snapshot
    and every series are bit-identical across runs, and metrics from two
    machines can be diffed numerically (the basis for the bench
    regression gate in {!Baseline}).

    With {!mirror} installed, each tick also emits [C]-phase counter
    samples into a trace sink, so the same series render as counter
    tracks in [chrome://tracing] / Perfetto via [Chrome.to_string]. *)

module Trace = Repro_trace.Trace

type t

type labels = (string * string) list
(** Label sets are canonicalised (sorted by key), so
    [["a","1"; "b","2"]] and [["b","2"; "a","1"]] name the same
    instrument, while any differing value names a distinct one. *)

val create : ?period:float -> unit -> t
(** [period] (default [0.5] s) is advisory: it is what the registry
    reports to whoever schedules {!sample} ticks. *)

val period : t -> float

(** {2 Instruments} — created on first use; the same [(name, labels)]
    always returns the same instrument. *)

val counter : t -> ?labels:labels -> string -> Trace.Counter.t
val histogram : t -> ?labels:labels -> string -> Trace.Hist.t

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

val gauge : t -> ?labels:labels -> string -> Gauge.t

(** {2 Probes and sampling} *)

val probe : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** Register a sampled series: on every {!sample} tick the callback is
    read and its value recorded (and stored into a like-named gauge, so
    the snapshot shows the last sample). *)

val rate_probe : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** Like {!probe}, but the callback returns a {e cumulative} value and
    the recorded series is its per-second rate over the elapsed tick
    interval (first interval measured from time 0 and the value at
    registration). *)

val mirror : t -> sink:Trace.Sink.t -> actor:int -> unit
(** Also emit every probe sample as a [C]-phase counter event (category
    ["metrics"]) into [sink] at each tick. *)

val sample : t -> now:float -> unit
(** Record one tick at simulated time [now]: read every probe, append
    the aligned points, update probe gauges, and mirror if installed. *)

val ticks : t -> int
val tick_times : t -> float array
(** Tick times, oldest first. *)

(** {2 Reading the registry} *)

type value =
  | V_counter of int
  | V_gauge of float
  | V_hist of {
      h_count : int;
      h_sum : float;
      h_mean : float;
      h_min : float;
      h_max : float;
      h_p50 : float;
      h_p90 : float;
      h_p99 : float;
    }

type entry = { m_name : string; m_labels : labels; m_value : value }

val snapshot : t -> entry list
(** Every instrument's current value, sorted by [(name, labels, kind)] —
    a pure value, so two same-seed runs compare with [=]. *)

type series = {
  s_name : string;
  s_labels : labels;
  s_points : (float * float) array;  (** (tick time, value), oldest first *)
}

val series : t -> series list
(** All probe series in registration order; every [s_points] has length
    {!ticks} with identical time columns. *)

val label_string : string -> labels -> string
(** ["name{k=v,…}"], or just ["name"] for an empty label set. *)

(** {2 Export} *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable end-of-run table: counters, gauges, histogram
    percentiles, and per-series min/mean/max. *)

val to_jsonl : t -> string
(** One JSON object per line: first every snapshot entry
    ([{"kind","name","labels",...}]), then every series
    ([{"kind":"series","points":[[t,v],…]}]). *)

val series_csv : t -> string
(** The aligned series as one CSV table: a [time] column plus one column
    per series (registration order), one row per tick. *)
