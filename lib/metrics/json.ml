type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_num buf v =
  if Float.is_nan v then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.12g" v)

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        add_compact buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Num _ | Str _) as v -> add_compact buf v
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Json.parse: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 >= n then fail "bad \\u escape";
             let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
             pos := !pos + 4;
             (* Exports only escape control characters, so a raw byte
                suffices for everything we ever wrote. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_char buf '?'
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected , or ]"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let to_file ~path v =
  (* Write-then-rename: a reader (or an interrupted sweep resuming) never
     observes a half-written file. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string_pretty v);
  close_out oc;
  Sys.rename tmp path

let of_file ~path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Num v -> Some v
  | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | List xs -> Some xs
  | _ -> None
