module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Trace = Repro_trace.Trace

type config = {
  n : int;
  batch_bytes : int;
  batch_window : float;
  msg_bytes : int;
  header_bytes : int;
  authenticate : bool;
  workers_per_group : int;
}

let default_config ~n ~msg_bytes ~authenticate =
  { n; batch_bytes = 500_000; batch_window = 0.6; msg_bytes;
    header_bytes = (if authenticate then 80 else 8); authenticate;
    workers_per_group = 1 }

(* Per-message mempool bookkeeping (parsing, hashing, store): the
   engineering overhead that, added to batched Ed25519 verification,
   reproduces the measured sig-variant throughput (§6.1, §6.3).
   Single-core seconds, like Cost: a worker machine spreads this over
   its [Cost.vcpus] lanes. *)
let overhead_per_msg = 8e-6
let sig_extra_per_msg = 51.2e-6

type digest = { d_origin : int; d_bid : int; d_count : int; d_inject : float }

type msg =
  | Batch of { origin : int; bid : int; count : int; inject : float }
  | Batch_ack of { origin : int; bid : int }
  | Header of { round : int; author : int; digests : digest list }
  | Vote of { round : int; author : int; voter : int }
  | Cert of { round : int; author : int; digests : digest list }

module Iset = Set.Make (Int)

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  cfg : config;
  f : int;
  self : int;
  send : dst:int -> bytes:int -> msg -> unit;
  on_deliver : count:int -> inject_time:float -> unit;
  (* worker state *)
  mutable pending_count : int;
  mutable pending_since : float;
  mutable flush_armed : bool;
  mutable next_bid : int;
  acks : (int, Iset.t ref * int * float) Hashtbl.t; (* bid -> ackers, count, inject *)
  mutable certified_digests : digest list; (* ready for next header *)
  (* primary / DAG state *)
  mutable round : int;
  mutable header_sent : bool; (* in current round *)
  votes : (int * int, Iset.t ref) Hashtbl.t; (* (round, author) -> voters *)
  certs : (int * int, digest list) Hashtbl.t; (* (round, author) -> payload *)
  cert_count : (int, Iset.t ref) Hashtbl.t; (* round -> authors certified *)
  delivered_certs : (int * int, unit) Hashtbl.t;
  mutable committed_round : int;
  mutable round_timer : Engine.timer option;
  mutable delivered : int;
  mutable crashed : bool;
}

let create ~engine ~cpu ~config ~self ~send ~on_deliver () =
  { engine; cpu; cfg = config; f = (config.n - 1) / 3; self; send; on_deliver;
    pending_count = 0; pending_since = 0.; flush_armed = false; next_bid = 0;
    acks = Hashtbl.create 64; certified_digests = [];
    round = 0; header_sent = false;
    votes = Hashtbl.create 64; certs = Hashtbl.create 256;
    cert_count = Hashtbl.create 64; delivered_certs = Hashtbl.create 256;
    committed_round = -1; round_timer = None;
    delivered = 0; crashed = false }

let delivered t = t.delivered
let crash t = t.crashed <- true

let c_batches t =
  Trace.Sink.counter (Engine.trace t.engine) ~cat:"mempool" ~name:"batches"

let c_certs t =
  Trace.Sink.counter (Engine.trace t.engine) ~cat:"mempool" ~name:"certs"

let w t = float_of_int t.cfg.workers_per_group

let per_msg_cpu t =
  (overhead_per_msg
  +. if t.cfg.authenticate then Cost.ed25519_batch_verify 1 +. sig_extra_per_msg else 0.)
  /. w t

let batch_wire t count =
  (count * (t.cfg.msg_bytes + t.cfg.header_bytes) / t.cfg.workers_per_group) + 48

let broadcast t ~bytes m =
  for dst = 0 to t.cfg.n - 1 do
    if dst <> t.self then t.send ~dst ~bytes m
  done

(* --- worker: batching and dissemination ---------------------------------- *)

let rec flush_worker t =
  t.flush_armed <- false;
  if t.pending_count > 0 && not t.crashed then begin
    let count = t.pending_count and inject = t.pending_since in
    t.pending_count <- 0;
    let bid = t.next_bid in
    t.next_bid <- bid + 1;
    Trace.Counter.incr (c_batches t);
    Cpu.submit t.cpu ~work:(Cpu.parallel (float_of_int count *. per_msg_cpu t)) (fun () ->
        if not t.crashed then begin
          broadcast t ~bytes:(batch_wire t count) (Batch { origin = t.self; bid; count; inject });
          Hashtbl.replace t.acks bid (ref (Iset.singleton t.self), count, inject)
        end)
  end

and note_ack t ~bid ~voter =
  match Hashtbl.find_opt t.acks bid with
  | None -> ()
  | Some (ackers, count, inject) ->
    ackers := Iset.add voter !ackers;
    if Iset.cardinal !ackers >= (2 * t.f) + 1 then begin
      Hashtbl.remove t.acks bid;
      t.certified_digests <-
        { d_origin = t.self; d_bid = bid; d_count = count; d_inject = inject }
        :: t.certified_digests;
      try_header t
    end

and inject t ~count =
  if not t.crashed then begin
    if t.pending_count = 0 then t.pending_since <- Engine.now t.engine;
    t.pending_count <- t.pending_count + count;
    let bytes = t.pending_count * (t.cfg.msg_bytes + t.cfg.header_bytes) in
    if bytes >= t.cfg.batch_bytes * t.cfg.workers_per_group then flush_worker t
    else if not t.flush_armed then begin
      t.flush_armed <- true;
      Engine.schedule t.engine ~delay:t.cfg.batch_window (fun () ->
          if t.flush_armed then flush_worker t)
    end
  end

(* --- primary: DAG rounds --------------------------------------------------- *)

and has_work t =
  t.certified_digests <> [] || t.pending_count > 0
  || Hashtbl.length t.acks > 0
  ||
  (* uncommitted payload-carrying certs *)
  Hashtbl.fold
    (fun (round, _) digests acc -> acc || (round > t.committed_round && digests <> []))
    t.certs false

and try_header t =
  if (not t.header_sent) && not t.crashed then begin
    let ready =
      t.round = 0
      ||
      match Hashtbl.find_opt t.cert_count (t.round - 1) with
      | Some authors -> Iset.cardinal !authors >= (2 * t.f) + 1
      | None -> false
    in
    if ready then
      if t.certified_digests <> [] then send_header t
      else if has_work t && t.round_timer = None then
        t.round_timer <-
          Some (Engine.timer t.engine ~delay:t.cfg.batch_window (fun () ->
              t.round_timer <- None;
              if (not t.header_sent) && has_work t && not t.crashed then send_header t))
  end

and send_header t =
  t.header_sent <- true;
  (match t.round_timer with
   | Some tm ->
     Engine.cancel tm;
     t.round_timer <- None
   | None -> ());
  let digests = List.rev t.certified_digests in
  t.certified_digests <- [];
  let bytes = 48 + (List.length digests * 36) + (((2 * t.f) + 1) * 48) + 96 in
  let header = Header { round = t.round; author = t.self; digests } in
  broadcast t ~bytes header;
  note_vote t ~round:t.round ~author:t.self ~voter:t.self ~digests:(Some digests)

and note_vote t ~round ~author ~voter ~digests =
  if author = t.self && round = t.round then begin
    let key = (round, author) in
    let voters =
      match Hashtbl.find_opt t.votes key with
      | Some v -> v
      | None ->
        let v = ref Iset.empty in
        Hashtbl.add t.votes key v;
        v
    in
    (match digests with
     | Some ds -> Hashtbl.replace t.certs key ds
     | None -> ());
    voters := Iset.add voter !voters;
    if Iset.cardinal !voters >= (2 * t.f) + 1 then begin
      Hashtbl.remove t.votes key;
      let ds = Option.value (Hashtbl.find_opt t.certs key) ~default:[] in
      Trace.Counter.incr (c_certs t);
      let bytes = 48 + (List.length ds * 36) + (((2 * t.f) + 1) * 8) + 192 in
      broadcast t ~bytes (Cert { round; author; digests = ds });
      note_cert t ~round ~author ~digests:ds
    end
  end

and note_cert t ~round ~author ~digests =
  let key = (round, author) in
  if not (Hashtbl.mem t.certs key) || author <> t.self then
    Hashtbl.replace t.certs key digests;
  let authors =
    match Hashtbl.find_opt t.cert_count round with
    | Some a -> a
    | None ->
      let a = ref Iset.empty in
      Hashtbl.add t.cert_count round a;
      a
  in
  authors := Iset.add author !authors;
  ignore round;
  advance_rounds t

and advance_rounds t =
  let rec loop () =
    match Hashtbl.find_opt t.cert_count t.round with
    | Some authors when Iset.cardinal !authors >= (2 * t.f) + 1 ->
      (* Advance the DAG; committing trails by two rounds (Bullshark's
         one-anchor-per-two-rounds commit latency). *)
      t.round <- t.round + 1;
      t.header_sent <- false;
      (let sink = Engine.trace t.engine in
       if Trace.enabled sink then
         Trace.instant sink ~now:(Engine.now t.engine) ~actor:t.self
           ~cat:"mempool" ~name:"round" ~id:t.round);
      commit_upto t (t.round - 2);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  try_header t

and commit_upto t upto =
  if upto > t.committed_round then begin
    for r = t.committed_round + 1 to upto do
      (* Deliver every certified vertex of round r in author order —
         the deterministic linearisation of the committed DAG prefix. *)
      for author = 0 to t.cfg.n - 1 do
        let key = (r, author) in
        match Hashtbl.find_opt t.certs key with
        | Some digests when not (Hashtbl.mem t.delivered_certs key) ->
          Hashtbl.add t.delivered_certs key ();
          List.iter
            (fun d ->
              t.delivered <- t.delivered + d.d_count;
              t.on_deliver ~count:d.d_count ~inject_time:d.d_inject)
            digests
        | Some _ | None -> ()
      done
    done;
    t.committed_round <- upto
  end

let receive t ~src msg =
  if not t.crashed then
    match msg with
    | Batch { origin; bid; count; inject = _ } ->
      (* Receiving worker stores (and, in the sig variant, authenticates)
         the batch, then acknowledges it. *)
      Cpu.submit t.cpu ~work:(Cpu.parallel (float_of_int count *. per_msg_cpu t)) (fun () ->
          if not t.crashed then
            t.send ~dst:origin ~bytes:64 (Batch_ack { origin; bid }))
    | Batch_ack { origin; bid } ->
      if origin = t.self then note_ack t ~bid ~voter:src
    | Header { round; author; digests } ->
      Hashtbl.replace t.certs (round, author) digests;
      t.send ~dst:author ~bytes:96 (Vote { round; author; voter = t.self })
    | Vote { round; author; voter } -> note_vote t ~round ~author ~voter ~digests:None
    | Cert { round; author; digests } -> note_cert t ~round ~author ~digests

let inject = inject
