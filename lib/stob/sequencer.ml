module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Trace = Repro_trace.Trace

type 'p msg =
  | Forward of 'p          (* any server -> sequencer *)
  | Ordered of int * 'p    (* sequencer -> all: (slot, payload) *)

type 'p t = {
  engine : Engine.t;
  self : int;
  n : int;
  cpu : Cpu.t option;
  send : dst:int -> bytes:int -> 'p msg -> unit;
  deliver : 'p -> unit;
  payload_bytes : 'p -> int;
  mutable next_slot : int;              (* sequencer only *)
  mutable next_expected : int;          (* delivery cursor *)
  pending : (int, 'p) Hashtbl.t;        (* out-of-order buffer *)
  mutable crashed : bool;
  mutable delivered : int;
}

let header_bytes = 16

let create ~engine ~self ~n ?cpu ~send ~deliver ~payload_bytes () =
  { engine; self; n; cpu; send; deliver; payload_bytes;
    next_slot = 0; next_expected = 0; pending = Hashtbl.create 64;
    crashed = false; delivered = 0 }

(* Serialize [bytes] for [links] outgoing copies on the node's CPU (when
   modelled), then run [k].  Jobs on one CPU complete in submission
   order, so slot order is preserved on the wire. *)
let gate_serialize t ~bytes ~links k =
  match t.cpu with
  | None -> k ()
  | Some cpu ->
    Cpu.submit cpu
      ~work:
        (Cpu.parallel
           (float_of_int (bytes * links) *. Cost.serialize_per_byte))
      (fun () -> if not t.crashed then k ())

let trace_instant t name ~id =
  let sink = Engine.trace t.engine in
  if Trace.enabled sink then
    Trace.instant sink ~now:(Engine.now t.engine) ~actor:t.self ~cat:"stob" ~name ~id

let try_deliver t =
  let rec go () =
    match Hashtbl.find_opt t.pending t.next_expected with
    | Some p ->
      trace_instant t "deliver" ~id:t.next_expected;
      Hashtbl.remove t.pending t.next_expected;
      t.next_expected <- t.next_expected + 1;
      t.delivered <- t.delivered + 1;
      t.deliver p;
      go ()
    | None -> ()
  in
  go ()

let order t p =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  let bytes = header_bytes + t.payload_bytes p in
  gate_serialize t ~bytes ~links:(t.n - 1) (fun () ->
      trace_instant t "order" ~id:slot;
      for dst = 0 to t.n - 1 do
        if dst <> t.self then t.send ~dst ~bytes (Ordered (slot, p))
      done;
      (* Local copy delivered through the same path. *)
      Hashtbl.replace t.pending slot p;
      try_deliver t)

let broadcast t p =
  if not t.crashed then
    if t.self = 0 then order t p
    else t.send ~dst:0 ~bytes:(header_bytes + t.payload_bytes p) (Forward p)

let receive t ~src:_ msg =
  if not t.crashed then
    match msg with
    | Forward p -> if t.self = 0 then order t p
    | Ordered (slot, p) ->
      Hashtbl.replace t.pending slot p;
      try_deliver t

let crash t = t.crashed <- true

let recover t = t.crashed <- false
(* Slots ordered while down were broadcast once and are gone: the replica
   resumes at its delivery gap and stays a correct prefix (lib/chaos
   treats recovered nodes as degraded for liveness).  A cold restart with
   durable state recovers the gap's payloads by state transfer and then
   calls {!resume_at} to skip the dead slots. *)

let cursor t = t.next_expected

let resume_at t ~cursor =
  if cursor > t.next_expected then begin
    (* Slots below the new cursor were recovered out of band; buffered
       copies must not deliver a second time. *)
    let stale =
      Hashtbl.fold (fun s _ acc -> if s < cursor then s :: acc else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    t.next_expected <- cursor;
    try_deliver t
  end

let delivered_count t = t.delivered
