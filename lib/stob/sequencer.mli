(** Idealised STOB: node 0 is a correct, never-failing sequencer that
    assigns a global order and reflects every payload to every server.

    This is not fault tolerant — it exists so that unit and property tests
    of the Chop Chop layer (and of applications) can run against an oracle
    ordering service with two message delays and no quorum logic.  The
    deployments used by the benchmark harness instantiate {!Pbft} or
    {!Hotstuff} instead. *)

type 'p t
type 'p msg

val create :
  engine:Repro_sim.Engine.t ->
  self:int ->
  n:int ->
  ?cpu:Repro_sim.Cpu.t ->
  send:(dst:int -> bytes:int -> 'p msg -> unit) ->
  deliver:('p -> unit) ->
  payload_bytes:('p -> int) ->
  unit ->
  'p t

val broadcast : 'p t -> 'p -> unit
val receive : 'p t -> src:int -> 'p msg -> unit
val crash : 'p t -> unit

val recover : 'p t -> unit
(** Undo {!crash}: resume participating.  Slots missed while down are
    never re-sent; delivery stalls at the gap (a correct prefix). *)

val cursor : 'p t -> int
(** Next slot this replica would deliver. *)

val resume_at : 'p t -> cursor:int -> unit
(** Fast-forward delivery to [cursor] (no-op when not ahead), dropping
    buffered slots below it: the cold-restart path recovers their
    payloads via state transfer (lib/store), not through the STOB. *)

val delivered_count : 'p t -> int
