(** Server Total-Order Broadcast (STOB, Appx. B.1 of the paper).

    Chop Chop is agnostic to the underlying Atomic Broadcast run among the
    servers: brokers submit batch references to it, and its agreement and
    total-order properties carry Chop Chop's own agreement (§4.4.1).  The
    repository provides three interchangeable implementations:

    - {!Repro_stob.Sequencer} — an idealised, fault-free sequencer used to
      isolate the Chop Chop layer in unit tests;
    - {!Repro_stob.Pbft} — a PBFT-style three-phase protocol with leader
      batching and a crash-fault view change (the BFT-SMaRt stand-in);
    - {!Repro_stob.Hotstuff} — chained HotStuff with a 3-chain commit rule
      and timeout pacemaker (the libhotstuff stand-in).

    All three share the shape below.  They are written as pure state
    machines over callbacks: [send] injects a protocol message into the
    deployment's network (which computes delays from the byte size), and
    [deliver] hands a totally ordered payload up to the server. *)

module type S = sig
  type 'p t
  type 'p msg

  val create :
    engine:Repro_sim.Engine.t ->
    self:int ->
    n:int ->
    ?cpu:Repro_sim.Cpu.t ->
    send:(dst:int -> bytes:int -> 'p msg -> unit) ->
    deliver:('p -> unit) ->
    payload_bytes:('p -> int) ->
    unit ->
    'p t
  (** One instance per server; [self] in [0, n).  Tolerates
      [f = (n-1)/3] faults.  When [cpu] is given, the proposal hot path
      is completion-gated: an ordering/leader node serializes its
      outgoing proposal on that CPU (divisible work) and the broadcast
      departs only when the job completes on the sim clock.  The
      protocol logic itself stays un-modelled (black-box STOB, Appx.
      B.1); control-plane traffic (votes, view changes) is free. *)

  val broadcast : 'p t -> 'p -> unit
  (** Submit a payload for total ordering (STOB [Broadcast]). *)

  val receive : 'p t -> src:int -> 'p msg -> unit
  (** Feed a protocol message from the network. *)

  val crash : 'p t -> unit
  (** Stop participating (crash-stop). *)

  val delivered_count : 'p t -> int
end

let quorum_f n = (n - 1) / 3
