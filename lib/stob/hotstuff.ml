module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Trace = Repro_trace.Trace

type rid = int * int

type 'p item = { rid : rid; payload : 'p }

type block_id = int * int (* (proposer, proposer-local counter) *)

type qc = { qc_view : int; qc_block : block_id }

type 'p block = {
  id : block_id;
  height : int; (* = view that proposed it *)
  parent : block_id option;
  justify : qc option;
  batch : 'p item list;
}

type 'p msg =
  | Request of 'p item
  | Proposal of 'p block
  | Vote of { view : int; block : block_id }
  | New_view of { view : int; high_qc : qc option }
  | Qc_announce of qc
      (* A freshly formed QC, broadcast so replicas that will not see a
         follow-up proposal (a quiescing chain) can still commit. *)

module Iset = Set.Make (Int)

type 'p t = {
  engine : Engine.t;
  self : int;
  n : int;
  f : int;
  cpu : Cpu.t option;
  send : dst:int -> bytes:int -> 'p msg -> unit;
  deliver : 'p -> unit;
  payload_bytes : 'p -> int;
  batch_max : int;
  batch_timeout : float;
  view_timeout : float;
  blocks : (block_id, 'p block) Hashtbl.t;
  mutable view : int;
  mutable high_qc : qc option;
  mutable last_committed : block_id option;
  mutable last_committed_height : int;
  votes : (block_id, Iset.t ref) Hashtbl.t;
  new_views : (int, (Iset.t ref * qc option ref)) Hashtbl.t;
  mutable pool : 'p item list; (* pending requests, reversed *)
  mutable pool_len : int;
  mutable own_pending : 'p item list;
  mutable own_counter : int;
  mutable block_counter : int;
  delivered_rids : (rid, unit) Hashtbl.t;
  mutable proposed_this_view : bool;
  mutable nv_ready : int; (* view entered via a NewView quorum *)
  mutable proposal_deadline : Engine.timer option;
  mutable view_timer : Engine.timer option;
  k_timer : int; (* Engine kind attributing hotstuff timer events *)
  mutable crashed : bool;
  mutable delivered : int;
}

let header = 48
let qc_bytes = 128
let vote_wire = 96
let new_view_wire = header + qc_bytes

let create ~engine ~self ~n ?cpu ~send ~deliver ~payload_bytes ?(batch_max = 400)
    ?(batch_timeout = 0.3) ?(view_timeout = 2.) () =
  { engine; self; n; f = Stob_intf.quorum_f n; cpu; send; deliver; payload_bytes;
    batch_max; batch_timeout; view_timeout;
    blocks = Hashtbl.create 256;
    view = 0; high_qc = None;
    last_committed = None; last_committed_height = -1;
    votes = Hashtbl.create 64; new_views = Hashtbl.create 8;
    pool = []; pool_len = 0; own_pending = []; own_counter = 0; block_counter = 0;
    delivered_rids = Hashtbl.create 1024;
    proposed_this_view = false; nv_ready = -1;
    proposal_deadline = None; view_timer = None;
    k_timer = Engine.kind engine "hotstuff.timer";
    crashed = false; delivered = 0 }

let leader_of ~n v = v mod n
let is_leader t v = leader_of ~n:t.n v = t.self

let trace_instant t name ~id =
  let sink = Engine.trace t.engine in
  if Trace.enabled sink then
    Trace.instant sink ~now:(Engine.now t.engine) ~actor:t.self ~cat:"stob" ~name ~id

let item_bytes t it = 16 + t.payload_bytes it.payload

let block_bytes t b =
  List.fold_left (fun a it -> a + item_bytes t it) (header + qc_bytes) b.batch

let broadcast_all t ~bytes msg =
  for dst = 0 to t.n - 1 do
    if dst <> t.self then t.send ~dst ~bytes msg
  done

(* Serialize [bytes] for [links] outgoing copies on the leader's CPU (when
   modelled), then run [k].  Jobs on one CPU complete in submission order,
   so proposal order is preserved on the wire.  Control-plane traffic
   (votes, QC announcements, new-view) stays ungated. *)
let gate_serialize t ~bytes ~links k =
  match t.cpu with
  | None -> k ()
  | Some cpu ->
    Cpu.submit cpu
      ~work:
        (Cpu.parallel
           (float_of_int (bytes * links) *. Cost.serialize_per_byte))
      (fun () -> if not t.crashed then k ())

let qc_newer a b =
  match (a, b) with
  | Some x, Some y -> if x.qc_view > y.qc_view then Some x else Some y
  | Some x, None -> Some x
  | None, y -> y

(* Walk the chain to drop payloads already proposed by recent ancestors,
   limiting delivery-time duplicates after leader rotation. *)
let recently_proposed t =
  let seen = Hashtbl.create 64 in
  let rec walk id depth =
    if depth > 0 then
      match Hashtbl.find_opt t.blocks id with
      | Some b ->
        List.iter (fun it -> Hashtbl.replace seen it.rid ()) b.batch;
        (match b.parent with Some p -> walk p (depth - 1) | None -> ())
      | None -> ()
  in
  (match t.high_qc with Some qc -> walk qc.qc_block 8 | None -> ());
  seen

(* --- commit & delivery -------------------------------------------------- *)

let rec chain_to t id stop_height acc =
  match Hashtbl.find_opt t.blocks id with
  | Some b when b.height > stop_height ->
    let acc = b :: acc in
    (match b.parent with
     | Some p -> chain_to t p stop_height acc
     | None -> acc)
  | Some _ | None -> acc

let deliver_block t b =
  trace_instant t "commit" ~id:b.height;
  t.last_committed <- Some b.id;
  t.last_committed_height <- b.height;
  List.iter
    (fun it ->
      if not (Hashtbl.mem t.delivered_rids it.rid) then begin
        Hashtbl.add t.delivered_rids it.rid ();
        t.own_pending <- List.filter (fun o -> o.rid <> it.rid) t.own_pending;
        t.delivered <- t.delivered + 1;
        t.deliver it.payload
      end)
    b.batch;
  (* Prune satisfied requests so idle replicas stop driving the pacemaker. *)
  if b.batch <> [] then begin
    t.pool <- List.filter (fun it -> not (Hashtbl.mem t.delivered_rids it.rid)) t.pool;
    t.pool_len <- List.length t.pool
  end

(* 3-chain rule over parent links: a QC for b2 whose justify chain is
   b2 <- b1 <- b0 commits b0 and its ancestors.  The textbook rule also
   demands consecutive view numbers; under crash faults at most one QC can
   form per height (replicas vote once per height), so parent linkage
   alone is safe — and it preserves liveness under round-robin leaders
   when a crashed replica breaks every run of three consecutive views. *)
let try_commit t qc =
  match Hashtbl.find_opt t.blocks qc.qc_block with
  | None -> ()
  | Some b2 ->
    (match b2.justify with
     | None -> ()
     | Some qc1 ->
       (match Hashtbl.find_opt t.blocks qc1.qc_block with
        | None -> ()
        | Some b1 ->
          (match b1.justify with
           | None -> ()
           | Some qc0 ->
             (match Hashtbl.find_opt t.blocks qc0.qc_block with
              | None -> ()
              | Some b0 ->
                if b1.parent = Some b0.id && b2.parent = Some b1.id
                   && b0.height > t.last_committed_height
                then
                  List.iter (deliver_block t)
                    (chain_to t b0.id t.last_committed_height [])))))

(* --- pacemaker ----------------------------------------------------------- *)

let cancel_timer tm =
  match !tm with
  | Some x ->
    Engine.cancel x;
    tm := None
  | None -> ()

let rec enter_view t v =
  if v > t.view && not t.crashed then begin
    t.view <- v;
    t.proposed_this_view <- false;
    let vt = ref t.view_timer in
    cancel_timer vt;
    t.view_timer <- !vt;
    if has_work t then
      t.view_timer <-
        Some (Engine.timer ~kind:t.k_timer t.engine ~delay:t.view_timeout (fun () ->
            t.view_timer <- None;
            on_view_timeout t));
    if is_leader t v then maybe_propose t
  end

and on_view_timeout t =
  if (not t.crashed) && has_work t then begin
    let next = t.view + 1 in
    let dst = leader_of ~n:t.n next in
    if dst <> t.self then
      t.send ~dst ~bytes:new_view_wire (New_view { view = next; high_qc = t.high_qc });
    note_new_view t ~src:t.self ~view:next ~high_qc:t.high_qc;
    enter_view t next
  end

and note_new_view t ~src ~view ~high_qc =
  if view >= t.view && is_leader t view then begin
    let voters, best =
      match Hashtbl.find_opt t.new_views view with
      | Some e -> e
      | None ->
        let e = (ref Iset.empty, ref None) in
        Hashtbl.add t.new_views view e;
        e
    in
    voters := Iset.add src !voters;
    best := qc_newer high_qc !best;
    if Iset.cardinal !voters >= t.n - t.f then begin
      t.high_qc <- qc_newer !best t.high_qc;
      t.nv_ready <- max t.nv_ready view;
      if view > t.view then enter_view t view;
      if view = t.view then maybe_propose t
    end
  end

(* True while some payload is still waiting in a pool or sits in the
   uncommitted suffix of the chain: leaders then keep proposing (possibly
   empty) blocks so the 3-chain commit rule can fire.  Once the chain is
   quiescent, proposing stops and the simulation can drain. *)
and has_work t =
  t.pool_len > 0 || t.own_pending <> []
  ||
  (let rec walk id depth =
     depth > 0
     &&
     match Hashtbl.find_opt t.blocks id with
     | Some b ->
       (b.height > t.last_committed_height && b.batch <> [])
       || (match b.parent with
           | Some p -> b.height > t.last_committed_height && walk p (depth - 1)
           | None -> false)
     | None -> false
   in
   match t.high_qc with Some qc -> walk qc.qc_block 64 | None -> false)

(* A leader proposes when its pool is full, or after the batching timeout —
   even an empty block, to keep the chain (and the commit rule) moving. *)
(* A leader of view v proposes once it holds the QC of view v-1 (the
   normal chained hand-off) or once a NewView quorum authorised the view
   (after a pacemaker timeout).  Proposing on a stale QC would fork the
   chain and outrun the votes. *)
and may_extend t =
  t.view = 0
  || t.nv_ready >= t.view
  || (match t.high_qc with Some qc -> qc.qc_view >= t.view - 1 | None -> false)

and maybe_propose t =
  if is_leader t t.view && not t.proposed_this_view && not t.crashed
     && has_work t && may_extend t
  then
    if t.pool_len >= t.batch_max then propose t
    else if t.proposal_deadline = None then
      t.proposal_deadline <-
        Some (Engine.timer ~kind:t.k_timer t.engine ~delay:t.batch_timeout (fun () ->
            t.proposal_deadline <- None;
            if is_leader t t.view && not t.proposed_this_view then propose t))

and propose t =
  t.proposed_this_view <- true;
  let pd = ref t.proposal_deadline in
  cancel_timer pd;
  t.proposal_deadline <- !pd;
  let seen = recently_proposed t in
  let batch, rest =
    let all = List.rev t.pool in
    let fresh =
      List.filter
        (fun it ->
          (not (Hashtbl.mem seen it.rid)) && not (Hashtbl.mem t.delivered_rids it.rid))
        all
    in
    let rec take n acc = function
      | [] -> (List.rev acc, [])
      | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    take t.batch_max [] fresh
  in
  t.pool <- List.rev rest;
  t.pool_len <- List.length rest;
  let id = (t.self, t.block_counter) in
  t.block_counter <- t.block_counter + 1;
  let parent = Option.map (fun qc -> qc.qc_block) t.high_qc in
  let b = { id; height = t.view; parent; justify = t.high_qc; batch } in
  Hashtbl.replace t.blocks id b;
  trace_instant t "propose" ~id:t.view;
  let bytes = block_bytes t b in
  gate_serialize t ~bytes ~links:(t.n - 1) (fun () ->
      (* A stale proposal (view advanced while serializing) is discarded
         by [on_proposal]'s height check, like one lost to a crash. *)
      broadcast_all t ~bytes (Proposal b);
      on_proposal t ~src:t.self b)

and on_proposal t ~src b =
  if src = leader_of ~n:t.n b.height && b.height >= t.view && not t.crashed then begin
    Hashtbl.replace t.blocks b.id b;
    (match b.justify with Some qc -> try_commit t qc | None -> ());
    t.high_qc <- qc_newer b.justify t.high_qc;
    (* Vote to the next leader and advance. *)
    let next = b.height + 1 in
    let dst = leader_of ~n:t.n next in
    if dst = t.self then note_vote t ~src:t.self ~view:b.height ~block:b.id
    else t.send ~dst ~bytes:vote_wire (Vote { view = b.height; block = b.id });
    enter_view t next
  end

and note_vote t ~src ~view ~block =
  (* Accept votes even when our view has moved on: the QC still certifies
     the block and may unblock the chain. *)
  if is_leader t (view + 1) then begin
    let voters =
      match Hashtbl.find_opt t.votes block with
      | Some v -> v
      | None ->
        let v = ref Iset.empty in
        Hashtbl.add t.votes block v;
        v
    in
    voters := Iset.add src !voters;
    if Iset.cardinal !voters = t.n - t.f then begin
      let qc = { qc_view = view; qc_block = block } in
      trace_instant t "qc" ~id:view;
      t.high_qc <- qc_newer (Some qc) t.high_qc;
      try_commit t qc;
      broadcast_all t ~bytes:(qc_bytes + 16) (Qc_announce qc);
      if view + 1 > t.view then enter_view t (view + 1);
      if t.view = view + 1 then maybe_propose t
    end
  end

and on_qc_announce t qc =
  t.high_qc <- qc_newer (Some qc) t.high_qc;
  try_commit t qc;
  if qc.qc_view + 1 > t.view then enter_view t (qc.qc_view + 1)
  else if is_leader t t.view then maybe_propose t

let broadcast t p =
  if not t.crashed then begin
    let it = { rid = (t.self, t.own_counter); payload = p } in
    t.own_counter <- t.own_counter + 1;
    t.own_pending <- it :: t.own_pending;
    (* Hand the request to everyone: whichever replica leads next can
       propose it. *)
    broadcast_all t ~bytes:(header + item_bytes t it) (Request it);
    t.pool <- it :: t.pool;
    t.pool_len <- t.pool_len + 1;
    if is_leader t t.view then maybe_propose t;
    if t.view_timer = None then begin
      (* Bootstrap: arm the pacemaker on first activity. *)
      t.view_timer <-
        Some (Engine.timer ~kind:t.k_timer t.engine ~delay:t.view_timeout (fun () ->
            t.view_timer <- None;
            on_view_timeout t))
    end
  end

let receive t ~src msg =
  if not t.crashed then
    match msg with
    | Request it ->
      if not (Hashtbl.mem t.delivered_rids it.rid) then begin
        t.pool <- it :: t.pool;
        t.pool_len <- t.pool_len + 1;
        if is_leader t t.view then maybe_propose t;
        if t.view_timer = None then
          t.view_timer <-
            Some (Engine.timer ~kind:t.k_timer t.engine ~delay:t.view_timeout (fun () ->
                t.view_timer <- None;
                on_view_timeout t))
      end
    | Proposal b -> on_proposal t ~src b
    | Vote { view; block } -> note_vote t ~src ~view ~block
    | New_view { view; high_qc } -> note_new_view t ~src ~view ~high_qc
    | Qc_announce qc -> on_qc_announce t qc

let crash t =
  t.crashed <- true;
  let vt = ref t.view_timer in
  cancel_timer vt;
  let pd = ref t.proposal_deadline in
  cancel_timer pd

let recover t = t.crashed <- false

let cursor t = t.last_committed_height + 1

let resume_at t ~cursor =
  (* Heights below [cursor] were recovered out of band (lib/store state
     transfer): raising the committed height keeps [try_commit] and
     [chain_to] from re-delivering them.  Chopchop-level reference dedup
     covers re-proposals of carried-over payloads at later heights. *)
  if cursor - 1 > t.last_committed_height then
    t.last_committed_height <- cursor - 1

let delivered_count t = t.delivered
let current_view t = t.view
