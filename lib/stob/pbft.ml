module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Trace = Repro_trace.Trace

type rid = int * int
(* (origin server, origin-local counter): unique payload identity used for
   deduplication across view-change re-proposals. *)

type 'p item = { rid : rid; payload : 'p }

type 'p msg =
  | Request of 'p item
  | Pre_prepare of { view : int; seq : int; batch : 'p item list }
  | Prepare of { view : int; seq : int }
  | Commit of { view : int; seq : int }
  | View_change of { new_view : int; prepared : (int * 'p item list) list }
  | New_view of { view : int; proposals : (int * 'p item list) list }

module Iset = Set.Make (Int)

type 'p slot = {
  mutable batch : 'p item list option;
  mutable slot_view : int;
  mutable prepares : Iset.t;
  mutable commits : Iset.t;
  mutable sent_commit : bool;
  mutable committed : bool;
}

type 'p t = {
  engine : Engine.t;
  self : int;
  n : int;
  f : int;
  cpu : Cpu.t option;
  send : dst:int -> bytes:int -> 'p msg -> unit;
  deliver : 'p -> unit;
  payload_bytes : 'p -> int;
  batch_max : int;
  batch_timeout : float;
  view_timeout : float;
  max_outstanding : int;
  mutable view : int;
  mutable next_seq : int;                        (* leader: next proposal slot *)
  mutable next_deliver : int;
  slots : (int, 'p slot) Hashtbl.t;
  mutable queue : 'p item list;                  (* leader: pending requests, reversed *)
  mutable queue_len : int;
  mutable flush_armed : bool;
  mutable own_pending : 'p item list;            (* our broadcasts not yet delivered *)
  mutable own_counter : int;
  delivered_rids : (rid, unit) Hashtbl.t;
  mutable queued_rids : (rid, unit) Hashtbl.t;   (* leader-side dedup *)
  mutable view_changes : (int, Iset.t ref * (int, 'p item list) Hashtbl.t) Hashtbl.t;
  mutable progress_timer : Engine.timer option;
  k_timer : int; (* Engine kind attributing pbft timer events *)
  mutable crashed : bool;
  mutable delivered : int;
}

let leader_of_view ~n v = v mod n

let header = 48
let vote_bytes = 96 (* view, seq, signature *)

let item_bytes t it = 16 + t.payload_bytes it.payload

let batch_bytes t batch = List.fold_left (fun a it -> a + item_bytes t it) header batch

let create ~engine ~self ~n ?cpu ~send ~deliver ~payload_bytes ?(batch_max = 400)
    ?(batch_timeout = 0.05) ?(view_timeout = 4.) ?(max_outstanding = max_int) () =
  { engine; self; n; f = Stob_intf.quorum_f n; cpu; send; deliver; payload_bytes;
    batch_max; batch_timeout; view_timeout; max_outstanding;
    view = 0; next_seq = 0; next_deliver = 0;
    slots = Hashtbl.create 128;
    queue = []; queue_len = 0; flush_armed = false;
    own_pending = []; own_counter = 0;
    delivered_rids = Hashtbl.create 1024;
    queued_rids = Hashtbl.create 1024;
    view_changes = Hashtbl.create 4;
    progress_timer = None; k_timer = Engine.kind engine "pbft.timer";
    crashed = false; delivered = 0 }

let is_leader t = leader_of_view ~n:t.n t.view = t.self

let trace_instant t name ~id =
  let sink = Engine.trace t.engine in
  if Trace.enabled sink then
    Trace.instant sink ~now:(Engine.now t.engine) ~actor:t.self ~cat:"stob" ~name ~id

let slot_of t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
    let s = { batch = None; slot_view = -1; prepares = Iset.empty; commits = Iset.empty;
              sent_commit = false; committed = false } in
    Hashtbl.add t.slots seq s;
    s

let broadcast_all t ~bytes msg =
  for dst = 0 to t.n - 1 do
    if dst <> t.self then t.send ~dst ~bytes msg
  done

(* Serialize [bytes] for [links] outgoing copies on the leader's CPU (when
   modelled), then run [k].  Jobs on one CPU complete in submission order,
   so proposal order is preserved on the wire.  Control-plane traffic
   (votes, view changes) stays ungated. *)
let gate_serialize t ~bytes ~links k =
  match t.cpu with
  | None -> k ()
  | Some cpu ->
    Cpu.submit cpu
      ~work:
        (Cpu.parallel
           (float_of_int (bytes * links) *. Cost.serialize_per_byte))
      (fun () -> if not t.crashed then k ())

(* --- progress timer / view change ------------------------------------- *)

let cancel_progress t =
  match t.progress_timer with
  | Some tm ->
    Engine.cancel tm;
    t.progress_timer <- None
  | None -> ()

let rec arm_progress t =
  if t.progress_timer = None && not t.crashed then
    t.progress_timer <-
      Some (Engine.timer ~kind:t.k_timer t.engine ~delay:t.view_timeout (fun () ->
          t.progress_timer <- None;
          start_view_change t (t.view + 1)))

and start_view_change t new_view =
  if not t.crashed && new_view > t.view then begin
    Trace.Counter.incr
      (Trace.Sink.counter (Engine.trace t.engine) ~cat:"stob" ~name:"view_changes");
    trace_instant t "view_change" ~id:new_view;
    t.view <- new_view;
    (* Collect every slot we prepared (2f+1 prepare quorum reached) but not
       yet delivered: the new leader must carry these over. *)
    let prepared = ref [] in
    Hashtbl.iter
      (fun seq slot ->
        if seq >= t.next_deliver && Iset.cardinal slot.prepares >= (2 * t.f) + 1 then
          match slot.batch with
          | Some b -> prepared := (seq, b) :: !prepared
          | None -> ())
      t.slots;
    let msg = View_change { new_view; prepared = !prepared } in
    let bytes =
      List.fold_left (fun a (_, b) -> a + batch_bytes t b) (header + 64) !prepared
    in
    broadcast_all t ~bytes msg;
    note_view_change t ~src:t.self ~new_view ~prepared:!prepared;
    (* Hand our undelivered payloads to the new leader. *)
    let new_leader = leader_of_view ~n:t.n new_view in
    if new_leader <> t.self then
      List.iter
        (fun it -> t.send ~dst:new_leader ~bytes:(header + item_bytes t it) (Request it))
        t.own_pending;
    arm_progress t
  end

and note_view_change t ~src ~new_view ~prepared =
  if new_view >= t.view then begin
    let voters, slots_acc =
      match Hashtbl.find_opt t.view_changes new_view with
      | Some entry -> entry
      | None ->
        let entry = (ref Iset.empty, Hashtbl.create 16) in
        Hashtbl.add t.view_changes new_view entry;
        entry
    in
    voters := Iset.add src !voters;
    List.iter
      (fun (seq, batch) ->
        if not (Hashtbl.mem slots_acc seq) then Hashtbl.add slots_acc seq batch)
      prepared;
    if Iset.cardinal !voters >= (2 * t.f) + 1
       && leader_of_view ~n:t.n new_view = t.self && t.view <= new_view
    then begin
      t.view <- new_view;
      install_new_view t new_view slots_acc
    end
  end

and install_new_view t view slots_acc =
  (* Re-propose carried-over slots at their original sequence numbers and
     fill unknown holes with empty batches so delivery can progress. *)
  let max_seq = Hashtbl.fold (fun seq _ acc -> max acc seq) slots_acc (t.next_deliver - 1) in
  let proposals = ref [] in
  for seq = t.next_deliver to max_seq do
    let batch = Option.value (Hashtbl.find_opt slots_acc seq) ~default:[] in
    proposals := (seq, batch) :: !proposals
  done;
  let proposals = List.rev !proposals in
  t.next_seq <- max_seq + 1;
  let bytes =
    List.fold_left (fun a (_, b) -> a + batch_bytes t b) (header + 64) proposals
  in
  broadcast_all t ~bytes (New_view { view; proposals });
  adopt_new_view t view proposals

and adopt_new_view t view proposals =
  t.view <- view;
  cancel_progress t;
  (* The previous leader's pending queue died with its view: owners
     re-introduce their undelivered payloads. *)
  t.queue <- [];
  t.queue_len <- 0;
  Hashtbl.reset t.queued_rids;
  List.iter (fun (seq, batch) -> handle_pre_prepare t ~view ~seq ~batch) proposals;
  let leader = leader_of_view ~n:t.n view in
  List.iter
    (fun it ->
      if leader = t.self then enqueue_leader t it
      else t.send ~dst:leader ~bytes:(header + item_bytes t it) (Request it))
    t.own_pending;
  if t.own_pending <> [] then arm_progress t

(* --- normal case -------------------------------------------------------- *)

and flush t =
  t.flush_armed <- false;
  if is_leader t && t.queue_len > 0 && not t.crashed
     && t.next_seq - t.next_deliver < t.max_outstanding
  then begin
    (* Take at most one batch worth; the remainder waits for the next
       flush (and, in sequential mode, for the instance slot). *)
    let all = List.rev t.queue in
    let rec split n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (n - 1) (x :: acc) rest
    in
    let batch, rest = split t.batch_max [] all in
    t.queue <- List.rev rest;
    t.queue_len <- List.length rest;
    if rest <> [] && not t.flush_armed then begin
      t.flush_armed <- true;
      Engine.schedule ~kind:t.k_timer t.engine ~delay:t.batch_timeout (fun () ->
          if t.flush_armed then flush t)
    end;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let view = t.view in
    let bytes = batch_bytes t batch in
    gate_serialize t ~bytes ~links:(t.n - 1) (fun () ->
        (* If the view moved on while serializing, receivers (and our own
           [handle_pre_prepare]) discard the stale pre-prepare — the same
           outcome as a proposal lost to a leader crash. *)
        broadcast_all t ~bytes (Pre_prepare { view; seq; batch });
        handle_pre_prepare t ~view ~seq ~batch)
  end

and enqueue_leader t it =
  if not (Hashtbl.mem t.queued_rids it.rid) && not (Hashtbl.mem t.delivered_rids it.rid)
  then begin
    Hashtbl.add t.queued_rids it.rid ();
    t.queue <- it :: t.queue;
    t.queue_len <- t.queue_len + 1;
    if t.queue_len >= t.batch_max then flush t
    else if not t.flush_armed then begin
      t.flush_armed <- true;
      Engine.schedule ~kind:t.k_timer t.engine ~delay:t.batch_timeout (fun () -> if t.flush_armed then flush t)
    end
  end

and handle_pre_prepare t ~view ~seq ~batch =
  if view = t.view && seq >= t.next_deliver then begin
    let slot = slot_of t seq in
    if slot.slot_view < view then begin
      slot.batch <- Some batch;
      slot.slot_view <- view;
      slot.prepares <- Iset.empty;
      slot.commits <- Iset.empty;
      slot.sent_commit <- false
    end;
    trace_instant t "pre_prepare" ~id:seq;
    (* Everyone, leader included, contributes a prepare vote. *)
    broadcast_all t ~bytes:vote_bytes (Prepare { view; seq });
    note_prepare t ~src:t.self ~view ~seq;
    arm_progress t
  end

and note_prepare t ~src ~view ~seq =
  if view = t.view && seq >= t.next_deliver then begin
    let slot = slot_of t seq in
    if slot.slot_view <= view then begin
      slot.prepares <- Iset.add src slot.prepares;
      if (not slot.sent_commit) && Iset.cardinal slot.prepares >= (2 * t.f) + 1
         && slot.batch <> None
      then begin
        slot.sent_commit <- true;
        trace_instant t "prepared" ~id:seq;
        broadcast_all t ~bytes:vote_bytes (Commit { view; seq });
        note_commit t ~src:t.self ~view ~seq
      end
    end
  end

and note_commit t ~src ~view:_ ~seq =
  if seq >= t.next_deliver then begin
    let slot = slot_of t seq in
    slot.commits <- Iset.add src slot.commits;
    if (not slot.committed) && Iset.cardinal slot.commits >= (2 * t.f) + 1
       && slot.batch <> None
    then begin
      slot.committed <- true;
      trace_instant t "committed" ~id:seq;
      try_deliver t
    end
  end

and try_deliver t =
  let rec go () =
    match Hashtbl.find_opt t.slots t.next_deliver with
    | Some ({ committed = true; batch = Some batch; _ } as _slot) ->
      trace_instant t "deliver" ~id:t.next_deliver;
      Hashtbl.remove t.slots t.next_deliver;
      t.next_deliver <- t.next_deliver + 1;
      List.iter
        (fun it ->
          if not (Hashtbl.mem t.delivered_rids it.rid) then begin
            Hashtbl.add t.delivered_rids it.rid ();
            t.own_pending <- List.filter (fun o -> o.rid <> it.rid) t.own_pending;
            t.delivered <- t.delivered + 1;
            t.deliver it.payload
          end)
        batch;
      go ()
    | Some _ | None -> ()
  in
  go ();
  (* Sequential-instance mode (BFT-SMaRt-style): a pending batch may now
     be allowed through. *)
  if is_leader t && t.queue_len > 0 && not t.flush_armed then flush t;
  cancel_progress t;
  (* Keep the pressure on if work remains outstanding. *)
  let outstanding =
    t.own_pending <> []
    || Hashtbl.fold (fun seq _ acc -> acc || seq >= t.next_deliver) t.slots false
  in
  if outstanding then arm_progress t

let broadcast t p =
  if not t.crashed then begin
    let it = { rid = (t.self, t.own_counter); payload = p } in
    t.own_counter <- t.own_counter + 1;
    t.own_pending <- it :: t.own_pending;
    arm_progress t;
    if is_leader t then enqueue_leader t it
    else
      t.send ~dst:(leader_of_view ~n:t.n t.view) ~bytes:(header + item_bytes t it)
        (Request it)
  end

let receive t ~src msg =
  if not t.crashed then
    match msg with
    | Request it -> if is_leader t then enqueue_leader t it
    | Pre_prepare { view; seq; batch } ->
      if src = leader_of_view ~n:t.n view then handle_pre_prepare t ~view ~seq ~batch
    | Prepare { view; seq } -> note_prepare t ~src ~view ~seq
    | Commit { view; seq } -> note_commit t ~src ~view ~seq
    | View_change { new_view; prepared } ->
      note_view_change t ~src ~new_view ~prepared;
      (* A straggler joins an ongoing view change once f+1 peers vouch. *)
      (match Hashtbl.find_opt t.view_changes new_view with
       | Some (voters, _) when Iset.cardinal !voters >= t.f + 1 && new_view > t.view ->
         start_view_change t new_view
       | _ -> ())
    | New_view { view; proposals } ->
      if view >= t.view && src = leader_of_view ~n:t.n view then
        adopt_new_view t view proposals

let crash t =
  t.crashed <- true;
  cancel_progress t

let recover t = t.crashed <- false

let cursor t = t.next_deliver

let resume_at t ~cursor =
  if cursor > t.next_deliver then begin
    (* Sequence numbers below the new cursor were recovered out of band
       (lib/store state transfer); drop their slots so they cannot commit
       and deliver a second time.  [note_prepare]/[note_commit] already
       ignore seq < next_deliver, so no further votes resurrect them. *)
    let stale =
      Hashtbl.fold (fun seq _ acc -> if seq < cursor then seq :: acc else acc)
        t.slots []
    in
    List.iter (Hashtbl.remove t.slots) stale;
    t.next_deliver <- cursor;
    try_deliver t
  end

let delivered_count t = t.delivered
let view t = t.view
