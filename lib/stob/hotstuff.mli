(** Chained HotStuff — the libhotstuff stand-in.

    Rotating leaders, one block per view, quorum certificates formed from
    [n - f] votes, and the 3-chain commit rule: a block is committed when
    it heads three blocks of consecutive views each certified by a QC.
    A timeout pacemaker advances stuck views with NewView messages
    carrying the sender's highest QC.

    The internal batching behaviour reproduces the latency artefact the
    paper observes (§6.3): a leader proposes as soon as its pool reaches
    [batch_max] but otherwise waits [batch_timeout], so HotStuff's latency
    {e decreases} under load — buffers fill before the timeout fires.

    Like {!Pbft}, crash faults are modelled; Byzantine equivocation of the
    underlying ordering layer is out of scope (per the paper's modular
    architecture, §4.1). *)

type 'p t
type 'p msg

val create :
  engine:Repro_sim.Engine.t ->
  self:int ->
  n:int ->
  ?cpu:Repro_sim.Cpu.t ->
  send:(dst:int -> bytes:int -> 'p msg -> unit) ->
  deliver:('p -> unit) ->
  payload_bytes:('p -> int) ->
  ?batch_max:int ->
  ?batch_timeout:float ->
  ?view_timeout:float ->
  unit ->
  'p t
(** Defaults: [batch_max = 400], [batch_timeout = 0.3] s,
    [view_timeout = 2.] s. *)

val broadcast : 'p t -> 'p -> unit
val receive : 'p t -> src:int -> 'p msg -> unit
val crash : 'p t -> unit

val recover : 'p t -> unit
(** Undo {!crash}; same caveats as {!Pbft.recover}. *)

val cursor : 'p t -> int
(** One past the last committed block height. *)

val resume_at : 'p t -> cursor:int -> unit
(** Raise the committed height to [cursor - 1] (no-op when not ahead):
    cold restart recovers the skipped heights' payloads via lib/store
    state transfer instead of the chain. *)

val delivered_count : 'p t -> int

val current_view : 'p t -> int
