(** PBFT-style total-order broadcast — the BFT-SMaRt stand-in.

    Three-phase commit (pre-prepare / prepare / commit) with leader
    batching, plus a crash-fault view change: on a progress timeout the
    replicas move to the next view, carry over prepared slots, and
    re-submit their own undelivered payloads to the new leader.  Payloads
    are tagged with origin-unique request ids so re-proposals cannot be
    delivered twice (STOB no-duplication).

    The message pattern and latency profile match what the evaluation
    relies on: O(n²) message complexity, ~2.5 cross-continent one-way
    delays per decision, and batches of up to [batch_max] payloads
    (BFT-SMaRt's baseline configuration uses 400-message batches, §6.1).

    Byzantine {e leader equivocation} is not modelled — the paper's own
    evaluation treats the underlying Atomic Broadcast as a correct,
    production-ready black box (§4: "Chop Chop inherits the network
    requirements of its underlying Atomic Broadcast"); crash faults, which
    Fig. 11a exercises, are. *)

type 'p t
type 'p msg

val create :
  engine:Repro_sim.Engine.t ->
  self:int ->
  n:int ->
  ?cpu:Repro_sim.Cpu.t ->
  send:(dst:int -> bytes:int -> 'p msg -> unit) ->
  deliver:('p -> unit) ->
  payload_bytes:('p -> int) ->
  ?batch_max:int ->
  ?batch_timeout:float ->
  ?view_timeout:float ->
  ?max_outstanding:int ->
  unit ->
  'p t
(** Defaults: [batch_max = 400], [batch_timeout = 0.05] s,
    [view_timeout = 4.] s.  [max_outstanding] caps concurrently running
    instances; 1 reproduces BFT-SMaRt's sequential consensus executions,
    which is what bounds its standalone WAN throughput to roughly
    batch-size / RTT (§6.3). *)

val broadcast : 'p t -> 'p -> unit
val receive : 'p t -> src:int -> 'p msg -> unit
val crash : 'p t -> unit

val recover : 'p t -> unit
(** Undo {!crash}: the replica rejoins the protocol from its current
    state.  Consensus messages missed while down are not replayed, so the
    replica may stall at its delivery gap — safe (prefix), not live. *)

val cursor : 'p t -> int
(** Next sequence number this replica would deliver. *)

val resume_at : 'p t -> cursor:int -> unit
(** Fast-forward delivery to [cursor] (no-op when not ahead), discarding
    slots below it — used by cold restart after their payloads were
    recovered through lib/store state transfer. *)

val delivered_count : 'p t -> int

val view : 'p t -> int
(** Current view (diagnostics; grows when view changes fire). *)

val leader_of_view : n:int -> int -> int
