type 'a packet =
  | Data of { seq : int; payload : 'a; bytes : int }
  | Ack of { seq : int }

let data_header = 12
let ack_bytes = 20

let packet_bytes = function
  | Data { bytes; _ } -> bytes + data_header
  | Ack _ -> ack_bytes

let ack_wire = ack_bytes

type 'a outstanding = {
  o_seq : int;
  o_payload : 'a;
  o_bytes : int;
  mutable o_retries : int;
  mutable o_acked : bool;
}

type 'a sender = {
  engine : Engine.t;
  transmit : 'a packet -> unit;
  rto : float;
  window : int;
  max_retries : int;
  mutable next_seq : int;
  flight : (int, 'a outstanding) Hashtbl.t;
  backlog : (int * 'a) Queue.t; (* (bytes, payload) waiting for a window slot *)
  mutable retransmissions : int;
  mutable gave_up : int;
  k_retx : int; (* Engine kind for the retransmission timers *)
  c_retx : Repro_trace.Trace.Counter.t;
  c_gave_up : Repro_trace.Trace.Counter.t;
}

let sender ~engine ~transmit ?(rto = 0.4) ?(window = 64) ?(max_retries = 25) () =
  let sink = Engine.trace engine in
  { engine; transmit; rto; window; max_retries;
    next_seq = 0; flight = Hashtbl.create 64; backlog = Queue.create ();
    retransmissions = 0; gave_up = 0;
    k_retx = Engine.kind engine "rudp.retx";
    c_retx = Repro_trace.Trace.Sink.counter sink ~cat:"rudp" ~name:"retransmissions";
    c_gave_up = Repro_trace.Trace.Sink.counter sink ~cat:"rudp" ~name:"gave_up" }

let in_flight t = Hashtbl.length t.flight
let queued t = Queue.length t.backlog
let retransmissions t = t.retransmissions
let give_up_count t = t.gave_up

let rec transmit_outstanding t (o : 'a outstanding) =
  t.transmit (Data { seq = o.o_seq; payload = o.o_payload; bytes = o.o_bytes });
  Engine.schedule ~kind:t.k_retx t.engine ~delay:t.rto (fun () ->
      if (not o.o_acked) && Hashtbl.mem t.flight o.o_seq then
        if o.o_retries >= t.max_retries then begin
          (* Give up: the peer is unreachable; higher-level timeouts
             (broker rotation) own recovery from here. *)
          Hashtbl.remove t.flight o.o_seq;
          t.gave_up <- t.gave_up + 1;
          Repro_trace.Trace.Counter.incr t.c_gave_up;
          pump t
        end
        else begin
          o.o_retries <- o.o_retries + 1;
          t.retransmissions <- t.retransmissions + 1;
          Repro_trace.Trace.Counter.incr t.c_retx;
          transmit_outstanding t o
        end)

and pump t =
  while Hashtbl.length t.flight < t.window && not (Queue.is_empty t.backlog) do
    let bytes, payload = Queue.pop t.backlog in
    let o =
      { o_seq = t.next_seq; o_payload = payload; o_bytes = bytes;
        o_retries = 0; o_acked = false }
    in
    t.next_seq <- t.next_seq + 1;
    Hashtbl.add t.flight o.o_seq o;
    transmit_outstanding t o
  done

let send t ~bytes payload =
  Queue.add (bytes, payload) t.backlog;
  pump t

let sender_on_ack t seq =
  match Hashtbl.find_opt t.flight seq with
  | Some o ->
    o.o_acked <- true;
    Hashtbl.remove t.flight seq;
    pump t
  | None -> ()

type 'a receiver = {
  deliver : 'a -> unit;
  send_ack : int -> unit;
  seen : (int, unit) Hashtbl.t;
  mutable dups : int;
}

let receiver ~deliver ~send_ack () =
  { deliver; send_ack; seen = Hashtbl.create 256; dups = 0 }

let receiver_on_data t = function
  | Ack _ -> ()
  | Data { seq; payload; bytes = _ } ->
    (* Always re-ACK: the previous ACK may have been the lost packet. *)
    t.send_ack seq;
    if Hashtbl.mem t.seen seq then t.dups <- t.dups + 1
    else begin
      Hashtbl.add t.seen seq ();
      t.deliver payload
    end

let duplicates t = t.dups
