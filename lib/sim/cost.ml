let vcpus = 32

(* Anchors from §3.2 of the paper, measured on c6i.8xlarge (32 vCPU).
   The paper reports machine rates; multiplying by the vCPU count turns
   them into single-core seconds, which is what Cpu lanes consume.  Both
   anchor workloads (batch verification, pk aggregation) are
   embarrassingly parallel, so at 32 lanes the machine rates are
   recovered exactly. *)
let classic_batch_s = float_of_int vcpus /. 16.2
(* 65,536 Ed25519 sigs, batch verified: 16.2 batches/s/machine. *)

let distilled_batch_s = float_of_int vcpus /. 457.1
(* 65,536 pk aggregation + 1 BLS verify: 457.1 batches/s/machine. *)

let anchor_batch = 65_536.

let bls_verify = 0.0032
(* One pairing-based verification, ~3.2 ms on one core.  Inherently
   serial — a small constant share of the distilled anchor so that
   per-key aggregation dominates, as in the paper. *)

let ed25519_batch_verify n = float_of_int n *. classic_batch_s /. anchor_batch

let bls_aggregate_pks n =
  float_of_int n *. (distilled_batch_s -. bls_verify) /. anchor_batch

let bls_aggregate_sigs n = float_of_int n *. 3.2e-7
(* Field additions (uncompressed point additions) — cheaper than pk
   aggregation, which involves deserialization of directory entries. *)

let ed25519_verify = 70e-6
(* ~70 us single-core Ed25519 verification without batching. *)

let hash_per_byte = 0.4e-9
(* blake3-class, ~2.5 GB/s/core. *)

let merkle_build ~leaves ~leaf_bytes =
  (* Hash every leaf plus the internal nodes (~2x leaf count of 64 B
     compressions). *)
  let leaf_cost = float_of_int (leaves * leaf_bytes) *. hash_per_byte in
  let node_cost = float_of_int (2 * leaves * 64) *. hash_per_byte in
  leaf_cost +. node_cost

let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let k = ref 0 and p = ref 1 in
    while !p < n do
      (* [p] saturates at the int width before overflowing for any
         representable [n]. *)
      p := !p * 2;
      incr k
    done;
    !k
  end

let merkle_verify_proof ~leaves =
  let depth = max 1 (ceil_log2 (max 2 leaves)) in
  float_of_int (depth * 64) *. hash_per_byte

let signature_sign = 25e-6

let multisig_sign = 300e-6
(* BLS signing: one hash-to-curve plus one scalar multiplication. *)

let dedup_per_message = 64e-9
(* Sorted-range sequence check; parallelizes across id chunks (§5.2). *)

let serialize_per_byte = 1e-9
(* ~1 GB/s/core of serialization + memory traffic. *)

(* Simulated durable storage (lib/store): a datacenter NVMe device.  A
   write is one fsync'd append — fixed fsync latency plus streaming
   bandwidth; reads (recovery only) stream at a higher rate.  Disk
   timings are device-side, not core-side: no rescale. *)

let disk_fsync_s = 120e-6
let disk_write_bps = 1.2e9
let disk_read_bps = 2.4e9

(* t3.small: one core, ~1.5x slower than a c6i core. *)
let client_factor = 1.5

let client_multisig_sign = multisig_sign *. client_factor

let client_verify_proof ~leaves = merkle_verify_proof ~leaves *. client_factor
