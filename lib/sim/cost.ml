let vcpus = 32

(* Anchors from §3.2 of the paper, measured on c6i.8xlarge. *)
let classic_batch_s = 1. /. 16.2 (* 65,536 Ed25519 sigs, batch verified *)
let distilled_batch_s = 1. /. 457.1 (* 65,536 pk aggregation + 1 BLS verify *)
let anchor_batch = 65_536.

let bls_verify = 0.0001
(* One pairing-based verification (~3 ms single-core over 32 vCPUs); a
   small constant share of the distilled anchor so that per-key
   aggregation dominates, as in the paper. *)

let ed25519_batch_verify n = float_of_int n *. classic_batch_s /. anchor_batch

let bls_aggregate_pks n = float_of_int n *. (distilled_batch_s -. bls_verify) /. anchor_batch

let bls_aggregate_sigs n = float_of_int n *. 1e-8
(* Field additions (uncompressed point additions) — cheaper than pk
   aggregation, which involves deserialization of directory entries. *)

(* ~70 us single-core Ed25519 verification without batching. *)
let ed25519_verify = 70e-6 /. float_of_int vcpus

let hash_per_byte = 0.4e-9 /. float_of_int vcpus
(* blake3-class, ~2.5 GB/s/core. *)

let merkle_build ~leaves ~leaf_bytes =
  (* Hash every leaf plus the internal nodes (~2x leaf count of 64 B
     compressions). *)
  let leaf_cost = float_of_int (leaves * leaf_bytes) *. hash_per_byte in
  let node_cost = float_of_int (2 * leaves * 64) *. hash_per_byte in
  leaf_cost +. node_cost

let merkle_verify_proof ~leaves =
  let depth = max 1 (int_of_float (ceil (log (float_of_int (max 2 leaves)) /. log 2.))) in
  float_of_int (depth * 64) *. hash_per_byte

let signature_sign = 25e-6 /. float_of_int vcpus

let multisig_sign = 300e-6 /. float_of_int vcpus
(* BLS signing: one hash-to-curve plus one scalar multiplication. *)

let dedup_per_message = 2e-9
(* Sorted-range sequence check, parallel across id chunks (§5.2). *)

let serialize_per_byte = 0.1e-9

(* Simulated durable storage (lib/store): a datacenter NVMe device.  A
   write is one fsync'd append — fixed fsync latency plus streaming
   bandwidth; reads (recovery only) stream at a higher rate. *)

let disk_fsync_s = 120e-6
let disk_write_bps = 1.2e9
let disk_read_bps = 2.4e9

(* t3.small: 1 core vs the server's 32 vCPUs, and a slower core. *)
let client_factor = float_of_int vcpus *. 1.5

let client_multisig_sign = multisig_sign *. client_factor

let client_verify_proof ~leaves = merkle_verify_proof ~leaves *. client_factor
