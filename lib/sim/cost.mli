(** Calibrated CPU cost model.

    All costs are expressed in {e single-core seconds of one reference
    core} (a vCPU of the AWS c6i.8xlarge every server, broker and load
    client runs on in §6.2).  {!Cpu} schedules these durations over a
    node's worker lanes, so a cost's wall-clock impact depends on its job
    class: divisible (parallel) work finishes [cores] times faster on a
    full machine, serial work does not.  The two anchor points come
    straight from the paper's microbenchmark (§3.2):

    - classic batch authentication: 16.2 batches/s {e per machine} of
      65,536 Ed25519 signatures, batch-verified ⇒ ~1.98 core-seconds per
      batch;
    - distilled batch authentication: 457.1 batches/s per machine, i.e.
      aggregation of 65,536 BLS12-381 public keys plus one
      multi-signature verification ⇒ ~70 core-milliseconds per batch.

    Both anchor workloads parallelize perfectly, so scheduling them over
    32 lanes recovers the paper's machine rates exactly.  Remaining
    constants are standard single-core figures for the named primitives.
    Clients run on t3.small (1 core, ~1.5x slower); their costs carry a
    separate factor.  The actual OCaml execution time of the
    simulation-grade crypto never leaks into results. *)

val vcpus : int
(** Parallelism of the reference server (32) — the default lane count a
    server or broker {!Cpu} is created with. *)

(* Server-side, single-core seconds. *)

val ed25519_batch_verify : int -> float
(** Cost of batch-verifying [n] individual signatures (divisible). *)

val ed25519_verify : float
(** One isolated verification (no batching amortization). *)

val bls_aggregate_pks : int -> float
(** Aggregating [n] public keys (divisible). *)

val bls_verify : float
(** One multi-signature verification against an aggregate key — a
    pairing, inherently serial. *)

val bls_aggregate_sigs : int -> float
(** Aggregating [n] multi-signature shares (brokers do this). *)

val hash_per_byte : float
(** Cryptographic hashing (blake3-class). *)

val merkle_build : leaves:int -> leaf_bytes:int -> float
(** Building a Merkle tree over a batch. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]; 0 for [n <= 1].  Integer-exact at
    powers of two, unlike float [log]/[ceil]. *)

val merkle_verify_proof : leaves:int -> float

val signature_sign : float
(** Producing one Ed25519 signature. *)

val multisig_sign : float
(** Producing one BLS share (clients; scaled for t3.small below). *)

val dedup_per_message : float
(** Sequence-number check + last-message comparison per payload (§5.2,
    identifier-sorted parallel deduplication). *)

val serialize_per_byte : float
(** Serialization / memory traffic per byte handled. *)

(* Durable storage (lib/store's per-node disk model).  Device-side
   timings — not core-seconds, not scheduled over lanes. *)

val disk_fsync_s : float
(** Latency of one fsync'd append (datacenter NVMe, ~120 us). *)

val disk_write_bps : float
(** Sustained sequential write bandwidth (bytes/s). *)

val disk_read_bps : float
(** Sequential read bandwidth — recovery replay streams at this rate. *)

(* Client-side (t3.small: 1 core, slower clock). *)

val client_factor : float
(** Multiplier turning a single-core server cost into a t3.small cost. *)

val client_multisig_sign : float
val client_verify_proof : leaves:int -> float
