(** Calibrated CPU cost model.

    All costs are expressed in {e machine-seconds of one reference server}
    (AWS c6i.8xlarge: 32 vCPU / 16 cores, the machine every server, broker
    and load client runs on in §6.2).  The two anchor points come straight
    from the paper's microbenchmark (§3.2):

    - classic batch authentication: 16.2 batches/s of 65,536 Ed25519
      signatures, batch-verified ⇒ 61.7 ms per batch;
    - distilled batch authentication: 457.1 batches/s, i.e. aggregation of
      65,536 BLS12-381 public keys plus one multi-signature verification
      ⇒ 2.19 ms per batch.

    Remaining constants are standard single-core figures for the named
    primitives divided by the machine's parallelism.  Clients run on
    t3.small (1 core, ~3x slower per core); their costs carry a separate
    factor.  The {!Cpu} queue charges these durations on the virtual
    clock — the actual OCaml execution time of the simulation-grade
    crypto never leaks into results. *)

val vcpus : int
(** Parallelism of the reference server (32). *)

(* Server-side, machine-seconds. *)

val ed25519_batch_verify : int -> float
(** Cost of batch-verifying [n] individual signatures. *)

val ed25519_verify : float
(** One isolated verification (no batching amortization). *)

val bls_aggregate_pks : int -> float
(** Aggregating [n] public keys. *)

val bls_verify : float
(** One multi-signature verification against an aggregate key. *)

val bls_aggregate_sigs : int -> float
(** Aggregating [n] multi-signature shares (brokers do this). *)

val hash_per_byte : float
(** Cryptographic hashing (blake3-class). *)

val merkle_build : leaves:int -> leaf_bytes:int -> float
(** Building a Merkle tree over a batch. *)

val merkle_verify_proof : leaves:int -> float

val signature_sign : float
(** Producing one Ed25519 signature. *)

val multisig_sign : float
(** Producing one BLS share (clients; scaled for t3.small below). *)

val dedup_per_message : float
(** Sequence-number check + last-message comparison per payload (§5.2,
    identifier-sorted parallel deduplication). *)

val serialize_per_byte : float
(** Serialization / memory traffic per byte handled. *)

(* Durable storage (lib/store's per-node disk model). *)

val disk_fsync_s : float
(** Latency of one fsync'd append (datacenter NVMe, ~120 us). *)

val disk_write_bps : float
(** Sustained sequential write bandwidth (bytes/s). *)

val disk_read_bps : float
(** Sequential read bandwidth — recovery replay streams at this rate. *)

(* Client-side (t3.small: 1 core, slower clock). *)

val client_factor : float
(** Multiplier turning a single-core server cost into a t3.small cost. *)

val client_multisig_sign : float
val client_verify_proof : leaves:int -> float
