(** Measurement helpers for the experiment harness.

    Mirrors the paper's methodology (§6.2 "Plots"): each data point is a
    mean over runs; warmup and cooldown are excluded from throughput
    cross-sections; latency is reported as a mean with standard
    deviation. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** [percentile t 0.99]: nearest-rank (rounded index into the sorted
      samples); retains all samples in a flat float array (experiments
      record at most a few hundred thousand). *)
end

module Throughput : sig
  type t

  (** Counts delivered operations and reports the rate over the cross
      section [warmup, until]-cooldown. *)

  val create : Engine.t -> warmup:float -> cooldown:float -> duration:float -> t
  val record : t -> int -> unit
  (** Record [n] operations delivered now. *)

  val total_in_window : t -> int
  val rate : t -> float
  (** Operations per second over the measurement window. *)

  val window : t -> float * float
end

val mean_of : float list -> float
val stddev_of : float list -> float
