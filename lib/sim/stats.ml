module Summary = struct
  type t = {
    (* Growable flat float array (unboxed): one word per sample, against
       the three the old cons list paid — latency recording sits on the
       delivery hot path. *)
    mutable buf : float array;
    mutable sorted : float array option; (* cache, invalidated by add *)
    mutable count : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { buf = [||]; sorted = None; count = 0; sum = 0.; sumsq = 0.;
      min = infinity; max = neg_infinity }

  let add t x =
    if t.count = Array.length t.buf then begin
      let bigger = Array.make (Stdlib.max 64 (2 * t.count)) 0. in
      Array.blit t.buf 0 bigger 0 t.count;
      t.buf <- bigger
    end;
    t.buf.(t.count) <- x;
    t.sorted <- None;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.
    else begin
      let n = float_of_int t.count in
      let var = (t.sumsq /. n) -. ((t.sum /. n) ** 2.) in
      sqrt (Float.max 0. var)
    end

  let min t = if t.count = 0 then 0. else t.min
  let max t = if t.count = 0 then 0. else t.max

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.sub t.buf 0 t.count in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

  let percentile t q =
    if t.count = 0 then 0.
    else begin
      let a = sorted t in
      (* Nearest rank: round to the closest index rather than truncating
         toward the low sample (the old [int_of_float] bias). *)
      let idx = int_of_float (Float.round (q *. float_of_int (Array.length a - 1))) in
      a.(Stdlib.max 0 (Stdlib.min (Array.length a - 1) idx))
    end
end

module Throughput = struct
  type t = {
    engine : Engine.t;
    win_start : float;
    win_end : float;
    mutable in_window : int;
  }

  let create engine ~warmup ~cooldown ~duration =
    let start = Engine.now engine in
    { engine; win_start = start +. warmup; win_end = start +. duration -. cooldown; in_window = 0 }

  let record t n =
    let now = Engine.now t.engine in
    if now >= t.win_start && now <= t.win_end then t.in_window <- t.in_window + n

  let total_in_window t = t.in_window

  let rate t =
    let span = t.win_end -. t.win_start in
    if span <= 0. then 0. else float_of_int t.in_window /. span

  let window t = (t.win_start, t.win_end)
end

let mean_of xs =
  match xs with
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev_of xs =
  match xs with
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean_of xs in
    let var = mean_of (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var
