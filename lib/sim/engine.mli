(** Discrete-event simulation engine.

    A single virtual clock and a priority queue of callbacks.  Ties are
    broken by insertion order, so a run is fully deterministic given the
    seed.  The engine replaces the paper's tokio runtime: every protocol
    component is written as an event-driven state machine whose timers and
    message deliveries are engine events. *)

type t

val create : ?seed:int64 -> ?trace:Repro_trace.Trace.Sink.t -> unit -> t
(** Fresh engine with clock at 0.  [seed] (default 1) seeds {!rng};
    [trace] (default a null sink) receives instrumentation events from
    every component built on this engine. *)

val trace : t -> Repro_trace.Trace.Sink.t
(** The engine's trace sink; components reach instrumentation through it. *)

val set_trace : t -> Repro_trace.Trace.Sink.t -> unit
(** Replace the sink.  Install before constructing components: counters
    are registered at component-creation time against the current sink. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator; [Rng.split] it for per-node streams. *)

(** {2 Event kinds}

    Events carry an interned integer [kind] that attributes them to a
    named component for the profiler.  Tagging is free when profiling is
    off (the kind is just an int stored in the event record); untagged
    events land in the pre-registered kind 0, ["other"]. *)

val kind : t -> string -> int
(** Intern a kind name, returning its id (stable for the engine's
    lifetime; repeated calls with the same name return the same id). *)

val kind_name : t -> int -> string
(** Name for an interned kind id.  Raises [Invalid_argument] on an id
    never returned by {!kind}. *)

val kinds : t -> string array
(** All interned kind names, indexed by id ([kinds t).(0) = "other"]). *)

val schedule : ?kind:int -> t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now ([delay >= 0]). *)

val schedule_at : ?kind:int -> t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (clamped to now). *)

type timer

val timer : ?kind:int -> t -> delay:float -> (unit -> unit) -> timer
(** A cancellable one-shot timer. *)

val cancel : timer -> unit
(** Cancelling an expired timer is a no-op. *)

val every : ?kind:int -> t -> period:float -> ?until:float -> (unit -> unit) -> unit
(** Periodic callback starting one period from now. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty, or the clock
    would pass [until] (remaining events stay queued and the clock is set
    to [until]). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events (diagnostics). *)

val max_pending : t -> int
(** High-water mark of {!pending} over the whole run: the deepest the
    event queue has ever been.  Queue pressure between metric samples is
    invisible to periodic probes; this is the envelope. *)

(** {2 Profiling}

    The profiler is a write-only observer around handler dispatch: it
    never schedules events, never reads the RNG, and never feeds back
    into the simulation, so a same-seed run is bit-identical with
    profiling on or off.  [lib/sim] deliberately has no dependency on
    [Unix]; the wall clock is injected by the caller ([Repro_prof.Prof]
    supplies a monotonic one). *)

type profiler = {
  prof_clock : unit -> float;
      (** Monotonic wall clock, seconds.  Called twice per event. *)
  prof_record :
    kind:int -> wall:float -> minor:float -> dwell:float -> depth:int -> unit;
      (** Called after each dispatched event: interned event [kind],
          handler self wall-time [wall] (s), minor-heap allocation
          [minor] (words), sim-time queue [dwell] (s, scheduling to
          execution), and queue [depth] just after the pop. *)
}

val set_profiler : t -> profiler option -> unit
(** Install or remove the profiler (normally via [Repro_prof.Prof.attach]). *)
