(** Discrete-event simulation engine.

    A single virtual clock and a priority queue of callbacks.  Ties are
    broken by insertion order, so a run is fully deterministic given the
    seed.  The engine replaces the paper's tokio runtime: every protocol
    component is written as an event-driven state machine whose timers and
    message deliveries are engine events. *)

type t

val create : ?seed:int64 -> ?trace:Repro_trace.Trace.Sink.t -> unit -> t
(** Fresh engine with clock at 0.  [seed] (default 1) seeds {!rng};
    [trace] (default a null sink) receives instrumentation events from
    every component built on this engine. *)

val trace : t -> Repro_trace.Trace.Sink.t
(** The engine's trace sink; components reach instrumentation through it. *)

val set_trace : t -> Repro_trace.Trace.Sink.t -> unit
(** Replace the sink.  Install before constructing components: counters
    are registered at component-creation time against the current sink. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator; [Rng.split] it for per-node streams. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now ([delay >= 0]). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (clamped to now). *)

type timer

val timer : t -> delay:float -> (unit -> unit) -> timer
(** A cancellable one-shot timer. *)

val cancel : timer -> unit
(** Cancelling an expired timer is a no-op. *)

val every : t -> period:float -> ?until:float -> (unit -> unit) -> unit
(** Periodic callback starting one period from now. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty, or the clock
    would pass [until] (remaining events stay queued and the clock is set
    to [until]). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events (diagnostics). *)
