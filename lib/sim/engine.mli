(** Discrete-event simulation engine.

    A single virtual clock and a priority queue of callbacks.  Ties are
    broken by insertion order, so a run is fully deterministic given the
    seed.  The engine replaces the paper's tokio runtime: every protocol
    component is written as an event-driven state machine whose timers and
    message deliveries are engine events.

    The queue is a two-level calendar/ladder structure (near-future slot
    ring + far-future overflow, heap order inside a bucket) with pooled
    event records; the original binary heap survives as {!Heap} for
    dispatch-order equivalence tests and the [engine-speed]
    self-benchmark.  Both dispatch in (time, seq) order, so a same-seed
    run is bit-identical across implementations. *)

type t

type queue =
  | Heap (** pre-rebuild binary heap, one fresh record per event (baseline) *)
  | Calendar (** calendar queue + event-record pool (default) *)

val create :
  ?seed:int64 -> ?queue:queue -> ?trace:Repro_trace.Trace.Sink.t -> unit -> t
(** Fresh engine with clock at 0.  [seed] (default 1) seeds {!rng};
    [queue] (default {!Calendar}) picks the event-queue implementation;
    [trace] (default a null sink) receives instrumentation events from
    every component built on this engine. *)

val trace : t -> Repro_trace.Trace.Sink.t
(** The engine's trace sink; components reach instrumentation through it. *)

val set_trace : t -> Repro_trace.Trace.Sink.t -> unit
(** Replace the sink.  Install before constructing components: counters
    are registered at component-creation time against the current sink. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator; [Rng.split] it for per-node streams. *)

(** {2 Event kinds}

    Events carry an interned integer [kind] that attributes them to a
    named component for the profiler.  Tagging is free when profiling is
    off (the kind is just an int stored in the event record); untagged
    events land in the pre-registered kind 0, ["other"]. *)

val kind : t -> string -> int
(** Intern a kind name, returning its id (stable for the engine's
    lifetime; repeated calls with the same name return the same id). *)

val kind_name : t -> int -> string
(** Name for an interned kind id.  Raises [Invalid_argument] on an id
    never returned by {!kind}. *)

val kinds : t -> string array
(** All interned kind names, indexed by id ([kinds t).(0) = "other"]). *)

val schedule : ?kind:int -> t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now ([delay >= 0]). *)

val schedule_at : ?kind:int -> t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (clamped to now). *)

type timer

val timer : ?kind:int -> t -> delay:float -> (unit -> unit) -> timer
(** A cancellable one-shot timer. *)

val cancel : timer -> unit
(** Cancel a pending timer: the callback (and everything its closure
    captures) is released immediately and the event no longer counts as
    {!pending}, though its queue slot is only reclaimed at the original
    deadline.  Cancelling an expired or already-cancelled timer is a
    no-op. *)

val every :
  ?kind:int ->
  ?inclusive:bool ->
  t ->
  period:float ->
  ?until:float ->
  (unit -> unit) ->
  unit
(** Periodic callback starting one period from now.  Boundary semantics
    at [until] are explicit: with [inclusive] (the default) a tick
    landing exactly at [until] still fires; [~inclusive:false] stops
    strictly before [until].  Either way the chain's final check event
    one period past the last fire is dispatched (and counted) like any
    other event. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty, or the clock
    would pass [until] (remaining events stay queued and the clock is set
    to [until]). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty.  A cancelled
    timer's dead slot is consumed silently (clock advances, nothing runs,
    no step is counted) but still returns [true]. *)

val pending : t -> int
(** Number of queued {e live} events (diagnostics): cancelled timers
    awaiting their slot are excluded. *)

val max_pending : t -> int
(** High-water mark of {!pending} over the whole run: the deepest the
    live event queue has ever been.  Queue pressure between metric
    samples is invisible to periodic probes; this is the envelope. *)

val pool_stats : t -> int * int
(** [(fresh, reused)] event records: heap allocations vs pool recycles.
    Deterministic for a fixed seed — the [engine-speed] bench gates
    fresh-allocations-per-event on it.  In {!Heap} mode everything is
    fresh. *)

(** {2 Profiling}

    The profiler is a write-only observer around handler dispatch: it
    never schedules events, never reads the RNG, and never feeds back
    into the simulation, so a same-seed run is bit-identical with
    profiling on or off.  [lib/sim] deliberately has no dependency on
    [Unix]; the wall clock is injected by the caller ([Repro_prof.Prof]
    supplies a monotonic one). *)

type profiler = {
  prof_clock : unit -> float;
      (** Monotonic wall clock, seconds.  Called twice per event. *)
  prof_record :
    kind:int -> wall:float -> minor:float -> dwell:float -> depth:int -> unit;
      (** Called after each dispatched event: interned event [kind],
          handler self wall-time [wall] (s), minor-heap allocation
          [minor] (words), sim-time queue [dwell] (s, scheduling to
          execution), and live queue [depth] just after the pop. *)
}

val set_profiler : t -> profiler option -> unit
(** Install or remove the profiler (normally via [Repro_prof.Prof.attach]). *)
