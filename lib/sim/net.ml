type 'msg node = {
  region : Region.t;
  ingress_bps : float;
  egress_bps : float;
  handler : src:int -> 'msg -> unit;
  mutable out_free : float;
  mutable in_free : float;
  mutable sent : int;
  mutable received : int;
  mutable connected : bool;
}

type 'msg t = {
  engine : Engine.t;
  loss : float;
  nodes : (int, 'msg node) Hashtbl.t;
  rng : Rng.t;
  c_msgs : Repro_trace.Trace.Counter.t;
  c_bytes : Repro_trace.Trace.Counter.t;
  c_lost : Repro_trace.Trace.Counter.t;
}

(* c6i.8xlarge NICs are 12.5 Gb/s, but sustained cross-WAN TCP goodput is
   a fraction of that (AWS upload is half the stated bandwidth, §6.4, and
   long-haul streams lose more): the effective rates below are calibrated
   so a server's bulk ingress saturates near 0.6 GB/s — consistent with
   Fig. 9, where the measured server network rate peaks around 0.5 GB/s. *)
let server_default_ingress_bps = 5e9
let server_default_egress_bps = 3.125e9

let create engine ?(loss = 0.) () =
  let sink = Engine.trace engine in
  { engine; loss; nodes = Hashtbl.create 256; rng = Rng.split (Engine.rng engine);
    c_msgs = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"msgs";
    c_bytes = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"bytes";
    c_lost = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"lost" }

let add_node t ~id ~region ?(ingress_bps = server_default_ingress_bps)
    ?(egress_bps = server_default_egress_bps) ~handler () =
  if Hashtbl.mem t.nodes id then invalid_arg "Net.add_node: duplicate id";
  Hashtbl.add t.nodes id
    { region; ingress_bps; egress_bps; handler;
      out_free = 0.; in_free = 0.; sent = 0; received = 0; connected = true }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Net: unknown node %d" id)

let transmit t ~src ~dst ~bytes msg =
  let s = node t src and d = node t dst in
  if s.connected && d.connected then begin
    let now = Engine.now t.engine in
    s.sent <- s.sent + bytes;
    Repro_trace.Trace.Counter.incr t.c_msgs;
    Repro_trace.Trace.Counter.add t.c_bytes bytes;
    let out_start = Float.max now s.out_free in
    let out_end = out_start +. (float_of_int (8 * bytes) /. s.egress_bps) in
    s.out_free <- out_end;
    let arrival = out_end +. Region.latency s.region d.region in
    (* Ingress occupancy is decided at arrival time: delay the enqueue. *)
    Engine.schedule_at t.engine ~time:arrival (fun () ->
        if d.connected then begin
          let in_start = Float.max arrival d.in_free in
          let in_end = in_start +. (float_of_int (8 * bytes) /. d.ingress_bps) in
          d.in_free <- in_end;
          d.received <- d.received + bytes;
          Engine.schedule_at t.engine ~time:in_end (fun () ->
              if d.connected then d.handler ~src msg)
        end)
  end

let send t ~src ~dst ~bytes msg = transmit t ~src ~dst ~bytes msg

let send_lossy t ~src ~dst ~bytes msg =
  if t.loss <= 0. || Rng.float t.rng 1.0 >= t.loss then transmit t ~src ~dst ~bytes msg
  else begin
    (* Dropped packets still consume egress bandwidth at the sender. *)
    Repro_trace.Trace.Counter.incr t.c_lost;
    let s = node t src in
    if s.connected then begin
      let now = Engine.now t.engine in
      s.sent <- s.sent + bytes;
      let out_start = Float.max now s.out_free in
      s.out_free <- out_start +. (float_of_int (8 * bytes) /. s.egress_bps)
    end
  end

let multicast t ~src ~dsts ~bytes msg =
  List.iter (fun dst -> transmit t ~src ~dst ~bytes msg) dsts

let disconnect t id = (node t id).connected <- false
let is_connected t id = (node t id).connected

let bytes_sent t id = (node t id).sent
let bytes_received t id = (node t id).received
let node_region t id = (node t id).region
