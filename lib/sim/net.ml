type 'msg node = {
  region : Region.t;
  ingress_bps : float;
  egress_bps : float;
  kind : int; (* interned Engine kind attributing this node's events *)
  handler : src:int -> 'msg -> unit;
  mutable out_free : float;
  mutable in_free : float;
  mutable sent : int;
  mutable received : int;
  mutable connected : bool;
}

type 'msg t = {
  engine : Engine.t;
  loss : float;
  nodes : (int, 'msg node) Hashtbl.t;
  rng : Rng.t;
  (* Fault-injection state (lib/chaos).  [groups] maps node id -> partition
     group; unlisted nodes implicitly belong to group 0.  The per-link
     tables hold directed (src, dst) overrides; [faults_active] gates the
     lookups so the fault-free hot path costs one load. *)
  mutable groups : (int, int) Hashtbl.t option;
  link_loss : (int * int, float) Hashtbl.t;
  link_delay : (int * int, float) Hashtbl.t;
  mutable faults_active : bool;
  c_msgs : Repro_trace.Trace.Counter.t;
  c_bytes : Repro_trace.Trace.Counter.t;
  c_lost : Repro_trace.Trace.Counter.t;
  c_cut : Repro_trace.Trace.Counter.t;
}

(* c6i.8xlarge NICs are 12.5 Gb/s, but sustained cross-WAN TCP goodput is
   a fraction of that (AWS upload is half the stated bandwidth, §6.4, and
   long-haul streams lose more): the effective rates below are calibrated
   so a server's bulk ingress saturates near 0.6 GB/s — consistent with
   Fig. 9, where the measured server network rate peaks around 0.5 GB/s. *)
let server_default_ingress_bps = 5e9
let server_default_egress_bps = 3.125e9

let create engine ?(loss = 0.) () =
  let sink = Engine.trace engine in
  { engine; loss; nodes = Hashtbl.create 256; rng = Rng.split (Engine.rng engine);
    groups = None; link_loss = Hashtbl.create 16; link_delay = Hashtbl.create 16;
    faults_active = false;
    c_msgs = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"msgs";
    c_bytes = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"bytes";
    c_lost = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"lost";
    c_cut = Repro_trace.Trace.Sink.counter sink ~cat:"net" ~name:"cut" }

let add_node t ~id ~region ?(ingress_bps = server_default_ingress_bps)
    ?(egress_bps = server_default_egress_bps) ?kind ~handler () =
  if Hashtbl.mem t.nodes id then invalid_arg "Net.add_node: duplicate id";
  let kind = match kind with Some k -> Engine.kind t.engine k | None -> 0 in
  Hashtbl.add t.nodes id
    { region; ingress_bps; egress_bps; kind; handler;
      out_free = 0.; in_free = 0.; sent = 0; received = 0; connected = true }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Net: unknown node %d" id)

let reachable t src dst =
  match t.groups with
  | None -> true
  | Some tbl ->
    let g n = Option.value (Hashtbl.find_opt tbl n) ~default:0 in
    g src = g dst

(* A partitioned packet leaves the sender's NIC and dies in the WAN: the
   egress bandwidth is consumed, nothing arrives. *)
let charge_egress_only t s bytes =
  let now = Engine.now t.engine in
  s.sent <- s.sent + bytes;
  let out_start = Float.max now s.out_free in
  s.out_free <- out_start +. (float_of_int (8 * bytes) /. s.egress_bps)

let transmit t ~src ~dst ~bytes msg =
  let s = node t src and d = node t dst in
  if s.connected && d.connected then begin
    if t.faults_active && not (reachable t src dst) then begin
      Repro_trace.Trace.Counter.incr t.c_cut;
      charge_egress_only t s bytes
    end
    else begin
      let now = Engine.now t.engine in
      s.sent <- s.sent + bytes;
      Repro_trace.Trace.Counter.incr t.c_msgs;
      Repro_trace.Trace.Counter.add t.c_bytes bytes;
      let out_start = Float.max now s.out_free in
      let out_end = out_start +. (float_of_int (8 * bytes) /. s.egress_bps) in
      s.out_free <- out_end;
      let extra =
        if t.faults_active then
          Option.value (Hashtbl.find_opt t.link_delay (src, dst)) ~default:0.
        else 0.
      in
      let arrival = out_end +. Region.latency s.region d.region +. extra in
      (* Ingress occupancy is decided at arrival time: delay the enqueue.
         Both events — the arrival enqueue and the handler dispatch — are
         work done on behalf of the destination, so both carry its kind. *)
      Engine.schedule_at ~kind:d.kind t.engine ~time:arrival (fun () ->
          if d.connected then begin
            let in_start = Float.max arrival d.in_free in
            let in_end = in_start +. (float_of_int (8 * bytes) /. d.ingress_bps) in
            d.in_free <- in_end;
            d.received <- d.received + bytes;
            Engine.schedule_at ~kind:d.kind t.engine ~time:in_end (fun () ->
                if d.connected then d.handler ~src msg)
          end)
    end
  end

let send t ~src ~dst ~bytes msg = transmit t ~src ~dst ~bytes msg

let send_lossy t ~src ~dst ~bytes msg =
  (* Uniform and per-link loss compose as independent drop events.  The
     RNG is only consulted when some loss applies, so fault-free runs keep
     the exact event stream (and traces) they had before link faults
     existed. *)
  let link =
    if t.faults_active then
      Option.value (Hashtbl.find_opt t.link_loss (src, dst)) ~default:0.
    else 0.
  in
  let p = 1. -. ((1. -. t.loss) *. (1. -. link)) in
  if p <= 0. || Rng.float t.rng 1.0 >= p then transmit t ~src ~dst ~bytes msg
  else begin
    (* Dropped packets still consume egress bandwidth at the sender. *)
    Repro_trace.Trace.Counter.incr t.c_lost;
    let s = node t src in
    if s.connected then charge_egress_only t s bytes
  end

let multicast t ~src ~dsts ~bytes msg =
  List.iter (fun dst -> transmit t ~src ~dst ~bytes msg) dsts

let disconnect t id = (node t id).connected <- false
let reconnect t id = (node t id).connected <- true
let is_connected t id = (node t id).connected

(* --- scheduled fault injection (lib/chaos) ------------------------------- *)

let partition t groups =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun g nodes -> List.iter (fun n -> Hashtbl.replace tbl n g) nodes) groups;
  t.groups <- Some tbl;
  t.faults_active <- true

let refresh_faults_active t =
  t.faults_active <-
    t.groups <> None
    || Hashtbl.length t.link_loss > 0
    || Hashtbl.length t.link_delay > 0

let heal t =
  t.groups <- None;
  refresh_faults_active t

let set_link_loss t ~src ~dst loss =
  if loss <= 0. then Hashtbl.remove t.link_loss (src, dst)
  else Hashtbl.replace t.link_loss (src, dst) (Float.min loss 1.0);
  refresh_faults_active t

let degrade_link t ~src ~dst ~extra_latency =
  if extra_latency <= 0. then Hashtbl.remove t.link_delay (src, dst)
  else Hashtbl.replace t.link_delay (src, dst) extra_latency;
  refresh_faults_active t

let partitioned t = t.groups <> None

let partition_groups t =
  match t.groups with
  | None -> None
  | Some tbl ->
    (* Reconstruct the explicit groups; nodes absent from the table are
       implicitly in group 0 and are not listed. *)
    let by_group = Hashtbl.create 8 in
    Hashtbl.iter
      (fun node g ->
        let l = Option.value (Hashtbl.find_opt by_group g) ~default:[] in
        Hashtbl.replace by_group g (node :: l))
      tbl;
    let gs = Hashtbl.fold (fun g nodes acc -> (g, nodes) :: acc) by_group [] in
    let gs = List.sort (fun (a, _) (b, _) -> compare a b) gs in
    Some (List.map (fun (_, nodes) -> List.sort compare nodes) gs)

let bytes_sent t id = (node t id).sent
let bytes_received t id = (node t id).received
let node_region t id = (node t id).region
