(** Point-to-point network model.

    Messages are OCaml values; their {e wire size} is supplied by the
    sender (protocol modules compute it with the paper's encoding
    constants, see {!Repro_chopchop.Wire}).  Delivery time of a message of
    [b] bytes from node [s] to node [d] is

    {v egress-queueing(s) + b/egress_bps(s) + latency(region s, region d)
      + ingress-queueing(d) + b/ingress_bps(d) v}

    i.e. both NICs are modelled as serialising queues, which is what makes
    servers bandwidth-bottleneck at high load (Fig. 9).  Per-node byte
    counters expose the "network rate" series of Fig. 9.

    The ['msg] parameter is the deployment's message union type; protocol
    state machines never see this module directly — they are handed
    [send] callbacks (dependency inversion keeps {!Repro_stob} and
    {!Repro_chopchop} independent of each other's wire formats). *)

type 'msg t

val create : Engine.t -> ?loss:float -> unit -> 'msg t
(** [loss] is the probability a {e lossy} send is dropped (default 0);
    reliable sends never drop.  Chop Chop's client↔broker traffic is UDP
    with an in-house retransmission layer (§5.1): we model it as a lossy
    channel, and the client/broker state machines carry the
    retransmission logic. *)

val add_node :
  'msg t ->
  id:int ->
  region:Region.t ->
  ?ingress_bps:float ->
  ?egress_bps:float ->
  ?kind:string ->
  handler:(src:int -> 'msg -> unit) ->
  unit ->
  unit
(** Register a node.  Default speeds are the {e effective} WAN goodput of
    a server (5 Gb/s down / 3.125 Gb/s up): the c6i.8xlarge NIC is
    12.5 Gb/s, AWS upload is half of that (§6.4), and sustained long-haul
    TCP recovers only a fraction — calibrated against Fig. 9's peak
    measured server ingress of ~0.5 GB/s.

    [kind] names the {!Engine.kind} bucket that the profiler attributes
    this node's delivery events to (arrival enqueue and handler dispatch
    both count as work done for the destination); omitted nodes land in
    the ["other"] bucket.
    @raise Invalid_argument on duplicate id. *)

val send : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Reliable delivery (TCP-like). *)

val send_lossy : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Subject to the network's loss probability (UDP-like). *)

val multicast : 'msg t -> src:int -> dsts:int list -> bytes:int -> 'msg -> unit
(** Send the same message to many destinations (each serialised separately
    on the egress NIC, as distinct unicasts would be). *)

val disconnect : 'msg t -> int -> unit
(** Crash a node: all traffic to and from it is silently dropped from now
    on (used by the failure experiments, Fig. 11a). *)

val reconnect : 'msg t -> int -> unit
(** Undo {!disconnect}: the node's NIC comes back up.  Messages dropped
    while it was down are gone; whether the node catches up is the
    protocol's problem (crash-recovery scenarios, lib/chaos). *)

val is_connected : 'msg t -> int -> bool

(** {2 Scheduled fault injection}

    The knobs behind [lib/chaos]'s network events.  They extend the single
    uniform [loss] probability with partitions, per-link asymmetric loss
    and per-link latency degradation.  All of them are cheap to leave
    unused: the fault-free send path performs one extra boolean load. *)

val partition : 'msg t -> int list list -> unit
(** [partition t groups] splits the network: nodes in different groups
    cannot exchange any traffic (reliable or lossy); packets crossing the
    cut consume sender egress bandwidth and vanish.  Nodes not listed in
    any group implicitly belong to group 0 (so a minority can be isolated
    by listing only it as a second group).  A new call replaces the
    previous partition. *)

val heal : 'msg t -> unit
(** Remove the partition.  In-flight messages are unaffected; traffic sent
    across the former cut while it existed is lost for good. *)

val partitioned : 'msg t -> bool

val partition_groups : 'msg t -> int list list option
(** The active partition, reconstructed as sorted explicit groups (group
    ids ascending, node ids ascending within each).  Nodes never listed in
    the {!partition} call belong to the implicit group 0 and are not
    repeated here.  [None] when the network is whole — the doctor's view
    of the cut. *)

val set_link_loss : 'msg t -> src:int -> dst:int -> float -> unit
(** Directed per-link loss probability for {e lossy} sends, composed
    independently with the uniform [loss] knob ([p = 1-(1-u)(1-l)]).
    Asymmetric by construction: set (a,b) without (b,a) to degrade one
    direction only.  A value [<= 0] clears the override. *)

val degrade_link : 'msg t -> src:int -> dst:int -> extra_latency:float -> unit
(** Directed extra propagation latency on {e all} traffic (reliable and
    lossy) over the link — a congested or rerouted WAN path.  A value
    [<= 0] clears the override. *)

val bytes_sent : 'msg t -> int -> int
val bytes_received : 'msg t -> int -> int
(** Cumulative NIC counters (payload bytes). *)

val node_region : 'msg t -> int -> Region.t

val server_default_ingress_bps : float
val server_default_egress_bps : float
