(* Hot-loop event queue: a two-level calendar/ladder queue with pooled
   event records, plus the original binary heap kept as a reference
   implementation ([Heap]) for dispatch-order equivalence tests and
   before/after self-benchmarks.

   Dispatch order is (time, seq) in both implementations: the calendar
   partitions events by time slot and keeps heap order inside a bucket
   with the same tie-break, so a same-seed run is bit-identical across
   queue implementations. *)

type event = {
  mutable ev_time : float;
  mutable ev_seq : int;
  mutable ev_kind : int;
  mutable ev_born : float;
  mutable ev_fn : unit -> unit;
  mutable ev_cancelled : bool;
  mutable ev_gen : int; (* bumped on release: invalidates stale timer handles *)
}

let noop () = ()

(* Distinguished record for empty array slots: never queued, never
   dispatched.  Vacated heap/pool slots are cleared to [nil] so
   dispatched and cancelled events — and everything their closures
   capture — become collectable immediately instead of lingering until
   the slot is overwritten. *)
let nil =
  { ev_time = 0.; ev_seq = -1; ev_kind = 0; ev_born = 0.; ev_fn = noop;
    ev_cancelled = false; ev_gen = 0 }

type queue = Heap | Calendar

type profiler = {
  prof_clock : unit -> float;
  prof_record :
    kind:int -> wall:float -> minor:float -> dwell:float -> depth:int -> unit;
}

(* A binary min-heap ordered by (time, seq): the whole queue in [Heap]
   mode; the far-future overflow and each calendar bucket in [Calendar]
   mode. *)
type bheap = { mutable bh_arr : event array; mutable bh_n : int }

let bheap_make cap = { bh_arr = Array.make cap nil; bh_n = 0 }

let before a b =
  a.ev_time < b.ev_time || (a.ev_time = b.ev_time && a.ev_seq < b.ev_seq)

let bh_push h ev =
  if h.bh_n = Array.length h.bh_arr then begin
    let bigger = Array.make (2 * max 1 h.bh_n) nil in
    Array.blit h.bh_arr 0 bigger 0 h.bh_n;
    h.bh_arr <- bigger
  end;
  let a = h.bh_arr in
  let i = ref h.bh_n in
  h.bh_n <- h.bh_n + 1;
  a.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before a.(!i) a.(parent) then begin
      let tmp = a.(parent) in
      a.(parent) <- a.(!i);
      a.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let bh_pop h =
  let a = h.bh_arr in
  let top = a.(0) in
  h.bh_n <- h.bh_n - 1;
  if h.bh_n > 0 then begin
    a.(0) <- a.(h.bh_n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.bh_n && before a.(l) a.(!smallest) then smallest := l;
      if r < h.bh_n && before a.(r) a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = a.(!smallest) in
        a.(!smallest) <- a.(!i);
        a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  a.(h.bh_n) <- nil;
  top

(* Calendar geometry: [cal_buckets] consecutive time slots of [cal_width]
   seconds each, addressed by absolute slot number (never wrapped, so the
   cursor is monotone); everything past the ring's horizon waits in the
   overflow heap.  1024 x 1ms covers the sim's dense event horizon (network
   latencies, CPU costs); multi-second timers ride the overflow. *)
let cal_buckets = 1024
let cal_mask = cal_buckets - 1
let cal_width = 1e-3

let slot time = int_of_float (time /. cal_width)

type t = {
  queue : queue;
  heap : bheap; (* [Heap]: the whole queue; [Calendar]: far-future overflow *)
  buckets : bheap array; (* [Calendar] near-future ring; [||] in [Heap] mode *)
  mutable cur_slot : int;
  mutable ring_n : int; (* events currently in the ring *)
  (* Event-record pool ([Calendar] mode): released records are reused by
     the next [schedule] instead of allocating a fresh record + closure
     cell per event. *)
  mutable pool : event array;
  mutable pool_n : int;
  mutable pool_fresh : int; (* records allocated on the OCaml heap *)
  mutable pool_reused : int; (* records recycled from the pool *)
  mutable queued : int; (* events in the queue, cancelled included *)
  mutable cancelled : int; (* cancelled events still awaiting their slot *)
  mutable max_pending : int; (* high-water mark of *live* queued events *)
  mutable clock : float;
  mutable next_seq : int;
  rng : Rng.t;
  mutable trace : Repro_trace.Trace.Sink.t;
  mutable c_steps : Repro_trace.Trace.Counter.t;
  kind_ids : (string, int) Hashtbl.t;
  mutable kind_names : string array;
  mutable n_kinds : int;
  mutable profiler : profiler option;
}

type timer = { tm_eng : t; tm_ev : event; tm_gen : int }

let create ?(seed = 1L) ?(queue = Calendar) ?(trace = Repro_trace.Trace.Sink.null ())
    () =
  let kind_ids = Hashtbl.create 64 in
  Hashtbl.add kind_ids "other" 0;
  { queue;
    heap = bheap_make 256;
    buckets =
      (match queue with
       | Heap -> [||]
       | Calendar -> Array.init cal_buckets (fun _ -> bheap_make 4));
    cur_slot = 0;
    ring_n = 0;
    pool = [||];
    pool_n = 0;
    pool_fresh = 0;
    pool_reused = 0;
    queued = 0;
    cancelled = 0;
    max_pending = 0;
    clock = 0.;
    next_seq = 0;
    rng = Rng.create seed;
    trace;
    c_steps = Repro_trace.Trace.Sink.counter trace ~cat:"sim" ~name:"steps";
    kind_ids;
    kind_names = Array.make 64 "other";
    n_kinds = 1;
    profiler = None }

let now t = t.clock
let rng t = t.rng
let pending t = t.queued - t.cancelled
let max_pending t = t.max_pending
let pool_stats t = (t.pool_fresh, t.pool_reused)
let trace t = t.trace

let set_trace t sink =
  t.trace <- sink;
  t.c_steps <- Repro_trace.Trace.Sink.counter sink ~cat:"sim" ~name:"steps"

(* Event-kind interning.  Kinds label events for the (optional) profiler;
   they are plain ints on the hot path so tagging costs nothing when
   profiling is off.  Kind 0 is the pre-registered "other" bucket. *)

let kind t name =
  match Hashtbl.find_opt t.kind_ids name with
  | Some id -> id
  | None ->
    let id = t.n_kinds in
    if id = Array.length t.kind_names then begin
      let bigger = Array.make (2 * id) "other" in
      Array.blit t.kind_names 0 bigger 0 id;
      t.kind_names <- bigger
    end;
    t.kind_names.(id) <- name;
    t.n_kinds <- id + 1;
    Hashtbl.add t.kind_ids name id;
    id

let kind_name t id =
  if id < 0 || id >= t.n_kinds then invalid_arg "Engine.kind_name";
  t.kind_names.(id)

let kinds t = Array.sub t.kind_names 0 t.n_kinds

let set_profiler t p = t.profiler <- p

(* --- calendar maintenance -------------------------------------------------

   Invariant (between public operations): every queued event with
   slot in [cur_slot, cur_slot + cal_buckets) sits in the ring bucket
   [slot land cal_mask], everything else in the overflow heap.  Since the
   window spans exactly [cal_buckets] consecutive slots, each bucket holds
   events of a single slot, so the head of the cursor's bucket is the
   global (time, seq) minimum. *)

let migrate t =
  let horizon = t.cur_slot + cal_buckets in
  while t.heap.bh_n > 0 && slot t.heap.bh_arr.(0).ev_time < horizon do
    let ev = bh_pop t.heap in
    bh_push t.buckets.(slot ev.ev_time land cal_mask) ev;
    t.ring_n <- t.ring_n + 1
  done

let insert t ev =
  (match t.queue with
   | Heap -> bh_push t.heap ev
   | Calendar ->
     let s = slot ev.ev_time in
     if s < t.cur_slot then begin
       (* Backdated insert: [run ~until] can scan the cursor past [s]
          while clamping the clock to [until]; rewind by demoting the
          whole ring to the overflow, then re-establish the invariant
          around the new cursor.  Rare (only after a clamped [run]), and
          dispatch order is unaffected: order lives in (time, seq), the
          calendar only partitions. *)
       for i = 0 to cal_buckets - 1 do
         let b = t.buckets.(i) in
         while b.bh_n > 0 do
           bh_push t.heap (bh_pop b)
         done
       done;
       t.ring_n <- 0;
       t.cur_slot <- s;
       migrate t
     end;
     if slot ev.ev_time < t.cur_slot + cal_buckets then begin
       bh_push t.buckets.(slot ev.ev_time land cal_mask) ev;
       t.ring_n <- t.ring_n + 1
     end
     else bh_push t.heap ev);
  t.queued <- t.queued + 1;
  let live = t.queued - t.cancelled in
  if live > t.max_pending then t.max_pending <- live

(* Advance the cursor to the first non-empty bucket (or jump it to the
   overflow's minimum when the ring is empty) and peek the global
   minimum.  Cursor movement migrates overflow events entering the
   window, preserving the invariant. *)
let rec cal_min t =
  if t.ring_n = 0 then
    if t.heap.bh_n = 0 then None
    else begin
      t.cur_slot <- slot t.heap.bh_arr.(0).ev_time;
      migrate t;
      cal_min t
    end
  else begin
    let b = t.buckets.(t.cur_slot land cal_mask) in
    if b.bh_n > 0 then Some b.bh_arr.(0)
    else begin
      t.cur_slot <- t.cur_slot + 1;
      migrate t;
      cal_min t
    end
  end

let peek t =
  match t.queue with
  | Heap -> if t.heap.bh_n = 0 then None else Some t.heap.bh_arr.(0)
  | Calendar -> cal_min t

let pop_min t =
  match t.queue with
  | Heap -> if t.heap.bh_n = 0 then None else Some (bh_pop t.heap)
  | Calendar ->
    (match cal_min t with
     | None -> None
     | Some _ ->
       t.ring_n <- t.ring_n - 1;
       Some (bh_pop t.buckets.(t.cur_slot land cal_mask)))

(* --- event-record pool ---------------------------------------------------- *)

let alloc t ~time ~kind ~fn =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.pool_n > 0 then begin
    let n = t.pool_n - 1 in
    t.pool_n <- n;
    let ev = t.pool.(n) in
    t.pool.(n) <- nil;
    t.pool_reused <- t.pool_reused + 1;
    ev.ev_time <- time;
    ev.ev_seq <- seq;
    ev.ev_kind <- kind;
    ev.ev_born <- t.clock;
    ev.ev_fn <- fn;
    ev.ev_cancelled <- false;
    ev
  end
  else begin
    t.pool_fresh <- t.pool_fresh + 1;
    { ev_time = time; ev_seq = seq; ev_kind = kind; ev_born = t.clock;
      ev_fn = fn; ev_cancelled = false; ev_gen = 0 }
  end

(* Release drops the closure (collectable immediately) and bumps the
   generation so stale timer handles can no longer cancel a recycled
   record.  [Heap] mode never pools: it is the preserved pre-rebuild
   engine, the baseline the self-benchmark measures against. *)
let release t ev =
  ev.ev_fn <- noop;
  ev.ev_gen <- ev.ev_gen + 1;
  ev.ev_cancelled <- false;
  if t.queue = Calendar then begin
    if t.pool_n = Array.length t.pool then begin
      let bigger = Array.make (max 256 (2 * t.pool_n)) nil in
      Array.blit t.pool 0 bigger 0 t.pool_n;
      t.pool <- bigger
    end;
    t.pool.(t.pool_n) <- ev;
    t.pool_n <- t.pool_n + 1
  end

(* --- scheduling ------------------------------------------------------------ *)

let schedule_at ?(kind = 0) t ~time f =
  let time = if time < t.clock then t.clock else time in
  insert t (alloc t ~time ~kind ~fn:f)

let schedule ?kind t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) f

let timer ?(kind = 0) t ~delay f =
  if delay < 0. then invalid_arg "Engine.timer: negative delay";
  let ev = alloc t ~time:(t.clock +. delay) ~kind ~fn:f in
  insert t ev;
  { tm_eng = t; tm_ev = ev; tm_gen = ev.ev_gen }

let cancel tm =
  let ev = tm.tm_ev in
  if ev.ev_gen = tm.tm_gen && not ev.ev_cancelled then begin
    (* The event stays queued until its deadline (consumed as a dead
       slot), but the closure is dropped now and the live-event count is
       corrected immediately. *)
    ev.ev_cancelled <- true;
    ev.ev_fn <- noop;
    tm.tm_eng.cancelled <- tm.tm_eng.cancelled + 1
  end

let rec every ?kind ?(inclusive = true) t ~period ?until f =
  schedule ?kind t ~delay:period (fun () ->
      match until with
      | Some stop when (if inclusive then t.clock > stop else t.clock >= stop)
        -> ()
      | _ ->
        f ();
        every ?kind ~inclusive t ~period ?until f)

let step t =
  match pop_min t with
  | None -> false
  | Some ev ->
    t.queued <- t.queued - 1;
    t.clock <- ev.ev_time;
    if ev.ev_cancelled then begin
      (* Dead slot of a cancelled timer: consume it silently.  The clock
         still advances and [step] still reports progress, but no step is
         counted — exactly the pre-rebuild behaviour of an emptied
         closure cell. *)
      t.cancelled <- t.cancelled - 1;
      release t ev;
      true
    end
    else begin
      (* Copy out, then release *before* dispatch: events the handler
         schedules reuse this record, keeping the pool at steady state. *)
      let f = ev.ev_fn in
      let kind = ev.ev_kind and born = ev.ev_born and time = ev.ev_time in
      release t ev;
      Repro_trace.Trace.Counter.incr t.c_steps;
      (match t.profiler with
       | None -> f ()
       | Some p ->
         (* Write-only observation: capture wall/GC deltas around the
            handler.  Nothing here touches the queue, the clock, or the
            RNG, so a profiled run is bit-identical to an unprofiled
            one. *)
         let depth = t.queued - t.cancelled in
         let w0 = p.prof_clock () in
         let m0 = Gc.minor_words () in
         f ();
         let m1 = Gc.minor_words () in
         let w1 = p.prof_clock () in
         p.prof_record ~kind ~wall:(w1 -. w0) ~minor:(m1 -. m0)
           ~dwell:(time -. born) ~depth);
      true
    end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match peek t with
      | None ->
        t.clock <- stop;
        continue := false
      | Some ev when ev.ev_time > stop ->
        t.clock <- stop;
        continue := false
      | Some _ -> ignore (step t)
    done
