type event = { time : float; seq : int; cell : (unit -> unit) option ref }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  rng : Rng.t;
  mutable trace : Repro_trace.Trace.Sink.t;
  mutable c_steps : Repro_trace.Trace.Counter.t;
}

type timer = (unit -> unit) option ref

let create ?(seed = 1L) ?(trace = Repro_trace.Trace.Sink.null ()) () =
  { heap = Array.make 256 { time = 0.; seq = 0; cell = ref None };
    size = 0;
    clock = 0.;
    next_seq = 0;
    rng = Rng.create seed;
    trace;
    c_steps = Repro_trace.Trace.Sink.counter trace ~cat:"sim" ~name:"steps" }

let now t = t.clock
let rng t = t.rng
let pending t = t.size
let trace t = t.trace

let set_trace t sink =
  t.trace <- sink;
  t.c_steps <- Repro_trace.Trace.Sink.counter sink ~cat:"sim" ~name:"steps"

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let ev = { time; seq = t.next_seq; cell = ref (Some f) } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let timer t ~delay f =
  let cell = ref (Some f) in
  if delay < 0. then invalid_arg "Engine.timer: negative delay";
  let ev = { time = t.clock +. delay; seq = t.next_seq; cell } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  cell

let cancel cell = cell := None

let rec every t ~period ?until f =
  schedule t ~delay:period (fun () ->
      match until with
      | Some stop when t.clock > stop -> ()
      | _ ->
        f ();
        every t ~period ?until f)

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- ev.time;
    (match !(ev.cell) with
     | Some f ->
       ev.cell := None;
       Repro_trace.Trace.Counter.incr t.c_steps;
       f ()
     | None -> ());
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      if t.size = 0 then begin
        t.clock <- stop;
        continue := false
      end
      else if t.heap.(0).time > stop then begin
        t.clock <- stop;
        continue := false
      end
      else ignore (step t)
    done
