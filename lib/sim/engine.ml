type event = {
  time : float;
  seq : int;
  kind : int;
  born : float;
  cell : (unit -> unit) option ref;
}

type profiler = {
  prof_clock : unit -> float;
  prof_record :
    kind:int -> wall:float -> minor:float -> dwell:float -> depth:int -> unit;
}

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable max_pending : int;
  mutable clock : float;
  mutable next_seq : int;
  rng : Rng.t;
  mutable trace : Repro_trace.Trace.Sink.t;
  mutable c_steps : Repro_trace.Trace.Counter.t;
  kind_ids : (string, int) Hashtbl.t;
  mutable kind_names : string array;
  mutable n_kinds : int;
  mutable profiler : profiler option;
}

type timer = (unit -> unit) option ref

let create ?(seed = 1L) ?(trace = Repro_trace.Trace.Sink.null ()) () =
  let kind_ids = Hashtbl.create 64 in
  Hashtbl.add kind_ids "other" 0;
  { heap = Array.make 256 { time = 0.; seq = 0; kind = 0; born = 0.; cell = ref None };
    size = 0;
    max_pending = 0;
    clock = 0.;
    next_seq = 0;
    rng = Rng.create seed;
    trace;
    c_steps = Repro_trace.Trace.Sink.counter trace ~cat:"sim" ~name:"steps";
    kind_ids;
    kind_names = Array.make 64 "other";
    n_kinds = 1;
    profiler = None }

let now t = t.clock
let rng t = t.rng
let pending t = t.size
let max_pending t = t.max_pending
let trace t = t.trace

let set_trace t sink =
  t.trace <- sink;
  t.c_steps <- Repro_trace.Trace.Sink.counter sink ~cat:"sim" ~name:"steps"

(* Event-kind interning.  Kinds label events for the (optional) profiler;
   they are plain ints on the hot path so tagging costs nothing when
   profiling is off.  Kind 0 is the pre-registered "other" bucket. *)

let kind t name =
  match Hashtbl.find_opt t.kind_ids name with
  | Some id -> id
  | None ->
    let id = t.n_kinds in
    if id = Array.length t.kind_names then begin
      let bigger = Array.make (2 * id) "other" in
      Array.blit t.kind_names 0 bigger 0 id;
      t.kind_names <- bigger
    end;
    t.kind_names.(id) <- name;
    t.n_kinds <- id + 1;
    Hashtbl.add t.kind_ids name id;
    id

let kind_name t id =
  if id < 0 || id >= t.n_kinds then invalid_arg "Engine.kind_name";
  t.kind_names.(id)

let kinds t = Array.sub t.kind_names 0 t.n_kinds

let set_profiler t p = t.profiler <- p

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  if t.size > t.max_pending then t.max_pending <- t.size;
  t.heap.(!i) <- ev;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let schedule_at ?(kind = 0) t ~time f =
  let time = if time < t.clock then t.clock else time in
  let ev = { time; seq = t.next_seq; kind; born = t.clock; cell = ref (Some f) } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule ?kind t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) f

let timer ?(kind = 0) t ~delay f =
  let cell = ref (Some f) in
  if delay < 0. then invalid_arg "Engine.timer: negative delay";
  let ev = { time = t.clock +. delay; seq = t.next_seq; kind; born = t.clock; cell } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  cell

let cancel cell = cell := None

let rec every ?kind t ~period ?until f =
  schedule ?kind t ~delay:period (fun () ->
      match until with
      | Some stop when t.clock > stop -> ()
      | _ ->
        f ();
        every ?kind t ~period ?until f)

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- ev.time;
    (match !(ev.cell) with
     | Some f ->
       ev.cell := None;
       Repro_trace.Trace.Counter.incr t.c_steps;
       (match t.profiler with
        | None -> f ()
        | Some p ->
          (* Write-only observation: capture wall/GC deltas around the
             handler.  Nothing here touches the queue, the clock, or the
             RNG, so a profiled run is bit-identical to an unprofiled
             one. *)
          let depth = t.size in
          let w0 = p.prof_clock () in
          let m0 = Gc.minor_words () in
          f ();
          let m1 = Gc.minor_words () in
          let w1 = p.prof_clock () in
          p.prof_record ~kind:ev.kind ~wall:(w1 -. w0) ~minor:(m1 -. m0)
            ~dwell:(ev.time -. ev.born) ~depth)
     | None -> ());
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      if t.size = 0 then begin
        t.clock <- stop;
        continue := false
      end
      else if t.heap.(0).time > stop then begin
        t.clock <- stop;
        continue := false
      end
      else ignore (step t)
    done
