module Trace = Repro_trace.Trace

type work = { serial : float; parallel : float }

let work ~serial ~parallel = { serial; parallel }
let serial c = { serial = c; parallel = 0. }
let parallel c = { serial = 0.; parallel = c }
let zero = { serial = 0.; parallel = 0. }
let add a b = { serial = a.serial +. b.serial; parallel = a.parallel +. b.parallel }
let total w = w.serial +. w.parallel

type mark = { m_time : float; m_exec : float array }

type t = {
  engine : Engine.t;
  capacity : float;
  n_cores : int;
  next_free : float array; (* per lane: when its queue drains *)
  busy : float array; (* per lane: charged seconds, incl. queued *)
  m_boot : mark;
  actor : int option;
  kind : int; (* interned Engine kind attributing job completions *)
  mutable jobs : int;
}

let create engine ?(cores = 1) ?(capacity = 1.0) ?actor ?kind () =
  if cores < 1 then invalid_arg "Cpu.create: cores must be >= 1";
  if capacity <= 0. then invalid_arg "Cpu.create: capacity must be positive";
  let kind = match kind with Some k -> Engine.kind engine k | None -> 0 in
  { engine; capacity; n_cores = cores;
    next_free = Array.make cores 0.; busy = Array.make cores 0.;
    m_boot = { m_time = Engine.now engine; m_exec = Array.make cores 0. };
    actor; kind; jobs = 0 }

let cores t = t.n_cores

(* Executed-by-now work on one lane.  Lane timelines never contain a gap
   in the future: chunks are appended with start = max(submit time, lane
   free time) and a serial tail after a parallel phase lands on a lane
   whose free time IS the parallel finish.  So everything between now and
   [next_free] is solid work, and subtracting it from the lifetime charge
   gives the executed part exactly. *)
let lane_executed t i =
  let now = Engine.now t.engine in
  t.busy.(i) -. Float.max 0. (t.next_free.(i) -. now)

let submit t ~work:w k =
  if w.serial < 0. || w.parallel < 0. then invalid_arg "Cpu.submit: negative cost";
  let now = Engine.now t.engine in
  let d_p = w.parallel /. t.capacity and d_s = w.serial /. t.capacity in
  (* Parallel phase: waterfill [d_p] lane-seconds so every participating
     lane finishes at the same level T — the earliest finish any split of
     divisible work can achieve. *)
  let finish_parallel =
    if d_p <= 0. then now
    else begin
      let ready = Array.map (Float.max now) t.next_free in
      let order = Array.init t.n_cores Fun.id in
      Array.sort
        (fun a b ->
          match Float.compare ready.(a) ready.(b) with
          | 0 -> Int.compare a b
          | c -> c)
        order;
      let rec level k prefix =
        (* k earliest lanes share the work; stop when the level stays
           below the next lane's ready time. *)
        let tk = (d_p +. prefix) /. float_of_int k in
        if k = t.n_cores || tk <= ready.(order.(k)) then tk
        else level (k + 1) (prefix +. ready.(order.(k)))
      in
      let tl = level 1 ready.(order.(0)) in
      for i = 0 to t.n_cores - 1 do
        if ready.(i) < tl then begin
          t.busy.(i) <- t.busy.(i) +. (tl -. ready.(i));
          t.next_free.(i) <- tl
        end
      done;
      tl
    end
  in
  let finish =
    if d_s <= 0. then finish_parallel
    else begin
      let j =
        if d_p > 0. then begin
          (* Run the serial tail on a lane that executed the parallel
             phase (its free time equals the fill level): the tail starts
             immediately and the lane timeline stays gap-free. *)
          let j = ref 0 in
          for i = t.n_cores - 1 downto 0 do
            if t.next_free.(i) = finish_parallel then j := i
          done;
          !j
        end
        else begin
          let j = ref 0 in
          for i = 1 to t.n_cores - 1 do
            if t.next_free.(i) < t.next_free.(!j) then j := i
          done;
          !j
        end
      in
      let start = Float.max (Float.max now finish_parallel) t.next_free.(j) in
      let fin = start +. d_s in
      t.next_free.(j) <- fin;
      t.busy.(j) <- t.busy.(j) +. d_s;
      fin
    end
  in
  let job = t.jobs in
  t.jobs <- job + 1;
  Engine.schedule_at ~kind:t.kind t.engine ~time:finish (fun () ->
      (match t.actor with
       | Some actor ->
         let s = Engine.trace t.engine in
         if Trace.enabled s then
           Trace.instant s ~now:(Engine.now t.engine) ~actor ~cat:"cpu"
             ~name:"job_done" ~id:job
             ~attrs:
               [ ("serial", Trace.A_float w.serial);
                 ("parallel", Trace.A_float w.parallel) ]
       | None -> ());
      k ())

let charge t ~work = submit t ~work (fun () -> ())

let busy_until t = Array.fold_left Float.max 0. t.next_free

let lane_backlog t i = Float.max 0. (t.next_free.(i) -. Engine.now t.engine)

let backlog t =
  let acc = ref 0. in
  for i = 0 to t.n_cores - 1 do
    acc := !acc +. lane_backlog t i
  done;
  !acc

let busy_seconds t = Array.fold_left ( +. ) 0. t.busy

let executed_seconds t =
  let acc = ref 0. in
  for i = 0 to t.n_cores - 1 do
    acc := !acc +. lane_executed t i
  done;
  !acc

let boot t = t.m_boot

let mark t =
  { m_time = Engine.now t.engine;
    m_exec = Array.init t.n_cores (lane_executed t) }

let lane_utilization t ~since i =
  let elapsed = Engine.now t.engine -. since.m_time in
  if elapsed <= 0. then 0.
  else Float.min 1. ((lane_executed t i -. since.m_exec.(i)) /. elapsed)

let utilization t ~since =
  let elapsed = Engine.now t.engine -. since.m_time in
  if elapsed <= 0. then 0.
  else begin
    let e = ref 0. in
    for i = 0 to t.n_cores - 1 do
      e := !e +. (lane_executed t i -. since.m_exec.(i))
    done;
    Float.min 1. (!e /. (float_of_int t.n_cores *. elapsed))
  end
