(** Per-node multi-core CPU accounting.

    A node's CPU is [cores] worker lanes of equal [capacity] relative to
    one reference core (the c6i.8xlarge vCPU every {!Cost} constant is
    calibrated against).  Jobs carry {e single-core seconds} of work in
    two classes:

    - {e parallel} work (batch signature verification, public-key
      aggregation, Merkle building, dedup scans) is divisible: it is
      waterfilled over the lanes, each chunk starting as soon as its lane
      frees up, and finishes when the last chunk does;
    - {e serial} work (one pairing-based verification, a single
      signature) occupies exactly one lane for its whole duration.

    A job's completion callback fires when {e both} parts are done on
    the virtual clock — submitting is how a component models "this
    message may not leave before the crypto behind it has run".  With
    [cores = 1] the scheduler degenerates to the classic serial FIFO
    queue.  Utilization and backlog statistics feed the metrics probes
    and the resource-efficiency experiment (Fig. 10b). *)

type t

(** {2 Work records} *)

type work = { serial : float; parallel : float }
(** Single-core seconds per class; both components must be >= 0. *)

val work : serial:float -> parallel:float -> work
val serial : float -> work
(** Work that occupies one lane end to end. *)

val parallel : float -> work
(** Divisible work, waterfilled across idle lanes. *)

val zero : work
val add : work -> work -> work
val total : work -> float
(** [serial + parallel]: the job's single-core seconds regardless of
    scheduling. *)

(** {2 Construction} *)

val create :
  Engine.t -> ?cores:int -> ?capacity:float -> ?actor:int -> ?kind:string ->
  unit -> t
(** [cores] worker lanes (default 1).  [capacity] scales per-lane speed:
    a 0.5-capacity lane takes twice the reference time (default 1.0).
    With [actor] set, every job completion emits a ["cpu"]/["job_done"]
    trace instant on that actor's row in the engine's sink — the hook the
    no-send-before-completion trace invariant is checked against.
    [kind] names the {!Engine.kind} bucket job-completion events are
    attributed to by the profiler (default ["other"]). *)

val cores : t -> int

(** {2 Submitting work} *)

val submit : t -> work:work -> (unit -> unit) -> unit
(** Schedule a job; the callback runs on the virtual clock once the
    serial lane and every parallel chunk have executed.  The serial part
    is modelled as running {e after} the parallel part (verify after
    aggregate), on one of the lanes that executed it. *)

val charge : t -> work:work -> unit
(** Fire-and-forget work with no completion action (accounted the same).
    Only for pure state updates — anything that emits a message must use
    {!submit} so the send waits for the work. *)

(** {2 Accounting} *)

val busy_until : t -> float
(** Virtual time at which the whole backlog drains (max over lanes). *)

val backlog : t -> float
(** Seconds of queued-but-unexecuted work summed over lanes. *)

val lane_backlog : t -> int -> float
(** Seconds of queued work on one lane (per-lane metrics probes). *)

val busy_seconds : t -> float
(** Total work ever charged, executed or still queued, summed over
    lanes. *)

val executed_seconds : t -> float
(** Work actually executed by now (excludes the queued future).  This is
    the honest utilization numerator: lane busy intervals never have
    future gaps, so it is exact. *)

(** {2 Windowed utilization}

    A {!mark} snapshots per-lane executed work at a point in time;
    utilization over \[mark, now\] divides the work executed since by
    [cores * elapsed].  Tracking the window start this way is what makes
    post-boot windows honest — dividing lifetime busy-seconds by a late
    window overcounts. *)

type mark

val boot : t -> mark
(** The implicit mark taken at creation. *)

val mark : t -> mark

val utilization : t -> since:mark -> float
(** Mean executed-busy fraction of all lanes since the mark, in
    [0, 1]. *)

val lane_utilization : t -> since:mark -> int -> float
(** Same, for a single lane. *)
