module D = Repro_chopchop.Deployment
module Json = Repro_metrics.Json
module Trace = Repro_trace.Trace

type config = {
  underlay : string;
  servers : int;
  cores : int;
  payload : int;
  rate : float;
  app : string;
  batch : int;
  load_brokers : int;
  brokers : int;
  measure_clients : int;
  duration : float;
  warmup : float;
  cooldown : float;
  dense_clients : int;
  store : bool;
  checkpoint_every : int;
  seed : int64;
}

let underlays = [ "sequencer"; "pbft"; "hotstuff" ]
let apps = [ "none"; "payments"; "auction"; "pixelwar" ]

let default =
  { underlay = "pbft";
    servers = 4;
    cores = Repro_sim.Cost.vcpus;
    payload = 8;
    rate = 100_000.;
    app = "none";
    batch = 4096;
    load_brokers = 1;
    brokers = 0;
    measure_clients = 4;
    duration = 10.;
    warmup = 4.;
    cooldown = 2.;
    dense_clients = 1_000_000;
    store = true;
    checkpoint_every = 64;
    seed = 42L }

let underlay_of_string = function
  | "sequencer" -> Some D.Sequencer
  | "pbft" -> Some D.Pbft
  | "hotstuff" -> Some D.Hotstuff
  | _ -> None

let validate c =
  let enum what value valid =
    if List.mem value valid then Ok ()
    else
      Error
        (Printf.sprintf "unknown %s %S (valid: %s)" what value
           (String.concat ", " valid))
  in
  let positive what v = if v > 0 then Ok () else Error (what ^ " must be > 0") in
  let ( let* ) = Result.bind in
  let* () = enum "underlay" c.underlay underlays in
  let* () = enum "app" c.app apps in
  let* () = positive "servers" c.servers in
  let* () = positive "cores" c.cores in
  let* () = positive "payload" c.payload in
  let* () = positive "batch" c.batch in
  let* () = positive "load_brokers" c.load_brokers in
  let* () =
    if c.brokers >= 0 then Ok () else Error "brokers must be >= 0"
  in
  let* () = positive "measure_clients" c.measure_clients in
  let* () = positive "dense_clients" c.dense_clients in
  let* () = positive "checkpoint_every" c.checkpoint_every in
  let* () = if c.rate > 0. then Ok () else Error "rate must be > 0" in
  let* () =
    if c.duration > c.warmup +. c.cooldown then Ok ()
    else Error "duration must exceed warmup + cooldown"
  in
  Ok ()

(* Canonical field order — the sweep content hash is over exactly this
   rendering, so the order is part of the on-disk contract. *)
let to_json c =
  Json.Obj
    [ ("underlay", Json.Str c.underlay);
      ("servers", Json.Num (float_of_int c.servers));
      ("cores", Json.Num (float_of_int c.cores));
      ("payload", Json.Num (float_of_int c.payload));
      ("rate", Json.Num c.rate);
      ("app", Json.Str c.app);
      ("batch", Json.Num (float_of_int c.batch));
      ("load_brokers", Json.Num (float_of_int c.load_brokers));
      ("brokers", Json.Num (float_of_int c.brokers));
      ("measure_clients", Json.Num (float_of_int c.measure_clients));
      ("duration", Json.Num c.duration);
      ("warmup", Json.Num c.warmup);
      ("cooldown", Json.Num c.cooldown);
      ("dense_clients", Json.Num (float_of_int c.dense_clients));
      ("store", Json.Bool c.store);
      ("checkpoint_every", Json.Num (float_of_int c.checkpoint_every));
      ("seed", Json.Num (Int64.to_float c.seed)) ]

let of_json j =
  match j with
  | Json.Obj fields ->
    let known =
      [ "underlay"; "servers"; "cores"; "payload"; "rate"; "app"; "batch";
        "load_brokers"; "brokers"; "measure_clients"; "duration"; "warmup";
        "cooldown";
        "dense_clients"; "store"; "checkpoint_every"; "seed" ]
    in
    (match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
     | Some (k, _) ->
       Error
         (Printf.sprintf "unknown cell field %S (valid: %s)" k
            (String.concat ", " known))
     | None ->
       let str k d =
         match Json.member k j with
         | Some (Json.Str s) -> Ok s
         | None -> Ok d
         | Some _ -> Error (k ^ " must be a string")
       in
       let int k d =
         match Json.member k j with
         | Some v ->
           (match Json.to_int v with
            | Some i -> Ok i
            | None -> Error (k ^ " must be an integer"))
         | None -> Ok d
       in
       let num k d =
         match Json.member k j with
         | Some v ->
           (match Json.to_float v with
            | Some f -> Ok f
            | None -> Error (k ^ " must be a number"))
         | None -> Ok d
       in
       let bool k d =
         match Json.member k j with
         | Some (Json.Bool b) -> Ok b
         | None -> Ok d
         | Some _ -> Error (k ^ " must be a boolean")
       in
       let ( let* ) = Result.bind in
       let* underlay = str "underlay" default.underlay in
       let* servers = int "servers" default.servers in
       let* cores = int "cores" default.cores in
       let* payload = int "payload" default.payload in
       let* rate = num "rate" default.rate in
       let* app = str "app" default.app in
       let* batch = int "batch" default.batch in
       let* load_brokers = int "load_brokers" default.load_brokers in
       let* brokers = int "brokers" default.brokers in
       let* measure_clients = int "measure_clients" default.measure_clients in
       let* duration = num "duration" default.duration in
       let* warmup = num "warmup" default.warmup in
       let* cooldown = num "cooldown" default.cooldown in
       let* dense_clients = int "dense_clients" default.dense_clients in
       let* store = bool "store" default.store in
       let* checkpoint_every = int "checkpoint_every" default.checkpoint_every in
       let* seed = int "seed" (Int64.to_int default.seed) in
       let c =
         { underlay; servers; cores; payload; rate; app; batch; load_brokers;
           brokers; measure_clients; duration; warmup; cooldown; dense_clients;
           store; checkpoint_every; seed = Int64.of_int seed }
       in
       let* () = validate c in
       Ok c)
  | _ -> Error "cell config must be a JSON object"

let params_of c =
  let underlay =
    match underlay_of_string c.underlay with
    | Some u -> u
    | None -> failwith ("Cell: unknown underlay " ^ c.underlay)
  in
  { Chopchop_run.default with
    n_servers = c.servers;
    cores = c.cores;
    underlay;
    rate = c.rate;
    batch_count = c.batch;
    msg_bytes = c.payload;
    n_load_brokers = c.load_brokers;
    n_brokers = c.brokers;
    measure_clients = c.measure_clients;
    duration = c.duration;
    warmup = c.warmup;
    cooldown = c.cooldown;
    dense_clients = c.dense_clients;
    seed = c.seed;
    store = c.store;
    checkpoint_every = c.checkpoint_every }

type outcome = {
  metrics : (string * float) list;
  info : (string * string) list;
  sim_events : int;
  sim_seconds : float;
  prof : Repro_prof.Prof.report option;
}

type app_driver = {
  ad_apply : Repro_chopchop.Proto.delivery -> int;
  ad_ops : unit -> int;
  ad_digest : unit -> string;
}

let app_driver = function
  | "none" -> None
  | "payments" ->
    let t = Repro_apps.Payments.create () in
    Some
      { ad_apply = Repro_apps.Payments.apply_delivery t;
        ad_ops = (fun () -> Repro_apps.Payments.ops_applied t);
        ad_digest = (fun () -> Repro_apps.Payments.digest t) }
  | "auction" ->
    let t = Repro_apps.Auction.create () in
    Some
      { ad_apply = Repro_apps.Auction.apply_delivery t;
        ad_ops = (fun () -> Repro_apps.Auction.ops_applied t);
        ad_digest = (fun () -> Repro_apps.Auction.digest t) }
  | "pixelwar" ->
    let t = Repro_apps.Pixelwar.create () in
    Some
      { ad_apply = Repro_apps.Pixelwar.apply_delivery t;
        ad_ops = (fun () -> Repro_apps.Pixelwar.ops_applied t);
        ad_digest = (fun () -> Repro_apps.Pixelwar.digest t) }
  | app -> failwith ("Cell: unknown app " ^ app)

let counter counters cat name =
  match List.find_opt (fun (c, n, _) -> c = cat && n = name) counters with
  | Some (_, _, v) -> v
  | None -> 0

let run ?(profile = false) c =
  (match validate c with Ok () -> () | Error e -> failwith ("Cell: " ^ e));
  let driver = app_driver c.app in
  let params =
    match driver with
    | None -> params_of c
    | Some d ->
      { (params_of c) with
        on_delivery = Some (fun srv del -> if srv = 0 then ignore (d.ad_apply del)) }
  in
  let params = { params with Chopchop_run.profile } in
  let result, breakdown, sink = Latency_breakdown.capture ~params () in
  let counters = Trace.Sink.counters sink in
  let e2e = Latency_breakdown.e2e breakdown in
  let decisions = float_of_int (max 1 result.Chopchop_run.decisions) in
  let payload_bytes =
    float_of_int
      (max 1 (result.Chopchop_run.delivered_messages * params.Chopchop_run.msg_bytes))
  in
  let fcounter cat name = float_of_int (counter counters cat name) in
  (* `bench json`'s gated metrics first, with identical derivations —
     a sweep cell at the bench config is bit-identical to `bench json`. *)
  let metrics =
    [ ("throughput_ops", result.Chopchop_run.throughput);
      ("latency_p50_s", Trace.Hist.percentile e2e 0.50);
      ("latency_p99_s", Trace.Hist.percentile e2e 0.99);
      ("sig_verifies_per_decision", fcounter "crypto" "verify_ops" /. decisions);
      ("wire_bytes_per_payload_byte", fcounter "net" "bytes" /. payload_bytes);
      ( "wal_bytes_per_payload_byte",
        float_of_int result.Chopchop_run.wal_bytes /. payload_bytes );
      ( "broker_cpu_busy_s_per_payload_byte",
        result.Chopchop_run.broker_cpu_busy_s /. payload_bytes );
      ("offered_ops", result.Chopchop_run.offered);
      ("latency_mean_s", result.Chopchop_run.latency_mean);
      ("delivered_messages", float_of_int result.Chopchop_run.delivered_messages);
      ("decisions", float_of_int result.Chopchop_run.decisions);
      ("server_cpu", result.Chopchop_run.server_cpu);
      ("network_rate_bps", result.Chopchop_run.network_rate_bps);
      ("goodput_bps", result.Chopchop_run.goodput_bps) ]
  in
  let metrics, info =
    match driver with
    | None -> (metrics, [])
    | Some d ->
      ( metrics @ [ ("app_ops", float_of_int (d.ad_ops ())) ],
        [ ("app_digest", Repro_crypto.Sha256.to_hex (d.ad_digest ())) ] )
  in
  { metrics;
    info;
    sim_events = counter counters "sim" "steps";
    sim_seconds = params.Chopchop_run.duration +. 15.;
    prof = result.Chopchop_run.prof }
