(* Engine self-benchmark: the calendar-queue + pooled-event hot loop
   against the legacy binary heap, on the same deterministic workload.

   The workload is pure queue churn shaped like a saturated deployment:
   a deep standing queue (tens of thousands of events in flight), every
   dispatch rescheduling itself at a pre-drawn delay (mostly near-future,
   a small tail far enough out to land in the calendar's overflow heap),
   plus a rotating band of timers that are created and cancelled before
   or after their deadlines — the cancel/stale-handle paths run too.

   Two claims, separated on purpose:

   - {e Correctness is gated}: both queue implementations consume the
     same pre-drawn delay stream, and an order-sensitive rolling
     checksum over (dispatch index, clock) must match exactly — any
     reordering, dropped or duplicated event diverges it.  Pool
     behaviour is gated through [allocs_per_event] (fresh records per
     dispatched event), which is deterministic.
   - {e Speed is informational in the bench} (wall time is machine
     noise) but hard-asserted in the CLI path: the calendar loop must
     clear 2x the heap's events-per-CPU-second on the quick shape. *)

module Engine = Repro_sim.Engine
module Rng = Repro_sim.Rng

type params = {
  depth : int; (* standing queue depth (events in flight) *)
  total : int; (* live dispatches per run *)
  reps : int; (* timing repetitions; best-of to tame scheduler noise *)
}

let params = function
  | Figures.Quick -> { depth = 65_536; total = 400_000; reps = 3 }
  | Figures.Full -> { depth = 200_000; total = 2_000_000; reps = 3 }

type result = {
  events : int; (* live dispatches observed (identical across queues) *)
  order_match : bool; (* rolling checksums identical, heap vs calendar *)
  checksum : int;
  heap_cpu_s : float; (* best-of-reps CPU seconds, informational *)
  cal_cpu_s : float;
  speedup : float; (* heap_cpu_s / cal_cpu_s *)
  pool_fresh : int; (* calendar run: records ever allocated *)
  pool_reused : int; (* calendar run: allocations served by the pool *)
  allocs_per_event : float; (* fresh / dispatches — the pooling proxy *)
}

(* Pre-drawn delay stream, shared by both runs: mostly sub-second (the
   calendar ring spans 1.024 s), ~2% beyond the ring horizon to keep the
   overflow heap and its migration path hot, a pinch of zero-delay events
   for same-slot ties. *)
let make_delays () =
  let rng = Rng.create 0xC0FFEE13L in
  Array.init 8192 (fun _ ->
      let r = Rng.float rng 1.0 in
      if r < 0.02 then 1.5 +. (Rng.float rng 20.0)
      else if r < 0.05 then 0.0
      else Rng.float rng 0.9)

let run_one ~queue ~p ~delays =
  let engine = Engine.create ~seed:7L ~queue () in
  let fired = ref 0 in
  let spawned = ref 0 in
  let di = ref 0 in
  let checksum = ref 0 in
  let next_delay () =
    let d = delays.(!di land 8191) in
    incr di;
    d
  in
  let timers = Array.make 256 None in
  let rec node () =
    let now = Engine.now engine in
    (* Order-sensitive: a polynomial roll over (index, clock bits). *)
    checksum :=
      (!checksum * 1000003)
      lxor !fired
      lxor Int64.to_int (Int64.bits_of_float now);
    incr fired;
    if !spawned < p.total then begin
      incr spawned;
      Engine.schedule engine ~delay:(next_delay ()) node
    end;
    (* Timer churn: every third dispatch arms a timer into a rotating
       band, cancelling the previous occupant — which may have already
       fired (stale handle, generation-guarded) or still be queued (live
       cancel: the closure must be droppable and the slot skippable). *)
    if !fired mod 3 = 0 then begin
      let slot = !fired / 3 land 255 in
      (match timers.(slot) with
       | Some tm -> Engine.cancel tm
       | None -> ());
      let tm =
        Engine.timer engine ~delay:(next_delay ()) (fun () ->
            checksum := (!checksum * 31) lxor 0x5EED)
      in
      timers.(slot) <- Some tm
    end
  in
  for _ = 1 to p.depth do
    incr spawned;
    Engine.schedule engine ~delay:(next_delay ()) node
  done;
  let t0 = Sys.time () in
  Engine.run engine;
  let cpu = Sys.time () -. t0 in
  (cpu, !fired, !checksum, Engine.pool_stats engine)

(* Identical event streams have identical deterministic outputs on every
   rep, so reps only refine the timing: keep rep 0's counters, best-of
   the CPU seconds. *)
let time_queue ~queue ~p ~delays =
  let best = ref infinity and fired = ref 0 and cs = ref 0 in
  let pool = ref (0, 0) in
  for rep = 0 to p.reps - 1 do
    let cpu, f, c, pl = run_one ~queue ~p ~delays in
    if rep = 0 then begin
      fired := f;
      cs := c;
      pool := pl
    end
    else if f <> !fired || c <> !cs then
      failwith "engine-speed: nondeterministic run (same queue, same seed)";
    if cpu < !best then best := cpu
  done;
  (!best, !fired, !cs, !pool)

let measure ~scale =
  let p = params scale in
  let delays = make_delays () in
  let heap_cpu, h_fired, h_cs, _ = time_queue ~queue:Engine.Heap ~p ~delays in
  let cal_cpu, c_fired, c_cs, (fresh, reused) =
    time_queue ~queue:Engine.Calendar ~p ~delays
  in
  if h_fired <> c_fired then
    failwith
      (Printf.sprintf "engine-speed: dispatch counts diverge (heap %d, calendar %d)"
         h_fired c_fired);
  { events = c_fired;
    order_match = h_cs = c_cs;
    checksum = c_cs;
    heap_cpu_s = heap_cpu;
    cal_cpu_s = cal_cpu;
    speedup = heap_cpu /. Float.max 1e-9 cal_cpu;
    pool_fresh = fresh;
    pool_reused = reused;
    allocs_per_event = float_of_int fresh /. float_of_int (max 1 c_fired) }

let print fmt scale =
  Format.fprintf fmt
    "@.=== engine speed — calendar queue + event pool vs legacy heap ===@.";
  let p = params scale in
  let r = measure ~scale in
  Format.fprintf fmt
    "  churn: depth %d, %d live dispatches (+ timer create/cancel band)@."
    p.depth r.events;
  Format.fprintf fmt "  heap     : %8.3f CPU s  (%8.0f events/s)@." r.heap_cpu_s
    (float_of_int r.events /. Float.max 1e-9 r.heap_cpu_s);
  Format.fprintf fmt "  calendar : %8.3f CPU s  (%8.0f events/s)@." r.cal_cpu_s
    (float_of_int r.events /. Float.max 1e-9 r.cal_cpu_s);
  Format.fprintf fmt
    "  -> %.2fx; dispatch order %s; pool %d fresh / %d reused (%.4f allocs/event)@."
    r.speedup
    (if r.order_match then "identical" else "DIVERGED")
    r.pool_fresh r.pool_reused r.allocs_per_event;
  if not r.order_match then
    failwith "engine-speed: calendar dispatch order diverged from the heap";
  (* Fresh records scale with the standing queue depth (a record can only
     be reused once its event fires), not with total dispatches: the pool
     is doing its job when reuse dominates allocation. *)
  if r.pool_reused < 2 * r.pool_fresh then
    failwith
      (Printf.sprintf "engine-speed: pool ineffective (%d fresh, %d reused)"
         r.pool_fresh r.pool_reused);
  if scale = Figures.Quick && r.speedup < 2.0 then
    failwith
      (Printf.sprintf
         "engine-speed: calendar only %.2fx over the heap baseline (need 2x)"
         r.speedup)
