module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Stats = Repro_sim.Stats
module Cpu = Repro_sim.Cpu
module D = Repro_chopchop.Deployment
module Wire = Repro_chopchop.Wire
module Server = Repro_chopchop.Server
module Client = Repro_chopchop.Client
module Load_broker = Repro_workload.Load_broker

type params = {
  n_servers : int;
  cores : int; (* worker lanes per server/broker CPU *)
  underlay : D.underlay;
  rate : float;
  batch_count : int;
  msg_bytes : int;
  distill_fraction : float;
  n_load_brokers : int;
  n_brokers : int; (* fleet size: 0 keeps the paper roster, no lib/fleet *)
  measure_clients : int;
  cohort : bool;
      (* model the measure clients as one flat-array cohort
         (Repro_workload.Cohort) instead of per-Client.t records;
         bit-identical on the same seed *)
  duration : float;
  warmup : float;
  cooldown : float;
  crash : (float * int list) option;
  dense_clients : int;
  seed : int64;
  flush_period : float;
  reduce_timeout : float;
  witness_margin : int option; (* None: the paper's per-size default *)
  store : bool; (* per-server durable storage model (lib/store) *)
  checkpoint_every : int; (* batches between checkpoints when [store] *)
  trace : Repro_trace.Trace.Sink.t;
  metrics : Repro_metrics.Metrics.t option;
  on_delivery : (int -> Repro_chopchop.Proto.delivery -> unit) option;
  profile : bool; (* attach the engine profiler (lib/prof) for this run *)
}

let default =
  { n_servers = 64; cores = Repro_sim.Cost.vcpus; underlay = D.Pbft;
    rate = 1_000_000.; batch_count = 65_536;
    msg_bytes = 8; distill_fraction = 1.0; n_load_brokers = 2; n_brokers = 0;
    measure_clients = 8; cohort = false;
    duration = 20.; warmup = 6.; cooldown = 4.;
    crash = None; dense_clients = 257_000_000; seed = 42L;
    flush_period = 1.0; reduce_timeout = 1.0; witness_margin = None;
    store = false; checkpoint_every = 64;
    trace = Repro_trace.Trace.Sink.null (); metrics = None;
    on_delivery = None; profile = false }

type result = {
  offered : float;
  throughput : float;
  latency_mean : float;
  latency_std : float;
  input_rate_bps : float;
  network_rate_bps : float;
  goodput_bps : float;
  server_cpu : float;
  broker_cpu_busy_s : float; (* CPU seconds charged across all brokers *)
  stored_bytes_max : int;
  delivered_messages : int; (* total at server 0, whole run *)
  decisions : int; (* batches delivered at server 0, whole run *)
  wal_bytes : int; (* WAL appended at server 0; 0 when store is off *)
  prof : Repro_prof.Prof.report option; (* present iff [profile] was set *)
}

let useful_bytes_per_msg ~clients ~msg_bytes =
  Wire.distilled_entry_bytes ~clients ~msg_bytes

let run p =
  let base = D.paper_config ~n_servers:p.n_servers ~underlay:p.underlay in
  let cfg =
    { base with
      cores = p.cores;
      n_brokers = (if p.n_brokers > 0 then p.n_brokers else base.n_brokers);
      fleet =
        (if p.n_brokers > 0 then Some Repro_fleet.Fleet.Hash else base.fleet);
      dense_clients = p.dense_clients;
      max_batch = p.batch_count;
      seed = p.seed;
      flush_period = p.flush_period;
      reduce_timeout = p.reduce_timeout;
      witness_margin = Option.value p.witness_margin ~default:base.witness_margin;
      store_enabled = p.store;
      checkpoint_every = p.checkpoint_every;
      trace = p.trace }
  in
  let d = D.create cfg in
  let engine = D.engine d in
  (* Profiling is write-only observation (lib/prof): attaching it changes
     no event, no RNG draw, no delivery — proven bit-identical by
     test_prof. *)
  let prof = if p.profile then Some (Repro_prof.Prof.attach engine) else None in
  (* Load brokers at OVH, splitting the offered rate evenly.  Each one
     must ship every batch to all servers, so its egress NIC bounds how
     much load it can generate: provision enough of them (the paper uses
     up to 64 OVH machines). *)
  let batches_per_s = p.rate /. float_of_int p.batch_count in
  let batch_bytes =
    Wire.distilled_batch_bytes ~clients:p.dense_clients ~count:p.batch_count
      ~msg_bytes:p.msg_bytes
      ~stragglers:
        (int_of_float
           (ceil ((1. -. p.distill_fraction) *. float_of_int p.batch_count)))
  in
  let lb_egress_bps = Repro_sim.Net.server_default_egress_bps in
  let needed =
    int_of_float
      (ceil
         (batches_per_s *. float_of_int (batch_bytes * 8 * p.n_servers)
          /. (lb_egress_bps *. 0.7)))
  in
  let n_load_brokers = max p.n_load_brokers (max 1 needed) in
  let lb_regions = Array.of_list Region.load_broker_regions in
  let loads =
    List.init n_load_brokers (fun i ->
        let lb_cfg =
          (* Few ranges per load broker: replaying a range with a higher
             round tag is fresh traffic, and a compact id space keeps the
             directory's lazy prefix sums small. *)
          { (Load_broker.default_config
               ~first_id:(i * 4 * p.batch_count)) with
            rate = batches_per_s /. float_of_int n_load_brokers;
            batch_count = p.batch_count;
            msg_bytes = p.msg_bytes;
            distill_fraction = p.distill_fraction;
            ranges = 4 }
        in
        Load_broker.create ~deployment:d
          ~region:lb_regions.(i mod Array.length lb_regions)
          ~config:lb_cfg ())
  in
  (* Measurement clients broadcasting back-to-back small messages through
     the real (distilling) brokers. *)
  let lat = Stats.Summary.create () in
  let lat_hist =
    Option.map (fun m -> Repro_metrics.Metrics.histogram m "latency.e2e") p.metrics
  in
  let win_start = p.warmup and win_end = p.duration -. p.cooldown in
  let record_latency latency =
    let now = Engine.now engine in
    if now >= win_start && now <= win_end then begin
      Stats.Summary.add lat latency;
      Option.iter (fun h -> Repro_trace.Trace.Hist.add h latency) lat_hist
    end
  in
  (* Measure identities sit at the top of the id space, far from the load
     ranges.  Both models pump back-to-back: a new message as soon as the
     previous one completes would need a completion callback per message;
     the client queue does it — keep a couple of messages in flight
     locally. *)
  let measure_identity i = p.dense_clients - 1 - i in
  if p.cohort then begin
    let coh =
      Repro_workload.Cohort.create ~deployment:d ~members:p.measure_clients
        ~identity:measure_identity
        ~on_delivered:(fun _ _ ~latency -> record_latency latency)
        ()
    in
    let k_pump = Engine.kind engine "exp.pump" in
    let rec pump m () =
      if Engine.now engine < p.duration then begin
        if Repro_workload.Cohort.pending coh m < 2 then
          Repro_workload.Cohort.broadcast coh m (String.make p.msg_bytes 'x');
        Engine.schedule ~kind:k_pump engine ~delay:0.5 (pump m)
      end
    in
    for m = 0 to p.measure_clients - 1 do
      Engine.schedule ~kind:k_pump engine ~delay:0.2 (pump m)
    done
  end
  else begin
    let clients =
      List.init p.measure_clients (fun i ->
          D.add_client d ~identity:(measure_identity i)
            ~on_delivered:(fun _ ~latency -> record_latency latency)
            ())
    in
    let k_pump = Engine.kind engine "exp.pump" in
    let rec pump c () =
      if Engine.now engine < p.duration then begin
        if Client.pending c < 2 then
          Client.broadcast c (String.make p.msg_bytes 'x');
        Engine.schedule ~kind:k_pump engine ~delay:0.5 (pump c)
      end
    in
    List.iter
      (fun c -> Engine.schedule ~kind:k_pump engine ~delay:0.2 (pump c))
      clients
  end;
  (* Throughput window accounting on server 0 deliveries. *)
  let tp = Stats.Throughput.create engine ~warmup:p.warmup ~cooldown:p.cooldown ~duration:p.duration in
  D.server_deliver_hook d (fun srv del ->
      if srv = 0 then Stats.Throughput.record tp (Repro_chopchop.Proto.delivery_count del);
      match p.on_delivery with Some f -> f srv del | None -> ());
  (* Crash schedule. *)
  (match p.crash with
   | Some (time, victims) ->
     Engine.schedule engine ~delay:time (fun () ->
         List.iter (fun i -> D.crash_server d i) victims)
   | None -> ());
  (* Ingress byte sampling at the window boundaries (surviving servers). *)
  let alive i =
    match p.crash with Some (_, vs) -> not (List.mem i vs) | None -> true
  in
  let servers_alive = List.filter alive (List.init p.n_servers Fun.id) in
  let ingress_at_start = Array.make p.n_servers 0 in
  Engine.schedule engine ~delay:p.warmup (fun () ->
      List.iter (fun i -> ingress_at_start.(i) <- D.server_ingress_bytes d i) servers_alive);
  let ingress_at_end = Array.make p.n_servers 0 in
  let stored_max = ref 0 in
  (* Honest windowed server CPU: mark per-lane executed work at warmup,
     read the utilization over [warmup, duration - cooldown]. *)
  let cpu_marks = Array.make p.n_servers None in
  Engine.schedule engine ~delay:p.warmup (fun () ->
      List.iter
        (fun i -> cpu_marks.(i) <- Some (Cpu.mark (D.server_cpu d i)))
        servers_alive);
  let cpu_at_end = Array.make p.n_servers 0. in
  Engine.schedule engine ~delay:(p.duration -. p.cooldown) (fun () ->
      List.iter
        (fun i ->
          match cpu_marks.(i) with
          | Some since ->
            cpu_at_end.(i) <- Cpu.utilization (D.server_cpu d i) ~since
          | None -> ())
        servers_alive;
      List.iter (fun i -> ingress_at_end.(i) <- D.server_ingress_bytes d i) servers_alive);
  let k_sampler = Engine.kind engine "exp.sampler" in
  Engine.every ~kind:k_sampler engine ~period:1.0 ~until:p.duration (fun () ->
      Array.iter
        (fun sv -> stored_max := max !stored_max (Server.stored_bytes sv))
        (D.servers d));
  (* Time-series sampling: probes over every node role, ticked on the sim
     clock so two same-seed runs produce bit-identical series. *)
  (match p.metrics with
   | None -> ()
   | Some m ->
     let module M = Repro_metrics.Metrics in
     let module Trace = Repro_trace.Trace in
     if Trace.enabled p.trace then M.mirror m ~sink:p.trace ~actor:9999;
     let n_alive () = float_of_int (List.length servers_alive) in
     M.rate_probe m "throughput.ops" ~labels:[ ("role", "server") ] (fun () ->
         float_of_int (Server.delivered_messages (D.servers d).(0)));
     let net_bytes = Trace.Sink.counter p.trace ~cat:"net" ~name:"bytes" in
     M.rate_probe m "net.bytes_per_s" ~labels:[ ("role", "wan") ] (fun () ->
         float_of_int (Trace.Counter.value net_bytes));
     (* Utilization probes are windowed over the sampling interval: each
        probe re-marks its CPUs, so a sample reports the busy fraction
        since the previous sample, not a lifetime average. *)
     let probe_marks =
       Array.init p.n_servers (fun i -> Cpu.mark (D.server_cpu d i))
     in
     M.probe m "cpu.util" ~labels:[ ("role", "server") ] (fun () ->
         List.fold_left
           (fun acc i ->
             let cpu = D.server_cpu d i in
             let u = Cpu.utilization cpu ~since:probe_marks.(i) in
             probe_marks.(i) <- Cpu.mark cpu;
             acc +. u)
           0. servers_alive
         /. n_alive ());
     M.probe m "cpu.backlog_s" ~labels:[ ("role", "server") ] (fun () ->
         List.fold_left
           (fun acc i -> Float.max acc (D.server_cpu_backlog d i))
           0. servers_alive);
     (* Per-lane series for server 0: lane imbalance (a serial hot lane
        next to idle ones) is invisible in the machine-wide average. *)
     let cpu0 = D.server_cpu d 0 in
     for lane = 0 to Cpu.cores cpu0 - 1 do
       let lane_mark = ref (Cpu.mark cpu0) in
       M.probe m "cpu.lane_util"
         ~labels:[ ("role", "server"); ("lane", string_of_int lane) ]
         (fun () ->
           let u = Cpu.lane_utilization cpu0 ~since:!lane_mark lane in
           lane_mark := Cpu.mark cpu0;
           u);
       M.probe m "cpu.lane_backlog_s"
         ~labels:[ ("role", "server"); ("lane", string_of_int lane) ]
         (fun () -> Cpu.lane_backlog cpu0 lane)
     done;
     let broker_marks =
       Array.init (D.n_brokers d) (fun i -> Cpu.mark (D.broker_cpu d i))
     in
     M.probe m "cpu.util" ~labels:[ ("role", "broker") ] (fun () ->
         let acc = ref 0. in
         for i = 0 to D.n_brokers d - 1 do
           (* Brokers added after probe registration (none today) would
              need re-initialised marks; guard on the snapshot length. *)
           if i < Array.length broker_marks then begin
             let cpu = D.broker_cpu d i in
             acc := !acc +. Cpu.utilization cpu ~since:broker_marks.(i);
             broker_marks.(i) <- Cpu.mark cpu
           end
         done;
         !acc /. float_of_int (max 1 (Array.length broker_marks)));
     M.probe m "cpu.backlog_s" ~labels:[ ("role", "broker") ] (fun () ->
         let acc = ref 0. in
         for i = 0 to D.n_brokers d - 1 do
           acc := Float.max !acc (Cpu.backlog (D.broker_cpu d i))
         done;
         !acc);
     M.probe m "order_queue.depth" ~labels:[ ("role", "server") ] (fun () ->
         List.fold_left
           (fun acc i ->
             Stdlib.max acc (Server.order_queue_depth (D.servers d).(i)))
           0 servers_alive
         |> float_of_int);
     let each_broker f =
       let acc = ref 0 in
       for i = 0 to D.n_brokers d - 1 do
         acc := !acc + f (D.broker d i)
       done;
       float_of_int !acc
     in
     M.probe m "batches.in_flight" ~labels:[ ("role", "broker") ] (fun () ->
         each_broker Repro_chopchop.Broker.batches_in_flight);
     M.probe m "pool.depth" ~labels:[ ("role", "broker") ] (fun () ->
         each_broker Repro_chopchop.Broker.pool_depth);
     (* Satellite: ring-sink drops as a live gauge, so a truncated trace
        is visible in the metrics themselves. *)
     M.probe m "trace.dropped" ~labels:[ ("role", "trace") ] (fun () ->
         float_of_int (Trace.Sink.dropped p.trace));
     (* Queue pressure inside the engine itself: the live depth plus its
        all-time high-water mark (pressure between samples is invisible
        to a periodic gauge; the envelope is not). *)
     M.probe m "engine.queue_depth" ~labels:[ ("role", "engine") ] (fun () ->
         float_of_int (Engine.pending engine));
     M.probe m "engine.max_queue_depth" ~labels:[ ("role", "engine") ]
       (fun () -> float_of_int (Engine.max_pending engine));
     if p.store then begin
       M.probe m "disk.backlog_s" ~labels:[ ("role", "server") ] (fun () ->
           List.fold_left
             (fun acc i -> Float.max acc (D.server_disk_backlog d i))
             0. servers_alive);
       M.rate_probe m "wal.bytes_per_s" ~labels:[ ("role", "server") ]
         (fun () -> float_of_int (D.server_wal_bytes d 0));
       M.probe m "snapshot.bytes" ~labels:[ ("role", "server") ] (fun () ->
           float_of_int (D.server_snapshot_bytes d 0))
     end;
     (* ~inclusive:false: a sample landing exactly on [duration] would
        read the post-run world (load stopped, queues drained) into the
        last row of the series. *)
     Engine.every ~kind:k_sampler ~inclusive:false engine ~period:(M.period m)
       ~until:p.duration (fun () -> M.sample m ~now:(Engine.now engine)));
  (* Start the load. *)
  List.iteri
    (fun i lb ->
      let phase =
        float_of_int i /. float_of_int n_load_brokers
        /. Float.max batches_per_s 1.
        *. float_of_int n_load_brokers
      in
      Load_broker.start lb ~until:p.duration ~phase ())
    loads;
  D.run d ~until:(p.duration +. 15.);
  let span = win_end -. win_start in
  let net_rate =
    let sum =
      List.fold_left
        (fun acc i -> acc + (ingress_at_end.(i) - ingress_at_start.(i)))
        0 servers_alive
    in
    float_of_int sum /. float_of_int (List.length servers_alive) /. span
  in
  let per_msg = useful_bytes_per_msg ~clients:p.dense_clients ~msg_bytes:p.msg_bytes in
  let throughput = Stats.Throughput.rate tp in
  let cpu =
    let sum = List.fold_left (fun acc i -> acc +. cpu_at_end.(i)) 0. servers_alive in
    sum /. float_of_int (List.length servers_alive)
  in
  let broker_cpu_busy_s =
    let acc = ref 0. in
    for i = 0 to D.n_brokers d - 1 do
      acc := !acc +. Cpu.busy_seconds (D.broker_cpu d i)
    done;
    !acc
  in
  (* Fold the run-wide trace counters (net bytes, crypto ops, engine
     steps, server deliveries) into the registry as end-of-run gauges,
     so one snapshot carries everything. *)
  (match p.metrics with
   | None -> ()
   | Some m ->
     let module M = Repro_metrics.Metrics in
     List.iter
       (fun (cat, name, v) ->
         M.Gauge.set (M.gauge m (cat ^ "." ^ name)) (float_of_int v))
       (Repro_trace.Trace.Sink.counters p.trace);
     M.Gauge.set (M.gauge m "run.stored_bytes_max") (float_of_int !stored_max));
  { offered = p.rate;
    throughput;
    latency_mean = Stats.Summary.mean lat;
    latency_std = Stats.Summary.stddev lat;
    input_rate_bps = p.rate *. per_msg;
    network_rate_bps = net_rate;
    goodput_bps = throughput *. per_msg;
    server_cpu = cpu;
    broker_cpu_busy_s;
    stored_bytes_max = !stored_max;
    delivered_messages = Server.delivered_messages (D.servers d).(0);
    decisions = Server.delivery_counter (D.servers d).(0);
    wal_bytes = D.server_wal_bytes d 0;
    prof =
      Option.map
        (fun pr ->
          let r = Repro_prof.Prof.report pr in
          Repro_prof.Prof.detach pr;
          r)
        prof }

let pp_result fmt r =
  Format.fprintf fmt
    "offered %.3g op/s -> %.3g op/s, lat %.2f±%.2f s, in %.3g B/s, net %.3g B/s, good %.3g B/s, cpu %.1f%%"
    r.offered r.throughput r.latency_mean r.latency_std r.input_rate_bps
    r.network_rate_bps r.goodput_bps (100. *. r.server_cpu)
