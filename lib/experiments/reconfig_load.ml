(* Reconfiguration under load: the dynamic-membership cost picture.

   A Sequencer-underlay deployment with durable stores and one spare slot
   runs a sustained dense load (Load_broker batches) plus a few
   measurement clients whose arrivals follow a heavy-tailed (Pareto)
   process.  Mid-run a spare slot joins through an ordered Reconfigure —
   bootstrapping via cold-restart state transfer — and later a founding
   member leaves.  Three throughput windows (before / across the
   reconfigurations / after) quantify the disruption, and the join→
   caught-up gap gives the bring-up cost of a new replica under load.

   The paper deploys a fixed committee (§6.1); this experiment measures
   what the ordered-reconfiguration extension costs on top of it. *)

module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Stats = Repro_sim.Stats
module Rng = Repro_sim.Rng
module D = Repro_chopchop.Deployment
module Server = Repro_chopchop.Server
module Client = Repro_chopchop.Client
module Load_broker = Repro_workload.Load_broker
module Generators = Repro_workload.Generators

type params = {
  n_servers : int; (* founding members; capacity is one more *)
  rate : float; (* offered dense load, msg/s *)
  batch_count : int;
  dense_clients : int;
  duration : float;
  t_join : float; (* spare slot joins (ordered) *)
  t_leave : float; (* last founding slot leaves (ordered) *)
  seed : int64;
}

let params = function
  | Figures.Quick ->
    { n_servers = 4; rate = 20_000.; batch_count = 1_024;
      dense_clients = 1_000_000; duration = 30.; t_join = 10.; t_leave = 20.;
      seed = 42L }
  | Figures.Full ->
    { n_servers = 7; rate = 100_000.; batch_count = 4_096;
      dense_clients = 10_000_000; duration = 45.; t_join = 14.; t_leave = 30.;
      seed = 42L }

type result = {
  offered : float;
  tput_before : float; (* steady state, msg/s at server 0 *)
  tput_reconfig : float; (* join .. leave window *)
  tput_after : float; (* shrunk committee, post-settling *)
  join_recovery_s : float; (* join order -> joiner caught up *)
  final_epoch : int; (* ordered changes applied everywhere *)
  client_latency_mean : float; (* measurement clients, whole run *)
}

let run ?(scale = Figures.Quick) () =
  let p = params scale in
  let cfg =
    { (D.paper_config ~n_servers:p.n_servers ~underlay:D.Sequencer) with
      D.spare_servers = 1;
      store_enabled = true;
      checkpoint_every = 16;
      dense_clients = p.dense_clients;
      max_batch = p.batch_count;
      seed = p.seed }
  in
  let d = D.create cfg in
  let engine = D.engine d in
  let joiner = p.n_servers and leaver = p.n_servers - 1 in
  (* Sustained dense load for the whole run. *)
  let lb =
    Load_broker.create ~deployment:d ~region:(List.hd Region.load_broker_regions)
      ~config:
        { (Load_broker.default_config ~first_id:0) with
          rate = p.rate /. float_of_int p.batch_count;
          batch_count = p.batch_count;
          ranges = 4 }
      ()
  in
  Load_broker.start lb ~until:p.duration ();
  (* Measurement clients with heavy-tailed arrivals: live traffic keeps
     landing while the roster changes underneath it. *)
  let lat = Stats.Summary.create () in
  let rng = Rng.create (Int64.logxor p.seed 0x7ec0_4f16L) in
  for i = 0 to 1 do
    let c =
      D.add_client d
        ~identity:(p.dense_clients - 1 - i) (* top of the id space *)
        ~on_delivered:(fun _ ~latency -> Stats.Summary.add lat latency)
        ()
    in
    let k = ref 0 in
    Generators.drive ~engine ~rng
      ~arrival:(Generators.Pareto { rate = 1.5; alpha = 1.5 })
      ~until:(p.duration -. 5.)
      ~fire:(fun () ->
        incr k;
        Client.broadcast c (Printf.sprintf "probe:%d:%d" i !k))
      ()
  done;
  (* The ordered reconfigurations. *)
  Engine.schedule engine ~delay:p.t_join (fun () -> D.join_server d joiner);
  Engine.schedule engine ~delay:p.t_leave (fun () -> D.leave_server d leaver);
  (* Join bring-up: probe until the joiner reports caught up. *)
  let recovery = ref Float.nan in
  let rec probe () =
    if D.server_catching_up d joiner then
      Engine.schedule engine ~delay:0.25 probe
    else recovery := Engine.now engine -. p.t_join
  in
  Engine.schedule engine ~delay:(p.t_join +. 0.3) probe;
  (* Throughput windows at server 0 (never leaves: it is the sequencing
     node). *)
  let delivered () = Server.delivered_messages (D.servers d).(0) in
  let snap = Hashtbl.create 8 in
  let mark name time =
    Engine.schedule engine ~delay:time (fun () ->
        Hashtbl.replace snap name (delivered ()))
  in
  let w0 = 2.0 in
  mark "w0" w0;
  mark "join" p.t_join;
  mark "leave" p.t_leave;
  mark "settle" (p.t_leave +. 2.);
  mark "end" p.duration;
  D.run d ~until:(p.duration +. 10.);
  let v name = float_of_int (Hashtbl.find snap name) in
  { offered = p.rate;
    tput_before = (v "join" -. v "w0") /. (p.t_join -. w0);
    tput_reconfig = (v "leave" -. v "join") /. (p.t_leave -. p.t_join);
    tput_after = (v "end" -. v "settle") /. (p.duration -. p.t_leave -. 2.);
    join_recovery_s = !recovery;
    final_epoch = D.server_epoch d 0;
    client_latency_mean = Stats.Summary.mean lat }

let metrics ~scale = run ~scale ()

let print fmt scale =
  let r = metrics ~scale in
  let p = params scale in
  Format.fprintf fmt
    "reconfig-load: ordered join (t=%.0fs) + leave (t=%.0fs) under %.0f \
     msg/s dense load@."
    p.t_join p.t_leave r.offered;
  Format.fprintf fmt "  %-28s %12s@." "window" "msg/s";
  Format.fprintf fmt "  %-28s %12.0f@." "steady state (before)" r.tput_before;
  Format.fprintf fmt "  %-28s %12.0f@." "across join..leave" r.tput_reconfig;
  Format.fprintf fmt "  %-28s %12.0f@." "after (shrunk committee)" r.tput_after;
  Format.fprintf fmt "  join -> caught up: %.2f s@." r.join_recovery_s;
  Format.fprintf fmt "  final epoch at server 0: %d@." r.final_epoch;
  Format.fprintf fmt "  probe-client latency mean: %.2f s@."
    r.client_latency_mean
