type shard_result = { shards : int; per_shard : float; aggregate : float }

let shard_params scale =
  let n, rate, duration, warmup, cooldown =
    match scale with
    | Figures.Quick -> (4, 2e6, 12., 4., 3.)
    | Figures.Full -> (16, 8e6, 16., 5., 4.)
  in
  { Chopchop_run.default with
    n_servers = n; rate; duration; warmup; cooldown; measure_clients = 2 }

let sharding ~scale ~shards =
  List.map
    (fun k ->
      let results =
        List.init k (fun i ->
            Chopchop_run.run
              { (shard_params scale) with seed = Int64.of_int (1000 + i) })
      in
      let total =
        List.fold_left (fun a r -> a +. r.Chopchop_run.throughput) 0. results
      in
      { shards = k; per_shard = total /. float_of_int k; aggregate = total })
    shards

type offload_result = {
  servers : int;
  baseline_capacity : float;
  offloaded_capacity : float;
}

(* Capacity from the §3.2 anchors: a witnessing server pays aggregation
   (the dominant per-key term) plus one constant verification; every
   server pays the delivery pass.  Offloading moves the per-key term to
   the (untrusted, horizontally scalable) brokers. *)
let pk_offload ~servers =
  List.map
    (fun n ->
      let margin =
        Repro_chopchop.Deployment.(paper_config ~n_servers:n ~underlay:Pbft)
          .witness_margin
      in
      let asked = float_of_int (((n - 1) / 3) + 1 + margin) in
      let delivery = 0.00031 in
      let with_agg = (asked /. float_of_int n /. 457.1) +. delivery in
      let verify_only =
        (* bls_verify is a single-core cost; this is machine-capacity
           math, so spread it over the machine's lanes. *)
        (asked /. float_of_int n
        *. (Repro_sim.Cost.bls_verify /. float_of_int Repro_sim.Cost.vcpus))
        +. delivery
      in
      { servers = n;
        baseline_capacity = 65_536. /. with_agg;
        offloaded_capacity = 65_536. /. verify_only })
    servers

let print fmt scale =
  Format.fprintf fmt "@.=== §8 future work — sharding (independent instances) ===@.";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %d shard%s -> %10.3g op/s aggregate (%10.3g per shard)@."
        r.shards (if r.shards > 1 then "s" else " ") r.aggregate r.per_shard)
    (sharding ~scale ~shards:[ 1; 2; 4 ]);
  Format.fprintf fmt
    "@.=== §8 future work — public-key aggregation offload (capacity model) ===@.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %2d servers: %10.3g op/s with server-side aggregation -> %10.3g op/s offloaded (%.1fx)@."
        r.servers r.baseline_capacity r.offloaded_capacity
        (r.offloaded_capacity /. r.baseline_capacity))
    (pk_offload ~servers:[ 8; 16; 32; 64 ])
