(** Broker fleet scale-out sweep (lib/fleet, §6.3).

    N brokers, each behind the same small NIC, under an offered load ~30%
    above the fleet's aggregate network ceiling; clients are partitioned
    by the fleet's seeded-hash policy and each identity submits to its
    home broker.  [sweep] runs N = 1, 2, 4, 8 and fails loudly if
    delivered throughput is not monotone in fleet size, if 2 brokers do
    not clear the single-broker NIC bound, or if 4 brokers land below
    2.5x that bound. *)

type point = {
  brokers : int;
  offered : float; (* injected across the fleet, msg/s *)
  throughput : float; (* delivered at server 0 in the window, msg/s *)
  nic_bound : float; (* single-broker egress ceiling, msg/s *)
}

val sweep : scale:Figures.scale -> point list

val speedup_4x : unit -> float
(** 4-broker aggregate delivered throughput over the single-broker NIC
    ceiling, at quick scale — the gated bench metric. *)

val print : Format.formatter -> Figures.scale -> unit
