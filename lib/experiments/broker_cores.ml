(* Broker multi-core scalability (§5.1, §6.3): a single broker with K
   worker lanes faces an offered load far above its single-core budget,
   behind a deliberately small NIC.  Few lanes leave it CPU-bound —
   submissions queue behind signature verification and throughput grows
   with K; enough lanes shift the bottleneck to batch dissemination and
   throughput saturates at the NIC bound, reproducing the paper's
   "add brokers (or cores) until the network is the limit" story.

   Load is injected as raw signed [Proto.Submission]s straight into the
   broker (no client nodes): each uses a fresh dense identity at
   sequence 0, which is legitimate by definition and never deduplicated.
   With no clients to answer inclusions, every reduction times out and
   each batch ships classic (all stragglers) — the wire-heaviest, hence
   NIC-sharpest, operating point. *)

module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Cost = Repro_sim.Cost
module Schnorr = Repro_crypto.Schnorr
module D = Repro_chopchop.Deployment
module Broker = Repro_chopchop.Broker
module Directory = Repro_chopchop.Directory
module Types = Repro_chopchop.Types
module Proto = Repro_chopchop.Proto
module Wire = Repro_chopchop.Wire
module Trace = Repro_trace.Trace

type point = {
  cores : int;
  offered : float; (* injected, msg/s *)
  throughput : float; (* delivered at server 0 in the window, msg/s *)
  cpu_bound : float; (* capacity-model ceiling: lanes / per-msg core cost *)
  nic_bound : float; (* egress ceiling at the classic wire footprint *)
}

type params = {
  n_servers : int;
  rate_cap : float; (* harness budget: never inject above this, msg/s *)
  duration : float;
  warmup : float;
  capacity : float; (* broker lane speed, fraction of a reference core *)
  egress_bps : float; (* broker NIC cap *)
  reduce_timeout : float;
  max_batch : int;
}

let params scale =
  match scale with
  | Figures.Quick ->
    { n_servers = 4; rate_cap = 40_000.; duration = 8.; warmup = 2.5;
      capacity = 0.05; egress_bps = 55e6; reduce_timeout = 0.05;
      max_batch = 1024 }
  | Figures.Full ->
    { n_servers = 8; rate_cap = 40_000.; duration = 12.; warmup = 3.;
      capacity = 0.05; egress_bps = 110e6; reduce_timeout = 0.05;
      max_batch = 1024 }

(* Dominant per-message broker work: one Ed25519 signature inside a
   batched verification (the merkle build and serialization are orders of
   magnitude below it). *)
let per_msg_core_s = Cost.ed25519_batch_verify 1

(* Per-batch serial work that does not amortise over lanes: the reduce
   aggregate check, f+1 witness shards and the first completion shards
   are each one BLS pairing on a single lane. *)
let per_batch_serial_s = 5. *. Cost.bls_verify

(* Capacity-model ceiling of a K-lane broker at this batch size. *)
let cpu_bound ~p ~cores =
  float_of_int cores *. p.capacity
  /. (per_msg_core_s +. (per_batch_serial_s /. float_of_int p.max_batch))

let nic_bound ~p =
  (* With no clients answering inclusions, every batch ships with all its
     entries as stragglers; the footprint is that of the distilled layout
     at straggler count = batch size, once per server link. *)
  let batch_bytes =
    Wire.distilled_batch_bytes ~clients:1_000_000 ~count:p.max_batch
      ~msg_bytes:8 ~stragglers:p.max_batch
  in
  let wire_per_msg =
    float_of_int (batch_bytes * p.n_servers) /. float_of_int p.max_batch
  in
  p.egress_bps /. 8. /. wire_per_msg

let run_point ~p ~cores =
  let d =
    D.create
      { D.default_config with
        n_servers = p.n_servers; underlay = D.Sequencer;
        dense_clients = 1_000_000 }
  in
  let engine = D.engine d in
  (* Measure each configuration at its own saturation point (as the
     throughput-latency methodology of Fig. 7 does): inject ~30% above
     the lesser of the CPU and NIC ceilings.  A fixed huge rate would
     only grow unbounded queues and push completions past the window. *)
  let offered =
    Float.min p.rate_cap
      (1.3 *. Float.min (cpu_bound ~p ~cores) (nic_bound ~p))
  in
  (* Flush when roughly a full batch has accumulated. *)
  let flush_period = float_of_int p.max_batch /. offered in
  let bid =
    D.add_broker d ~region:(List.hd Region.broker_regions)
      ~flush_period ~reduce_timeout:p.reduce_timeout
      ~max_batch:p.max_batch ~cores ~capacity:p.capacity
      ~egress_bps:p.egress_bps ()
  in
  let br = D.broker d bid in
  let delivered = ref 0 in
  D.server_deliver_hook d (fun srv del ->
      match del with
      | Proto.Ops ops ->
        if srv = 0 && Engine.now engine >= p.warmup
           && Engine.now engine <= p.duration then
          delivered := !delivered + Array.length ops
      | Proto.Bulk _ -> ());
  let period = 0.02 in
  let per_tick = int_of_float (offered *. period) in
  let next_id = ref 0 in
  Engine.every engine ~period ~until:p.duration (fun () ->
      for _ = 1 to per_tick do
        let id = !next_id in
        incr next_id;
        let kp = Directory.dense_keypair id in
        let msg = Printf.sprintf "%08d" id in
        let tsig =
          Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq:0 msg)
        in
        Broker.receive_client br
          (Proto.Submission
             { id; seq = 0; msg; tsig; evidence = None;
               ctx = Trace.Ctx.make ~root:id })
      done);
  (* Let in-flight batches drain so late deliveries inside the window are
     not cut off mid-pipeline. *)
  D.run d ~until:(p.duration +. 5.);
  let window = p.duration -. p.warmup in
  { cores;
    offered;
    throughput = float_of_int !delivered /. window;
    cpu_bound = cpu_bound ~p ~cores;
    nic_bound = nic_bound ~p }

let sweep ~scale =
  let p = params scale in
  let points = List.map (fun cores -> run_point ~p ~cores) [ 1; 4; 16; 32 ] in
  (* The shape this experiment exists to show: more lanes, more
     throughput, until the NIC is the limit. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      if b.throughput < a.throughput *. 0.98 then
        failwith
          (Printf.sprintf
             "broker-cores: throughput fell %d -> %d cores (%.0f -> %.0f)"
             a.cores b.cores a.throughput b.throughput);
      monotone rest
    | _ -> ()
  in
  monotone points;
  (match points with
   | [ one; _; _; last ] ->
     if last.throughput < 2. *. one.throughput then
       failwith "broker-cores: no scaling from 1 to 32 lanes";
     if last.throughput > last.nic_bound *. 1.05 then
       failwith "broker-cores: delivered above the NIC bound";
     (* At 32 lanes the CPU ceiling clears the NIC ceiling: the run must
        actually be network-limited, not stuck far below both. *)
     if last.throughput < last.nic_bound *. 0.5 then
       failwith "broker-cores: 32 lanes did not reach the NIC regime"
   | _ -> assert false);
  points

let print fmt scale =
  Format.fprintf fmt
    "@.=== broker scalability — worker lanes until the NIC binds ===@.";
  let points = sweep ~scale in
  List.iter
    (fun pt ->
      Format.fprintf fmt
        "  %2d cores: %8.0f msg/s delivered (offered %.0f, cpu bound %.0f, nic bound %.0f)@."
        pt.cores pt.throughput pt.offered (min pt.cpu_bound pt.offered)
        pt.nic_bound)
    points;
  match points with
  | first :: _ ->
    let last = List.nth points (List.length points - 1) in
    Format.fprintf fmt
      "  -> %.1fx from 1 to %d lanes; saturation at %.0f%% of the NIC bound@."
      (last.throughput /. first.throughput)
      last.cores
      (100. *. last.throughput /. last.nic_bound)
  | [] -> ()
