module Engine = Repro_sim.Engine
module Net = Repro_sim.Net
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Region = Repro_sim.Region
module Stats = Repro_sim.Stats
module N = Repro_mempool.Narwhal

type params = {
  n_servers : int;
  rate : float;
  msg_bytes : int;
  authenticate : bool;
  workers_per_group : int;
  duration : float;
  warmup : float;
  cooldown : float;
  seed : int64;
}

let default ~authenticate =
  { n_servers = 64; rate = 100_000.; msg_bytes = 8; authenticate;
    workers_per_group = 1; duration = 25.; warmup = 8.; cooldown = 5.;
    seed = 42L }

type result = {
  offered : float;
  throughput : float;
  latency_mean : float;
  latency_std : float;
  network_rate_bps : float;
}

let run p =
  let engine = Engine.create ~seed:p.seed () in
  let net = Net.create engine () in
  let n = p.n_servers in
  let regions = Array.of_list (Region.server_regions_for n) in
  let tp = Stats.Throughput.create engine ~warmup:p.warmup ~cooldown:p.cooldown ~duration:p.duration in
  let lat = Stats.Summary.create () in
  let win_start = p.warmup and win_end = p.duration -. p.cooldown in
  let groups = Array.make n None in
  for i = 0 to n - 1 do
    Net.add_node net ~id:i ~region:regions.(i)
      ~handler:(fun ~src m ->
        match groups.(i) with Some g -> N.receive g ~src m | None -> ())
      ()
  done;
  for i = 0 to n - 1 do
    let cpu = Cpu.create engine ~cores:Cost.vcpus () in
    let cfg =
      { (N.default_config ~n ~msg_bytes:p.msg_bytes ~authenticate:p.authenticate) with
        workers_per_group = p.workers_per_group }
    in
    let g =
      N.create ~engine ~cpu ~config:cfg ~self:i
        ~send:(fun ~dst ~bytes m -> Net.send net ~src:i ~dst ~bytes m)
        ~on_deliver:(fun ~count ~inject_time ->
          if i = 0 then begin
            Stats.Throughput.record tp count;
            let now = Engine.now engine in
            if now >= win_start && now <= win_end then
              Stats.Summary.add lat (now -. inject_time)
          end)
        ()
    in
    groups.(i) <- Some g
  done;
  (* Offered load, evenly split across groups in 50 ms slices. *)
  let period = 0.05 in
  let per_group_tick = p.rate *. period /. float_of_int n in
  let acc = ref 0. in
  let ingress0 = ref 0 and ingress1 = ref 0 in
  Engine.schedule engine ~delay:p.warmup (fun () ->
      ingress0 := Net.bytes_received net 0);
  Engine.schedule engine ~delay:(p.duration -. p.cooldown) (fun () ->
      ingress1 := Net.bytes_received net 0);
  Engine.every engine ~period ~until:p.duration (fun () ->
      acc := !acc +. per_group_tick;
      let whole = int_of_float !acc in
      if whole > 0 then begin
        acc := !acc -. float_of_int whole;
        Array.iter
          (function Some g -> N.inject g ~count:whole | None -> ())
          groups
      end);
  Engine.run engine ~until:(p.duration +. 30.);
  let span = p.duration -. p.cooldown -. p.warmup in
  { offered = p.rate;
    throughput = Stats.Throughput.rate tp;
    latency_mean = Stats.Summary.mean lat;
    latency_std = Stats.Summary.stddev lat;
    network_rate_bps = float_of_int (!ingress1 - !ingress0) /. span }
