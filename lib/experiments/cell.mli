(** Uniform experiment cell: one resolved configuration of the standard
    Chop Chop runner, executable as a reusable entry point.

    This is the unit the sweep orchestrator ([lib/sweep]) fans out: a
    flat, JSON-serialisable record over the axes the paper's evaluation
    grid sweeps (underlay × servers × cores × payload × rate × app ×
    seed, plus the window/topology knobs), with a deterministic runner
    that derives the same efficiency metrics `bench json` gates.  The
    sim is seeded and deterministic, so [run] on an identical config is
    bit-identical — across processes and machines — which is what makes
    sweep resume and cell-level caching sound. *)

type config = {
  underlay : string;  (** "sequencer" | "pbft" | "hotstuff" *)
  servers : int;
  cores : int;  (** worker lanes per server/broker CPU *)
  payload : int;  (** message size, bytes *)
  rate : float;  (** offered load, messages per second *)
  app : string;  (** "none" | "payments" | "auction" | "pixelwar" *)
  batch : int;  (** messages per batch *)
  load_brokers : int;
  brokers : int;
      (** fleet size: 0 (default) keeps the paper's single broker roster;
          N > 0 deploys N brokers with the lib/fleet hash-partitioned
          client policy *)
  measure_clients : int;
  duration : float;
  warmup : float;
  cooldown : float;
  dense_clients : int;
  store : bool;
  checkpoint_every : int;
  seed : int64;
}

val default : config
(** The `bench json` quick-scale configuration (4 servers, PBFT, 100 k
    op/s, 4096-message batches, store on) — small enough for CI, real
    enough to exercise every layer. *)

val underlays : string list
val apps : string list

val validate : config -> (unit, string) result
(** Checks the enumerated fields and basic ranges; the error message
    lists the valid names. *)

val to_json : config -> Repro_metrics.Json.t
(** Canonical form: fixed field order, suitable for content-hashing. *)

val of_json : Repro_metrics.Json.t -> (config, string) result
(** Inverse of {!to_json}; unknown fields are rejected. *)

type outcome = {
  metrics : (string * float) list;
      (** deterministic metrics, `bench json` names first
          (throughput_ops, latency_p50_s, latency_p99_s,
          sig_verifies_per_decision, wire_bytes_per_payload_byte,
          wal_bytes_per_payload_byte,
          broker_cpu_busy_s_per_payload_byte), then run extras *)
  info : (string * string) list;
      (** non-numeric facts (e.g. [app_digest], hex) *)
  sim_events : int;  (** engine steps executed (sim-speed benchmark) *)
  sim_seconds : float;  (** simulated horizon of the run *)
  prof : Repro_prof.Prof.report option;
      (** engine self-profile; present iff [run ~profile:true] *)
}

val run : ?profile:bool -> config -> outcome
(** Executes the cell under a fresh in-memory trace sink.  When [app] is
    not ["none"], the corresponding application state machine consumes
    every server-0 delivery and contributes [app_ops] / [app_digest].
    [profile] (default false) attaches the engine self-profiler
    ([lib/prof]); it adds no events, so the outcome's deterministic
    fields are bit-identical either way.
    @raise Failure on an invalid config. *)

val params_of : config -> Chopchop_run.params
(** The underlying runner parameters — what `chopchop run`-style
    invocations would use for the same point. *)
