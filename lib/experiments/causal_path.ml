module Trace = Repro_trace.Trace

type hop = {
  h_phase : string;
  h_start : float;
  h_finish : float;
  h_actor : int;
  h_hop : int;
  h_detail : string;
}

type t = {
  p_key : int;
  p_client : int;
  p_seq : int option;
  p_proposal : int;
  p_batch : int;
  p_send : float;
  p_deliver : float;
  p_hops : hop list;
  p_ctx_verified : bool;
}

let candidates events =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (e : Trace.event) ->
      match (e.ev_phase, e.ev_cat, e.ev_name) with
      | Trace.I, "client", "deliver" when not (Hashtbl.mem seen e.ev_id) ->
        Hashtbl.add seen e.ev_id ();
        Some e.ev_id
      | _ -> None)
    events

let follow events ~key =
  (* The client-side endpoints of the followed message. *)
  let send = ref None and deliver = ref None in
  (* Broker "include" instants for this key: (proposal, hop, time, actor). *)
  let includes = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.ev_id = key then
        match (e.ev_phase, e.ev_cat, e.ev_name) with
        | Trace.I, "client", "send" -> if !send = None then send := Some e
        | Trace.I, "client", "deliver" -> if !deliver = None then deliver := Some e
        | Trace.I, "broker", "include" ->
          (match
             ( Trace.attr_int e.ev_attrs "proposal",
               Trace.attr_int e.ev_attrs "hop" )
           with
           | Some proposal, Some hop ->
             includes := (proposal, hop, e.ev_time, e.ev_actor) :: !includes
           | _ -> ())
        | _ -> ())
    events;
  match (!send, !deliver) with
  | Some send_e, Some deliver_e ->
    (* Walk backward from the delivery certificate: its root names the
       carrying batch, the batch's launch names the proposal. *)
    Option.bind (Trace.attr_int deliver_e.ev_attrs "root") (fun batch ->
        let launch = ref None and ordered = ref None in
        List.iter
          (fun (e : Trace.event) ->
            if e.ev_id = batch then
              match (e.ev_phase, e.ev_cat, e.ev_name) with
              | Trace.I, "broker", "launch" ->
                if !launch = None then launch := Some e
              | Trace.I, "server", "ordered" ->
                (match !ordered with
                 | Some (o : Trace.event) when o.ev_time <= e.ev_time -> ()
                 | _ -> ordered := Some e)
              | _ -> ())
          events;
        Option.bind !launch (fun (launch_e : Trace.event) ->
            Option.bind (Trace.attr_int launch_e.ev_attrs "reduction")
              (fun proposal ->
                let spans = Trace.Span.pair events in
                let find_span name id =
                  List.find_opt
                    (fun (s : Trace.Span.t) ->
                      s.sp_cat = "broker" && s.sp_name = name && s.sp_id = id)
                    spans
                in
                match
                  (find_span "distill" proposal, find_span "witness" batch, !ordered)
                with
                | Some distill, Some witness, Some ordered_e ->
                  let inc =
                    List.find_opt (fun (p, _, _, _) -> p = proposal) !includes
                  in
                  let ctx_verified = inc <> None in
                  let inc_hop =
                    match inc with Some (_, h, _, _) -> h | None -> 1
                  in
                  let t0 = send_e.ev_time in
                  let td = deliver_e.ev_time in
                  let hops =
                    [ { h_phase = "submission"; h_start = t0;
                        h_finish = distill.sp_begin; h_actor = distill.sp_actor;
                        h_hop = inc_hop;
                        h_detail =
                          Printf.sprintf
                            "client %d -> broker %d; included in proposal %#x%s"
                            send_e.ev_actor distill.sp_actor proposal
                            (if ctx_verified then "" else " (no include hop!)") };
                      { h_phase = "distillation"; h_start = distill.sp_begin;
                        h_finish = launch_e.ev_time; h_actor = distill.sp_actor;
                        h_hop = inc_hop + 1;
                        h_detail =
                          Printf.sprintf
                            "proposal %#x reduced, launched as batch %#x"
                            proposal batch };
                      { h_phase = "witnessing"; h_start = launch_e.ev_time;
                        h_finish = witness.sp_end; h_actor = witness.sp_actor;
                        h_hop = inc_hop + 2;
                        h_detail =
                          Printf.sprintf
                            "f+1 witness shards aggregated at broker %d"
                            witness.sp_actor };
                      { h_phase = "ordering"; h_start = witness.sp_end;
                        h_finish = ordered_e.ev_time; h_actor = ordered_e.ev_actor;
                        h_hop = inc_hop + 3;
                        h_detail =
                          Printf.sprintf
                            "(root, witness) through the STOB; first out at server %d"
                            ordered_e.ev_actor };
                      { h_phase = "delivery"; h_start = ordered_e.ev_time;
                        h_finish = td; h_actor = deliver_e.ev_actor;
                        h_hop = inc_hop + 4;
                        h_detail =
                          Printf.sprintf
                            "delivered server-side; certificate back to client %d"
                            deliver_e.ev_actor } ]
                  in
                  Some
                    { p_key = key; p_client = send_e.ev_actor;
                      p_seq = Trace.attr_int send_e.ev_attrs "seq";
                      p_proposal = proposal; p_batch = batch;
                      p_send = t0; p_deliver = td; p_hops = hops;
                      p_ctx_verified = ctx_verified }
                | _ -> None)))
  | _ -> None

let first events =
  let rec go = function
    | [] -> None
    | key :: rest ->
      (match follow events ~key with Some p -> Some p | None -> go rest)
  in
  go (candidates events)

let e2e p = p.p_deliver -. p.p_send
let hop_sum p = List.fold_left (fun acc h -> acc +. (h.h_finish -. h.h_start)) 0. p.p_hops

let pp ppf p =
  Format.fprintf ppf "message %#x  (client actor %d%s)@." p.p_key p.p_client
    (match p.p_seq with Some s -> Printf.sprintf ", seq %d" s | None -> "");
  Format.fprintf ppf "ctx root %#x, %d hops%s@." p.p_key (List.length p.p_hops)
    (if p.p_ctx_verified then ", context propagation verified"
     else ", WARNING: no matching broker include hop");
  List.iteri
    (fun i h ->
      let indent = String.make (2 * i) ' ' in
      Format.fprintf ppf "%s`- [hop %d] %-12s %8.1f ms  (%.3fs -> %.3fs)  %s@."
        indent h.h_hop h.h_phase
        (1e3 *. (h.h_finish -. h.h_start))
        h.h_start h.h_finish h.h_detail)
    p.p_hops;
  let e = e2e p and s = hop_sum p in
  let delta = if e > 0. then Float.abs (s -. e) /. e *. 100. else 0. in
  Format.fprintf ppf "e2e %.1f ms; hops sum %.1f ms (delta %.2f%%)@." (1e3 *. e)
    (1e3 *. s) delta
