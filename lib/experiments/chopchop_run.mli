(** Generic Chop Chop experiment runner.

    Drives a {!Repro_chopchop.Deployment} with load brokers at a target
    input rate and a handful of real measurement clients (the paper
    separates load generation from latency measurement, §6.2), then
    reports the §6 metrics over the warmup/cooldown-trimmed window. *)

type params = {
  n_servers : int;
  cores : int; (* worker lanes per server/broker CPU (paper: 32) *)
  underlay : Repro_chopchop.Deployment.underlay;
  rate : float; (* offered load, messages per second *)
  batch_count : int;
  msg_bytes : int;
  distill_fraction : float;
  n_load_brokers : int;
  n_brokers : int;
      (* broker fleet size: 0 (default) keeps the paper's roster with the
         legacy nearest-first client routing; N > 0 deploys N brokers
         under the lib/fleet hash-partitioned client policy *)
  measure_clients : int;
  cohort : bool;
      (* model the measure clients as one flat-array cohort
         ({!Repro_workload.Cohort}) instead of per-[Client.t] records —
         bit-identical traffic, counters and results on the same seed *)
  duration : float;
  warmup : float;
  cooldown : float;
  crash : (float * int list) option; (* (time, server indices) *)
  dense_clients : int; (* directory width (257 M in the paper) *)
  seed : int64;
  flush_period : float; (* broker collection window (1 s in the paper) *)
  reduce_timeout : float; (* distillation timeout (1 s in the paper) *)
  witness_margin : int option; (* None: paper default for the size *)
  store : bool;
      (* enable the per-server durable-storage model: WAL appends and
         periodic checkpoints on a simulated disk (lib/store); adds
         disk/WAL/snapshot metrics probes when [metrics] is also set *)
  checkpoint_every : int; (* batches between checkpoints when [store] *)
  trace : Repro_trace.Trace.Sink.t; (* observability sink (default: null) *)
  metrics : Repro_metrics.Metrics.t option;
      (* when set, the run registers role-labelled probes (throughput,
         CPU, queue depths, in-flight batches, net rate, trace drops),
         ticks the registry's sampler on the sim clock, fills a
         [latency.e2e] histogram from the measurement clients, and folds
         the run-wide trace counters into end-of-run gauges *)
  on_delivery : (int -> Repro_chopchop.Proto.delivery -> unit) option;
      (* observer called on every server delivery (after the runner's own
         throughput accounting) — [Cell] uses it to drive application
         state machines without replacing the deployment's hook *)
  profile : bool;
      (* attach the engine self-profiler (lib/prof) for this run; the
         report lands in [result.prof].  Write-only observation: the sim
         output is bit-identical either way *)
}

val default : params
(** 64 servers, BFT-SMaRt-style underlay, 8 B messages, 65,536-message
    fully distilled batches, 20 s run with 6 s warmup / 4 s cooldown. *)

type result = {
  offered : float; (* op/s *)
  throughput : float; (* delivered op/s at server 0 over the window *)
  latency_mean : float; (* end-to-end, measurement clients, seconds *)
  latency_std : float;
  input_rate_bps : float; (* useful bytes offered per second *)
  network_rate_bps : float; (* mean server NIC ingress over the window *)
  goodput_bps : float; (* useful bytes delivered per second *)
  server_cpu : float; (* mean server utilisation over the window *)
  broker_cpu_busy_s : float;
      (* single-core CPU seconds charged across all brokers (incl. load
         brokers), whole run — the broker-efficiency bench numerator *)
  stored_bytes_max : int; (* peak batch store across servers (GC pressure) *)
  delivered_messages : int; (* total messages at server 0, whole run *)
  decisions : int; (* batches delivered at server 0, whole run *)
  wal_bytes : int; (* WAL bytes appended at server 0; 0 when store is off *)
  prof : Repro_prof.Prof.report option; (* present iff [params.profile] *)
}

val run : params -> result

val pp_result : Format.formatter -> result -> unit
