(** Broker multi-core scalability sweep (§5.1, §6.3).

    One broker with K worker lanes, an offered load far above its
    single-core signature-verification budget, and a deliberately small
    NIC: few lanes leave it CPU-bound, enough lanes shift the bottleneck
    to batch dissemination and throughput saturates at the NIC bound.
    [sweep] runs K = 1, 4, 16, 32 and fails loudly if throughput is not
    monotone or exceeds the NIC ceiling. *)

type point = {
  cores : int;
  offered : float; (* injected, msg/s *)
  throughput : float; (* delivered at server 0 in the window, msg/s *)
  cpu_bound : float; (* capacity-model ceiling: lanes / per-msg core cost *)
  nic_bound : float; (* egress ceiling at the classic wire footprint *)
}

val sweep : scale:Figures.scale -> point list

val print : Format.formatter -> Figures.scale -> unit
