(** Reconfiguration under load: the dynamic-membership cost picture.

    A Sequencer deployment with durable stores and one spare slot runs a
    sustained dense load plus heavy-tailed measurement clients; mid-run a
    spare joins through an ordered Reconfigure (bootstrapping via state
    transfer) and a founding member later leaves.  Reports throughput
    before / across / after the reconfigurations, the join bring-up time,
    and probe-client latency. *)

type result = {
  offered : float;
  tput_before : float; (* steady state, msg/s at server 0 *)
  tput_reconfig : float; (* join .. leave window *)
  tput_after : float; (* shrunk committee, post-settling *)
  join_recovery_s : float; (* join order -> joiner caught up *)
  final_epoch : int; (* ordered changes applied everywhere *)
  client_latency_mean : float; (* measurement clients, whole run *)
}

val metrics : scale:Figures.scale -> result

val print : Format.formatter -> Figures.scale -> unit
