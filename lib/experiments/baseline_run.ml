module Engine = Repro_sim.Engine
module Net = Repro_sim.Net
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Region = Repro_sim.Region
module Stats = Repro_sim.Stats

type proto = Bftsmart | Hotstuff_base

type params = {
  proto : proto;
  n_servers : int;
  rate : float;
  msg_bytes : int;
  duration : float;
  warmup : float;
  cooldown : float;
  seed : int64;
}

let default proto =
  { proto; n_servers = 64; rate = 1000.; msg_bytes = 8;
    duration = 30.; warmup = 8.; cooldown = 6.; seed = 42L }

type result = {
  offered : float;
  throughput : float;
  latency_mean : float;
  latency_std : float;
}

(* One ordered payload = one client operation with the 80 B classic
   header. *)
type op = { inject : float; bytes : int }

type msg =
  | Pbft_m of op Repro_stob.Pbft.msg
  | Hs_m of op Repro_stob.Hotstuff.msg

let run p =
  let engine = Engine.create ~seed:p.seed () in
  let net = Net.create engine () in
  let n = p.n_servers in
  let regions = Array.of_list (Region.server_regions_for n) in
  let cpus = Array.init n (fun _ -> Cpu.create engine ~cores:Cost.vcpus ()) in
  let tp = Stats.Throughput.create engine ~warmup:p.warmup ~cooldown:p.cooldown ~duration:p.duration in
  let lat = Stats.Summary.create () in
  let win_start = p.warmup and win_end = p.duration -. p.cooldown in
  let op_bytes = p.msg_bytes + 80 in
  let deliver_at i op =
    (* Servers verify the per-operation signature on delivery. *)
    Cpu.charge cpus.(i) ~work:(Cpu.parallel (Cost.ed25519_batch_verify 1));
    if i = 0 then begin
      Stats.Throughput.record tp 1;
      let now = Engine.now engine in
      if now >= win_start && now <= win_end then Stats.Summary.add lat (now -. op.inject)
    end
  in
  let receives = Array.make n (fun ~src:_ (_ : msg) -> ()) in
  let broadcasts = Array.make n (fun (_ : op) -> ()) in
  for i = 0 to n - 1 do
    Net.add_node net ~id:i ~region:regions.(i)
      ~handler:(fun ~src m -> receives.(i) ~src m)
      ()
  done;
  for i = 0 to n - 1 do
    match p.proto with
    | Bftsmart ->
      let send ~dst ~bytes m = Net.send net ~src:i ~dst ~bytes (Pbft_m m) in
      let st =
        Repro_stob.Pbft.create ~engine ~self:i ~n ~send ~deliver:(deliver_at i)
          ~payload_bytes:(fun op -> op.bytes) ~batch_max:400 ~max_outstanding:1 ()
      in
      receives.(i) <- (fun ~src m ->
          match m with Pbft_m m -> Repro_stob.Pbft.receive st ~src m | Hs_m _ -> ());
      broadcasts.(i) <- Repro_stob.Pbft.broadcast st
    | Hotstuff_base ->
      let send ~dst ~bytes m = Net.send net ~src:i ~dst ~bytes (Hs_m m) in
      let st =
        Repro_stob.Hotstuff.create ~engine ~self:i ~n ~send ~deliver:(deliver_at i)
          ~payload_bytes:(fun op -> op.bytes) ~batch_max:400 ~batch_timeout:0.4 ()
      in
      receives.(i) <- (fun ~src m ->
          match m with Hs_m m -> Repro_stob.Hotstuff.receive st ~src m | Pbft_m _ -> ());
      broadcasts.(i) <- Repro_stob.Hotstuff.broadcast st
  done;
  (* Offered load, spread over the servers (clients submit to their
     nearest replica, which forwards into the protocol). *)
  let period = 0.05 in
  let per_tick = p.rate *. period in
  let acc = ref 0. in
  let k = ref 0 in
  Engine.every engine ~period ~until:p.duration (fun () ->
      acc := !acc +. per_tick;
      while !acc >= 1. do
        acc := !acc -. 1.;
        let op = { inject = Engine.now engine; bytes = op_bytes } in
        broadcasts.(!k mod n) op;
        incr k
      done);
  Engine.run engine ~until:(p.duration +. 30.);
  { offered = p.rate;
    throughput = Stats.Throughput.rate tp;
    latency_mean = Stats.Summary.mean lat;
    latency_std = Stats.Summary.stddev lat }
