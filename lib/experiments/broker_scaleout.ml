(* Broker fleet scale-out (lib/fleet): N brokers, each behind the same
   deliberately small NIC, face an offered load ~30% above the fleet's
   aggregate network ceiling.  One broker saturates at its NIC bound; a
   fleet of N partitions the client population by seeded hash and carries
   ~N times that — the "add brokers until the network is the limit" claim
   of §6.3, measured end to end through the fleet layer (partitioned
   clients, per-broker Rank shards, shared server-run ordering).

   Load is injected as raw signed [Proto.Submission]s straight into each
   identity's *home* broker — the same assignment
   {!Repro_fleet.Fleet.home} gives real clients — at sequence 0 with
   fresh dense identities, so every message is legitimate by definition.
   With no clients answering inclusions every reduction times out and
   batches ship classic (all stragglers): the wire-heaviest, hence
   NIC-sharpest, operating point. *)

module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Cost = Repro_sim.Cost
module Schnorr = Repro_crypto.Schnorr
module Fleet = Repro_fleet.Fleet
module D = Repro_chopchop.Deployment
module Broker = Repro_chopchop.Broker
module Directory = Repro_chopchop.Directory
module Types = Repro_chopchop.Types
module Proto = Repro_chopchop.Proto
module Wire = Repro_chopchop.Wire
module Trace = Repro_trace.Trace

type point = {
  brokers : int;
  offered : float; (* injected across the fleet, msg/s *)
  throughput : float; (* delivered at server 0 in the window, msg/s *)
  nic_bound : float; (* single-broker egress ceiling, msg/s *)
}

type params = {
  n_servers : int;
  dense_clients : int;
  duration : float;
  warmup : float;
  cores : int; (* per-broker worker lanes *)
  capacity : float; (* broker lane speed, fraction of a reference core *)
  egress_bps : float; (* per-broker NIC cap *)
  reduce_timeout : float;
  max_batch : int;
}

let params scale =
  match scale with
  | Figures.Quick ->
    { n_servers = 4; dense_clients = 1_000_000; duration = 6.; warmup = 2.;
      cores = 32; capacity = 0.05; egress_bps = 25e6; reduce_timeout = 0.05;
      max_batch = 1024 }
  | Figures.Full ->
    { n_servers = 8; dense_clients = 2_000_000; duration = 10.; warmup = 3.;
      cores = 32; capacity = 0.05; egress_bps = 25e6; reduce_timeout = 0.05;
      max_batch = 1024 }

(* Egress ceiling of one broker at the classic (all-straggler) wire
   footprint — the bound a single broker cannot exceed no matter how many
   lanes it has, and the yardstick fleet speedup is measured against. *)
let nic_bound ~p =
  let batch_bytes =
    Wire.distilled_batch_bytes ~clients:p.dense_clients ~count:p.max_batch
      ~msg_bytes:8 ~stragglers:p.max_batch
  in
  let wire_per_msg =
    float_of_int (batch_bytes * p.n_servers) /. float_of_int p.max_batch
  in
  p.egress_bps /. 8. /. wire_per_msg

let run_point ~p ~brokers:n =
  let d =
    D.create
      { D.default_config with
        n_servers = p.n_servers; n_brokers = 0; underlay = D.Sequencer;
        dense_clients = p.dense_clients; fleet = Some Fleet.Hash }
  in
  let engine = D.engine d in
  (* Saturate each configuration at its own ceiling (the Fig. 7
     methodology): ~30% above the fleet's aggregate NIC bound. *)
  let per_broker = nic_bound ~p in
  let offered = 1.3 *. float_of_int n *. per_broker in
  let flush_period = float_of_int p.max_batch /. (1.3 *. per_broker) in
  let regions = Array.of_list Region.broker_regions in
  for b = 0 to n - 1 do
    ignore
      (D.add_broker d
         ~region:regions.(b mod Array.length regions)
         ~flush_period ~reduce_timeout:p.reduce_timeout
         ~max_batch:p.max_batch ~cores:p.cores ~capacity:p.capacity
         ~egress_bps:p.egress_bps ())
  done;
  let fl = match D.fleet d with Some fl -> fl | None -> assert false in
  let delivered = ref 0 in
  D.server_deliver_hook d (fun srv del ->
      match del with
      | Proto.Ops ops ->
        if srv = 0 && Engine.now engine >= p.warmup
           && Engine.now engine <= p.duration then
          delivered := !delivered + Array.length ops
      | Proto.Bulk _ -> ());
  let period = 0.02 in
  let per_tick = int_of_float (offered *. period) in
  let next_id = ref 0 in
  Engine.every engine ~period ~until:p.duration (fun () ->
      for _ = 1 to per_tick do
        let id = !next_id in
        incr next_id;
        (* Route by the fleet's own partitioning — exactly where a real
           client homed on this identity would submit. *)
        let home = Fleet.home fl ~key:id () in
        let kp = Directory.dense_keypair id in
        let msg = Printf.sprintf "%08d" id in
        let tsig =
          Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq:0 msg)
        in
        Broker.receive_client (D.broker d home)
          (Proto.Submission
             { id; seq = 0; msg; tsig; evidence = None;
               ctx = Trace.Ctx.make ~root:id })
      done);
  (* Let in-flight batches drain so deliveries inside the window are not
     cut off mid-pipeline. *)
  D.run d ~until:(p.duration +. 5.);
  let window = p.duration -. p.warmup in
  { brokers = n;
    offered;
    throughput = float_of_int !delivered /. window;
    nic_bound = per_broker }

let broker_counts = [ 1; 2; 4; 8 ]

let sweep ~scale =
  let p = params scale in
  let points = List.map (fun n -> run_point ~p ~brokers:n) broker_counts in
  (* The shape this experiment exists to show: more brokers, more
     delivered throughput, well past what one broker's NIC allows. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      if b.throughput < a.throughput *. 0.98 then
        failwith
          (Printf.sprintf
             "broker-scaleout: throughput fell %d -> %d brokers (%.0f -> %.0f)"
             a.brokers b.brokers a.throughput b.throughput);
      monotone rest
    | _ -> ()
  in
  monotone points;
  List.iter
    (fun pt ->
      if pt.throughput > 1.05 *. float_of_int pt.brokers *. pt.nic_bound then
        failwith
          (Printf.sprintf
             "broker-scaleout: %d brokers delivered above the aggregate NIC \
              bound"
             pt.brokers))
    points;
  (match points with
   | [ _; two; four; _ ] ->
     if two.throughput <= two.nic_bound then
       failwith
         (Printf.sprintf
            "broker-scaleout: 2 brokers did not clear the single-broker NIC \
             bound (%.0f <= %.0f)"
            two.throughput two.nic_bound);
     if four.throughput < 2.5 *. four.nic_bound then
       failwith
         (Printf.sprintf
            "broker-scaleout: 4 brokers below 2.5x the single-broker NIC \
             bound (%.0f < %.0f)"
            four.throughput (2.5 *. four.nic_bound))
   | _ -> assert false);
  points

(* Gated bench metric: 4-broker aggregate delivered throughput over the
   single-broker NIC ceiling.  The denominator is analytic, so only the
   4-broker point runs. *)
let speedup_4x () =
  let p = params Figures.Quick in
  (run_point ~p ~brokers:4).throughput /. nic_bound ~p

let print fmt scale =
  Format.fprintf fmt
    "@.=== broker scale-out — fleet size until the network is the limit ===@.";
  let points = sweep ~scale in
  List.iter
    (fun pt ->
      Format.fprintf fmt
        "  %2d brokers: %8.0f msg/s delivered (offered %.0f, 1-broker nic \
         bound %.0f, speedup %.2fx)@."
        pt.brokers pt.throughput pt.offered pt.nic_bound
        (pt.throughput /. pt.nic_bound))
    points;
  match points with
  | first :: _ ->
    let last = List.nth points (List.length points - 1) in
    Format.fprintf fmt
      "  -> %.1fx from 1 to %d brokers; the single-broker NIC bound is not \
       the system's limit@."
      (last.throughput /. first.throughput)
      last.brokers
  | [] -> ()
