(** Paper-style per-phase latency decomposition from a trace.

    Joins the client, broker, and server trace events of each delivered
    measurement-client message into the five pipeline phases of §3:
    submission (client send → broker flush), distillation (flush →
    distilled-batch launch), witnessing (launch → witness certificate),
    ordering (witness → first server sees the reference ordered by the
    STOB), and delivery (ordered → client holds a delivery certificate).
    The phase boundaries telescope, so for every fully-decomposed message
    the phase durations sum exactly to its end-to-end latency. *)

type t

val of_events : Repro_trace.Trace.event list -> t
val of_sink : Repro_trace.Trace.Sink.t -> t

val phases : t -> (string * Repro_trace.Trace.Hist.t) list
(** Per-phase duration histograms, in pipeline order. *)

val e2e : t -> Repro_trace.Trace.Hist.t
(** End-to-end latency of the same decomposed messages. *)

val complete : t -> int
(** Delivered messages whose full chain was found in the trace. *)

val partial : t -> int
(** Delivered messages with a missing stage (e.g. delivered through a
    batch whose distillation predates the trace window). *)

val sum_of_phase_means : t -> float
(** Equals [Hist.mean (e2e t)] up to float rounding — the telescoping
    invariant the integration test checks. *)

val pp : Format.formatter -> t -> unit
(** Per-phase mean/p50/p99 table in milliseconds. *)

val capture :
  params:Chopchop_run.params -> unit -> Chopchop_run.result * t * Repro_trace.Trace.Sink.t
(** Run the experiment with a fresh in-memory sink and decompose its
    trace; returns the run result, the breakdown, and the sink (for
    export via {!Repro_trace.Chrome}). *)
