(** Engine self-benchmark: calendar queue + event pool vs legacy heap.

    One deterministic queue-churn workload (deep standing queue,
    self-rescheduling dispatches, far-future overflow tail, timer
    create/cancel band) run under both {!Repro_sim.Engine.queue}
    implementations.  Dispatch-order equality (rolling checksum) and
    pool effectiveness ([allocs_per_event]) are deterministic and gated;
    CPU seconds and speedup are machine-dependent and informational —
    except in {!print}, which hard-asserts order equality, pool
    effectiveness, and a 2x speedup on the quick shape. *)

type result = {
  events : int; (* live dispatches observed (identical across queues) *)
  order_match : bool; (* rolling checksums identical, heap vs calendar *)
  checksum : int;
  heap_cpu_s : float; (* best-of-reps CPU seconds, informational *)
  cal_cpu_s : float;
  speedup : float; (* heap_cpu_s / cal_cpu_s *)
  pool_fresh : int; (* calendar run: records ever allocated *)
  pool_reused : int; (* calendar run: allocations served by the pool *)
  allocs_per_event : float; (* fresh / dispatches — the pooling proxy *)
}

val measure : scale:Figures.scale -> result

val print : Format.formatter -> Figures.scale -> unit
