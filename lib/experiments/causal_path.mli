(** Causal message-path reconstruction: one broadcast's
    client → broker-reduction → witness → commit → deliver path as a hop
    tree, rebuilt from a trace.

    The client stamps each submission with a {!Repro_trace.Trace.Ctx}
    rooted at its per-message correlation key; the broker bumps the hop
    and emits an ["include"] instant linking that root to the proposal it
    folded the message into.  From the proposal onwards the protocol's
    own roots (reduction root, identity root) {e are} the batch-level
    trace context, so the remaining hops join on them — the same joins
    {!Latency_breakdown} uses in aggregate, applied to a single message.

    Hop boundaries telescope: the per-hop latencies sum to exactly the
    end-to-end latency of the followed message ([chopchop trace --follow]
    cross-checks this and the test suite asserts it within 5%). *)

module Trace = Repro_trace.Trace

type hop = {
  h_phase : string;  (** submission/distillation/witnessing/ordering/delivery *)
  h_start : float;
  h_finish : float;
  h_actor : int;  (** the actor that completed the hop *)
  h_hop : int;  (** causal hop counter (propagated for the first hops) *)
  h_detail : string;
}

type t = {
  p_key : int;  (** followed message's correlation key *)
  p_client : int;  (** client trace actor *)
  p_seq : int option;
  p_proposal : int;  (** reduction-root key of the carrying proposal *)
  p_batch : int;  (** identity-root key of the carrying batch *)
  p_send : float;
  p_deliver : float;
  p_hops : hop list;  (** pipeline order *)
  p_ctx_verified : bool;
      (** the broker's ["include"] hop, keyed by the propagated context,
          named exactly the proposal the delivery certificate points back
          to *)
}

val candidates : Trace.event list -> int list
(** Correlation keys of delivered measurement-client messages, in
    delivery order (deduplicated) — valid inputs to {!follow}. *)

val follow : Trace.event list -> key:int -> t option
(** [None] when the message was never delivered or some stage is missing
    from the trace (e.g. a ring sink dropped it). *)

val first : Trace.event list -> t option
(** The first candidate that reconstructs fully (["--follow auto"]). *)

val e2e : t -> float
val hop_sum : t -> float

val pp : Format.formatter -> t -> unit
(** The hop tree, one indented branch per hop, with per-hop latencies and
    the telescoping check line. *)
