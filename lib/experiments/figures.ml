module D = Repro_chopchop.Deployment
module Wire = Repro_chopchop.Wire
module Cost = Repro_sim.Cost

type scale = Quick | Full

let n_servers = function Quick -> 16 | Full -> 64

let windows = function
  | Quick -> (12., 4., 3.) (* duration, warmup, cooldown *)
  | Full -> (20., 6., 4.)

let cc_params scale =
  let duration, warmup, cooldown = windows scale in
  { Chopchop_run.default with
    n_servers = n_servers scale;
    duration; warmup; cooldown }

let saturation_rate = function Quick -> 2.0e7 | Full -> 4.4e7
(* Full scale: the paper's measured maximal stable throughput; the fig7
   sweep additionally drives 6e7 to exhibit the overload collapse. *)

(* Witness-CPU capacity of an n-server system on fully distilled 65,536
   batches, from the §3.2 anchors: each batch costs the witnessing set
   one distilled verification and every server a delivery pass. *)
let cc_capacity n =
  let margin = D.(paper_config ~n_servers:n ~underlay:Pbft).witness_margin in
  let asked = float_of_int (((n - 1) / 3) + 1 + margin) in
  let per_server_per_batch =
    (asked /. float_of_int n /. 457.1) +. 0.00031
  in
  65_536. /. per_server_per_batch

let header fmt title =
  Format.fprintf fmt "@.=== %s ===@." title

let row fmt = Format.fprintf fmt

(* Shared, memoised heavy runs. *)

let memo_tbl : (string, Chopchop_run.result) Hashtbl.t = Hashtbl.create 16

let cc_run ?(key = "") params =
  let key =
    Printf.sprintf "%s|%d|%s|%g|%d|%g|%b" key params.Chopchop_run.n_servers
      (match params.underlay with
       | D.Pbft -> "pbft"
       | D.Hotstuff -> "hs"
       | D.Sequencer -> "seq")
      params.rate params.msg_bytes params.distill_fraction
      (params.crash <> None)
  in
  match Hashtbl.find_opt memo_tbl key with
  | Some r -> r
  | None ->
    let r = Chopchop_run.run params in
    Hashtbl.add memo_tbl key r;
    r

let cc_max scale =
  cc_run { (cc_params scale) with rate = saturation_rate scale }

let cc_max_throughput scale = (cc_max scale).throughput

(* --- Fig. 1: context ------------------------------------------------------ *)

let fig1 fmt _scale =
  header fmt "Fig. 1 — Throughput of Internet-scale services (context, paper values)";
  List.iter
    (fun (name, rate) -> row fmt "  %-28s %12s req/s@." name rate)
    [ ("BFT-SMaRt (geo-distributed)", "1.4k");
      ("HotStuff (geo-distributed)", "1.6k");
      ("Narwhal-Bullshark", "380k");
      ("Visa (peak, global)", "~65k");
      ("Google Search", "~100k");
      ("WeChat messages", "~1.7M");
      ("Chop Chop (this repo's target)", "~40M") ]

(* --- Figs. 2–3: batch layouts ---------------------------------------------- *)

let fig3 fmt _scale =
  header fmt "Figs. 2-3 — Batch layout arithmetic (bytes)";
  let clients = 257_000_000 and msg = 8 and count = 65_536 in
  let classic_payload = Wire.classic_payload_bytes ~msg_bytes:msg in
  let classic = Wire.classic_batch_bytes ~count ~msg_bytes:msg in
  let distilled =
    Wire.distilled_batch_bytes ~clients ~count ~msg_bytes:msg ~stragglers:0
  in
  row fmt "  classic payload (pk+sn+msg+sig)      %6d B   (paper: 112 B)@." classic_payload;
  row fmt "  distilled entry (id+msg)             %6.1f B   (paper: 11.5 B)@."
    (Wire.distilled_entry_bytes ~clients ~msg_bytes:msg);
  row fmt "  classic batch of 65,536              %6.2f MB  (paper: 7 MB)@."
    (float_of_int classic /. 1e6);
  row fmt "  fully distilled batch of 65,536      %6.0f KB  (paper: ~736 KB)@."
    (float_of_int distilled /. 1e3);
  row fmt "  payments: classic header share       %6.1f %%   (paper: 91%%)@."
    (100. *. (1. -. (12. /. 140.)))

(* --- §3.2 microbenchmark ---------------------------------------------------- *)

let time_rate f =
  let t0 = Sys.time () in
  let n = f () in
  let dt = Sys.time () -. t0 in
  float_of_int n /. dt

let micro fmt _scale =
  header fmt "§3.2 — Distillation microbenchmark (batches of 65,536 / second)";
  (* Machine rates: single-core batch costs pipelined over the
     c6i.8xlarge's 32 lanes (the serial pairing of batch k overlaps the
     aggregation of batch k+1). *)
  let lanes = float_of_int Cost.vcpus in
  let classic = lanes /. Cost.ed25519_batch_verify 65_536 in
  let distilled = lanes /. (Cost.bls_aggregate_pks 65_536 +. Cost.bls_verify) in
  row fmt "  classic batch authentication         %8.1f /s  (paper: 16.2 +- 0.4)@." classic;
  row fmt "  fully distilled authentication       %8.1f /s  (paper: 457.1 +- 0.3)@." distilled;
  row fmt "  CPU cost ratio                       %8.1f x   (paper: 28.2 x)@."
    (distilled /. classic);
  row fmt "  bandwidth ratio (112 B vs 11.5 B)    %8.1f x   (paper: 9.7 x)@."
    (112. /. 11.5);
  (* Live rates of the simulation-grade crypto (for the record; the
     simulator charges calibrated costs, not these). *)
  let module S = Repro_crypto.Schnorr in
  let module M = Repro_crypto.Multisig in
  let sk, pk = S.keygen_deterministic ~seed:"micro" in
  let sg = S.sign sk "m" in
  let verify_rate =
    time_rate (fun () ->
        for _ = 1 to 200_000 do ignore (S.verify pk "m" sg) done;
        200_000)
  in
  let msk, _ = M.keygen_deterministic ~seed:"micro2" in
  let share = M.sign msk "m" in
  let agg_rate =
    time_rate (fun () ->
        let acc = ref share in
        for _ = 1 to 2_000_000 do acc := M.aggregate_signatures [ !acc; share ] done;
        ignore !acc;
        2_000_000)
  in
  row fmt "  [live] sim-grade Schnorr verify      %8.2g op/s (this host)@." verify_rate;
  row fmt "  [live] sim-grade share aggregation   %8.2g op/s (this host)@." agg_rate

(* --- Fig. 7 ------------------------------------------------------------------ *)

let pp_tp_lat fmt (label, offered, r_tp, r_lat, r_std) =
  row fmt "  %-22s offered %10.3g op/s -> %10.3g op/s   lat %5.2f +- %4.2f s@."
    label offered r_tp r_lat r_std

let cc_rates = function
  | Quick -> [ 1e6; 8e6; 1.6e7; 2.0e7 ]
  | Full -> [ 1e6; 8e6; 2e7; 3.2e7; 4.4e7; 6e7 ]

let fig7 fmt scale =
  header fmt "Fig. 7 — Throughput-latency under various input rates";
  let duration, warmup, cooldown = windows scale in
  (* Chop Chop on both underlays. *)
  List.iter
    (fun (label, underlay) ->
      List.iter
        (fun rate ->
          let r = cc_run { (cc_params scale) with rate; underlay } in
          pp_tp_lat fmt (label, rate, r.throughput, r.latency_mean, r.latency_std))
        (cc_rates scale))
    [ ("ChopChop-BFT-SMaRt", D.Pbft); ("ChopChop-HotStuff", D.Hotstuff) ];
  (* Narwhal-Bullshark, both variants. *)
  List.iter
    (fun (label, authenticate, rates) ->
      List.iter
        (fun rate ->
          let r =
            Narwhal_run.run
              { (Narwhal_run.default ~authenticate) with
                n_servers = n_servers scale; rate; duration; warmup; cooldown }
          in
          pp_tp_lat fmt (label, rate, r.throughput, r.latency_mean, r.latency_std))
        rates)
    [ ("Narwhal-Bullshark", false, [ 1e5; 1e6; 2e6; 4e6; 6e6 ]);
      ("Narwhal-Bullshark-sig", true, [ 5e4; 1e5; 2e5; 4e5; 6e5 ]) ];
  (* Standalone baselines. *)
  List.iter
    (fun (label, proto, rates) ->
      List.iter
        (fun rate ->
          let r =
            Baseline_run.run
              { (Baseline_run.default proto) with
                n_servers = n_servers scale; rate;
                duration = duration +. 10.; warmup; cooldown }
          in
          pp_tp_lat fmt (label, rate, r.throughput, r.latency_mean, r.latency_std))
        rates)
    [ ("BFT-SMaRt", Baseline_run.Bftsmart, [ 400.; 800.; 1600.; 3200. ]);
      ("HotStuff", Baseline_run.Hotstuff_base, [ 400.; 1600.; 3200.; 6400. ]) ];
  row fmt "  (paper: ChopChop ~44M op/s @ 3.0-3.6 s on BFT-SMaRt, 5.8-6.5 s on HotStuff;@.";
  row fmt "   Narwhal-Bullshark 3.8M, -sig 382k @ ~3.6 s; BFT-SMaRt 1.4k @ 0.5 s; HotStuff 1.6k @ 1.2-1.6 s)@."

(* --- Fig. 8a ----------------------------------------------------------------- *)

let fig8a fmt scale =
  header fmt "Fig. 8a — Distillation benefit (saturated throughput)";
  let duration, warmup, cooldown = windows scale in
  let nb_sig =
    Narwhal_run.run
      { (Narwhal_run.default ~authenticate:true) with
        n_servers = n_servers scale; rate = 6e5; duration; warmup; cooldown }
  in
  row fmt "  Narwhal-Bullshark-sig          %10.3g op/s  (paper: 382k)@." nb_sig.throughput;
  (* Drive each configuration just below its witness-CPU capacity:
     unlike the fully distilled case, classic batches saturate the
     servers' signature-verification budget (ed25519_batch anchors). *)
  let witness_capacity scale frac =
    let n = n_servers scale in
    let asked = float_of_int (((n - 1) / 3) + 1 + D.(paper_config ~n_servers:n ~underlay:Pbft).witness_margin) in
    let per_batch = (1. -. frac) /. 16.2 +. (frac /. 457.1) in
    float_of_int n /. (asked *. per_batch) *. 65_536.
  in
  let no_distill =
    cc_run
      { (cc_params scale) with
        rate = 0.8 *. witness_capacity scale 0.; distill_fraction = 0. }
  in
  row fmt "  ChopChop, no distillation      %10.3g op/s  (paper: 1.5M)@."
    no_distill.throughput;
  let half =
    cc_run
      { (cc_params scale) with
        rate = 0.8 *. witness_capacity scale 0.5; distill_fraction = 0.5 }
  in
  row fmt "  ChopChop, 50%% distilled        %10.3g op/s  (ablation; not in paper)@."
    half.throughput;
  let full = cc_max scale in
  row fmt "  ChopChop, fully distilled      %10.3g op/s  (paper: 44M)@." full.throughput

(* --- Fig. 8b ----------------------------------------------------------------- *)

let fig8b fmt scale =
  header fmt "Fig. 8b — Message sizes (saturated throughput)";
  let sizes_rates =
    (* 8 B saturates CPU; larger sizes saturate the server NIC: drive at
       ~85% of the ingress budget so the system saturates rather than
       entering its overload collapse. *)
    let bw_cap msg =
      0.85 *. Repro_sim.Net.server_default_ingress_bps /. 8.
      /. (float_of_int msg +. 3.5)
    in
    [ (8, saturation_rate scale); (32, Float.min (bw_cap 32) (saturation_rate scale));
      (128, bw_cap 128); (512, bw_cap 512) ]
  in
  List.iter
    (fun (msg_bytes, rate) ->
      let r = cc_run { (cc_params scale) with rate; msg_bytes } in
      row fmt "  ChopChop %4d B messages       %10.3g op/s@." msg_bytes r.throughput)
    sizes_rates;
  let duration, warmup, cooldown = windows scale in
  List.iter
    (fun (msg_bytes, rate) ->
      let r =
        Narwhal_run.run
          { (Narwhal_run.default ~authenticate:true) with
            n_servers = n_servers scale; rate; msg_bytes; duration; warmup; cooldown }
      in
      row fmt "  NB-sig   %4d B messages       %10.3g op/s@." msg_bytes r.throughput)
    [ (8, 6e5); (512, 3e5) ];
  row fmt "  (paper: ChopChop 44.3M/17.6M/3.5M/890k for 8/32/128/512 B;@.";
  row fmt "   NB-sig 382k at 8 B down to 142k at 512 B)@."

(* --- Fig. 9 ------------------------------------------------------------------ *)

let fig9 fmt scale =
  header fmt "Fig. 9 — Line rate: input vs network vs output rates (B/s per server)";
  List.iter
    (fun rate ->
      let r = cc_run { (cc_params scale) with rate } in
      let overhead =
        if r.input_rate_bps > 0. then
          100. *. (r.network_rate_bps -. r.input_rate_bps) /. r.input_rate_bps
        else 0.
      in
      row fmt
        "  ChopChop in %9.3g B/s   net %9.3g B/s   out %9.3g B/s   overhead %5.1f%%@."
        r.input_rate_bps r.network_rate_bps r.goodput_bps overhead)
    (cc_rates scale);
  let duration, warmup, cooldown = windows scale in
  List.iter
    (fun rate ->
      let r =
        Narwhal_run.run
          { (Narwhal_run.default ~authenticate:true) with
            n_servers = n_servers scale; rate; duration; warmup; cooldown }
      in
      let per_msg = 11.5 in
      row fmt "  NB-sig   in %9.3g B/s   net %9.3g B/s   out %9.3g B/s@."
        (r.offered *. per_msg) r.network_rate_bps (r.throughput *. per_msg))
    [ 1e5; 2e5; 4e5 ];
  row fmt "  (paper: ChopChop overhead < 8%% up to 40M op/s; NB-sig network rate@.";
  row fmt "   one order of magnitude above its input rate)@."

(* --- Fig. 10a ---------------------------------------------------------------- *)

let fig10a fmt scale =
  header fmt "Fig. 10a — Number of servers (saturated throughput)";
  let sizes = match scale with Quick -> [ 8; 16 ] | Full -> [ 8; 16; 32; 64 ] in
  List.iter
    (fun n ->
      (* Just below each size's witness-CPU capacity: the paper's
         "maximum throughput" bars. *)
      let rate = Float.min (0.82 *. cc_capacity n) (saturation_rate scale) in
      let r = cc_run ~key:"f10a" { (cc_params scale) with n_servers = n; rate } in
      row fmt "  ChopChop %2d servers            %10.3g op/s@." n r.throughput)
    sizes;
  let duration, warmup, cooldown = windows scale in
  List.iter
    (fun n ->
      let r =
        Narwhal_run.run
          { (Narwhal_run.default ~authenticate:true) with
            n_servers = n; rate = 6e5; duration; warmup; cooldown }
      in
      row fmt "  NB-sig   %2d servers            %10.3g op/s@." n r.throughput)
    sizes;
  row fmt "  (paper: both systems scale well to 64 servers, ~44M vs ~400k)@."

(* --- Fig. 10b ---------------------------------------------------------------- *)

let fig10b fmt scale =
  header fmt "Fig. 10b — Matched total resources (64 servers)";
  let n = n_servers scale in
  (* ChopChop with unconstrained load brokers (the "infinite machines"
     cluster of the figure). *)
  let unconstrained = cc_max scale in
  row fmt "  ChopChop, load brokers (inf m) %10.3g op/s  (paper: ~44M)@."
    unconstrained.throughput;
  (* 128 machines: 64 servers + 64 brokers, each broker capped at its
     distillation capacity of ~1 batch/s (§5.1 design target). *)
  let brokers = n in
  let rate_128 = float_of_int (brokers * 65_536) *. 1.05 in
  let r128 =
    cc_run ~key:"f10b"
      { (cc_params scale) with rate = rate_128; n_load_brokers = brokers }
  in
  row fmt "  ChopChop, %3d machines         %10.3g op/s  (paper: 4.6M)@."
    (2 * n) r128.throughput;
  let duration, warmup, cooldown = windows scale in
  let nb2 =
    Narwhal_run.run
      { (Narwhal_run.default ~authenticate:true) with
        n_servers = n; workers_per_group = 2; rate = 1.6e6;
        duration; warmup; cooldown }
  in
  row fmt "  NB-sig, %3d machines (2 w/grp) %10.3g op/s  (paper: 679k)@."
    (2 * n) nb2.throughput;
  let nb1 =
    Narwhal_run.run
      { (Narwhal_run.default ~authenticate:true) with
        n_servers = n; rate = 6e5; duration; warmup; cooldown }
  in
  row fmt "  NB-sig, %3d machines (1 w/grp) %10.3g op/s  (paper: 382k)@." n nb1.throughput

(* --- Fig. 11a ---------------------------------------------------------------- *)

let fig11a fmt scale =
  header fmt "Fig. 11a — Server crash failures (post-crash stable throughput)";
  let n = n_servers scale in
  let f = (n - 1) / 3 in
  let duration, _, cooldown = windows scale in
  let duration = duration +. 8. in
  let crash_at = 6. in
  let post_warmup = crash_at +. 6. in
  let cases =
    [ ("no crash", []);
      ("1 crash", [ n - 1 ]);
      (Printf.sprintf "%d crashes" f, List.init f (fun i -> n - 1 - i)) ]
  in
  List.iter
    (fun (label, victims) ->
      let p =
        { (cc_params scale) with
          rate = saturation_rate scale;
          duration; warmup = post_warmup; cooldown;
          crash = (if victims = [] then None else Some (crash_at, victims)) }
      in
      let r = cc_run ~key:("f11a" ^ label) p in
      row fmt "  ChopChop, %-12s          %10.3g op/s@." label r.throughput)
    cases;
  row fmt "  (paper: 44M -> 43M with one crash; -66%% to 15M with a third crashed)@."

(* --- Fig. 11b ---------------------------------------------------------------- *)

let fig11b fmt scale =
  header fmt "Fig. 11b — Application use cases (maximal stable throughput)";
  let max_tp = cc_max_throughput scale in
  List.iter
    (fun c ->
      row fmt
        "  %-10s %10.3g op/s   (measured %6.1f ns/op on %2d core%s)@."
        c.App_model.app
        (Float.min c.App_model.capacity max_tp)
        c.App_model.measured_op_ns c.App_model.cores
        (if c.App_model.cores > 1 then "s" else ""))
    (App_model.calibrate ());
  row fmt "  (paper: Auction 2.3M, Payments 32M, Pixel war 35M op/s)@."

(* --- silk --------------------------------------------------------------------- *)

let silk_table fmt _scale =
  header fmt "§6.2 — silk vs scp (13 TB to 320 machines)";
  let p = Repro_silk.Silk.default_params in
  row fmt "  single TCP stream              %10.3g Gb/s@."
    (Repro_silk.Silk.stream_bps p /. 1e9);
  row fmt "  scp (sequential, one source)   %10.1f hours   (paper: ~68 h)@."
    (Repro_silk.Silk.scp_hours p);
  row fmt "  silk (P2P, aggregated TCP)     %10.1f minutes (paper: ~30 min)@."
    (Repro_silk.Silk.silk_minutes p);
  row fmt "  speedup                        %10.1f x@." (Repro_silk.Silk.speedup p)

(* --- ablations ----------------------------------------------------------------- *)

let ablation_timeout fmt scale =
  header fmt "Ablation — broker reduce timeout (fixed 2M op/s offered)";
  List.iter
    (fun reduce ->
      let r =
        Chopchop_run.run
          { (cc_params scale) with rate = 2e6; reduce_timeout = reduce; seed = 7L }
      in
      row fmt "  reduce timeout %4.2f s -> lat %5.2f s, tput %10.3g op/s@."
        reduce r.latency_mean r.throughput)
    [ 0.25; 0.5; 1.0 ]

let ablation_margin fmt scale =
  header fmt "Ablation — witness margin f+1+m (saturated)";
  List.iter
    (fun m ->
      let r =
        cc_run ~key:(Printf.sprintf "margin%d" m)
          { (cc_params scale) with
            rate = saturation_rate scale;
            witness_margin = Some m;
            seed = Int64.of_int (100 + m) }
      in
      row fmt "  margin %d -> tput %10.3g op/s, lat %5.2f s@." m r.throughput
        r.latency_mean)
    [ 0; 4 ]

(* Adverse network conditions: packet loss on the client<->broker UDP path
   degrades distillation (missed reduction windows -> stragglers) and
   raises latency, but loses nothing (§5.1 reliable UDP; §6 "adverse
   network conditions"). *)
let ablation_loss fmt _scale =
  header fmt "Ablation — client/broker packet loss (4 servers, 12 real clients)";
  List.iter
    (fun loss ->
      let d =
        D.create
          { D.default_config with
            underlay = D.Pbft; net_loss = loss;
            flush_period = 0.3; reduce_timeout = 0.15; seed = 5L }
      in
      let lat = Repro_sim.Stats.Summary.create () in
      let clients =
        List.init 12 (fun _ ->
            D.add_client d
              ~on_delivered:(fun _ ~latency -> Repro_sim.Stats.Summary.add lat latency)
              ())
      in
      List.iter Repro_chopchop.Client.signup clients;
      D.run d ~until:8.0;
      let stop = ref false in
      let rec pump c () =
        if not !stop then begin
          if Repro_chopchop.Client.pending c = 0 then
            Repro_chopchop.Client.broadcast c "loadload";
          Repro_sim.Engine.schedule (D.engine d) ~delay:0.3 (pump c)
        end
      in
      List.iter (fun c -> pump c ()) clients;
      Repro_sim.Engine.schedule (D.engine d) ~delay:30.0 (fun () -> stop := true);
      D.run d ~until:90.0;
      let ratio =
        let num = ref 0. and den = ref 0 in
        for b = 0 to D.n_brokers d - 1 do
          num := !num +. Repro_chopchop.Broker.distillation_ratio (D.broker d b);
          incr den
        done;
        !num /. float_of_int !den
      in
      let retrans, gave_up, _ = D.rudp_stats d in
      let completed =
        List.fold_left (fun a c -> a + Repro_chopchop.Client.completed c) 0 clients
      in
      row fmt
        "  loss %4.0f%% -> distilled %5.1f%%, completed %4d, lat %5.2f s, retrans %5d, gave up %d@."
        (100. *. loss) (100. *. ratio) completed
        (Repro_sim.Stats.Summary.mean lat) retrans gave_up)
    [ 0.0; 0.05; 0.15; 0.30 ]

let run_all fmt scale =
  fig1 fmt scale;
  fig3 fmt scale;
  micro fmt scale;
  silk_table fmt scale;
  fig7 fmt scale;
  fig8a fmt scale;
  fig8b fmt scale;
  fig9 fmt scale;
  fig10a fmt scale;
  fig10b fmt scale;
  fig11a fmt scale;
  fig11b fmt scale;
  ablation_timeout fmt scale;
  ablation_margin fmt scale;
  ablation_loss fmt scale
