(* Per-phase decomposition of the end-to-end latency of measurement-client
   messages, reconstructed purely from trace events (§6.2: the paper
   reports where a message's ~4 s of latency is spent).

   The chain is joined on correlation ids: the client's "send"/"deliver"
   instants share a per-message key; "deliver" carries the identity-root
   key of the carrying batch; the broker's "launch" instant (same identity
   key) carries the reduction-root key, which names the broker's "distill"
   span; the "witness" span and the servers' "ordered" instants use the
   identity key again.  Phase boundaries telescope —

     send .. distill-begin .. launch .. witness-end .. first-order .. deliver

   — so the phase durations sum to exactly the end-to-end latency of every
   fully-decomposed message. *)

module Trace = Repro_trace.Trace

type t = {
  phases : (string * Trace.Hist.t) list; (* pipeline order *)
  e2e : Trace.Hist.t;
  complete : int; (* delivered messages with a full decomposition *)
  partial : int; (* delivered messages missing some stage *)
}

let phase_names =
  [ "submission"; "distillation"; "witnessing"; "ordering"; "delivery" ]

let of_events events =
  let spans = Trace.Span.pair events in
  (* distill spans by reduction-root key; witness spans by identity key *)
  let distill : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let witness_end : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.Span.t) ->
      if s.sp_cat = "broker" then
        match s.sp_name with
        | "distill" ->
          if not (Hashtbl.mem distill s.sp_id) then
            Hashtbl.add distill s.sp_id s.sp_begin
        | "witness" ->
          if not (Hashtbl.mem witness_end s.sp_id) then
            Hashtbl.add witness_end s.sp_id s.sp_end
        | _ -> ())
    spans;
  let launch : (int, float * int) Hashtbl.t = Hashtbl.create 64 in
  let ordered : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let send : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let delivers = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match (e.ev_phase, e.ev_cat, e.ev_name) with
      | Trace.I, "broker", "launch" ->
        (match Trace.attr_int e.ev_attrs "reduction" with
         | Some red when not (Hashtbl.mem launch e.ev_id) ->
           Hashtbl.add launch e.ev_id (e.ev_time, red)
         | _ -> ())
      | Trace.I, "server", "ordered" ->
        (* The batch is ordered once the first correct server sees it come
           out of the STOB. *)
        (match Hashtbl.find_opt ordered e.ev_id with
         | Some t0 when t0 <= e.ev_time -> ()
         | _ -> Hashtbl.replace ordered e.ev_id e.ev_time)
      | Trace.I, "client", "send" ->
        if not (Hashtbl.mem send e.ev_id) then Hashtbl.add send e.ev_id e.ev_time
      | Trace.I, "client", "deliver" -> delivers := e :: !delivers
      | _ -> ())
    events;
  let phases = List.map (fun n -> (n, Trace.Hist.create ())) phase_names in
  let hist n = List.assoc n phases in
  let e2e = Trace.Hist.create () in
  let complete = ref 0 and partial = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      let decomposed =
        match (Hashtbl.find_opt send e.ev_id, Trace.attr_int e.ev_attrs "root") with
        | Some t0, Some root ->
          (match Hashtbl.find_opt launch root with
           | Some (t_launch, red) ->
             (match
                ( Hashtbl.find_opt distill red,
                  Hashtbl.find_opt witness_end root,
                  Hashtbl.find_opt ordered root )
              with
              | Some t_flush, Some t_wit, Some t_ord ->
                let t5 = e.ev_time in
                Trace.Hist.add (hist "submission") (t_flush -. t0);
                Trace.Hist.add (hist "distillation") (t_launch -. t_flush);
                Trace.Hist.add (hist "witnessing") (t_wit -. t_launch);
                Trace.Hist.add (hist "ordering") (t_ord -. t_wit);
                Trace.Hist.add (hist "delivery") (t5 -. t_ord);
                Trace.Hist.add e2e (t5 -. t0);
                true
              | _ -> false)
           | None -> false)
        | _ -> false
      in
      if decomposed then incr complete else incr partial)
    (List.rev !delivers);
  { phases; e2e; complete = !complete; partial = !partial }

let of_sink sink = of_events (Trace.Sink.events sink)

let phases t = t.phases
let e2e t = t.e2e
let complete t = t.complete
let partial t = t.partial

let sum_of_phase_means t =
  List.fold_left (fun acc (_, h) -> acc +. Trace.Hist.mean h) 0. t.phases

let pp fmt t =
  let ms v = v *. 1e3 in
  Format.fprintf fmt "latency breakdown (%d messages decomposed, %d partial)@."
    t.complete t.partial;
  Format.fprintf fmt "  %-14s %10s %10s %10s@." "phase" "mean ms" "p50 ms"
    "p99 ms";
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "  %-14s %10.1f %10.1f %10.1f@." name
        (ms (Trace.Hist.mean h))
        (ms (Trace.Hist.percentile h 0.5))
        (ms (Trace.Hist.percentile h 0.99)))
    t.phases;
  Format.fprintf fmt "  %-14s %10.1f %10.1f %10.1f@." "end-to-end"
    (ms (Trace.Hist.mean t.e2e))
    (ms (Trace.Hist.percentile t.e2e 0.5))
    (ms (Trace.Hist.percentile t.e2e 0.99))

let capture ~params () =
  let sink = Trace.Sink.memory () in
  let result = Chopchop_run.run { params with Chopchop_run.trace = sink } in
  (result, of_sink sink, sink)
