(** Chaos harness: scheduled Byzantine and network fault injection with
    safety and liveness invariant checking.

    The paper's trust model (§4.3–§4.4) makes three falsifiable claims:
    servers tolerate f Byzantine failures out of n = 3f+1; brokers are
    {e entirely} untrusted — a Byzantine broker can delay messages but
    never forge, duplicate or reorder them; and clients make progress as
    long as one correct broker is reachable.  This module turns those
    claims into executable scenarios: a declarative timed {!schedule} of
    faults is injected into a {!Repro_chopchop.Deployment}, an
    {!Invariant} checker observes every server delivery, and each named
    {!scenario} reduces to a {!verdict}.

    Everything is deterministic: with the same seed and scale a scenario
    produces a bit-identical verdict and trace. *)

(** {1 Fault schedule} *)

type event =
  | Crash_server of int  (** server index *)
  | Recover_server of int
      (** warm un-crash; the server stays a prefix (no state transfer) *)
  | Restart_server of int
      (** cold restart: reload checkpoint + WAL from the simulated disk,
          then state-transfer the gap from live peers — requires a
          store-enabled deployment *)
  | Join_server of int
      (** spare slot joins through an ordered Reconfigure command,
          bootstrapping via cold-restart state transfer — requires a
          deployment with [spare_servers] *)
  | Leave_server of int
      (** slot leaves through an ordered Reconfigure command; the leaver
          tears itself down when the command reaches it in the order *)
  | Replace_server of int
      (** slot is replaced in place by a fresh identity: new multisig
          key, empty disk, generation bumped — requires a store-enabled
          deployment *)
  | Crash_broker of int  (** broker id *)
  | Recover_broker of int
  | Crash_client of int  (** index into the scenario's client array *)
  | Partition of int list list
      (** network groups of {e node ids}; unlisted nodes join group 0 *)
  | Heal  (** remove the partition *)
  | Set_link_loss of int * int * float
      (** [(src node, dst node, probability)], lossy traffic only *)
  | Degrade_link of int * int * float
      (** [(src node, dst node, extra seconds)] on all traffic *)
  | Byz_broker_equivocate of int
      (** conflicting batches for one (broker, number) slot *)
  | Byz_broker_garble of int  (** forged reduction multi-signatures *)
  | Byz_broker_malform of int  (** tampered client payloads *)
  | Byz_broker_withhold of int  (** delivery certificates never sent *)
  | Byz_server_bad_shares of int  (** garbage witness shards *)
  | Byz_server_refuse_witness of int  (** fail-silent witnessing *)
  | Byz_client_bad_share of int  (** garbage reduction shares *)
  | Byz_client_mute of int  (** never answers inclusion proofs *)

type schedule = (float * event) list
(** Events paired with absolute injection times (simulated seconds). *)

val describe : event -> string

val install :
  Repro_chopchop.Deployment.t ->
  clients:Repro_chopchop.Client.t array ->
  ?on_event:(event -> unit) ->
  ?after_event:(event -> unit) ->
  schedule ->
  unit
(** Arm every event on the deployment's engine.  Client-indexed events
    resolve against [clients].  Each injection emits a "chaos"/"inject"
    trace instant, so fault timing is visible in the same timeline as the
    protocol's reaction to it.  [on_event] (if given) runs just before
    each event is applied — the harness uses it to reset the invariant
    checker when a server cold-restarts or changes identity.
    [after_event] runs just after — the harness uses it to re-wire
    application hooks onto a freshly constructed replacement server. *)

(** {1 Invariant checking} *)

module Invariant : sig
  (** Continuous safety checking over the deployment's
      [server_deliver_hook], plus end-of-run validity.

      - {b Agreement}: all server delivery logs are prefixes of one total
        order (each append is compared against the longest log covering
        that position; transitive, so pairwise-vs-longest suffices).
      - {b Integrity / no-duplication}: no server delivers the same
        (client, message) twice.
      - {b Validity}: at the end of the run, every expected message was
        delivered by every correct server ({!check_validity}). *)

  type op = Op of int * string | Bulk of int * int * int

  type t

  val create : n_servers:int -> t

  val attach : t -> Repro_chopchop.Deployment.t -> unit
  (** Installs the deployment's [server_deliver_hook] (replacing any
      previous hook). *)

  val observe : t -> server:int -> Repro_chopchop.Proto.delivery -> unit
  (** Feed one delivery directly — lets tests violate invariants on
      purpose and watch the checker fire. *)

  val check_validity :
    t -> expected:(string * string) list -> correct_servers:int list -> unit
  (** [(label, payload)] pairs each correct server must have delivered. *)

  val violate : t -> string -> unit
  (** Record an externally detected violation (harness plumbing). *)

  val reset_server : t -> int -> unit
  (** Stop checking one server's delivery log.  A cold restart restores a
      checkpoint without re-delivering what it covers, then replays the
      tail through the same hook, so the log restarts at an offset this
      checker cannot align — and a replaced server is a {e fresh
      identity} whose log legitimately starts empty.  Reset servers are
      also excluded from {!check_validity}; scenarios assert end-state
      application digests instead. *)

  val muted : t -> int -> bool
  (** Whether {!reset_server} has excluded this server from checking. *)

  val violations : t -> string list
  (** Oldest first; empty means all invariants held. *)

  val ok : t -> bool

  val log_length : t -> int -> int
  (** Deliveries observed from one server (diagnostics). *)
end

(** {1 Scenarios} *)

type scale = Quick | Full

val scale_of_string : string -> scale option
val scale_to_string : scale -> string

type verdict = {
  v_name : string;
  v_pass : bool;
  v_violations : string list;
  v_expected : int;  (** client broadcasts that must complete *)
  v_completed : int;  (** client broadcasts that did complete *)
  v_delivered : int array;  (** per-server delivered message counts *)
  v_rejections : (string * int) list;
      (** "reject_*" / "dup_ref" trace instants observed, by name — the
          correct nodes catching the injected misbehavior in the act *)
  v_notes : string list;
  v_diagnosis : Repro_prof.Doctor.diagnosis option;
      (** doctor post-mortem: present iff the run stalled (the in-run
          watchdog fired), completed fewer broadcasts than expected, or
          violated an invariant — the structured answer to "why did this
          chaos run fail" ([chopchop doctor]) *)
}

val pp_verdict : Format.formatter -> verdict -> unit
(** Includes the doctor diagnosis when one is attached. *)

type scenario = {
  sc_name : string;
  sc_summary : string;
  sc_run : ?until:float -> seed:int64 -> scale:scale -> unit -> verdict;
      (** [until] kills the run at that sim time without scaling down the
          expectations — the hook [chopchop doctor --kill-at] uses to
          force a post-mortem on a scenario cut short of delivery *)
}

val scenarios : scenario list
(** fig11a-crash, broker-equivocation, broker-garble, broker-withhold,
    server-bad-shares, partition-heal, lossy-wan, kitchen-sink,
    crash-cold-restart, lagging-restart, checkpoint-partition,
    reconfig-join, reconfig-leave, reconfig-replace, rolling-upgrade,
    flash-crowd, spam-sybil, reconfig-kitchen-sink.

    crash-cold-restart, lagging-restart and checkpoint-partition exercise
    the durable store: a crashed (or lagging) server cold restarts from
    its simulated disk and state-transfers the rest from peers, ending
    with an app digest identical to a never-crashed replica's.

    The reconfig-* family drives membership as an ordered command —
    joins, leaves, in-place replacement, rolling upgrades — while
    flash-crowd and spam-sybil stress broker admission under client
    surges and adversarial floods; reconfig-kitchen-sink combines all of
    it in one run. *)

val find : string -> scenario option

val diagnostics : scenario list
(** Deliberately-failing diagnostic scenarios (currently
    [stall-partition]: servers cut from brokers at t = 10 s, never
    healed).  Kept out of {!scenarios} so [chaos all], sweeps and CI stay
    green; resolvable via {!find_any} for [chopchop doctor] demos and the
    CI doctor smoke stage. *)

val find_any : string -> scenario option
(** {!find}, but also searching {!diagnostics}. *)

val run_all : seed:int64 -> scale:scale -> verdict list
