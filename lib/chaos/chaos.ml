module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Deployment = Repro_chopchop.Deployment
module Client = Repro_chopchop.Client
module Server = Repro_chopchop.Server
module Broker = Repro_chopchop.Broker
module Proto = Repro_chopchop.Proto
module Payments = Repro_apps.Payments
module Rng = Repro_sim.Rng
module Generators = Repro_workload.Generators
module Spam = Repro_workload.Spam
module Doctor = Repro_prof.Doctor

(* --- fault schedule ------------------------------------------------------- *)

type event =
  | Crash_server of int
  | Recover_server of int
  | Restart_server of int
  | Join_server of int
  | Leave_server of int
  | Replace_server of int
  | Crash_broker of int
  | Recover_broker of int
  | Crash_client of int
  | Partition of int list list
  | Heal
  | Set_link_loss of int * int * float
  | Degrade_link of int * int * float
  | Byz_broker_equivocate of int
  | Byz_broker_garble of int
  | Byz_broker_malform of int
  | Byz_broker_withhold of int
  | Byz_server_bad_shares of int
  | Byz_server_refuse_witness of int
  | Byz_client_bad_share of int
  | Byz_client_mute of int

type schedule = (float * event) list

let describe = function
  | Crash_server i -> Printf.sprintf "crash-server %d" i
  | Recover_server i -> Printf.sprintf "recover-server %d" i
  | Restart_server i -> Printf.sprintf "restart-server %d (cold)" i
  | Join_server i -> Printf.sprintf "join-server %d (ordered)" i
  | Leave_server i -> Printf.sprintf "leave-server %d (ordered)" i
  | Replace_server i -> Printf.sprintf "replace-server %d (fresh identity)" i
  | Crash_broker i -> Printf.sprintf "crash-broker %d" i
  | Recover_broker i -> Printf.sprintf "recover-broker %d" i
  | Crash_client i -> Printf.sprintf "crash-client %d" i
  | Partition groups ->
    Printf.sprintf "partition %s"
      (String.concat "|"
         (List.map
            (fun g -> String.concat "," (List.map string_of_int g))
            groups))
  | Heal -> "heal"
  | Set_link_loss (s, d, p) -> Printf.sprintf "link-loss %d->%d %.2f" s d p
  | Degrade_link (s, d, l) -> Printf.sprintf "degrade %d->%d +%.3fs" s d l
  | Byz_broker_equivocate i -> Printf.sprintf "byz-broker-equivocate %d" i
  | Byz_broker_garble i -> Printf.sprintf "byz-broker-garble %d" i
  | Byz_broker_malform i -> Printf.sprintf "byz-broker-malform %d" i
  | Byz_broker_withhold i -> Printf.sprintf "byz-broker-withhold %d" i
  | Byz_server_bad_shares i -> Printf.sprintf "byz-server-bad-shares %d" i
  | Byz_server_refuse_witness i -> Printf.sprintf "byz-server-refuse-witness %d" i
  | Byz_client_bad_share i -> Printf.sprintf "byz-client-bad-share %d" i
  | Byz_client_mute i -> Printf.sprintf "byz-client-mute %d" i

(* Trace actor for chaos injections: far above servers (0..), brokers
   (1000+) and clients (2000+). *)
let chaos_actor = 9000

let apply d ~clients = function
  | Crash_server i -> Deployment.crash_server d i
  | Recover_server i -> Deployment.recover_server d i
  | Restart_server i -> Deployment.restart_server d i
  | Join_server i -> Deployment.join_server d i
  | Leave_server i -> Deployment.leave_server d i
  | Replace_server i -> Deployment.replace_server d i
  | Crash_broker i -> Deployment.crash_broker d i
  | Recover_broker i -> Deployment.recover_broker d i
  | Crash_client i -> Deployment.crash_client d clients.(i)
  | Partition groups -> Deployment.partition d groups
  | Heal -> Deployment.heal d
  | Set_link_loss (src, dst, p) -> Deployment.set_link_loss d ~src ~dst p
  | Degrade_link (src, dst, extra_latency) ->
    Deployment.degrade_link d ~src ~dst ~extra_latency
  | Byz_broker_equivocate i -> Broker.misbehave_equivocate (Deployment.broker d i)
  | Byz_broker_garble i -> Broker.misbehave_garble_reduction (Deployment.broker d i)
  | Byz_broker_malform i -> Broker.misbehave_malform (Deployment.broker d i)
  | Byz_broker_withhold i -> Broker.misbehave_withhold_certs (Deployment.broker d i)
  | Byz_server_bad_shares i -> Server.misbehave_bad_shares (Deployment.servers d).(i)
  | Byz_server_refuse_witness i ->
    Server.misbehave_refuse_witness (Deployment.servers d).(i)
  | Byz_client_bad_share i -> Client.misbehave_bad_share clients.(i)
  | Byz_client_mute i -> Client.misbehave_mute_reduction clients.(i)

let install d ~clients ?(on_event = fun _ -> ()) ?(after_event = fun _ -> ())
    schedule =
  let engine = Deployment.engine d in
  List.iter
    (fun (time, ev) ->
      Engine.schedule_at engine ~time (fun () ->
          (let s = Engine.trace engine in
           if Trace.enabled s then
             Trace.instant s ~now:(Engine.now engine) ~actor:chaos_actor
               ~cat:"chaos" ~name:"inject" ~id:0
               ~attrs:[ ("event", Trace.A_str (describe ev)) ]);
          on_event ev;
          apply d ~clients ev;
          after_event ev))
    schedule

(* --- invariant checking ---------------------------------------------------- *)

module Invariant = struct
  type op = Op of int * string | Bulk of int * int * int

  type vec = { mutable arr : op array; mutable len : int }

  let vec_push v x =
    if v.len = Array.length v.arr then begin
      let a = Array.make (max 16 (2 * Array.length v.arr)) x in
      Array.blit v.arr 0 a 0 v.len;
      v.arr <- a
    end;
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  type t = {
    n : int;
    logs : vec array; (* per-server delivery log, in delivery order *)
    seen : (int * string, unit) Hashtbl.t array; (* (client, msg) per server *)
    msgs : (string, unit) Hashtbl.t array; (* payloads per server *)
    muted : bool array; (* cold-restarted: excluded from log checks *)
    mutable violations : string list; (* newest first *)
  }

  let create ~n_servers =
    { n = n_servers;
      logs = Array.init n_servers (fun _ -> { arr = [||]; len = 0 });
      seen = Array.init n_servers (fun _ -> Hashtbl.create 256);
      msgs = Array.init n_servers (fun _ -> Hashtbl.create 256);
      muted = Array.make n_servers false;
      violations = [] }

  let violate t msg = t.violations <- msg :: t.violations

  (* A cold restart restores the last checkpoint without re-delivering the
     messages it covers, then replays the tail through the same deliver
     hook — so the server's observed log restarts mid-stream at an offset
     this checker cannot know.  Drop it from the index-aligned checks;
     cold-restart scenarios assert end-state application digests instead,
     which is the stronger statement. *)
  let reset_server t server =
    t.logs.(server).len <- 0;
    (* Clear the no-duplication and delivered-payload expectations too: a
       replaced server re-delivers its whole history under a fresh
       identity (checkpoint restore + replay through the same hook), and
       a joiner starts from zero — stale (client, msg) entries from the
       slot's previous life would trip false duplicates. *)
    Hashtbl.reset t.seen.(server);
    Hashtbl.reset t.msgs.(server);
    t.muted.(server) <- true

  let muted t server = t.muted.(server)

  let observe t ~server (d : Proto.delivery) =
    if t.muted.(server) then ()
    else
    let ops =
      match d with
      | Proto.Ops arr ->
        Array.to_list (Array.map (fun (id, m) -> Op (id, m)) arr)
      | Proto.Bulk { first_id; count; tag; msg_bytes = _ } ->
        [ Bulk (first_id, count, tag) ]
    in
    List.iter
      (fun op ->
        (* Integrity / no-duplication: each (client, message) is delivered
           at most once per server.  (Scenarios use globally unique
           payloads, so this subsumes the per-(client, seq) rule.) *)
        (match op with
         | Op (id, m) ->
           if Hashtbl.mem t.seen.(server) (id, m) then
             violate t
               (Printf.sprintf
                  "no-duplication: server %d delivered (client %d, %S) twice"
                  server id m)
           else Hashtbl.add t.seen.(server) (id, m) ();
           Hashtbl.replace t.msgs.(server) m ()
         | Bulk _ -> ());
        (* Agreement: every log is a prefix of a common total order.  Each
           append is compared against the longest log that already covers
           this position; pairwise-vs-longest is transitive because the
           longest log itself grew under the same check. *)
        let idx = t.logs.(server).len in
        let longest = ref (-1) and best = ref idx in
        for s = 0 to t.n - 1 do
          if s <> server && t.logs.(s).len > !best then begin
            best := t.logs.(s).len;
            longest := s
          end
        done;
        (if !longest >= 0 && t.logs.(!longest).arr.(idx) <> op then
           violate t
             (Printf.sprintf
                "agreement: server %d delivery %d diverges from server %d"
                server idx !longest));
        vec_push t.logs.(server) op)
      ops

  let attach t d =
    Deployment.server_deliver_hook d (fun server dl -> observe t ~server dl)

  let check_validity t ~expected ~correct_servers =
    List.iter
      (fun (label, msg) ->
        List.iter
          (fun s ->
            (* A muted (cold-restarted, joined or replaced) server's
               payload index restarted mid-stream at an unknown offset;
               such servers are held to end-state digest equality by the
               scenarios instead. *)
            if not t.muted.(s) then
              if not (Hashtbl.mem t.msgs.(s) msg) then
                violate t
                  (Printf.sprintf "validity: %s not delivered by server %d"
                     label s))
          correct_servers)
      expected

  let violations t = List.rev t.violations
  let ok t = t.violations = []
  let log_length t server = t.logs.(server).len
end

(* --- verdicts --------------------------------------------------------------- *)

type scale = Quick | Full

let scale_of_string = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None

let scale_to_string = function Quick -> "quick" | Full -> "full"

type verdict = {
  v_name : string;
  v_pass : bool;
  v_violations : string list;
  v_expected : int; (* client broadcasts that must complete *)
  v_completed : int; (* client broadcasts that did complete *)
  v_delivered : int array; (* per-server delivered message counts *)
  v_rejections : (string * int) list; (* rejection instants, by name *)
  v_notes : string list;
  v_diagnosis : Doctor.diagnosis option;
      (* doctor post-mortem, present iff the run stalled, under-completed
         or violated an invariant *)
}

let reject_names =
  [ "reject_batch"; "reject_witness"; "reject_shard"; "reject_completion";
    "reject_cert"; "dup_ref"; "reject_unknown"; "reject_rate";
    "reject_admission" ]

let rejection_counts sink =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      match e.ev_phase with
      | Trace.I when List.mem e.ev_name reject_names ->
        Hashtbl.replace tbl e.ev_name
          (1 + Option.value (Hashtbl.find_opt tbl e.ev_name) ~default:0)
      | _ -> ())
    (Trace.Sink.events sink);
  List.filter_map
    (fun n ->
      match Hashtbl.find_opt tbl n with Some c -> Some (n, c) | None -> None)
    reject_names

let pp_verdict ppf v =
  Fmt.pf ppf "@[<v>%s: %s@," v.v_name (if v.v_pass then "PASS" else "FAIL");
  Fmt.pf ppf "  completed %d/%d broadcasts; delivered per server: %a@,"
    v.v_completed v.v_expected
    Fmt.(array ~sep:(any " ") int)
    v.v_delivered;
  (match v.v_rejections with
   | [] -> ()
   | rs ->
     Fmt.pf ppf "  rejections: %a@,"
       Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
       rs);
  List.iter (fun n -> Fmt.pf ppf "  note: %s@," n) v.v_notes;
  List.iter (fun viol -> Fmt.pf ppf "  VIOLATION: %s@," viol) v.v_violations;
  (match v.v_diagnosis with
   | None -> ()
   | Some di -> Fmt.pf ppf "%a" Doctor.pp di);
  Fmt.pf ppf "@]"

(* --- scenario harness -------------------------------------------------------- *)

type scenario = {
  sc_name : string;
  sc_summary : string;
  sc_run : ?until:float -> seed:int64 -> scale:scale -> unit -> verdict;
}

(* Scenario dimensions: servers / interactive clients / messages each /
   simulated duration.  Quick is the CI size; full trades minutes of wall
   clock for n = 3f+1 with f = 2. *)
let dims = function Quick -> (4, 6, 2, 90.) | Full -> (7, 12, 3, 150.)

(* Build a deployment + clients, arm the schedule and the invariant
   checker, drive staggered client traffic through the faults, and reduce
   everything to a verdict.

   [make_schedule] runs after clients exist so it can resolve node ids;
   [crashed_clients]'s messages are excluded from the completion and
   validity expectations; [degraded_servers] (crashed, partitioned or
   recovered-with-a-gap nodes) are held to agreement/no-duplication but
   not to full delivery; [expect_rejects] are instants that must appear —
   an attack scenario where nobody rejected anything means the attack
   never fired, which is itself a failure; [post] contributes extra
   scenario-specific violations at the end.

   [store]/[checkpoint_every] enable the per-server durable-storage model
   (required by [Restart_server] events).  [apps] attaches one Payments
   replica per server — deliveries are applied through the deliver hook
   and the app rides server checkpoints via snapshot/restore — so [post]
   can compare application digests across servers.

   Membership and adversarial-load knobs: [spare_servers] provisions idle
   slots for [Join_server] (size [apps] to capacity when using them);
   [admission] = (rate, burst) arms the brokers' per-client token
   buckets; [surge] = (time, count) signs up [count] extra clients at
   [time], each broadcasting one message that joins the completion and
   validity expectations (a flash crowd); [spam] = (t0, t1, greedy_rate,
   sybil_rate) floods the brokers between [t0] and [t1] with
   correctly-signed over-rate traffic from dense identities and with
   unknown-identity sybil submissions ([dense_clients] > 0 required for
   the former); [duration] overrides the scale's default run length.

   Fleet knobs (lib/fleet): [fleet] arms the broker-fleet client
   partitioning policy (clients home by hash instead of nearest-first and
   signups shard across brokers); [fair_admission] = (rate, burst) arms
   the servers' per-broker fair-admission token buckets on the order
   queue ("reject_admission" instants). *)
let run_case ?until ~name ~seed ~scale ~underlay ~n_brokers ?client_brokers
    ~make_schedule ?(crashed_clients = []) ?(degraded_servers = [])
    ?(expect_rejects = []) ?(store = false) ?(checkpoint_every = 0) ?apps
    ?(spare_servers = 0) ?(dense_clients = 0) ?admission ?surge ?spam
    ?fleet ?fair_admission ?duration ?(post = fun _ _ -> []) () =
  let n_servers, n_clients, msgs_each, base_duration = dims scale in
  let duration = Option.value duration ~default:base_duration in
  (* [until] kills the run early (doctor post-mortems on a run cut short
     of delivery); expectations are NOT scaled down, so an early kill
     surfaces as an under-completion with a diagnosis attached. *)
  let run_until = match until with Some u -> Float.min u duration | None -> duration in
  let admission_rate, admission_burst =
    Option.value admission ~default:(0., 0.)
  in
  let fair_admission_rate, fair_admission_burst =
    Option.value fair_admission ~default:(0., 0.)
  in
  let trace = Trace.Sink.memory () in
  let cfg =
    { Deployment.default_config with
      n_servers; spare_servers; n_brokers; underlay; seed; trace;
      dense_clients; admission_rate; admission_burst;
      fleet; fair_admission_rate; fair_admission_burst;
      store_enabled = store; checkpoint_every }
  in
  let d = Deployment.create cfg in
  let capacity = Deployment.capacity d in
  let inv = Invariant.create ~n_servers:capacity in
  let register_app i app =
    Deployment.set_server_app d i
      ~snapshot:(fun () -> Payments.snapshot app)
      ~restore:(fun s -> Payments.restore app s)
  in
  (match apps with
   | None -> Invariant.attach inv d
   | Some apps ->
     Deployment.server_deliver_hook d (fun server dl ->
         Invariant.observe inv ~server dl;
         if server < Array.length apps then
           ignore (Payments.apply_delivery apps.(server) dl));
     Array.iteri register_app apps);
  let clients =
    Array.init n_clients (fun _ -> Deployment.add_client d ?brokers:client_brokers ())
  in
  Array.iter Client.signup clients;
  (* Staggered waves keep traffic flowing while the faults are active:
     wave [j] enters every client's queue at [25 j] seconds, so mid-run
     crashes and partitions (injected between waves) always see traffic
     arriving after them. *)
  let engine = Deployment.engine d in
  let expected = ref [] in
  Array.iteri
    (fun i c ->
      for j = 0 to msgs_each - 1 do
        let m = Printf.sprintf "%s:c%d:m%d" name i j in
        if not (List.mem i crashed_clients) then
          expected := (Printf.sprintf "client %d message %d" i j, m) :: !expected;
        Engine.schedule_at engine
          ~time:(25. *. float_of_int j)
          (fun () -> Client.broadcast c m)
      done)
    clients;
  let expected = List.rev !expected in
  (* Flash crowd: a wave of brand-new clients — sign-up and all — lands
     at once; their broadcasts join the expectations. *)
  let surge_clients = ref [] in
  let surge_expected = ref [] in
  (match surge with
   | None -> ()
   | Some (time, count) ->
     Engine.schedule_at engine ~time (fun () ->
         for k = 0 to count - 1 do
           let c = Deployment.add_client d ?brokers:client_brokers () in
           Client.signup c;
           let m = Printf.sprintf "%s:surge%d" name k in
           surge_expected :=
             (Printf.sprintf "surge client %d" k, m) :: !surge_expected;
           Client.broadcast c m;
           surge_clients := c :: !surge_clients
         done));
  (* Spam floods: open-loop adversarial traffic through raw injector
     nodes, shed at broker intake. *)
  (match spam with
   | None -> ()
   | Some (t0, t1, greedy_rate, sybil_rate) ->
     let rng = Rng.create (Int64.logxor seed 0x5eed_5eedL) in
     Engine.schedule_at engine ~time:t0 (fun () ->
         if greedy_rate > 0. && dense_clients > 0 then
           ignore
             (Spam.start_greedy ~deployment:d ~rng ~rate:greedy_rate
                ~first_id:0
                ~clients:(min 64 dense_clients)
                ~until:t1 ());
         if sybil_rate > 0. then
           ignore
             (Spam.start_sybil ~deployment:d ~rng ~rate:sybil_rate
                ~first_fake_id:(dense_clients + 1_000_000)
                ~until:t1 ())));
  install d ~clients
    ~on_event:(function
      | Restart_server i | Join_server i | Replace_server i ->
        Invariant.reset_server inv i
      | _ -> ())
    ~after_event:(function
      | Replace_server i ->
        (* The slot now holds a brand-new Server instance: re-register
           the app hooks on it, and reset the app replica itself — the
           fresh identity re-learns everything through state transfer
           (peer checkpoint restore and/or record replay). *)
        (match apps with
         | Some apps when i < Array.length apps ->
           Payments.restore apps.(i) None;
           register_app i apps.(i)
         | _ -> ())
      | _ -> ())
    (make_schedule d clients);
  let completed_now () =
    (Array.to_list clients
    |> List.mapi (fun i c -> if List.mem i crashed_clients then 0 else Client.completed c)
    |> List.fold_left ( + ) 0)
    + List.fold_left (fun acc c -> acc + Client.completed c) 0 !surge_clients
  in
  let static_expected =
    List.length expected
    + (match surge with Some (_, count) -> count | None -> 0)
  in
  let watchdog =
    Doctor.watch d ~progress:completed_now ~expected:static_expected ()
  in
  Deployment.run d ~until:run_until;
  let expected = expected @ List.rev !surge_expected in
  let correct_servers =
    List.filter
      (fun s -> not (List.mem s degraded_servers))
      (List.init n_servers Fun.id)
  in
  Invariant.check_validity inv ~expected ~correct_servers;
  let completed = completed_now () in
  let n_expected = List.length expected in
  if completed < n_expected then
    Invariant.violate inv
      (Printf.sprintf
         "liveness: only %d of %d client broadcasts completed within %.0f s"
         completed n_expected run_until);
  let rejections = rejection_counts trace in
  List.iter
    (fun rn ->
      if not (List.mem_assoc rn rejections) then
        Invariant.violate inv
          (Printf.sprintf "expected \"%s\" rejections, observed none" rn))
    expect_rejects;
  List.iter (Invariant.violate inv) (post d inv);
  let violations = Invariant.violations inv in
  let diagnosis =
    match Doctor.stalled watchdog with
    | Some di -> Some di
    | None ->
      let post_mortem reason =
        Some
          (Doctor.diagnose d ~progress:completed ~expected:n_expected
             ~last_progress_at:(Doctor.last_progress_at watchdog) ~reason)
      in
      if completed < n_expected then post_mortem "incomplete"
      else if violations <> [] then post_mortem "invariant"
      else None
  in
  { v_name = name;
    v_pass = violations = [];
    v_violations = violations;
    v_expected = n_expected;
    v_completed = completed;
    v_delivered =
      Array.map Server.delivered_messages (Deployment.servers d);
    v_rejections = rejections;
    v_notes = [];
    v_diagnosis = diagnosis }

(* --- the scenarios ----------------------------------------------------------- *)

let sc_fig11a_crash =
  { sc_name = "fig11a-crash";
    sc_summary =
      "crash one PBFT server mid-run; the remaining 2f+1 keep delivering \
       (Fig. 11a)";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        run_case ?until ~name:"fig11a-crash" ~seed ~scale ~underlay:Deployment.Pbft
          ~n_brokers:2
          ~make_schedule:(fun _ _ -> [ (15., Crash_server (n_servers - 1)) ])
          ~degraded_servers:[ n_servers - 1 ] ()) }

let sc_broker_equivocation =
  { sc_name = "broker-equivocation";
    sc_summary =
      "broker 0 shows different halves of the server set conflicting \
       batches for the same (broker, number) slot; (broker, number) dedup \
       delivers exactly one, orphaned clients fail over (§4.4)";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"broker-equivocation" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~client_brokers:[ 0; 1 ]
          ~make_schedule:(fun _ _ -> [ (0., Byz_broker_equivocate 0) ])
          ~expect_rejects:[ "dup_ref" ] ()) }

let sc_broker_garble =
  { sc_name = "broker-garble";
    sc_summary =
      "all brokers but one are Byzantine (forged reduction multisig; \
       tampered payloads); servers refuse to witness and clients complete \
       through the last correct broker (§4.4.2 validity)";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"broker-garble" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:3
          ~client_brokers:[ 0; 1; 2 ]
          ~make_schedule:(fun _ _ ->
            [ (0., Byz_broker_garble 0); (0., Byz_broker_malform 1) ])
          ~expect_rejects:[ "reject_batch" ] ()) }

let sc_broker_withhold =
  { sc_name = "broker-withhold";
    sc_summary =
      "broker 0 completes batches but withholds delivery certificates; \
       clients resubmit elsewhere and complete via the exceptions path, \
       still delivered exactly once";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"broker-withhold" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~client_brokers:[ 0; 1 ]
          ~make_schedule:(fun _ _ -> [ (0., Byz_broker_withhold 0) ])
          ()) }

let sc_server_bad_shares =
  { sc_name = "server-bad-shares";
    sc_summary =
      "one server signs garbage witness shards and another refuses to \
       witness; brokers reject the bad shards and still assemble f+1 \
       quorums from honest servers";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"server-bad-shares" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~make_schedule:(fun _ _ ->
            [ (0., Byz_server_bad_shares 1); (0., Byz_server_refuse_witness 2) ])
          ~expect_rejects:[ "reject_shard" ] ()) }

let sc_partition_heal =
  { sc_name = "partition-heal";
    sc_summary =
      "isolate one PBFT server behind a partition, then heal; the \
       majority side keeps delivering, the isolated server stays a \
       correct prefix";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let majority = List.init (n_servers - 1) Fun.id in
        run_case ?until ~name:"partition-heal" ~seed ~scale ~underlay:Deployment.Pbft
          ~n_brokers:2
          ~make_schedule:(fun _ _ ->
            [ (12., Partition [ majority; [ n_servers - 1 ] ]); (30., Heal) ])
          ~degraded_servers:[ n_servers - 1 ] ()) }

let sc_lossy_wan =
  { sc_name = "lossy-wan";
    sc_summary =
      "heavy asymmetric loss on client links plus degraded inter-server \
       latency; the reliable-UDP layer retransmits and everything still \
       completes";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"lossy-wan" ~seed ~scale ~underlay:Deployment.Sequencer
          ~n_brokers:2
          ~make_schedule:(fun d clients ->
            let b0 = Deployment.broker_node_id d 0 in
            let b1 = Deployment.broker_node_id d 1 in
            let links =
              Array.to_list clients
              |> List.concat_map (fun c ->
                     match Deployment.node_of_client d c with
                     | None -> []
                     | Some node ->
                       [ (0., Set_link_loss (node, b0, 0.25));
                         (0., Set_link_loss (b0, node, 0.25));
                         (0., Set_link_loss (node, b1, 0.10)) ])
            in
            (0., Degrade_link (0, 1, 0.03))
            :: (0., Degrade_link (1, 0, 0.03))
            :: links)
          ~post:(fun d _ ->
            let retrans, _, _ = Deployment.rudp_stats d in
            if retrans = 0 then
              [ "expected reliable-UDP retransmissions under 25% loss, saw 0" ]
            else [])
          ()) }

let sc_kitchen_sink =
  { sc_name = "kitchen-sink";
    sc_summary =
      "everything at once: bad witness shards, withheld certificates, a \
       partition, a crash with recovery, and a lossy client link — \
       safety invariants hold and correct clients still complete";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let victim = n_servers - 1 in
        let majority = List.init (n_servers - 1) Fun.id in
        run_case ?until ~name:"kitchen-sink" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:3
          ~client_brokers:[ 0; 1; 2 ]
          ~make_schedule:(fun d clients ->
            let b0 = Deployment.broker_node_id d 0 in
            let loss =
              match Deployment.node_of_client d clients.(0) with
              | Some node ->
                [ (0., Set_link_loss (node, b0, 0.2));
                  (0., Set_link_loss (b0, node, 0.2)) ]
              | None -> []
            in
            loss
            @ [ (0., Byz_server_bad_shares 1);
                (0., Byz_broker_withhold 0);
                (8., Partition [ majority; [ victim ] ]);
                (12., Crash_server victim);
                (20., Heal);
                (30., Recover_server victim) ])
          ~degraded_servers:[ victim ]
          ~expect_rejects:[ "reject_shard" ] ()) }

(* Shared post-checks for the cold-restart scenarios: the restarted
   server must have finished catching up and its application state must
   be bit-identical (by digest) to a never-crashed replica's. *)
let restart_post ~victim ~(apps : Payments.t array) d _inv =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if Deployment.server_catching_up d victim then
    err "recovery: server %d never finished catching up" victim;
  if Payments.digest apps.(victim) <> Payments.digest apps.(0) then
    err "recovery: server %d app digest diverges from never-crashed server 0"
      victim;
  List.rev !errs

let sc_crash_cold_restart =
  { sc_name = "crash-cold-restart";
    sc_summary =
      "crash one server, cold-restart it from its simulated disk; it \
       replays the WAL from the last checkpoint, state-transfers the gap \
       from peers, ends live with the same app digest as a never-crashed \
       replica — and collection advanced past the crash window because \
       checkpoints stand in for the crashed server's counter";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let victim = n_servers - 1 in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        let collected_mid = ref 0 and collected_late = ref 0 in
        run_case ?until ~name:"crash-cold-restart" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~store:true ~checkpoint_every:4 ~apps
          ~make_schedule:(fun d _ ->
            let engine = Deployment.engine d in
            let survivor = (Deployment.servers d).(0) in
            Engine.schedule_at engine ~time:20. (fun () ->
                collected_mid := Server.collected_batches survivor);
            Engine.schedule_at engine ~time:34. (fun () ->
                collected_late := Server.collected_batches survivor);
            [ (15., Crash_server victim); (35., Restart_server victim) ])
          ~degraded_servers:[ victim ]
          ~post:(fun d inv ->
            let errs = restart_post ~victim ~apps d inv in
            if !collected_late <= !collected_mid then
              errs
              @ [ Printf.sprintf
                    "gc: collection did not advance while server %d was down \
                     (%d -> %d collected)"
                    victim !collected_mid !collected_late ]
            else errs)
          ()) }

let sc_lagging_restart =
  { sc_name = "lagging-restart";
    sc_summary =
      "a PBFT server lags behind a partition while the majority \
       checkpoints and collects past it, then crashes; its WAL alone \
       cannot cover the gap, so the cold restart must pull the peer \
       checkpoint and record tail via state transfer";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let victim = n_servers - 1 in
        let majority = List.init (n_servers - 1) Fun.id in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        run_case ?until ~name:"lagging-restart" ~seed ~scale ~underlay:Deployment.Pbft
          ~n_brokers:2 ~store:true ~checkpoint_every:2 ~apps
          ~make_schedule:(fun _ _ ->
            [ (10., Partition [ majority; [ victim ] ]);
              (26., Heal);
              (28., Crash_server victim);
              (40., Restart_server victim) ])
          ~degraded_servers:[ victim ]
          ~post:(fun d inv ->
            let errs = restart_post ~victim ~apps d inv in
            let sv = (Deployment.servers d).(victim) in
            (* The gap must have been covered by peer state: either WAL
               records or a whole peer checkpoint (which of the two depends
               on where the responder's checkpoint cadence fell). *)
            if Server.catch_up_records sv = 0
               && not (Server.catch_up_checkpoint sv)
            then
              errs
              @ [ Printf.sprintf
                    "recovery: expected state transfer (records or peer \
                     checkpoint) on server %d, saw neither"
                    victim ]
            else errs)
          ()) }

let sc_checkpoint_partition =
  { sc_name = "checkpoint-partition";
    sc_summary =
      "checkpoints keep being taken while one server is isolated — so \
       collection advances past its stalled counter — and a cold restart \
       after the heal installs a peer checkpoint ahead of the local WAL";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let victim = n_servers - 1 in
        let majority = List.init (n_servers - 1) Fun.id in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        let ck_mid = ref 0 and ck_late = ref 0 in
        run_case ?until ~name:"checkpoint-partition" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~store:true ~checkpoint_every:2 ~apps
          ~make_schedule:(fun d _ ->
            let engine = Deployment.engine d in
            Engine.schedule_at engine ~time:9. (fun () ->
                ck_mid := Deployment.server_checkpoints d 0);
            Engine.schedule_at engine ~time:29. (fun () ->
                ck_late := Deployment.server_checkpoints d 0);
            [ (8., Partition [ majority; [ victim ] ]);
              (30., Heal);
              (32., Restart_server victim) ])
          ~degraded_servers:[ victim ]
          ~post:(fun d inv ->
            let errs = restart_post ~victim ~apps d inv in
            if !ck_late <= !ck_mid then
              errs
              @ [ Printf.sprintf
                    "checkpointing stalled during the partition (%d -> %d \
                     checkpoints on server 0)"
                    !ck_mid !ck_late ]
            else errs)
          ()) }

(* Shared post-checks for the membership scenarios: every slot active at
   the end of the run must be caught up, at the expected epoch, and hold
   an application digest bit-identical to slot 0's (slot 0 never leaves:
   under the sequencer underlay it is the ordering node). *)
let reconfig_post ?expected_epoch ~(apps : Payments.t array) d _inv =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let active =
    Repro_chopchop.Membership.active_slots (Deployment.membership d)
  in
  List.iter
    (fun s ->
      if Deployment.server_catching_up d s then
        err "membership: server %d still catching up at end of run" s;
      (match expected_epoch with
       | Some e when Deployment.server_epoch d s <> e ->
         err "membership: server %d at epoch %d, expected %d" s
           (Deployment.server_epoch d s) e
       | _ -> ());
      if
        s < Array.length apps
        && Payments.digest apps.(s) <> Payments.digest apps.(0)
      then err "membership: server %d app digest diverges from server 0" s)
    active;
  List.rev !errs

let sc_reconfig_join =
  { sc_name = "reconfig-join";
    sc_summary =
      "a spare server joins through an ordered Reconfigure command: it \
       bootstraps via cold-restart state transfer, every replica rolls \
       the committee forward at the same rank, and the joiner ends with \
       the same app digest as the founding members";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let spare = n_servers in
        let apps = Array.init (n_servers + 1) (fun _ -> Payments.create ()) in
        run_case ?until ~name:"reconfig-join" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~store:true ~checkpoint_every:4 ~spare_servers:1 ~apps
          ~make_schedule:(fun _ _ -> [ (20., Join_server spare) ])
          ~post:(fun d inv ->
            let errs = reconfig_post ~expected_epoch:1 ~apps d inv in
            if
              not
                (Repro_chopchop.Membership.is_active (Deployment.membership d)
                   spare)
            then errs @ [ "membership: joined server not active" ]
            else errs)
          ()) }

let sc_reconfig_leave =
  { sc_name = "reconfig-leave";
    sc_summary =
      "a server leaves through an ordered Reconfigure command: it tears \
       itself down when the command reaches it in the total order, the \
       survivors shrink their quorums at the same rank, and traffic keeps \
       completing";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let leaver = n_servers - 1 in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        run_case ?until ~name:"reconfig-leave" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2 ~apps
          ~make_schedule:(fun _ _ -> [ (20., Leave_server leaver) ])
          ~degraded_servers:[ leaver ]
          ~post:(fun d inv ->
            let errs = reconfig_post ~expected_epoch:1 ~apps d inv in
            if
              Repro_chopchop.Membership.is_active (Deployment.membership d)
                leaver
            then errs @ [ "membership: departed server still active" ]
            else errs)
          ()) }

let sc_reconfig_replace =
  { sc_name = "reconfig-replace";
    sc_summary =
      "a server is replaced in place by a fresh identity (new multisig \
       key, empty disk, bumped generation): the ordered Replace rolls the \
       committee key and the newcomer re-learns the full history through \
       state transfer";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let victim = n_servers - 1 in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        run_case ?until ~name:"reconfig-replace" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~store:true ~checkpoint_every:4 ~apps
          ~make_schedule:(fun _ _ -> [ (22., Replace_server victim) ])
          ~post:(fun d inv ->
            let errs = reconfig_post ~expected_epoch:1 ~apps d inv in
            let gen =
              Repro_chopchop.Membership.generation (Deployment.membership d)
                victim
            in
            if gen <> 1 then
              errs
              @ [ Printf.sprintf
                    "membership: replaced server at generation %d, expected 1"
                    gen ]
            else errs)
          ()) }

let sc_rolling_upgrade =
  { sc_name = "rolling-upgrade";
    sc_summary =
      "rolling upgrade under sustained load: every server in sequence is \
       crashed and cold-restarted from its disk (including the ordering \
       node); each one state-transfers its gap and the fleet ends with \
       bit-identical app digests";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        let apps = Array.init n_servers (fun _ -> Payments.create ()) in
        run_case ?until ~name:"rolling-upgrade" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~store:true ~checkpoint_every:4 ~apps
          ~make_schedule:(fun _ _ ->
            List.concat
              (List.init n_servers (fun i ->
                   let t0 = 30. +. (12. *. float_of_int i) in
                   [ (t0, Crash_server i); (t0 +. 6., Restart_server i) ])))
          ~post:(fun d inv -> reconfig_post ~expected_epoch:0 ~apps d inv)
          ()) }

let sc_flash_crowd =
  { sc_name = "flash-crowd";
    sc_summary =
      "a 10x client surge lands mid-run — sign-ups and all — on top of \
       the steady workload; distillation absorbs the crowd and every \
       surge broadcast still completes";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let _, n_clients, _, _ = dims scale in
        run_case ?until ~name:"flash-crowd" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~surge:(30., 10 * n_clients)
          ~make_schedule:(fun _ _ -> [])
          ()) }

let sc_spam_sybil =
  { sc_name = "spam-sybil";
    sc_summary =
      "sybil submissions under unknown identities plus a correctly-signed \
       greedy flood far past the per-client admission rate; both are shed \
       at broker intake (reject_unknown / reject_rate) and the honest \
       clients keep completing";
    sc_run =
      (fun ?until ~seed ~scale () ->
        run_case ?until ~name:"spam-sybil" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~dense_clients:2048
          ~admission:(2., 6.)
          ~spam:(10., 55., 250., 120.)
          ~expect_rejects:[ "reject_unknown"; "reject_rate" ]
          ~make_schedule:(fun _ _ -> [])
          ()) }

let sc_fleet_broker_crash =
  { sc_name = "fleet-broker-crash";
    sc_summary =
      "crash the fleet's hottest home broker mid-run: its partition's \
       clients walk their failover rotation, the signup shard hands off \
       to the same successor, and every broadcast still completes; on \
       recovery the partition reshards back";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let victim = ref 0 in
        run_case ?until ~name:"fleet-broker-crash" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:3
          ~fleet:Repro_fleet.Fleet.Hash
          ~make_schedule:(fun d _ ->
            (* The fleet's client accounting is filled at add_client time,
               so the hottest partition is already known here. *)
            (match Deployment.fleet_hottest d with
             | Some (b, _) -> victim := b
             | None -> ());
            [ (15., Crash_broker !victim); (45., Recover_broker !victim) ])
          ~post:(fun d _ ->
            let errs = ref [] in
            (match Deployment.fleet d with
             | None -> errs := "fleet: no fleet policy armed" :: !errs
             | Some _ -> ());
            if Deployment.fleet_handoff_bytes d = 0 then
              errs :=
                "fleet: expected shard-handoff bytes on the broker crash, \
                 saw none"
                :: !errs;
            List.rev !errs)
          ()) }

let sc_fleet_hot_shard =
  { sc_name = "fleet-hot-shard";
    sc_summary =
      "a greedy flood aimed entirely at the fleet's hottest broker; the \
       servers' per-broker fair-admission budget sheds the hot broker's \
       excess (reject_admission) while the sibling partitions keep \
       completing undisturbed";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let hot = ref 0 in
        run_case ?until ~name:"fleet-hot-shard" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:3
          ~fleet:Repro_fleet.Fleet.Hash
          ~dense_clients:2048
          ~fair_admission:(1., 5.)
          ~expect_rejects:[ "reject_admission" ]
          ~make_schedule:(fun d _ ->
            (match Deployment.fleet_hottest d with
             | Some (b, _) -> hot := b
             | None -> ());
            let engine = Deployment.engine d in
            let rng = Rng.create (Int64.logxor seed 0xF1EE7F100DL) in
            Engine.schedule_at engine ~time:10. (fun () ->
                ignore
                  (Spam.start_greedy ~deployment:d ~rng ~rate:400.
                     ~first_id:0 ~clients:64 ~broker:!hot ~until:55. ()));
            [])
          ~post:(fun d _ ->
            match Deployment.admission_rejects d with
            | [] -> [ "fleet: no per-broker admission rejects recorded" ]
            | rejects ->
              let worst, _ =
                List.fold_left
                  (fun (wb, wn) (b, n) -> if n > wn then (b, n) else (wb, wn))
                  (-1, min_int) rejects
              in
              if worst <> !hot then
                [ Printf.sprintf
                    "fleet: broker %d collected the most admission rejects, \
                     expected the flooded broker %d"
                    worst !hot ]
              else [])
          ()) }

let sc_reconfig_kitchen_sink =
  { sc_name = "reconfig-kitchen-sink";
    sc_summary =
      "the full membership gauntlet under adversarial load: a spare joins \
       via state transfer, a founding member leaves, a rolling upgrade \
       cold-restarts every remaining server in sequence — all under a \
       10x flash crowd plus sybil and over-rate spam — and the epoch \
       rolls forward deterministically with bit-identical app digests";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, n_clients, _, _ = dims scale in
        let spare = n_servers in
        let leaver = 1 in
        let apps = Array.init (n_servers + 1) (fun _ -> Payments.create ()) in
        let upgraded =
          (* Every slot that is still a member after the leave, spare
             included; slot 0 last so the sequencer stalls only once the
             others are already back. *)
          List.filter (fun s -> s <> leaver) (List.init n_servers Fun.id)
          @ [ spare ]
        in
        run_case ?until ~name:"reconfig-kitchen-sink" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:3
          ~client_brokers:[ 0; 1; 2 ]
          ~store:true ~checkpoint_every:4 ~spare_servers:1
          ~dense_clients:2048 ~admission:(1., 4.) ~apps
          ~surge:(40., 10 * n_clients)
          ~spam:(15., 60., 300., 100.)
          ~expect_rejects:[ "reject_unknown"; "reject_rate" ]
          ~duration:150.
          ~make_schedule:(fun _ _ ->
            [ (20., Join_server spare); (35., Leave_server leaver) ]
            @ List.concat
                (List.mapi
                   (fun k s ->
                     let t0 = 50. +. (12. *. float_of_int k) in
                     [ (t0, Crash_server s); (t0 +. 6., Restart_server s) ])
                   upgraded))
          ~degraded_servers:[ leaver ]
          ~post:(fun d inv ->
            let errs = reconfig_post ~expected_epoch:2 ~apps d inv in
            let m = Deployment.membership d in
            let active_count =
              Repro_chopchop.Membership.active_count m
            in
            if active_count <> n_servers then
              errs
              @ [ Printf.sprintf
                    "membership: %d active slots at end of run, expected %d"
                    active_count n_servers ]
            else errs)
          ()) }

let scenarios =
  [ sc_fig11a_crash; sc_broker_equivocation; sc_broker_garble;
    sc_broker_withhold; sc_server_bad_shares; sc_partition_heal; sc_lossy_wan;
    sc_kitchen_sink; sc_crash_cold_restart; sc_lagging_restart;
    sc_checkpoint_partition; sc_reconfig_join; sc_reconfig_leave;
    sc_reconfig_replace; sc_rolling_upgrade; sc_flash_crowd; sc_spam_sybil;
    sc_fleet_broker_crash; sc_fleet_hot_shard; sc_reconfig_kitchen_sink ]

let find name = List.find_opt (fun s -> s.sc_name = name) scenarios

(* Deliberately-failing diagnostic scenarios, kept OUT of [scenarios] so
   `chaos all`, sweeps and CI stay green.  stall-partition cuts every
   server off from the brokers (and clients) at t = 10 s and never heals:
   delivery stops dead, the in-run watchdog fires, and the verdict
   carries a diagnosis naming the partition — the doctor's worked
   example and the CI doctor smoke target. *)
let sc_stall_partition =
  { sc_name = "stall-partition";
    sc_summary =
      "DIAGNOSTIC (always fails): full servers-vs-brokers partition at \
       t = 10 s, never healed; the delivery watchdog must fire and name \
       the partition";
    sc_run =
      (fun ?until ~seed ~scale () ->
        let n_servers, _, _, _ = dims scale in
        run_case ?until ~name:"stall-partition" ~seed ~scale
          ~underlay:Deployment.Sequencer ~n_brokers:2
          ~make_schedule:(fun _ _ ->
            (* Group 0 is the implicit rest-of-the-world (brokers and
               clients); listing the servers as the second group cuts
               every server<->broker link at once. *)
            [ (10., Partition [ []; List.init n_servers Fun.id ]) ])
          ()) }

let diagnostics = [ sc_stall_partition ]

let find_any name =
  match find name with
  | Some s -> Some s
  | None -> List.find_opt (fun s -> s.sc_name = name) diagnostics

let run_all ~seed ~scale =
  List.map (fun s -> s.sc_run ~seed ~scale ()) scenarios
