(** Encrypt-order-reveal front-running protection (§4.4.3).

    A Byzantine broker sees message contents before they are ordered and
    could front-run trades (§4.4.3 "Front-running").  The mitigation the
    paper points to — compatible with Chop Chop as-is — is to broadcast a
    {e sealed} commitment first and reveal the operation only after the
    commitment is ordered:

    + the client broadcasts [seal ~payload ~salt] — a hash commitment the
      broker cannot invert;
    + once the seal is delivered (its position in the total order is now
      fixed), the client broadcasts [reveal ~payload ~salt];
    + the executor applies revealed operations {e in seal order},
      regardless of the order in which reveals arrive.

    A seal whose reveal does not arrive within [ttl] subsequent
    deliveries is voided so it cannot block execution forever (the usual
    commit-reveal liveness rule; a client that crashes between seal and
    reveal loses only its own operation).

    The module is an executor wrapping any operation applier; it consumes
    the (client id, message) stream a Chop Chop server delivers.  Sealing
    is selective (§4.4.3): messages that are not seal/reveal frames can
    be passed to the applier directly by the caller. *)

type t

val create :
  apply:(Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> unit) ->
  ?ttl:int ->
  unit ->
  t
(** [ttl] (default 64): deliveries a seal may wait for its reveal. *)

val seal : payload:Repro_chopchop.Types.message -> salt:string -> Repro_chopchop.Types.message
(** The commitment frame a client broadcasts first (33 B). *)

val reveal : payload:Repro_chopchop.Types.message -> salt:string -> Repro_chopchop.Types.message
(** The opening frame, broadcast after the seal is delivered. *)

val is_frame : Repro_chopchop.Types.message -> bool
(** Whether a delivered message belongs to this protocol (seal or
    reveal); other messages are the application's own. *)

val on_deliver : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> unit
(** Feed a delivered seal/reveal frame (in delivery order). *)

val executed : t -> int
(** Operations applied so far (in seal order). *)

val pending : t -> int
(** Seals whose reveal has not yet arrived (nor expired). *)

val voided : t -> int
(** Seals expired without a matching reveal. *)

val snapshot : t -> string
(** Serialization of the executor state: counters plus the live seal
    queue in delivery order (see {!App_intf.S}).  The wrapped [apply]
    closure and [ttl] are structural, not serialized state. *)

val restore : t -> string option -> unit
(** [restore t None] resets to the freshly-created state; [restore t
    (Some s)] replaces the executor state with the snapshot's.  The
    [apply] closure and [ttl] of [t] are kept. *)

val digest : t -> string
