(** Common shape of the §6.8 applications.

    Chop Chop delivers messages already ordered, authenticated and
    deduplicated, so an application is nothing but a deterministic state
    machine over (client id, message) pairs — the paper's three demo apps
    total ~300 lines of logic.  [apply_delivery] consumes either explicit
    operations or a dense bulk range (whose operations are regenerated
    deterministically, as the paper's are "generated at random"). *)

module type S = sig
  type t

  val name : string

  val apply_op : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> bool
  (** Apply one operation; [false] if it was rejected by application logic
      (e.g. insufficient balance) — rejected is still "processed". *)

  val apply_delivery : t -> Repro_chopchop.Proto.delivery -> int
  (** Apply everything in a delivery; returns operations processed. *)

  val ops_applied : t -> int

  (** {2 Durable state (lib/store checkpoints)} *)

  val snapshot : t -> string
  (** Canonical serialization of the whole application state — the
      [ck_app] payload of a server checkpoint.  Sparse where the state
      is (only cells diverging from their initial value are encoded). *)

  val restore : t -> string option -> unit
  (** [restore t (Some s)] reinstates a {!snapshot}; [restore t None]
      resets to the initial (creation-time) state — the cold-restart
      wipe before WAL replay. *)

  val digest : t -> string
  (** SHA-256 of {!snapshot}: two replicas with equal digests hold
      identical application state (recovery-convergence assertions). *)
end

(* Cheap deterministic mixing for bulk-op generation. *)
let mix a b =
  let x = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let x = (x lxor (x lsr 13)) * 0xC2B2AE3D in
  (x lxor (x lsr 16)) land max_int

(* Little-endian fixed-width snapshot encoding, shared by the apps. *)

let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let get_i64 s off = (Int64.to_int (String.get_int64_le s off), off + 8)

let put_str buf s =
  put_i64 buf (String.length s);
  Buffer.add_string buf s

let get_str s off =
  let n, off = get_i64 s off in
  (String.sub s off n, off + n)
