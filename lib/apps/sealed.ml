module Sha256 = Repro_crypto.Sha256

let seal_tag = '\x01'
let reveal_tag = '\x02'

let commitment ~payload ~salt = Sha256.digest ("sealed|" ^ salt ^ "|" ^ payload)

let seal ~payload ~salt = String.make 1 seal_tag ^ commitment ~payload ~salt

let reveal ~payload ~salt =
  (* tag | salt length | salt | payload *)
  Printf.sprintf "%c%c%s%s" reveal_tag (Char.chr (String.length salt)) salt payload

let is_frame msg =
  String.length msg > 0 && (msg.[0] = seal_tag || msg.[0] = reveal_tag)

type status = Pending | Revealed of Repro_chopchop.Types.message | Voided

type entry = {
  e_client : Repro_chopchop.Types.client_id;
  e_commitment : string;
  e_position : int;
  mutable e_status : status;
}

type t = {
  apply : Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> unit;
  ttl : int;
  (* Seals in delivery order; executed prefix is dropped. *)
  mutable queue : entry list; (* reversed: newest first *)
  mutable queue_front : entry list;
  by_key : (Repro_chopchop.Types.client_id * string, entry) Hashtbl.t;
  mutable position : int;
  mutable executed : int;
  mutable voided : int;
}

let create ~apply ?(ttl = 64) () =
  { apply; ttl; queue = []; queue_front = []; by_key = Hashtbl.create 64;
    position = 0; executed = 0; voided = 0 }

let executed t = t.executed
let voided t = t.voided
let pending t = Hashtbl.length t.by_key

(* Apply every head-of-queue entry that is resolved; expire stale heads. *)
let drain t =
  let rec go () =
    let head =
      match t.queue_front with
      | e :: _ -> Some e
      | [] ->
        (match List.rev t.queue with
         | [] -> None
         | xs ->
           t.queue_front <- xs;
           t.queue <- [];
           Some (List.hd xs))
    in
    match head with
    | None -> ()
    | Some e ->
      let expired = e.e_status = Pending && t.position - e.e_position > t.ttl in
      if expired then e.e_status <- Voided;
      (match e.e_status with
       | Revealed payload ->
         t.queue_front <- List.tl t.queue_front;
         Hashtbl.remove t.by_key (e.e_client, e.e_commitment);
         t.executed <- t.executed + 1;
         t.apply e.e_client payload;
         go ()
       | Voided ->
         t.queue_front <- List.tl t.queue_front;
         Hashtbl.remove t.by_key (e.e_client, e.e_commitment);
         t.voided <- t.voided + 1;
         go ()
       | Pending -> ())
  in
  go ()

let on_deliver t client msg =
  t.position <- t.position + 1;
  (if String.length msg >= 1 then
     match msg.[0] with
     | c when c = seal_tag ->
       if String.length msg = 33 then begin
         let com = String.sub msg 1 32 in
         (* One live seal per (client, commitment); replays ignored. *)
         if not (Hashtbl.mem t.by_key (client, com)) then begin
           let e =
             { e_client = client; e_commitment = com; e_position = t.position;
               e_status = Pending }
           in
           Hashtbl.add t.by_key (client, com) e;
           t.queue <- e :: t.queue
         end
       end
     | c when c = reveal_tag ->
       if String.length msg >= 2 then begin
         let salt_len = Char.code msg.[1] in
         if String.length msg >= 2 + salt_len then begin
           let salt = String.sub msg 2 salt_len in
           let payload = String.sub msg (2 + salt_len) (String.length msg - 2 - salt_len) in
           let com = commitment ~payload ~salt in
           match Hashtbl.find_opt t.by_key (client, com) with
           | Some e when e.e_status = Pending -> e.e_status <- Revealed payload
           | Some _ | None -> () (* reveal without (live) seal: dropped *)
         end
       end
     | _ -> ());
  drain t

(* --- durable state (lib/store checkpoints) ------------------------------ *)

let snapshot t =
  let buf = Buffer.create 128 in
  App_intf.put_i64 buf t.ttl;
  App_intf.put_i64 buf t.position;
  App_intf.put_i64 buf t.executed;
  App_intf.put_i64 buf t.voided;
  let live = t.queue_front @ List.rev t.queue in
  App_intf.put_i64 buf (List.length live);
  List.iter
    (fun e ->
      App_intf.put_i64 buf e.e_client;
      App_intf.put_str buf e.e_commitment;
      App_intf.put_i64 buf e.e_position;
      match e.e_status with
      | Pending -> App_intf.put_i64 buf 0
      | Revealed payload ->
        App_intf.put_i64 buf 1;
        App_intf.put_str buf payload
      | Voided -> App_intf.put_i64 buf 2)
    live;
  Buffer.contents buf

let reset t =
  t.queue <- [];
  t.queue_front <- [];
  Hashtbl.reset t.by_key;
  t.position <- 0;
  t.executed <- 0;
  t.voided <- 0

let restore t = function
  | None -> reset t
  | Some s ->
    reset t;
    let _ttl, off = App_intf.get_i64 s 0 in
    let position, off = App_intf.get_i64 s off in
    let executed, off = App_intf.get_i64 s off in
    let voided, off = App_intf.get_i64 s off in
    t.position <- position;
    t.executed <- executed;
    t.voided <- voided;
    let k, off = App_intf.get_i64 s off in
    let off = ref off in
    let live = ref [] in
    for _ = 1 to k do
      let client, o = App_intf.get_i64 s !off in
      let com, o = App_intf.get_str s o in
      let pos, o = App_intf.get_i64 s o in
      let tag, o = App_intf.get_i64 s o in
      let status, o =
        match tag with
        | 1 ->
          let payload, o = App_intf.get_str s o in
          (Revealed payload, o)
        | 2 -> (Voided, o)
        | _ -> (Pending, o)
      in
      off := o;
      let e =
        { e_client = client; e_commitment = com; e_position = pos;
          e_status = status }
      in
      Hashtbl.add t.by_key (client, com) e;
      live := e :: !live
    done;
    (* [live] is reversed (newest first) — exactly the [queue] encoding. *)
    t.queue_front <- [];
    t.queue <- !live

let digest t = Sha256.digest (snapshot t)
