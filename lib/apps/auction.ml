module Proto = Repro_chopchop.Proto
module Sha256 = Repro_crypto.Sha256

type token = {
  mutable owner : int;
  mutable bidder : int; (* -1: none *)
  mutable bid : int;
}

type t = {
  tokens : token array;
  balances : int array;
  locked : int array;
  initial_balance : int;
  mutable ops : int;
  mutable rejected : int;
}

let name = "auction"

let create ?(tokens = 1024) ?(accounts = 1 lsl 20) ?(initial_balance = 1_000_000) () =
  { tokens = Array.init tokens (fun k -> { owner = k; bidder = -1; bid = 0 });
    balances = Array.make accounts initial_balance;
    locked = Array.make accounts 0;
    initial_balance;
    ops = 0; rejected = 0 }

type op = Bid of { token : int; amount : int } | Take of { token : int }

let encode_op op =
  let b = Bytes.create 8 in
  (match op with
   | Bid { token; amount } ->
     Bytes.set_int32_le b 0 (Int32.of_int (token lor 0x4000_0000));
     Bytes.set_int32_le b 4 (Int32.of_int amount)
   | Take { token } ->
     Bytes.set_int32_le b 0 (Int32.of_int token);
     Bytes.set_int32_le b 4 0l);
  Bytes.to_string b

let decode_op msg =
  if String.length msg < 8 then None
  else begin
    let w = Int32.to_int (String.get_int32_le msg 0) in
    let amount = Int32.to_int (String.get_int32_le msg 4) in
    if w land 0x4000_0000 <> 0 then
      let token = w land 0x3FFF_FFFF in
      if amount > 0 then Some (Bid { token; amount }) else None
    else if w >= 0 then Some (Take { token = w })
    else None
  end

let account t id = id mod Array.length t.balances
let token t k = t.tokens.(k mod Array.length t.tokens)

let reject t =
  t.rejected <- t.rejected + 1;
  false

let apply t id op =
  t.ops <- t.ops + 1;
  let acct = account t id in
  match op with
  | Bid { token = k; amount } ->
    let tok = token t k in
    if tok.owner = acct then reject t
    else if amount <= tok.bid then reject t
    else if t.balances.(acct) < amount then reject t
    else begin
      (* Refund the outbid party, lock the new bid. *)
      if tok.bidder >= 0 then begin
        t.locked.(tok.bidder) <- t.locked.(tok.bidder) - tok.bid;
        t.balances.(tok.bidder) <- t.balances.(tok.bidder) + tok.bid
      end;
      t.balances.(acct) <- t.balances.(acct) - amount;
      t.locked.(acct) <- t.locked.(acct) + amount;
      tok.bidder <- acct;
      tok.bid <- amount;
      true
    end
  | Take { token = k } ->
    let tok = token t k in
    if tok.owner <> acct || tok.bidder < 0 then reject t
    else begin
      (* Transfer the locked funds to the seller, the token to the buyer. *)
      t.locked.(tok.bidder) <- t.locked.(tok.bidder) - tok.bid;
      t.balances.(acct) <- t.balances.(acct) + tok.bid;
      tok.owner <- tok.bidder;
      tok.bidder <- -1;
      tok.bid <- 0;
      true
    end

let apply_op t id msg =
  match decode_op msg with
  | Some op -> apply t id op
  | None ->
    t.ops <- t.ops + 1;
    reject t

let apply_bulk t ~first_id ~count ~tag =
  for i = 0 to count - 1 do
    let id = first_id + i in
    let h = App_intf.mix id tag in
    let k = h mod Array.length t.tokens in
    let op =
      if h land 7 = 0 then Take { token = k }
      else Bid { token = k; amount = 1 + ((h lsr 8) land 0xFFFF) }
    in
    ignore (apply t id op)
  done;
  count

let apply_delivery t = function
  | Proto.Ops ops ->
    Array.iter (fun (id, msg) -> ignore (apply_op t id msg)) ops;
    Array.length ops
  | Proto.Bulk { first_id; count; tag; msg_bytes = _ } ->
    apply_bulk t ~first_id ~count ~tag

let ops_applied t = t.ops
let rejected t = t.rejected
let owner t k = (token t k).owner

let highest_bid t k =
  let tok = token t k in
  if tok.bidder < 0 then None else Some (tok.bidder, tok.bid)

let balance t id = t.balances.(account t id)
let locked t id = t.locked.(account t id)

let total_funds t =
  Array.fold_left ( + ) 0 t.balances + Array.fold_left ( + ) 0 t.locked

(* --- durable state (lib/store checkpoints) ------------------------------ *)

let sparse_deltas ~skip arr =
  let deltas = ref [] and k = ref 0 in
  Array.iteri
    (fun i v ->
      if not (skip i v) then begin
        incr k;
        deltas := (i, v) :: !deltas
      end)
    arr;
  (!k, List.rev !deltas)

let put_deltas buf (k, deltas) =
  App_intf.put_i64 buf k;
  List.iter
    (fun (i, v) ->
      App_intf.put_i64 buf i;
      App_intf.put_i64 buf v)
    deltas

let snapshot t =
  let buf = Buffer.create 256 in
  App_intf.put_i64 buf (Array.length t.tokens);
  App_intf.put_i64 buf (Array.length t.balances);
  App_intf.put_i64 buf t.initial_balance;
  App_intf.put_i64 buf t.ops;
  App_intf.put_i64 buf t.rejected;
  (* Tokens diverging from "owned by k, no standing bid". *)
  let moved = ref [] and k = ref 0 in
  Array.iteri
    (fun i tok ->
      if tok.owner <> i || tok.bidder <> -1 || tok.bid <> 0 then begin
        incr k;
        moved := (i, tok) :: !moved
      end)
    t.tokens;
  App_intf.put_i64 buf !k;
  List.iter
    (fun (i, tok) ->
      App_intf.put_i64 buf i;
      App_intf.put_i64 buf tok.owner;
      App_intf.put_i64 buf tok.bidder;
      App_intf.put_i64 buf tok.bid)
    (List.rev !moved);
  put_deltas buf (sparse_deltas ~skip:(fun _ v -> v = t.initial_balance) t.balances);
  put_deltas buf (sparse_deltas ~skip:(fun _ v -> v = 0) t.locked);
  Buffer.contents buf

let reset t =
  Array.iteri
    (fun i tok ->
      tok.owner <- i;
      tok.bidder <- -1;
      tok.bid <- 0)
    t.tokens;
  Array.fill t.balances 0 (Array.length t.balances) t.initial_balance;
  Array.fill t.locked 0 (Array.length t.locked) 0;
  t.ops <- 0;
  t.rejected <- 0

let get_deltas s off arr =
  let k, off = App_intf.get_i64 s off in
  let off = ref off in
  for _ = 1 to k do
    let i, o = App_intf.get_i64 s !off in
    let v, o = App_intf.get_i64 s o in
    off := o;
    if i < Array.length arr then arr.(i) <- v
  done;
  !off

let restore t = function
  | None -> reset t
  | Some s ->
    reset t;
    let _tokens, off = App_intf.get_i64 s 0 in
    let _accounts, off = App_intf.get_i64 s off in
    let _initial, off = App_intf.get_i64 s off in
    let ops, off = App_intf.get_i64 s off in
    let rejected, off = App_intf.get_i64 s off in
    t.ops <- ops;
    t.rejected <- rejected;
    let k, off = App_intf.get_i64 s off in
    let off = ref off in
    for _ = 1 to k do
      let i, o = App_intf.get_i64 s !off in
      let owner, o = App_intf.get_i64 s o in
      let bidder, o = App_intf.get_i64 s o in
      let bid, o = App_intf.get_i64 s o in
      off := o;
      if i < Array.length t.tokens then begin
        let tok = t.tokens.(i) in
        tok.owner <- owner;
        tok.bidder <- bidder;
        tok.bid <- bid
      end
    done;
    let o = get_deltas s !off t.balances in
    ignore (get_deltas s o t.locked)

let digest t = Sha256.digest (snapshot t)
