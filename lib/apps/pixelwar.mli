(** The "Pixel war" application (§6.8).

    Clients paint RGB pixels on a shared 2,048 × 2,048 board.  An 8-byte
    message packs the pixel coordinate (22 bits) and colour (24 bits);
    delivery order decides who wins a pixel — exactly what Atomic
    Broadcast provides.  Embarrassingly parallel and trivially cheap per
    operation, it inherits Chop Chop's full throughput (35 M op/s). *)

type t

val create : ?width:int -> ?height:int -> unit -> t
(** Default 2,048 × 2,048. *)

val encode_op : x:int -> y:int -> rgb:int -> Repro_chopchop.Types.message
val decode_op : t -> Repro_chopchop.Types.message -> (int * int * int) option

val apply_op : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> bool
val apply_delivery : t -> Repro_chopchop.Proto.delivery -> int
val ops_applied : t -> int

val pixel : t -> x:int -> y:int -> int
val painted : t -> int
(** Number of pixels that have been painted at least once. *)

val snapshot : t -> string
(** Sparse serialization: header + (index, rgb) for painted pixels only
    (see {!App_intf.S}). *)

val restore : t -> string option -> unit
val digest : t -> string

val name : string
