(** The Payments application (§2.1, §6.8).

    A payment is (sender, recipient, amount); the sender is the
    authenticated Chop Chop client id — free, thanks to integrity — and
    the 8-byte message encodes recipient (4 B) and amount (4 B), exactly
    the encoding the paper's cost analysis uses (§2.1: 12 B of useful
    payload, of which 4 B sender ride in the identifier).

    Balances live in a fixed-size account table; ids map to accounts
    modulo the table size (the paper's 257 M clients map onto synthetic
    accounts the same way).  Transfers with insufficient funds are
    rejected but still count as processed operations. *)

type t

val create : ?accounts:int -> ?initial_balance:int -> unit -> t
(** Defaults: 1,048,576 accounts, 1,000,000 initial balance each. *)

val encode_op : recipient:int -> amount:int -> Repro_chopchop.Types.message
(** 8-byte message a client broadcasts. *)

val decode_op : Repro_chopchop.Types.message -> (int * int) option

val apply_op : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> bool
val apply_delivery : t -> Repro_chopchop.Proto.delivery -> int
val ops_applied : t -> int
val rejected : t -> int

val balance : t -> int -> int
(** Balance of the account backing the given client id. *)

val total_supply : t -> int
(** Invariant under transfers: the sum of all balances.  O(accounts). *)

val snapshot : t -> string
(** Sparse serialization: header + (account, balance) pairs that diverge
    from the initial balance (see {!App_intf.S}). *)

val restore : t -> string option -> unit
val digest : t -> string

val name : string
