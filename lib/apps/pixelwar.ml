module Proto = Repro_chopchop.Proto
module Sha256 = Repro_crypto.Sha256

type t = {
  width : int;
  height : int;
  board : int array; (* -1 = never painted; else 24-bit RGB *)
  mutable ops : int;
  mutable painted : int;
}

let name = "pixelwar"

let create ?(width = 2048) ?(height = 2048) () =
  { width; height; board = Array.make (width * height) (-1); ops = 0; painted = 0 }

let encode_op ~x ~y ~rgb =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int ((y lsl 11) lor x));
  Bytes.set_int32_le b 4 (Int32.of_int (rgb land 0xFF_FFFF));
  Bytes.to_string b

let decode_op t msg =
  if String.length msg < 8 then None
  else begin
    let pos = Int32.to_int (String.get_int32_le msg 0) in
    let rgb = Int32.to_int (String.get_int32_le msg 4) land 0xFF_FFFF in
    let x = pos land 0x7FF and y = pos lsr 11 in
    if x < t.width && y >= 0 && y < t.height then Some (x, y, rgb) else None
  end

let paint t ~x ~y ~rgb =
  let i = (y * t.width) + x in
  if t.board.(i) < 0 then t.painted <- t.painted + 1;
  t.board.(i) <- rgb

let apply_op t _id msg =
  t.ops <- t.ops + 1;
  match decode_op t msg with
  | Some (x, y, rgb) ->
    paint t ~x ~y ~rgb;
    true
  | None -> false

let apply_bulk t ~first_id ~count ~tag =
  for i = 0 to count - 1 do
    let h = App_intf.mix (first_id + i) tag in
    let x = h land (t.width - 1) in
    let y = (h lsr 11) land (t.height - 1) in
    let rgb = (h lsr 22) land 0xFF_FFFF in
    t.ops <- t.ops + 1;
    paint t ~x ~y ~rgb
  done;
  count

let apply_delivery t = function
  | Proto.Ops ops ->
    Array.iter (fun (id, msg) -> ignore (apply_op t id msg)) ops;
    Array.length ops
  | Proto.Bulk { first_id; count; tag; msg_bytes = _ } ->
    apply_bulk t ~first_id ~count ~tag

let ops_applied t = t.ops
let pixel t ~x ~y = t.board.((y * t.width) + x)
let painted t = t.painted

(* --- durable state (lib/store checkpoints) ------------------------------ *)

let snapshot t =
  (* Header + (index, rgb) pairs for the painted pixels only. *)
  let buf = Buffer.create 256 in
  App_intf.put_i64 buf t.width;
  App_intf.put_i64 buf t.height;
  App_intf.put_i64 buf t.ops;
  App_intf.put_i64 buf t.painted;
  let cells = ref [] and k = ref 0 in
  Array.iteri
    (fun i rgb ->
      if rgb >= 0 then begin
        incr k;
        cells := (i, rgb) :: !cells
      end)
    t.board;
  App_intf.put_i64 buf !k;
  List.iter
    (fun (i, rgb) ->
      App_intf.put_i64 buf i;
      App_intf.put_i64 buf rgb)
    (List.rev !cells);
  Buffer.contents buf

let reset t =
  Array.fill t.board 0 (Array.length t.board) (-1);
  t.ops <- 0;
  t.painted <- 0

let restore t = function
  | None -> reset t
  | Some s ->
    reset t;
    let _w, off = App_intf.get_i64 s 0 in
    let _h, off = App_intf.get_i64 s off in
    let ops, off = App_intf.get_i64 s off in
    let painted, off = App_intf.get_i64 s off in
    let k, off = App_intf.get_i64 s off in
    t.ops <- ops;
    t.painted <- painted;
    let off = ref off in
    for _ = 1 to k do
      let i, o = App_intf.get_i64 s !off in
      let rgb, o = App_intf.get_i64 s o in
      off := o;
      if i < Array.length t.board then t.board.(i) <- rgb
    done

let digest t = Sha256.digest (snapshot t)
