module Proto = Repro_chopchop.Proto
module Sha256 = Repro_crypto.Sha256

type t = {
  balances : int array;
  initial_balance : int;
  mutable ops : int;
  mutable rejected : int;
}

let name = "payments"

let create ?(accounts = 1 lsl 20) ?(initial_balance = 1_000_000) () =
  { balances = Array.make accounts initial_balance; initial_balance;
    ops = 0; rejected = 0 }

let encode_op ~recipient ~amount =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int recipient);
  Bytes.set_int32_le b 4 (Int32.of_int amount);
  Bytes.to_string b

let decode_op msg =
  if String.length msg < 8 then None
  else begin
    let recipient = Int32.to_int (String.get_int32_le msg 0) in
    let amount = Int32.to_int (String.get_int32_le msg 4) in
    if recipient < 0 || amount <= 0 then None else Some (recipient, amount)
  end

let account t id = id mod Array.length t.balances

let transfer t ~sender ~recipient ~amount =
  let s = account t sender and r = account t recipient in
  if t.balances.(s) >= amount && s <> r then begin
    t.balances.(s) <- t.balances.(s) - amount;
    t.balances.(r) <- t.balances.(r) + amount;
    true
  end
  else begin
    t.rejected <- t.rejected + 1;
    false
  end

let apply_op t id msg =
  t.ops <- t.ops + 1;
  match decode_op msg with
  | Some (recipient, amount) -> transfer t ~sender:id ~recipient ~amount
  | None ->
    t.rejected <- t.rejected + 1;
    false

let apply_bulk t ~first_id ~count ~tag =
  (* Regenerate the random payments of a dense range without materialising
     the 8-byte strings. *)
  for i = 0 to count - 1 do
    let id = first_id + i in
    let h = App_intf.mix id tag in
    let recipient = h mod Array.length t.balances in
    let amount = 1 + (h lsr 24) land 0xFF in
    t.ops <- t.ops + 1;
    ignore (transfer t ~sender:id ~recipient ~amount)
  done;
  count

let apply_delivery t = function
  | Proto.Ops ops ->
    Array.iter (fun (id, msg) -> ignore (apply_op t id msg)) ops;
    Array.length ops
  | Proto.Bulk { first_id; count; tag; msg_bytes = _ } ->
    apply_bulk t ~first_id ~count ~tag

let ops_applied t = t.ops
let rejected t = t.rejected
let balance t id = t.balances.(account t id)
let total_supply t = Array.fold_left ( + ) 0 t.balances

(* --- durable state (lib/store checkpoints) ------------------------------ *)

let snapshot t =
  (* Header + sparse (account, balance) deltas: only accounts that moved. *)
  let buf = Buffer.create 256 in
  App_intf.put_i64 buf (Array.length t.balances);
  App_intf.put_i64 buf t.initial_balance;
  App_intf.put_i64 buf t.ops;
  App_intf.put_i64 buf t.rejected;
  let deltas = ref [] and k = ref 0 in
  Array.iteri
    (fun i b ->
      if b <> t.initial_balance then begin
        incr k;
        deltas := (i, b) :: !deltas
      end)
    t.balances;
  App_intf.put_i64 buf !k;
  List.iter
    (fun (i, b) ->
      App_intf.put_i64 buf i;
      App_intf.put_i64 buf b)
    (List.rev !deltas);
  Buffer.contents buf

let reset t =
  Array.fill t.balances 0 (Array.length t.balances) t.initial_balance;
  t.ops <- 0;
  t.rejected <- 0

let restore t = function
  | None -> reset t
  | Some s ->
    reset t;
    let _accounts, off = App_intf.get_i64 s 0 in
    let _initial, off = App_intf.get_i64 s off in
    let ops, off = App_intf.get_i64 s off in
    let rejected, off = App_intf.get_i64 s off in
    let k, off = App_intf.get_i64 s off in
    t.ops <- ops;
    t.rejected <- rejected;
    let off = ref off in
    for _ = 1 to k do
      let i, o = App_intf.get_i64 s !off in
      let b, o = App_intf.get_i64 s o in
      off := o;
      if i < Array.length t.balances then t.balances.(i) <- b
    done

let digest t = Sha256.digest (snapshot t)
