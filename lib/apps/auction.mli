(** The Auction house application (§6.8).

    Clients bid amounts on tokens they do not own, or take the highest
    offer on a token they own.  The highest bid on a token is locked and
    cannot fund bids elsewhere; it is transferred when the owner takes the
    offer and refunded when outbid.  The application is deliberately
    single-threaded and contended — many clients bid on few tokens — which
    is why the paper measures it an order of magnitude slower than
    Payments and Pixel war (2.3 M vs 32/35 M op/s). *)

type t

val create : ?tokens:int -> ?accounts:int -> ?initial_balance:int -> unit -> t
(** Defaults: 1,024 tokens, 1,048,576 accounts, 1,000,000 balance.
    Token [k] is initially owned by account [k]. *)

type op =
  | Bid of { token : int; amount : int }
  | Take of { token : int }

val encode_op : op -> Repro_chopchop.Types.message
val decode_op : Repro_chopchop.Types.message -> op option

val apply_op : t -> Repro_chopchop.Types.client_id -> Repro_chopchop.Types.message -> bool
val apply_delivery : t -> Repro_chopchop.Proto.delivery -> int
val ops_applied : t -> int
val rejected : t -> int

val owner : t -> int -> int
val highest_bid : t -> int -> (int * int) option
(** (bidder account, amount), if any standing bid. *)

val balance : t -> int -> int
val locked : t -> int -> int

val total_funds : t -> int
(** Invariant under bids/takes: balances + locked amounts. *)

val snapshot : t -> string
(** Sparse serialization: tokens with a standing bid or a changed owner,
    plus balance/locked deltas (see {!App_intf.S}). *)

val restore : t -> string option -> unit
val digest : t -> string

val name : string
