type ('cp, 'r) t = {
  disk : Disk.t;
  (* Live WAL suffix, newest first: (position, wire bytes, record). *)
  mutable wal : (int * int * 'r) list;
  mutable wal_len : int;
  mutable wal_live_bytes : int;
  mutable wal_bytes_total : int;
  mutable wal_records_total : int;
  mutable ck : (int * 'cp) option; (* (wire bytes, checkpoint) *)
  mutable ck_position : int; (* -1 until the first checkpoint *)
  mutable checkpoints : int;
}

let create ~disk () =
  { disk; wal = []; wal_len = 0; wal_live_bytes = 0;
    wal_bytes_total = 0; wal_records_total = 0;
    ck = None; ck_position = -1; checkpoints = 0 }

let disk t = t.disk

let append t ~position ~bytes r =
  t.wal <- (position, bytes, r) :: t.wal;
  t.wal_len <- t.wal_len + 1;
  t.wal_live_bytes <- t.wal_live_bytes + bytes;
  t.wal_bytes_total <- t.wal_bytes_total + bytes;
  t.wal_records_total <- t.wal_records_total + 1;
  (* Asynchronous group-committed append: durability is charged on the
     device queue but never gates protocol progress, so a run with the
     store enabled is behaviorally identical to one without (absent
     crashes).  Only recovery reads are synchronous. *)
  Disk.write t.disk ~bytes (fun () -> ())

let checkpoint t ~position ~bytes cp =
  t.ck <- Some (bytes, cp);
  t.ck_position <- position;
  t.checkpoints <- t.checkpoints + 1;
  (* Truncate the WAL prefix the checkpoint now covers. *)
  let keep = List.filter (fun (p, _, _) -> p >= position) t.wal in
  t.wal <- keep;
  t.wal_len <- List.length keep;
  t.wal_live_bytes <- List.fold_left (fun a (_, b, _) -> a + b) 0 keep;
  Disk.write t.disk ~bytes (fun () -> ())

let latest_checkpoint t = Option.map snd t.ck
let checkpoint_position t = t.ck_position
let last_checkpoint_bytes t = match t.ck with Some (b, _) -> b | None -> 0

let records_from t ~position =
  List.rev
    (List.filter_map
       (fun (p, _, r) -> if p >= position then Some r else None)
       t.wal)

let load t ~k =
  let ck_bytes = last_checkpoint_bytes t in
  let bytes = ck_bytes + t.wal_live_bytes in
  let ck = latest_checkpoint t in
  let records =
    List.rev_map (fun (_, _, r) -> r)
      (List.filter (fun (p, _, _) -> p >= t.ck_position) t.wal)
  in
  Disk.read t.disk ~bytes (fun () -> k ck records)

let wal_records t = t.wal_len
let wal_live_bytes t = t.wal_live_bytes
let wal_bytes_total t = t.wal_bytes_total
let wal_records_total t = t.wal_records_total
let checkpoints t = t.checkpoints
