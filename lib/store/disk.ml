module Engine = Repro_sim.Engine
module Cost = Repro_sim.Cost

type t = {
  engine : Engine.t;
  fsync_s : float;
  write_bps : float;
  read_bps : float;
  kind : int; (* Engine kind attributing I/O completion events *)
  mutable next_free : float;
  mutable total_busy : float;
  mutable bytes_written : int;
  mutable bytes_read : int;
  mutable fsyncs : int;
  mutable reads : int;
}

let create engine ?(fsync_s = Cost.disk_fsync_s) ?(write_bps = Cost.disk_write_bps)
    ?(read_bps = Cost.disk_read_bps) () =
  if write_bps <= 0. || read_bps <= 0. then
    invalid_arg "Disk.create: bandwidth must be positive";
  { engine; fsync_s; write_bps; read_bps;
    kind = Engine.kind engine "disk.io";
    next_free = 0.; total_busy = 0.;
    bytes_written = 0; bytes_read = 0; fsyncs = 0; reads = 0 }

(* One device-serial queue, exactly like {!Repro_sim.Cpu}: operations
   start when the device frees up and complete after their duration. *)
let submit t ~duration k =
  if duration < 0. then invalid_arg "Disk.submit: negative duration";
  let start = Float.max (Engine.now t.engine) t.next_free in
  let finish = start +. duration in
  t.next_free <- finish;
  t.total_busy <- t.total_busy +. duration;
  Engine.schedule_at ~kind:t.kind t.engine ~time:finish k

let write t ~bytes k =
  if bytes < 0 then invalid_arg "Disk.write: negative bytes";
  t.bytes_written <- t.bytes_written + bytes;
  t.fsyncs <- t.fsyncs + 1;
  submit t ~duration:(t.fsync_s +. (float_of_int bytes /. t.write_bps)) k

let read t ~bytes k =
  if bytes < 0 then invalid_arg "Disk.read: negative bytes";
  t.bytes_read <- t.bytes_read + bytes;
  t.reads <- t.reads + 1;
  submit t ~duration:(float_of_int bytes /. t.read_bps) k

let backlog t = Float.max 0. (t.next_free -. Engine.now t.engine)
let busy_seconds t = t.total_busy
let bytes_written t = t.bytes_written
let bytes_read t = t.bytes_read
let fsyncs t = t.fsyncs
let reads t = t.reads

let utilization t ~since =
  let elapsed = Engine.now t.engine -. since in
  if elapsed <= 0. then 0. else Float.min 1. (t.total_busy /. elapsed)
