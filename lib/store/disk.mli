(** Simulated durable-storage device, one per node.

    The same shape as {!Repro_sim.Cpu}: a serial queue on the virtual
    clock.  A {!write} models one fsync'd append — a fixed fsync latency
    ({!Repro_sim.Cost.disk_fsync_s}) plus bytes over the sequential write
    bandwidth; a {!read} (recovery replay) streams at the read bandwidth.
    Completions fire in submission order, so WAL appends are naturally
    ordered.  Counters make disk pressure observable as metrics probes
    (queue depth in seconds, bytes/s). *)

type t

val create :
  Repro_sim.Engine.t ->
  ?fsync_s:float ->
  ?write_bps:float ->
  ?read_bps:float ->
  unit ->
  t
(** Defaults come from {!Repro_sim.Cost}: 120 us fsync, 1.2 GB/s write,
    2.4 GB/s read. *)

val write : t -> bytes:int -> (unit -> unit) -> unit
(** Queue one fsync'd append; the continuation runs when it is durable. *)

val read : t -> bytes:int -> (unit -> unit) -> unit
(** Queue a sequential read (recovery); continuation runs on completion. *)

val backlog : t -> float
(** Seconds of queued device work (metrics probe). *)

val busy_seconds : t -> float
val utilization : t -> since:float -> float

val bytes_written : t -> int
val bytes_read : t -> int

val fsyncs : t -> int
(** Writes completed or queued — each write is one fsync. *)

val reads : t -> int
