(** Durable node state: an append-only WAL plus the latest checkpoint.

    Generic over the checkpoint type ['cp] and the WAL record type ['r]
    (the Chop Chop layer instantiates both from {!Repro_chopchop.Proto});
    this module only manages ordering, truncation and byte/cost
    accounting on the node's {!Disk}.

    Every record is tagged with the delivery {e position} it belongs to;
    a checkpoint at position [p] covers all positions [< p] and truncates
    the corresponding WAL prefix.  Appends and checkpoints are
    {e asynchronous} (group commit): their latency lands on the device
    queue, visible to metrics, but never blocks the protocol — so a
    crash-free run is bit-identical with the store on or off.  Only
    {!load}, the cold-restart read, is synchronous. *)

type ('cp, 'r) t

val create : disk:Disk.t -> unit -> ('cp, 'r) t
val disk : ('cp, 'r) t -> Disk.t

val append : ('cp, 'r) t -> position:int -> bytes:int -> 'r -> unit
(** Log one record at a delivery position (fire-and-forget fsync). *)

val checkpoint : ('cp, 'r) t -> position:int -> bytes:int -> 'cp -> unit
(** Install a checkpoint covering positions [< position]; truncates the
    covered WAL prefix and queues the snapshot write. *)

val latest_checkpoint : ('cp, 'r) t -> 'cp option

val checkpoint_position : ('cp, 'r) t -> int
(** Position of the latest checkpoint; [-1] if none was ever taken. *)

val records_from : ('cp, 'r) t -> position:int -> 'r list
(** Live records at positions [>= position], oldest first (state
    transfer).  The WAL always holds every record at or above
    {!checkpoint_position}. *)

val load : ('cp, 'r) t -> k:('cp option -> 'r list -> unit) -> unit
(** Cold-restart read: charge a sequential read of the checkpoint plus
    the live WAL on the device, then hand both to [k] (records oldest
    first). *)

(* Introspection (metrics probes, the bench storage-overhead gate). *)

val wal_records : ('cp, 'r) t -> int
(** Live (un-truncated) records. *)

val wal_live_bytes : ('cp, 'r) t -> int
val wal_bytes_total : ('cp, 'r) t -> int
(** Cumulative bytes ever appended (never reduced by truncation). *)

val wal_records_total : ('cp, 'r) t -> int
val checkpoints : ('cp, 'r) t -> int
val last_checkpoint_bytes : ('cp, 'r) t -> int
