type t =
  | Batch_ref of {
      broker : int;
      number : int;
      root : string;
      witness : Certs.quorum_cert;
    }
  | Signup of { card : Types.keycard; reply_broker : int; nonce : int }
  | Reconfigure of {
      change : Membership.change;
      ms_pk : Repro_crypto.Multisig.public_key option;
          (* committee key of the joining / replacing server *)
    }

let wire_bytes = function
  | Batch_ref _ -> Wire.stob_submission_bytes
  | Signup _ -> Wire.header_bytes + (2 * Wire.pk_bytes) + 8
  | Reconfigure _ -> Wire.header_bytes + 16 + Wire.pk_bytes
