(** Deployment assembly: a full Chop Chop system on the simulator.

    Builds the paper's §6.2 topology — servers balanced across the 14 AWS
    regions, brokers one per continent, clients near their brokers, load
    brokers at OVH — wires every component's callbacks into the network
    model, and instantiates the chosen underlying Atomic Broadcast on the
    servers.  Experiments and tests drive the system exclusively through
    this module. *)

type underlay = Sequencer | Pbft | Hotstuff

type config = {
  n_servers : int;
  spare_servers : int;
      (* extra provisioned-but-inactive server slots, available to
         {!join_server} (node ids [n_servers, n_servers+spare_servers)) *)
  n_brokers : int;
  cores : int;
      (* worker lanes per server/broker CPU (default {!Repro_sim.Cost.vcpus},
         the c6i.8xlarge's 32) *)
  underlay : underlay;
  dense_clients : int; (* pre-provisioned identities (load experiments) *)
  gc_period : float;
  flush_period : float;
  reduce_timeout : float;
  witness_margin : int;
  max_batch : int;
  net_loss : float;
  seed : int64;
  stob_batch_timeout : float; (* underlay leader batching window *)
  admission_rate : float;
      (* per-client broker admission: token-bucket refill rate,
         submissions/s (0 = unlimited, the default) *)
  admission_burst : float; (* token-bucket depth *)
  fleet : Repro_fleet.Fleet.mode option;
      (* lib/fleet scale-out: partition clients across brokers by seeded
         hash or region affinity and shard the Rank directory per broker;
         [None] (the default) is the classic single-directory deployment *)
  fair_admission_rate : float;
      (* server-side fair admission: per-broker token-bucket budget on the
         order queue, batch refs/s (0 = unlimited, the default) *)
  fair_admission_burst : float; (* token-bucket depth *)
  store_enabled : bool;
      (* attach a per-server simulated disk + WAL/checkpoint store
         (lib/store); required for {!restart_server} *)
  checkpoint_every : int;
      (* deliveries between application/state snapshots (when enabled) *)
  trace : Repro_trace.Trace.Sink.t;
      (* observability sink shared by every component (default: null) *)
}

val default_config : config
(** 4 servers, 2 brokers, sequencer underlay — the unit-test topology. *)

val paper_config : n_servers:int -> underlay:underlay -> config
(** The §6.2 setup: 6 brokers, witness margin per system size (0/1/2/4 for
    8/16/32/64 servers), 65,536-message batches, 257 M dense clients. *)

type t

val create : config -> t

val engine : t -> Repro_sim.Engine.t
val config : t -> config
val servers : t -> Server.t array
val broker : t -> int -> Broker.t
val n_brokers : t -> int

val run : t -> until:float -> unit

val add_client :
  t ->
  ?region:Repro_sim.Region.t ->
  ?identity:Types.client_id ->
  ?on_delivered:(Types.message -> latency:float -> unit) ->
  ?brokers:int list ->
  unit ->
  Client.t
(** A fresh client node.  With [identity] the sign-up is skipped (dense,
    pre-provisioned ids); otherwise call {!Client.signup}. *)

type thin_client = {
  tc_node : int; (* network node id (the client's unique nonce) *)
  tc_brokers : int list; (* broker preference order, as {!add_client} *)
  tc_send : broker:int -> bytes:int -> Proto.client_to_broker -> unit;
}

val add_thin_client :
  t ->
  ?region:Repro_sim.Region.t ->
  identity:Types.client_id ->
  receive:(Proto.broker_to_client -> unit) ->
  unit ->
  thin_client
(** A client {e endpoint} without a [Client.t]: same node-id assignment,
    region round-robin, broker preference order (fleet homing included)
    and reliable-UDP wiring as {!add_client ~identity}, but broker->client
    messages flow to [receive] — the substrate of the flat-array client
    cohort ([Repro_workload.Cohort]).  Byte and event accounting are
    identical to a per-client deployment.  Cohort members are invisible
    to {!crash_client}/broker-recovery rehoming (use {!add_client} for
    fault-injection experiments). *)

val server_ms_pk : t -> int -> Repro_crypto.Multisig.public_key
(** Server [j]'s current multisig public key (follows reconfiguration) —
    what {!add_client} hands each client for certificate verification. *)

val add_broker :
  t ->
  region:Repro_sim.Region.t ->
  ?flush_period:float ->
  ?reduce_timeout:float ->
  ?max_batch:int ->
  ?cores:int ->
  ?capacity:float ->
  ?ingress_bps:float ->
  ?egress_bps:float ->
  unit ->
  int
(** Register an additional broker (load brokers at OVH); returns its
    broker id, usable with {!broker} and in client broker lists.
    [cores]/[capacity] override this broker's CPU (default: the
    deployment's [cores] at full speed); [ingress_bps]/[egress_bps] cap
    its NIC — the knobs of the broker-scalability experiment. *)

val crash_server : t -> int -> unit
(** Crash-stop a server: its Chop Chop layer, its STOB instance, and its
    network interfaces (Fig. 11a). *)

val recover_server : t -> int -> unit
(** {e Warm} recovery (the Fig. 11a experiment): NIC, STOB instance and
    Chop Chop layer come back with their in-memory state intact.  STOB
    slots missed while down are not replayed, so the recovered server is
    a correct prefix but may not catch up.  See {!restart_server} for a
    recovery that does. *)

val restart_server : t -> int -> unit
(** {e Cold} restart from durable state: the server's in-memory state is
    wiped, its checkpoint + WAL replay from the simulated disk, and the
    missed suffix is state-transferred from live peers until the server
    is caught up and live again.  Requires [store_enabled]; with the
    store off this degrades to {!recover_server}. *)

(** {2 Dynamic membership}

    Ordered reconfiguration: each change enters the server-run STOB as a
    {!Stob_item.Reconfigure} command through a live anchor server, so every
    replica rolls its directory, committee and quorum thresholds forward at
    the same delivery rank.  Requires [spare_servers] > 0 for joins. *)

val membership : t -> Membership.t
(** The orchestrator's view of the roster (servers converge to it as the
    ordered commands deliver). *)

val capacity : t -> int
(** Total provisioned server slots, [n_servers + spare_servers]. *)

val server_epoch : t -> int -> int
(** Membership epoch at server [i] (ordered changes it has applied). *)

val join_server : t -> int -> unit
(** Bring slot [i] (a spare, or a previously departed slot) online:
    reconnects its node, orders the [Join], and bootstraps the joiner via
    cold-restart state transfer.  It witnesses only once caught up. *)

val leave_server : t -> int -> unit
(** Order slot [i]'s departure; the leaver tears itself down when the
    command reaches it in the total order.  Never remove slot 0 under the
    sequencer underlay (it is the sequencing node). *)

val replace_server : t -> int -> unit
(** Replace slot [i] with a fresh identity: new multisig keypair, empty
    store, bumped generation.  The newcomer bootstraps through state
    transfer like a join. *)

val add_injector :
  t ->
  ?region:Repro_sim.Region.t ->
  unit ->
  broker:int ->
  bytes:int ->
  Proto.client_to_broker ->
  unit
(** A bare network node that can push arbitrary client->broker messages
    through the usual reliable-UDP channel — the substrate for spam and
    sybil load (lib/workload).  Returns the send function. *)

val crash_broker : t -> int -> unit
(** Crash-stop a broker (by broker id): its state machine and NIC.
    Clients waiting on it time out and fail over (§4.4.2).  In a fleet
    deployment the crashed partition's Rank shard moves to each key's
    first alive failover broker. *)

val recover_broker : t -> int -> unit
(** Un-crash a broker: it resumes batching from its surviving state.  In
    a fleet deployment its shard cards move back and its clients rehome
    (rotation reset to the head of the preference list). *)

(** {2 Broker fleet (lib/fleet)}

    Populated only when [config.fleet] is set; every probe degrades to
    the neutral value in a classic deployment. *)

val fleet : t -> Repro_fleet.Fleet.t option

val broker_shard : t -> int -> Directory.shard option
(** Broker [i]'s Rank partition. *)

val fleet_loads : t -> int array
(** Clients homed per broker ([[||]] without a fleet). *)

val fleet_hottest : t -> (int * int) option
(** [(broker, clients)] of the most loaded partition. *)

val fleet_handoff_bytes : t -> int
(** Cumulative shard-handoff wire bytes moved by broker crash failover
    and recovery rebalancing. *)

val admission_rejects : t -> (int * int) list
(** [(broker, rejected submits)] summed across every server's
    fair-admission gate, sorted by broker id. *)

val crash_client : t -> Client.t -> unit
(** Crash-stop a client and its network node. *)

val node_of_client : t -> Client.t -> int option
(** The client's network node id (for per-link fault injection). *)

(** {2 Network fault injection}

    Passthroughs to {!Repro_sim.Net} used by [lib/chaos].  Node ids:
    servers occupy [0, n_servers), brokers are found with
    {!broker_node_id}, clients with {!node_of_client}. *)

val partition : t -> int list list -> unit
val heal : t -> unit

val partitioned : t -> bool

(** Active network partition as sorted explicit groups ([None] when the
    network is whole); see {!Repro_sim.Net.partition_groups}.  The
    doctor's view of the cut. *)
val partition_groups : t -> int list list option

(** NIC up/down for server [i] ([Net.is_connected]); false while crashed. *)
val server_connected : t -> int -> bool
val set_link_loss : t -> src:int -> dst:int -> float -> unit
val degrade_link : t -> src:int -> dst:int -> extra_latency:float -> unit

val server_deliver_hook : t -> (int -> Proto.delivery -> unit) -> unit
(** Observe application deliveries: [hook server_index delivery].
    Replaces (not chains) the previous hook. *)

val total_delivered_messages : t -> int
(** Messages delivered by server 0 (all correct servers agree). *)

val server_ingress_bytes : t -> int -> int

val server_cpu_utilization : t -> int -> float
(** Mean executed-busy fraction of server [i]'s lanes since boot.  For
    windowed readings take {!Repro_sim.Cpu.mark}s on {!server_cpu}. *)

(** [server_cpu_backlog t i]: seconds of queued CPU work at server [i]
    (sampler probe). *)
val server_cpu_backlog : t -> int -> float

val server_cpu : t -> int -> Repro_sim.Cpu.t
(** Server [i]'s lane scheduler (per-lane utilization/backlog probes). *)

val broker_cpu : t -> int -> Repro_sim.Cpu.t
(** Broker [i]'s lane scheduler. *)

val broker_node_id : t -> int -> int

val rudp_stats : t -> int * int * int
(** (retransmissions, gave-up messages, duplicate deliveries) across all
    client<->broker reliable-UDP channels (§5.1): non-zero retransmission
    counts under [net_loss] > 0 show the transport doing its job. *)

(** {2 Durable state (lib/store)}

    Introspection over each server's disk and store; all return the
    neutral value when [store_enabled] is false. *)

val server_store :
  t -> int -> (Proto.checkpoint, Proto.wal_record) Repro_store.Store.t option

val server_wal_bytes : t -> int -> int
(** Cumulative WAL bytes ever appended by server [i]. *)

val server_wal_records : t -> int -> int
val server_checkpoints : t -> int -> int
val server_snapshot_bytes : t -> int -> int

val server_disk_backlog : t -> int -> float
(** Seconds of queued device work (sampler probe). *)

val server_disk_bytes_written : t -> int -> int

val server_catching_up : t -> int -> bool
(** True while server [i] is between {!restart_server} and live. *)

val set_server_app :
  t -> int -> snapshot:(unit -> string) -> restore:(string option -> unit) -> unit
(** Register the application snapshot/restore hooks checkpointing uses
    (see {!Server.set_app_hooks}). *)
