module Engine = Repro_sim.Engine
module Net = Repro_sim.Net
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Region = Repro_sim.Region
module Multisig = Repro_crypto.Multisig
module Store = Repro_store.Store
module Disk = Repro_store.Disk
module Fleet = Repro_fleet.Fleet

type underlay = Sequencer | Pbft | Hotstuff

type config = {
  n_servers : int;
  spare_servers : int; (* idle machine slots that can [join_server] later *)
  n_brokers : int;
  cores : int; (* worker lanes per server/broker CPU *)
  underlay : underlay;
  dense_clients : int;
  gc_period : float;
  flush_period : float;
  reduce_timeout : float;
  witness_margin : int;
  max_batch : int;
  net_loss : float;
  seed : int64;
  stob_batch_timeout : float; (* underlay leader batching window *)
  admission_rate : float; (* broker per-client token rate; 0 = unlimited *)
  admission_burst : float; (* bucket depth for the above *)
  fleet : Fleet.mode option;
      (* lib/fleet scale-out: partition clients across brokers and shard
         the Rank directory per broker (None = classic deployment) *)
  fair_admission_rate : float;
      (* server-side per-broker budget on the order queue, refs/s
         (0 = unlimited) *)
  fair_admission_burst : float; (* bucket depth for the above *)
  store_enabled : bool; (* per-server durable state (lib/store) *)
  checkpoint_every : int; (* snapshot every k deliveries (when enabled) *)
  trace : Repro_trace.Trace.Sink.t;
}

let default_config =
  { n_servers = 4; spare_servers = 0; n_brokers = 2; cores = Cost.vcpus;
    underlay = Sequencer; dense_clients = 0;
    gc_period = 0.5; flush_period = 0.2; reduce_timeout = 0.2;
    witness_margin = 1; max_batch = 65_536; net_loss = 0.; seed = 42L;
    stob_batch_timeout = 0.05; admission_rate = 0.; admission_burst = 0.;
    fleet = None; fair_admission_rate = 0.; fair_admission_burst = 0.;
    store_enabled = false; checkpoint_every = 64;
    trace = Repro_trace.Trace.Sink.null () }

let margin_for_size n =
  if n <= 8 then 0 else if n <= 16 then 1 else if n <= 32 then 2 else 4

let paper_config ~n_servers ~underlay =
  { n_servers; spare_servers = 0; n_brokers = 6; cores = Cost.vcpus; underlay;
    dense_clients = 257_000_000;
    gc_period = 0.5; flush_period = 1.0; reduce_timeout = 1.0;
    witness_margin = margin_for_size n_servers; max_batch = 65_536;
    net_loss = 0.; seed = 42L; stob_batch_timeout = 0.1;
    admission_rate = 0.; admission_burst = 0.;
    fleet = None; fair_admission_rate = 0.; fair_admission_burst = 0.;
    store_enabled = false; checkpoint_every = 1024;
    trace = Repro_trace.Trace.Sink.null () }

type msg =
  | C2b_udp of Proto.client_to_broker Repro_sim.Rudp.packet
  | B2c_udp of Proto.broker_to_client Repro_sim.Rudp.packet
  | B2s of Proto.broker_to_server
  | S2b of Proto.server_to_broker
  | S2s of Proto.server_to_server
  | Stob_seq of Stob_item.t Repro_stob.Sequencer.msg
  | Stob_pbft of Stob_item.t Repro_stob.Pbft.msg
  | Stob_hs of Stob_item.t Repro_stob.Hotstuff.msg

type stob_handle = {
  sh_broadcast : Stob_item.t -> unit;
  sh_receive : src:int -> msg -> unit;
  sh_crash : unit -> unit;
  sh_recover : unit -> unit;
  sh_cursor : unit -> int; (* next slot/seq/height to deliver *)
  sh_resume : int -> unit; (* fast-forward past state-transferred slots *)
}

type broker_slot = {
  br : Broker.t;
  br_node : int;
  br_cpu : Cpu.t;
  br_shard : Directory.shard option; (* this broker's Rank partition (fleet) *)
}

type t = {
  cfg : config;
  capacity : int; (* n_servers + spare_servers machine slots *)
  membership : Membership.t; (* deployment-level routing view *)
  engine : Engine.t;
  net : msg Net.t;
  mutable servers : Server.t array;
  server_cpus : Cpu.t array;
  server_pks : Multisig.public_key array;
  stores : (Proto.checkpoint, Proto.wal_record) Store.t option array;
  mutable stobs : stob_handle array;
  mutable brokers : broker_slot array;
  broker_of_node : (int, int) Hashtbl.t;
  client_nodes : (Types.client_id, int) Hashtbl.t; (* client id -> node *)
  clients_by_node : (int, Client.t) Hashtbl.t;
  mutable next_node : int;
  mutable next_client_region : int;
  mutable deliver_hook : int -> Proto.delivery -> unit;
  (* lib/fleet scale-out (None/unused in a classic deployment). *)
  fleet : Fleet.t option;
  shard_home : (Types.client_id, int) Hashtbl.t; (* id -> home broker *)
  client_home : (int, int) Hashtbl.t; (* client node -> home broker *)
  mutable fleet_handoff_bytes : int; (* shard bytes moved on crash/recovery *)
  (* Reliable-UDP channels for client<->broker traffic (§5.1): one sender
     and one receiver per directed (origin node, peer node) pair, created
     lazily.  ACKs ride the same union member in the reverse direction. *)
  c2b_send : (int * int, Proto.client_to_broker Repro_sim.Rudp.sender) Hashtbl.t;
  c2b_recv : (int * int, Proto.client_to_broker Repro_sim.Rudp.receiver) Hashtbl.t;
  b2c_send : (int * int, Proto.broker_to_client Repro_sim.Rudp.sender) Hashtbl.t;
  b2c_recv : (int * int, Proto.broker_to_client Repro_sim.Rudp.receiver) Hashtbl.t;
}

let get_or_create tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add tbl key v;
    v

(* client -> broker data channel, from the client's side *)
let c2b_sender t ~client_node ~broker_node =
  get_or_create t.c2b_send (client_node, broker_node) (fun () ->
      Repro_sim.Rudp.sender ~engine:t.engine
        ~transmit:(fun pkt ->
          Net.send_lossy t.net ~src:client_node ~dst:broker_node
            ~bytes:(Repro_sim.Rudp.packet_bytes pkt) (C2b_udp pkt))
        ())

(* ...and its receiving end at the broker *)
let c2b_receiver t b ~client_node ~broker_node =
  get_or_create t.c2b_recv (client_node, broker_node) (fun () ->
      Repro_sim.Rudp.receiver
        ~deliver:(fun m -> Broker.receive_client b m)
        ~send_ack:(fun seq ->
          Net.send_lossy t.net ~src:broker_node ~dst:client_node
            ~bytes:Repro_sim.Rudp.ack_wire (C2b_udp (Repro_sim.Rudp.Ack { seq })))
        ())

let b2c_sender t ~broker_node ~client_node =
  get_or_create t.b2c_send (broker_node, client_node) (fun () ->
      Repro_sim.Rudp.sender ~engine:t.engine
        ~transmit:(fun pkt ->
          Net.send_lossy t.net ~src:broker_node ~dst:client_node
            ~bytes:(Repro_sim.Rudp.packet_bytes pkt) (B2c_udp pkt))
        ())

(* The receiving end at the client's node.  [deliver] is the protocol
   state machine behind the node: a [Client.t] for {!add_client}, a
   cohort member's dispatch for {!add_thin_client} — the reliable-UDP
   channel (and therefore the wire/byte accounting) is identical either
   way. *)
let b2c_receiver_to t ~deliver ~broker_node ~client_node =
  get_or_create t.b2c_recv (broker_node, client_node) (fun () ->
      Repro_sim.Rudp.receiver
        ~deliver:(fun m ->
          (match m with
           | Proto.Signup_response { id; _ } -> Hashtbl.replace t.client_nodes id client_node
           | Proto.Inclusion _ | Proto.Deliver_cert _ -> ());
          deliver m)
        ~send_ack:(fun seq ->
          Net.send_lossy t.net ~src:client_node ~dst:broker_node
            ~bytes:Repro_sim.Rudp.ack_wire (B2c_udp (Repro_sim.Rudp.Ack { seq })))
        ())

let engine t = t.engine
let config t = t.cfg
let servers t = t.servers
let broker t i = t.brokers.(i).br
let n_brokers t = Array.length t.brokers
let broker_node_id t i = t.brokers.(i).br_node
let broker_cpu t i = t.brokers.(i).br_cpu
let server_cpu t i = t.server_cpus.(i)

let run t ~until = Engine.run ~until t.engine

let server_ingress_bytes t i = Net.bytes_received t.net i

let server_cpu_utilization t i =
  let cpu = t.server_cpus.(i) in
  Cpu.utilization cpu ~since:(Cpu.boot cpu)

let server_cpu_backlog t i = Cpu.backlog t.server_cpus.(i)
let total_delivered_messages t = Server.delivered_messages t.servers.(0)

let server_deliver_hook t hook = t.deliver_hook <- hook

(* --- STOB instantiation ------------------------------------------------- *)

let make_stob t ~self ~deliver =
  let n = t.capacity in
  let engine = t.engine and net = t.net in
  (* Completion-gate the ordering node's outgoing proposal serialization
     on the server's own CPU (the protocol logic itself stays free). *)
  let cpu = t.server_cpus.(self) in
  match t.cfg.underlay with
  | Sequencer ->
    let send ~dst ~bytes m = Net.send net ~src:self ~dst ~bytes (Stob_seq m) in
    let st =
      Repro_stob.Sequencer.create ~engine ~self ~n ~cpu ~send ~deliver
        ~payload_bytes:Stob_item.wire_bytes ()
    in
    { sh_broadcast = Repro_stob.Sequencer.broadcast st;
      sh_receive =
        (fun ~src m ->
          match m with
          | Stob_seq m -> Repro_stob.Sequencer.receive st ~src m
          | _ -> ());
      sh_crash = (fun () -> Repro_stob.Sequencer.crash st);
      sh_recover = (fun () -> Repro_stob.Sequencer.recover st);
      sh_cursor = (fun () -> Repro_stob.Sequencer.cursor st);
      sh_resume = (fun cursor -> Repro_stob.Sequencer.resume_at st ~cursor) }
  | Pbft ->
    let send ~dst ~bytes m = Net.send net ~src:self ~dst ~bytes (Stob_pbft m) in
    let st =
      Repro_stob.Pbft.create ~engine ~self ~n ~cpu ~send ~deliver
        ~payload_bytes:Stob_item.wire_bytes
        ~batch_timeout:t.cfg.stob_batch_timeout ()
    in
    { sh_broadcast = Repro_stob.Pbft.broadcast st;
      sh_receive =
        (fun ~src m ->
          match m with Stob_pbft m -> Repro_stob.Pbft.receive st ~src m | _ -> ());
      sh_crash = (fun () -> Repro_stob.Pbft.crash st);
      sh_recover = (fun () -> Repro_stob.Pbft.recover st);
      sh_cursor = (fun () -> Repro_stob.Pbft.cursor st);
      sh_resume = (fun cursor -> Repro_stob.Pbft.resume_at st ~cursor) }
  | Hotstuff ->
    let send ~dst ~bytes m = Net.send net ~src:self ~dst ~bytes (Stob_hs m) in
    let st =
      Repro_stob.Hotstuff.create ~engine ~self ~n ~cpu ~send ~deliver
        ~payload_bytes:Stob_item.wire_bytes
        ~batch_timeout:(Float.max 0.3 t.cfg.stob_batch_timeout) ()
    in
    { sh_broadcast = Repro_stob.Hotstuff.broadcast st;
      sh_receive =
        (fun ~src m ->
          match m with
          | Stob_hs m -> Repro_stob.Hotstuff.receive st ~src m
          | _ -> ());
      sh_crash = (fun () -> Repro_stob.Hotstuff.crash st);
      sh_recover = (fun () -> Repro_stob.Hotstuff.recover st);
      sh_cursor = (fun () -> Repro_stob.Hotstuff.cursor st);
      sh_resume = (fun cursor -> Repro_stob.Hotstuff.resume_at st ~cursor) }

(* --- brokers -------------------------------------------------------------- *)

let install_broker t ~region ~flush_period ~reduce_timeout ~max_batch ?cores
    ?capacity ?ingress_bps ?egress_bps () =
  let broker_id = Array.length t.brokers in
  let node = t.next_node in
  t.next_node <- node + 1;
  let cores = Option.value cores ~default:t.cfg.cores in
  (* Broker rows sit at 1000+id in the trace (see Broker.tr_actor); the
     cpu's job_done instants share that actor so the no-send-before-
     completion invariant can be checked per broker. *)
  let cpu =
    Cpu.create t.engine ~cores ?capacity ~actor:(1000 + broker_id)
      ~kind:"cpu.broker" ()
  in
  let cfg_b =
    { Broker.broker_id; n_servers = t.cfg.n_servers;
      clients = max t.cfg.dense_clients 1024;
      flush_period; reduce_timeout;
      witness_margin = t.cfg.witness_margin;
      witness_timeout = 2.0; submit_timeout = 4.0; max_batch;
      admission_rate = t.cfg.admission_rate;
      admission_burst = t.cfg.admission_burst }
  in
  (* Classic deployment: brokers read any server's directory — all correct
     servers hold the same one (signups flow through the STOB); use server
     0's.  Fleet deployment: each broker resolves identifiers through its
     own Rank shard (dense population + the explicit cards it owns). *)
  let shard =
    match t.fleet with
    | Some fl ->
      ignore (Fleet.register fl ~region);
      Some (Directory.create_shard ~dense_count:t.cfg.dense_clients ())
    | None -> None
  in
  let directory =
    match shard with
    | Some sh -> Directory.Shard sh
    | None -> Directory.Whole (Server.directory t.servers.(0))
  in
  let b =
    Broker.create ~engine:t.engine ~cpu ~config:cfg_b ~directory
      ~membership:t.membership
      ~server_ms_pk:(fun j -> t.server_pks.(j))
      ~send_server:(fun ~dst ~bytes m -> Net.send t.net ~src:node ~dst ~bytes (B2s m))
      ~send_client:(fun ~client ~bytes m ->
        match Hashtbl.find_opt t.client_nodes client with
        | Some dst ->
          Repro_sim.Rudp.send (b2c_sender t ~broker_node:node ~client_node:dst) ~bytes m
        | None -> ())
      ~send_anon:(fun ~nonce ~bytes m ->
        (* Sign-up responses route by nonce = the client's node id. *)
        Repro_sim.Rudp.send (b2c_sender t ~broker_node:node ~client_node:nonce) ~bytes m)
      ~stob_signup:(fun item ->
        (* Brokers are clients of the STOB: relay sign-ups via an *active*
           server (the hinted slot may be a spare or have left). *)
        match item with
        | Stob_item.Signup { card; nonce; _ } ->
          let dst =
            let rec hunt c tries =
              if tries = 0 then 0
              else if Membership.is_active t.membership c then c
              else hunt ((c + 1) mod t.capacity) (tries - 1)
            in
            hunt (broker_id mod t.capacity) t.capacity
          in
          Net.send t.net ~src:node ~dst ~bytes:(Stob_item.wire_bytes item)
            (B2s (Proto.Relay_signup { card; nonce }))
        | Stob_item.Batch_ref _ | Stob_item.Reconfigure _ -> ())
      ()
  in
  Net.add_node t.net ~id:node ~region ?ingress_bps ?egress_bps
    ~kind:"net.broker"
    ~handler:(fun ~src m ->
      match m with
      | C2b_udp (Repro_sim.Rudp.Data _ as pkt) ->
        Repro_sim.Rudp.receiver_on_data
          (c2b_receiver t b ~client_node:src ~broker_node:node) pkt
      | B2c_udp (Repro_sim.Rudp.Ack { seq }) ->
        (match Hashtbl.find_opt t.b2c_send (node, src) with
         | Some sender -> Repro_sim.Rudp.sender_on_ack sender seq
         | None -> ())
      | S2b m -> Broker.receive_server b ~src m
      | C2b_udp (Repro_sim.Rudp.Ack _) | B2c_udp (Repro_sim.Rudp.Data _)
      | B2s _ | S2s _ | Stob_seq _ | Stob_pbft _ | Stob_hs _ -> ())
    ();
  Hashtbl.replace t.broker_of_node node broker_id;
  t.brokers <-
    Array.append t.brokers
      [| { br = b; br_node = node; br_cpu = cpu; br_shard = shard } |];
  Broker.start b;
  broker_id

(* --- construction ----------------------------------------------------------- *)

(* One server instance wired into slot [slot]'s pre-existing network node,
   CPU, store and STOB handle.  Used both at construction time and by
   {!replace_server} to install a fresh identity in a vacated slot. *)
let build_server t ~slot ~ms_sk ~directory ~membership ~stob =
  let sh = stob in
  let sv =
  Server.create ~engine:t.engine ~cpu:t.server_cpus.(slot)
    ~config:{ Server.self = slot; n = t.capacity;
              clients = max t.cfg.dense_clients 1024;
              gc_period = t.cfg.gc_period;
              fair_rate = t.cfg.fair_admission_rate;
              fair_burst = t.cfg.fair_admission_burst }
    ?store:t.stores.(slot) ~checkpoint_every:t.cfg.checkpoint_every
    ~stob_cursor:(fun () -> sh.sh_cursor ())
    ~stob_resume:(fun cursor -> sh.sh_resume cursor)
    ~membership
    ~set_server_pk:(fun j pk -> t.server_pks.(j) <- pk)
    ~on_self_leave:(fun () ->
      Net.disconnect t.net slot;
      t.stobs.(slot).sh_crash ())
    ~directory ~ms_sk
    ~server_ms_pk:(fun j -> t.server_pks.(j))
    ~send_broker:(fun ~broker ~bytes m ->
      if broker < Array.length t.brokers then
        Net.send t.net ~src:slot ~dst:t.brokers.(broker).br_node ~bytes (S2b m))
    ~send_server:(fun ~dst ~bytes m ->
      Net.send t.net ~src:slot ~dst ~bytes (S2s m))
    ~stob_broadcast:(fun item -> sh.sh_broadcast item)
    ~deliver_app:(fun d -> t.deliver_hook slot d)
    ()
  in
  (* Sharded Rank: route each ordered signup's card to the shard of the
     broker that relayed it (its reply_broker = the client's home broker).
     Shards are deployment-level objects, so one observer suffices — slot
     0's, matching the classic "brokers read server 0's directory" idiom. *)
  (match t.fleet with
   | Some fl when slot = 0 ->
     Server.set_on_signup sv (fun ~id ~reply_broker card ->
         let home =
           if reply_broker >= 0 && reply_broker < Array.length t.brokers then
             reply_broker
           else 0
         in
         Hashtbl.replace t.shard_home id home;
         let owner =
           if Fleet.alive fl home then home else Fleet.first_alive fl ~key:id ()
         in
         match t.brokers.(owner).br_shard with
         | Some shard -> Directory.shard_insert shard ~id card
         | None -> ())
   | _ -> ());
  sv

let create cfg =
  let engine = Engine.create ~seed:cfg.seed ~trace:cfg.trace () in
  let net = Net.create engine ~loss:cfg.net_loss () in
  let n = cfg.n_servers in
  let capacity = n + max 0 cfg.spare_servers in
  let server_regions = Array.of_list (Region.server_regions_for capacity) in
  let server_cpus =
    Array.init capacity (fun i ->
        Cpu.create engine ~cores:cfg.cores ~actor:i ~kind:"cpu.server" ())
  in
  let server_identities =
    Array.init capacity (fun i ->
        Multisig.keygen_deterministic ~seed:(Printf.sprintf "server-%d" i))
  in
  let server_pks = Array.map snd server_identities in
  (* One simulated NVMe device + store per server when durability is on;
     writes are fire-and-forget, so enabling the store never perturbs a
     crash-free run (asserted by test_store's same-seed equivalence). *)
  let stores =
    Array.init capacity (fun _ ->
        if cfg.store_enabled then
          Some (Store.create ~disk:(Disk.create engine ()) ())
        else None)
  in
  let t =
    { cfg; capacity;
      membership = Membership.create ~capacity ~initial:n;
      engine; net;
      servers = [||]; server_cpus; server_pks; stores; stobs = [||];
      brokers = [||];
      broker_of_node = Hashtbl.create 16;
      client_nodes = Hashtbl.create 1024;
      clients_by_node = Hashtbl.create 1024;
      next_node = capacity;
      next_client_region = 0;
      deliver_hook = (fun _ _ -> ());
      fleet =
        (match cfg.fleet with
         | Some mode -> Some (Fleet.create ~mode ~seed:cfg.seed ())
         | None -> None);
      shard_home = Hashtbl.create 256;
      client_home = Hashtbl.create 256;
      fleet_handoff_bytes = 0;
      c2b_send = Hashtbl.create 64; c2b_recv = Hashtbl.create 64;
      b2c_send = Hashtbl.create 64; b2c_recv = Hashtbl.create 64 }
  in
  (* Server network nodes dispatch into the (not yet built) instances via t. *)
  for i = 0 to capacity - 1 do
    Net.add_node net ~id:i ~region:server_regions.(i) ~kind:"net.server"
      ~handler:(fun ~src m ->
        match m with
        | B2s m ->
          (match
             (Hashtbl.find_opt t.broker_of_node src, Array.length t.servers > i)
           with
           | Some b, true -> Server.receive_broker t.servers.(i) ~src_broker:b m
           | _ -> ())
        | S2s m ->
          if Array.length t.servers > i then Server.receive_server t.servers.(i) ~src m
        | Stob_seq _ | Stob_pbft _ | Stob_hs _ ->
          if Array.length t.stobs > i then t.stobs.(i).sh_receive ~src m
        | C2b_udp _ | B2c_udp _ | S2b _ -> ())
      ()
  done;
  let servers = Array.make capacity None and stobs = Array.make capacity None in
  for i = 0 to capacity - 1 do
    let deliver item =
      (* Route through [t] so a slot whose instance was replaced keeps
         receiving its ordered items; fall back to the local array only
         during construction. *)
      if Array.length t.servers > i then
        Server.on_stob_deliver t.servers.(i) item
      else
        match servers.(i) with
        | Some sv -> Server.on_stob_deliver sv item
        | None -> ()
    in
    let sh = make_stob t ~self:i ~deliver in
    stobs.(i) <- Some sh;
    let directory = Directory.create ~dense_count:cfg.dense_clients () in
    let membership = Membership.create ~capacity ~initial:n in
    let sv =
      build_server t ~slot:i ~ms_sk:(fst server_identities.(i)) ~directory
        ~membership ~stob:sh
    in
    Server.start sv;
    servers.(i) <- Some sv
  done;
  t.servers <- Array.map (function Some s -> s | None -> assert false) servers;
  t.stobs <- Array.map (function Some s -> s | None -> assert false) stobs;
  (* Spare slots idle (crashed + disconnected) until an ordered Join. *)
  for i = n to capacity - 1 do
    Server.crash t.servers.(i);
    t.stobs.(i).sh_crash ();
    Net.disconnect t.net i
  done;
  (* Standard brokers, one per continent (§6.2). *)
  let broker_regions = Array.of_list Region.broker_regions in
  for b = 0 to cfg.n_brokers - 1 do
    ignore
      (install_broker t
         ~region:broker_regions.(b mod Array.length broker_regions)
         ~flush_period:cfg.flush_period ~reduce_timeout:cfg.reduce_timeout
         ~max_batch:cfg.max_batch ())
  done;
  t

let add_broker t ~region ?flush_period ?reduce_timeout ?max_batch ?cores
    ?capacity ?ingress_bps ?egress_bps () =
  install_broker t ~region
    ~flush_period:(Option.value flush_period ~default:t.cfg.flush_period)
    ~reduce_timeout:(Option.value reduce_timeout ~default:t.cfg.reduce_timeout)
    ~max_batch:(Option.value max_batch ~default:t.cfg.max_batch)
    ?cores ?capacity ?ingress_bps ?egress_bps ()

(* --- clients ------------------------------------------------------------- *)

let client_region_cycle = Array.of_list Region.client_regions

(* Region round-robin per deployment, not per process: a global cursor
   would make the region assignment — and therefore the trace — depend on
   how many deployments ran earlier in the process. *)
let pick_client_region t region =
  match region with
  | Some r -> r
  | None ->
    let r = client_region_cycle.(t.next_client_region mod Array.length client_region_cycle) in
    t.next_client_region <- t.next_client_region + 1;
    r

(* Broker preference order for a client at [node]/[region] — including the
   fleet homing side effects, so thin-client and per-client deployments
   partition identically. *)
let client_broker_order t ~node ~region ~identity =
  match t.fleet with
  | Some fl when Fleet.size fl > 0 ->
    (* Fleet partitioning: deterministic home broker plus the ordered
       failover walk.  Dense identities key by id (stable across
       runs); anonymous clients key by their node id. *)
    let key = match identity with Some id -> id | None -> node in
    let order = Fleet.assignment fl ~key ~region () in
    let home = List.hd order in
    Fleet.note_client fl home;
    Hashtbl.replace t.client_home node home;
    order
  | _ ->
    (* Nearest broker first, then the rest. *)
    let all = List.init (Array.length t.brokers) Fun.id in
    List.sort
      (fun a b ->
        Float.compare
          (Region.latency region (Net.node_region t.net t.brokers.(a).br_node))
          (Region.latency region (Net.node_region t.net t.brokers.(b).br_node)))
      all

(* The client node's network face, shared between {!add_client} and
   {!add_thin_client}: t3.small-class NIC (its traffic is tiny anyway,
   §6.2) and the reliable-UDP data/ack demultiplexer. *)
let add_client_node t ~node ~region ~deliver =
  Net.add_node t.net ~id:node ~region ~ingress_bps:5e9 ~egress_bps:5e9
    ~kind:"net.client" ~handler:(fun ~src m ->
      match m with
      | B2c_udp (Repro_sim.Rudp.Data _ as pkt) ->
        Repro_sim.Rudp.receiver_on_data
          (b2c_receiver_to t ~deliver ~broker_node:src ~client_node:node) pkt
      | C2b_udp (Repro_sim.Rudp.Ack { seq }) ->
        (match Hashtbl.find_opt t.c2b_send (node, src) with
         | Some sender -> Repro_sim.Rudp.sender_on_ack sender seq
         | None -> ())
      | C2b_udp (Repro_sim.Rudp.Data _) | B2c_udp (Repro_sim.Rudp.Ack _)
      | B2s _ | S2b _ | S2s _ | Stob_seq _ | Stob_pbft _ | Stob_hs _ -> ())
    ()

let add_client t ?region ?identity ?on_delivered ?brokers () =
  let region = pick_client_region t region in
  let node = t.next_node in
  t.next_node <- node + 1;
  let broker_list =
    match brokers with
    | Some bs -> bs
    | None -> client_broker_order t ~node ~region ~identity
  in
  let keypair =
    match identity with
    | Some id -> Directory.dense_keypair id
    | None -> Types.keypair_of_seed (Printf.sprintf "client-node-%d" node)
  in
  let cfg_c =
    { Client.brokers = broker_list; resubmit_timeout = 8.0;
      max_resubmit_timeout = 60.0;
      n_servers = t.cfg.n_servers; clients = max t.cfg.dense_clients 1024 }
  in
  let c =
    Client.create ~engine:t.engine ~config:cfg_c ~keypair
      ~membership:t.membership
      ~server_ms_pk:(fun j -> t.server_pks.(j))
      ~send_broker:(fun ~broker ~bytes m ->
        Repro_sim.Rudp.send
          (c2b_sender t ~client_node:node ~broker_node:t.brokers.(broker).br_node)
          ~bytes m)
      ?on_delivered ~nonce:node ()
  in
  add_client_node t ~node ~region ~deliver:(fun m -> Client.receive c m);
  Hashtbl.replace t.clients_by_node node c;
  (match identity with
   | Some id ->
     Hashtbl.replace t.client_nodes id node;
     Client.force_identity c id
   | None -> ());
  c

type thin_client = {
  tc_node : int;
  tc_brokers : int list;
  tc_send : broker:int -> bytes:int -> Proto.client_to_broker -> unit;
}

(* A thin client endpoint: the same node-id assignment, region
   round-robin, broker preference order, NIC and reliable-UDP wiring as
   {!add_client}, but the protocol state machine lives with the caller
   (the flat-array cohort in [lib/workload]) instead of a [Client.t]. *)
let add_thin_client t ?region ~identity ~receive () =
  let region = pick_client_region t region in
  let node = t.next_node in
  t.next_node <- node + 1;
  let broker_list =
    client_broker_order t ~node ~region ~identity:(Some identity)
  in
  add_client_node t ~node ~region ~deliver:receive;
  Hashtbl.replace t.client_nodes identity node;
  { tc_node = node;
    tc_brokers = broker_list;
    tc_send =
      (fun ~broker ~bytes m ->
        Repro_sim.Rudp.send
          (c2b_sender t ~client_node:node ~broker_node:t.brokers.(broker).br_node)
          ~bytes m) }

let server_ms_pk t j = t.server_pks.(j)

let rudp_stats t =
  let retrans = ref 0 and gave_up = ref 0 and dups = ref 0 in
  Hashtbl.iter (fun _ s -> retrans := !retrans + Repro_sim.Rudp.retransmissions s;
                           gave_up := !gave_up + Repro_sim.Rudp.give_up_count s) t.c2b_send;
  Hashtbl.iter (fun _ s -> retrans := !retrans + Repro_sim.Rudp.retransmissions s;
                           gave_up := !gave_up + Repro_sim.Rudp.give_up_count s) t.b2c_send;
  Hashtbl.iter (fun _ r -> dups := !dups + Repro_sim.Rudp.duplicates r) t.c2b_recv;
  Hashtbl.iter (fun _ r -> dups := !dups + Repro_sim.Rudp.duplicates r) t.b2c_recv;
  (!retrans, !gave_up, !dups)

let crash_server t i =
  Server.crash t.servers.(i);
  t.stobs.(i).sh_crash ();
  Net.disconnect t.net i

let recover_server t i =
  Net.reconnect t.net i;
  t.stobs.(i).sh_recover ();
  Server.recover t.servers.(i)

let restart_server t i =
  (* Cold restart: reconnect and resume the STOB underlay, then rebuild the
     chopchop layer from its durable state (WAL replay + peer state
     transfer).  Requires [store_enabled]; degrades to {!recover_server}
     otherwise. *)
  Net.reconnect t.net i;
  t.stobs.(i).sh_recover ();
  Server.cold_restart t.servers.(i)

(* --- dynamic membership (ordered reconfiguration) ------------------------ *)

let membership t = t.membership
let capacity t = t.capacity
let server_epoch t i = Server.epoch t.servers.(i)

(* First active slot other than [avoid]: the server through which an
   orchestrated Reconfigure command enters the STOB.  It must itself be a
   live member (a Sequencer underlay forwards via node 0, so slot 0 is
   never removed — see DESIGN.md). *)
let anchor t ?(avoid = -1) () =
  let rec hunt c tries =
    if tries = 0 then 0
    else if c <> avoid && Membership.is_active t.membership c then c
    else hunt ((c + 1) mod t.capacity) (tries - 1)
  in
  hunt 0 t.capacity

let join_server t i =
  (* Bring a spare slot online: reconnect its node, order the Join through
     a live member, and bootstrap the joiner through cold-restart state
     transfer.  It starts witnessing only once caught up and active. *)
  Net.reconnect t.net i;
  t.stobs.(i).sh_recover ();
  ignore (Membership.apply t.membership (Membership.Join i));
  Server.broadcast_reconfigure t.servers.(anchor t ~avoid:i ())
    (Membership.Join i) ~ms_pk:(Some t.server_pks.(i));
  Server.cold_restart t.servers.(i)

let leave_server t i =
  (* Order the departure; the leaver tears itself down when the command
     reaches it in the total order (Server.on_self_leave). *)
  ignore (Membership.apply t.membership (Membership.Leave i));
  Server.broadcast_reconfigure t.servers.(anchor t ~avoid:i ())
    (Membership.Leave i) ~ms_pk:None

let replace_server t i =
  (* The old identity is gone for good: crash it, install a fresh instance
     with a new keypair and an empty store in the same slot, roll the
     committee via an ordered Replace, and bootstrap the newcomer through
     state transfer. *)
  Server.crash t.servers.(i);
  t.stobs.(i).sh_crash ();
  Net.disconnect t.net i;
  let gen = Membership.generation t.membership i + 1 in
  ignore (Membership.apply t.membership (Membership.Replace (i, gen)));
  let ms_sk, ms_pk =
    Multisig.keygen_deterministic
      ~seed:(Printf.sprintf "server-%d-gen-%d" i gen)
  in
  t.server_pks.(i) <- ms_pk;
  if t.cfg.store_enabled then
    t.stores.(i) <- Some (Store.create ~disk:(Disk.create t.engine ()) ());
  let membership =
    Membership.create ~capacity:t.capacity ~initial:t.cfg.n_servers
  in
  (* The directory is shared infrastructure (dense prefix + explicit
     cards); the newcomer re-learns explicit entries through WAL replay
     against the same object. *)
  let directory = Server.directory t.servers.(i) in
  let sv =
    build_server t ~slot:i ~ms_sk ~directory ~membership ~stob:t.stobs.(i)
  in
  t.servers.(i) <- sv;
  Server.start sv;
  Server.broadcast_reconfigure t.servers.(anchor t ~avoid:i ())
    (Membership.Replace (i, gen)) ~ms_pk:(Some ms_pk);
  Net.reconnect t.net i;
  t.stobs.(i).sh_recover ();
  Server.cold_restart sv

(* --- raw traffic injection (adversarial workload drivers) ----------------- *)

(* A bare network presence that can push arbitrary client->broker messages
   through the usual reliable-UDP channel: the substrate for spam and
   sybil load in lib/workload.  Returns the send function. *)
let add_injector t ?region () =
  let region =
    match region with
    | Some r -> r
    | None ->
      let r =
        client_region_cycle.(t.next_client_region
                             mod Array.length client_region_cycle)
      in
      t.next_client_region <- t.next_client_region + 1;
      r
  in
  let node = t.next_node in
  t.next_node <- node + 1;
  Net.add_node t.net ~id:node ~region ~ingress_bps:5e9 ~egress_bps:5e9
    ~kind:"net.client" ~handler:(fun ~src m ->
      match m with
      | C2b_udp (Repro_sim.Rudp.Ack { seq }) ->
        (match Hashtbl.find_opt t.c2b_send (node, src) with
         | Some sender -> Repro_sim.Rudp.sender_on_ack sender seq
         | None -> ())
      | _ -> ())
    ();
  fun ~broker ~bytes m ->
    Repro_sim.Rudp.send
      (c2b_sender t ~client_node:node
         ~broker_node:t.brokers.(broker).br_node)
      ~bytes m

(* --- durable-state introspection (metrics probes, bench gate) ----------- *)

let server_store t i = t.stores.(i)

let with_store t i ~default f =
  match t.stores.(i) with Some s -> f s | None -> default

let server_wal_bytes t i = with_store t i ~default:0 Store.wal_bytes_total
let server_wal_records t i = with_store t i ~default:0 Store.wal_records_total
let server_checkpoints t i = with_store t i ~default:0 Store.checkpoints

let server_snapshot_bytes t i =
  with_store t i ~default:0 Store.last_checkpoint_bytes

let server_disk_backlog t i =
  with_store t i ~default:0. (fun s -> Disk.backlog (Store.disk s))

let server_disk_bytes_written t i =
  with_store t i ~default:0 (fun s -> Disk.bytes_written (Store.disk s))

let server_catching_up t i = Server.catching_up t.servers.(i)

let set_server_app t i ~snapshot ~restore =
  Server.set_app_hooks t.servers.(i) ~snapshot ~restore

(* Move every explicit card of broker [from_]'s shard that [belongs] to a
   new owner chosen per card; returns the handoff wire bytes accounted. *)
let reshard t ~from_ ~belongs ~owner_of =
  match t.brokers.(from_).br_shard with
  | None -> 0
  | Some src ->
    let moved = ref 0 in
    List.iter
      (fun (id, card) ->
        if belongs id then begin
          let dst = owner_of id in
          if dst <> from_ then
            match t.brokers.(dst).br_shard with
            | Some dshard ->
              Directory.shard_remove src ~id;
              Directory.shard_insert dshard ~id card;
              incr moved
            | None -> ()
        end)
      (Directory.shard_cards src);
    if !moved > 0 then Wire.shard_handoff_bytes ~cards:!moved else 0

let crash_broker t i =
  Broker.crash t.brokers.(i).br;
  Net.disconnect t.net t.brokers.(i).br_node;
  (* Fleet failover: the crashed partition's cards move to each key's
     first alive failover broker — the same successor the clients' broker
     rotation lands on, so re-routed submissions still resolve. *)
  match t.fleet with
  | Some fl ->
    Fleet.mark_down fl i;
    t.fleet_handoff_bytes <-
      t.fleet_handoff_bytes
      + reshard t ~from_:i
          ~belongs:(fun _ -> true)
          ~owner_of:(fun id -> Fleet.first_alive fl ~key:id ())
  | None -> ()

let recover_broker t i =
  Net.reconnect t.net t.brokers.(i).br_node;
  Broker.recover t.brokers.(i).br;
  (* Fleet rebalance: cards homed on the recovered broker move back, and
     its clients point their rotation at the head of the preference list
     again (with their backoff forgotten). *)
  match t.fleet with
  | Some fl ->
    Fleet.mark_up fl i;
    let back = ref 0 in
    for j = 0 to Array.length t.brokers - 1 do
      if j <> i then
        back :=
          !back
          + reshard t ~from_:j
              ~belongs:(fun id -> Hashtbl.find_opt t.shard_home id = Some i)
              ~owner_of:(fun _ -> i)
    done;
    t.fleet_handoff_bytes <- t.fleet_handoff_bytes + !back;
    Hashtbl.iter
      (fun node c ->
        if Hashtbl.find_opt t.client_home node = Some i then Client.rehome c)
      t.clients_by_node
  | None -> ()

(* --- fleet introspection (lib/fleet) ------------------------------------- *)

let fleet t = t.fleet
let broker_shard t i = t.brokers.(i).br_shard

let fleet_loads t =
  match t.fleet with Some fl -> Fleet.loads fl | None -> [||]

let fleet_hottest t =
  match t.fleet with Some fl -> Fleet.hottest fl | None -> None

let fleet_handoff_bytes t = t.fleet_handoff_bytes

let admission_rejects t =
  (* (broker, rejects) summed across every server's fair-admission gate. *)
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun sv ->
      List.iter
        (fun (b, n) ->
          Hashtbl.replace tbl b
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
        (Server.admission_rejects sv))
    t.servers;
  List.sort compare (Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl [])

let node_of_client t c =
  Hashtbl.fold
    (fun node c' acc -> if c' == c then Some node else acc)
    t.clients_by_node None

let crash_client t c =
  Client.crash c;
  match node_of_client t c with
  | Some node -> Net.disconnect t.net node
  | None -> ()

(* Network fault passthroughs (lib/chaos): node ids are servers
   [0, n_servers), then {!broker_node_id}, then {!node_of_client}. *)

let partition t groups = Net.partition t.net groups
let heal t = Net.heal t.net
let partition_groups t = Net.partition_groups t.net
let server_connected t i = Net.is_connected t.net i
let partitioned t = Net.partitioned t.net
let set_link_loss t ~src ~dst p = Net.set_link_loss t.net ~src ~dst p

let degrade_link t ~src ~dst ~extra_latency =
  Net.degrade_link t.net ~src ~dst ~extra_latency
