module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Schnorr = Repro_crypto.Schnorr
module Multisig = Repro_crypto.Multisig
module Merkle = Repro_crypto.Merkle
module Trace = Repro_trace.Trace

type config = {
  broker_id : int;
  n_servers : int;
  clients : int;
  flush_period : float;
  reduce_timeout : float;
  witness_margin : int;
  witness_timeout : float;
  submit_timeout : float;
  max_batch : int;
  admission_rate : float; (* per-client token refill rate; 0 = unlimited *)
  admission_burst : float; (* token-bucket depth *)
}

let default_config ~n_servers ~clients =
  { broker_id = 0; n_servers; clients;
    flush_period = 1.0; reduce_timeout = 1.0;
    witness_margin = 4; witness_timeout = 2.0; submit_timeout = 4.0;
    max_batch = 65_536; admission_rate = 0.; admission_burst = 0. }

type submission = {
  sub_id : Types.client_id;
  sub_seq : Types.sequence_number;
  sub_msg : Types.message;
  sub_tsig : Schnorr.signature;
  sub_ctx : Trace.Ctx.t; (* causal context carried since the client *)
}

type reducing = {
  r_entries : Batch.entry array; (* sorted by id *)
  r_subs : (Types.client_id, submission) Hashtbl.t;
  r_agg_seq : int;
  r_tree : Merkle.t;
  r_shares : (Types.client_id, Multisig.signature) Hashtbl.t;
}

type in_flight = {
  w_batch : Batch.t;
  w_root : string; (* identity root *)
  w_reduction_root : string;
  w_base : int; (* witness-set rotation offset (batch number mod n) *)
  mutable w_shards : (int * Multisig.signature) list;
  mutable w_asked : int; (* how many servers were asked to witness *)
  mutable w_witness : Certs.quorum_cert option;
  mutable w_submit_target : int;
  mutable w_acked : bool;
  mutable w_completions : (int * string, (int * Multisig.signature) list) Hashtbl.t;
      (* (counter, exc_hash) -> shards *)
  mutable w_exceptions : (int * string, (Types.client_id * int) list) Hashtbl.t;
  mutable w_done : bool;
  w_on_complete : (Certs.delivery_cert -> unit) option; (* load-broker hook *)
}

type bucket = { mutable tokens : float; mutable stamp : float }

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  cfg : config;
  membership : Membership.t; (* shared routing view of the active servers *)
  dir : Directory.view;
  server_ms_pk : int -> Multisig.public_key;
  send_server : dst:int -> bytes:int -> Proto.broker_to_server -> unit;
  send_client : client:Types.client_id -> bytes:int -> Proto.broker_to_client -> unit;
  send_anon : nonce:int -> bytes:int -> Proto.broker_to_client -> unit;
  stob_signup : Stob_item.t -> unit;
  (* Submission intake: one live submission per client; extras queue. *)
  pool : (Types.client_id, submission) Hashtbl.t;
  overflow : (Types.client_id, submission Queue.t) Hashtbl.t;
  buckets : (Types.client_id, bucket) Hashtbl.t; (* per-client rate limits *)
  mutable flush_cursor : int; (* fair-queue rotation point for oversubscribed flushes *)
  mutable reducing : (string, reducing) Hashtbl.t; (* keyed by proposal root *)
  mutable flight : (string, in_flight) Hashtbl.t; (* keyed by identity root *)
  mutable number : int;
  mutable evidence : Certs.delivery_cert option; (* best legitimacy proof *)
  mutable completed : int;
  mutable entries_launched : int;
  mutable stragglers_launched : int;
  mutable crashed : bool;
  mutable signups_seen : (int, unit) Hashtbl.t;
  (* Byzantine fault injection (lib/chaos), mirroring the client's
     misbehave_* hooks.  All default to honest. *)
  mutable mis_equivocate : bool;
  mutable mis_garble : bool;
  mutable mis_malform : bool;
  mutable mis_withhold : bool;
  k_timer : int; (* Engine kind attributing broker timer events *)
  c_verify : Trace.Counter.t; (* signature-verification operations *)
}

let create ~engine ~cpu ~config ?membership ~directory ~server_ms_pk
    ~send_server ~send_client ~send_anon ~stob_signup () =
  let membership =
    match membership with
    | Some m -> m
    | None ->
      Membership.create ~capacity:config.n_servers ~initial:config.n_servers
  in
  { engine; cpu; cfg = config; membership;
    dir = directory; server_ms_pk; send_server; send_client; send_anon; stob_signup;
    pool = Hashtbl.create 1024; overflow = Hashtbl.create 64;
    buckets = Hashtbl.create 1024; flush_cursor = 0;
    reducing = Hashtbl.create 8; flight = Hashtbl.create 32;
    number = 0; evidence = None; completed = 0;
    entries_launched = 0; stragglers_launched = 0; crashed = false;
    signups_seen = Hashtbl.create 64;
    mis_equivocate = false; mis_garble = false; mis_malform = false;
    mis_withhold = false;
    k_timer = Engine.kind engine "broker.timer";
    c_verify =
      Trace.Sink.counter (Engine.trace engine) ~cat:"crypto" ~name:"verify_ops" }

(* Trace actors: servers are [0, n); brokers shift by 1000 so their rows
   stay distinct in a Chrome timeline. *)
let tr t = Engine.trace t.engine
let tr_actor t = 1000 + t.cfg.broker_id

(* Fault threshold / quorum of the current epoch's active committee. *)
let bf t = Membership.f t.membership
let bq t = Membership.quorum t.membership

let batches_in_flight t = Hashtbl.length t.flight + Hashtbl.length t.reducing

let pool_depth t = Hashtbl.length t.pool

let flight_numbers t =
  Hashtbl.fold (fun _ fl acc -> (fl.w_batch.Batch.number, fl.w_done, fl.w_witness <> None) :: acc) t.flight []

let stage_counts t =
  let waiting_witness = ref 0 and waiting_completion = ref 0 in
  Hashtbl.iter
    (fun _ fl ->
      if fl.w_witness = None then incr waiting_witness else incr waiting_completion)
    t.flight;
  (Hashtbl.length t.reducing, !waiting_witness, !waiting_completion)
let batches_completed t = t.completed

let distillation_ratio t =
  if t.entries_launched = 0 then 1.0
  else
    1.0
    -. (float_of_int t.stragglers_launched /. float_of_int t.entries_launched)
let best_evidence t = t.evidence

let evidence_counter t = match t.evidence with Some e -> e.Certs.counter | None -> 0

(* --- legitimacy cache (§5.1) -------------------------------------------- *)

let note_evidence t (cert : Certs.delivery_cert) =
  (* Only certificates improving on the best one are verified at all. *)
  if cert.counter > evidence_counter t then begin
    (* Pure cache update, no message depends on it: fire-and-forget so
       legitimacy screening of the carrying submission is not delayed. *)
    Cpu.charge t.cpu ~work:(Cpu.serial Cost.bls_verify);
    Trace.Counter.incr t.c_verify;
    if Certs.verify_delivery ~server_ms_pk:t.server_ms_pk ~quorum:(bq t) cert
    then t.evidence <- Some cert
  end

(* --- admission control (per-client token bucket) -------------------------- *)

let admit t key =
  t.cfg.admission_rate <= 0.
  ||
  let now = Engine.now t.engine in
  let b =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> b
    | None ->
      let b = { tokens = t.cfg.admission_burst; stamp = now } in
      Hashtbl.add t.buckets key b;
      b
  in
  b.tokens <-
    Float.min t.cfg.admission_burst
      (b.tokens +. ((now -. b.stamp) *. t.cfg.admission_rate));
  b.stamp <- now;
  if b.tokens >= 1. then begin
    b.tokens <- b.tokens -. 1.;
    true
  end
  else false

let reject_instant t name ~id =
  let s = tr t in
  if Trace.enabled s then
    Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor t)
      ~cat:"broker" ~name ~id:(Trace.key (string_of_int id))
      ~attrs:[ ("client", Trace.A_int id) ]

(* --- submission intake (#2) ---------------------------------------------- *)

let accept_submission t (sub : submission) =
  if Hashtbl.mem t.pool sub.sub_id then begin
    let q =
      match Hashtbl.find_opt t.overflow sub.sub_id with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.overflow sub.sub_id q;
        q
    in
    (* Retransmissions of the same (seq, msg) are dropped. *)
    let dup =
      (Hashtbl.find t.pool sub.sub_id).sub_seq = sub.sub_seq
      || Queue.fold (fun acc s -> acc || s.sub_seq = sub.sub_seq) false q
    in
    if not dup then Queue.add sub q
  end
  else Hashtbl.replace t.pool sub.sub_id sub

(* --- flush: build a proposal and ask for reductions (#3, #4) ------------- *)

let rec flush t =
  if Hashtbl.length t.pool > 0 && not t.crashed then begin
    let subs = Hashtbl.fold (fun _ s acc -> s :: acc) t.pool []
    in
    let subs =
      List.sort (fun a b -> Int.compare a.sub_id b.sub_id) subs
    in
    let subs =
      if List.length subs <= t.cfg.max_batch then subs
      else begin
        (* Fair queueing: an oversubscribed pool is consumed in id order
           starting from where the previous flush stopped, so low client
           ids cannot starve high ones indefinitely. *)
        let above, below =
          List.partition (fun s -> s.sub_id >= t.flush_cursor) subs
        in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        let taken = take t.cfg.max_batch (above @ below) in
        (match List.rev taken with
         | last :: _ -> t.flush_cursor <- last.sub_id + 1
         | [] -> ());
        List.sort (fun a b -> Int.compare a.sub_id b.sub_id) taken
      end
    in
    List.iter (fun s -> Hashtbl.remove t.pool s.sub_id) subs;
    (* Refill the pool from per-client overflow queues. *)
    List.iter
      (fun s ->
        match Hashtbl.find_opt t.overflow s.sub_id with
        | Some q when not (Queue.is_empty q) ->
          Hashtbl.replace t.pool s.sub_id (Queue.pop q)
        | Some _ | None -> ())
      subs;
    (* Bulk-authenticate the submissions (§5.1 EdDSA batch verification);
       on failure fall back to per-signature checks and drop forgeries.
       Completion-gated: no inclusion proof leaves before the charged
       verification work has run on the sim clock. *)
    let to_verify =
      List.map
        (fun s ->
          ( Directory.view_sig_pk t.dir s.sub_id,
            Types.message_statement ~id:s.sub_id ~seq:s.sub_seq s.sub_msg,
            s.sub_tsig ))
        subs
    in
    let n_subs = List.length subs in
    Cpu.submit t.cpu ~work:(Cpu.parallel (Cost.ed25519_batch_verify n_subs))
      (fun () ->
        if not t.crashed then begin
          Trace.Counter.incr t.c_verify;
          if Schnorr.batch_verify to_verify then propose t subs
          else
            (* The fallback is n {e individual} verifications — no
               batching amortization this time. *)
            Cpu.submit t.cpu
              ~work:(Cpu.parallel (float_of_int n_subs *. Cost.ed25519_verify))
              (fun () ->
                if not t.crashed then begin
                  Trace.Counter.add t.c_verify n_subs;
                  propose t
                    (List.filter
                       (fun s ->
                         Schnorr.verify
                           (Directory.view_sig_pk t.dir s.sub_id)
                           (Types.message_statement ~id:s.sub_id ~seq:s.sub_seq
                              s.sub_msg)
                           s.sub_tsig)
                       subs)
                end)
        end)
  end

and propose t subs =
  if subs <> [] && not t.crashed then begin
    let agg_seq = List.fold_left (fun k s -> max k s.sub_seq) 0 subs in
    let entries =
      Array.of_list
        (List.map (fun s -> { Batch.e_id = s.sub_id; e_msg = s.sub_msg }) subs)
    in
    let leaves =
      Array.map (fun e -> Batch.leaf ~id:e.Batch.e_id ~seq:agg_seq e.e_msg) entries
    in
    Cpu.submit t.cpu
      ~work:
        (Cpu.parallel
           (Cost.merkle_build ~leaves:(Array.length leaves)
              ~leaf_bytes:(String.length leaves.(0))))
      (fun () ->
        if not t.crashed then begin
          let tree = Merkle.build leaves in
          let root = Merkle.root tree in
          let r_subs = Hashtbl.create (List.length subs) in
          List.iter (fun s -> Hashtbl.replace r_subs s.sub_id s) subs;
          let st =
            { r_entries = entries; r_subs; r_agg_seq = agg_seq; r_tree = tree;
              r_shares = Hashtbl.create (List.length subs) }
          in
          Hashtbl.replace t.reducing root st;
          (let s = tr t in
           if Trace.enabled s then begin
             let now = Engine.now t.engine and actor = tr_actor t in
             Trace.span_begin s ~now ~actor
               ~cat:"broker" ~name:"distill" ~id:(Trace.key root)
               ~attrs:[ ("entries", Trace.A_int (Array.length entries)) ];
             (* One hop per included message, keyed by the propagated causal
                context, pointing at the proposal this broker folded it into —
                the client→broker link of the [--follow] tree. *)
             List.iter
               (fun sub ->
                 let ctx = Trace.Ctx.child sub.sub_ctx in
                 Trace.instant s ~now ~actor ~cat:"broker" ~name:"include"
                   ~id:(Trace.Ctx.root ctx)
                   ~attrs:
                     [ ("proposal", Trace.A_int (Trace.key root));
                       ("hop", Trace.A_int (Trace.Ctx.hop ctx)) ])
               subs
           end);
          (* #4: send each client its inclusion proof. *)
          Array.iteri
            (fun i e ->
              let proof = Merkle.prove tree i in
              t.send_client ~client:e.Batch.e_id
                ~bytes:(Wire.inclusion_bytes ~count:(Array.length entries))
                (Inclusion { root; proof; agg_seq; evidence = t.evidence }))
            entries;
          Engine.schedule ~kind:t.k_timer t.engine ~delay:t.cfg.reduce_timeout (fun () ->
              reduce t root)
        end)
  end

(* --- reduce: aggregate shares, build the distilled batch (#7) ------------ *)

and reduce t root =
  match Hashtbl.find_opt t.reducing root with
  | None -> ()
  | Some st ->
    if not t.crashed then begin
      Hashtbl.remove t.reducing root;
      (* Verify the shares in aggregate; isolate invalid ones in log time
         (§5.1 tree-search).  Aggregations are divisible work; the final
         pairing check is serial.  The batch may not launch before this
         completes on the sim clock. *)
      let share_list =
        Hashtbl.fold
          (fun id share acc -> (id, Directory.view_ms_pk t.dir id, share) :: acc)
          st.r_shares []
      in
      let statement = Types.reduction_statement ~root in
      Cpu.submit t.cpu
        ~work:
          (Cpu.work
             ~parallel:
               (Cost.bls_aggregate_sigs (List.length share_list)
               +. Cost.bls_aggregate_pks (List.length share_list))
             ~serial:Cost.bls_verify)
        (fun () ->
          if not t.crashed then begin
            Trace.Counter.incr t.c_verify;
            let agg_all =
              Multisig.aggregate_signatures
                (List.map (fun (_, _, s) -> s) share_list)
            in
            let pk_all =
              Multisig.aggregate_public_keys
                (List.map (fun (_, pk, _) -> pk) share_list)
            in
            if share_list = [] then distill_done t st root []
            else if Multisig.verify pk_all statement agg_all then
              distill_done t st root share_list
            else begin
              let entries = List.map (fun (_, pk, s) -> (pk, s)) share_list in
              let bad = Multisig.find_invalid entries statement in
              (* Tree-search verifications are sequentially dependent
                 pairings: serial work. *)
              Cpu.submit t.cpu
                ~work:
                  (Cpu.serial
                     (float_of_int (List.length bad + 1) *. Cost.bls_verify *. 8.))
                (fun () ->
                  if not t.crashed then begin
                    Trace.Counter.add t.c_verify ((List.length bad + 1) * 8);
                    distill_done t st root
                      (List.filteri (fun i _ -> not (List.mem i bad)) share_list)
                  end)
            end
          end)
    end

(* Second half of [reduce], entered once the share verification work has
   completed: materialise the distilled batch and launch it. *)
and distill_done t st root valid_shares =
    begin
      let reduced_ids = List.map (fun (id, _, _) -> id) valid_shares in
      let reduced = Hashtbl.create (List.length reduced_ids) in
      List.iter (fun id -> Hashtbl.replace reduced id ()) reduced_ids;
      let stragglers =
        Array.of_list
          (Array.to_list st.r_entries
          |> List.filter_map (fun e ->
                 if Hashtbl.mem reduced e.Batch.e_id then None
                 else
                   let s = Hashtbl.find st.r_subs e.Batch.e_id in
                   Some { Batch.s_id = s.sub_id; s_seq = s.sub_seq; s_sig = s.sub_tsig }))
      in
      let agg_sig =
        match valid_shares with
        | [] -> None
        | shares ->
          Some (Multisig.aggregate_signatures (List.map (fun (_, _, s) -> s) shares))
      in
      let number = t.number in
      t.number <- number + 1;
      let batch =
        Batch.make_explicit ~broker:t.cfg.broker_id ~number ~entries:st.r_entries
          ~agg_seq:st.r_agg_seq ~stragglers ~agg_sig
      in
      (let s = tr t in
       if Trace.enabled s then
         Trace.span_end s ~now:(Engine.now t.engine) ~actor:(tr_actor t)
           ~cat:"broker" ~name:"distill" ~id:(Trace.key root)
           ~attrs:[ ("stragglers", Trace.A_int (Array.length stragglers)) ]);
      if t.mis_equivocate && Array.length st.r_entries >= 2 then
        launch_equivocal t st number
      else begin
        let batch =
          (* Forged reduction multi-signature: the batch structure is
             intact but the aggregate does not verify against the
             reduction root, so correct servers refuse to witness. *)
          if t.mis_garble then
            { batch with Batch.agg_sig = Some (Multisig.forge_garbage ()) }
          else batch
        in
        let batch = if t.mis_malform then malform batch else batch in
        launch t batch ~on_complete:None
      end
    end

(* Tamper with one entry's message after the clients signed.  Roots are
   recomputed from the record, so the batch is self-consistent — but no
   client signature nor reduction multi-signature covers the new payload,
   which is exactly what [Batch.verify] exists to catch. *)
and malform batch =
  match batch.Batch.entries with
  | Batch.Explicit es when Array.length es > 0 ->
    let es = Array.copy es in
    es.(0) <- { es.(0) with Batch.e_msg = "\xff" ^ es.(0).Batch.e_msg };
    { batch with Batch.entries = Batch.Explicit es }
  | _ -> batch

(* Byzantine equivocation (§4.4, trustless brokers): two valid
   all-straggler batches claim the same (broker, number) slot, and each
   half of the server set is shown a different one.  Every individual
   signature checks out, so both variants can gather f+1 witness shards —
   only the servers' (broker, number) deduplication at STOB delivery
   guarantees that at most one of them is ever delivered. *)
and launch_equivocal t st number =
  let half lo len =
    let entries = Array.sub st.r_entries lo len in
    let stragglers =
      Array.map
        (fun e ->
          let s = Hashtbl.find st.r_subs e.Batch.e_id in
          { Batch.s_id = s.sub_id; s_seq = s.sub_seq; s_sig = s.sub_tsig })
        entries
    in
    Batch.make_explicit ~broker:t.cfg.broker_id ~number ~entries
      ~agg_seq:st.r_agg_seq ~stragglers ~agg_sig:None
  in
  let k = Array.length st.r_entries / 2 in
  let a = half 0 k and b = half k (Array.length st.r_entries - k) in
  launch t a ~on_complete:None ~only:(fun dst -> dst land 1 = 0)
    ~force_witness:true;
  launch t b ~on_complete:None ~only:(fun dst -> dst land 1 = 1)
    ~force_witness:true

(* --- dissemination & witnessing (#8–#12) --------------------------------- *)

and launch ?(only = fun _ -> true) ?(force_witness = false) t batch ~on_complete =
  t.entries_launched <- t.entries_launched + Batch.count batch;
  t.stragglers_launched <- t.stragglers_launched + Batch.straggler_count batch;
  let root = Batch.identity_root batch in
  (* All per-flight rotation happens over the *active* server list of the
     current epoch; [w_base] and [w_submit_target] are indices into it. *)
  let active = Membership.active_slots t.membership in
  let n_act = max 1 (List.length active) in
  let fl =
    { w_batch = batch; w_root = root;
      w_reduction_root = Batch.reduction_root batch;
      w_base =
        (* Hash-spread, not plain [number mod n]: many brokers start their
           numbering at 0 simultaneously, which would pile the witness
           load onto the same servers. *)
        (((batch.Batch.number * 0x9E3779B1) lxor (t.cfg.broker_id * 0x85EBCA77))
         land max_int)
        mod n_act;
      w_shards = []; w_asked = min n_act (bf t + 1 + t.cfg.witness_margin);
      w_witness = None;
      w_submit_target = (batch.Batch.number + (t.cfg.broker_id * 7)) mod n_act;
      w_acked = false;
      w_completions = Hashtbl.create 4; w_exceptions = Hashtbl.create 4;
      w_done = false; w_on_complete = on_complete }
  in
  Hashtbl.replace t.flight root fl;
  (* Serialization of the batch for the active links is divisible work;
     the announcements depart only when it completes on the sim clock, so
     the "launch" instant below always coincides with a cpu job_done. *)
  let bytes = Batch.wire_bytes ~clients:t.cfg.clients batch in
  Cpu.submit t.cpu
    ~work:
      (Cpu.parallel (float_of_int (bytes * n_act) *. Cost.serialize_per_byte))
    (fun () ->
      if (not t.crashed) && Hashtbl.mem t.flight root then begin
        (let s = tr t in
         if Trace.enabled s then begin
           let now = Engine.now t.engine and actor = tr_actor t in
           let id = Trace.key root in
           (* The "reduction" attr links this identity-rooted flight back
              to the proposal-rooted distill span, so a batch can be
              followed end to end across the root change. *)
           Trace.instant s ~now ~actor ~cat:"broker" ~name:"launch" ~id
             ~attrs:
               [ ("reduction", Trace.A_int (Trace.key fl.w_reduction_root));
                 ("number", Trace.A_int batch.Batch.number);
                 ("entries", Trace.A_int (Batch.count batch));
                 ("stragglers", Trace.A_int (Batch.straggler_count batch)) ];
           Trace.span_begin s ~now ~actor ~cat:"broker" ~name:"witness" ~id
         end);
        (* Rotate the witnessing set with the batch number so the
           verification load spreads over all active servers (and degrades
           gracefully when some crash, Fig. 11a).  Announcements are
           re-resolved against the membership at send time: a slot that
           left between distillation and launch gets nothing. *)
        let active = Membership.active_slots t.membership in
        let n_now = max 1 (List.length active) in
        List.iteri
          (fun k dst ->
            let slot = (k - fl.w_base + n_now) mod n_now in
            if only dst then
              t.send_server ~dst ~bytes
                (Batch_announce
                   { batch;
                     witness_requested = force_witness || slot < fl.w_asked }))
          active;
        arm_witness_extension t root
      end)

and arm_witness_extension t root =
  Engine.schedule ~kind:t.k_timer t.engine ~delay:t.cfg.witness_timeout (fun () ->
      match Hashtbl.find_opt t.flight root with
      | Some fl when fl.w_witness = None && not t.crashed ->
        let active = Membership.active_slots t.membership in
        let n_act = max 1 (List.length active) in
        if fl.w_asked < n_act then begin
          let upto = min n_act (fl.w_asked + bf t) in
          for slot = fl.w_asked to upto - 1 do
            let dst = List.nth active ((fl.w_base + slot) mod n_act) in
            t.send_server ~dst ~bytes:Wire.witness_request_bytes
              (Witness_request { root })
          done;
          fl.w_asked <- upto;
          arm_witness_extension t root
        end
      | Some _ | None -> ())

and on_witness_shard t ~src fl share =
  if fl.w_witness = None then
    (* One pairing per shard, serial; the certificate may not be
       assembled (nor the reference submitted) before it completes. *)
    Cpu.submit t.cpu ~work:(Cpu.serial Cost.bls_verify) @@ fun () ->
    if fl.w_witness = None && (not fl.w_done) && not t.crashed then begin
    Trace.Counter.incr t.c_verify;
    let statement =
      Certs.witness_statement ~root:fl.w_root ~broker:t.cfg.broker_id
        ~number:fl.w_batch.Batch.number
    in
    if not (Multisig.verify (t.server_ms_pk src) statement share) then begin
      let s = tr t in
      if Trace.enabled s then
        Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor t)
          ~cat:"broker" ~name:"reject_shard" ~id:(Trace.key fl.w_root)
          ~attrs:[ ("src", Trace.A_int src) ]
    end
    else if not (List.mem_assoc src fl.w_shards) then begin
      fl.w_shards <- (src, share) :: fl.w_shards;
      if List.length fl.w_shards >= bq t then begin
        let witness = Certs.assemble fl.w_shards in
        fl.w_witness <- Some witness;
        (let s = tr t in
         if Trace.enabled s then begin
           let now = Engine.now t.engine and actor = tr_actor t in
           let id = Trace.key fl.w_root in
           Trace.span_end s ~now ~actor ~cat:"broker" ~name:"witness" ~id;
           Trace.span_begin s ~now ~actor ~cat:"broker" ~name:"certify" ~id
         end);
        submit_ref t fl witness
      end
    end
  end

and submit_ref t fl witness =
  (* #12: hand (root, witness) to one *active* server to relay into the
     STOB; rotate to the next one if no acknowledgement arrives. *)
  let active = Membership.active_slots t.membership in
  let n_act = max 1 (List.length active) in
  let dst = List.nth active (fl.w_submit_target mod n_act) in
  t.send_server ~dst ~bytes:Wire.stob_submission_bytes
    (Submit { root = fl.w_root; number = fl.w_batch.Batch.number; witness });
  Engine.schedule ~kind:t.k_timer t.engine ~delay:t.cfg.submit_timeout (fun () ->
      if (not fl.w_acked) && (not fl.w_done) && not t.crashed then begin
        fl.w_submit_target <- (fl.w_submit_target + 1) mod n_act;
        submit_ref t fl witness
      end)

(* --- completion (#17, #18) ------------------------------------------------ *)

and on_completion_shard t ~src fl ~counter ~exceptions share =
  if not fl.w_done then
    Cpu.submit t.cpu ~work:(Cpu.serial Cost.bls_verify) @@ fun () ->
    if (not fl.w_done) && not t.crashed then begin
    let exc_hash = Certs.exceptions_hash exceptions in
    let key = (counter, exc_hash) in
    Trace.Counter.incr t.c_verify;
    let statement = Certs.completion_statement ~root:fl.w_root ~counter ~exc_hash in
    if Multisig.verify (t.server_ms_pk src) statement share then begin
      let prev = Option.value (Hashtbl.find_opt fl.w_completions key) ~default:[] in
      if not (List.mem_assoc src prev) then begin
        let shards = (src, share) :: prev in
        Hashtbl.replace fl.w_completions key shards;
        Hashtbl.replace fl.w_exceptions key exceptions;
        if List.length shards >= bq t then finish t fl ~counter ~exceptions shards
      end
    end
    else begin
      let s = tr t in
      if Trace.enabled s then
        Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor t)
          ~cat:"broker" ~name:"reject_completion" ~id:(Trace.key fl.w_root)
          ~attrs:[ ("src", Trace.A_int src) ]
    end
  end

and finish t fl ~counter ~exceptions shards =
  fl.w_done <- true;
  (let s = tr t in
   if Trace.enabled s then begin
     let now = Engine.now t.engine and actor = tr_actor t in
     let id = Trace.key fl.w_root in
     Trace.span_end s ~now ~actor ~cat:"broker" ~name:"certify" ~id;
     Trace.instant s ~now ~actor ~cat:"broker" ~name:"complete" ~id
       ~attrs:
         [ ("counter", Trace.A_int counter);
           ("exceptions", Trace.A_int (List.length exceptions)) ]
   end);
  let qc = Certs.assemble shards in
  let cert = { Certs.root = fl.w_root; counter; exceptions; qc } in
  if cert.counter > evidence_counter t then t.evidence <- Some cert;
  t.completed <- t.completed + 1;
  (match fl.w_on_complete with
   | Some k -> k cert
   | None when t.mis_withhold ->
     (* Byzantine broker: sit on the delivery certificates.  The messages
        are ordered and delivered server-side regardless; clients time
        out, resubmit via another broker, and complete through the
        exceptions path (§4.4 — brokers are trustless for liveness too,
        as long as one correct broker exists). *)
     ()
   | None ->
     (* #18: distribute the delivery certificate to every client of the
        batch, with its inclusion proof in the identity root. *)
     (match fl.w_batch.Batch.entries with
      | Batch.Explicit entries ->
        let leaves =
          Array.map
            (fun e ->
              let seq =
                match
                  Array.find_opt
                    (fun s -> s.Batch.s_id = e.Batch.e_id)
                    fl.w_batch.Batch.stragglers
                with
                | Some s -> s.s_seq
                | None -> fl.w_batch.Batch.agg_seq
              in
              (e.Batch.e_id, seq, Batch.leaf ~id:e.Batch.e_id ~seq e.Batch.e_msg))
            entries
        in
        let tree = Merkle.build (Array.map (fun (_, _, l) -> l) leaves) in
        Array.iteri
          (fun i (id, seq, _) ->
            let proof = Merkle.prove tree i in
            t.send_client ~client:id ~bytes:Wire.delivery_cert_bytes
              (Deliver_cert { cert; seq; proof = Some proof }))
          leaves
      | Batch.Dense _ -> ()));
  Hashtbl.remove t.flight fl.w_root

(* --- entry points ---------------------------------------------------------- *)

let start t =
  Engine.every ~kind:t.k_timer t.engine ~period:t.cfg.flush_period (fun () ->
      if not t.crashed then flush t)

let receive_client t msg =
  if not t.crashed then
    match msg with
    | Proto.Submission { id; seq; msg; tsig; evidence; ctx } ->
      (* Sybil screening before anything else: an identity the directory
         has never issued must not reach the signature pipeline (its
         sig_pk lookup would fail) nor consume pool memory. *)
      if Directory.view_find t.dir id = None then
        reject_instant t "reject_unknown" ~id
      else if not (admit t id) then
        (* Per-client token bucket: spam past the admission rate is shed
           at intake, before any signature or pool work. *)
        reject_instant t "reject_rate" ~id
      else begin
        (* Legitimacy screening with the cached-best rule (§5.1). *)
        (match evidence with Some e -> note_evidence t e | None -> ());
        if Certs.legitimizes t.evidence seq then
          accept_submission t
            { sub_id = id; sub_seq = seq; sub_msg = msg; sub_tsig = tsig;
              sub_ctx = ctx }
      end
    | Proto.Reduction { id; root; share } ->
      (match Hashtbl.find_opt t.reducing root with
       | Some st when Hashtbl.mem st.r_subs id ->
         (* Shares are stored now, verified in aggregate at reduce time. *)
         Hashtbl.replace st.r_shares id share
       | Some _ | None -> ())
    | Proto.Signup_request { card; nonce } ->
      if not (Hashtbl.mem t.signups_seen nonce) then begin
        Hashtbl.add t.signups_seen nonce ();
        t.stob_signup
          (Stob_item.Signup { card; reply_broker = t.cfg.broker_id; nonce })
      end

let receive_server t ~src msg =
  if not t.crashed then
    match msg with
    | Proto.Witness_shard { root; share } ->
      (match Hashtbl.find_opt t.flight root with
       | Some fl -> on_witness_shard t ~src fl share
       | None -> ())
    | Proto.Completion_shard { root; counter; exceptions; share } ->
      (match Hashtbl.find_opt t.flight root with
       | Some fl -> on_completion_shard t ~src fl ~counter ~exceptions share
       | None -> ())
    | Proto.Submit_ack { root } ->
      (match Hashtbl.find_opt t.flight root with
       | Some fl -> fl.w_acked <- true
       | None -> ())
    | Proto.Signup_done { nonce; id } ->
      if Hashtbl.mem t.signups_seen nonce then begin
        Hashtbl.remove t.signups_seen nonce;
        t.send_anon ~nonce ~bytes:(Wire.header_bytes + 16)
          (Signup_response { nonce; id })
      end

let submit_prebuilt t batch ~on_complete =
  if not t.crashed then begin
    (* Renumber with this broker's own counter: pre-built batches share
       the (broker, number) namespace with batches distilled from live
       client submissions, and servers deduplicate on that pair. *)
    let batch = { batch with Batch.number = t.number } in
    t.number <- t.number + 1;
    launch t batch ~on_complete:(Some on_complete)
  end

let crash t = t.crashed <- true

let recover t = t.crashed <- false
(* The broker keeps no server-side state: its periodic flush loop is still
   armed (the callback is guarded on [crashed]), so submissions simply
   start batching again.  In-flight batches from before the crash resume
   too — their retry timers are likewise guarded. *)

(* Byzantine switches (lib/chaos).  One-way by design, like Client's. *)

let misbehave_equivocate t = t.mis_equivocate <- true
let misbehave_garble_reduction t = t.mis_garble <- true
let misbehave_malform t = t.mis_malform <- true
let misbehave_withhold_certs t = t.mis_withhold <- true
