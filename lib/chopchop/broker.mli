(** Chop Chop broker (Appx. B.2.2, §5.1).

    Brokers are the untrusted distillation workhorses: they collect client
    submissions, propose a batch (Merkle root + aggregate sequence
    number), gather the clients' multi-signature shares, aggregate them,
    ship the distilled batch to the servers, drive the witness round, hand
    the batch reference to the server-run Atomic Broadcast, and finally
    distribute delivery certificates back to the clients.

    The §5.1 engineering is implemented: submissions are authenticated in
    bulk with Schnorr batch verification; reduction shares are verified in
    aggregate, with logarithmic tree-search isolation of invalid shares
    ({!Repro_crypto.Multisig.find_invalid}); legitimacy proofs are cached
    (only a certificate higher than the best seen is ever verified).

    Load brokers (§6.2) reuse the pipeline from {!submit_prebuilt}
    onwards, skipping the interactive distillation they pre-computed. *)

type t

type config = {
  broker_id : int;
  n_servers : int;
  clients : int; (* directory size, for wire arithmetic *)
  flush_period : float; (* batch collection window (1 s in §5.1) *)
  reduce_timeout : float; (* distillation timeout (1 s in §5.1) *)
  witness_margin : int; (* ask f+1+margin servers for shards (§6.2) *)
  witness_timeout : float; (* extend the witnessing set after this *)
  submit_timeout : float; (* re-target the STOB relay after this *)
  max_batch : int; (* cap on entries per batch (65,536 in §6.2) *)
  admission_rate : float;
      (* per-client token-bucket refill, submissions/s (0 = no limit) *)
  admission_burst : float; (* token-bucket depth *)
}

val default_config : n_servers:int -> clients:int -> config

val create :
  engine:Repro_sim.Engine.t ->
  cpu:Repro_sim.Cpu.t ->
  config:config ->
  ?membership:Membership.t ->
  directory:Directory.view ->
  server_ms_pk:(int -> Repro_crypto.Multisig.public_key) ->
  send_server:(dst:int -> bytes:int -> Proto.broker_to_server -> unit) ->
  send_client:(client:Types.client_id -> bytes:int -> Proto.broker_to_client -> unit) ->
  send_anon:(nonce:int -> bytes:int -> Proto.broker_to_client -> unit) ->
  stob_signup:(Stob_item.t -> unit) ->
  unit ->
  t

val start : t -> unit
(** Arm the periodic flush. *)

val receive_client : t -> Proto.client_to_broker -> unit
val receive_server : t -> src:int -> Proto.server_to_broker -> unit

val submit_prebuilt : t -> Batch.t -> on_complete:(Certs.delivery_cert -> unit) -> unit
(** Inject a pre-distilled batch (load brokers): runs dissemination,
    witnessing, submission and completion, then invokes [on_complete]. *)

val crash : t -> unit

val recover : t -> unit
(** Undo {!crash}.  Brokers are stateless from the system's point of view
    (§4.4): the flush loop and retry timers were merely gated while down,
    so the broker resumes batching and driving its in-flight work. *)

(** {2 Byzantine fault injection}

    Switches flipped by [lib/chaos] to exercise the trustless-broker
    claims of §4.4.  They mirror {!Client.misbehave_bad_share}: one-way,
    default honest.  Each attack is observable through "reject_*" /
    "dup_ref" trace instants on the correct nodes that catch it. *)

val misbehave_equivocate : t -> unit
(** Distill each proposal into {e two} valid all-straggler batches that
    claim the same (broker, number) slot, announcing one to even-numbered
    servers and the other to odd-numbered ones.  Both can be witnessed —
    the servers' (broker, number) deduplication at STOB delivery is what
    keeps at most one on the totally ordered log. *)

val misbehave_garble_reduction : t -> unit
(** Replace the aggregate reduction multi-signature with garbage; correct
    servers fail [Batch.verify] and refuse to witness. *)

val misbehave_malform : t -> unit
(** Tamper with one client message after signing; no signature covers the
    altered payload, so correct servers refuse to witness. *)

val misbehave_withhold_certs : t -> unit
(** Complete batches but never distribute delivery certificates; clients
    must fall back to resubmitting through another broker. *)

(* Introspection. *)

val batches_in_flight : t -> int

val pool_depth : t -> int
(** Live submissions waiting for the next flush (one per client). *)

val flight_numbers : t -> (int * bool * bool) list
(** (number, done, witnessed) per in-flight batch — diagnostics. *)

(** [stage_counts t] is (reducing, awaiting witness, awaiting completion)
    — diagnostics. *)
val stage_counts : t -> int * int * int
val batches_completed : t -> int
val best_evidence : t -> Certs.delivery_cert option

val distillation_ratio : t -> float
(** Fraction of launched entries covered by the aggregate multi-signature
    (1.0 = fully distilled; drops when clients miss the reduction window,
    e.g. under packet loss, §4.2/§5.1). *)
