type client_to_broker =
  | Submission of {
      id : Types.client_id;
      seq : Types.sequence_number;
      msg : Types.message;
      tsig : Repro_crypto.Schnorr.signature;
      evidence : Certs.delivery_cert option;
      ctx : Repro_trace.Trace.Ctx.t;
    }
  | Reduction of {
      id : Types.client_id;
      root : string;
      share : Repro_crypto.Multisig.signature;
    }
  | Signup_request of { card : Types.keycard; nonce : int }

type broker_to_client =
  | Inclusion of {
      root : string;
      proof : Repro_crypto.Merkle.proof;
      agg_seq : Types.sequence_number;
      evidence : Certs.delivery_cert option;
    }
  | Deliver_cert of {
      cert : Certs.delivery_cert;
      seq : Types.sequence_number;
      proof : Repro_crypto.Merkle.proof option;
    }
  | Signup_response of { nonce : int; id : Types.client_id }

type broker_to_server =
  | Batch_announce of { batch : Batch.t; witness_requested : bool }
  | Witness_request of { root : string }
  | Submit of { root : string; number : int; witness : Certs.quorum_cert }
  | Relay_signup of { card : Types.keycard; nonce : int }

type server_to_broker =
  | Witness_shard of { root : string; share : Repro_crypto.Multisig.signature }
  | Completion_shard of {
      root : string;
      counter : int;
      exceptions : (Types.client_id * Types.sequence_number) list;
      share : Repro_crypto.Multisig.signature;
    }
  | Submit_ack of { root : string }
  | Signup_done of { nonce : int; id : Types.client_id }

type server_to_server =
  | Request_batch of { root : string; broker : int; number : int }
  | Batch_response of { batch : Batch.t }
  | Gc_status of { delivered_counter : int }

type delivery =
  | Ops of (Types.client_id * Types.message) array
  | Bulk of { first_id : int; count : int; tag : int; msg_bytes : int }

let delivery_count = function
  | Ops a -> Array.length a
  | Bulk { count; _ } -> count
