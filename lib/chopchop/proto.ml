type client_to_broker =
  | Submission of {
      id : Types.client_id;
      seq : Types.sequence_number;
      msg : Types.message;
      tsig : Repro_crypto.Schnorr.signature;
      evidence : Certs.delivery_cert option;
      ctx : Repro_trace.Trace.Ctx.t;
    }
  | Reduction of {
      id : Types.client_id;
      root : string;
      share : Repro_crypto.Multisig.signature;
    }
  | Signup_request of { card : Types.keycard; nonce : int }

type broker_to_client =
  | Inclusion of {
      root : string;
      proof : Repro_crypto.Merkle.proof;
      agg_seq : Types.sequence_number;
      evidence : Certs.delivery_cert option;
    }
  | Deliver_cert of {
      cert : Certs.delivery_cert;
      seq : Types.sequence_number;
      proof : Repro_crypto.Merkle.proof option;
    }
  | Signup_response of { nonce : int; id : Types.client_id }

type broker_to_server =
  | Batch_announce of { batch : Batch.t; witness_requested : bool }
  | Witness_request of { root : string }
  | Submit of { root : string; number : int; witness : Certs.quorum_cert }
  | Relay_signup of { card : Types.keycard; nonce : int }

type server_to_broker =
  | Witness_shard of { root : string; share : Repro_crypto.Multisig.signature }
  | Completion_shard of {
      root : string;
      counter : int;
      exceptions : (Types.client_id * Types.sequence_number) list;
      share : Repro_crypto.Multisig.signature;
    }
  | Submit_ack of { root : string }
  | Signup_done of { nonce : int; id : Types.client_id }

type delivery =
  | Ops of (Types.client_id * Types.message) array
  | Bulk of { first_id : int; count : int; tag : int; msg_bytes : int }

let delivery_count = function
  | Ops a -> Array.length a
  | Bulk { count; _ } -> count

(* --- durable state (lib/store instantiation) --------------------------- *)

type wal_op =
  | Wal_ops of (Types.client_id * Types.sequence_number * Types.message) array
  | Wal_bulk of {
      first_id : int;
      count : int;
      tag : int;
      msg_bytes : int;
      agg_seq : Types.sequence_number;
    }

type wal_record =
  | Wal_batch of {
      w_position : int;
      w_broker : int;
      w_number : int;
      w_root : string;
      w_ops : wal_op;
    }
  | Wal_signup of {
      w_nonce : int;
      w_card : Types.keycard;
      w_id : Types.client_id;
      w_pos : int;
    }
  | Wal_reconfig of {
      w_change : Membership.change;
      w_ms_pk : Repro_crypto.Multisig.public_key option;
      w_rpos : int; (* delivery position at which the change was ordered *)
    }

let wal_record_position = function
  | Wal_batch { w_position; _ } -> w_position
  | Wal_signup { w_pos; _ } -> w_pos
  | Wal_reconfig { w_rpos; _ } -> w_rpos

type checkpoint = {
  ck_position : int;
  ck_messages : int;
  ck_last_msg : (Types.client_id * Types.sequence_number * Types.message) list;
  ck_dense_last : (int * int * int) list; (* first_id, agg seq, tag *)
  ck_refs : (int * int * int) list; (* broker, number, position *)
  ck_signups : int list; (* seen sign-up nonces *)
  ck_cards : Types.keycard list;
  (* explicit directory entries in rank order: a peer restoring this
     checkpoint must be able to rebuild the directory, not just skip the
     replay (dense identities are derived, not stored) *)
  ck_app : string option; (* opaque application snapshot *)
  ck_epoch : int; (* membership epoch at ck_position *)
  ck_members : (bool * int) list; (* per-slot (active, generation) *)
}

type server_to_server =
  | Request_batch of { root : string; broker : int; number : int }
  | Batch_response of { batch : Batch.t }
  | Gc_status of { delivered_counter : int }
  | Sync_request of { from_position : int }
  | Sync_response of {
      position : int; (* responder's delivery counter *)
      stob_cursor : int; (* responder's STOB delivery cursor *)
      backlog : int; (* refs ordered at the responder, not yet delivered *)
      checkpoint : checkpoint option;
      records : wal_record list;
    }
