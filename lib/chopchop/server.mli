(** Chop Chop server (Appx. B.2.3, §5.2).

    A server stores batches received from brokers, witnesses those it is
    asked to (after fully verifying well-formedness), trusts witnesses for
    the rest, delivers batches in the total order decided by the
    underlying Atomic Broadcast, deduplicates per-client, answers with
    completion shards, and garbage-collects batches that every server has
    delivered.

    The module is a state machine over callbacks: the deployment wires
    [send_*] into the network model, [stob_broadcast] into the local STOB
    instance, and calls {!on_stob_deliver} from the STOB's deliver
    upcall.  CPU time for verification, deduplication and serialization is
    charged on the node's {!Repro_sim.Cpu} queue before effects happen.

    With a {!Repro_store.Store} attached the server additionally keeps a
    durable WAL of delivery outcomes plus periodic checkpoints, and
    supports {!cold_restart}: wipe all in-memory state, replay the local
    log, then state-transfer the missed suffix from live peers until
    caught up. *)

type t

type config = {
  self : int;
  n : int; (* server slot capacity; f follows the active membership *)
  clients : int; (* directory size, for wire arithmetic *)
  gc_period : float; (* GC gossip period, seconds *)
  fair_rate : float;
      (* per-broker admission budget on the order queue, batch refs/s
         (0 = unlimited — the classic single-queue server) *)
  fair_burst : float; (* token-bucket depth for the above *)
}

val create :
  engine:Repro_sim.Engine.t ->
  cpu:Repro_sim.Cpu.t ->
  config:config ->
  ?store:(Proto.checkpoint, Proto.wal_record) Repro_store.Store.t ->
  ?checkpoint_every:int ->
  ?stob_cursor:(unit -> int) ->
  ?stob_resume:(int -> unit) ->
  ?membership:Membership.t ->
  ?set_server_pk:(int -> Repro_crypto.Multisig.public_key -> unit) ->
  ?on_self_leave:(unit -> unit) ->
  directory:Directory.t ->
  ms_sk:Repro_crypto.Multisig.secret_key ->
  server_ms_pk:(int -> Repro_crypto.Multisig.public_key) ->
  send_broker:(broker:int -> bytes:int -> Proto.server_to_broker -> unit) ->
  send_server:(dst:int -> bytes:int -> Proto.server_to_server -> unit) ->
  stob_broadcast:(Stob_item.t -> unit) ->
  deliver_app:(Proto.delivery -> unit) ->
  unit ->
  t
(** [store] attaches durable state; [checkpoint_every] (deliveries,
    default 0 = never) controls snapshot density.  [stob_cursor] /
    [stob_resume] let cold restart fast-forward the ordering underlay
    past slots recovered through state transfer.  [membership] shares the
    dynamic server roster (defaults to a static full one);
    [set_server_pk] publishes a joining/replacing server's multisig key to
    the deployment; [on_self_leave] fires when an ordered [Leave] of this
    very slot is delivered. *)

val start : t -> unit
(** Arm the periodic GC gossip. *)

val receive_broker : t -> src_broker:int -> Proto.broker_to_server -> unit
val receive_server : t -> src:int -> Proto.server_to_server -> unit

val on_stob_deliver : t -> Stob_item.t -> unit
(** Upcall from the underlying Atomic Broadcast (#13). *)

val crash : t -> unit

val recover : t -> unit
(** Warm recovery: undo {!crash} keeping in-memory state.  Messages and
    STOB slots missed while down are not replayed: the recovered server
    remains a correct {e prefix} of the system but may stall at its
    delivery gap (lib/chaos marks such nodes degraded when checking
    liveness).  Use {!cold_restart} for full recovery. *)

val cold_restart : t -> unit
(** Restart from durable state: wipe every in-memory structure, replay
    checkpoint + WAL off the simulated disk, then pull the missed suffix
    from live peers (Sync_request/Sync_response) until the delivery
    counter reaches a live peer's and its ordering backlog is empty.
    Falls back to {!recover} when no store is attached. *)

val set_app_hooks :
  t -> snapshot:(unit -> string) -> restore:(string option -> unit) -> unit
(** Application state capture for checkpoints: [snapshot ()] serializes
    the app, [restore (Some s)] reinstates a snapshot, [restore None]
    resets the app to its initial state (cold restart, pre-replay). *)

(** {2 Byzantine fault injection}

    Switches flipped by [lib/chaos]; one-way, default honest.  Up to [f]
    servers may misbehave without affecting safety or liveness
    (n = 3f+1, witness quorum f+1, §4.3). *)

val misbehave_bad_shares : t -> unit
(** Witness normally but emit garbage multi-signature shares; correct
    brokers reject them ("reject_shard" instants) and gather the quorum
    from honest servers. *)

val misbehave_refuse_witness : t -> unit
(** Ignore all witness requests (fail-silent on the witnessing path while
    still ordering and delivering).  Brokers route around it via the
    witness-set extension timeout. *)

(* Introspection for experiments and tests. *)

val delivery_counter : t -> int
(** Batches delivered so far. *)

val delivered_messages : t -> int
(** Application messages delivered (after deduplication). *)

val order_queue_depth : t -> int
(** Ordered batch references not yet delivered (missing batch, or CPU
    busy) — the STOB→delivery backlog. *)

val stored_batches : t -> int
val stored_bytes : t -> int
(** Memory pressure: §8 calls out garbage collection under load as a
    limitation; Fig. 11a's crash experiment makes this grow. *)

val collected_batches : t -> int
(** Batches garbage-collected so far (GC-progress assertions). *)

val catching_up : t -> bool
(** True between {!cold_restart} and the end of state transfer. *)

val sync_rounds : t -> int
(** Sync_request round-trips used by the last catch-up. *)

val catch_up_records : t -> int
(** WAL records obtained from peers (cumulative across restarts). *)

val catch_up_checkpoint : t -> bool
(** Whether the last catch-up installed a peer checkpoint (as opposed to
    covering the gap with WAL records alone). *)

val restarts : t -> int
(** Cold restarts so far. *)

val directory : t -> Directory.t

(** {2 Fleet hooks (lib/fleet)} *)

val set_fair_weights : t -> (int -> float) -> unit
(** Per-broker weight on the fair-admission budget (default: uniform
    1.0).  Only consulted when [fair_rate > 0]. *)

val admission_rejects : t -> (int * int) list
(** [(broker, rejected submits)] pairs, sorted by broker — how often each
    broker exhausted its admission budget ("reject_admission" instants). *)

val set_on_signup :
  t -> (id:Types.client_id -> reply_broker:int -> Types.keycard -> unit) -> unit
(** Observer of ordered signups, invoked right after the card is appended
    to the directory; the deployment uses it to route the card into the
    owning broker's Rank shard. *)

(** {2 Dynamic membership} *)

val membership : t -> Membership.t

val epoch : t -> int
(** Membership epoch (ordered reconfigurations applied so far). *)

val quorum : t -> int
(** Current witness / completion quorum, [f+1] over the active set. *)

val broadcast_reconfigure :
  t -> Membership.change -> ms_pk:Repro_crypto.Multisig.public_key option -> unit
(** Inject a membership change into the ordering underlay; every server
    applies it at the same delivery rank. *)
