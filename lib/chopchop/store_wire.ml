let wal_op_bytes (op : Proto.wal_op) =
  match op with
  | Proto.Wal_ops entries ->
    Array.fold_left
      (fun acc (_, _, msg) -> acc + 8 + Wire.seqno_bytes + String.length msg)
      0 entries
  | Proto.Wal_bulk _ -> 4 * Wire.seqno_bytes

let wal_record_bytes (r : Proto.wal_record) =
  match r with
  | Proto.Wal_batch { w_ops; _ } ->
    Wire.header_bytes + 8 + 8 + Wire.hash_bytes + wal_op_bytes w_ops
  | Proto.Wal_signup _ -> Wire.header_bytes + 8 + Wire.keycard_bytes + 8
  | Proto.Wal_reconfig _ -> Wire.header_bytes + 16 + Wire.pk_bytes + 8

let checkpoint_bytes (ck : Proto.checkpoint) =
  let last_msg_bytes =
    List.fold_left
      (fun acc (_, _, msg) -> acc + 8 + Wire.seqno_bytes + String.length msg)
      0 ck.Proto.ck_last_msg
  in
  Wire.header_bytes + (3 * 8) (* position, messages, counts *)
  + last_msg_bytes
  + (List.length ck.Proto.ck_dense_last * 3 * Wire.seqno_bytes)
  + (List.length ck.Proto.ck_refs * 3 * 8)
  + (List.length ck.Proto.ck_signups * 8)
  + (List.length ck.Proto.ck_cards * Wire.keycard_bytes)
  + (match ck.Proto.ck_app with Some s -> String.length s | None -> 0)
  + 8 (* epoch *)
  + (List.length ck.Proto.ck_members * 9) (* active flag + generation *)

let sync_response_bytes ~checkpoint ~records =
  let ck_bytes =
    match checkpoint with Some ck -> checkpoint_bytes ck | None -> 0
  in
  Wire.header_bytes + (3 * 8) + ck_bytes
  + List.fold_left (fun acc r -> acc + wal_record_bytes r) 0 records
