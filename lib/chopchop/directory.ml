module Field61 = Repro_crypto.Field61
module Multisig = Repro_crypto.Multisig

(* Dense identities are deterministic functions of their index, so their
   prefix sums are process-wide constants: they are cached globally and
   shared by every directory instance (and every experiment in a bench
   run).  Only the indices actually touched are ever materialised — a
   257 M-client directory costs nothing until a range is queried. *)

let zero_sk = Multisig.aggregate_secret_keys []

let pk_prefix = ref (Array.make 1 Field61.zero)
let sk_prefix = ref (Array.make 1 zero_sk)
let prefix_len = ref 1

let dense_keypair_cache : (int, Types.keypair) Hashtbl.t = Hashtbl.create 4096

let dense_keypair i =
  match Hashtbl.find_opt dense_keypair_cache i with
  | Some kp -> kp
  | None ->
    let kp = Types.keypair_of_seed (Types.dense_seed i) in
    Hashtbl.add dense_keypair_cache i kp;
    kp

let ensure_prefix upto =
  if upto + 1 > !prefix_len then begin
    let needed = upto + 1 in
    let cap = Array.length !pk_prefix in
    if needed > cap then begin
      let newcap = max needed (2 * cap) in
      let pk = Array.make newcap Field61.zero in
      let sk = Array.make newcap zero_sk in
      Array.blit !pk_prefix 0 pk 0 !prefix_len;
      Array.blit !sk_prefix 0 sk 0 !prefix_len;
      pk_prefix := pk;
      sk_prefix := sk
    end;
    let pk = !pk_prefix and sk = !sk_prefix in
    for i = !prefix_len to needed - 1 do
      (* Prefix building does not need the signature keypair: derive only
         the multisig scalar to keep first-touch cost down. *)
      let ms_sk, ms_pk =
        Multisig.keygen_deterministic ~seed:(Types.dense_seed (i - 1))
      in
      pk.(i) <- Field61.add pk.(i - 1) ms_pk;
      sk.(i) <- Multisig.aggregate_secret_keys [ sk.(i - 1); ms_sk ]
    done;
    prefix_len := needed
  end

type t = {
  dense : int;
  explicit : Types.keycard array ref;
  mutable explicit_len : int;
}

let create ?(dense_count = 0) () =
  { dense = dense_count;
    explicit = ref (Array.make 16 { Types.sig_pk = Field61.zero; ms_pk = Field61.zero });
    explicit_len = 0 }

let dense_count t = t.dense
let size t = t.dense + t.explicit_len

let append t card =
  let id = t.dense + t.explicit_len in
  let arr = !(t.explicit) in
  if t.explicit_len = Array.length arr then begin
    let bigger = Array.make (2 * Array.length arr) card in
    Array.blit arr 0 bigger 0 t.explicit_len;
    t.explicit := bigger
  end;
  !(t.explicit).(t.explicit_len) <- card;
  t.explicit_len <- t.explicit_len + 1;
  id

let explicit_cards t = Array.to_list (Array.sub !(t.explicit) 0 t.explicit_len)

let find t id =
  if id < 0 then None
  else if id < t.dense then Some (dense_keypair id).card
  else if id - t.dense < t.explicit_len then Some !(t.explicit).(id - t.dense)
  else None

let sig_pk t id =
  match find t id with Some c -> c.Types.sig_pk | None -> raise Not_found

let ms_pk t id =
  match find t id with Some c -> c.Types.ms_pk | None -> raise Not_found

let aggregate_ms_pks t ids =
  Multisig.aggregate_public_keys (List.map (ms_pk t) ids)

let aggregate_ms_pks_range t ~first ~count =
  if first < 0 || count < 0 || first + count > t.dense then
    invalid_arg "Directory.aggregate_ms_pks_range: outside dense population";
  ensure_prefix (first + count);
  Field61.sub !pk_prefix.(first + count) !pk_prefix.(first)

let aggregate_dense_ms_sks_range t ~first ~count =
  if first < 0 || count < 0 || first + count > t.dense then
    invalid_arg "Directory.aggregate_dense_ms_sks_range: outside dense population";
  ensure_prefix (first + count);
  Multisig.diff_secret_keys !sk_prefix.(first + count) !sk_prefix.(first)

(* --- shards (lib/fleet: one Rank partition per broker) ------------------- *)

(* A shard is a broker's partial view of the global directory: the dense
   population (derived, shared by construction) plus only the explicit
   cards its partition owns.  Identifiers stay global — they are assigned
   by the ordered union on the servers — so a shard stores (global id,
   card) pairs rather than re-ranking, and cards can move between shards
   on crash failover without renumbering anything. *)

type shard = {
  sh_dense : int;
  sh_cards : (int, Types.keycard) Hashtbl.t; (* global id -> card *)
}

let create_shard ?(dense_count = 0) () =
  { sh_dense = dense_count; sh_cards = Hashtbl.create 64 }

let shard_dense_count sh = sh.sh_dense
let shard_size sh = Hashtbl.length sh.sh_cards

let shard_insert sh ~id card =
  if id < sh.sh_dense then
    invalid_arg "Directory.shard_insert: dense ids are derived, not stored";
  Hashtbl.replace sh.sh_cards id card

let shard_remove sh ~id = Hashtbl.remove sh.sh_cards id
let shard_mem sh id = Hashtbl.mem sh.sh_cards id

let shard_cards sh =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun id card acc -> (id, card) :: acc) sh.sh_cards [])

let shard_find sh id =
  if id < 0 then None
  else if id < sh.sh_dense then Some (dense_keypair id).card
  else Hashtbl.find_opt sh.sh_cards id

(* Rebuild the monolithic directory from a partitioning: the shards'
   explicit ids must together cover a contiguous range above the dense
   population (each ordered signup landed in exactly one shard).  The
   correctness statement of sharded signups — asserted by test_fleet. *)
let merge_shards ?(dense_count = 0) shards =
  let t = create ~dense_count () in
  let all = List.concat_map shard_cards shards in
  let all = List.sort (fun (a, _) (b, _) -> Int.compare a b) all in
  List.iteri
    (fun i (id, card) ->
      if id <> dense_count + i then
        invalid_arg
          (Printf.sprintf
             "Directory.merge_shards: ids not a contiguous partition (want %d, got %d)"
             (dense_count + i) id);
      ignore (append t card))
    all;
  t

(* --- views (whole directory or one shard) -------------------------------- *)

(* Brokers look identifiers up through a [view]: the monolithic directory
   in a classic deployment, their own shard in a fleet one.  Dispatch is
   one match — a [Whole] view costs what the bare directory did. *)

type view = Whole of t | Shard of shard

let view_find v id =
  match v with Whole t -> find t id | Shard sh -> shard_find sh id

let view_sig_pk v id =
  match view_find v id with
  | Some c -> c.Types.sig_pk
  | None -> raise Not_found

let view_ms_pk v id =
  match view_find v id with
  | Some c -> c.Types.ms_pk
  | None -> raise Not_found
