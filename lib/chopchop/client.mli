(** Chop Chop client (Appx. B.2.1).

    A client signs up through a broker (receiving its dense identifier
    from the directory), then broadcasts messages one at a time (client
    rule CR1): application messages queue locally and flush in bursts,
    Nagle-style (§4.2, "What if a client broadcasts too frequently?").

    For each broadcast the client: submits (id, seq, msg) with an
    individual fallback signature and its best legitimacy evidence (#2);
    on receiving an inclusion proof it checks the proof against the
    proposal root, checks the aggregate sequence number's legitimacy, and
    multi-signs the root (#5–#6); on receiving a delivery certificate it
    verifies the f+1 quorum and the inclusion proof, adopts the sequence
    number, and proceeds to its next message (#19).

    Timeouts re-submit the message, rotating to a different broker —
    validity survives any number of faulty brokers as long as one is
    correct (§4.4.2). *)

type t

type config = {
  brokers : int list; (* broker ids, in preference order *)
  resubmit_timeout : float; (* initial resubmission delay *)
  max_resubmit_timeout : float; (* backoff cap *)
  n_servers : int; (* to size f+1 quorums *)
  clients : int; (* directory size, for wire arithmetic *)
}
(** Resubmissions back off exponentially from [resubmit_timeout] to
    [max_resubmit_timeout], with deterministic seeded jitter (±25%) so
    clients orphaned by the same broker crash fail over unsynchronized. *)

val create :
  engine:Repro_sim.Engine.t ->
  config:config ->
  keypair:Types.keypair ->
  ?membership:Membership.t ->
  server_ms_pk:(int -> Repro_crypto.Multisig.public_key) ->
  send_broker:(broker:int -> bytes:int -> Proto.client_to_broker -> unit) ->
  ?on_delivered:(Types.message -> latency:float -> unit) ->
  ?nonce:int ->
  unit ->
  t
(** [nonce] must be unique per client in the deployment (used to route the
    sign-up response); defaults are assigned by {!Deployment}.
    [membership] is the live committee view shared with the deployment:
    when given, delivery certificates are verified against the current
    epoch's quorum instead of the static f+1 derived from
    [config.n_servers]. *)

val signup : t -> unit
(** Start the sign-up; queued messages flow once the id is assigned. *)

val force_identity : t -> Types.client_id -> unit
(** Skip sign-up for pre-provisioned (dense) identities. *)

val broadcast : t -> Types.message -> unit
(** Queue a message for atomic broadcast. *)

val receive : t -> Proto.broker_to_client -> unit

val rehome : t -> unit
(** Point the broker rotation back at the head of the preference list and
    reset the resubmission backoff — called by the deployment when the
    client's home broker recovers (lib/fleet failover). *)

val id : t -> Types.client_id option
val pending : t -> int
val completed : t -> int
val last_sequence : t -> int
val crash : t -> unit

val misbehave_bad_share : t -> unit
(** Fault injection: make the client send garbage multi-signature shares
    (it then completes as a straggler via its fallback signature). *)

val misbehave_mute_reduction : t -> unit
(** Fault injection: never answer inclusion proofs (a crashed/slow client
    during distillation, §4.2). *)

(** {2 Cohort support}

    Deterministic per-client ingredients shared with the flat-array
    cohort model ([Repro_workload.Cohort]), so a cohort member is
    bit-identical to the per-client state machine it stands in for. *)

val jitter_rng : nonce:int -> Repro_sim.Rng.t
(** The client's private jitter stream for the deployment-unique [nonce]
    (the network node id); resubmission jitter never touches engine
    randomness. *)

val msg_key : id:Types.client_id -> seq:int -> int
(** Correlation id of one (client, sequence-number) message attempt: the
    same key is emitted at send time and at delivery-certificate time. *)

val tr_actor : id:Types.client_id -> int
(** Trace actor id for client [id]. *)
