(** Wire-format sizing.

    Every byte count the network model charges comes from here, using the
    paper's encoding constants (§2.1, §3.2, Figs. 2–3) — independent of the
    in-memory representation of the simulation-grade crypto:

    - Ed25519: 32 B public keys, 64 B signatures;
    - BLS12-381: 192 B uncompressed multi-signatures (96 B compressed);
    - sequence numbers: 8 B;
    - client identifiers: ⌈bits(client-count)/8⌉ with bit packing —
      28 bits = 3.5 B for the paper's 257 M simulated clients.

    The paper's headline arithmetic is reproduced exactly: a classic
    8 B-message payload is 112 B; a fully distilled batch of 65,536
    messages is ~736 KB (11.5 B per message). *)

val pk_bytes : int (* 32 *)
val sig_bytes : int (* 64 *)
val seqno_bytes : int (* 8 *)
val multisig_bytes : int (* 192 *)
val hash_bytes : int (* 32 *)

val id_bits : clients:int -> int
(** Bits needed for an identifier in a directory of [clients]. *)

val id_bytes : clients:int -> float
(** Fractional bytes per identifier under bit packing (3.5 for 257 M). *)

val classic_payload_bytes : msg_bytes:int -> int
(** Public key + sequence number + message + signature (112 for 8 B). *)

val classic_batch_bytes : count:int -> msg_bytes:int -> int

val distilled_entry_bytes : clients:int -> msg_bytes:int -> float
(** Identifier + message only (11.5 B for 8 B messages, 257 M clients). *)

val distilled_batch_bytes :
  clients:int -> count:int -> msg_bytes:int -> stragglers:int -> int
(** Aggregate signature and sequence number, packed (id, msg) entries, and
    one (seqno + signature) exception per straggler. *)

val header_bytes : int
(** Fixed per-message protocol header (framing, type tag). *)

val trace_ctx_bytes : int
(** Causal trace context carried by submissions (root id + hop). *)

val submission_bytes : clients:int -> msg_bytes:int -> int
(** Client → broker first message (#2): id, seqno, message, individual
    signature, legitimacy certificate reference, trace context. *)

val inclusion_bytes : count:int -> int
(** Broker → client (#4): root, aggregate seqno, Merkle proof, evidence. *)

val reduction_bytes : int
(** Client → broker (#6): root reference + multi-signature share. *)

val witness_request_bytes : int
val witness_shard_bytes : int
val witness_bytes : int
(** An aggregated witness: f+1 aggregated multi-signature + signer bitmap. *)

val stob_submission_bytes : int
(** Broker's submission to the server-run Atomic Broadcast (#12):
    batch hash + witness. *)

val completion_shard_bytes : exceptions:int -> int
val delivery_cert_bytes : int
val legitimacy_cert_bytes : int

(** {2 Durable state and state transfer (lib/store)}

    Sizes that depend on the {!Proto} record types live in {!Store_wire}
    (keeping this module free of a Wire → Proto → Batch → Wire cycle). *)

val keycard_bytes : int
(** An explicit directory entry: signature + multisig public key. *)

val sync_request_bytes : int

val shard_handoff_bytes : cards:int -> int
(** Rank-shard handoff on broker crash failover: [cards] explicit
    (global id, keycard) pairs inherited by the successor broker. *)
