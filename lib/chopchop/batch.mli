(** Distilled batches (§3).

    A batch carries its entries, one aggregate sequence number, one
    aggregate multi-signature covering every {e reduced} entry, and an
    individual (sequence number, signature) exception for every
    {e straggler} — a client that failed to multi-sign the proposal root
    in time (§4.2).  A fully distilled batch has no stragglers; a batch
    where {e every} entry is a straggler degenerates to a classic batch
    (the two endpoints of Fig. 8a).

    Two entry representations flow through the same server code:

    - [Explicit]: materialised entries, real Merkle roots and inclusion
      proofs — used by real clients, the examples and the tests;
    - [Dense]: a contiguous range of pre-provisioned identities sharing
      one synthetic message generator — the stand-in for the paper's
      pre-generated load-broker batches (§6.2).  Aggregate verification is
      real (against the directory's range-aggregated key); roots are
      synthetic commitments; CPU cost is charged for the full count.

    Two roots are derived from a batch (Appx. B.2.3):

    - the {e reduction root}, over leaves all carrying the aggregate
      sequence number — this is what reducing clients multi-signed;
    - the {e identity root}, with each straggler's leaf carrying its own
      sequence number — this names the batch everywhere else. *)

type straggler = {
  s_id : Types.client_id;
  s_seq : Types.sequence_number;
  s_sig : Repro_crypto.Schnorr.signature; (* over Types.message_statement *)
}

type entry = { e_id : Types.client_id; e_msg : Types.message }

type dense = {
  first_id : int;
  count : int;
  msg_bytes : int;
  tag : int; (* differentiates message content between rounds *)
  straggler_count : int; (* the LAST [straggler_count] ids of the range *)
  straggler_sample : (Types.client_id * Repro_crypto.Schnorr.signature) array;
      (* real signatures for a sample of the stragglers; the full
         verification cost is charged regardless *)
}

type entries =
  | Explicit of entry array (* sorted by id, distinct *)
  | Dense of dense

type t = {
  broker : int;
  number : int; (* broker-local batch number *)
  entries : entries;
  agg_seq : Types.sequence_number;
  stragglers : straggler array; (* Explicit only; sorted by id *)
  agg_sig : Repro_crypto.Multisig.signature option;
}

val count : t -> int
val straggler_count : t -> int
val reduced_count : t -> int

val dense_message : dense -> Types.client_id -> Types.message
(** Deterministic message content of a dense entry. *)

val leaf : id:Types.client_id -> seq:Types.sequence_number -> Types.message -> string

val reduction_root : t -> string
val identity_root : t -> string

val reducer_ids : t -> Types.client_id list
(** Explicit batches only; Dense reducers are the leading range. *)

val wire_bytes : clients:int -> t -> int
(** Bytes on the wire per {!Wire.distilled_batch_bytes}. *)

val payload_bytes_per_entry : t -> int
(** Size of one application message in this batch. *)

val verify : Directory.t -> t -> bool
(** Full well-formedness check, as performed by a witnessing server (#9):
    identifiers strictly increasing (hence distinct), every straggler's
    individual signature valid, and the aggregate multi-signature valid
    over the reduction root for exactly the reduced identities. *)

val witness_cpu_work : t -> Repro_sim.Cpu.work
(** Simulated CPU work of {!verify} on a server, from {!Repro_sim.Cost}:
    straggler batch-verification, pk aggregation and deserialization are
    divisible across lanes; the aggregate pairing check is serial. *)

val non_witness_cpu_work : t -> Repro_sim.Cpu.work
(** Work on a server that trusts the witness instead of verifying:
    deserialization + deduplication (divisible) and the witness
    certificate pairing check (serial). *)

val make_explicit :
  broker:int ->
  number:int ->
  entries:entry array ->
  agg_seq:int ->
  stragglers:straggler array ->
  agg_sig:Repro_crypto.Multisig.signature option ->
  t
(** @raise Invalid_argument if entries are not sorted strictly by id. *)

val forge_dense :
  Directory.t ->
  broker:int ->
  number:int ->
  first_id:int ->
  count:int ->
  msg_bytes:int ->
  tag:int ->
  straggler_count:int ->
  t
(** Pre-generate a well-formed dense batch: the aggregate multi-signature
    is materialised from the range's aggregated secret scalar (what the
    population of simulated clients would have produced), and a sample of
    straggler signatures is genuinely signed.  This is the equivalent of
    the paper's 13 TB of pre-generated workload files. *)
