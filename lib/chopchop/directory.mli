(** Rank — the directory assigning dense numeric identifiers to clients
    (§2.2, Appx. C).

    Clients sign up by announcing their public keys through the underlying
    Atomic Broadcast; every correct server appends the keycard at the same
    position thanks to total order, so a client's identifier is simply its
    sign-up rank.  Identifiers then replace 32 B public keys on the wire
    (3.5 B at 257 M clients).

    Two populations coexist:

    - {e explicit} clients signed up at run time ({!append});
    - {e dense} clients: a pre-provisioned range [0, dense_count) of
      deterministic identities standing in for the paper's 13 TB of
      pre-generated workload.  Range queries over dense identities are
      served from prefix sums, so aggregating a 65,536-key range costs
      O(1) {e real} work while the simulated cost is still charged per key
      by {!Repro_sim.Cost.bls_aggregate_pks}. *)

type t

val create : ?dense_count:int -> unit -> t
(** [dense_count] pre-provisions that many deterministic identities with
    ids [0 .. dense_count-1] (default 0). *)

val dense_count : t -> int
val size : t -> int
(** Total number of registered identities (dense + explicit). *)

val append : t -> Types.keycard -> Types.client_id
(** Register a key card; returns the assigned identifier.  Called by every
    server in STOB delivery order, so ranks agree. *)

val explicit_cards : t -> Types.keycard list
(** The explicitly registered key cards in rank order (checkpoint
    payload; dense identities are derived, never stored). *)

val find : t -> Types.client_id -> Types.keycard option

val sig_pk : t -> Types.client_id -> Repro_crypto.Schnorr.public_key
(** @raise Not_found for unknown ids. *)

val ms_pk : t -> Types.client_id -> Repro_crypto.Multisig.public_key

val aggregate_ms_pks : t -> Types.client_id list -> Repro_crypto.Multisig.public_key
(** Aggregate multi-signature public key of the given clients. *)

val aggregate_ms_pks_range : t -> first:int -> count:int -> Repro_crypto.Multisig.public_key
(** O(1) aggregate over a dense range via prefix sums.
    @raise Invalid_argument if the range leaves the dense population. *)

val dense_keypair : int -> Types.keypair
(** The deterministic identity of dense client [i] (simulation-only:
    workload generators use it to pre-sign batches, mirroring the paper's
    pre-generated message files). *)

(** {2 Shards (lib/fleet)}

    One Rank partition per broker: the dense population plus the explicit
    cards the partition owns, keyed by {e global} identifier (ids are
    assigned by the ordered union on the servers; shards never re-rank).
    Cards move between shards on crash failover and back on recovery. *)

type shard

val create_shard : ?dense_count:int -> unit -> shard
val shard_dense_count : shard -> int
val shard_size : shard -> int
(** Explicit cards held (dense identities are derived, not stored). *)

val shard_insert : shard -> id:Types.client_id -> Types.keycard -> unit
(** @raise Invalid_argument for an id inside the dense population. *)

val shard_remove : shard -> id:Types.client_id -> unit
val shard_mem : shard -> Types.client_id -> bool
val shard_cards : shard -> (Types.client_id * Types.keycard) list
(** Explicit (id, card) pairs in id order (the handoff payload). *)

val shard_find : shard -> Types.client_id -> Types.keycard option

val merge_shards : ?dense_count:int -> shard list -> t
(** Rebuild the monolithic directory from a partitioning.
    @raise Invalid_argument unless the shards' explicit ids form a
    contiguous range above the dense population (each ordered signup in
    exactly one shard). *)

(** {2 Views}

    What a broker resolves identifiers through: the whole directory
    (classic deployment) or its own shard (fleet deployment). *)

type view = Whole of t | Shard of shard

val view_find : view -> Types.client_id -> Types.keycard option

val view_sig_pk : view -> Types.client_id -> Repro_crypto.Schnorr.public_key
(** @raise Not_found for unknown ids. *)

val view_ms_pk : view -> Types.client_id -> Repro_crypto.Multisig.public_key

val aggregate_dense_ms_sks_range :
  t -> first:int -> count:int -> Repro_crypto.Multisig.secret_key
(** Sum of dense secret scalars over a range (prefix sums).  Used only by
    the workload generator to materialise the aggregate multi-signature a
    real population of clients would have produced. *)
