let pk_bytes = 32
let sig_bytes = 64
let seqno_bytes = 8
let multisig_bytes = 192
let hash_bytes = 32

let id_bits ~clients =
  if clients <= 1 then 1
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits (clients - 1) 0
  end

let id_bytes ~clients = float_of_int (id_bits ~clients) /. 8.

let classic_payload_bytes ~msg_bytes = pk_bytes + seqno_bytes + msg_bytes + sig_bytes

let classic_batch_bytes ~count ~msg_bytes = count * classic_payload_bytes ~msg_bytes

let distilled_entry_bytes ~clients ~msg_bytes =
  id_bytes ~clients +. float_of_int msg_bytes

let distilled_batch_bytes ~clients ~count ~msg_bytes ~stragglers =
  let entries = float_of_int count *. distilled_entry_bytes ~clients ~msg_bytes in
  let exceptions = stragglers * (seqno_bytes + sig_bytes) in
  multisig_bytes + seqno_bytes + int_of_float (ceil entries) + exceptions

let header_bytes = 16

(* Legitimacy certificate: one aggregated multi-signature, the delivery
   counter and a signer bitmap (f+1 out of n servers). *)
let legitimacy_cert_bytes = multisig_bytes + seqno_bytes + 8

(* Causal trace context piggybacked on submissions: 4 B root id + 1 B hop. *)
let trace_ctx_bytes = Repro_trace.Trace.Ctx.wire_bytes

let submission_bytes ~clients ~msg_bytes =
  header_bytes
  + int_of_float (ceil (id_bytes ~clients))
  + seqno_bytes + msg_bytes + sig_bytes + legitimacy_cert_bytes
  + trace_ctx_bytes

let inclusion_bytes ~count =
  let depth =
    if count <= 1 then 1
    else int_of_float (ceil (log (float_of_int count) /. log 2.))
  in
  header_bytes + hash_bytes + seqno_bytes + (depth * hash_bytes) + legitimacy_cert_bytes

let reduction_bytes = header_bytes + hash_bytes + multisig_bytes

let witness_request_bytes = header_bytes + hash_bytes
let witness_shard_bytes = header_bytes + hash_bytes + multisig_bytes
let witness_bytes = multisig_bytes + 8 (* aggregate + signer bitmap *)

let stob_submission_bytes = header_bytes + hash_bytes + witness_bytes

let completion_shard_bytes ~exceptions =
  header_bytes + hash_bytes + multisig_bytes + seqno_bytes
  + (exceptions * (8 + seqno_bytes))

let delivery_cert_bytes = header_bytes + hash_bytes + multisig_bytes + seqno_bytes + 8

(* --- durable state & state transfer (lib/store) ----------------------- *)

let keycard_bytes = 2 * pk_bytes

let sync_request_bytes = header_bytes + 8

(* --- broker fleet (lib/fleet) ----------------------------------------- *)

(* Shard handoff on crash failover: the successor broker inherits the
   crashed partition's explicit cards, each shipped as (global id, card). *)
let shard_handoff_bytes ~cards = header_bytes + 8 + (cards * (keycard_bytes + 8))
