module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Multisig = Repro_crypto.Multisig
module Trace = Repro_trace.Trace

type config = { self : int; n : int; clients : int; gc_period : float }

type stored = {
  batch : Batch.t;
  bytes : int;
  mutable position : int option; (* global delivery position, once delivered *)
}

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  cfg : config;
  f : int;
  dir : Directory.t;
  ms_sk : Multisig.secret_key;
  server_ms_pk : int -> Multisig.public_key;
  send_broker : broker:int -> bytes:int -> Proto.server_to_broker -> unit;
  send_server : dst:int -> bytes:int -> Proto.server_to_server -> unit;
  stob_broadcast : Stob_item.t -> unit;
  deliver_app : Proto.delivery -> unit;
  batches : (string, stored) Hashtbl.t; (* keyed by identity root *)
  mutable stored_bytes : int;
  seen_refs : (int * int, unit) Hashtbl.t; (* (broker, number) de-dup of refs *)
  submitted_refs : (int * int, unit) Hashtbl.t; (* refs we pushed into STOB *)
  (* FIFO of ordered batch references whose batches may still be missing:
     delivery must follow STOB order exactly. *)
  mutable order_queue : (int * int * string) list; (* (broker, number, root), reversed *)
  mutable order_queue_front : (int * int * string) list;
  last_msg : (Types.client_id, Types.sequence_number * string) Hashtbl.t;
  (* dense ranges: first_id -> (last agg seq, last tag) *)
  dense_last : (int, int * int) Hashtbl.t;
  mutable delivery_counter : int;
  mutable delivered_messages : int;
  peer_counters : int array;
  mutable fetching : (string, unit) Hashtbl.t;
  seen_signups : (int, unit) Hashtbl.t;
  mutable delivering : bool;
  mutable crashed : bool;
  (* Byzantine fault injection (lib/chaos). *)
  mutable mis_bad_shares : bool;
  mutable mis_refuse_witness : bool;
  c_verify : Trace.Counter.t; (* signature-verification operations *)
  c_deliveries : Trace.Counter.t; (* batches delivered (all servers) *)
  c_messages : Trace.Counter.t; (* messages delivered (all servers) *)
}

let create ~engine ~cpu ~config ~directory ~ms_sk ~server_ms_pk ~send_broker
    ~send_server ~stob_broadcast ~deliver_app () =
  { engine; cpu; cfg = config; f = (config.n - 1) / 3;
    dir = directory; ms_sk; server_ms_pk;
    send_broker; send_server; stob_broadcast; deliver_app;
    batches = Hashtbl.create 512; stored_bytes = 0;
    seen_refs = Hashtbl.create 1024; submitted_refs = Hashtbl.create 1024;
    order_queue = []; order_queue_front = [];
    last_msg = Hashtbl.create 4096; dense_last = Hashtbl.create 64;
    delivery_counter = 0; delivered_messages = 0;
    peer_counters = Array.make config.n 0;
    fetching = Hashtbl.create 16; seen_signups = Hashtbl.create 64;
    delivering = false; crashed = false;
    mis_bad_shares = false; mis_refuse_witness = false;
    c_verify =
      Trace.Sink.counter (Engine.trace engine) ~cat:"crypto" ~name:"verify_ops";
    c_deliveries =
      Trace.Sink.counter (Engine.trace engine) ~cat:"server" ~name:"deliveries";
    c_messages =
      Trace.Sink.counter (Engine.trace engine) ~cat:"server" ~name:"messages" }

let tr t = Engine.trace t.engine

let reject_instant t name ~id attrs =
  let s = tr t in
  if Trace.enabled s then
    Trace.instant s ~now:(Engine.now t.engine) ~actor:t.cfg.self ~cat:"server"
      ~name ~id ~attrs

let directory t = t.dir
let delivery_counter t = t.delivery_counter
let delivered_messages t = t.delivered_messages
let stored_batches t = Hashtbl.length t.batches
let stored_bytes t = t.stored_bytes

let order_queue_depth t =
  List.length t.order_queue_front + List.length t.order_queue

(* --- storage & GC ------------------------------------------------------- *)

let store_batch t batch =
  let root = Batch.identity_root batch in
  if not (Hashtbl.mem t.batches root) then begin
    let bytes = Batch.wire_bytes ~clients:t.cfg.clients batch in
    Hashtbl.add t.batches root { batch; bytes; position = None };
    t.stored_bytes <- t.stored_bytes + bytes
  end;
  root

let gc_sweep t =
  (* A batch delivered at position p is collectable once every server
     (ourselves included) reports a delivery counter beyond p. *)
  let horizon = Array.fold_left min max_int t.peer_counters in
  let victims = ref [] in
  Hashtbl.iter
    (fun root stored ->
      match stored.position with
      | Some p when p < horizon -> victims := (root, stored) :: !victims
      | Some _ | None -> ())
    t.batches;
  List.iter
    (fun (root, stored) ->
      Hashtbl.remove t.batches root;
      t.stored_bytes <- t.stored_bytes - stored.bytes)
    !victims

let start t =
  Engine.every t.engine ~period:t.cfg.gc_period (fun () ->
      if not t.crashed then begin
        t.peer_counters.(t.cfg.self) <- t.delivery_counter;
        for dst = 0 to t.cfg.n - 1 do
          if dst <> t.cfg.self then
            t.send_server ~dst ~bytes:(Wire.header_bytes + 8)
              (Gc_status { delivered_counter = t.delivery_counter })
        done;
        gc_sweep t
      end)

(* --- witnessing (#9, #10) ------------------------------------------------ *)

let witness_batch t batch =
  if not t.mis_refuse_witness then begin
    let root = Batch.identity_root batch in
    let cost = Batch.witness_cpu_cost batch in
    let s = tr t in
    if Trace.enabled s then
      Trace.span_begin s ~now:(Engine.now t.engine) ~actor:t.cfg.self
        ~cat:"server" ~name:"witness_verify" ~id:(Trace.key root)
        ~attrs:[ ("cost", Trace.A_float cost) ];
    Cpu.submit t.cpu ~cost (fun () ->
        if Trace.enabled s then
          Trace.span_end s ~now:(Engine.now t.engine) ~actor:t.cfg.self
            ~cat:"server" ~name:"witness_verify" ~id:(Trace.key root);
        if not t.crashed then begin
          (* Aggregate check plus one per-straggler fallback signature. *)
          Trace.Counter.add t.c_verify (1 + Batch.straggler_count batch);
          if Batch.verify t.dir batch then begin
            let statement =
              Certs.witness_statement ~root ~broker:batch.Batch.broker
                ~number:batch.Batch.number
            in
            let share =
              if t.mis_bad_shares then Multisig.forge_garbage ()
              else Certs.sign_shard t.ms_sk statement
            in
            t.send_broker ~broker:batch.Batch.broker ~bytes:Wire.witness_shard_bytes
              (Witness_shard { root; share })
          end
          else
            (* Garbled / malformed batch from a Byzantine broker: refuse to
               witness, loudly. *)
            reject_instant t "reject_batch" ~id:(Trace.key root)
              [ ("broker", Trace.A_int batch.Batch.broker);
                ("number", Trace.A_int batch.Batch.number) ]
        end)
  end

(* --- delivery (#13–#16) -------------------------------------------------- *)

let deliver_explicit t (batch : Batch.t) entries =
  let exceptions = ref [] in
  let delivered = ref [] in
  let straggler_seq id =
    match Array.find_opt (fun s -> s.Batch.s_id = id) batch.stragglers with
    | Some s -> Some s.s_seq
    | None -> None
  in
  Array.iter
    (fun e ->
      let id = e.Batch.e_id in
      let seq = Option.value (straggler_seq id) ~default:batch.agg_seq in
      let last = Hashtbl.find_opt t.last_msg id in
      let fresh =
        match last with
        | None -> true
        | Some (last_seq, last_m) -> seq > last_seq && e.e_msg <> last_m
      in
      if fresh then begin
        Hashtbl.replace t.last_msg id (seq, e.e_msg);
        delivered := (id, e.e_msg) :: !delivered
      end
      else begin
        let last_seq = match last with Some (s, _) -> s | None -> -1 in
        exceptions := (id, last_seq) :: !exceptions
      end)
    entries;
  let ops = Array.of_list (List.rev !delivered) in
  if Array.length ops > 0 then t.deliver_app (Proto.Ops ops);
  t.delivered_messages <- t.delivered_messages + Array.length ops;
  List.rev !exceptions

let deliver_dense t (batch : Batch.t) (d : Batch.dense) =
  (* The whole range shares one (sequence number, tag): the usual per-client
     rule collapses into a single range-level check. *)
  let last = Hashtbl.find_opt t.dense_last d.first_id in
  let fresh =
    match last with
    | None -> true
    | Some (last_seq, last_tag) -> batch.agg_seq > last_seq && d.tag <> last_tag
  in
  if fresh then begin
    Hashtbl.replace t.dense_last d.first_id (batch.agg_seq, d.tag);
    t.deliver_app
      (Proto.Bulk { first_id = d.first_id; count = d.count; tag = d.tag;
                    msg_bytes = d.msg_bytes });
    t.delivered_messages <- t.delivered_messages + d.count;
    []
  end
  else
    (* Whole-range replay: summarised as a single exception entry. *)
    [ (d.first_id, match last with Some (s, _) -> s | None -> -1) ]

let deliver_batch t stored =
  let batch = stored.batch in
  let root = Batch.identity_root batch in
  let before_msgs = t.delivered_messages in
  let exceptions =
    match batch.entries with
    | Batch.Explicit entries -> deliver_explicit t batch entries
    | Batch.Dense d -> deliver_dense t batch d
  in
  Trace.Counter.incr t.c_deliveries;
  Trace.Counter.add t.c_messages (t.delivered_messages - before_msgs);
  t.delivery_counter <- t.delivery_counter + 1;
  stored.position <- Some (t.delivery_counter - 1);
  t.peer_counters.(t.cfg.self) <- t.delivery_counter;
  let counter = t.delivery_counter in
  let statement =
    Certs.completion_statement ~root ~counter
      ~exc_hash:(Certs.exceptions_hash exceptions)
  in
  let share = Certs.sign_shard t.ms_sk statement in
  t.send_broker ~broker:batch.broker
    ~bytes:(Wire.completion_shard_bytes ~exceptions:(List.length exceptions))
    (Completion_shard { root; counter; exceptions; share })

let rec drain_order_queue t =
  if t.delivering then ()
  else
  let next =
    match t.order_queue_front with
    | x :: _ -> Some x
    | [] ->
      (match List.rev t.order_queue with
       | [] -> None
       | xs ->
         t.order_queue_front <- xs;
         t.order_queue <- [];
         Some (List.hd xs))
  in
  match next with
  | None -> ()
  | Some (broker, number, root) ->
    (match Hashtbl.find_opt t.batches root with
     | Some stored when stored.position = None ->
       t.order_queue_front <- List.tl t.order_queue_front;
       t.delivering <- true;
       let cost = Batch.non_witness_cpu_cost stored.batch in
       let s = tr t in
       if Trace.enabled s then
         Trace.span_begin s ~now:(Engine.now t.engine) ~actor:t.cfg.self
           ~cat:"server" ~name:"deliver" ~id:(Trace.key root);
       Cpu.submit t.cpu ~cost (fun () ->
           t.delivering <- false;
           if not t.crashed then begin
             deliver_batch t stored;
             if Trace.enabled s then
               Trace.span_end s ~now:(Engine.now t.engine) ~actor:t.cfg.self
                 ~cat:"server" ~name:"deliver" ~id:(Trace.key root);
             drain_order_queue t
           end)
     | Some _ ->
       (* Already delivered through an earlier reference: skip. *)
       t.order_queue_front <- List.tl t.order_queue_front;
       drain_order_queue t
     | None -> fetch_batch t ~broker ~number ~root)

and fetch_batch t ~broker ~number ~root =
  if not (Hashtbl.mem t.fetching root) then begin
    Hashtbl.add t.fetching root ();
    let target = (t.cfg.self + 1 + (number mod (t.cfg.n - 1))) mod t.cfg.n in
    t.send_server ~dst:target ~bytes:Wire.witness_request_bytes
      (Request_batch { root; broker; number });
    (* Retry from another peer if the batch does not show up. *)
    Engine.schedule t.engine ~delay:1.0 (fun () ->
        if (not t.crashed) && Hashtbl.mem t.fetching root then begin
          Hashtbl.remove t.fetching root;
          fetch_batch t ~broker ~number:(number + 1) ~root
        end)
  end

(* --- message handlers ----------------------------------------------------- *)

let receive_broker t ~src_broker msg =
  if not t.crashed then
    match msg with
    | Proto.Batch_announce { batch; witness_requested } ->
      if batch.Batch.broker = src_broker then begin
        ignore (store_batch t batch);
        if witness_requested then witness_batch t batch
      end
    | Proto.Witness_request { root } ->
      (match Hashtbl.find_opt t.batches root with
       | Some stored -> witness_batch t stored.batch
       | None -> ())
    | Proto.Relay_signup { card; nonce } ->
      t.stob_broadcast (Stob_item.Signup { card; reply_broker = src_broker; nonce })
    | Proto.Submit { root; number; witness } ->
      (* #12: relay the batch reference into the server-run STOB, once. *)
      if not (Hashtbl.mem t.submitted_refs (src_broker, number)) then begin
        Hashtbl.add t.submitted_refs (src_broker, number) ();
        Cpu.submit t.cpu ~cost:Cost.bls_verify (fun () ->
            if not t.crashed then begin
              Trace.Counter.incr t.c_verify;
              let statement =
                Certs.witness_statement ~root ~broker:src_broker ~number
              in
              if
                Certs.verify ~statement ~server_ms_pk:t.server_ms_pk
                  ~quorum:(t.f + 1) witness
              then begin
                t.stob_broadcast
                  (Stob_item.Batch_ref { broker = src_broker; number; root; witness });
                t.send_broker ~broker:src_broker ~bytes:(Wire.header_bytes + 32)
                  (Submit_ack { root })
              end
              else
                reject_instant t "reject_witness" ~id:(Trace.key root)
                  [ ("broker", Trace.A_int src_broker);
                    ("number", Trace.A_int number) ]
            end)
      end

let receive_server t ~src msg =
  if not t.crashed then
    match msg with
    | Proto.Request_batch { root; broker = _; number = _ } ->
      (match Hashtbl.find_opt t.batches root with
       | Some stored ->
         t.send_server ~dst:src ~bytes:stored.bytes
           (Batch_response { batch = stored.batch })
       | None -> ())
    | Proto.Batch_response { batch } ->
      let root = store_batch t batch in
      if Hashtbl.mem t.fetching root then begin
        Hashtbl.remove t.fetching root;
        drain_order_queue t
      end
    | Proto.Gc_status { delivered_counter } ->
      if delivered_counter > t.peer_counters.(src) then begin
        t.peer_counters.(src) <- delivered_counter;
        gc_sweep t
      end

let on_stob_deliver t item =
  if not t.crashed then
    match item with
    | Stob_item.Signup { card; reply_broker; nonce } ->
      if not (Hashtbl.mem t.seen_signups nonce) then begin
        Hashtbl.add t.seen_signups nonce ();
        let id = Directory.append t.dir card in
        t.send_broker ~broker:reply_broker ~bytes:(Wire.header_bytes + 16)
          (Signup_done { nonce; id })
      end
    | Stob_item.Batch_ref { broker; number; root; witness } ->
      if Hashtbl.mem t.seen_refs (broker, number) then
        (* A second batch reference for the same (broker, number) slot:
           either a redundant relay or an equivocating broker.  Exactly
           the first ordered reference wins (§4.4 — this deduplication is
           what makes broker equivocation harmless). *)
        reject_instant t "dup_ref" ~id:(Trace.key root)
          [ ("broker", Trace.A_int broker); ("number", Trace.A_int number) ]
      else begin
        Hashtbl.add t.seen_refs (broker, number) ();
        let statement = Certs.witness_statement ~root ~broker ~number in
        Trace.Counter.incr t.c_verify;
        if
          Certs.verify ~statement ~server_ms_pk:t.server_ms_pk ~quorum:(t.f + 1)
            witness
        then begin
          (let s = tr t in
           if Trace.enabled s then
             Trace.instant s ~now:(Engine.now t.engine) ~actor:t.cfg.self
               ~cat:"server" ~name:"ordered" ~id:(Trace.key root)
               ~attrs:[ ("number", Trace.A_int number) ]);
          t.order_queue <- (broker, number, root) :: t.order_queue;
          drain_order_queue t
        end
        else
          reject_instant t "reject_witness" ~id:(Trace.key root)
            [ ("broker", Trace.A_int broker); ("number", Trace.A_int number) ]
      end

let crash t = t.crashed <- true

let recover t = t.crashed <- false
(* The chopchop layer above the STOB resumes where it stopped; batches and
   references that were exchanged while down are re-obtainable through the
   fetch path, but STOB slots missed during the outage are not (see
   {!Repro_stob}), so a recovered server is prefix-correct, not live. *)

(* Byzantine switches (lib/chaos). *)

let misbehave_bad_shares t = t.mis_bad_shares <- true
let misbehave_refuse_witness t = t.mis_refuse_witness <- true
