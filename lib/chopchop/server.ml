module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module Cost = Repro_sim.Cost
module Store = Repro_store.Store
module Disk = Repro_store.Disk
module Multisig = Repro_crypto.Multisig
module Trace = Repro_trace.Trace
module Rng = Repro_sim.Rng

type config = {
  self : int;
  n : int;
  clients : int;
  gc_period : float;
  fair_rate : float;
      (* per-broker admission budget on the order queue: token-bucket
         refill in batch references/s (0 = unlimited, the default) *)
  fair_burst : float; (* token-bucket depth for the above *)
}
(* [n] is the machine *capacity* (active servers plus spare slots); the
   active subset and the quorum thresholds live in {!Membership}. *)

type bucket = { mutable tokens : float; mutable stamp : float }

type stored = {
  batch : Batch.t;
  bytes : int;
  mutable position : int option; (* global delivery position, once delivered *)
}

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  cfg : config;
  membership : Membership.t;
  dir : Directory.t;
  ms_sk : Multisig.secret_key;
  server_ms_pk : int -> Multisig.public_key;
  set_server_pk : int -> Multisig.public_key -> unit;
  on_self_leave : unit -> unit;
  send_broker : broker:int -> bytes:int -> Proto.server_to_broker -> unit;
  send_server : dst:int -> bytes:int -> Proto.server_to_server -> unit;
  stob_broadcast : Stob_item.t -> unit;
  deliver_app : Proto.delivery -> unit;
  (* Durable state (lib/store): [None] replicates the paper's in-memory
     servers; [Some _] adds a WAL + checkpoints and enables cold restart. *)
  store : (Proto.checkpoint, Proto.wal_record) Store.t option;
  checkpoint_every : int; (* checkpoint every k deliveries; 0 = never *)
  stob_cursor : unit -> int; (* underlay's next-to-deliver slot *)
  stob_resume : int -> unit; (* fast-forward the underlay's cursor *)
  batches : (string, stored) Hashtbl.t; (* keyed by identity root *)
  mutable stored_bytes : int;
  seen_refs : (int * int, unit) Hashtbl.t; (* (broker, number) de-dup of refs *)
  submitted_refs : (int * int, unit) Hashtbl.t; (* refs we pushed into STOB *)
  (* FIFO of ordered batch references whose batches may still be missing:
     delivery must follow STOB order exactly. *)
  mutable order_queue : (int * int * string) list; (* (broker, number, root), reversed *)
  mutable order_queue_front : (int * int * string) list;
  last_msg : (Types.client_id, Types.sequence_number * string) Hashtbl.t;
  (* dense ranges: first_id -> (last agg seq, last tag) *)
  dense_last : (int, int * int) Hashtbl.t;
  (* (broker, number) -> delivery position, for every batch this server has
     delivered and not forgotten: the replay/catch-up double-delivery guard. *)
  delivered_refs : (int * int, int) Hashtbl.t;
  mutable delivery_counter : int;
  mutable delivered_messages : int;
  peer_counters : int array;
  mutable fetching : (string, unit) Hashtbl.t;
  seen_signups : (int, unit) Hashtbl.t;
  mutable delivering : bool;
  mutable crashed : bool;
  (* Cold-restart recovery state. *)
  mutable syncing : bool; (* catching up from a peer; delivery gated *)
  mutable sync_timer : Engine.timer option;
  mutable sync_peer : int;
  mutable sync_backoff : float; (* current retry delay, doubles to a cap *)
  sync_rng : Rng.t; (* private jitter stream for retry delays *)
  mutable sync_rounds : int;
  mutable catch_up_records : int;
  mutable catch_up_ck : bool; (* last catch-up installed a peer checkpoint *)
  mutable restarts : int; (* also the epoch guard for in-flight callbacks *)
  mutable collected_batches : int;
  mutable app_snapshot : (unit -> string) option;
  mutable app_restore : (string option -> unit) option;
  (* Fair admission across brokers (lib/fleet): per-broker token buckets
     gating the [Submit] intake, so a hot or flooding broker spends only
     its own budget on the order queue. *)
  fair_buckets : (int, bucket) Hashtbl.t;
  fair_rejects : (int, int) Hashtbl.t;
  mutable fair_weights : int -> float;
  (* Sharded Rank (lib/fleet): observer invoked after every ordered
     signup, so the deployment can route the card to the owning shard. *)
  mutable on_signup :
    (id:Types.client_id -> reply_broker:int -> Types.keycard -> unit) option;
  (* Byzantine fault injection (lib/chaos). *)
  mutable mis_bad_shares : bool;
  mutable mis_refuse_witness : bool;
  k_timer : int; (* Engine kind attributing server timer events *)
  c_verify : Trace.Counter.t; (* signature-verification operations *)
  c_deliveries : Trace.Counter.t; (* batches delivered (all servers) *)
  c_messages : Trace.Counter.t; (* messages delivered (all servers) *)
}

let sync_backoff_base = 1.0
let sync_backoff_cap = 8.0

let create ~engine ~cpu ~config ?store ?(checkpoint_every = 0)
    ?(stob_cursor = fun () -> 0) ?(stob_resume = fun _ -> ()) ?membership
    ?(set_server_pk = fun _ _ -> ()) ?(on_self_leave = fun () -> ())
    ~directory ~ms_sk ~server_ms_pk ~send_broker ~send_server
    ~stob_broadcast ~deliver_app () =
  let membership =
    match membership with
    | Some m -> m
    | None -> Membership.create ~capacity:config.n ~initial:config.n
  in
  { engine; cpu; cfg = config; membership;
    dir = directory; ms_sk; server_ms_pk; set_server_pk; on_self_leave;
    send_broker; send_server; stob_broadcast; deliver_app;
    store; checkpoint_every; stob_cursor; stob_resume;
    batches = Hashtbl.create 512; stored_bytes = 0;
    seen_refs = Hashtbl.create 1024; submitted_refs = Hashtbl.create 1024;
    order_queue = []; order_queue_front = [];
    last_msg = Hashtbl.create 4096; dense_last = Hashtbl.create 64;
    delivered_refs = Hashtbl.create 1024;
    delivery_counter = 0; delivered_messages = 0;
    peer_counters = Array.make config.n 0;
    fetching = Hashtbl.create 16; seen_signups = Hashtbl.create 64;
    delivering = false; crashed = false;
    syncing = false; sync_timer = None; sync_peer = 0;
    sync_backoff = sync_backoff_base;
    sync_rng =
      Rng.create
        (Int64.logxor 0xBB67AE8584CAA73BL
           (Int64.mul (Int64.of_int (config.self + 1)) 0x9E3779B97F4A7C15L));
    sync_rounds = 0;
    catch_up_records = 0; catch_up_ck = false;
    restarts = 0; collected_batches = 0;
    app_snapshot = None; app_restore = None;
    fair_buckets = Hashtbl.create 8; fair_rejects = Hashtbl.create 8;
    fair_weights = (fun _ -> 1.0); on_signup = None;
    mis_bad_shares = false; mis_refuse_witness = false;
    k_timer = Engine.kind engine "server.timer";
    c_verify =
      Trace.Sink.counter (Engine.trace engine) ~cat:"crypto" ~name:"verify_ops";
    c_deliveries =
      Trace.Sink.counter (Engine.trace engine) ~cat:"server" ~name:"deliveries";
    c_messages =
      Trace.Sink.counter (Engine.trace engine) ~cat:"server" ~name:"messages" }

let tr t = Engine.trace t.engine

let reject_instant t name ~id attrs =
  let s = tr t in
  if Trace.enabled s then
    Trace.instant s ~now:(Engine.now t.engine) ~actor:t.cfg.self ~cat:"server"
      ~name ~id ~attrs

let note_instant t name attrs =
  let s = tr t in
  if Trace.enabled s then
    Trace.instant s ~now:(Engine.now t.engine) ~actor:t.cfg.self ~cat:"store"
      ~name ~id:(Trace.key (string_of_int t.cfg.self)) ~attrs

let directory t = t.dir
let set_fair_weights t f = t.fair_weights <- f
let set_on_signup t f = t.on_signup <- Some f

(* Per-broker admission budget on the order queue (lib/fleet).  Mirrors
   the broker's per-client bucket: refill at [fair_rate * weight], cap at
   [fair_burst], spend one token per accepted batch reference.  Rate 0
   (the default) keeps the gate wide open. *)
let fair_admit t broker =
  let rate = t.cfg.fair_rate *. t.fair_weights broker in
  if t.cfg.fair_rate <= 0. || rate <= 0. then true
  else begin
    let now = Engine.now t.engine in
    let b =
      match Hashtbl.find_opt t.fair_buckets broker with
      | Some b -> b
      | None ->
        let b = { tokens = t.cfg.fair_burst; stamp = now } in
        Hashtbl.add t.fair_buckets broker b;
        b
    in
    b.tokens <- min t.cfg.fair_burst (b.tokens +. ((now -. b.stamp) *. rate));
    b.stamp <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false
  end

let admission_rejects t =
  List.sort compare
    (Hashtbl.fold (fun b n acc -> (b, n) :: acc) t.fair_rejects [])
let delivery_counter t = t.delivery_counter
let delivered_messages t = t.delivered_messages
let stored_batches t = Hashtbl.length t.batches
let stored_bytes t = t.stored_bytes
let catching_up t = t.syncing
let sync_rounds t = t.sync_rounds
let catch_up_records t = t.catch_up_records
let catch_up_checkpoint t = t.catch_up_ck
let restarts t = t.restarts
let collected_batches t = t.collected_batches
let membership t = t.membership
let epoch t = Membership.epoch t.membership

(* Quorum threshold of the *current* epoch's committee. *)
let quorum t = Membership.quorum t.membership

let broadcast_reconfigure t change ~ms_pk =
  t.stob_broadcast (Stob_item.Reconfigure { change; ms_pk })

let set_app_hooks t ~snapshot ~restore =
  t.app_snapshot <- Some snapshot;
  t.app_restore <- Some restore

let order_queue_depth t =
  List.length t.order_queue_front + List.length t.order_queue

(* --- durable state (lib/store) ------------------------------------------ *)

let wal_log t record =
  match t.store with
  | None -> ()
  | Some s ->
    Store.append s
      ~position:(Proto.wal_record_position record)
      ~bytes:(Store_wire.wal_record_bytes record)
      record

let take_checkpoint t s =
  let sorted l = List.sort compare l in
  let ck =
    { Proto.ck_position = t.delivery_counter;
      ck_messages = t.delivered_messages;
      ck_last_msg =
        sorted
          (Hashtbl.fold (fun id (seq, m) acc -> (id, seq, m) :: acc)
             t.last_msg []);
      ck_dense_last =
        sorted
          (Hashtbl.fold (fun fid (seq, tag) acc -> (fid, seq, tag) :: acc)
             t.dense_last []);
      ck_refs =
        sorted
          (Hashtbl.fold (fun (b, n) p acc -> (b, n, p) :: acc)
             t.delivered_refs []);
      ck_signups =
        sorted (Hashtbl.fold (fun nonce () acc -> nonce :: acc) t.seen_signups []);
      ck_cards = Directory.explicit_cards t.dir;
      ck_app = Option.map (fun snap -> snap ()) t.app_snapshot;
      ck_epoch = (let e, _ = Membership.snapshot t.membership in e);
      ck_members = (let _, m = Membership.snapshot t.membership in m) }
  in
  let bytes = Store_wire.checkpoint_bytes ck in
  Store.checkpoint s ~position:t.delivery_counter ~bytes ck;
  note_instant t "checkpoint"
    [ ("position", Trace.A_int t.delivery_counter);
      ("bytes", Trace.A_int bytes) ]

let maybe_checkpoint t =
  match t.store with
  | Some s
    when t.checkpoint_every > 0
         && t.delivery_counter > 0
         && t.delivery_counter mod t.checkpoint_every = 0
         && t.delivery_counter > Store.checkpoint_position s ->
    take_checkpoint t s
  | Some _ | None -> ()

(* --- storage & GC ------------------------------------------------------- *)

let store_batch t batch =
  let root = Batch.identity_root batch in
  if not (Hashtbl.mem t.batches root) then begin
    let bytes = Batch.wire_bytes ~clients:t.cfg.clients batch in
    Hashtbl.add t.batches root { batch; bytes; position = None };
    t.stored_bytes <- t.stored_bytes + bytes
  end;
  root

let gc_sweep t =
  (* A batch delivered at position p is collectable once every server
     (ourselves included) reports a delivery counter beyond p — or, with
     durable state, once one of our checkpoints covers p: a crashed peer
     then recovers the batch's effects from checkpoint + WAL transfer
     instead of re-fetching the batch itself. *)
  (* Only active slots vote: a spare slot's counter is pinned at zero and
     would freeze collection forever. *)
  let gossip =
    List.fold_left
      (fun acc s -> min acc t.peer_counters.(s))
      max_int
      (Membership.active_slots t.membership)
  in
  let horizon =
    match t.store with
    | Some s when t.checkpoint_every > 0 -> max gossip (Store.checkpoint_position s)
    | Some _ | None -> gossip
  in
  let victims = ref [] in
  Hashtbl.iter
    (fun root stored ->
      match stored.position with
      | Some p when p < horizon -> victims := (root, stored) :: !victims
      | Some _ | None -> ())
    t.batches;
  List.iter
    (fun (root, stored) ->
      Hashtbl.remove t.batches root;
      t.stored_bytes <- t.stored_bytes - stored.bytes;
      t.collected_batches <- t.collected_batches + 1)
    !victims

let start t =
  Engine.every ~kind:t.k_timer t.engine ~period:t.cfg.gc_period (fun () ->
      if not t.crashed then begin
        t.peer_counters.(t.cfg.self) <- t.delivery_counter;
        for dst = 0 to t.cfg.n - 1 do
          if dst <> t.cfg.self && Membership.is_active t.membership dst then
            t.send_server ~dst ~bytes:(Wire.header_bytes + 8)
              (Gc_status { delivered_counter = t.delivery_counter })
        done;
        gc_sweep t
      end)

(* --- witnessing (#9, #10) ------------------------------------------------ *)

(* A witness request can race ahead of this replica's directory: the broker
   assigns identifiers from the orderer's view, which runs one delivery hop
   ahead of everyone else, so a batch may reference a freshly signed-up
   client whose ordered signup has not been delivered here yet.  The signup
   always precedes the batch in the total order, so the directory catches
   up — defer instead of refusing. *)
let batch_ready t (batch : Batch.t) =
  let n = Directory.size t.dir in
  (match batch.Batch.entries with
   | Batch.Explicit es -> Array.for_all (fun e -> e.Batch.e_id < n) es
   | Batch.Dense _ -> true)
  && Array.for_all (fun s -> s.Batch.s_id < n) batch.Batch.stragglers

let rec witness_batch ?(attempt = 0) t batch =
  (* A syncing (bootstrapping) or inactive server must not witness: its
     committee share only counts once it is a caught-up active member. *)
  if (not t.mis_refuse_witness) && (not t.syncing)
     && Membership.is_active t.membership t.cfg.self
  then
  if not (batch_ready t batch) then begin
    note_instant t "defer_witness"
      [ ("root", Trace.A_int (Trace.key (Batch.identity_root batch)));
        ("attempt", Trace.A_int attempt) ];
    (* 100 × 0.2 s rides out an orderer outage (the signup rank cannot be
       delivered anywhere while the order itself is stalled). *)
    if attempt < 100 then
      Engine.schedule ~kind:t.k_timer t.engine ~delay:0.2 (fun () ->
          if not t.crashed then witness_batch ~attempt:(attempt + 1) t batch)
    else
      (* Identifiers the order never produced: a Byzantine broker made
         them up.  Refuse for good. *)
      reject_instant t "reject_batch"
        ~id:(Trace.key (Batch.identity_root batch))
        [ ("broker", Trace.A_int batch.Batch.broker);
          ("number", Trace.A_int batch.Batch.number) ]
  end
  else begin
    let root = Batch.identity_root batch in
    let work = Batch.witness_cpu_work batch in
    let s = tr t in
    if Trace.enabled s then
      Trace.span_begin s ~now:(Engine.now t.engine) ~actor:t.cfg.self
        ~cat:"server" ~name:"witness_verify" ~id:(Trace.key root)
        ~attrs:[ ("cost", Trace.A_float (Cpu.total work)) ];
    Cpu.submit t.cpu ~work (fun () ->
        if Trace.enabled s then
          Trace.span_end s ~now:(Engine.now t.engine) ~actor:t.cfg.self
            ~cat:"server" ~name:"witness_verify" ~id:(Trace.key root);
        if not t.crashed then begin
          (* Aggregate check plus one per-straggler fallback signature. *)
          Trace.Counter.add t.c_verify (1 + Batch.straggler_count batch);
          if Batch.verify t.dir batch then begin
            let statement =
              Certs.witness_statement ~root ~broker:batch.Batch.broker
                ~number:batch.Batch.number
            in
            let share =
              if t.mis_bad_shares then Multisig.forge_garbage ()
              else Certs.sign_shard t.ms_sk statement
            in
            t.send_broker ~broker:batch.Batch.broker ~bytes:Wire.witness_shard_bytes
              (Witness_shard { root; share })
          end
          else
            (* Garbled / malformed batch from a Byzantine broker: refuse to
               witness, loudly. *)
            reject_instant t "reject_batch" ~id:(Trace.key root)
              [ ("broker", Trace.A_int batch.Batch.broker);
                ("number", Trace.A_int batch.Batch.number) ]
        end)
  end

(* --- delivery (#13–#16) -------------------------------------------------- *)

let deliver_explicit t (batch : Batch.t) entries =
  let exceptions = ref [] in
  let delivered = ref [] in
  let straggler_seq id =
    match Array.find_opt (fun s -> s.Batch.s_id = id) batch.stragglers with
    | Some s -> Some s.s_seq
    | None -> None
  in
  Array.iter
    (fun e ->
      let id = e.Batch.e_id in
      let seq = Option.value (straggler_seq id) ~default:batch.agg_seq in
      let last = Hashtbl.find_opt t.last_msg id in
      let fresh =
        match last with
        | None -> true
        | Some (last_seq, last_m) -> seq > last_seq && e.e_msg <> last_m
      in
      if fresh then begin
        Hashtbl.replace t.last_msg id (seq, e.e_msg);
        delivered := (id, seq, e.e_msg) :: !delivered
      end
      else begin
        let last_seq = match last with Some (s, _) -> s | None -> -1 in
        exceptions := (id, last_seq) :: !exceptions
      end)
    entries;
  let logged = Array.of_list (List.rev !delivered) in
  let ops = Array.map (fun (id, _, m) -> (id, m)) logged in
  if Array.length ops > 0 then t.deliver_app (Proto.Ops ops);
  t.delivered_messages <- t.delivered_messages + Array.length ops;
  (List.rev !exceptions, Proto.Wal_ops logged)

let deliver_dense t (batch : Batch.t) (d : Batch.dense) =
  (* The whole range shares one (sequence number, tag): the usual per-client
     rule collapses into a single range-level check. *)
  let last = Hashtbl.find_opt t.dense_last d.first_id in
  let fresh =
    match last with
    | None -> true
    | Some (last_seq, last_tag) -> batch.agg_seq > last_seq && d.tag <> last_tag
  in
  if fresh then begin
    Hashtbl.replace t.dense_last d.first_id (batch.agg_seq, d.tag);
    t.deliver_app
      (Proto.Bulk { first_id = d.first_id; count = d.count; tag = d.tag;
                    msg_bytes = d.msg_bytes });
    t.delivered_messages <- t.delivered_messages + d.count;
    ([],
     Proto.Wal_bulk
       { first_id = d.first_id; count = d.count; tag = d.tag;
         msg_bytes = d.msg_bytes; agg_seq = batch.agg_seq })
  end
  else
    (* Whole-range replay: summarised as a single exception entry. *)
    ( [ (d.first_id, match last with Some (s, _) -> s | None -> -1) ],
      Proto.Wal_ops [||] )

let deliver_batch t ~broker ~number stored =
  let batch = stored.batch in
  let root = Batch.identity_root batch in
  let before_msgs = t.delivered_messages in
  let exceptions, wal_ops =
    match batch.entries with
    | Batch.Explicit entries -> deliver_explicit t batch entries
    | Batch.Dense d -> deliver_dense t batch d
  in
  Trace.Counter.incr t.c_deliveries;
  Trace.Counter.add t.c_messages (t.delivered_messages - before_msgs);
  t.delivery_counter <- t.delivery_counter + 1;
  let position = t.delivery_counter - 1 in
  stored.position <- Some position;
  Hashtbl.replace t.delivered_refs (broker, number) position;
  t.peer_counters.(t.cfg.self) <- t.delivery_counter;
  wal_log t
    (Proto.Wal_batch
       { w_position = position; w_broker = broker; w_number = number;
         w_root = root; w_ops = wal_ops });
  maybe_checkpoint t;
  let counter = t.delivery_counter in
  let statement =
    Certs.completion_statement ~root ~counter
      ~exc_hash:(Certs.exceptions_hash exceptions)
  in
  let share = Certs.sign_shard t.ms_sk statement in
  t.send_broker ~broker:batch.broker
    ~bytes:(Wire.completion_shard_bytes ~exceptions:(List.length exceptions))
    (Completion_shard { root; counter; exceptions; share })

(* Forward reference to {!begin_catch_up} (defined with the state-transfer
   machinery below): the fetch path escalates to a full re-sync when every
   peer has garbage-collected a batch body it still needs. *)
let resync_hook : (t -> unit) ref = ref (fun _ -> ())

let rec drain_order_queue t =
  (* While catching up after a cold restart, live ordered references queue
     but must not deliver: the gap below them is being filled by state
     transfer, and delivering out of turn would assign wrong positions. *)
  if t.delivering || t.syncing then ()
  else
  let next =
    match t.order_queue_front with
    | x :: _ -> Some x
    | [] ->
      (match List.rev t.order_queue with
       | [] -> None
       | xs ->
         t.order_queue_front <- xs;
         t.order_queue <- [];
         Some (List.hd xs))
  in
  match next with
  | None -> ()
  | Some (broker, number, root) ->
    if Hashtbl.mem t.delivered_refs (broker, number) then begin
      (* Delivered before the crash, or via catch-up: skip. *)
      t.order_queue_front <- List.tl t.order_queue_front;
      drain_order_queue t
    end
    else
    (match Hashtbl.find_opt t.batches root with
     | Some stored when stored.position = None ->
       t.order_queue_front <- List.tl t.order_queue_front;
       t.delivering <- true;
       let work = Batch.non_witness_cpu_work stored.batch in
       let epoch = t.restarts in
       let s = tr t in
       if Trace.enabled s then
         Trace.span_begin s ~now:(Engine.now t.engine) ~actor:t.cfg.self
           ~cat:"server" ~name:"deliver" ~id:(Trace.key root);
       Cpu.submit t.cpu ~work (fun () ->
           if t.restarts = epoch then begin
             t.delivering <- false;
             if (not t.crashed) && (not t.syncing) && stored.position = None
                && not (Hashtbl.mem t.delivered_refs (broker, number))
             then begin
               deliver_batch t ~broker ~number stored;
               if Trace.enabled s then
                 Trace.span_end s ~now:(Engine.now t.engine) ~actor:t.cfg.self
                   ~cat:"server" ~name:"deliver" ~id:(Trace.key root);
               drain_order_queue t
             end
           end)
     | Some _ ->
       (* Already delivered through an earlier reference: skip. *)
       t.order_queue_front <- List.tl t.order_queue_front;
       drain_order_queue t
     | None -> fetch_batch t ~broker ~number ~root)

and fetch_batch ?(rounds = 0) t ~broker ~number ~root =
  if rounds >= 3 && t.store <> None && not t.syncing then begin
    (* Every live peer has collected this body: their checkpoints moved
       past it while we trailed.  That is by design — the GC horizon
       assumes a laggard recovers the batch's *effects* through state
       transfer, not the batch itself — so stop fetching and re-enter
       catch-up (forward reference: catch-up drains this queue). *)
    note_instant t "refetch_resync"
      [ ("root", Trace.A_int (Trace.key root));
        ("position", Trace.A_int t.delivery_counter) ];
    !resync_hook t
  end
  else if not (Hashtbl.mem t.fetching root) then begin
    Hashtbl.add t.fetching root ();
    let target =
      let n = t.cfg.n in
      let c0 = (t.cfg.self + 1 + (number mod (max 1 (n - 1)))) mod n in
      (* Advance past spares and departed members. *)
      let rec hunt c tries =
        if tries = 0 then c
        else if c <> t.cfg.self && Membership.is_active t.membership c then c
        else hunt ((c + 1) mod n) (tries - 1)
      in
      hunt c0 n
    in
    t.send_server ~dst:target ~bytes:Wire.witness_request_bytes
      (Request_batch { root; broker; number });
    (* Retry from another peer if the batch does not show up. *)
    Engine.schedule ~kind:t.k_timer t.engine ~delay:1.0 (fun () ->
        if (not t.crashed) && Hashtbl.mem t.fetching root then begin
          Hashtbl.remove t.fetching root;
          fetch_batch ~rounds:(rounds + 1) t ~broker ~number:(number + 1) ~root
        end)
  end

(* --- cold restart: WAL replay and peer state transfer -------------------- *)

let apply_wal_ops t (op : Proto.wal_op) =
  (* Replay re-drives the application and the dedup tables, but does not
     resend completion shards (the brokers got them the first time) and
     does not touch the global trace delivery counters. *)
  match op with
  | Proto.Wal_ops entries ->
    Array.iter
      (fun (id, seq, m) -> Hashtbl.replace t.last_msg id (seq, m))
      entries;
    if Array.length entries > 0 then
      t.deliver_app (Proto.Ops (Array.map (fun (id, _, m) -> (id, m)) entries));
    t.delivered_messages <- t.delivered_messages + Array.length entries
  | Proto.Wal_bulk { first_id; count; tag; msg_bytes; agg_seq } ->
    Hashtbl.replace t.dense_last first_id (agg_seq, tag);
    t.deliver_app (Proto.Bulk { first_id; count; tag; msg_bytes });
    t.delivered_messages <- t.delivered_messages + count

let replay_record t (r : Proto.wal_record) =
  match r with
  | Proto.Wal_signup { w_nonce; w_card; w_id; w_pos = _ } ->
    if Hashtbl.mem t.seen_signups w_nonce then false
    else begin
      Hashtbl.add t.seen_signups w_nonce ();
      (* The directory object is shared with the brokers and survives the
         crash; re-append only when the entry is genuinely missing (a
         fresh-directory replay in tests), and never resend Signup_done. *)
      if Directory.size t.dir <= w_id then ignore (Directory.append t.dir w_card);
      true
    end
  | Proto.Wal_reconfig { w_change; w_ms_pk; w_rpos = _ } ->
    (* Changes already covered by the restored checkpoint are no-ops
       thanks to the {!Membership.applies} idempotence guard. *)
    if Membership.applies t.membership w_change then begin
      ignore (Membership.apply t.membership w_change);
      (match w_ms_pk, w_change with
       | Some pk, (Membership.Join i | Membership.Replace (i, _)) ->
         t.set_server_pk i pk
       | _ -> ());
      true
    end
    else false
  | Proto.Wal_batch { w_position; w_broker; w_number; w_root; w_ops } ->
    (* Contiguity: a record applies exactly at its position.  Records below
       the counter are duplicates (already covered by the checkpoint or an
       earlier response); records above would leave a gap. *)
    if w_position <> t.delivery_counter then false
    else begin
      apply_wal_ops t w_ops;
      t.delivery_counter <- t.delivery_counter + 1;
      Hashtbl.replace t.delivered_refs (w_broker, w_number) w_position;
      Hashtbl.replace t.seen_refs (w_broker, w_number) ();
      (match Hashtbl.find_opt t.batches w_root with
       | Some stored -> stored.position <- Some w_position
       | None -> ());
      true
    end

let restore_checkpoint t (ck : Proto.checkpoint) =
  Hashtbl.reset t.last_msg;
  Hashtbl.reset t.dense_last;
  Hashtbl.reset t.delivered_refs;
  Hashtbl.reset t.seen_signups;
  List.iter
    (fun (id, seq, m) -> Hashtbl.replace t.last_msg id (seq, m))
    ck.Proto.ck_last_msg;
  List.iter
    (fun (fid, seq, tag) -> Hashtbl.replace t.dense_last fid (seq, tag))
    ck.Proto.ck_dense_last;
  List.iter
    (fun (b, n, p) ->
      Hashtbl.replace t.delivered_refs (b, n) p;
      Hashtbl.replace t.seen_refs (b, n) ())
    ck.Proto.ck_refs;
  List.iter (fun nonce -> Hashtbl.replace t.seen_signups nonce ()) ck.Proto.ck_signups;
  (* Rebuild the explicit directory from the checkpoint: a joining server
     restores a *peer's* snapshot, and its signup records live below the
     checkpoint position, so the cards arrive only this way.  The
     directory object is append-only and shared with the brokers —
     existing ranks are left untouched. *)
  List.iteri
    (fun i card ->
      if Directory.size t.dir <= Directory.dense_count t.dir + i then
        ignore (Directory.append t.dir card))
    ck.Proto.ck_cards;
  Membership.restore t.membership (ck.Proto.ck_epoch, ck.Proto.ck_members);
  t.delivery_counter <- ck.Proto.ck_position;
  t.delivered_messages <- ck.Proto.ck_messages;
  match t.app_restore with
  | Some restore -> restore ck.Proto.ck_app
  | None -> ()

let rec send_sync_request t =
  let dst =
    (* Rotate over *active* peers: spares have nothing to serve and a
       departed member may be gone for good. *)
    let n = t.cfg.n in
    let rec hunt c tries =
      if tries = 0 then c
      else if c <> t.cfg.self && Membership.is_active t.membership c then c
      else hunt ((c + 1) mod n) (tries - 1)
    in
    hunt t.sync_peer n
  in
  t.sync_peer <- (dst + 1) mod t.cfg.n;
  t.send_server ~dst ~bytes:Wire.sync_request_bytes
    (Sync_request { from_position = t.delivery_counter });
  (* Seeded exponential backoff with a cap, so a restarter cut off from
     its peers (mid-partition join) does not hammer the network at a
     fixed period while it waits for the heal. *)
  let delay = t.sync_backoff *. (0.75 +. Rng.float t.sync_rng 0.5) in
  t.sync_backoff <- Float.min sync_backoff_cap (t.sync_backoff *. 2.0);
  let epoch = t.restarts in
  t.sync_timer <-
    Some
      (Engine.timer ~kind:t.k_timer t.engine ~delay (fun () ->
           (* Peer crashed or partitioned: rotate to the next one. *)
           if t.syncing && (not t.crashed) && t.restarts = epoch then begin
             note_instant t "sync_retry"
               [ ("peer", Trace.A_int dst);
                 ("delay", Trace.A_float delay);
                 ("position", Trace.A_int t.delivery_counter) ];
             send_sync_request t
           end))

let begin_catch_up t =
  t.syncing <- true;
  t.sync_peer <- (t.cfg.self + 1) mod t.cfg.n;
  t.sync_backoff <- sync_backoff_base;
  send_sync_request t

let () = resync_hook := begin_catch_up

let finish_catch_up t ~peer_stob_cursor =
  t.syncing <- false;
  (* Everything the peers ordered below their cursor reached us as state
     transfer; fast-forward the underlay past the slots missed while down
     so live slots from here on deliver.  (Slots ordered after the peer's
     response are already arriving at our recovered underlay.) *)
  t.stob_resume (max (t.stob_cursor ()) peer_stob_cursor);
  note_instant t "caught_up"
    [ ("position", Trace.A_int t.delivery_counter);
      ("rounds", Trace.A_int t.sync_rounds);
      ("records", Trace.A_int t.catch_up_records) ];
  drain_order_queue t

let cold_restart t =
  match t.store with
  | None ->
    (* No durable state: fall back to warm recovery (prefix-correct only). *)
    t.crashed <- false
  | Some s ->
    t.crashed <- false;
    t.restarts <- t.restarts + 1;
    t.syncing <- true; (* gate delivery for the whole recovery window *)
    t.sync_rounds <- 0;
    t.catch_up_ck <- false;
    (* Wipe every in-memory structure: only the disk state survives. *)
    Hashtbl.reset t.batches;
    t.stored_bytes <- 0;
    Hashtbl.reset t.seen_refs;
    Hashtbl.reset t.submitted_refs;
    t.order_queue <- [];
    t.order_queue_front <- [];
    Hashtbl.reset t.last_msg;
    Hashtbl.reset t.dense_last;
    Hashtbl.reset t.delivered_refs;
    t.delivery_counter <- 0;
    t.delivered_messages <- 0;
    Membership.reset t.membership;
    Array.fill t.peer_counters 0 t.cfg.n 0;
    Hashtbl.reset t.fetching;
    Hashtbl.reset t.seen_signups;
    t.delivering <- false;
    (match t.sync_timer with Some tm -> Engine.cancel tm | None -> ());
    t.sync_timer <- None;
    (match t.app_restore with Some restore -> restore None | None -> ());
    note_instant t "cold_restart" [];
    let epoch = t.restarts in
    Store.load s ~k:(fun ck records ->
        if (not t.crashed) && t.restarts = epoch then begin
          (match ck with Some ck -> restore_checkpoint t ck | None -> ());
          let bytes =
            (match ck with
             | Some ck -> Store_wire.checkpoint_bytes ck
             | None -> 0)
            + List.fold_left
                (fun acc r -> acc + Store_wire.wal_record_bytes r)
                0 records
          in
          (* Deserialize + re-apply cost, on the CPU after the disk read. *)
          Cpu.submit t.cpu
            ~work:(Cpu.parallel (Cost.serialize_per_byte *. float_of_int bytes))
            (fun () ->
              if (not t.crashed) && t.restarts = epoch then begin
                List.iter (fun r -> ignore (replay_record t r)) records;
                t.peer_counters.(t.cfg.self) <- t.delivery_counter;
                note_instant t "wal_replayed"
                  [ ("position", Trace.A_int t.delivery_counter);
                    ("records", Trace.A_int (List.length records)) ];
                begin_catch_up t
              end)
        end)

(* --- message handlers ----------------------------------------------------- *)

let receive_broker t ~src_broker msg =
  if not t.crashed then
    match msg with
    | Proto.Batch_announce { batch; witness_requested } ->
      if batch.Batch.broker = src_broker then begin
        ignore (store_batch t batch);
        if witness_requested then witness_batch t batch
      end
    | Proto.Witness_request { root } ->
      (match Hashtbl.find_opt t.batches root with
       | Some stored -> witness_batch t stored.batch
       | None -> ())
    | Proto.Relay_signup { card; nonce } ->
      t.stob_broadcast (Stob_item.Signup { card; reply_broker = src_broker; nonce })
    | Proto.Submit { root; number; witness } ->
      (* #12: relay the batch reference into the server-run STOB, once.
         Fair admission first: each broker spends its own token budget, so
         a flooding broker defers itself rather than starving siblings
         (the broker's submit_timeout rotation retries the reference). *)
      if not (fair_admit t src_broker) then begin
        Hashtbl.replace t.fair_rejects src_broker
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.fair_rejects src_broker));
        reject_instant t "reject_admission" ~id:(Trace.key root)
          [ ("broker", Trace.A_int src_broker);
            ("number", Trace.A_int number) ]
      end
      else if not (Hashtbl.mem t.submitted_refs (src_broker, number)) then begin
        Hashtbl.add t.submitted_refs (src_broker, number) ();
        Cpu.submit t.cpu ~work:(Cpu.serial Cost.bls_verify) (fun () ->
            if not t.crashed then begin
              Trace.Counter.incr t.c_verify;
              let statement =
                Certs.witness_statement ~root ~broker:src_broker ~number
              in
              if
                Certs.verify ~statement ~server_ms_pk:t.server_ms_pk
                  ~quorum:(quorum t) witness
              then begin
                t.stob_broadcast
                  (Stob_item.Batch_ref { broker = src_broker; number; root; witness });
                t.send_broker ~broker:src_broker ~bytes:(Wire.header_bytes + 32)
                  (Submit_ack { root })
              end
              else
                reject_instant t "reject_witness" ~id:(Trace.key root)
                  [ ("broker", Trace.A_int src_broker);
                    ("number", Trace.A_int number) ]
            end)
      end

let receive_server t ~src msg =
  if not t.crashed then
    match msg with
    | Proto.Request_batch { root; broker = _; number = _ } ->
      (match Hashtbl.find_opt t.batches root with
       | Some stored ->
         t.send_server ~dst:src ~bytes:stored.bytes
           (Batch_response { batch = stored.batch })
       | None -> ())
    | Proto.Batch_response { batch } ->
      let root = store_batch t batch in
      if Hashtbl.mem t.fetching root then begin
        Hashtbl.remove t.fetching root;
        drain_order_queue t
      end
    | Proto.Gc_status { delivered_counter } ->
      if delivered_counter > t.peer_counters.(src) then begin
        t.peer_counters.(src) <- delivered_counter;
        gc_sweep t
      end
    | Proto.Sync_request { from_position } ->
      (match t.store with
       | None -> () (* nothing durable to serve *)
       | Some s ->
         let checkpoint =
           if Store.checkpoint_position s > from_position then
             Store.latest_checkpoint s
           else None
         in
         let base =
           match checkpoint with
           | Some ck -> ck.Proto.ck_position
           | None -> from_position
         in
         let records = Store.records_from s ~position:base in
         let backlog = order_queue_depth t + (if t.delivering then 1 else 0) in
         let bytes = Store_wire.sync_response_bytes ~checkpoint ~records in
         let resp =
           Proto.Sync_response
             { position = t.delivery_counter; stob_cursor = t.stob_cursor ();
               backlog; checkpoint; records }
         in
         (* Serving state transfer streams the log back off the device. *)
         Disk.read (Store.disk s) ~bytes (fun () ->
             if not t.crashed then t.send_server ~dst:src ~bytes resp))
    | Proto.Sync_response { position; stob_cursor; backlog; checkpoint; records }
      ->
      if t.syncing then begin
        (match t.sync_timer with Some tm -> Engine.cancel tm | None -> ());
        t.sync_timer <- None;
        t.sync_backoff <- sync_backoff_base; (* progress: reset the backoff *)
        t.sync_rounds <- t.sync_rounds + 1;
        (match checkpoint with
         | Some ck when ck.Proto.ck_position > t.delivery_counter ->
           (* The peer's snapshot is ahead of everything we have: replace
              our state wholesale and replay its WAL suffix on top. *)
           restore_checkpoint t ck;
           t.catch_up_ck <- true;
           (match t.store with
            | Some s when Store.checkpoint_position s < ck.Proto.ck_position ->
              Store.checkpoint s ~position:ck.Proto.ck_position
                ~bytes:(Store_wire.checkpoint_bytes ck) ck
            | Some _ | None -> ())
         | Some _ | None -> ());
        List.iter
          (fun r ->
            if replay_record t r then begin
              t.catch_up_records <- t.catch_up_records + 1;
              wal_log t r;
              maybe_checkpoint t
            end)
          records;
        t.peer_counters.(t.cfg.self) <- t.delivery_counter;
        if t.delivery_counter >= position && backlog = 0 then
          finish_catch_up t ~peer_stob_cursor:stob_cursor
        else begin
          (* The peer is still ahead (or had deliveries in flight): let it
             advance a little and ask again. *)
          let epoch = t.restarts in
          Engine.schedule ~kind:t.k_timer t.engine ~delay:0.25 (fun () ->
              if t.syncing && (not t.crashed) && t.restarts = epoch then
                send_sync_request t)
        end
      end

let on_stob_deliver t item =
  if not t.crashed then
    match item with
    | Stob_item.Signup { card; reply_broker; nonce } ->
      if not (Hashtbl.mem t.seen_signups nonce) then begin
        Hashtbl.add t.seen_signups nonce ();
        let id = Directory.append t.dir card in
        (match t.on_signup with
         | Some f -> f ~id ~reply_broker card
         | None -> ());
        wal_log t
          (Proto.Wal_signup
             { w_nonce = nonce; w_card = card; w_id = id;
               w_pos = t.delivery_counter });
        t.send_broker ~broker:reply_broker ~bytes:(Wire.header_bytes + 16)
          (Signup_done { nonce; id })
      end
    | Stob_item.Reconfigure { change; ms_pk } ->
      (* Ordered reconfiguration: every correct server applies the change
         at the same total-order position, so the active set, the multisig
         committee and the quorum thresholds roll forward in lockstep.
         A duplicate (rebroadcast, or already learned via state transfer)
         is a no-op through the idempotence guard. *)
      if Membership.applies t.membership change then begin
        ignore (Membership.apply t.membership change);
        (match ms_pk, change with
         | Some pk, (Membership.Join i | Membership.Replace (i, _)) ->
           t.set_server_pk i pk
         | _ -> ());
        wal_log t
          (Proto.Wal_reconfig
             { w_change = change; w_ms_pk = ms_pk;
               w_rpos = t.delivery_counter });
        note_instant t "reconfigure"
          [ ("epoch", Trace.A_int (Membership.epoch t.membership));
            ("change", Trace.A_str (Membership.describe change)) ];
        match change with
        | Membership.Leave i when i = t.cfg.self ->
          (* Ordered out: stop participating; the deployment hook tears
             down this node's network presence. *)
          t.crashed <- true;
          t.on_self_leave ()
        | _ -> ()
      end
    | Stob_item.Batch_ref { broker; number; root; witness } ->
      if Hashtbl.mem t.seen_refs (broker, number) then
        (* A second batch reference for the same (broker, number) slot:
           either a redundant relay or an equivocating broker.  Exactly
           the first ordered reference wins (§4.4 — this deduplication is
           what makes broker equivocation harmless). *)
        reject_instant t "dup_ref" ~id:(Trace.key root)
          [ ("broker", Trace.A_int broker); ("number", Trace.A_int number) ]
      else begin
        Hashtbl.add t.seen_refs (broker, number) ();
        let statement = Certs.witness_statement ~root ~broker ~number in
        Trace.Counter.incr t.c_verify;
        if
          Certs.verify ~statement ~server_ms_pk:t.server_ms_pk
            ~quorum:(quorum t) witness
        then begin
          (let s = tr t in
           if Trace.enabled s then
             Trace.instant s ~now:(Engine.now t.engine) ~actor:t.cfg.self
               ~cat:"server" ~name:"ordered" ~id:(Trace.key root)
               ~attrs:[ ("number", Trace.A_int number) ]);
          t.order_queue <- (broker, number, root) :: t.order_queue;
          drain_order_queue t
        end
        else
          reject_instant t "reject_witness" ~id:(Trace.key root)
            [ ("broker", Trace.A_int broker); ("number", Trace.A_int number) ]
      end

let crash t = t.crashed <- true

(* Warm recovery (fig. 11a): un-crash in place, keeping all in-memory state.
   The chopchop layer above the STOB resumes where it stopped; batches and
   references that were exchanged while down are re-obtainable through the
   fetch path, but STOB slots missed during the outage are not (see
   {!Repro_stob}), so a recovered server is prefix-correct, not live.  Use
   {!cold_restart} (durable state required) for a recovery that catches the
   server back up to its peers. *)
let recover t = t.crashed <- false

(* Byzantine switches (lib/chaos). *)

let misbehave_bad_shares t = t.mis_bad_shares <- true
let misbehave_refuse_witness t = t.mis_refuse_witness <- true
