(** Payloads ordered by the server-run Atomic Broadcast.

    Only batch {e references} (a hash and its witness) go through the
    expensive ordering layer — the batches themselves travel directly from
    brokers to servers (#8), which is the whole point of the mempool
    design.  Client sign-ups also ride the STOB so that every server
    appends new key cards to its directory at the same rank (Appx. C). *)

type t =
  | Batch_ref of {
      broker : int;
      number : int;
      root : string;
      witness : Certs.quorum_cert;
    }
  | Signup of { card : Types.keycard; reply_broker : int; nonce : int }
  | Reconfigure of {
      change : Membership.change;
      ms_pk : Repro_crypto.Multisig.public_key option;
          (* multisig key of the joining / replacing server, [None] for
             a plain leave *)
    }

val wire_bytes : t -> int
