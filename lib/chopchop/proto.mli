(** Message vocabulary of the Chop Chop protocol (Fig. 5, steps #1–#19).

    These types are carried verbatim inside the deployment's network
    message union; wire sizes are computed by {!Wire} at the send site. *)

type client_to_broker =
  | Submission of {
      id : Types.client_id;
      seq : Types.sequence_number;
      msg : Types.message;
      tsig : Repro_crypto.Schnorr.signature;
          (* the individual fallback signature t_i over
             [Types.message_statement] (#2) *)
      evidence : Certs.delivery_cert option; (* legitimacy proof l_n *)
      ctx : Repro_trace.Trace.Ctx.t;
          (* causal trace context (root id + hop), propagated so one
             broadcast's path is reconstructable end to end; charged as
             [Wire.trace_ctx_bytes] *)
    }
  | Reduction of {
      id : Types.client_id;
      root : string;
      share : Repro_crypto.Multisig.signature; (* s_i on the proposal root (#6) *)
    }
  | Signup_request of { card : Types.keycard; nonce : int }

type broker_to_client =
  | Inclusion of {
      root : string; (* proposal (reduction) root *)
      proof : Repro_crypto.Merkle.proof;
      agg_seq : Types.sequence_number; (* k *)
      evidence : Certs.delivery_cert option; (* proves k legitimate (#4) *)
    }
  | Deliver_cert of {
      cert : Certs.delivery_cert;
      seq : Types.sequence_number; (* sequence number the batch carried *)
      proof : Repro_crypto.Merkle.proof option; (* inclusion in cert.root *)
    }
  | Signup_response of { nonce : int; id : Types.client_id }

type broker_to_server =
  | Batch_announce of {
      batch : Batch.t;
      witness_requested : bool; (* #8: only f+1+margin servers verify *)
    }
  | Witness_request of { root : string }
      (* extend the witnessing set after a timeout (§2.2) *)
  | Submit of {
      root : string;
      number : int;
      witness : Certs.quorum_cert; (* #12: hand to the server-run STOB *)
    }
  | Relay_signup of { card : Types.keycard; nonce : int }
      (* brokers are clients of the server-run STOB: sign-ups enter it
         through a server relay (Appx. C) *)

type server_to_broker =
  | Witness_shard of { root : string; share : Repro_crypto.Multisig.signature }
  | Completion_shard of {
      root : string;
      counter : int;
      exceptions : (Types.client_id * Types.sequence_number) list;
      share : Repro_crypto.Multisig.signature; (* #16 *)
    }
  | Submit_ack of { root : string }
  | Signup_done of { nonce : int; id : Types.client_id }

(** What a server hands to the application on delivery. *)
type delivery =
  | Ops of (Types.client_id * Types.message) array
  | Bulk of { first_id : int; count : int; tag : int; msg_bytes : int }
      (* dense ranges: applications regenerate the operations
         deterministically (they are random operations in the paper's
         workloads too, §6.8) *)

val delivery_count : delivery -> int

(** {2 Durable state}

    The concrete record and checkpoint types a server logs into its
    {!Repro_store.Store}.  A WAL op is the post-deduplication outcome of
    one batch delivery, with the sequence numbers needed to rebuild the
    deduplication tables on replay; [Wal_ops [||]] marks a position whose
    batch delivered nothing fresh. *)

type wal_op =
  | Wal_ops of (Types.client_id * Types.sequence_number * Types.message) array
  | Wal_bulk of {
      first_id : int;
      count : int;
      tag : int;
      msg_bytes : int;
      agg_seq : Types.sequence_number;
    }

type wal_record =
  | Wal_batch of {
      w_position : int; (* global delivery position *)
      w_broker : int;
      w_number : int;
      w_root : string;
      w_ops : wal_op;
    }
  | Wal_signup of {
      w_nonce : int;
      w_card : Types.keycard;
      w_id : Types.client_id;
      w_pos : int; (* delivery counter when the sign-up was ordered *)
    }
  | Wal_reconfig of {
      w_change : Membership.change;
      w_ms_pk : Repro_crypto.Multisig.public_key option;
      w_rpos : int; (* delivery position at which the change was ordered *)
    }

val wal_record_position : wal_record -> int

(** A checkpoint at [ck_position] is a full dump of the server's
    deduplication and collection state plus an opaque application
    snapshot; WAL records at positions [>= ck_position] replay on top. *)
type checkpoint = {
  ck_position : int;
  ck_messages : int; (* delivered messages *)
  ck_last_msg : (Types.client_id * Types.sequence_number * Types.message) list;
  ck_dense_last : (int * int * int) list; (* first_id, agg seq, tag *)
  ck_refs : (int * int * int) list; (* delivered (broker, number, position) *)
  ck_signups : int list; (* seen sign-up nonces *)
  ck_cards : Types.keycard list;
  (* explicit directory entries in rank order: a joining server restoring
     a peer's checkpoint rebuilds its directory from these (dense
     identities are derived, not stored) *)
  ck_app : string option; (* application snapshot (App_intf hook) *)
  ck_epoch : int; (* membership epoch at ck_position *)
  ck_members : (bool * int) list; (* per-slot (active, generation) *)
}

type server_to_server =
  | Request_batch of { root : string; broker : int; number : int } (* #14 *)
  | Batch_response of { batch : Batch.t }
  | Gc_status of { delivered_counter : int }
      (* periodic gossip replacing the pseudocode's per-batch
         Collection/CollectionAccept exchange: a batch delivered at global
         position p is collectable once every server reports a counter > p
         (§5.2 batch garbage collection) *)
  | Sync_request of { from_position : int }
      (* cold-restart state transfer: send me your checkpoint (if it is
         ahead of from_position) and WAL records from there on *)
  | Sync_response of {
      position : int; (* responder's delivery counter *)
      stob_cursor : int; (* responder's STOB delivery cursor *)
      backlog : int; (* refs ordered at the responder, not yet delivered *)
      checkpoint : checkpoint option;
      records : wal_record list;
    }
