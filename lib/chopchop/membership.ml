(* Dynamic membership (ROADMAP item 5).

   The paper evaluates a static deployment; here membership is a
   first-class *ordered* command: a [change] rides the STOB as a
   {!Stob_item.Reconfigure} item, so every correct server applies the
   same change at the same position in the total order and rolls its
   active set, multisig committee and quorum thresholds forward
   deterministically.

   A deployment is created with [capacity] machine slots of which the
   first [initial] are active; the rest are spares that can [Join]
   later.  [Leave] deactivates a slot; [Replace] installs a fresh
   identity (new key generation) in an existing slot.  Thresholds are
   functions of the *active* count: f = (active - 1) / 3, quorum =
   f + 1, exactly the paper's constants evaluated against the current
   epoch's committee. *)

type change =
  | Join of int (* slot *)
  | Leave of int
  | Replace of int * int (* slot, new key generation *)

type t = {
  capacity : int;
  initial : int; (* slots [0, initial) are active at epoch 0 *)
  active : bool array;
  generation : int array;
  mutable epoch : int;
}

let create ~capacity ~initial =
  if initial <= 0 || initial > capacity then invalid_arg "Membership.create";
  { capacity; initial;
    active = Array.init capacity (fun i -> i < initial);
    generation = Array.make capacity 0;
    epoch = 0 }

let capacity t = t.capacity
let epoch t = t.epoch
let is_active t i = i >= 0 && i < t.capacity && t.active.(i)
let generation t i = t.generation.(i)

let active_count t =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.active

let active_slots t =
  List.filter (fun i -> t.active.(i)) (List.init t.capacity Fun.id)

let f t = (active_count t - 1) / 3
let quorum t = f t + 1

(* Idempotence guard: the same ordered command may reach a server twice
   (live delivery and then again through WAL replay or state transfer),
   so a change that would not alter the state is a no-op.  A [Replace]
   is fresh only if its generation is strictly newer. *)
let applies t = function
  | Join i -> i >= 0 && i < t.capacity && not t.active.(i)
  | Leave i -> is_active t i
  | Replace (i, gen) -> i >= 0 && i < t.capacity && gen > t.generation.(i)

let apply t c =
  if not (applies t c) then false
  else begin
    (match c with
     | Join i -> t.active.(i) <- true
     | Leave i -> t.active.(i) <- false
     | Replace (i, gen) ->
       t.generation.(i) <- gen;
       t.active.(i) <- true);
    t.epoch <- t.epoch + 1;
    true
  end

(* Back to the epoch-0 state — the starting point of a cold restart,
   before the checkpoint and WAL roll the membership forward again. *)
let reset t =
  for i = 0 to t.capacity - 1 do
    t.active.(i) <- i < t.initial;
    t.generation.(i) <- 0
  done;
  t.epoch <- 0

(* Checkpoint representation: epoch plus one (active, generation) pair
   per slot, in slot order. *)
let snapshot t =
  (t.epoch,
   List.init t.capacity (fun i -> (t.active.(i), t.generation.(i))))

let restore t (epoch, members) =
  List.iteri
    (fun i (a, g) ->
      if i < t.capacity then begin
        t.active.(i) <- a;
        t.generation.(i) <- g
      end)
    members;
  t.epoch <- epoch

let describe = function
  | Join i -> Printf.sprintf "join server %d" i
  | Leave i -> Printf.sprintf "leave server %d" i
  | Replace (i, gen) -> Printf.sprintf "replace server %d (gen %d)" i gen
