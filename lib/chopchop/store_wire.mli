(** Wire-format sizing for durable state and state transfer.

    Split from {!Wire} because these sizes are computed over the
    {!Proto} record types ({!Wire} itself must stay [Proto]-free to
    avoid a Wire → Proto → Batch → Wire module cycle).  Same encoding
    constants, same rules: every byte the store writes to its simulated
    device or ships to a recovering peer is priced here. *)

val wal_op_bytes : Proto.wal_op -> int
(** Post-deduplication batch outcome: (id, seqno, message) triples for
    explicit entries, four sequence numbers for a dense range. *)

val wal_record_bytes : Proto.wal_record -> int

val checkpoint_bytes : Proto.checkpoint -> int
(** Serialized snapshot size: dedup tables, delivered refs, sign-up
    nonces, directory entries and the opaque application snapshot. *)

val sync_response_bytes :
  checkpoint:Proto.checkpoint option -> records:Proto.wal_record list -> int
(** State-transfer payload — these bytes ride the regular inter-server
    links and are counted by the network model like any other traffic. *)
