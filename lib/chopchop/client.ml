module Engine = Repro_sim.Engine
module Rng = Repro_sim.Rng
module Cost = Repro_sim.Cost
module Schnorr = Repro_crypto.Schnorr
module Multisig = Repro_crypto.Multisig
module Merkle = Repro_crypto.Merkle
module Trace = Repro_trace.Trace

type config = {
  brokers : int list;
  resubmit_timeout : float;
  max_resubmit_timeout : float;
  n_servers : int;
  clients : int;
}

type in_flight = {
  fl_msg : Types.message;
  fl_seq : int; (* sequence number submitted (#2) *)
  mutable fl_adopted : int; (* aggregate sequence number adopted, >= fl_seq *)
  mutable fl_signed_roots : string list;
  fl_started : float;
}

type t = {
  engine : Engine.t;
  cfg : config;
  kp : Types.keypair;
  f : int;
  membership : Membership.t option;
      (* live committee view (shared with the deployment); [None] falls
         back to the static f derived from [config.n_servers] *)
  server_ms_pk : int -> Multisig.public_key;
  send_broker : broker:int -> bytes:int -> Proto.client_to_broker -> unit;
  on_delivered : Types.message -> latency:float -> unit;
  nonce : int;
  mutable id : Types.client_id option;
  mutable broker_idx : int;
  mutable seq : int; (* next sequence number to use *)
  mutable evidence : Certs.delivery_cert option;
  queue : Types.message Queue.t;
  mutable flight : in_flight option;
  mutable epoch : int; (* invalidates stale resubmit timers *)
  rng : Rng.t; (* private stream: jitter draws never touch engine randomness *)
  mutable backoff : float; (* current resubmission delay *)
  mutable completed : int;
  mutable crashed : bool;
  mutable bad_share : bool;
  mutable mute_reduction : bool;
  mutable signup_in_progress : bool;
  k_timer : int; (* Engine kind attributing client timer events *)
  c_verify : Trace.Counter.t; (* signature verifications (certificates) *)
}

(* Per-client jitter stream, seeded from the deployment-unique nonce.
   Shared with [Repro_workload.Cohort] so a cohort member draws exactly
   the jitter its per-client twin would. *)
let jitter_rng ~nonce =
  Rng.create
    (Int64.logxor 0x6A09E667F3BCC909L
       (Int64.mul (Int64.of_int (nonce + 1)) 0x9E3779B97F4A7C15L))

let create ~engine ~config ~keypair ?membership ~server_ms_pk ~send_broker
    ?(on_delivered = fun _ ~latency:_ -> ()) ?(nonce = 0) () =
  { engine; cfg = config; kp = keypair; f = (config.n_servers - 1) / 3;
    membership;
    server_ms_pk; send_broker; on_delivered; nonce;
    id = None; broker_idx = 0; seq = 0; evidence = None;
    queue = Queue.create (); flight = None; epoch = 0;
    rng = jitter_rng ~nonce;
    backoff = config.resubmit_timeout;
    completed = 0;
    crashed = false; bad_share = false; mute_reduction = false;
    signup_in_progress = false;
    k_timer = Engine.kind engine "client.timer";
    c_verify =
      Trace.Sink.counter (Engine.trace engine) ~cat:"crypto" ~name:"verify_ops" }

let id t = t.id
let pending t = Queue.length t.queue + match t.flight with Some _ -> 1 | None -> 0
let completed t = t.completed
let last_sequence t = t.seq - 1
let crash t = t.crashed <- true
let misbehave_bad_share t = t.bad_share <- true
let misbehave_mute_reduction t = t.mute_reduction <- true

(* Correlation id of one (client, sequence-number) message attempt: the
   same key is emitted at send time and at delivery-certificate time, so a
   message's end-to-end path can be joined from the trace alone. *)
let msg_key ~id ~seq = Hashtbl.hash (id, seq) land 0x3FFFFFFF

let tr_actor ~id = 2000 + id

(* Certificate quorum: reconfiguration changes f at the same ordered rank
   on every server, and the deployment applies the committee view shared
   with the clients at the same instant — so certificates are always
   checked against the thresholds of the epoch that produced them. *)
let cquorum t =
  match t.membership with Some m -> Membership.quorum m | None -> t.f + 1

let current_broker t = List.nth t.cfg.brokers (t.broker_idx mod List.length t.cfg.brokers)

let next_broker t = t.broker_idx <- t.broker_idx + 1

(* Fleet failover recovery: when this client's home broker comes back,
   point the rotation at the head of the preference list again and forget
   the accumulated backoff — the next submission goes home directly. *)
let rehome t =
  t.broker_idx <- 0;
  t.backoff <- t.cfg.resubmit_timeout

let msg_bytes t = match t.flight with Some fl -> String.length fl.fl_msg | None -> 8

(* Exponential backoff with deterministic seeded jitter: each retry draws
   the next delay from the client's private stream as ±25% around the
   current backoff value, then doubles it up to [max_resubmit_timeout].
   Without the jitter, every client that lost the same broker would fail
   over in lockstep and hammer the fallback broker with a synchronized
   resubmission storm. *)
let resubmit_delay t =
  let d = t.backoff in
  t.backoff <- Float.min t.cfg.max_resubmit_timeout (t.backoff *. 2.0);
  d *. (0.75 +. Rng.float t.rng 0.5)

let reset_backoff t = t.backoff <- t.cfg.resubmit_timeout

(* --- sign-up (Appx. C) ---------------------------------------------------- *)

let rec signup t =
  if t.id = None && not t.crashed then begin
    t.signup_in_progress <- true;
    t.send_broker ~broker:(current_broker t)
      ~bytes:(Wire.header_bytes + (2 * Wire.pk_bytes) + 8)
      (Signup_request { card = t.kp.card; nonce = t.nonce });
    let epoch = t.epoch in
    Engine.schedule ~kind:t.k_timer t.engine ~delay:(resubmit_delay t) (fun () ->
        if t.id = None && t.epoch = epoch && not t.crashed then begin
          next_broker t;
          signup t
        end)
  end

(* --- submission (#2) ------------------------------------------------------- *)

let rec submit t =
  match (t.flight, t.id) with
  | Some fl, Some id when not t.crashed ->
    let tsig =
      Schnorr.sign t.kp.sig_sk (Types.message_statement ~id ~seq:fl.fl_seq fl.fl_msg)
    in
    let ctx = Trace.Ctx.make ~root:(msg_key ~id ~seq:fl.fl_seq) in
    t.send_broker ~broker:(current_broker t)
      ~bytes:(Wire.submission_bytes ~clients:t.cfg.clients ~msg_bytes:(msg_bytes t))
      (Submission
         { id; seq = fl.fl_seq; msg = fl.fl_msg; tsig; evidence = t.evidence; ctx });
    let epoch = t.epoch in
    Engine.schedule ~kind:t.k_timer t.engine ~delay:(resubmit_delay t) (fun () ->
        if t.epoch = epoch && t.flight <> None && not t.crashed then begin
          (* No progress: fall back on a different broker (§4.4.2). *)
          next_broker t;
          submit t
        end)
  | _ -> ()

let launch_next t =
  if t.flight = None && not (Queue.is_empty t.queue) && t.id <> None && not t.crashed
  then begin
    let msg = Queue.pop t.queue in
    t.flight <-
      Some { fl_msg = msg; fl_seq = t.seq; fl_adopted = t.seq;
             fl_signed_roots = []; fl_started = Engine.now t.engine };
    (let s = Engine.trace t.engine in
     if Trace.enabled s then
       match t.id with
       | Some id ->
         Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor ~id)
           ~cat:"client" ~name:"send" ~id:(msg_key ~id ~seq:t.seq)
           ~attrs:[ ("seq", Trace.A_int t.seq) ]
       | None -> ());
    t.epoch <- t.epoch + 1;
    reset_backoff t;
    submit t
  end

let broadcast t msg =
  Queue.add msg t.queue;
  launch_next t

(* --- inclusion & reduction (#4–#6) ----------------------------------------- *)

let on_inclusion t ~root ~proof ~agg_seq ~evidence =
  match (t.flight, t.id) with
  | Some fl, Some id when not t.mute_reduction ->
    (* The proof must commit to exactly our payload under the aggregate
       sequence number (a forging broker fails here, §4.2). *)
    let leaf = Batch.leaf ~id ~seq:agg_seq fl.fl_msg in
    if
      Merkle.verify root ~leaf proof
      && agg_seq >= fl.fl_seq
      && (agg_seq = fl.fl_seq || Certs.legitimizes evidence agg_seq)
      && (match evidence with
          | None -> agg_seq = fl.fl_seq
          | Some e ->
            Trace.Counter.incr t.c_verify;
            Certs.verify_delivery ~server_ms_pk:t.server_ms_pk ~quorum:(cquorum t) e)
    then begin
      fl.fl_adopted <- max fl.fl_adopted agg_seq;
      fl.fl_signed_roots <- root :: fl.fl_signed_roots;
      let share =
        if t.bad_share then Multisig.forge_garbage ()
        else Multisig.sign t.kp.ms_sk (Types.reduction_statement ~root)
      in
      (* The BLS share takes [client_multisig_sign] on the t3.small's one
         core; the reduction may not depart before the signing is done. *)
      Engine.schedule ~kind:t.k_timer t.engine ~delay:Cost.client_multisig_sign (fun () ->
          match t.flight with
          | Some fl' when fl' == fl && not t.crashed ->
            t.send_broker ~broker:(current_broker t) ~bytes:Wire.reduction_bytes
              (Reduction { id; root; share })
          | Some _ | None -> ())
    end
  | _ -> ()

(* --- completion (#18–#19) --------------------------------------------------- *)

let on_deliver_cert t ~cert ~seq ~proof =
  match (t.flight, t.id) with
  | Some fl, Some id ->
    Trace.Counter.incr t.c_verify;
    if Certs.verify_delivery ~server_ms_pk:t.server_ms_pk ~quorum:(cquorum t) cert
    then begin
      (* Track the freshest legitimacy evidence regardless of whose batch
         this certifies. *)
      (match t.evidence with
       | Some e when e.Certs.counter >= cert.Certs.counter -> ()
       | Some _ | None -> t.evidence <- Some cert);
      let ours =
        match proof with
        | Some proof ->
          Merkle.verify cert.Certs.root ~leaf:(Batch.leaf ~id ~seq fl.fl_msg) proof
        | None -> false
      in
      let replayed = List.mem_assoc id cert.Certs.exceptions in
      if ours || replayed then begin
        let latency = Engine.now t.engine -. fl.fl_started in
        (let s = Engine.trace t.engine in
         if Trace.enabled s then
           Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor ~id)
             ~cat:"client" ~name:"deliver" ~id:(msg_key ~id ~seq:fl.fl_seq)
             ~attrs:
               [ ("root", Trace.A_int (Trace.key cert.Certs.root));
                 ("latency", Trace.A_float latency) ]);
        t.seq <- max t.seq (max fl.fl_adopted seq) + 1;
        t.flight <- None;
        t.epoch <- t.epoch + 1;
        t.completed <- t.completed + 1;
        t.on_delivered fl.fl_msg ~latency;
        launch_next t
      end
    end
    else
      (* Forged or sub-quorum certificate (a Byzantine broker at work):
         ignore it and let the resubmission timer route around. *)
      let s = Engine.trace t.engine in
      if Trace.enabled s then
        Trace.instant s ~now:(Engine.now t.engine) ~actor:(tr_actor ~id)
          ~cat:"client" ~name:"reject_cert" ~id:(msg_key ~id ~seq:fl.fl_seq)
  | _ -> ()

let receive t msg =
  if not t.crashed then
    match msg with
    | Proto.Inclusion { root; proof; agg_seq; evidence } ->
      on_inclusion t ~root ~proof ~agg_seq ~evidence
    | Proto.Deliver_cert { cert; seq; proof } -> on_deliver_cert t ~cert ~seq ~proof
    | Proto.Signup_response { nonce; id } ->
      if nonce = t.nonce && t.id = None then begin
        t.id <- Some id;
        t.signup_in_progress <- false;
        t.epoch <- t.epoch + 1;
        reset_backoff t;
        launch_next t
      end

let force_identity t id =
  t.id <- Some id;
  launch_next t
