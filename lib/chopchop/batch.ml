module Schnorr = Repro_crypto.Schnorr
module Multisig = Repro_crypto.Multisig
module Merkle = Repro_crypto.Merkle
module Sha256 = Repro_crypto.Sha256
module Cost = Repro_sim.Cost
module Cpu = Repro_sim.Cpu

type straggler = {
  s_id : Types.client_id;
  s_seq : Types.sequence_number;
  s_sig : Schnorr.signature;
}

type entry = { e_id : Types.client_id; e_msg : Types.message }

type dense = {
  first_id : int;
  count : int;
  msg_bytes : int;
  tag : int;
  straggler_count : int;
  straggler_sample : (Types.client_id * Schnorr.signature) array;
}

type entries = Explicit of entry array | Dense of dense

type t = {
  broker : int;
  number : int;
  entries : entries;
  agg_seq : Types.sequence_number;
  stragglers : straggler array;
  agg_sig : Multisig.signature option;
}

let count t =
  match t.entries with Explicit a -> Array.length a | Dense d -> d.count

let straggler_count t =
  match t.entries with
  | Explicit _ -> Array.length t.stragglers
  | Dense d -> d.straggler_count

let reduced_count t = count t - straggler_count t

let dense_message d id =
  (* Deterministic, cheap, and long enough for any msg_bytes. *)
  let base = Printf.sprintf "%08x%08x" (d.tag * 2654435761) (id * 40503) in
  let rec pad s = if String.length s >= d.msg_bytes then String.sub s 0 d.msg_bytes else pad (s ^ s) in
  pad base

let leaf ~id ~seq msg = Printf.sprintf "%d|%d|%s" id seq msg

let dense_straggler_seq d = d.tag
(* Dense stragglers carry their own per-round sequence number (the round
   tag), individually signed — like real clients that missed reduction. *)

let is_straggler_dense d id = id >= d.first_id + d.count - d.straggler_count

let dense_root kind d agg_seq =
  Sha256.digest
    (Printf.sprintf "dense-root|%s|%d|%d|%d|%d|%d" kind d.first_id d.count d.tag
       d.straggler_count agg_seq)

let explicit_tree ~identity t entries =
  let leaves =
    Array.map
      (fun e ->
        let seq =
          if identity then
            match
              Array.find_opt (fun s -> s.s_id = e.e_id) t.stragglers
            with
            | Some s -> s.s_seq
            | None -> t.agg_seq
          else t.agg_seq
        in
        leaf ~id:e.e_id ~seq e.e_msg)
      entries
  in
  Merkle.build leaves

let reduction_root t =
  match t.entries with
  | Explicit entries -> Merkle.root (explicit_tree ~identity:false t entries)
  | Dense d -> dense_root "reduction" d t.agg_seq

let identity_root t =
  match t.entries with
  | Explicit entries -> Merkle.root (explicit_tree ~identity:true t entries)
  | Dense d -> dense_root "identity" d t.agg_seq

let reducer_ids t =
  match t.entries with
  | Explicit entries ->
    let strag = Array.to_list t.stragglers in
    Array.to_list entries
    |> List.filter_map (fun e ->
           if List.exists (fun s -> s.s_id = e.e_id) strag then None else Some e.e_id)
  | Dense d ->
    List.init (d.count - d.straggler_count) (fun i -> d.first_id + i)

let payload_bytes_per_entry t =
  match t.entries with
  | Explicit entries ->
    if Array.length entries = 0 then 0 else String.length entries.(0).e_msg
  | Dense d -> d.msg_bytes

let wire_bytes ~clients t =
  Wire.distilled_batch_bytes ~clients ~count:(count t)
    ~msg_bytes:(payload_bytes_per_entry t) ~stragglers:(straggler_count t)

let sorted_strictly entries =
  let ok = ref true in
  for i = 1 to Array.length entries - 1 do
    if entries.(i - 1).e_id >= entries.(i).e_id then ok := false
  done;
  !ok

let verify dir t =
  match t.entries with
  | Explicit entries ->
    sorted_strictly entries
    && Array.for_all
         (fun s ->
           match Directory.find dir s.s_id with
           | None -> false
           | Some card ->
             (match Array.find_opt (fun e -> e.e_id = s.s_id) entries with
              | None -> false
              | Some e ->
                Schnorr.verify card.Types.sig_pk
                  (Types.message_statement ~id:s.s_id ~seq:s.s_seq e.e_msg)
                  s.s_sig))
         t.stragglers
    &&
    let reducers = reducer_ids t in
    (match (reducers, t.agg_sig) with
     | [], None -> true
     | [], Some _ -> false
     | _ :: _, None -> false
     | _ :: _, Some agg ->
       let pk = Directory.aggregate_ms_pks dir reducers in
       Multisig.verify pk (Types.reduction_statement ~root:(reduction_root t)) agg)
  | Dense d ->
    d.count > 0 && d.straggler_count >= 0 && d.straggler_count <= d.count
    && d.first_id >= 0
    && d.first_id + d.count <= Directory.dense_count dir
    (* Sample of straggler signatures is genuinely checked. *)
    && Array.for_all
         (fun (id, s) ->
           is_straggler_dense d id
           &&
           match Directory.find dir id with
           | None -> false
           | Some card ->
             Schnorr.verify card.Types.sig_pk
               (Types.message_statement ~id ~seq:(dense_straggler_seq d)
                  (dense_message d id))
               s)
         d.straggler_sample
    &&
    let reduced = d.count - d.straggler_count in
    (match t.agg_sig with
     | None -> reduced = 0
     | Some agg ->
       reduced > 0
       &&
       let pk = Directory.aggregate_ms_pks_range dir ~first:d.first_id ~count:reduced in
       Multisig.verify pk (Types.reduction_statement ~root:(reduction_root t)) agg)

(* The full well-formedness check.  For a fully distilled 65,536-message
   batch this matches the paper's §3.2 anchor (2.19 ms per batch: public
   key aggregation dominates; root recomputation and sortedness ride
   within the measured figure), degrading to the classic 61.7 ms anchor
   when every entry is a straggler. *)
let witness_cpu_work t =
  let n = count t and s = straggler_count t and r = reduced_count t in
  let msg = payload_bytes_per_entry t in
  Cpu.work
    ~parallel:
      (Cost.ed25519_batch_verify s
      +. (if r > 0 then Cost.bls_aggregate_pks r else 0.)
      +. (float_of_int (n * (msg + 4)) *. Cost.serialize_per_byte))
    ~serial:(if r > 0 then Cost.bls_verify else 0.)

let non_witness_cpu_work t =
  let n = count t in
  let msg = payload_bytes_per_entry t in
  Cpu.work
    ~serial:Cost.bls_verify (* witness certificate check: one pairing *)
    ~parallel:
      ((float_of_int n *. Cost.dedup_per_message)
      +. (float_of_int (n * (msg + 4)) *. Cost.serialize_per_byte))

let make_explicit ~broker ~number ~entries ~agg_seq ~stragglers ~agg_sig =
  if not (sorted_strictly entries) then
    invalid_arg "Batch.make_explicit: entries must be sorted strictly by id";
  let stragglers = Array.copy stragglers in
  Array.sort (fun a b -> Int.compare a.s_id b.s_id) stragglers;
  { broker; number; entries = Explicit entries; agg_seq; stragglers; agg_sig }

let forge_dense dir ~broker ~number ~first_id ~count ~msg_bytes ~tag ~straggler_count =
  if straggler_count < 0 || straggler_count > count then
    invalid_arg "Batch.forge_dense: bad straggler_count";
  let reduced = count - straggler_count in
  let d0 =
    { first_id; count; msg_bytes; tag; straggler_count; straggler_sample = [||] }
  in
  (* Sequence numbers advance with the round tag so replayed ranges stay
     fresh: the aggregate sequence number is the tag itself. *)
  let agg_seq = tag in
  let sample_size = min straggler_count 16 in
  let sample =
    Array.init sample_size (fun i ->
        let id = first_id + count - 1 - i in
        let kp = Directory.dense_keypair id in
        let msg = dense_message d0 id in
        ( id,
          Schnorr.sign kp.Types.sig_sk
            (Types.message_statement ~id ~seq:(dense_straggler_seq d0) msg) ))
  in
  let d = { d0 with straggler_sample = sample } in
  let t =
    { broker; number; entries = Dense d; agg_seq; stragglers = [||]; agg_sig = None }
  in
  let agg_sig =
    if reduced = 0 then None
    else begin
      let agg_sk = Directory.aggregate_dense_ms_sks_range dir ~first:first_id ~count:reduced in
      Some (Multisig.sign agg_sk (Types.reduction_statement ~root:(reduction_root t)))
    end
  in
  { t with agg_sig }
