(** Engine self-profiler.

    A write-only observer over {!Repro_sim.Engine} dispatch: per-kind
    event counts, handler self wall-time, GC minor-allocation deltas, and
    queue depth / dwell histograms.  Attaching it never schedules events,
    never reads the engine RNG, and never feeds a reading back into the
    simulation, so a same-seed run is bit-identical with profiling on or
    off (proved by [test/test_prof.ml]).

    Wall-time readings are machine-dependent; everything else (event and
    kind counters, queue/dwell histograms, max depth) is deterministic
    for a fixed seed.  Minor-word deltas are deterministic across runs of
    the same binary — the OCaml allocator is — but are reported
    separately from the gated counters because they track compiler
    version, not protocol behaviour. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic wall clock, seconds ([Monotonic_clock.now] /1e9) — immune
      to NTP steps. *)
end

type t
(** A collector attached to one engine. *)

val attach : Repro_sim.Engine.t -> t
(** Install the profiler on the engine (replacing any previous one).
    Collection starts immediately. *)

val detach : t -> unit
(** Remove the profiler; the collected data remains readable. *)

(** {2 Reports} *)

type row = {
  r_kind : string;
  r_events : int;
  r_wall_s : float;
  r_minor_words : float;
}

type hist = {
  h_count : int;
  h_mean : float;
  h_max : float;
  h_p50 : float;
  h_p99 : float;
}

type report = {
  p_events : int;
  p_wall_s : float;
  p_minor_words : float;
  p_rows : row list; (* per-kind, sorted by kind name *)
  p_depth : hist; (* queue depth at dispatch *)
  p_dwell : hist; (* sim-time dwell (scheduling -> execution) *)
  p_max_pending : int;
}

val report : t -> report

val attributed_share : report -> float
(** Fraction of handler wall-time attributed to named kinds (everything
    but the ["other"] bucket); 1.0 when no wall-time was recorded. *)

val to_json : ?wall:bool -> report -> Repro_metrics.Json.t
(** [{"deterministic": {...}, "wall": {...}}].  The [deterministic]
    object is identical across same-seed runs (CI byte-compares it);
    [wall:false] (default true) omits the machine-dependent half. *)

val deterministic_json : report -> Repro_metrics.Json.t
(** Just the [deterministic] object of {!to_json} — safe to embed in
    sweep cell files without breaking byte-identical resume. *)

val pp_markdown : Format.formatter -> report -> unit
(** Human-readable report: headline totals plus a per-kind table sorted
    by wall-time (handler top-N). *)
