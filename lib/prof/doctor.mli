(** Runtime health doctor.

    A delivery-progress watchdog over a {!Repro_chopchop.Deployment}: a
    periodic sim-time tick samples a caller-supplied progress counter,
    and when it stops advancing before the expected total is reached, the
    doctor assembles a structured {!diagnosis} from the deployment's
    existing probes — broker pool depth, server order-queue depth, CPU
    lane backlog, disk queue, partition state, and quorum/committee
    health under membership churn.

    The watchdog's ticks are ordinary engine events: they shift event
    sequence numbers but schedule nothing protocol-visible and never
    touch the RNG, so deliveries, invariants and verdicts are unchanged.
    (The {!Prof} profiler, by contrast, adds no events at all.) *)

type backlog = { b_site : string; b_value : float }

type diagnosis = {
  d_reason : string; (* "stall" | "incomplete" | "invariant" *)
  d_sim_time : float;
  d_progress : int;
  d_expected : int;
  d_last_progress_at : float;
  d_phase : string; (* one-line verdict: where delivery is stuck *)
  d_partition : int list list option;
  d_down_servers : int list;
  d_catching_up : int list;
  d_epoch : int;
  d_active_servers : int;
  d_quorum : int;
  d_backlogs : backlog list; (* deepest first *)
  d_hottest_broker : (int * int) option;
      (* (broker, clients homed) — present only when the deployment runs
         a lib/fleet partitioned broker roster *)
  d_admission_rejects : (int * int) list;
      (* per-broker fair-admission rejects summed across servers, sorted
         by broker; empty when fair admission is off *)
}

val diagnose :
  Repro_chopchop.Deployment.t ->
  progress:int ->
  expected:int ->
  last_progress_at:float ->
  reason:string ->
  diagnosis
(** Assemble a diagnosis right now, watchdog or not (post-mortem on an
    incomplete or invariant-violating run).  Phase precedence: active
    partition, then lost quorum (connected active servers < quorum),
    then the deepest non-empty backlog site, then idle. *)

type t

val default_period : float
(** 5 simulated seconds between ticks. *)

val default_stall_after : float
(** 25 simulated seconds without progress before the watchdog fires. *)

val watch :
  ?period:float ->
  ?stall_after:float ->
  ?until:float ->
  ?on_stall:(diagnosis -> unit) ->
  Repro_chopchop.Deployment.t ->
  progress:(unit -> int) ->
  expected:int ->
  unit ->
  t
(** Arm the watchdog: every [period] sim-seconds, sample [progress ()];
    if it has not advanced for [stall_after] sim-seconds while still
    below [expected], record a stall diagnosis and call [on_stall]
    (once).  The tick stops at [until] if given. *)

val stalled : t -> diagnosis option
(** The stall diagnosis, if the watchdog fired. *)

val last_progress_at : t -> float
(** Sim time the progress counter last advanced (run-end post-mortems). *)

val pp : Format.formatter -> diagnosis -> unit
(** Markdown-ish human-readable rendering. *)

val to_json : diagnosis -> Repro_metrics.Json.t
