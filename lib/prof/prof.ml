module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Json = Repro_metrics.Json

module Clock = struct
  (* bechamel's monotonic clock: CLOCK_MONOTONIC nanoseconds as int64.
     Immune to NTP steps, unlike Unix.gettimeofday. *)
  let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
end

(* Per-kind accumulation bins.  Flat arrays indexed by the engine's
   interned kind ids; grown on demand (kind ids only ever increase). *)
type t = {
  engine : Engine.t;
  mutable n : int array; (* events dispatched *)
  mutable wall : float array; (* self wall-time, seconds *)
  mutable minor : float array; (* minor-heap words allocated *)
  depth : Trace.Hist.t; (* queue depth at dispatch *)
  dwell : Trace.Hist.t; (* sim-time scheduling-to-execution delay *)
  mutable events : int;
  mutable total_wall : float;
  mutable total_minor : float;
  mutable attached : bool;
}

let ensure t kind =
  let len = Array.length t.n in
  if kind >= len then begin
    let len' = max (2 * len) (kind + 1) in
    let grow a z =
      let b = Array.make len' z in
      Array.blit a 0 b 0 len;
      b
    in
    t.n <- grow t.n 0;
    t.wall <- grow t.wall 0.;
    t.minor <- grow t.minor 0.
  end

let attach engine =
  let t =
    { engine;
      n = Array.make 64 0;
      wall = Array.make 64 0.;
      minor = Array.make 64 0.;
      depth = Trace.Hist.create ();
      dwell = Trace.Hist.create ();
      events = 0; total_wall = 0.; total_minor = 0.;
      attached = true }
  in
  Engine.set_profiler engine
    (Some
       { Engine.prof_clock = Clock.now;
         prof_record =
           (fun ~kind ~wall ~minor ~dwell ~depth ->
             ensure t kind;
             t.n.(kind) <- t.n.(kind) + 1;
             t.wall.(kind) <- t.wall.(kind) +. wall;
             t.minor.(kind) <- t.minor.(kind) +. minor;
             t.events <- t.events + 1;
             t.total_wall <- t.total_wall +. wall;
             t.total_minor <- t.total_minor +. minor;
             Trace.Hist.add t.depth (float_of_int depth);
             Trace.Hist.add t.dwell dwell) });
  t

let detach t =
  if t.attached then begin
    Engine.set_profiler t.engine None;
    t.attached <- false
  end

(* --- reports -------------------------------------------------------------- *)

type row = {
  r_kind : string;
  r_events : int;
  r_wall_s : float;
  r_minor_words : float;
}

type hist = {
  h_count : int;
  h_mean : float;
  h_max : float;
  h_p50 : float;
  h_p99 : float;
}

type report = {
  p_events : int; (* dispatched events observed *)
  p_wall_s : float; (* total self wall-time across handlers *)
  p_minor_words : float; (* total minor-heap allocation, words *)
  p_rows : row list; (* per-kind, sorted by kind name *)
  p_depth : hist; (* queue depth at dispatch *)
  p_dwell : hist; (* sim-time dwell (scheduling -> execution) *)
  p_max_pending : int; (* queue high-water mark *)
}

let snap_hist h =
  if Trace.Hist.count h = 0 then
    { h_count = 0; h_mean = 0.; h_max = 0.; h_p50 = 0.; h_p99 = 0. }
  else
    { h_count = Trace.Hist.count h;
      h_mean = Trace.Hist.mean h;
      h_max = Trace.Hist.max h;
      h_p50 = Trace.Hist.percentile h 0.50;
      h_p99 = Trace.Hist.percentile h 0.99 }

let report t =
  let names = Engine.kinds t.engine in
  let rows = ref [] in
  Array.iteri
    (fun kind name ->
      if kind < Array.length t.n && t.n.(kind) > 0 then
        rows :=
          { r_kind = name;
            r_events = t.n.(kind);
            r_wall_s = t.wall.(kind);
            r_minor_words = t.minor.(kind) }
          :: !rows)
    names;
  let rows = List.sort (fun a b -> compare a.r_kind b.r_kind) !rows in
  { p_events = t.events;
    p_wall_s = t.total_wall;
    p_minor_words = t.total_minor;
    p_rows = rows;
    p_depth = snap_hist t.depth;
    p_dwell = snap_hist t.dwell;
    p_max_pending = Engine.max_pending t.engine }

let attributed_share r =
  if r.p_wall_s <= 0. then 1.
  else
    let named =
      List.fold_left
        (fun acc row -> if row.r_kind = "other" then acc else acc +. row.r_wall_s)
        0. r.p_rows
    in
    named /. r.p_wall_s

(* --- rendering ------------------------------------------------------------ *)

let hist_json h =
  Json.Obj
    [ ("count", Json.Num (float_of_int h.h_count));
      ("mean", Json.Num h.h_mean);
      ("max", Json.Num h.h_max);
      ("p50", Json.Num h.h_p50);
      ("p99", Json.Num h.h_p99) ]

(* The JSON report is split into a [deterministic] object — identical
   across same-seed runs, byte-compared by CI — and a [wall] object with
   the machine-dependent readings.  [wall:false] omits the latter. *)
let to_json ?(wall = true) r =
  let det =
    Json.Obj
      [ ("events", Json.Num (float_of_int r.p_events));
        ("minor_words", Json.Num r.p_minor_words);
        ("max_queue_depth", Json.Num (float_of_int r.p_max_pending));
        ("queue_depth", hist_json r.p_depth);
        ("dwell_s", hist_json r.p_dwell);
        ( "kinds",
          Json.List
            (List.map
               (fun row ->
                 Json.Obj
                   [ ("kind", Json.Str row.r_kind);
                     ("events", Json.Num (float_of_int row.r_events));
                     ("minor_words", Json.Num row.r_minor_words) ])
               r.p_rows) ) ]
  in
  let base = [ ("deterministic", det) ] in
  let fields =
    if not wall then base
    else
      base
      @ [ ( "wall",
            Json.Obj
              [ ("wall_s", Json.Num r.p_wall_s);
                ("attributed_share", Json.Num (attributed_share r));
                ( "kinds",
                  Json.List
                    (List.map
                       (fun row ->
                         Json.Obj
                           [ ("kind", Json.Str row.r_kind);
                             ("wall_s", Json.Num row.r_wall_s) ])
                       r.p_rows) ) ] ) ]
  in
  Json.Obj fields

(* Deterministic-only fields as a flat metrics-style object, for embedding
   in sweep cell files without breaking byte-identical resume. *)
let deterministic_json r =
  match to_json ~wall:false r with
  | Json.Obj [ ("deterministic", det) ] -> det
  | _ -> assert false

let pp_markdown ppf r =
  let pf fmt = Format.fprintf ppf fmt in
  pf "## Engine profile@.@.";
  pf "- events dispatched: %d@." r.p_events;
  pf "- handler self wall-time: %.6f s (%.1f%% attributed to named kinds)@."
    r.p_wall_s (100. *. attributed_share r);
  pf "- minor allocation: %.0f words (%.1f words/event)@." r.p_minor_words
    (if r.p_events = 0 then 0. else r.p_minor_words /. float_of_int r.p_events);
  pf "- queue depth: mean %.0f, p99 %.0f, max %d@." r.p_depth.h_mean
    r.p_depth.h_p99 r.p_max_pending;
  pf "- sim-time dwell: mean %.4f s, p99 %.4f s@.@." r.p_dwell.h_mean
    r.p_dwell.h_p99;
  pf "| kind | events | wall s | wall %% | minor words | ns/event |@.";
  pf "|---|---|---|---|---|---|@.";
  let by_wall =
    List.sort (fun a b -> compare b.r_wall_s a.r_wall_s) r.p_rows
  in
  List.iter
    (fun row ->
      pf "| %s | %d | %.6f | %.1f | %.0f | %.0f |@." row.r_kind row.r_events
        row.r_wall_s
        (if r.p_wall_s <= 0. then 0. else 100. *. row.r_wall_s /. r.p_wall_s)
        row.r_minor_words
        (if row.r_events = 0 then 0.
         else 1e9 *. row.r_wall_s /. float_of_int row.r_events))
    by_wall
