module Engine = Repro_sim.Engine
module Cpu = Repro_sim.Cpu
module D = Repro_chopchop.Deployment
module Membership = Repro_chopchop.Membership
module Server = Repro_chopchop.Server
module Broker = Repro_chopchop.Broker
module Json = Repro_metrics.Json

type backlog = { b_site : string; b_value : float }

type diagnosis = {
  d_reason : string; (* "stall" | "incomplete" | "invariant" *)
  d_sim_time : float;
  d_progress : int;
  d_expected : int;
  d_last_progress_at : float;
  d_phase : string; (* one-line verdict: where delivery is stuck *)
  d_partition : int list list option;
  d_down_servers : int list;
  d_catching_up : int list;
  d_epoch : int;
  d_active_servers : int;
  d_quorum : int;
  d_backlogs : backlog list; (* deepest first *)
  d_hottest_broker : (int * int) option; (* (broker, clients homed), fleet only *)
  d_admission_rejects : (int * int) list; (* per-broker fair-admission rejects *)
}

(* --- probes --------------------------------------------------------------- *)

let max_over n f =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let v = f i in
    if v > !acc then acc := v
  done;
  !acc

let probe_backlogs d =
  let cfg = D.config d in
  (* Live count: fleets grown past the config (add_broker) still get
     probed in full. *)
  let n_servers = cfg.D.n_servers and n_brokers = D.n_brokers d in
  let servers = D.servers d in
  let sites =
    [ ( "broker.pool",
        max_over n_brokers (fun i ->
            float_of_int (Broker.pool_depth (D.broker d i))) );
      ( "broker.batches_in_flight",
        max_over n_brokers (fun i ->
            float_of_int (Broker.batches_in_flight (D.broker d i))) );
      ( "broker.cpu_backlog_s",
        max_over n_brokers (fun i -> Cpu.backlog (D.broker_cpu d i)) );
      ( "server.order_queue",
        max_over n_servers (fun i ->
            float_of_int (Server.order_queue_depth servers.(i))) );
      ( "server.cpu_backlog_s",
        max_over n_servers (fun i -> D.server_cpu_backlog d i) );
      ( "server.disk_backlog_s",
        max_over n_servers (fun i -> D.server_disk_backlog d i) );
      ( "engine.queue",
        float_of_int (Engine.pending (D.engine d)) ) ]
  in
  let sites = List.map (fun (s, v) -> { b_site = s; b_value = v }) sites in
  List.sort (fun a b -> compare b.b_value a.b_value) sites

let diagnose d ~progress ~expected ~last_progress_at ~reason =
  let cfg = D.config d in
  let n_servers = cfg.D.n_servers in
  let m = D.membership d in
  let active = Membership.active_count m in
  let quorum = Membership.quorum m in
  let down = ref [] and catching = ref [] in
  for i = D.capacity d - 1 downto 0 do
    if i < n_servers || Membership.is_active m i then begin
      if not (D.server_connected d i) then down := i :: !down;
      if D.server_catching_up d i then catching := i :: !catching
    end
  done;
  let partition = D.partition_groups d in
  let backlogs = probe_backlogs d in
  let up_active =
    let c = ref 0 in
    for i = 0 to D.capacity d - 1 do
      if Membership.is_active m i && D.server_connected d i then incr c
    done;
    !c
  in
  let hottest = D.fleet_hottest d in
  let rejects = D.admission_rejects d in
  let phase =
    match partition with
    | Some groups ->
      Printf.sprintf "network partitioned (%d explicit group(s)), unhealed"
        (List.length groups)
    | None ->
      if up_active < quorum then
        Printf.sprintf "quorum lost: %d of %d active servers up, need %d"
          up_active active quorum
      else begin
        match backlogs with
        | b :: _ when b.b_value > 0. && b.b_site <> "engine.queue" ->
          (* A fleet makes the backlog nameable: say which partition is
             hot, not just which site is deep. *)
          let fleet_note =
            match hottest with
            | Some (broker, clients)
              when String.length b.b_site >= 6
                   && String.sub b.b_site 0 6 = "broker" ->
              Printf.sprintf "; hottest broker %d (%d clients homed)" broker
                clients
            | _ -> ""
          in
          Printf.sprintf "deepest backlog at %s (%.1f)%s" b.b_site b.b_value
            fleet_note
        | _ -> "idle: no backlog anywhere, load never arrived or already drained"
      end
  in
  { d_reason = reason;
    d_sim_time = Engine.now (D.engine d);
    d_progress = progress;
    d_expected = expected;
    d_last_progress_at = last_progress_at;
    d_phase = phase;
    d_partition = partition;
    d_down_servers = !down;
    d_catching_up = !catching;
    d_epoch = Membership.epoch m;
    d_active_servers = active;
    d_quorum = quorum;
    d_backlogs = backlogs;
    d_hottest_broker = hottest;
    d_admission_rejects = rejects }

(* --- the watchdog --------------------------------------------------------- *)

type t = {
  deployment : D.t;
  progress : unit -> int;
  expected : int;
  stall_after : float;
  on_stall : diagnosis -> unit;
  mutable last_progress : int;
  mutable last_change : float;
  mutable fired : diagnosis option;
}

let default_period = 5.0
let default_stall_after = 25.0

let check w =
  let p = w.progress () in
  let now = Engine.now (D.engine w.deployment) in
  if p <> w.last_progress then begin
    w.last_progress <- p;
    w.last_change <- now
  end
  else if
    p < w.expected
    && now -. w.last_change >= w.stall_after
    && w.fired = None
  then begin
    let di =
      diagnose w.deployment ~progress:p ~expected:w.expected
        ~last_progress_at:w.last_change ~reason:"stall"
    in
    w.fired <- Some di;
    w.on_stall di
  end

let watch ?(period = default_period) ?(stall_after = default_stall_after)
    ?until ?(on_stall = fun _ -> ()) d ~progress ~expected () =
  let engine = D.engine d in
  let w =
    { deployment = d; progress; expected; stall_after; on_stall;
      last_progress = progress ();
      last_change = Engine.now engine;
      fired = None }
  in
  (* The watchdog's ticks are engine events: they shift event sequence
     numbers but schedule nothing protocol-visible and never touch the
     RNG, so deliveries and verdicts are unchanged.  (The *profiler* adds
     no events at all; only the doctor has this footprint.) *)
  let kind = Engine.kind engine "doctor.watch" in
  (* ~inclusive:false: a check firing exactly at [until] would diagnose
     the torn-down world (watched component already stopped) as a stall. *)
  Engine.every ~kind ~inclusive:false engine ~period ?until (fun () -> check w);
  w

let stalled w = w.fired

let last_progress_at w = w.last_change

(* --- rendering ------------------------------------------------------------ *)

let groups_to_string groups =
  String.concat " | "
    (List.map
       (fun g -> String.concat "," (List.map string_of_int g))
       groups)

let pp ppf d =
  let pf fmt = Format.fprintf ppf fmt in
  pf "## Doctor diagnosis (%s)@.@." d.d_reason;
  pf "- sim time: %.2f s; progress %d/%d (last advanced at %.2f s)@."
    d.d_sim_time d.d_progress d.d_expected d.d_last_progress_at;
  pf "- stalled phase: %s@." d.d_phase;
  (match d.d_partition with
   | Some groups -> pf "- partition: groups [%s]@." (groups_to_string groups)
   | None -> pf "- partition: none@.");
  pf "- membership: epoch %d, %d active servers, quorum %d@." d.d_epoch
    d.d_active_servers d.d_quorum;
  (match d.d_down_servers with
   | [] -> ()
   | l ->
     pf "- down servers: %s@."
       (String.concat "," (List.map string_of_int l)));
  (match d.d_catching_up with
   | [] -> ()
   | l ->
     pf "- catching up: %s@." (String.concat "," (List.map string_of_int l)));
  (match d.d_hottest_broker with
   | Some (broker, clients) ->
     pf "- fleet: hottest broker %d with %d clients homed@." broker clients
   | None -> ());
  (match d.d_admission_rejects with
   | [] -> ()
   | l ->
     pf "- admission rejects (broker:count): %s@."
       (String.concat " "
          (List.map (fun (b, n) -> Printf.sprintf "%d:%d" b n) l)));
  pf "- backlogs (deepest first):@.";
  List.iter
    (fun b ->
      if b.b_value > 0. then pf "    %-26s %.2f@." b.b_site b.b_value)
    d.d_backlogs;
  if List.for_all (fun b -> b.b_value <= 0.) d.d_backlogs then
    pf "    (all empty)@."

let to_json d =
  Json.Obj
    [ ("reason", Json.Str d.d_reason);
      ("sim_time_s", Json.Num d.d_sim_time);
      ("progress", Json.Num (float_of_int d.d_progress));
      ("expected", Json.Num (float_of_int d.d_expected));
      ("last_progress_at_s", Json.Num d.d_last_progress_at);
      ("phase", Json.Str d.d_phase);
      ( "partition",
        match d.d_partition with
        | None -> Json.Null
        | Some groups ->
          Json.List
            (List.map
               (fun g ->
                 Json.List (List.map (fun n -> Json.Num (float_of_int n)) g))
               groups) );
      ( "down_servers",
        Json.List
          (List.map (fun n -> Json.Num (float_of_int n)) d.d_down_servers) );
      ( "catching_up",
        Json.List
          (List.map (fun n -> Json.Num (float_of_int n)) d.d_catching_up) );
      ("epoch", Json.Num (float_of_int d.d_epoch));
      ("active_servers", Json.Num (float_of_int d.d_active_servers));
      ("quorum", Json.Num (float_of_int d.d_quorum));
      ( "backlogs",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [ ("site", Json.Str b.b_site); ("value", Json.Num b.b_value) ])
             d.d_backlogs) );
      ( "hottest_broker",
        match d.d_hottest_broker with
        | None -> Json.Null
        | Some (broker, clients) ->
          Json.Obj
            [ ("broker", Json.Num (float_of_int broker));
              ("clients", Json.Num (float_of_int clients)) ] );
      ( "admission_rejects",
        Json.List
          (List.map
             (fun (b, n) ->
               Json.Obj
                 [ ("broker", Json.Num (float_of_int b));
                   ("rejects", Json.Num (float_of_int n)) ])
             d.d_admission_rejects) ) ]
