(** Arrival-process generators for realistic and adversarial load shapes.

    The paper evaluates under steady open-loop load (§6.2); these add
    heavy-tailed (Pareto) and time-of-day (diurnal) arrivals plus a
    generic driver, used by the flash-crowd chaos scenarios and the
    reconfiguration-under-load experiment. *)

type arrival =
  | Poisson of { rate : float }  (** memoryless, mean [rate] arrivals/s *)
  | Pareto of { rate : float; alpha : float }
      (** heavy-tailed inter-arrival gaps with mean [1/rate]; [alpha]
          close to 1 maximises burstiness (clamped to >= 1.05 where the
          mean exists) *)
  | Diurnal of { base : float; peak : float; period : float }
      (** sinusoidal rate swinging \[base, peak\] over [period] seconds *)

val describe : arrival -> string

val mean_rate : arrival -> float
(** Long-run arrivals per second. *)

val rate_at : arrival -> now:float -> float
(** Instantaneous rate at simulated time [now]. *)

val gap : arrival -> rng:Repro_sim.Rng.t -> float
(** One inter-arrival gap (for Diurnal: the peak-rate envelope gap; pair
    with {!accept} thinning). *)

val accept : arrival -> rng:Repro_sim.Rng.t -> now:float -> bool
(** Thinning acceptance for the arrival drawn by {!gap}. *)

val drive :
  ?kind:int ->
  engine:Repro_sim.Engine.t ->
  rng:Repro_sim.Rng.t ->
  arrival:arrival ->
  ?until:float ->
  fire:(unit -> unit) ->
  unit ->
  unit
(** Schedule [fire] once per arrival of the process, stopping after
    [until] (simulated seconds) if given.  Deterministic for a fixed rng
    state.  [kind] is an interned {!Repro_sim.Engine.kind} attributing the
    arrival events for the profiler. *)
