(* Flat-array client cohort: thousands of thin clients behind one state
   machine.

   Each member owns a real network node and reliable-UDP channels
   (through {!Repro_chopchop.Deployment.add_thin_client}), so wire and
   byte accounting are exactly those of the per-client model; what the
   cohort replaces is the per-[Client.t] record/closure/queue heap
   footprint with member-indexed flat arrays.  Every protocol step —
   submission, resubmission backoff and jitter draws, reduction signing
   delay, certificate verification order, trace instants and counter
   increments — mirrors [Repro_chopchop.Client] operation for operation,
   so a same-seed cohort run is bit-identical to the per-client run it
   stands in for (pinned by test).  The only dropped state is the
   client's write-only [fl_signed_roots] log.

   Members carry dense (pre-provisioned) identities and never sign up,
   crash or misbehave; use {!Deployment.add_client} for fault-injection
   experiments. *)

module Engine = Repro_sim.Engine
module Rng = Repro_sim.Rng
module Cost = Repro_sim.Cost
module Schnorr = Repro_crypto.Schnorr
module Multisig = Repro_crypto.Multisig
module Merkle = Repro_crypto.Merkle
module Trace = Repro_trace.Trace
module D = Repro_chopchop.Deployment
module Client = Repro_chopchop.Client
module Types = Repro_chopchop.Types
module Certs = Repro_chopchop.Certs
module Proto = Repro_chopchop.Proto
module Wire = Repro_chopchop.Wire
module Batch = Repro_chopchop.Batch
module Directory = Repro_chopchop.Directory
module Membership = Repro_chopchop.Membership

type t = {
  engine : Engine.t;
  members : int;
  resubmit_timeout : float;
  max_resubmit_timeout : float;
  wire_clients : int; (* directory size, for wire arithmetic *)
  membership : Membership.t;
  server_ms_pk : int -> Multisig.public_key;
  on_delivered : int -> Types.message -> latency:float -> unit;
  (* per-member state, member-indexed flat arrays *)
  ids : int array; (* dense identity *)
  kps : Types.keypair array;
  brokers : int array array; (* preference order *)
  send : (broker:int -> bytes:int -> Proto.client_to_broker -> unit) array;
  broker_idx : int array;
  seq : int array; (* next sequence number to use *)
  epoch : int array; (* invalidates stale resubmit/reduction timers *)
  backoff : float array; (* current resubmission delay *)
  rngs : Rng.t array; (* private jitter streams ([Client.jitter_rng]) *)
  evidence : Certs.delivery_cert option array;
  queues : Types.message Queue.t array;
  (* the in-flight record, flattened; [fl_active] gates the rest *)
  fl_active : bool array;
  fl_msg : Types.message array;
  fl_seq : int array;
  fl_adopted : int array;
  fl_started : float array;
  completed : int array;
  k_timer : int;
  c_verify : Trace.Counter.t;
}

let members t = t.members
let id t m = t.ids.(m)

let pending t m =
  Queue.length t.queues.(m) + if t.fl_active.(m) then 1 else 0

let completed t m = t.completed.(m)

let completed_total t = Array.fold_left ( + ) 0 t.completed

let quorum t = Membership.quorum t.membership

let current_broker t m =
  let bs = t.brokers.(m) in
  bs.(t.broker_idx.(m) mod Array.length bs)

let next_broker t m = t.broker_idx.(m) <- t.broker_idx.(m) + 1

(* Same backoff-and-jitter draw as [Client.resubmit_delay], against the
   member's private stream. *)
let resubmit_delay t m =
  let d = t.backoff.(m) in
  t.backoff.(m) <- Float.min t.max_resubmit_timeout (t.backoff.(m) *. 2.0);
  d *. (0.75 +. Rng.float t.rngs.(m) 0.5)

(* --- submission (#2) ------------------------------------------------------- *)

let rec submit t m =
  if t.fl_active.(m) then begin
    let id = t.ids.(m) in
    let fl_seq = t.fl_seq.(m) and fl_msg = t.fl_msg.(m) in
    let tsig =
      Schnorr.sign t.kps.(m).Types.sig_sk
        (Types.message_statement ~id ~seq:fl_seq fl_msg)
    in
    let ctx = Trace.Ctx.make ~root:(Client.msg_key ~id ~seq:fl_seq) in
    t.send.(m) ~broker:(current_broker t m)
      ~bytes:
        (Wire.submission_bytes ~clients:t.wire_clients
           ~msg_bytes:(String.length fl_msg))
      (Proto.Submission
         { id; seq = fl_seq; msg = fl_msg; tsig; evidence = t.evidence.(m); ctx });
    let epoch = t.epoch.(m) in
    Engine.schedule ~kind:t.k_timer t.engine ~delay:(resubmit_delay t m)
      (fun () ->
        if t.epoch.(m) = epoch && t.fl_active.(m) then begin
          (* No progress: fall back on a different broker (§4.4.2). *)
          next_broker t m;
          submit t m
        end)
  end

let launch_next t m =
  if (not t.fl_active.(m)) && not (Queue.is_empty t.queues.(m)) then begin
    let msg = Queue.pop t.queues.(m) in
    let seq = t.seq.(m) in
    t.fl_active.(m) <- true;
    t.fl_msg.(m) <- msg;
    t.fl_seq.(m) <- seq;
    t.fl_adopted.(m) <- seq;
    t.fl_started.(m) <- Engine.now t.engine;
    (let s = Engine.trace t.engine in
     if Trace.enabled s then
       let id = t.ids.(m) in
       Trace.instant s ~now:(Engine.now t.engine)
         ~actor:(Client.tr_actor ~id) ~cat:"client" ~name:"send"
         ~id:(Client.msg_key ~id ~seq)
         ~attrs:[ ("seq", Trace.A_int seq) ]);
    t.epoch.(m) <- t.epoch.(m) + 1;
    t.backoff.(m) <- t.resubmit_timeout;
    submit t m
  end

let broadcast t m msg =
  Queue.add msg t.queues.(m);
  launch_next t m

(* --- inclusion & reduction (#4–#6) ----------------------------------------- *)

let on_inclusion t m ~root ~proof ~agg_seq ~evidence =
  if t.fl_active.(m) then begin
    let id = t.ids.(m) in
    let leaf = Batch.leaf ~id ~seq:agg_seq t.fl_msg.(m) in
    if
      Merkle.verify root ~leaf proof
      && agg_seq >= t.fl_seq.(m)
      && (agg_seq = t.fl_seq.(m) || Certs.legitimizes evidence agg_seq)
      && (match evidence with
          | None -> agg_seq = t.fl_seq.(m)
          | Some e ->
            Trace.Counter.incr t.c_verify;
            Certs.verify_delivery ~server_ms_pk:t.server_ms_pk
              ~quorum:(quorum t) e)
    then begin
      if agg_seq > t.fl_adopted.(m) then t.fl_adopted.(m) <- agg_seq;
      let share = Multisig.sign t.kps.(m).Types.ms_sk (Types.reduction_statement ~root) in
      (* Same signing-time gate as the per-client model: the reduction
         may not depart before the BLS share is computed.  The epoch
         guard replaces [Client]'s physical-equality flight check. *)
      let epoch = t.epoch.(m) in
      Engine.schedule ~kind:t.k_timer t.engine ~delay:Cost.client_multisig_sign
        (fun () ->
          if t.fl_active.(m) && t.epoch.(m) = epoch then
            t.send.(m) ~broker:(current_broker t m) ~bytes:Wire.reduction_bytes
              (Proto.Reduction { id; root; share }))
    end
  end

(* --- completion (#18–#19) --------------------------------------------------- *)

let on_deliver_cert t m ~cert ~seq ~proof =
  if t.fl_active.(m) then begin
    let id = t.ids.(m) in
    Trace.Counter.incr t.c_verify;
    if Certs.verify_delivery ~server_ms_pk:t.server_ms_pk ~quorum:(quorum t) cert
    then begin
      (match t.evidence.(m) with
       | Some e when e.Certs.counter >= cert.Certs.counter -> ()
       | Some _ | None -> t.evidence.(m) <- Some cert);
      let ours =
        match proof with
        | Some proof ->
          Merkle.verify cert.Certs.root
            ~leaf:(Batch.leaf ~id ~seq t.fl_msg.(m))
            proof
        | None -> false
      in
      let replayed = List.mem_assoc id cert.Certs.exceptions in
      if ours || replayed then begin
        let latency = Engine.now t.engine -. t.fl_started.(m) in
        let fl_msg = t.fl_msg.(m) in
        (let s = Engine.trace t.engine in
         if Trace.enabled s then
           Trace.instant s ~now:(Engine.now t.engine)
             ~actor:(Client.tr_actor ~id) ~cat:"client" ~name:"deliver"
             ~id:(Client.msg_key ~id ~seq:t.fl_seq.(m))
             ~attrs:
               [ ("root", Trace.A_int (Trace.key cert.Certs.root));
                 ("latency", Trace.A_float latency) ]);
        t.seq.(m) <- max t.seq.(m) (max t.fl_adopted.(m) seq) + 1;
        t.fl_active.(m) <- false;
        t.epoch.(m) <- t.epoch.(m) + 1;
        t.completed.(m) <- t.completed.(m) + 1;
        t.on_delivered m fl_msg ~latency;
        launch_next t m
      end
    end
    else
      let s = Engine.trace t.engine in
      if Trace.enabled s then
        Trace.instant s ~now:(Engine.now t.engine) ~actor:(Client.tr_actor ~id)
          ~cat:"client" ~name:"reject_cert"
          ~id:(Client.msg_key ~id ~seq:t.fl_seq.(m))
  end

let receive t m msg =
  match msg with
  | Proto.Inclusion { root; proof; agg_seq; evidence } ->
    on_inclusion t m ~root ~proof ~agg_seq ~evidence
  | Proto.Deliver_cert { cert; seq; proof } -> on_deliver_cert t m ~cert ~seq ~proof
  | Proto.Signup_response _ -> () (* members are pre-provisioned *)

(* --- assembly -------------------------------------------------------------- *)

let create ~deployment ~members ~identity
    ?(on_delivered = fun _ _ ~latency:_ -> ()) () =
  let engine = D.engine deployment in
  let cfg = D.config deployment in
  let dummy_kp = Directory.dense_keypair 0 in
  let t =
    { engine;
      members;
      resubmit_timeout = 8.0;
      max_resubmit_timeout = 60.0;
      wire_clients = max cfg.D.dense_clients 1024;
      membership = D.membership deployment;
      server_ms_pk = (fun j -> D.server_ms_pk deployment j);
      on_delivered;
      ids = Array.make members 0;
      kps = Array.make members dummy_kp;
      brokers = Array.make members [||];
      send = Array.make members (fun ~broker:_ ~bytes:_ _ -> ());
      broker_idx = Array.make members 0;
      seq = Array.make members 0;
      epoch = Array.make members 0;
      backoff = Array.make members 8.0;
      rngs = Array.init members (fun _ -> Rng.create 0L);
      evidence = Array.make members None;
      queues = Array.init members (fun _ -> Queue.create ());
      fl_active = Array.make members false;
      fl_msg = Array.make members "";
      fl_seq = Array.make members 0;
      fl_adopted = Array.make members 0;
      fl_started = Array.make members 0.;
      completed = Array.make members 0;
      k_timer = Engine.kind engine "client.timer";
      c_verify =
        Trace.Sink.counter (Engine.trace engine) ~cat:"crypto"
          ~name:"verify_ops" }
  in
  for m = 0 to members - 1 do
    let ident = identity m in
    let tc =
      D.add_thin_client deployment ~identity:ident
        ~receive:(fun msg -> receive t m msg)
        ()
    in
    t.ids.(m) <- ident;
    t.kps.(m) <- Directory.dense_keypair ident;
    t.brokers.(m) <- Array.of_list tc.D.tc_brokers;
    t.send.(m) <- tc.D.tc_send;
    (* Same per-client jitter stream a [Client.t] would get: the nonce is
       the network node id. *)
    t.rngs.(m) <- Client.jitter_rng ~nonce:tc.D.tc_node
  done;
  t
