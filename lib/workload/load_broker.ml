module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Stats = Repro_sim.Stats
module D = Repro_chopchop.Deployment
module Batch = Repro_chopchop.Batch
module Broker = Repro_chopchop.Broker
module Server = Repro_chopchop.Server

type config = {
  rate : float;
  batch_count : int;
  msg_bytes : int;
  distill_fraction : float;
  ranges : int;
  first_id : int;
}

let default_config ~first_id =
  { rate = 1.0; batch_count = 65_536; msg_bytes = 8; distill_fraction = 1.0;
    ranges = 16; first_id }

type t = {
  deployment : D.t;
  cfg : config;
  broker_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable completed_messages : int;
  lat : Stats.Summary.t;
  mutable round : int;
}

let create ~deployment ~region ~config () =
  let broker_id = D.add_broker deployment ~region () in
  { deployment; cfg = config; broker_id;
    submitted = 0; completed = 0; completed_messages = 0;
    lat = Stats.Summary.create (); round = 0 }

let submitted t = t.submitted
let completed t = t.completed
let completed_messages t = t.completed_messages
let latencies t = t.lat
let broker_id t = t.broker_id

let inject t =
  let engine = D.engine t.deployment in
  let cfg = t.cfg in
  let range = t.submitted mod cfg.ranges in
  let tag = 1 + (t.submitted / cfg.ranges) in
  let first_id = cfg.first_id + (range * cfg.batch_count) in
  let stragglers =
    int_of_float (ceil ((1. -. cfg.distill_fraction) *. float_of_int cfg.batch_count))
  in
  let directory = Server.directory (D.servers t.deployment).(0) in
  let broker = D.broker t.deployment t.broker_id in
  let number = t.submitted in
  t.submitted <- t.submitted + 1;
  t.round <- tag;
  let batch =
    Batch.forge_dense directory ~broker:t.broker_id ~number ~first_id
      ~count:cfg.batch_count ~msg_bytes:cfg.msg_bytes ~tag
      ~straggler_count:(min stragglers cfg.batch_count)
  in
  let now = Engine.now engine in
  Broker.submit_prebuilt broker batch ~on_complete:(fun _cert ->
      t.completed <- t.completed + 1;
      t.completed_messages <- t.completed_messages + cfg.batch_count;
      Stats.Summary.add t.lat (Engine.now engine -. now))

let start t ?until ?(phase = 0.) () =
  let engine = D.engine t.deployment in
  let period = 1. /. t.cfg.rate in
  let kind = Engine.kind engine "load.inject" in
  Engine.schedule ~kind engine ~delay:phase (fun () ->
      Engine.every ~kind engine ~period ?until (fun () -> inject t))
