(** Adversarial client traffic against broker admission control.

    Open-loop floods injected through a raw network node
    ({!Repro_chopchop.Deployment.add_injector}), bypassing the honest
    client state machine: a {e sybil} flood under identities the
    directory never issued (shed as "reject_unknown") and a {e greedy}
    flood from valid identities exceeding the per-client admission rate
    (excess shed as "reject_rate"; admitted traffic is properly signed
    and flows through the normal pipeline). *)

type t

val sent : t -> int
(** Submissions injected so far. *)

val start_greedy :
  deployment:Repro_chopchop.Deployment.t ->
  rng:Repro_sim.Rng.t ->
  rate:float ->
  first_id:int ->
  clients:int ->
  ?broker:int ->
  ?until:float ->
  unit ->
  t
(** Aggregate [rate] submissions/s round-robined over [clients] dense
    identities starting at [first_id] and over all brokers — or aimed
    entirely at [broker] when given (a hot-shard flood). *)

val start_sybil :
  deployment:Repro_chopchop.Deployment.t ->
  rng:Repro_sim.Rng.t ->
  rate:float ->
  first_fake_id:int ->
  ?until:float ->
  unit ->
  t
(** [rate] submissions/s under ever-fresh unknown identities starting at
    [first_fake_id] (must exceed the directory size). *)
