(** Flat-array client cohort: thousands of thin clients, one state machine.

    The per-client model ({!Repro_chopchop.Client}) allocates a record,
    closures and a queue per client; at 10k+ measure clients that heap
    footprint dominates the hot loop.  A cohort keeps every member's
    protocol state in member-indexed flat arrays and shares one set of
    handler code, while each member still owns a real network node and
    reliable-UDP channels through
    {!Repro_chopchop.Deployment.add_thin_client} — so byte, CPU and event
    accounting are {e exactly} those of the per-client deployment, and a
    same-seed cohort run is bit-identical to its per-client twin (every
    trace counter, including [sim.steps], matches; pinned by test).

    Divergences from [Client.t], by design: members carry dense
    (pre-provisioned) identities and never sign up; the write-only
    [fl_signed_roots] log is dropped; members are invisible to
    [crash_client]/broker-recovery rehoming and expose no misbehaviour
    hooks — use {!Deployment.add_client} for fault injection. *)

type t

val create :
  deployment:Repro_chopchop.Deployment.t ->
  members:int ->
  identity:(int -> Repro_chopchop.Types.client_id) ->
  ?on_delivered:(int -> Repro_chopchop.Types.message -> latency:float -> unit) ->
  unit ->
  t
(** [create ~deployment ~members ~identity ()] registers [members] thin
    clients; member [m] gets dense identity [identity m] (and its
    directory keypair).  [on_delivered m msg ~latency] fires per
    delivery. *)

val members : t -> int
val id : t -> int -> Repro_chopchop.Types.client_id

val broadcast : t -> int -> Repro_chopchop.Types.message -> unit
(** Queue a message for atomic broadcast by member [m] (client rule CR1:
    one in flight, the rest wait). *)

val pending : t -> int -> int
(** Queued + in-flight messages of member [m] (as {!Client.pending}). *)

val completed : t -> int -> int
val completed_total : t -> int
