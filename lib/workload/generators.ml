(* Arrival-process generators for adversarial and realistic load shapes.

   The paper's evaluation drives Chop Chop with steady open-loop load
   (§6.2); real systems see heavy-tailed bursts and time-of-day swings.
   These generators produce inter-arrival gaps for a target process and a
   [drive] loop that schedules one [fire] per arrival on the simulator
   clock — the substrate for the flash-crowd and diurnal chaos scenarios
   and for the reconfiguration-under-load experiment. *)

module Engine = Repro_sim.Engine
module Rng = Repro_sim.Rng

type arrival =
  | Poisson of { rate : float }
      (* memoryless, the classic open-loop model: exp(1/rate) gaps *)
  | Pareto of { rate : float; alpha : float }
      (* heavy-tailed gaps with mean 1/rate; alpha <= ~1.5 gives the
         bursty, high-variance arrivals of flash-crowd traffic *)
  | Diurnal of { base : float; peak : float; period : float }
      (* sinusoidal rate swinging [base, peak] over [period] seconds,
         sampled by thinning against the peak *)

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(%.1f/s)" rate
  | Pareto { rate; alpha } -> Printf.sprintf "pareto(%.1f/s, a=%.2f)" rate alpha
  | Diurnal { base; peak; period } ->
    Printf.sprintf "diurnal(%.1f..%.1f/s, T=%.0fs)" base peak period

(* Mean rate of the process (arrivals per second). *)
let mean_rate = function
  | Poisson { rate } -> rate
  | Pareto { rate; _ } -> rate
  | Diurnal { base; peak; _ } -> (base +. peak) /. 2.

(* Instantaneous rate at simulated time [now] (thinning envelope). *)
let rate_at arrival ~now =
  match arrival with
  | Poisson { rate } | Pareto { rate; _ } -> rate
  | Diurnal { base; peak; period } ->
    let mid = (base +. peak) /. 2. and amp = (peak -. base) /. 2. in
    mid +. (amp *. sin (2. *. Float.pi *. now /. period))

(* One inter-arrival gap.  For Pareto the scale is chosen so the mean gap
   is 1/rate: E[X] = xm * a/(a-1), hence xm = (a-1)/(a*rate).  Alpha is
   clamped away from 1 where the mean diverges. *)
let gap arrival ~rng =
  match arrival with
  | Poisson { rate } -> Rng.exponential rng ~mean:(1. /. rate)
  | Pareto { rate; alpha } ->
    let a = Float.max 1.05 alpha in
    let xm = (a -. 1.) /. (a *. rate) in
    let u = Float.max 1e-12 (1. -. Rng.float rng 1.) in
    xm /. (u ** (1. /. a))
  | Diurnal { peak; _ } ->
    (* Thinned Poisson at the peak rate; acceptance happens in [drive]. *)
    Rng.exponential rng ~mean:(1. /. Float.max 1e-9 peak)

let accept arrival ~rng ~now =
  match arrival with
  | Poisson _ | Pareto _ -> true
  | Diurnal { peak; _ } ->
    Rng.float rng 1. < rate_at arrival ~now /. Float.max 1e-9 peak

(* Schedule [fire] once per arrival of the process until [until] (if
   given).  Deterministic for a fixed rng state and engine schedule. *)
let drive ?kind ~engine ~rng ~arrival ?until ~fire () =
  let stop now = match until with Some u -> now > u | None -> false in
  let rec arm () =
    let delay = gap arrival ~rng in
    Engine.schedule ?kind engine ~delay (fun () ->
        let now = Engine.now engine in
        if not (stop now) then begin
          if accept arrival ~rng ~now then fire ();
          arm ()
        end)
  in
  arm ()
