(* Adversarial client traffic against broker admission.

   Two attack shapes, both injected through a raw network presence
   ({!Repro_chopchop.Deployment.add_injector}) so they bypass the honest
   client state machine entirely:

   - a {e sybil} flood of submissions under identities the directory never
     issued — screened out at intake ("reject_unknown" instants) before
     any signature or pool work;
   - a {e greedy} flood from valid dense identities submitting far past
     the per-client admission rate — correctly signed, so everything the
     token bucket admits flows through the normal pipeline, and the excess
     is shed at intake ("reject_rate" instants).

   Both floods are open-loop: they never look at replies, like a real
   packet blaster.  Rates are per-flood aggregates, spread round-robin
   over the flood's identity set and the deployment's brokers. *)

module Deployment = Repro_chopchop.Deployment
module Directory = Repro_chopchop.Directory
module Proto = Repro_chopchop.Proto
module Types = Repro_chopchop.Types
module Wire = Repro_chopchop.Wire
module Engine = Repro_sim.Engine
module Rng = Repro_sim.Rng
module Schnorr = Repro_crypto.Schnorr
module Trace = Repro_trace.Trace

type t = {
  mutable sent : int; (* submissions injected so far *)
}

let sent t = t.sent

(* Valid-identity flood: [clients] dense ids starting at [first_id], each
   message properly signed so admitted traffic is indistinguishable from a
   legitimate (if voracious) client's. *)
let start_greedy ~deployment ~rng ~rate ~first_id ~clients ?broker ?until () =
  let engine = Deployment.engine deployment in
  let inject = Deployment.add_injector deployment () in
  let n_brokers = Deployment.n_brokers deployment in
  let dir_clients =
    max (Deployment.config deployment).Deployment.dense_clients 1024
  in
  let seqs = Array.make clients 0 in
  let t = { sent = 0 } in
  let cursor = ref 0 in
  Generators.drive ~engine ~rng ~arrival:(Generators.Poisson { rate }) ?until
    ~fire:(fun () ->
      let k = !cursor in
      cursor := (k + 1) mod clients;
      let id = first_id + k in
      let seq = seqs.(k) in
      seqs.(k) <- seq + 1;
      let msg = Printf.sprintf "spam:%d:%d" id seq in
      let kp = Directory.dense_keypair id in
      let tsig =
        Schnorr.sign kp.Types.sig_sk (Types.message_statement ~id ~seq msg)
      in
      let ctx = Trace.Ctx.make ~root:0 in
      let target =
        match broker with Some b -> b | None -> t.sent mod n_brokers
      in
      inject ~broker:target
        ~bytes:
          (Wire.submission_bytes ~clients:dir_clients
             ~msg_bytes:(String.length msg))
        (Proto.Submission { id; seq; msg; tsig; evidence = None; ctx });
      t.sent <- t.sent + 1)
    ();
  t

(* Sybil flood: identities beyond anything the directory issued, with
   garbage signatures — the broker must shed them before they cost
   anything (no directory entry, so no signature to even check). *)
let start_sybil ~deployment ~rng ~rate ~first_fake_id ?until () =
  let engine = Deployment.engine deployment in
  let inject = Deployment.add_injector deployment () in
  let n_brokers = Deployment.n_brokers deployment in
  let dir_clients =
    max (Deployment.config deployment).Deployment.dense_clients 1024
  in
  (* Any well-formed signature value does: the id fails the directory
     lookup before signature verification is ever attempted. *)
  let junk_kp = Directory.dense_keypair 0 in
  let junk_sig = Schnorr.sign junk_kp.Types.sig_sk "sybil" in
  let t = { sent = 0 } in
  Generators.drive ~engine ~rng ~arrival:(Generators.Poisson { rate }) ?until
    ~fire:(fun () ->
      let id = first_fake_id + t.sent in
      let msg = "sybil" in
      inject ~broker:(t.sent mod n_brokers)
        ~bytes:
          (Wire.submission_bytes ~clients:dir_clients
             ~msg_bytes:(String.length msg))
        (Proto.Submission
           { id; seq = 0; msg; tsig = junk_sig; evidence = None;
             ctx = Trace.Ctx.make ~root:0 });
      t.sent <- t.sent + 1)
    ();
  t
