module Json = Repro_metrics.Json
module Cell = Repro_experiments.Cell
module Chaos = Repro_chaos.Chaos
module Sha256 = Repro_crypto.Sha256
module Clock = Repro_prof.Prof.Clock

let short_hash ?(len = 16) s = String.sub (Sha256.to_hex (Sha256.digest s)) 0 len

module Manifest = struct
  type chaos_config = {
    scenario : string;
    scale : Chaos.scale;
    seed : int64;
  }

  type kind =
    | Run of Cell.config
    | Chaos of chaos_config

  type cell = {
    index : int;
    block : int;
    kind : kind;
    hash : string;
    label : string;
  }

  type t = {
    name : string;
    hash : string;
    cells : cell list;
  }

  let run_fields =
    [ "underlay"; "servers"; "cores"; "payload"; "rate"; "app"; "batch";
      "load_brokers"; "brokers"; "measure_clients"; "duration"; "warmup";
      "cooldown";
      "dense_clients"; "store"; "checkpoint_every"; "seed" ]

  let chaos_fields = [ "scenario"; "scale"; "seed" ]

  let scenario_names = List.map (fun s -> s.Chaos.sc_name) Chaos.scenarios

  let cell_config_json cell =
    match cell.kind with
    | Run c -> Json.Obj [ ("kind", Json.Str "run"); ("config", Cell.to_json c) ]
    | Chaos c ->
      Json.Obj
        [ ("kind", Json.Str "chaos");
          ("scenario", Json.Str c.scenario);
          ("scale", Json.Str (Chaos.scale_to_string c.scale));
          ("seed", Json.Num (Int64.to_float c.seed)) ]

  let hash_of_kind kind =
    short_hash (Json.to_string (cell_config_json { index = 0; block = 0; kind; hash = ""; label = "" }))

  let label_of_kind = function
    | Run c ->
      Printf.sprintf "run %s s%d c%d p%dB r%g %s%s seed%Ld" c.Cell.underlay
        c.Cell.servers c.Cell.cores c.Cell.payload c.Cell.rate c.Cell.app
        (if c.Cell.brokers > 0 then Printf.sprintf " b%d" c.Cell.brokers
         else "")
        c.Cell.seed
    | Chaos c ->
      Printf.sprintf "chaos %s %s seed%Ld" c.scenario
        (Chaos.scale_to_string c.scale) c.seed

  let ( let* ) = Result.bind

  (* Values of one axis: a list field multiplies, a scalar is a
     single-value axis, an absent field falls back to [defaults] and then
     to the built-in default (by omission from the combo). *)
  let axis_values ~block ~defaults field =
    let pick j =
      match Json.member field j with
      | Some (Json.List []) -> Some (Error (Printf.sprintf "axis %S is an empty list" field))
      | Some (Json.List xs) -> Some (Ok xs)
      | Some scalar -> Some (Ok [ scalar ])
      | None -> None
    in
    match pick block with
    | Some r -> r
    | None -> (match pick defaults with Some r -> r | None -> Ok [])

  (* Cartesian product in canonical axis order: the first axis varies
     slowest, the last ([seed]) fastest — the deterministic cell order. *)
  let product axes =
    List.fold_left
      (fun acc (name, vals) ->
        List.concat_map
          (fun partial -> List.map (fun v -> partial @ [ (name, v) ]) vals)
          acc)
      [ [] ] axes

  let check_known ~where ~known fields =
    match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
    | Some (k, _) ->
      Error
        (Printf.sprintf "%s: unknown field %S (valid: %s)" where k
           (String.concat ", " known))
    | None -> Ok ()

  let expand_run_block ~where ~defaults block =
    let* () =
      check_known ~where ~known:("kind" :: run_fields)
        (match block with Json.Obj fs -> fs | _ -> [])
    in
    let* axes =
      List.fold_left
        (fun acc field ->
          let* acc = acc in
          let* vals = axis_values ~block ~defaults field in
          Ok (if vals = [] then acc else acc @ [ (field, vals) ]))
        (Ok []) run_fields
    in
    let combos = product axes in
    List.fold_left
      (fun acc combo ->
        let* acc = acc in
        match Cell.of_json (Json.Obj combo) with
        | Ok c -> Ok (acc @ [ Run c ])
        | Error e -> Error (Printf.sprintf "%s: %s" where e))
      (Ok []) combos

  let expand_chaos_block ~where ~defaults block =
    let* () =
      check_known ~where ~known:("kind" :: chaos_fields)
        (match block with Json.Obj fs -> fs | _ -> [])
    in
    let* scenarios =
      let* vals = axis_values ~block ~defaults "scenario" in
      if vals = [] then Error (where ^ ": chaos block needs a \"scenario\"")
      else
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Json.Str s when List.mem s scenario_names -> Ok (acc @ [ s ])
            | Json.Str s ->
              Error
                (Printf.sprintf "%s: unknown scenario %S (valid: %s)" where s
                   (String.concat ", " scenario_names))
            | _ -> Error (where ^ ": scenario must be a string"))
          (Ok []) vals
    in
    let* scales =
      let* vals = axis_values ~block ~defaults "scale" in
      let vals = if vals = [] then [ Json.Str "quick" ] else vals in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match v with
          | Json.Str s ->
            (match Chaos.scale_of_string s with
             | Some sc -> Ok (acc @ [ sc ])
             | None ->
               Error
                 (Printf.sprintf "%s: unknown scale %S (valid: quick, full)"
                    where s))
          | _ -> Error (where ^ ": scale must be a string"))
        (Ok []) vals
    in
    let* seeds =
      let* vals = axis_values ~block ~defaults "seed" in
      let vals = if vals = [] then [ Json.Num 42. ] else vals in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match Json.to_int v with
          | Some i -> Ok (acc @ [ Int64.of_int i ])
          | None -> Error (where ^ ": seed must be an integer"))
        (Ok []) vals
    in
    Ok
      (List.concat_map
         (fun scenario ->
           List.concat_map
             (fun scale ->
               List.map (fun seed -> Chaos { scenario; scale; seed }) seeds)
             scales)
         scenarios)

  let max_cells = 4096

  let parse text =
    let* j =
      match Json.parse text with
      | j -> Ok j
      | exception Failure e -> Error e
    in
    let* fields =
      match j with
      | Json.Obj fs -> Ok fs
      | _ -> Error "manifest must be a JSON object"
    in
    let* () =
      check_known ~where:"manifest" ~known:[ "name"; "defaults"; "blocks" ] fields
    in
    let* name =
      match Json.member "name" j with
      | Some (Json.Str s) -> Ok s
      | None -> Ok "sweep"
      | Some _ -> Error "manifest name must be a string"
    in
    let* defaults =
      match Json.member "defaults" j with
      | Some (Json.Obj _ as d) ->
        let* () =
          check_known ~where:"defaults"
            ~known:(run_fields @ [ "scenario"; "scale" ])
            (match d with Json.Obj fs -> fs | _ -> [])
        in
        Ok d
      | None -> Ok (Json.Obj [])
      | Some _ -> Error "manifest defaults must be an object"
    in
    let* blocks =
      match Json.member "blocks" j with
      | Some (Json.List (_ :: _ as bs)) -> Ok bs
      | Some (Json.List []) -> Error "manifest has no blocks"
      | _ -> Error "manifest needs a \"blocks\" array"
    in
    let* kinds =
      List.fold_left
        (fun acc (i, block) ->
          let* acc = acc in
          let where = Printf.sprintf "block %d" i in
          let* () =
            match block with
            | Json.Obj _ -> Ok ()
            | _ -> Error (where ^ " must be an object")
          in
          let* kinds =
            match Json.member "kind" block with
            | Some (Json.Str "run") | None ->
              expand_run_block ~where ~defaults block
            | Some (Json.Str "chaos") ->
              expand_chaos_block ~where ~defaults block
            | Some (Json.Str k) ->
              Error
                (Printf.sprintf "%s: unknown kind %S (valid: run, chaos)" where k)
            | Some _ -> Error (where ^ ": kind must be a string")
          in
          Ok (acc @ List.map (fun k -> (i, k)) kinds))
        (Ok [])
        (List.mapi (fun i b -> (i, b)) blocks)
    in
    let* () =
      if List.length kinds <= max_cells then Ok ()
      else
        Error
          (Printf.sprintf "manifest expands to %d cells (max %d)"
             (List.length kinds) max_cells)
    in
    let cells =
      List.mapi
        (fun index (block, kind) ->
          { index; block; kind; hash = hash_of_kind kind;
            label = label_of_kind kind })
        kinds
    in
    let* () =
      let seen = Hashtbl.create 64 in
      List.fold_left
        (fun acc (c : cell) ->
          let* () = acc in
          match Hashtbl.find_opt seen c.hash with
          | Some other ->
            Error
              (Printf.sprintf
                 "duplicate cell: %S and %S resolve to the same config (%s)"
                 other c.label c.hash)
          | None ->
            Hashtbl.add seen c.hash c.label;
            Ok ())
        (Ok ()) cells
    in
    let hash =
      short_hash ~len:12
        (String.concat "" (List.map (fun (c : cell) -> c.hash) cells))
    in
    Ok { name; hash; cells }

  let load ~path =
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with
    | text ->
      (match parse text with
       | Ok m -> Ok m
       | Error e -> Error (Printf.sprintf "%s: %s" path e))
    | exception Sys_error e -> Error e
end

module Pool = struct
  type outcome =
    | Completed
    | Skipped
    | Failed of string
    | Timed_out

  type report = {
    r_cell : Manifest.cell;
    r_outcome : outcome;
    r_wall : float;
  }

  let mkdirs path =
    let rec go p =
      if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
        go (Filename.dirname p);
        (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      end
    in
    go path

  let cell_dir ~out_dir (m : Manifest.t) =
    Filename.concat out_dir ("cells-" ^ m.hash)

  let cell_path ~out_dir m (cell : Manifest.cell) =
    Filename.concat (cell_dir ~out_dir m) (cell.hash ^ ".json")

  let err_path ~out_dir m (cell : Manifest.cell) =
    Filename.concat (cell_dir ~out_dir m) (cell.hash ^ ".err")

  (* Wall-clock timings live in a sidecar keyed by the manifest hash, NOT
     in the cell files: cell outputs are part of the byte-identical resume
     contract, and wall time is the one thing that never reproduces. *)
  let timings_path ~out_dir (m : Manifest.t) =
    Filename.concat out_dir ("timings-" ^ m.hash ^ ".json")

  let load_timings ~out_dir m =
    match Json.of_file ~path:(timings_path ~out_dir m) with
    | Json.Obj fields ->
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
        fields
    | _ -> []
    | exception _ -> []

  let run_cell ?(profile = false) (cell : Manifest.cell) =
    let metrics, info, prof =
      match cell.kind with
      | Manifest.Run c ->
        let o = Cell.run ~profile c in
        ( o.Cell.metrics
          @ [ ("sim_events", float_of_int o.Cell.sim_events);
              ("sim_seconds", o.Cell.sim_seconds) ],
          o.Cell.info,
          o.Cell.prof )
      | Manifest.Chaos cc ->
        let sc =
          match Chaos.find cc.scenario with
          | Some sc -> sc
          | None -> failwith ("Sweep: unknown scenario " ^ cc.scenario)
        in
        let v = sc.Chaos.sc_run ~seed:cc.seed ~scale:cc.scale () in
        let delivered = Array.fold_left ( + ) 0 v.Chaos.v_delivered in
        let rejections =
          List.fold_left (fun acc (_, n) -> acc + n) 0 v.Chaos.v_rejections
        in
        ( [ ("pass", if v.Chaos.v_pass then 1. else 0.);
            ("expected", float_of_int v.Chaos.v_expected);
            ("completed", float_of_int v.Chaos.v_completed);
            ("violations", float_of_int (List.length v.Chaos.v_violations));
            ("delivered_total", float_of_int delivered);
            ("rejections_total", float_of_int rejections) ],
          (if v.Chaos.v_violations = [] then []
           else [ ("violations", String.concat "; " v.Chaos.v_violations) ]),
          None )
    in
    let base =
      match Manifest.cell_config_json cell with
      | Json.Obj fs -> fs
      | _ -> assert false
    in
    (* Only the deterministic half of the profile is embedded: the cell
       file must stay bit-identical across reruns of the same config. *)
    let prof_field =
      match prof with
      | None -> []
      | Some r -> [ ("profile", Repro_prof.Prof.deterministic_json r) ]
    in
    Json.Obj
      (base
       @ [ ("hash", Json.Str cell.hash);
           ("label", Json.Str cell.label);
           ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) metrics));
           ("info", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) info)) ]
       @ prof_field)

  (* A cell output counts as complete only if it parses and carries the
     cell's own content hash — a truncated or stale file is re-run. *)
  let valid_output ~out_dir m cell =
    match Json.of_file ~path:(cell_path ~out_dir m cell) with
    | j ->
      (match Json.member "hash" j with
       | Some (Json.Str h) -> h = cell.Manifest.hash
       | _ -> false)
    | exception _ -> false

  let read_err ~out_dir m cell ~fallback =
    match
      let ic = open_in_bin (err_path ~out_dir m cell) in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with
    | "" -> fallback
    | s -> String.trim s
    | exception _ -> fallback

  let run ?(workers = 4) ?(timeout = 900.) ?(serial = false) ?(profile = false)
      ?on_report ~out_dir (m : Manifest.t) =
    mkdirs (cell_dir ~out_dir m);
    let total = List.length m.cells in
    let reports = Array.make (max 1 total) None in
    let done_count = ref 0 in
    let report (cell : Manifest.cell) outcome wall =
      incr done_count;
      let r = { r_cell = cell; r_outcome = outcome; r_wall = wall } in
      reports.(cell.index) <- Some r;
      match on_report with
      | Some f -> f ~done_count:!done_count ~total r
      | None -> ()
    in
    let todo =
      List.filter
        (fun c ->
          if valid_output ~out_dir m c then begin
            report c Skipped 0.;
            false
          end
          else true)
        m.cells
    in
    let exec_serial cell =
      let t0 = Clock.now () in
      (match run_cell ~profile cell with
       | doc ->
         Json.to_file ~path:(cell_path ~out_dir m cell) doc;
         report cell Completed (Clock.now () -. t0)
       | exception e ->
         report cell (Failed (Printexc.to_string e)) (Clock.now () -. t0))
    in
    let spawn cell =
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        (try
           let doc = run_cell ~profile cell in
           Json.to_file ~path:(cell_path ~out_dir m cell) doc;
           Unix._exit 0
         with e ->
           (try
              let oc = open_out (err_path ~out_dir m cell) in
              output_string oc (Printexc.to_string e);
              close_out oc
            with _ -> ());
           Unix._exit 1)
      | pid -> Some pid
      | exception _ ->
        (* fork unavailable on this platform: degrade to in-process *)
        exec_serial cell;
        None
    in
    if serial || workers <= 1 then List.iter exec_serial todo
    else begin
      let pending = ref todo and running = ref [] in
      while !pending <> [] || !running <> [] do
        while !pending <> [] && List.length !running < workers do
          let cell = List.hd !pending in
          pending := List.tl !pending;
          (try Sys.remove (err_path ~out_dir m cell) with Sys_error _ -> ());
          match spawn cell with
          | Some pid -> running := !running @ [ (pid, cell, Clock.now ()) ]
          | None -> ()
        done;
        let progressed = ref false in
        running :=
          List.filter
            (fun (pid, cell, t0) ->
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ ->
                if Clock.now () -. t0 > timeout then begin
                  (try Unix.kill pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] pid);
                  report cell Timed_out (Clock.now () -. t0);
                  progressed := true;
                  false
                end
                else true
              | _, status ->
                let wall = Clock.now () -. t0 in
                let outcome =
                  match status with
                  | Unix.WEXITED 0 ->
                    if valid_output ~out_dir m cell then Completed
                    else Failed "worker exited cleanly without writing output"
                  | Unix.WEXITED n ->
                    Failed
                      (read_err ~out_dir m cell
                         ~fallback:(Printf.sprintf "worker exited %d" n))
                  | Unix.WSIGNALED s ->
                    Failed (Printf.sprintf "worker killed by signal %d" s)
                  | Unix.WSTOPPED s ->
                    Failed (Printf.sprintf "worker stopped by signal %d" s)
                in
                report cell outcome wall;
                progressed := true;
                false)
            !running;
        if (not !progressed) && !running <> [] then Unix.sleepf 0.02
      done
    end;
    let reports =
      List.filteri (fun i _ -> i < total) (Array.to_list reports)
      |> List.filter_map Fun.id
    in
    (* Merge this run's wall times over the previous sidecar so skipped
       (resumed) cells keep the timing from the run that computed them. *)
    let timings = Hashtbl.create 64 in
    List.iter (fun (h, w) -> Hashtbl.replace timings h w) (load_timings ~out_dir m);
    List.iter
      (fun r ->
        match r.r_outcome with
        | Completed -> Hashtbl.replace timings r.r_cell.Manifest.hash r.r_wall
        | Skipped | Failed _ | Timed_out -> ())
      reports;
    let entries =
      List.filter_map
        (fun (c : Manifest.cell) ->
          Option.map (fun w -> (c.hash, Json.Num w)) (Hashtbl.find_opt timings c.hash))
        m.cells
    in
    if entries <> [] then Json.to_file ~path:(timings_path ~out_dir m) (Json.Obj entries);
    reports
end

module Aggregate = struct
  let results_path ~out_dir (m : Manifest.t) =
    Filename.concat out_dir ("results-" ^ m.hash ^ ".json")

  let collect ~out_dir (m : Manifest.t) =
    let timings = Pool.load_timings ~out_dir m in
    let docs =
      List.map
        (fun (c : Manifest.cell) ->
          if Pool.valid_output ~out_dir m c then begin
            let doc = Json.of_file ~path:(Pool.cell_path ~out_dir m c) in
            (* Wall time rides along from the sidecar — it is never in the
               (byte-identical) cell file itself. *)
            match (doc, List.assoc_opt c.hash timings) with
            | Json.Obj fields, Some w ->
              Json.Obj (fields @ [ ("wall_s", Json.Num w) ])
            | _ -> doc
          end
          else
            Json.Obj
              [ ("hash", Json.Str c.hash);
                ("label", Json.Str c.label);
                ("missing", Json.Bool true) ])
        m.cells
    in
    let present =
      List.length
        (List.filter (fun d -> Json.member "missing" d = None) docs)
    in
    Json.Obj
      [ ( "_readme",
          Json.List
            [ Json.Str
                "Aggregated sweep results: one entry per manifest cell, in \
                 deterministic expansion order, keyed by the manifest content \
                 hash.";
              Json.Str
                "Regenerate with `chopchop sweep --manifest <file>`; cells \
                 with no valid per-cell output appear as {missing: true} and \
                 are re-run on the next (resuming) invocation." ] );
        ("name", Json.Str m.name);
        ("manifest_hash", Json.Str m.hash);
        ("cells_total", Json.Num (float_of_int (List.length m.cells)));
        ("cells_present", Json.Num (float_of_int present));
        ("cells", Json.List docs) ]

  let write ~out_dir m =
    let path = results_path ~out_dir m in
    Json.to_file ~path (collect ~out_dir m);
    path
end

module Figures = struct
  let jstr j k = Option.bind (Json.member k j) Json.to_str
  let jnum j k = Option.bind (Json.member k j) Json.to_float

  let config j = Option.value (Json.member "config" j) ~default:Json.Null
  let metric j k = Option.bind (Json.member "metrics" j) (fun ms -> Option.bind (Json.member k ms) Json.to_float)
  let missing j = Json.member "missing" j <> None

  let cells doc =
    match Json.member "cells" doc with
    | Some (Json.List cs) -> cs
    | _ -> []

  let fnum fmt v =
    if Float.is_nan v then Format.fprintf fmt "—" else Format.fprintf fmt "%.3g" v

  let opt fmt = function
    | Some v -> fnum fmt v
    | None -> Format.fprintf fmt "—"

  let render fmt doc =
    let name = Option.value (jstr doc "name") ~default:"sweep" in
    let mhash = Option.value (jstr doc "manifest_hash") ~default:"?" in
    let all = cells doc in
    let runs = List.filter (fun c -> jstr c "kind" = Some "run") all in
    let chaoses = List.filter (fun c -> jstr c "kind" = Some "chaos") all in
    let missing_cells = List.filter missing all in
    Format.fprintf fmt "## Sweep %s (manifest %s): %d cells, %d missing@.@."
      name mhash (List.length all) (List.length missing_cells);
    (* Throughput / latency grid over the run cells. *)
    if runs <> [] then begin
      Format.fprintf fmt "### Throughput / latency grid@.@.";
      Format.fprintf fmt
        "| underlay | servers | cores | payload | rate | app | seed | tput \
         op/s | p50 s | p99 s | cpu %% | ev/wall-s |@.";
      Format.fprintf fmt "|---|---|---|---|---|---|---|---|---|---|---|---|@.";
      List.iter
        (fun c ->
          let cfg = config c in
          let s k = Option.value (jstr cfg k) ~default:"?" in
          let n k = Option.value (jnum cfg k) ~default:Float.nan in
          if missing c then
            Format.fprintf fmt "| %s | (missing: %s) |@."
              (Option.value (jstr c "label") ~default:"?")
              (Option.value (jstr c "hash") ~default:"?")
          else
            (* Simulator speed: engine events over sidecar wall seconds —
               absent (—) when the sweep has no timing for the cell. *)
            let ev_per_wall =
              match (metric c "sim_events", jnum c "wall_s") with
              | Some ev, Some w when w > 0. -> Some (ev /. w)
              | _ -> None
            in
            Format.fprintf fmt
              "| %s | %.0f | %.0f | %.0f | %a | %s | %.0f | %a | %a | %a | %a \
               | %a |@."
              (s "underlay") (n "servers") (n "cores") (n "payload") fnum
              (n "rate") (s "app") (n "seed") opt
              (metric c "throughput_ops")
              opt (metric c "latency_p50_s") opt
              (metric c "latency_p99_s")
              opt
              (Option.map (fun v -> 100. *. v) (metric c "server_cpu"))
              opt ev_per_wall)
        runs;
      Format.fprintf fmt "@."
    end;
    (* Core scaling, when the cores axis varies. *)
    let present_runs = List.filter (fun c -> not (missing c)) runs in
    let cores_of c = Option.value (jnum (config c) "cores") ~default:Float.nan in
    let distinct_cores =
      List.sort_uniq compare (List.map cores_of present_runs)
    in
    if List.length distinct_cores > 1 then begin
      Format.fprintf fmt "### Core scaling (mean over cells at each lane count)@.@.";
      Format.fprintf fmt "| cores | mean tput op/s | speedup |@.|---|---|---|@.";
      let mean k =
        let vs =
          List.filter_map
            (fun c ->
              if cores_of c = k then metric c "throughput_ops" else None)
            present_runs
        in
        match vs with
        | [] -> Float.nan
        | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
      in
      let base = mean (List.hd distinct_cores) in
      List.iter
        (fun k ->
          let t = mean k in
          Format.fprintf fmt "| %.0f | %a | %.2fx |@." k fnum t
            (if base > 0. then t /. base else Float.nan))
        distinct_cores;
      Format.fprintf fmt "@."
    end;
    (* Applications, when the app axis is used. *)
    let app_runs =
      List.filter
        (fun c -> match jstr (config c) "app" with
           | Some "none" | None -> false
           | Some _ -> not (missing c))
        runs
    in
    if app_runs <> [] then begin
      Format.fprintf fmt "### Applications@.@.";
      Format.fprintf fmt
        "| app | underlay | tput op/s | app ops | digest |@.|---|---|---|---|---|@.";
      List.iter
        (fun c ->
          let cfg = config c in
          let digest =
            match Option.bind (Json.member "info" c) (Json.member "app_digest") with
            | Some (Json.Str d) when String.length d >= 12 -> String.sub d 0 12
            | Some (Json.Str d) -> d
            | _ -> "—"
          in
          Format.fprintf fmt "| %s | %s | %a | %a | %s |@."
            (Option.value (jstr cfg "app") ~default:"?")
            (Option.value (jstr cfg "underlay") ~default:"?")
            opt (metric c "throughput_ops") opt (metric c "app_ops") digest)
        app_runs;
      Format.fprintf fmt "@."
    end;
    (* Chaos outcomes. *)
    if chaoses <> [] then begin
      Format.fprintf fmt "### Chaos outcomes@.@.";
      Format.fprintf fmt
        "| scenario | scale | seed | verdict | completed | violations |@.|---|---|---|---|---|---|@.";
      List.iter
        (fun c ->
          if missing c then
            Format.fprintf fmt "| %s | (missing) |@."
              (Option.value (jstr c "label") ~default:"?")
          else
            let n k = Option.value (metric c k) ~default:Float.nan in
            Format.fprintf fmt "| %s | %s | %.0f | %s | %.0f/%.0f | %.0f |@."
              (Option.value (jstr c "scenario") ~default:"?")
              (Option.value (jstr c "scale") ~default:"?")
              (Option.value (jnum c "seed") ~default:Float.nan)
              (if n "pass" = 1. then "PASS" else "FAIL")
              (n "completed") (n "expected") (n "violations"))
        chaoses;
      Format.fprintf fmt "@."
    end
end
