(** Manifest-driven parallel sweep orchestrator.

    The paper's evaluation is a large parameter grid (up to 320 machines
    swept over payload sizes, server counts, applications and faults,
    Figs. 9–11); this module makes regenerating such a grid one command.
    A JSON {e manifest} describes parameter blocks — each block a
    cartesian product over the axes of {!Repro_experiments.Cell.config}
    (or over chaos scenarios), with scalar per-block overrides —
    {!Manifest} expands it into a deterministic list of {e cells}, each
    keyed by a stable content hash of its resolved configuration.
    {!Pool} fans cells out across forked worker processes (the sim is
    deterministic and single-threaded per run, so this is embarrassingly
    parallel) with per-cell timeout, failure capture and {e resume}:
    cells whose output JSON already exists under the manifest hash are
    skipped, so an interrupted sweep picks up where it left off.
    {!Aggregate} folds the per-cell outputs into one pretty-printed
    results file keyed by the manifest hash, and {!Figures} renders the
    EXPERIMENTS.md-style tables from it.

    Manifest format (all block fields may be a scalar or a list; lists
    are axes and multiply, scalars override the top-level [defaults],
    which override the built-in {!Repro_experiments.Cell.default}):

    {v
    { "name": "quick grid",
      "defaults": { "servers": 4, "duration": 10.0 },
      "blocks": [
        { "kind": "run",
          "underlay": ["pbft", "hotstuff"],
          "payload": [8, 32],
          "seed": [42, 43] },
        { "kind": "chaos",
          "scenario": ["broker-garble", "partition-heal"],
          "scale": "quick",
          "seed": 42 } ] }
    v}

    Everything is deterministic: the same manifest expands to the same
    cells in the same order with the same hashes, and a cell's output is
    bit-identical however (and wherever) it is run. *)

module Manifest : sig
  type chaos_config = {
    scenario : string;
    scale : Repro_chaos.Chaos.scale;
    seed : int64;
  }

  type kind =
    | Run of Repro_experiments.Cell.config
    | Chaos of chaos_config

  type cell = {
    index : int;  (** position in expansion order (stable) *)
    block : int;  (** originating block *)
    kind : kind;
    hash : string;  (** content hash of the resolved config (16 hex) *)
    label : string;  (** short human-readable summary *)
  }

  type t = {
    name : string;
    hash : string;  (** content hash over all cell hashes (12 hex) *)
    cells : cell list;
  }

  val parse : string -> (t, string) result
  (** Parse and validate manifest JSON text.  Errors name the offending
      field and list the valid alternatives (fields, underlays, apps,
      chaos scenario names). *)

  val load : path:string -> (t, string) result

  val cell_config_json : cell -> Repro_metrics.Json.t
  (** The canonical resolved-config rendering the hash is computed over. *)
end

module Pool : sig
  type outcome =
    | Completed  (** output written this run *)
    | Skipped  (** valid output already on disk (resume) *)
    | Failed of string
    | Timed_out

  type report = {
    r_cell : Manifest.cell;
    r_outcome : outcome;
    r_wall : float;
        (** monotonic wall seconds spent on the cell this run
            ({!Repro_prof.Prof.Clock} — immune to NTP steps) *)
  }

  val cell_dir : out_dir:string -> Manifest.t -> string
  (** [<out_dir>/cells-<manifest-hash>] — where per-cell outputs live. *)

  val cell_path : out_dir:string -> Manifest.t -> Manifest.cell -> string

  val timings_path : out_dir:string -> Manifest.t -> string
  (** [<out_dir>/timings-<manifest-hash>.json] — sidecar mapping cell
      hash to wall seconds.  Wall time lives here, never in the cell
      files, which stay bit-identical across reruns (the resume
      contract); {!run} merges new timings over old so resumed (skipped)
      cells keep the timing from the run that computed them. *)

  val load_timings : out_dir:string -> Manifest.t -> (string * float) list

  val run_cell : ?profile:bool -> Manifest.cell -> Repro_metrics.Json.t
  (** Execute one cell in-process and return its output document
      (config + deterministic metrics; no timestamps, so reruns are
      bit-identical).  Runs the {!Repro_experiments.Cell} runner for
      [Run] cells and the named chaos scenario for [Chaos] cells.
      [profile] (default false) attaches the engine self-profiler to run
      cells and embeds its {e deterministic} half as a ["profile"] field
      — wall-time readings never enter the cell file. *)

  val run :
    ?workers:int ->
    ?timeout:float ->
    ?serial:bool ->
    ?profile:bool ->
    ?on_report:(done_count:int -> total:int -> report -> unit) ->
    out_dir:string ->
    Manifest.t ->
    report list
  (** Run every cell of the manifest, skipping cells whose output
      already exists and parses.  [workers] (default 4) forked Unix
      processes execute cells concurrently, each under a [timeout]
      (default 900 wall seconds, enforced by SIGKILL); worker failures
      are captured per-cell and do not abort the sweep.  [serial] (or an
      environment where [Unix.fork] is unavailable — the pool degrades
      automatically) runs cells one by one in-process, without timeout
      enforcement.  [profile] is passed to {!run_cell}.  Reports come
      back in manifest order; completed cells' wall times are merged
      into the {!timings_path} sidecar. *)
end

module Aggregate : sig
  val results_path : out_dir:string -> Manifest.t -> string
  (** [<out_dir>/results-<manifest-hash>.json]. *)

  val collect : out_dir:string -> Manifest.t -> Repro_metrics.Json.t
  (** Fold all per-cell outputs into one document (manifest order);
      cells with no valid output appear as [{"missing": true}] stubs.
      Wall seconds from the {!Pool.timings_path} sidecar are attached to
      each present cell as a [wall_s] field. *)

  val write : out_dir:string -> Manifest.t -> string
  (** [collect] then write to {!results_path}; returns the path. *)
end

module Figures : sig
  val render : Format.formatter -> Repro_metrics.Json.t -> unit
  (** Render the figure-grid tables from an aggregated results document:
      the throughput/latency grid over run cells (with a simulator-speed
      events/wall-second column when timings are available), core-scaling
      and application tables when those axes vary, and the chaos-outcome
      table over chaos cells. *)
end
