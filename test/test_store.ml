(* lib/store tests: the simulated disk's cost accounting, WAL/checkpoint
   ordering and truncation, the App_intf snapshot/restore round-trip for
   all four applications, and the full recovery path — a crashed server
   cold-restarts from its WAL/checkpoint, state-transfers the gap from
   live peers, and converges to the exact state of a never-crashed
   replica.  Also the collection unblocking rule: checkpoints let GC
   advance past a crashed peer's stalled counter, and a regression case
   showing it still blocks with checkpointing off. *)

module Engine = Repro_sim.Engine
module Cost = Repro_sim.Cost
module Disk = Repro_store.Disk
module Store = Repro_store.Store
module Deployment = Repro_chopchop.Deployment
module Server = Repro_chopchop.Server
module Client = Repro_chopchop.Client
module Broker = Repro_chopchop.Broker
module Batch = Repro_chopchop.Batch
module Directory = Repro_chopchop.Directory
module Payments = Repro_apps.Payments
module Auction = Repro_apps.Auction
module Pixelwar = Repro_apps.Pixelwar
module Sealed = Repro_apps.Sealed
module Chaos = Repro_chaos.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Disk ------------------------------------------------------------- *)

let test_disk_costs () =
  let engine = Engine.create () in
  let disk = Disk.create engine () in
  let done_at = ref [] in
  Disk.write disk ~bytes:1_200_000 (fun () ->
      done_at := Engine.now engine :: !done_at);
  Disk.write disk ~bytes:0 (fun () ->
      done_at := Engine.now engine :: !done_at);
  Engine.run engine;
  let expect1 = Cost.disk_fsync_s +. (1_200_000. /. Cost.disk_write_bps) in
  (match List.rev !done_at with
   | [ t1; t2 ] ->
     checkb "first write = fsync + bytes/bandwidth" true
       (abs_float (t1 -. expect1) < 1e-9);
     checkb "second write queues behind the first" true
       (abs_float (t2 -. (expect1 +. Cost.disk_fsync_s)) < 1e-9)
   | _ -> Alcotest.fail "expected two write completions");
  checki "bytes accounted" 1_200_000 (Disk.bytes_written disk);
  checki "two fsyncs" 2 (Disk.fsyncs disk);
  checkb "busy time accumulated" true (Disk.busy_seconds disk > 0.)

let test_disk_read () =
  let engine = Engine.create () in
  let disk = Disk.create engine () in
  let finished = ref false in
  Disk.read disk ~bytes:2_400_000 (fun () -> finished := true);
  Engine.run engine;
  checkb "read completes" true !finished;
  checki "bytes read accounted" 2_400_000 (Disk.bytes_read disk);
  checkb "read streams at read bandwidth" true
    (abs_float (Disk.busy_seconds disk -. 1e-3) < 1e-9)

(* --- Store ------------------------------------------------------------ *)

let mk_store () =
  let engine = Engine.create () in
  let s : (string, string) Store.t =
    Store.create ~disk:(Disk.create engine ()) ()
  in
  (engine, s)

let test_store_wal_checkpoint () =
  let engine, s = mk_store () in
  for p = 0 to 9 do
    Store.append s ~position:p ~bytes:10 (Printf.sprintf "r%d" p)
  done;
  checki "10 live records" 10 (Store.wal_records s);
  checki "100 live bytes" 100 (Store.wal_live_bytes s);
  checki "no checkpoint yet" (-1) (Store.checkpoint_position s);
  Store.checkpoint s ~position:6 ~bytes:50 "ck6";
  checki "checkpoint truncates covered prefix" 4 (Store.wal_records s);
  checki "checkpoint position" 6 (Store.checkpoint_position s);
  checki "cumulative bytes keep the truncated prefix" 100
    (Store.wal_bytes_total s);
  Alcotest.(check (list string))
    "records_from 8 ascending" [ "r8"; "r9" ]
    (Store.records_from s ~position:8);
  let got = ref None in
  Store.load s ~k:(fun ck records -> got := Some (ck, records));
  Engine.run engine;
  (match !got with
   | Some (Some ck, records) ->
     checks "latest checkpoint loads" "ck6" ck;
     Alcotest.(check (list string))
       "load replays the live tail oldest-first" [ "r6"; "r7"; "r8"; "r9" ]
       records
   | _ -> Alcotest.fail "load did not complete");
  checkb "load charged a device read" true (Disk.bytes_read (Store.disk s) > 0)

let test_store_load_without_checkpoint () =
  let engine, s = mk_store () in
  Store.append s ~position:0 ~bytes:5 "a";
  Store.append s ~position:1 ~bytes:5 "b";
  let got = ref None in
  Store.load s ~k:(fun ck records -> got := Some (ck, records));
  Engine.run engine;
  match !got with
  | Some (None, [ "a"; "b" ]) -> ()
  | _ -> Alcotest.fail "expected no checkpoint and the full WAL"

(* --- App snapshot/restore round-trips ----------------------------------- *)

let test_payments_roundtrip () =
  let t = Payments.create () in
  for i = 0 to 99 do
    ignore
      (Payments.apply_op t i (Payments.encode_op ~recipient:(i + 1) ~amount:7))
  done;
  let snap = Payments.snapshot t in
  let t' = Payments.create () in
  checkb "fresh state differs" true (Payments.digest t' <> Payments.digest t);
  Payments.restore t' (Some snap);
  checks "digest round-trips" (Payments.digest t) (Payments.digest t');
  checki "ops restored" (Payments.ops_applied t) (Payments.ops_applied t');
  checki "balances restored" (Payments.balance t 1) (Payments.balance t' 1);
  Payments.restore t' None;
  checks "restore None resets to initial"
    (Payments.digest (Payments.create ()))
    (Payments.digest t')

let test_auction_roundtrip () =
  let t = Auction.create () in
  ignore
    (Auction.apply_delivery t
       (Repro_chopchop.Proto.Bulk
          { first_id = 0; count = 5_000; tag = 3; msg_bytes = 8 }));
  let funds = Auction.total_funds t in
  let t' = Auction.create () in
  Auction.restore t' (Some (Auction.snapshot t));
  checks "digest round-trips" (Auction.digest t) (Auction.digest t');
  checki "funds invariant survives restore" funds (Auction.total_funds t');
  checki "token ownership restored" (Auction.owner t 17) (Auction.owner t' 17)

let test_pixelwar_roundtrip () =
  let t = Pixelwar.create ~width:64 ~height:64 () in
  ignore (Pixelwar.apply_op t 0 (Pixelwar.encode_op ~x:3 ~y:4 ~rgb:0xABCDEF));
  ignore (Pixelwar.apply_op t 1 (Pixelwar.encode_op ~x:63 ~y:63 ~rgb:0x123456));
  let t' = Pixelwar.create ~width:64 ~height:64 () in
  Pixelwar.restore t' (Some (Pixelwar.snapshot t));
  checks "digest round-trips" (Pixelwar.digest t) (Pixelwar.digest t');
  checki "pixel restored" 0xABCDEF (Pixelwar.pixel t' ~x:3 ~y:4);
  checki "painted count restored" 2 (Pixelwar.painted t');
  Pixelwar.restore t' None;
  checki "restore None clears the board" (-1) (Pixelwar.pixel t' ~x:3 ~y:4)

let test_sealed_roundtrip () =
  let applied = ref [] in
  let mk () = Sealed.create ~apply:(fun id m -> applied := (id, m) :: !applied) () in
  let t = mk () in
  Sealed.on_deliver t 1 (Sealed.seal ~payload:"trade-1" ~salt:"s1");
  Sealed.on_deliver t 2 (Sealed.seal ~payload:"trade-2" ~salt:"s2");
  Sealed.on_deliver t 2 (Sealed.reveal ~payload:"trade-2" ~salt:"s2");
  (* Seal 1 is still pending, so seal 2's reveal waits behind it. *)
  checki "nothing executed yet" 0 (Sealed.executed t);
  checki "two pending" 2 (Sealed.pending t);
  let t' = mk () in
  Sealed.restore t' (Some (Sealed.snapshot t));
  checks "digest round-trips" (Sealed.digest t) (Sealed.digest t');
  checki "pending restored" 2 (Sealed.pending t');
  (* The restored executor resumes mid-protocol: revealing seal 1
     executes both operations in seal order. *)
  Sealed.on_deliver t' 1 (Sealed.reveal ~payload:"trade-1" ~salt:"s1");
  checki "both executed in order" 2 (Sealed.executed t')

(* --- recovery harness --------------------------------------------------- *)

(* Store-enabled deployment with one Payments replica per server (applied
   through the deliver hook and checkpointed via snapshot/restore), eight
   clients broadcasting three waves. *)
let run_recovery ?(checkpoint_every = 4) ?(t_crash = 15.) ?(t_restart = 35.)
    ?(until = 90.) ?(seed = 42L) () =
  let cfg =
    { Deployment.default_config with
      underlay = Deployment.Sequencer; n_brokers = 2; seed;
      store_enabled = true; checkpoint_every }
  in
  let d = Deployment.create cfg in
  let n = cfg.Deployment.n_servers in
  let apps = Array.init n (fun _ -> Payments.create ()) in
  Deployment.server_deliver_hook d (fun srv del ->
      ignore (Payments.apply_delivery apps.(srv) del));
  Array.iteri
    (fun i app ->
      Deployment.set_server_app d i
        ~snapshot:(fun () -> Payments.snapshot app)
        ~restore:(fun s -> Payments.restore app s))
    apps;
  let clients = Array.init 8 (fun _ -> Deployment.add_client d ()) in
  Array.iter Client.signup clients;
  let engine = Deployment.engine d in
  Array.iteri
    (fun i c ->
      for j = 0 to 2 do
        Engine.schedule_at engine
          ~time:(20. *. float_of_int j)
          (fun () ->
            Client.broadcast c (Payments.encode_op ~recipient:(i + j) ~amount:1))
      done)
    clients;
  let victim = n - 1 in
  Engine.schedule_at engine ~time:t_crash (fun () ->
      Deployment.crash_server d victim);
  Engine.schedule_at engine ~time:t_restart (fun () ->
      Deployment.restart_server d victim);
  Deployment.run d ~until;
  (d, apps, victim)

let test_catch_up_convergence () =
  let d, apps, victim = run_recovery () in
  let servers = Deployment.servers d in
  checkb "victim finished catching up" false
    (Server.catching_up servers.(victim));
  checki "one cold restart" 1 (Server.restarts servers.(victim));
  checki "victim converged to the same delivery counter"
    (Server.delivery_counter servers.(0))
    (Server.delivery_counter servers.(victim));
  checks "victim app digest equals never-crashed replica"
    (Payments.digest apps.(0))
    (Payments.digest apps.(victim));
  checkb "state transfer ran" true
    (Server.sync_rounds servers.(victim) > 0);
  checkb "victim took a checkpoint" true
    (Deployment.server_checkpoints d victim > 0)

let test_wal_replay_determinism () =
  (* No checkpoint is ever taken, so the cold restart replays the entire
     WAL from position 0; the result must still be bit-identical. *)
  let d, apps, victim = run_recovery ~checkpoint_every:1_000_000 () in
  let servers = Deployment.servers d in
  checkb "victim live after pure WAL replay" false
    (Server.catching_up servers.(victim));
  checki "no checkpoints taken" 0 (Deployment.server_checkpoints d victim);
  checks "digest matches after replaying the full WAL"
    (Payments.digest apps.(0))
    (Payments.digest apps.(victim));
  checki "WAL kept every record" (Server.delivery_counter servers.(victim))
    (Deployment.server_wal_records d victim
     - (* signups ride the WAL too *)
     8)

let run_plain ~store ~seed =
  (* Same traffic with the store on or off: absent a crash the two runs
     must be observationally identical (WAL writes are fire-and-forget on
     a device the protocol never waits for). *)
  let cfg =
    { Deployment.default_config with
      underlay = Deployment.Sequencer; n_brokers = 2; seed;
      store_enabled = store; checkpoint_every = 4 }
  in
  let d = Deployment.create cfg in
  let n = cfg.Deployment.n_servers in
  let apps = Array.init n (fun _ -> Payments.create ()) in
  Deployment.server_deliver_hook d (fun srv del ->
      ignore (Payments.apply_delivery apps.(srv) del));
  let clients = Array.init 6 (fun _ -> Deployment.add_client d ()) in
  Array.iter Client.signup clients;
  let engine = Deployment.engine d in
  Array.iteri
    (fun i c ->
      for j = 0 to 1 do
        Engine.schedule_at engine
          ~time:(15. *. float_of_int j)
          (fun () ->
            Client.broadcast c (Payments.encode_op ~recipient:(i + j) ~amount:2))
      done)
    clients;
  Deployment.run d ~until:60.;
  ( Array.map Server.delivery_counter (Deployment.servers d),
    Array.map Payments.digest apps,
    Array.map (fun c -> Client.completed c) clients )

let test_store_on_off_identical () =
  let c_off, dg_off, done_off = run_plain ~store:false ~seed:42L in
  let c_on, dg_on, done_on = run_plain ~store:true ~seed:42L in
  Alcotest.(check (array int)) "delivery counters identical" c_off c_on;
  Alcotest.(check (array string)) "app digests identical" dg_off dg_on;
  Alcotest.(check (array int)) "client completions identical" done_off done_on

(* --- GC unblocking -------------------------------------------------------- *)

let mk_gc_deployment ~store ~checkpoint_every =
  Deployment.create
    { Deployment.default_config with
      underlay = Deployment.Sequencer; dense_clients = 100_000;
      store_enabled = store; checkpoint_every }

let submit_forged d =
  let dir = Server.directory (Deployment.servers d).(0) in
  for k = 0 to 9 do
    let b =
      Batch.forge_dense dir ~broker:0 ~number:k ~first_id:0 ~count:256
        ~msg_bytes:8 ~tag:(k + 1) ~straggler_count:0
    in
    Engine.schedule (Deployment.engine d) ~delay:(0.5 *. float_of_int k)
      (fun () ->
        Broker.submit_prebuilt (Deployment.broker d 0) b
          ~on_complete:(fun _ -> ()))
  done

let test_gc_unblocked_by_checkpoint () =
  (* The crashed server's counter gossip stalls, but once a local
     checkpoint covers the collected prefix the survivors collect anyway:
     the batches are recoverable from disk, not only from memory. *)
  let d = mk_gc_deployment ~store:true ~checkpoint_every:2 in
  Deployment.crash_server d 3;
  submit_forged d;
  Deployment.run d ~until:60.0;
  let sv = (Deployment.servers d).(0) in
  checki "all batches delivered" 10 (Server.delivery_counter sv);
  checkb "survivors collected past the crashed peer" true
    (Server.stored_batches sv <= 2);
  checkb "collections recorded" true (Server.collected_batches sv >= 8)

let test_gc_still_blocked_without_checkpoints () =
  (* Regression: with the store on but checkpointing disabled, the old
     conservative rule applies — a crashed peer blocks collection. *)
  let d = mk_gc_deployment ~store:true ~checkpoint_every:0 in
  Deployment.crash_server d 3;
  submit_forged d;
  Deployment.run d ~until:60.0;
  checkb "survivors hold all batches" true
    (Server.stored_batches (Deployment.servers d).(0) >= 10)

(* --- chaos integration ---------------------------------------------------- *)

let test_chaos_crash_cold_restart () =
  match Chaos.find "crash-cold-restart" with
  | None -> Alcotest.fail "scenario crash-cold-restart not registered"
  | Some s ->
    let v = s.Chaos.sc_run ~seed:7L ~scale:Chaos.Quick () in
    if not v.Chaos.v_pass then
      Alcotest.failf "crash-cold-restart failed: %s"
        (String.concat "; " v.Chaos.v_violations);
    checki "all broadcasts completed" v.Chaos.v_expected v.Chaos.v_completed

let () =
  Alcotest.run "store"
    [ ("disk",
       [ Alcotest.test_case "write costs and queueing" `Quick test_disk_costs;
         Alcotest.test_case "read costs" `Quick test_disk_read ]);
      ("store",
       [ Alcotest.test_case "wal + checkpoint + load" `Quick
           test_store_wal_checkpoint;
         Alcotest.test_case "load without checkpoint" `Quick
           test_store_load_without_checkpoint ]);
      ("snapshots",
       [ Alcotest.test_case "payments round-trip" `Quick test_payments_roundtrip;
         Alcotest.test_case "auction round-trip" `Quick test_auction_roundtrip;
         Alcotest.test_case "pixelwar round-trip" `Quick test_pixelwar_roundtrip;
         Alcotest.test_case "sealed round-trip" `Quick test_sealed_roundtrip ]);
      ("recovery",
       [ Alcotest.test_case "crash -> cold restart -> convergence" `Quick
           test_catch_up_convergence;
         Alcotest.test_case "full WAL replay determinism" `Quick
           test_wal_replay_determinism;
         Alcotest.test_case "store on/off bit-identical without crashes"
           `Quick test_store_on_off_identical ]);
      ("gc",
       [ Alcotest.test_case "checkpoint unblocks collection" `Quick
           test_gc_unblocked_by_checkpoint;
         Alcotest.test_case "blocked without checkpoints (regression)" `Quick
           test_gc_still_blocked_without_checkpoints ]);
      ("chaos",
       [ Alcotest.test_case "crash-cold-restart scenario passes" `Quick
           test_chaos_crash_cold_restart ]) ]
