(* lib/fleet tests: the partitioning policy is a deterministic pure
   function of (seed, key, roster); shard directories merge back into the
   monolithic Rank; a 1-broker fleet is a bit-identical no-op against the
   legacy nearest-first routing; crash failover re-routes clients onto
   the rendezvous successor (with the shard handed off to the same
   place); and the servers' per-broker fair-admission budget stops a
   flooded partition from starving its siblings. *)

module Engine = Repro_sim.Engine
module Region = Repro_sim.Region
module Rng = Repro_sim.Rng
module Trace = Repro_trace.Trace
module Deployment = Repro_chopchop.Deployment
module Client = Repro_chopchop.Client
module Directory = Repro_chopchop.Directory
module Types = Repro_chopchop.Types
module Fleet = Repro_fleet.Fleet
module Spam = Repro_workload.Spam

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fleet_of ?(mode = Fleet.Hash) ?(seed = 42L) n =
  let fl = Fleet.create ~mode ~seed () in
  let regions = Array.of_list Region.broker_regions in
  for i = 0 to n - 1 do
    ignore (Fleet.register fl ~region:regions.(i mod Array.length regions))
  done;
  fl

(* --- the policy ------------------------------------------------------- *)

let test_deterministic_assignment () =
  let a = fleet_of 4 and b = fleet_of 4 in
  for key = 0 to 199 do
    Alcotest.(check (list int))
      (Printf.sprintf "key %d assignment is seed-determined" key)
      (Fleet.assignment a ~key ()) (Fleet.assignment b ~key ())
  done;
  (* Every broker is somebody's home: the hash spreads. *)
  let hit = Array.make 4 false in
  for key = 0 to 199 do
    let h = Fleet.home a ~key () in
    checkb "home is in range" true (h >= 0 && h < 4);
    hit.(h) <- true
  done;
  Array.iteri
    (fun i h -> checkb (Printf.sprintf "broker %d gets some home" i) true h)
    hit

let test_assignment_permutation () =
  let fl = fleet_of 5 in
  for key = 0 to 49 do
    let order = Fleet.assignment fl ~key () in
    checki "covers the whole roster" 5 (List.length order);
    Alcotest.(check (list int))
      "failover list is a permutation" [ 0; 1; 2; 3; 4 ]
      (List.sort compare order);
    checki "home leads the list" (Fleet.home fl ~key ()) (List.hd order)
  done

let test_seed_sensitivity () =
  let a = fleet_of ~seed:42L 4 and b = fleet_of ~seed:43L 4 in
  let diff = ref 0 in
  for key = 0 to 99 do
    if Fleet.home a ~key () <> Fleet.home b ~key () then incr diff
  done;
  checkb "different seeds shuffle the partition" true (!diff > 0)

let test_region_affinity_nearest () =
  let fl = fleet_of ~mode:Fleet.Region_affinity 4 in
  let regions = Array.of_list Region.broker_regions in
  let broker_region i = regions.(i mod Array.length regions) in
  List.iter
    (fun r ->
      for key = 0 to 29 do
        let order = Fleet.assignment fl ~key ~region:r () in
        let lat i = Region.latency r (broker_region i) in
        let home = List.hd order in
        List.iter
          (fun b ->
            checkb "home is among the nearest brokers" true
              (lat home <= lat b))
          order;
        (* The failover walk beyond the nearest group goes outward. *)
        let rec non_decreasing = function
          | a :: (b :: _ as tl) ->
            lat a <= lat b +. 1e-9 && non_decreasing tl
          | _ -> true
        in
        (* Inside the equidistant nearest group the hash may rotate, but
           latencies there are all equal, so the whole walk is still
           non-decreasing in latency. *)
        checkb "failover walks outward by latency" true (non_decreasing order)
      done)
    Region.client_regions

(* --- shard directories ------------------------------------------------ *)

let test_shard_merge_monolithic () =
  let dense = 16 in
  let mono = Directory.create ~dense_count:dense () in
  let cards =
    List.init 6 (fun i ->
        (Types.keypair_of_seed (Printf.sprintf "fleet-card-%d" i)).Types.card)
  in
  let ids = List.map (Directory.append mono) cards in
  let shards = [ Directory.create_shard ~dense_count:dense ();
                 Directory.create_shard ~dense_count:dense () ] in
  List.iteri
    (fun i (id, card) ->
      Directory.shard_insert (List.nth shards (i mod 2)) ~id card)
    (List.combine ids cards);
  let merged = Directory.merge_shards ~dense_count:dense shards in
  checki "merged size equals monolithic" (Directory.size mono)
    (Directory.size merged);
  List.iter2
    (fun id card ->
      checkb
        (Printf.sprintf "id %d resolves to the same card" id)
        true
        (Directory.find merged id = Some card
        && Directory.find mono id = Some card))
    ids cards;
  (* Dense identities resolve identically through shard views too. *)
  let sh = List.hd shards in
  checkb "dense id resolves through the shard" true
    (Directory.shard_find sh 3 = Directory.find mono 3)

let test_shard_dense_guard () =
  let sh = Directory.create_shard ~dense_count:8 () in
  let card = (Types.keypair_of_seed "dense-guard").Types.card in
  Alcotest.check_raises "dense ids are never re-ranked"
    (Invalid_argument "Directory.shard_insert: dense ids are derived, not stored")
    (fun () ->
      Directory.shard_insert sh ~id:3 card);
  Directory.shard_insert sh ~id:8 card;
  checkb "explicit id inserted" true (Directory.shard_mem sh 8);
  Directory.shard_remove sh ~id:8;
  checkb "explicit id removed" false (Directory.shard_mem sh 8)

(* --- deployment integration ------------------------------------------- *)

let drive_deployment ~fleet ~n_brokers ~seed =
  let trace = Trace.Sink.memory () in
  let cfg =
    { Deployment.default_config with
      n_brokers; dense_clients = 1024; seed; trace; fleet }
  in
  let d = Deployment.create cfg in
  let clients = Array.init 4 (fun _ -> Deployment.add_client d ()) in
  Array.iter Client.signup clients;
  let engine = Deployment.engine d in
  Array.iteri
    (fun i c ->
      Engine.schedule_at engine ~time:5. (fun () ->
          Client.broadcast c (Printf.sprintf "fleet:m%d" i)))
    clients;
  Deployment.run d ~until:40.;
  let completed =
    Array.fold_left (fun acc c -> acc + Client.completed c) 0 clients
  in
  (completed, Trace.Sink.events trace)

let test_single_broker_noop () =
  (* A 1-broker fleet must be inert: same seed, same event stream, same
     deliveries as the legacy nearest-first routing. *)
  let c_fleet, ev_fleet =
    drive_deployment ~fleet:(Some Fleet.Hash) ~n_brokers:1 ~seed:42L
  in
  let c_legacy, ev_legacy =
    drive_deployment ~fleet:None ~n_brokers:1 ~seed:42L
  in
  checki "all broadcasts complete (fleet)" 4 c_fleet;
  checki "all broadcasts complete (legacy)" 4 c_legacy;
  checki "same number of trace events" (List.length ev_legacy)
    (List.length ev_fleet);
  checkb "trace streams are bit-identical" true
    (compare ev_fleet ev_legacy = 0)

let test_repeat_runs_bit_identical () =
  let c1, ev1 = drive_deployment ~fleet:(Some Fleet.Hash) ~n_brokers:3 ~seed:7L in
  let c2, ev2 = drive_deployment ~fleet:(Some Fleet.Hash) ~n_brokers:3 ~seed:7L in
  checki "all broadcasts complete" 4 c1;
  checki "repeat completes identically" c1 c2;
  checkb "3-broker fleet runs are bit-identical" true (compare ev1 ev2 = 0)

let test_crash_failover () =
  let cfg =
    { Deployment.default_config with
      n_brokers = 3; dense_clients = 1024; fleet = Some Fleet.Hash }
  in
  let d = Deployment.create cfg in
  let c = Deployment.add_client d () in
  Client.signup c;
  Deployment.run d ~until:10.;
  let fl = Option.get (Deployment.fleet d) in
  let node = Option.get (Deployment.node_of_client d c) in
  let home = Fleet.home fl ~key:node () in
  Client.broadcast c "before-crash";
  Deployment.run d ~until:20.;
  checki "first broadcast completes through the home broker" 1
    (Client.completed c);
  Deployment.crash_broker d home;
  checkb "crash moved the shard to the successor" true
    (Deployment.fleet_handoff_bytes d > 0);
  checkb "crashed partition emptied" true
    (match Deployment.broker_shard d home with
     | Some sh -> Directory.shard_size sh = 0
     | None -> false);
  Client.broadcast c "after-crash";
  (* Re-route happens on the client's seeded resubmit backoff: generous
     horizon, but completion is the assertion. *)
  Deployment.run d ~until:70.;
  checki "broadcast completes via the failover broker" 2 (Client.completed c);
  let successor = Fleet.first_alive fl ~key:node () in
  checkb "failover target differs from the crashed home" true
    (successor <> home);
  Deployment.recover_broker d home;
  Deployment.run d ~until:80.;
  checkb "recovery reshards the partition back" true
    (match Deployment.broker_shard d home with
     | Some sh -> Directory.shard_mem sh 1024 (* the client's explicit id *)
     | None -> false)

let test_fair_admission_starvation () =
  (* Flood the hottest partition's broker far past the servers' per-broker
     budget: its excess is shed at admission while every honest client —
     including those homed on the flooded broker — still completes.  The
     honest second wave matters: its submissions carry delivery-cert
     evidence, which is what legitimizes the flood's seq > 0 spam at the
     broker (the cached-best rule), keeping the hot pipeline saturated. *)
  let cfg =
    { Deployment.default_config with
      n_brokers = 3; dense_clients = 2048; fleet = Some Fleet.Hash;
      fair_admission_rate = 1.; fair_admission_burst = 5. }
  in
  let d = Deployment.create cfg in
  let clients = Array.init 6 (fun _ -> Deployment.add_client d ()) in
  Array.iter Client.signup clients;
  let hot = match Deployment.fleet_hottest d with
    | Some (b, _) -> b
    | None -> Alcotest.fail "fleet accounting empty"
  in
  let engine = Deployment.engine d in
  let rng = Rng.create 0xF100DL in
  Engine.schedule_at engine ~time:10. (fun () ->
      ignore
        (Spam.start_greedy ~deployment:d ~rng ~rate:400. ~first_id:0
           ~clients:64 ~broker:hot ~until:55. ()));
  Array.iteri
    (fun i c ->
      Engine.schedule_at engine ~time:5. (fun () ->
          Client.broadcast c (Printf.sprintf "starve:c%d:m0" i));
      Engine.schedule_at engine ~time:25. (fun () ->
          Client.broadcast c (Printf.sprintf "starve:c%d:m1" i)))
    clients;
  Deployment.run d ~until:90.;
  Array.iter
    (fun c -> checki "honest broadcasts complete under the flood" 2
        (Client.completed c))
    clients;
  let rejects = Deployment.admission_rejects d in
  let hot_rejects = Option.value (List.assoc_opt hot rejects) ~default:0 in
  checkb "the flooded broker was throttled" true (hot_rejects > 0);
  List.iter
    (fun (b, n) ->
      if b <> hot then
        checkb
          (Printf.sprintf "sibling broker %d rejected less than the hot one" b)
          true (n <= hot_rejects))
    rejects

let () =
  Alcotest.run "fleet"
    [ ("policy",
       [ Alcotest.test_case "assignment is seed-deterministic" `Quick
           test_deterministic_assignment;
         Alcotest.test_case "failover list is a rooted permutation" `Quick
           test_assignment_permutation;
         Alcotest.test_case "seeds shuffle the partition" `Quick
           test_seed_sensitivity;
         Alcotest.test_case "region affinity homes on the nearest group"
           `Quick test_region_affinity_nearest ]);
      ("shards",
       [ Alcotest.test_case "shard merge equals the monolithic directory"
           `Quick test_shard_merge_monolithic;
         Alcotest.test_case "dense ids are guarded; explicit ids round-trip"
           `Quick test_shard_dense_guard ]);
      ("deployment",
       [ Alcotest.test_case "1-broker fleet is a bit-identical no-op" `Quick
           test_single_broker_noop;
         Alcotest.test_case "same-seed 3-broker runs are bit-identical" `Quick
           test_repeat_runs_bit_identical;
         Alcotest.test_case "crash failover re-routes and reshards" `Quick
           test_crash_failover;
         Alcotest.test_case "fair admission stops partition starvation"
           `Quick test_fair_admission_starvation ]) ]
