(* lib/prof tests: the profiler must be a pure observer — a same-seed run
   is bit-identical with profiling on or off — and its deterministic
   counters must reproduce exactly across runs; the health doctor's
   watchdog must fire on an induced delivery stall (an unhealed full
   partition) and name the partition in its diagnosis. *)

module Engine = Repro_sim.Engine
module Prof = Repro_prof.Prof
module Doctor = Repro_prof.Doctor
module Cell = Repro_experiments.Cell
module Chaos = Repro_chaos.Chaos
module Json = Repro_metrics.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* A cell config small enough for a unit test but exercising every layer
   (PBFT underlay, store on, real load). *)
let test_cell =
  { Cell.default with Cell.duration = 7.; warmup = 2.; cooldown = 1.;
    rate = 50_000.; dense_clients = 100_000 }

(* --- the profiler is a pure observer ----------------------------------- *)

(* Same seed, profiling off vs on: every deterministic outcome field must
   be bit-identical (floats compared exactly — the sim is deterministic,
   so any difference means the profiler perturbed the run). *)
let test_bit_identical_on_off () =
  let off = Cell.run ~profile:false test_cell in
  let on = Cell.run ~profile:true test_cell in
  checkb "profiler produced a report" true (on.Cell.prof <> None);
  checkb "no report when off" true (off.Cell.prof = None);
  checki "sim_events identical" off.Cell.sim_events on.Cell.sim_events;
  checki "metric count identical"
    (List.length off.Cell.metrics)
    (List.length on.Cell.metrics);
  List.iter2
    (fun (k0, v0) (k1, v1) ->
      checks "metric name" k0 k1;
      checkb (Printf.sprintf "metric %s bit-identical (%.17g vs %.17g)" k0 v0 v1)
        true (v0 = v1))
    off.Cell.metrics on.Cell.metrics;
  checkb "info identical" true (off.Cell.info = on.Cell.info)

(* Two profiled same-seed runs: the deterministic half of the report
   (event counts per kind, minor words, depth/dwell histograms, max
   depth) must render to identical bytes.  Wall-time is excluded by
   construction — [deterministic_json] never contains it. *)
let test_deterministic_counters () =
  let r1 = Cell.run ~profile:true test_cell in
  let r2 = Cell.run ~profile:true test_cell in
  match (r1.Cell.prof, r2.Cell.prof) with
  | Some p1, Some p2 ->
    checks "deterministic profile json identical"
      (Json.to_string (Prof.deterministic_json p1))
      (Json.to_string (Prof.deterministic_json p2));
    checki "events identical" p1.Prof.p_events p2.Prof.p_events;
    checkb "events observed" true (p1.Prof.p_events > 0);
    checki "max queue depth identical" p1.Prof.p_max_pending
      p2.Prof.p_max_pending;
    (* Wall-time differs between the runs (it is real time), but the
       attribution share must still be high: the engine's hot paths are
       all kind-tagged, so the "other" bucket stays tiny. *)
    checkb ">= 95% of wall attributed to named kinds" true
      (Prof.attributed_share p1 >= 0.95)
  | _ -> Alcotest.fail "profiled runs produced no report"

(* Attaching the profiler to a bare engine must not change its RNG stream
   or event order: drive the same schedule twice and compare execution
   traces recorded by the handlers themselves. *)
let engine_trace ~profiled =
  let e = Engine.create ~seed:7L () in
  let rng = Repro_sim.Rng.create 7L in
  let log = ref [] in
  let p = if profiled then Some (Prof.attach e) else None in
  let k_a = Engine.kind e "a" and k_b = Engine.kind e "b" in
  for i = 0 to 9 do
    Engine.schedule ~kind:(if i mod 2 = 0 then k_a else k_b) e
      ~delay:(Repro_sim.Rng.float rng 1.0)
      (fun () -> log := (i, Engine.now e) :: !log)
  done;
  Engine.run e ~until:2.0;
  Option.iter Prof.detach p;
  List.rev !log

let test_engine_trace_identical () =
  let plain = engine_trace ~profiled:false in
  let prof = engine_trace ~profiled:true in
  checki "same handler count" (List.length plain) (List.length prof);
  checkb "same order and times" true (plain = prof)

(* --- the doctor -------------------------------------------------------- *)

(* The stall-partition diagnostic scenario fully partitions servers from
   brokers and never heals: the watchdog must fire mid-run (not just the
   post-mortem) and the diagnosis must name the partition. *)
let test_watchdog_fires_on_stall () =
  let sc =
    match Chaos.find_any "stall-partition" with
    | Some sc -> sc
    | None -> Alcotest.fail "stall-partition diagnostic scenario missing"
  in
  let v = sc.Chaos.sc_run ~seed:42L ~scale:Chaos.Quick () in
  checkb "scenario stalls (does not pass)" false v.Chaos.v_pass;
  match v.Chaos.v_diagnosis with
  | None -> Alcotest.fail "no diagnosis on a stalled run"
  | Some d ->
    checks "watchdog (not post-mortem) produced it" "stall" d.Doctor.d_reason;
    checkb "progress below expected" true
      (d.Doctor.d_progress < d.Doctor.d_expected);
    (match d.Doctor.d_partition with
     | None -> Alcotest.fail "diagnosis does not name the partition"
     | Some groups ->
       checkb "a non-empty partition group is reported" true
         (List.exists (fun g -> g <> []) groups));
    checkb "phase blames the partition" true
      (let phase = d.Doctor.d_phase in
       let needle = "partition" in
       let n = String.length needle in
       let rec has i =
         i + n <= String.length phase
         && (String.sub phase i n = needle || has (i + 1))
       in
       has 0)

(* Healthy run: the watchdog must stay silent — chaos scenarios arm it on
   every run, so any pass proves no spurious firing, but check the verdict
   field explicitly on one. *)
let test_watchdog_silent_when_healthy () =
  let sc =
    match Chaos.find "partition-heal" with
    | Some sc -> sc
    | None -> Alcotest.fail "partition-heal scenario missing"
  in
  let v = sc.Chaos.sc_run ~seed:42L ~scale:Chaos.Quick () in
  checkb "partition-heal passes" true v.Chaos.v_pass;
  checkb "no diagnosis on a healthy run" true (v.Chaos.v_diagnosis = None)

let () =
  Alcotest.run "prof"
    [ ( "profiler",
        [ Alcotest.test_case "same-seed run bit-identical profiling on/off"
            `Slow test_bit_identical_on_off;
          Alcotest.test_case "deterministic counters across two runs" `Slow
            test_deterministic_counters;
          Alcotest.test_case "bare-engine trace unchanged by profiler" `Quick
            test_engine_trace_identical ] );
      ( "doctor",
        [ Alcotest.test_case "watchdog fires on induced stall" `Slow
            test_watchdog_fires_on_stall;
          Alcotest.test_case "watchdog silent on healthy run" `Slow
            test_watchdog_silent_when_healthy ] ) ]
