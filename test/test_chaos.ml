(* lib/chaos unit tests: each misbehave_* hook must be caught in the act
   by the correct nodes (observable as reject_* / dup_ref trace instants)
   without costing correct clients their broadcasts; the invariant
   checker must fire on deliberate violations; and scenarios must be
   bit-deterministic under a fixed seed. *)

module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Deployment = Repro_chopchop.Deployment
module Client = Repro_chopchop.Client
module Broker = Repro_chopchop.Broker
module Server = Repro_chopchop.Server
module Proto = Repro_chopchop.Proto
module Chaos = Repro_chaos.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let count_instant sink name =
  List.length
    (List.filter
       (fun (e : Trace.event) -> e.ev_phase = Trace.I && e.ev_name = name)
       (Trace.Sink.events sink))

(* A small traced deployment (4 servers, Sequencer): [faults] runs after
   creation, clients broadcast [msgs_each] unique payloads each, and the
   run is long enough for backoff-driven broker rotation to play out. *)
let run_mini ?(n_brokers = 2) ?client_brokers ?(n_clients = 2)
    ?(msgs_each = 2) ~faults () =
  let trace = Trace.Sink.memory () in
  let cfg = { Deployment.default_config with n_brokers; trace } in
  let d = Deployment.create cfg in
  let inv = Chaos.Invariant.create ~n_servers:cfg.Deployment.n_servers in
  Chaos.Invariant.attach inv d;
  faults d;
  let clients =
    Array.init n_clients (fun _ ->
        Deployment.add_client d ?brokers:client_brokers ())
  in
  Array.iter Client.signup clients;
  Array.iteri
    (fun i c ->
      for j = 0 to msgs_each - 1 do
        Client.broadcast c (Printf.sprintf "c%d:m%d" i j)
      done)
    clients;
  Deployment.run d ~until:80.;
  let completed =
    Array.fold_left (fun acc c -> acc + Client.completed c) 0 clients
  in
  (d, inv, trace, completed, n_clients * msgs_each)

(* Broker 0 forges its reduction multi-signatures: every server must
   reject the batch (reject_batch), and clients complete by rotating to
   the honest broker 1. *)
let test_garble_rejected () =
  let _, inv, trace, completed, expected =
    run_mini ~client_brokers:[ 0; 1 ]
      ~faults:(fun d -> Broker.misbehave_garble_reduction (Deployment.broker d 0))
      ()
  in
  checkb "servers rejected garbled batches" true
    (count_instant trace "reject_batch" > 0);
  checki "all broadcasts completed via honest broker" expected completed;
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* Broker 0 tampers with a client payload: the batch no longer matches
   its roots, so Batch.verify fails on every server. *)
let test_malform_rejected () =
  let _, inv, trace, completed, expected =
    run_mini ~client_brokers:[ 0; 1 ]
      ~faults:(fun d -> Broker.misbehave_malform (Deployment.broker d 0))
      ()
  in
  checkb "servers rejected malformed batches" true
    (count_instant trace "reject_batch" > 0);
  checki "all broadcasts completed" expected completed;
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* Server 1 signs garbage witness shards: the broker must discard them
   (reject_shard) and still assemble f+1 = 2 honest shards from the
   other three servers. *)
let test_bad_shares_rejected () =
  let d, inv, trace, completed, expected =
    run_mini
      ~faults:(fun d -> Server.misbehave_bad_shares (Deployment.servers d).(1))
      ()
  in
  ignore d;
  checkb "broker rejected garbage shards" true
    (count_instant trace "reject_shard" > 0);
  checki "all broadcasts completed" expected completed;
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* Server 1 refuses to witness (fail-silent): the broker extends the
   witness set past the margin and completes without it. *)
let test_refuse_witness () =
  let _, inv, _, completed, expected =
    run_mini
      ~faults:(fun d ->
        Server.misbehave_refuse_witness (Deployment.servers d).(1))
      ()
  in
  checki "all broadcasts completed despite silent witness" expected completed;
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* Broker 0 withholds delivery certificates: its batches deliver, but the
   clients never learn it.  Resubmission (with backoff) rotates them to
   broker 1, the servers' exceptions path replays the already-delivered
   operations, and no message is delivered twice. *)
let test_withhold_certs () =
  let _, inv, _, completed, expected =
    run_mini ~client_brokers:[ 0; 1 ]
      ~faults:(fun d -> Broker.misbehave_withhold_certs (Deployment.broker d 0))
      ()
  in
  checki "all broadcasts completed after rotation" expected completed;
  checkb "no duplicate deliveries" true (Chaos.Invariant.ok inv)

(* Broker 0 announces two conflicting batches for one (broker, number)
   slot: both can gather witnesses, but the servers' (broker, number)
   dedup keeps exactly one — visible as dup_ref instants. *)
let test_equivocation_delivers_once () =
  let _, inv, trace, completed, expected =
    run_mini ~client_brokers:[ 0; 1 ]
      ~faults:(fun d -> Broker.misbehave_equivocate (Deployment.broker d 0))
      ()
  in
  checkb "servers deduplicated the equivocating slot" true
    (count_instant trace "dup_ref" > 0);
  checki "all broadcasts completed" expected completed;
  checkb "exactly-once delivery (agreement + no-dup)" true
    (Chaos.Invariant.ok inv)

(* Broker 0 crash-stops before any traffic: clients prefer it first, so
   every broadcast must ride the backoff-resubmission rotation to
   broker 1 (validity with all but one broker faulty, §4.4.2). *)
let test_crashed_broker_failover () =
  let _, inv, _, completed, expected =
    run_mini ~client_brokers:[ 0; 1 ]
      ~faults:(fun d -> Deployment.crash_broker d 0)
      ()
  in
  checki "all broadcasts completed via failover" expected completed;
  checkb "invariants hold" true (Chaos.Invariant.ok inv)

(* The checker itself: feeding the same delivery twice must raise a
   no-duplication violation. *)
let test_invariant_duplicate () =
  let inv = Chaos.Invariant.create ~n_servers:2 in
  let d = Proto.Ops [| (7, "dup-me") |] in
  Chaos.Invariant.observe inv ~server:0 d;
  checkb "clean after first delivery" true (Chaos.Invariant.ok inv);
  Chaos.Invariant.observe inv ~server:0 d;
  checkb "duplicate detected" false (Chaos.Invariant.ok inv);
  checkb "violation names no-duplication" true
    (List.exists
       (fun v ->
         String.length v >= 14 && String.sub v 0 14 = "no-duplication")
       (Chaos.Invariant.violations inv))

(* And conflicting logs at the same position must raise an agreement
   violation. *)
let test_invariant_divergence () =
  let inv = Chaos.Invariant.create ~n_servers:2 in
  Chaos.Invariant.observe inv ~server:0 (Proto.Ops [| (1, "a") |]);
  Chaos.Invariant.observe inv ~server:1 (Proto.Ops [| (2, "b") |]);
  checkb "divergence detected" false (Chaos.Invariant.ok inv);
  checkb "violation names agreement" true
    (List.exists
       (fun v -> String.length v >= 9 && String.sub v 0 9 = "agreement")
       (Chaos.Invariant.violations inv))

(* Regression: a replaced or joined server gets a fresh identity and
   re-delivers history from an unknown offset; [reset_server] must clear
   its log/dedup state and mute it, so neither re-observed deliveries nor
   [check_validity] raise false violations against it.  (Before the fix,
   a replaced server's stale (client, msg) entries tripped spurious
   no-duplication and validity failures.) *)
let test_reset_server_mutes_validity () =
  let inv = Chaos.Invariant.create ~n_servers:2 in
  let d = Proto.Ops [| (3, "alpha") |] in
  Chaos.Invariant.observe inv ~server:0 d;
  Chaos.Invariant.observe inv ~server:1 d;
  Chaos.Invariant.reset_server inv 1;
  checkb "server 1 muted" true (Chaos.Invariant.muted inv 1);
  checkb "server 0 not muted" false (Chaos.Invariant.muted inv 0);
  (* Re-delivery under the fresh identity: no false duplicate. *)
  Chaos.Invariant.observe inv ~server:1 d;
  checkb "no false duplicate after reset" true (Chaos.Invariant.ok inv);
  (* Validity holds the muted server to digest equality instead: a
     payload it never (re-)delivered is not a violation on it, but still
     is on an unmuted server. *)
  Chaos.Invariant.check_validity inv
    ~expected:[ ("beta", "beta") ]
    ~correct_servers:[ 1 ];
  checkb "muted server exempt from validity" true (Chaos.Invariant.ok inv);
  Chaos.Invariant.check_validity inv
    ~expected:[ ("beta", "beta") ]
    ~correct_servers:[ 0 ];
  checkb "unmuted server still checked" false (Chaos.Invariant.ok inv)

(* Same seed, same scale -> structurally identical verdicts, rejections
   and per-server delivery counts included. *)
let test_scenario_determinism () =
  match Chaos.find "broker-equivocation" with
  | None -> Alcotest.fail "scenario broker-equivocation missing"
  | Some sc ->
    let a = sc.Chaos.sc_run ~seed:7L ~scale:Chaos.Quick () in
    let b = sc.Chaos.sc_run ~seed:7L ~scale:Chaos.Quick () in
    checkb "verdicts bit-identical across runs" true (a = b);
    checkb "and they pass" true a.Chaos.v_pass

(* Acceptance for the dynamic-membership work: the kitchen-sink
   reconfiguration scenario (join + leave + rolling restarts under a
   flash crowd and spam) passes at quick scale under three different
   seeds, and each run is bit-deterministic. *)
let test_kitchen_sink_reconfig_seeds () =
  match Chaos.find "reconfig-kitchen-sink" with
  | None -> Alcotest.fail "scenario reconfig-kitchen-sink missing"
  | Some sc ->
    List.iter
      (fun seed ->
        let a = sc.Chaos.sc_run ~seed ~scale:Chaos.Quick () in
        let b = sc.Chaos.sc_run ~seed ~scale:Chaos.Quick () in
        checkb (Printf.sprintf "deterministic under seed %Ld" seed) true (a = b);
        if not a.Chaos.v_pass then
          Alcotest.failf "reconfig-kitchen-sink failed under seed %Ld: %s" seed
            (String.concat "; " a.Chaos.v_violations))
      [ 1L; 7L; 42L ]

(* Every named scenario passes at quick scale (the CI contract). *)
let test_all_scenarios_quick () =
  let verdicts = Chaos.run_all ~seed:42L ~scale:Chaos.Quick in
  List.iter
    (fun v ->
      if not v.Chaos.v_pass then
        Alcotest.failf "scenario %s failed: %s" v.Chaos.v_name
          (String.concat "; " v.Chaos.v_violations))
    verdicts;
  checki "all scenarios ran" (List.length Chaos.scenarios)
    (List.length verdicts)

let () =
  Alcotest.run "chaos"
    [ ("byzantine-broker",
       [ Alcotest.test_case "garbled reduction rejected" `Quick
           test_garble_rejected;
         Alcotest.test_case "malformed batch rejected" `Quick
           test_malform_rejected;
         Alcotest.test_case "withheld certs survived" `Quick
           test_withhold_certs;
         Alcotest.test_case "equivocation delivers once" `Quick
           test_equivocation_delivers_once;
         Alcotest.test_case "crashed broker failover" `Quick
           test_crashed_broker_failover ]);
      ("byzantine-server",
       [ Alcotest.test_case "bad witness shards rejected" `Quick
           test_bad_shares_rejected;
         Alcotest.test_case "silent witness tolerated" `Quick
           test_refuse_witness ]);
      ("invariants",
       [ Alcotest.test_case "no-duplication fires" `Quick
           test_invariant_duplicate;
         Alcotest.test_case "agreement fires" `Quick
           test_invariant_divergence;
         Alcotest.test_case "reset_server mutes fresh identities" `Quick
           test_reset_server_mutes_validity ]);
      ("scenarios",
       [ Alcotest.test_case "deterministic verdicts" `Quick
           test_scenario_determinism;
         Alcotest.test_case "reconfig kitchen sink across seeds" `Quick
           test_kitchen_sink_reconfig_seeds;
         Alcotest.test_case "all pass at quick scale" `Quick
           test_all_scenarios_quick ]) ]
