(* Tests for the workload layer: load brokers reuse the real broker
   pipeline, deliver at their configured rate, cycle ranges without
   duplicate delivery, and report sane latencies. *)

module D = Repro_chopchop.Deployment
module Server = Repro_chopchop.Server
module Proto = Repro_chopchop.Proto
module LB = Repro_workload.Load_broker
module Stats = Repro_sim.Stats
module R = Repro_experiments.Chopchop_run
module Trace = Repro_trace.Trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk ?(rate = 2.0) ?(ranges = 3) ?(count = 128) ?(distill = 1.0) () =
  let d =
    D.create
      { D.default_config with
        underlay = D.Sequencer; dense_clients = 100_000 }
  in
  let lb =
    LB.create ~deployment:d ~region:Repro_sim.Region.Ovh_gravelines
      ~config:{ rate; batch_count = count; msg_bytes = 8;
                distill_fraction = distill; ranges; first_id = 0 }
      ()
  in
  (d, lb)

let test_load_completes () =
  let d, lb = mk () in
  LB.start lb ~until:10. ();
  D.run d ~until:40.;
  let sub = LB.submitted lb in
  checkb (Printf.sprintf "submitted ~20 (got %d)" sub) true (sub >= 18 && sub <= 21);
  checki "all submitted batches completed" sub (LB.completed lb);
  checki "messages delivered match" (sub * 128) (LB.completed_messages lb);
  checki "servers agree" (sub * 128)
    (Server.delivered_messages (D.servers d).(0))

let test_no_duplicates_across_cycles () =
  (* 3 ranges cycled over ~20 batches: tags rise, so every injection is
     fresh — delivered messages equal injected messages exactly. *)
  let d, lb = mk ~ranges:3 () in
  LB.start lb ~until:10. ();
  D.run d ~until:40.;
  Array.iter
    (fun sv ->
      checki "no duplicate deliveries" (LB.submitted lb * 128)
        (Server.delivered_messages sv))
    (D.servers d)

let test_latency_sane () =
  let d, lb = mk () in
  LB.start lb ~until:8. ();
  D.run d ~until:40.;
  let m = Stats.Summary.mean (LB.latencies lb) in
  checkb (Printf.sprintf "batch pipeline latency in (0.1, 3) s (got %.2f)" m) true
    (m > 0.1 && m < 3.)

let test_partial_distillation () =
  (* distill_fraction 0.5: half the entries ride as stragglers; delivery
     still covers every message exactly once. *)
  let d, lb = mk ~distill:0.5 () in
  LB.start lb ~until:6. ();
  D.run d ~until:40.;
  checki "all messages delivered" (LB.submitted lb * 128)
    (Server.delivered_messages (D.servers d).(0));
  checkb "completed everything" true (LB.completed lb = LB.submitted lb)

let test_zero_distillation () =
  let d, lb = mk ~distill:0.0 () in
  LB.start lb ~until:6. ();
  D.run d ~until:40.;
  checki "classic batches still flow" (LB.submitted lb * 128)
    (Server.delivered_messages (D.servers d).(0))

let test_bulk_regeneration_matches () =
  (* Bulk deliveries must describe exactly the dense batch content:
     first_id/count/tag as forged. *)
  let d, lb = mk ~ranges:1 ~rate:1.0 () in
  let bulks = ref [] in
  D.server_deliver_hook d (fun srv del ->
      if srv = 0 then
        match del with
        | Proto.Bulk { first_id; count; tag; _ } ->
          bulks := (first_id, count, tag) :: !bulks
        | Proto.Ops _ -> ());
  LB.start lb ~until:3.5 ();
  D.run d ~until:30.;
  checki "three rounds of the single range" 3 (List.length !bulks);
  let tags = List.sort compare (List.map (fun (_, _, t) -> t) !bulks) in
  Alcotest.(check (list int)) "tags rise per round" [ 1; 2; 3 ] tags;
  List.iter
    (fun (first_id, count, _) ->
      checki "first id" 0 first_id;
      checki "count" 128 count)
    !bulks

(* --- flat-array cohort vs per-client model --------------------------------- *)

(* The cohort claims bit-identity with the per-client model on the same
   seed: not statistical closeness — the same events in the same order.
   Run one pinned config both ways with a private trace sink each and
   compare results field-for-field (floats by bit pattern) plus the full
   counter registry, which includes [sim.steps] (every engine dispatch),
   net bytes, and crypto op counts: any divergence in event count,
   scheduling order or arithmetic shows up in at least one of these. *)
let cohort_run ~cohort =
  let sink = Trace.Sink.null () in
  let r =
    R.run
      { R.default with
        n_servers = 4; underlay = Repro_chopchop.Deployment.Pbft;
        rate = 100_000.; batch_count = 4096; n_load_brokers = 1;
        measure_clients = 6; duration = 6.; warmup = 2.; cooldown = 2.;
        dense_clients = 1_000_000; cohort; trace = sink }
  in
  (r, Trace.Sink.counters sink)

let test_cohort_equivalence () =
  let r_cli, c_cli = cohort_run ~cohort:false in
  let r_coh, c_coh = cohort_run ~cohort:true in
  checki "total deliveries identical" r_cli.R.delivered_messages
    r_coh.R.delivered_messages;
  let checkbits what a b =
    Alcotest.(check int64) what (Int64.bits_of_float a) (Int64.bits_of_float b)
  in
  checkbits "throughput" r_cli.R.throughput r_coh.R.throughput;
  checkbits "latency mean" r_cli.R.latency_mean r_coh.R.latency_mean;
  checkbits "latency std" r_cli.R.latency_std r_coh.R.latency_std;
  checkbits "network rate" r_cli.R.network_rate_bps r_coh.R.network_rate_bps;
  checkbits "server cpu" r_cli.R.server_cpu r_coh.R.server_cpu;
  checkbits "broker cpu" r_cli.R.broker_cpu_busy_s r_coh.R.broker_cpu_busy_s;
  checki "decisions" r_cli.R.decisions r_coh.R.decisions;
  checki "stored max" r_cli.R.stored_bytes_max r_coh.R.stored_bytes_max;
  checkb "delivered something" true (r_cli.R.delivered_messages > 0);
  Alcotest.(check (list (triple string string int)))
    "full counter registry identical (sim.steps, net bytes, crypto ops)"
    (List.map (fun (a, b, c) -> (a, b, c)) c_cli)
    (List.map (fun (a, b, c) -> (a, b, c)) c_coh)

let () =
  Alcotest.run "workload"
    [ ("load-broker",
       [ Alcotest.test_case "completes at rate" `Quick test_load_completes;
         Alcotest.test_case "no duplicates across cycles" `Quick test_no_duplicates_across_cycles;
         Alcotest.test_case "latency sane" `Quick test_latency_sane;
         Alcotest.test_case "partial distillation" `Quick test_partial_distillation;
         Alcotest.test_case "zero distillation" `Quick test_zero_distillation;
         Alcotest.test_case "bulk content matches forge" `Quick test_bulk_regeneration_matches ]);
      ("cohort",
       [ Alcotest.test_case "cohort bit-identical to per-client model" `Slow
           test_cohort_equivalence ]) ]
