(* Tests for the metrics subsystem: registry/label semantics, probe
   sampling and series alignment, baseline comparison (the CI gate's
   pass/fail logic), JSON round-trips, and the end-to-end properties the
   ISSUE pins down — bit-identical same-seed snapshots, sampler/sim-clock
   alignment, C-phase mirroring into the trace, and causal message-path
   reconstruction telescoping to the end-to-end latency. *)

open Repro_trace
module M = Repro_metrics.Metrics
module B = Repro_metrics.Baseline
module J = Repro_metrics.Json
module R = Repro_experiments.Chopchop_run
module LB = Repro_experiments.Latency_breakdown
module CP = Repro_experiments.Causal_path

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b

(* --- registry / labels ------------------------------------------------ *)

let test_label_isolation () =
  let m = M.create () in
  let c1 = M.counter m "net.msgs" ~labels:[ ("role", "wan"); ("dir", "in") ] in
  let c2 = M.counter m "net.msgs" ~labels:[ ("dir", "in"); ("role", "wan") ] in
  Trace.Counter.incr c1;
  Trace.Counter.incr c2;
  checki "label order is canonicalised away" 2 (Trace.Counter.value c1);
  let c3 = M.counter m "net.msgs" ~labels:[ ("dir", "out"); ("role", "wan") ] in
  checki "differing label value names a fresh instrument" 0
    (Trace.Counter.value c3);
  let c4 = M.counter m "net.msgs" in
  checki "empty label set is its own instrument" 0 (Trace.Counter.value c4);
  let g = M.gauge m "net.msgs" in
  M.Gauge.set g 7.;
  checkf "same name, different kind: distinct cells" 7. (M.Gauge.value g);
  checki "counter unaffected by like-named gauge" 0 (Trace.Counter.value c4)

let test_label_string () =
  checks "no labels" "q" (M.label_string "q" []);
  checks "labels sorted into the rendering" "q{a=1,b=2}"
    (M.label_string "q" [ ("b", "2"); ("a", "1") ])

let test_snapshot_sorted () =
  let m = M.create () in
  M.Gauge.set (M.gauge m "zz") 1.;
  Trace.Counter.incr (M.counter m "aa");
  Trace.Hist.add (M.histogram m "mm") 0.5;
  let names = List.map (fun e -> e.M.m_name) (M.snapshot m) in
  Alcotest.(check (list string)) "sorted by name" [ "aa"; "mm"; "zz" ] names

(* --- probes and sampling ---------------------------------------------- *)

let test_probe_alignment () =
  let m = M.create ~period:0.25 () in
  checkf "period recorded" 0.25 (M.period m);
  let v = ref 0. in
  M.probe m "depth" (fun () -> !v);
  M.probe m "depth" ~labels:[ ("role", "b") ] (fun () -> 2. *. !v);
  for i = 1 to 4 do
    v := float_of_int i;
    M.sample m ~now:(0.25 *. float_of_int i)
  done;
  checki "one tick per sample call" 4 (M.ticks m);
  let series = M.series m in
  checki "one series per probe" 2 (List.length series);
  List.iter
    (fun s ->
      checki
        (M.label_string s.M.s_name s.M.s_labels ^ " aligned")
        4
        (Array.length s.M.s_points);
      Array.iteri
        (fun i (t, _) -> checkf "tick time column shared" (M.tick_times m).(i) t)
        s.M.s_points)
    series;
  let plain = List.nth series 0 and doubled = List.nth series 1 in
  checkf "probe read at each tick" 3. (snd plain.M.s_points.(2));
  checkf "labelled twin sampled independently" 6. (snd doubled.M.s_points.(2));
  (* The last sample also lands in a like-named gauge for the snapshot. *)
  checkf "probe gauge holds last sample" 4. (M.Gauge.value (M.gauge m "depth"))

let test_rate_probe () =
  let m = M.create () in
  let total = ref 0. in
  M.rate_probe m "rate" (fun () -> !total);
  (* Cumulative 100 at t=2 from 0 at t=0 -> 50/s; +300 over the next 2 s
     -> 150/s; flat over a further 1 s -> 0/s. *)
  total := 100.;
  M.sample m ~now:2.;
  total := 400.;
  M.sample m ~now:4.;
  M.sample m ~now:5.;
  let s = List.hd (M.series m) in
  checkf "first interval from t=0" 50. (snd s.M.s_points.(0));
  checkf "per-interval rate" 150. (snd s.M.s_points.(1));
  checkf "flat cumulative = zero rate" 0. (snd s.M.s_points.(2))

let test_mirror_emits_c_phase () =
  let m = M.create () in
  let sink = Trace.Sink.memory () in
  M.probe m "depth" (fun () -> 42.);
  M.mirror m ~sink ~actor:9;
  M.sample m ~now:1.;
  M.sample m ~now:2.;
  let cs =
    List.filter
      (fun (e : Trace.event) ->
        match e.ev_phase with
        | Trace.C v -> e.ev_cat = "metrics" && v = 42.
        | _ -> false)
      (Trace.Sink.events sink)
  in
  checki "one C-phase counter event per probe per tick" 2 (List.length cs)

(* --- exports ---------------------------------------------------------- *)

let export_fixture () =
  let m = M.create () in
  Trace.Counter.add (M.counter m "ops" ~labels:[ ("role", "s") ]) 12;
  Trace.Hist.add (M.histogram m "lat") 0.5;
  M.probe m "depth" (fun () -> 3.);
  M.sample m ~now:0.5;
  M.sample m ~now:1.0;
  m

let test_jsonl_parses () =
  let m = export_fixture () in
  let lines = String.split_on_char '\n' (String.trim (M.to_jsonl m)) in
  checkb "several lines" true (List.length lines >= 4);
  List.iter
    (fun line ->
      match J.parse line with
      | J.Obj kvs ->
        checkb "every line has a kind" true (List.mem_assoc "kind" kvs)
      | _ -> Alcotest.fail "jsonl line not an object"
      | exception Failure e -> Alcotest.fail e)
    lines;
  let series_line =
    List.find (fun l -> J.member "kind" (J.parse l) = Some (J.Str "series")) lines
  in
  match J.member "points" (J.parse series_line) with
  | Some (J.List pts) -> checki "one point per tick" 2 (List.length pts)
  | _ -> Alcotest.fail "series line has no points array"

let test_series_csv () =
  let m = export_fixture () in
  match String.split_on_char '\n' (String.trim (M.series_csv m)) with
  | header :: rows ->
    checkb "time column first" true
      (String.length header >= 4 && String.sub header 0 4 = "time");
    checki "one row per tick" 2 (List.length rows)
  | [] -> Alcotest.fail "empty csv"

(* --- baseline comparison (the CI gate) -------------------------------- *)

let doc_of configs =
  { B.version = 1; readme = [ "test" ]; configs }

let metric ?tolerance ?(direction = B.Lower_better) value =
  { B.value; tolerance; direction }

let compare_one base cur =
  let baseline = doc_of [ ("c", [ ("m", base) ]) ] in
  let current = doc_of [ ("c", [ ("m", cur) ]) ] in
  B.compare_docs ~baseline ~current

let test_baseline_gate () =
  let hb = metric ~tolerance:0.10 ~direction:B.Higher_better in
  let lb = metric ~tolerance:0.10 ~direction:B.Lower_better in
  checkb "within tolerance passes" true (B.all_ok (compare_one (hb 100.) (hb 91.)));
  checkb "beyond tolerance fails" false (B.all_ok (compare_one (hb 100.) (hb 89.)));
  checkb "improvement never fails" true (B.all_ok (compare_one (hb 100.) (hb 250.)));
  checkb "lower-better regression fails" false
    (B.all_ok (compare_one (lb 100.) (lb 111.)));
  checkb "lower-better within tolerance" true
    (B.all_ok (compare_one (lb 100.) (lb 110.)));
  checkb "zero baseline gates absolutely" false
    (B.all_ok (compare_one (lb 0.) (lb 0.2)));
  checkb "zero baseline within slack" true (B.all_ok (compare_one (lb 0.) (lb 0.05)));
  checkb "ungated metric never fails" true
    (B.all_ok (compare_one (metric 100.) (metric 900.)));
  (* Structural gates: anything the current run no longer reports fails. *)
  let baseline = doc_of [ ("c", [ ("m", lb 1.) ]) ] in
  checkb "missing metric fails" false
    (B.all_ok (B.compare_docs ~baseline ~current:(doc_of [ ("c", []) ])));
  checkb "missing config fails" false
    (B.all_ok (B.compare_docs ~baseline ~current:(doc_of [])));
  let wider = doc_of [ ("c", [ ("m", lb 1.); ("extra", lb 9.) ]) ] in
  let vs = B.compare_docs ~baseline ~current:wider in
  checkb "new metrics are informational passes" true (B.all_ok vs);
  checki "and still reported" 2 (List.length vs)

let test_baseline_roundtrip () =
  let doc =
    { B.version = 1;
      readme = [ "line one"; "line two" ];
      configs =
        [ ( "quick-pbft",
            [ ("throughput", metric ~tolerance:0.05 ~direction:B.Higher_better 1e5);
              ("wall", metric 0.25) ] );
          ("quick-hotstuff", [ ("lat_p99", metric ~tolerance:0.15 3.25) ]) ] }
  in
  let doc' = B.of_json (B.to_json doc) in
  checkb "to_json |> of_json is the identity" true (doc = doc')

(* --- end-to-end: deterministic instrumented runs ---------------------- *)

let quick_params =
  { R.default with
    n_servers = 4; underlay = Repro_chopchop.Deployment.Pbft;
    rate = 100_000.; batch_count = 4096; n_load_brokers = 1;
    measure_clients = 2; duration = 6.; warmup = 4.; cooldown = 2.;
    dense_clients = 1_000_000 }

let run_instrumented () =
  let m = M.create () in
  let result, breakdown, sink =
    LB.capture ~params:{ quick_params with R.metrics = Some m } ()
  in
  (m, result, breakdown, sink)

let captured = lazy (run_instrumented (), run_instrumented ())

let test_snapshot_deterministic () =
  let (m_a, _, _, _), (m_b, _, _, _) = Lazy.force captured in
  checkb "non-trivial snapshot" true (List.length (M.snapshot m_a) > 5);
  checkb "same-seed snapshots bit-identical" true
    (M.snapshot m_a = M.snapshot m_b);
  checkb "same-seed series bit-identical" true (M.series m_a = M.series m_b)

let test_sampler_clock_alignment () =
  let (m, _, _, _), _ = Lazy.force captured in
  let p = M.period m in
  (* The sampler runs [Engine.every ~inclusive:false ~until:duration]: one
     tick per whole period strictly inside the run — a tick landing
     exactly on [duration] would sample the post-run world. *)
  let expected =
    let exact = quick_params.R.duration /. p in
    let n = int_of_float (Float.round exact) in
    if Float.of_int n *. p >= quick_params.R.duration then n - 1 else n
  in
  checki "ticks strictly inside the run" expected (M.ticks m);
  Array.iteri
    (fun i t -> checkf "tick i at (i+1)*period" (p *. float_of_int (i + 1)) t)
    (M.tick_times m);
  List.iter
    (fun s ->
      checki
        (M.label_string s.M.s_name s.M.s_labels ^ " one point per tick")
        (M.ticks m)
        (Array.length s.M.s_points))
    (M.series m)

let test_run_mirrors_c_events () =
  let (_, _, _, sink), _ = Lazy.force captured in
  let cs =
    List.filter
      (fun (e : Trace.event) ->
        e.ev_cat = "metrics"
        && match e.ev_phase with Trace.C _ -> true | _ -> false)
      (Trace.Sink.events sink)
  in
  checkb "instrumented run mirrors probe samples as C events" true
    (List.length cs >= 2 * List.length (M.series (let (m, _, _, _), _ = Lazy.force captured in m)));
  (* And the Chrome exporter renders them as counter tracks. *)
  let json = Chrome.to_string sink in
  checkb "C events survive the Chrome export" true
    (let needle = "\"cat\":\"metrics\",\"ph\":\"C\"" in
     let n = String.length needle and len = String.length json in
     let rec find i = i + n <= len && (String.sub json i n = needle || find (i + 1)) in
     find 0)

let test_causal_path () =
  let (_, _, breakdown, sink), _ = Lazy.force captured in
  let events = Trace.Sink.events sink in
  let cands = CP.candidates events in
  checkb "delivered candidates listed" true (cands <> []);
  match CP.first events with
  | None -> Alcotest.fail "no candidate reconstructs"
  | Some p ->
    checki "five paper hops" 5 (List.length p.CP.p_hops);
    checkb "context propagation verified" true p.CP.p_ctx_verified;
    let e = CP.e2e p and s = CP.hop_sum p in
    checkb
      (Printf.sprintf "hops telescope to e2e within 5%% (%.4f vs %.4f)" s e)
      true
      (e > 0. && Float.abs (s -. e) /. e < 0.05);
    (* Cross-check against the aggregate decomposition: the followed
       message's e2e lies within the breakdown's observed range. *)
    let h = LB.e2e breakdown in
    checkb "followed e2e within the breakdown's range" true
      (LB.complete breakdown > 0
      && e >= Trace.Hist.min h -. 1e-9
      && e <= Trace.Hist.max h +. 1e-9);
    List.iter
      (fun (h : CP.hop) ->
        checkb (h.CP.h_phase ^ " hop non-negative") true
          (h.CP.h_finish >= h.CP.h_start))
      p.CP.p_hops

let () =
  Alcotest.run "metrics"
    [ ( "registry",
        [ Alcotest.test_case "label canonicalisation + isolation" `Quick
            test_label_isolation;
          Alcotest.test_case "label rendering" `Quick test_label_string;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted ] );
      ( "sampling",
        [ Alcotest.test_case "probes aligned across series" `Quick
            test_probe_alignment;
          Alcotest.test_case "rate probe differentiates" `Quick test_rate_probe;
          Alcotest.test_case "mirror emits C-phase samples" `Quick
            test_mirror_emits_c_phase ] );
      ( "export",
        [ Alcotest.test_case "jsonl parses back" `Quick test_jsonl_parses;
          Alcotest.test_case "csv aligned" `Quick test_series_csv ] );
      ( "baseline",
        [ Alcotest.test_case "gate semantics" `Quick test_baseline_gate;
          Alcotest.test_case "json round-trip" `Quick test_baseline_roundtrip ] );
      ( "end-to-end",
        [ Alcotest.test_case "same seed, same metrics" `Slow
            test_snapshot_deterministic;
          Alcotest.test_case "sampler aligned to the sim clock" `Slow
            test_sampler_clock_alignment;
          Alcotest.test_case "run mirrors counter tracks" `Slow
            test_run_mirrors_c_events;
          Alcotest.test_case "causal path telescopes" `Slow test_causal_path ] ) ]
